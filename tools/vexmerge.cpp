// vexmerge: fold per-shard sweep JSONs (bench `--shard i/N` output, or
// vexplore shard reports) back into the single trajectory a one-process run
// would have written — byte-identical, because the shard documents embed the
// exact per-point JSON subtrees and the manifest pins their order.
//
// Validation before any output: every input must carry the same experiment,
// kind, shard count, and point manifest (label + fingerprint per point);
// overlapping byte-identical records are deduped; two byte-differing records
// for one fingerprint are a hard error naming the point; partial (mid-run
// flush) checkpoints are refused.
//
// When points are missing, vexmerge exits 1 and writes a resume manifest
// (--resume FILE, default <out>.resume.json) listing every missing point and
// the shard that owns it, so the operator can re-dispatch exactly the gaps.
//
// Usage: vexmerge --out FILE [--resume FILE] shard1.json shard2.json ...
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "harness/shard.hpp"
#include "stats/json.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  try {
    const Cli cli(argc, argv);
    VEXSIM_CHECK_MSG(cli.has("out"), "vexmerge needs --out FILE");
    const std::string out = cli.get("out", "");
    const std::vector<std::string>& files = cli.positional();
    VEXSIM_CHECK_MSG(!files.empty(),
                     "vexmerge needs at least one shard JSON file; usage: "
                     "vexmerge --out FILE [--resume FILE] shard1.json ...");

    std::vector<Json> docs;
    docs.reserve(files.size());
    for (const std::string& f : files) {
      std::ifstream is(f, std::ios::binary);
      VEXSIM_CHECK_MSG(is.good(), "cannot open shard file " << f);
      const std::string text((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
      try {
        docs.push_back(Json::parse(text));
      } catch (const CheckError& e) {
        VEXSIM_CHECK_MSG(false, "corrupt shard file " << f << ": "
                                                      << e.what());
      }
    }

    const harness::MergeOutcome merged = harness::merge_shards(docs, files);
    if (merged.complete) {
      write_json_file(out, merged.merged);
      std::cout << "vexmerge: merged " << merged.total << " points from "
                << files.size() << " shard file(s) -> " << out << "\n";
      return 0;
    }
    const std::string resume_path = cli.get("resume", out + ".resume.json");
    write_json_file(resume_path, merged.resume);
    std::cerr << "vexmerge: incomplete: " << merged.present << "/"
              << merged.total
              << " points present; resume manifest (missing points and their "
                 "owning shards) -> "
              << resume_path << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "vexmerge: error: " << e.what() << "\n";
    return 2;
  }
}
