// vexlint — static dataflow lint over compiled programs.
//
// Compiles every Figure-13 registry kernel and a synthetic-spec grid under
// all four compiler pass-pipeline variants, on the symmetric paper machine
// and an asymmetric 8+4+2+2 geometry, then runs the full static tool stack
// over each program: cc::verify_program (resource/encoding/kernel legality)
// and cc::lint_program (dataflow lint: def-before-use, dead copies, stale
// compare/slct clones, kernel stage-overlap conflicts, dead and unreachable
// code). The run is fully deterministic — compiles are memoized and the
// report is emitted with insertion-ordered keys — so the JSON is
// byte-identical across runs and diffable in CI.
//
// A clean tree reports zero findings; any finding is a compiler bug and
// fails the process (exit 1), which is what the CI vexlint job gates on.
//
// Usage:
//   vexlint --all [--json FILE]      lint the full registry × variant grid
//   vexlint --quick --all            reduced grid (CI smoke)
//   vexlint --kernels idct,mcf       restrict to named programs/specs
//   vexlint --variants cost_swp      restrict compiler variants
//   vexlint --config FILE            also lint on a description-file machine
//   vexlint --scale F               kernel scaling (default 0.1)
//   vexlint --selftest              prove the linter catches the seeded
//                                   PR 5-style clone-placement miscompile
//                                   (exit 0 iff it is flagged)
//   vexlint --verbose               print every finding, not just counts
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cc/lint.hpp"
#include "cc/options.hpp"
#include "cc/verifier.hpp"
#include "isa/config.hpp"
#include "mdes/machine.hpp"
#include "stats/json.hpp"
#include "util/cli.hpp"
#include "vasm/assembler.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace vexsim;

struct Target {
  std::string program;
  std::string variant;
  MachineConfig cfg;
};

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

MachineConfig sym_machine() {
  MachineConfig cfg = MachineConfig::paper_single();
  cfg.validate();
  return cfg;
}

MachineConfig asym_machine() {
  MachineConfig cfg = MachineConfig::paper_single();
  cfg.cluster_renaming = false;
  cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                           ClusterResourceConfig::for_issue_width(4),
                           ClusterResourceConfig::for_issue_width(2),
                           ClusterResourceConfig::for_issue_width(2)};
  cfg.validate();
  return cfg;
}

// The PR 5 miscompile, reduced to its essential shape: a branch-condition
// compare cloned onto another cluster, with the clone's operand localized
// *before* an interleaving redefinition — the clone tests a stale value, so
// the two clusters disagree about the predicate. The linter must flag this
// statically (stale-clone); the dynamic equivalence suite only caught it by
// simulating full cross-variant runs.
constexpr const char* kCloneMiscompile = R"(
    c0 movi r5 = 1
    c0 movi r6 = 3 ; c1 movi r8 = 4
    c0 send ch0 = r5 ; c1 recv r7 = ch0
    c0 movi r5 = 2
    nop
    c0 cmplt b0 = r5, 100 ; c1 cmplt b0 = r7, 100
    nop
    c0 slct r3 = b0, r5, r6 ; c1 slct r4 = b0, r7, r8
    c0 stw 0x100[r0] = r3 ; c1 stw 0x104[r0] = r4
    c0 halt
)";

// The corrected shape: operands localized after the final redefinition, so
// both clones test the same value. Must stay finding-free.
constexpr const char* kCloneFixed = R"(
    c0 movi r5 = 2
    c0 movi r6 = 3 ; c1 movi r8 = 4
    c0 send ch0 = r5 ; c1 recv r7 = ch0
    nop
    c0 cmplt b0 = r5, 100 ; c1 cmplt b0 = r7, 100
    nop
    c0 slct r3 = b0, r5, r6 ; c1 slct r4 = b0, r7, r8
    c0 stw 0x100[r0] = r3 ; c1 stw 0x104[r0] = r4
    c0 halt
)";

int selftest() {
  const MachineConfig cfg = sym_machine();
  const Program bad = assemble(kCloneMiscompile, "pr5_clone_miscompile");
  const cc::LintReport bad_report = cc::lint_program(bad, cfg);
  bool flagged = false;
  for (const cc::LintFinding& f : bad_report.findings) {
    std::cout << "  " << to_string(bad, f) << "\n";
    flagged |= f.check == "stale-clone";
  }
  const Program good = assemble(kCloneFixed, "pr5_clone_fixed");
  const cc::LintReport good_report = cc::lint_program(good, cfg);
  for (const cc::LintFinding& f : good_report.findings)
    std::cout << "  " << to_string(good, f) << "\n";
  if (!flagged) {
    std::cout << "selftest FAILED: stale-clone miscompile not flagged\n";
    return 1;
  }
  if (!good_report.findings.empty()) {
    std::cout << "selftest FAILED: " << good_report.findings.size()
              << " finding(s) on the corrected clone shape\n";
    return 1;
  }
  std::cout << "selftest OK: miscompile flagged statically, corrected "
               "shape clean\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.get_bool("selftest", false)) return selftest();

  const bool quick = cli.get_bool("quick", false);
  const double scale = cli.get_double("scale", quick ? 0.05 : 0.1);
  const bool verbose = cli.get_bool("verbose", false);

  std::vector<std::string> programs;
  if (cli.has("kernels")) {
    programs = split_list(cli.get("kernels", ""));
  } else {
    for (const wl::BenchmarkInfo& info : wl::benchmark_registry())
      programs.push_back(info.name);
    if (quick) {
      programs = {"mcf", "djpeg", "idct", "x264"};
      programs.emplace_back("synth:i0.5-m0.2-p0.5-s1");
      programs.emplace_back("synth:i0.9-m0.1-p0.5-s2");
    } else {
      // Synthetic grid: ILP gradient × memory intensity, plus branch- and
      // comm-heavy points, all with pipeline-parallel headroom so the
      // modulo scheduler actually fires under the *_swp variants.
      for (const char* spec :
           {"synth:i0.2-m0.1-p0.5-s1", "synth:i0.2-m0.3-p0.5-s2",
            "synth:i0.5-m0.1-p0.5-s3", "synth:i0.5-m0.3-p0.5-s4",
            "synth:i0.8-m0.1-p0.5-s5", "synth:i0.8-m0.3-p0.5-s6",
            "synth:i0.95-m0.1-p0.5-s7", "synth:i0.95-m0.3-p0.5-s8",
            "synth:i0.5-m0.2-b0.3-s9", "synth:i0.7-m0.1-c0.4-s10"})
        programs.emplace_back(spec);
    }
  }

  const std::vector<std::string> variants =
      cli.has("variants") ? split_list(cli.get("variants", ""))
                          : std::vector<std::string>{"greedy", "cost",
                                                     "cost_swp", "greedy_swp"};

  // The built-in grid machines, plus any description-file machine the
  // caller adds with --config FILE (lints the compiler against authored
  // geometries, not just the two hard-coded ones).
  std::vector<MachineConfig> machines = {sym_machine(), asym_machine()};
  if (cli.has("config")) {
    MachineConfig cfg = mdes::load_machine(cli.get("config", ""));
    cfg.hw_threads = 1;  // lint compiles single-threaded programs
    cfg.technique = Technique::smt();
    cfg.validate();
    machines.push_back(cfg);
  }

  std::vector<Target> targets;
  for (const MachineConfig& cfg : machines)
    for (const std::string& variant : variants)
      for (const std::string& program : programs)
        targets.push_back(Target{program, variant, cfg});

  Json report = Json::object();
  report.set("tool", "vexlint");
  report.set("scale", scale);
  Json target_array = Json::array();

  std::size_t total_findings = 0;
  std::size_t compile_errors = 0;
  for (const Target& t : targets) {
    Json entry = Json::object();
    entry.set("program", t.program);
    entry.set("variant", t.variant);
    entry.set("machine", t.cfg.geometry_name());
    Json findings = Json::array();
    try {
      const cc::CompilerOptions opt = cc::CompilerOptions::parse(t.variant);
      cc::CompileStats stats;
      const auto prog = wl::make_benchmark(t.program, t.cfg, scale, opt,
                                           &stats);
      entry.set("instructions", stats.instructions);
      entry.set("operations", stats.operations);
      entry.set("swp_loops", stats.swp_loops);

      auto add = [&](const std::string& check, std::uint64_t instr,
                     const std::string& what) {
        Json f = Json::object();
        f.set("check", check);
        f.set("instr", instr);
        f.set("what", what);
        findings.push(std::move(f));
        ++total_findings;
        if (verbose)
          std::cout << t.program << "/" << t.variant << "/"
                    << t.cfg.geometry_name() << "[" << instr << "] " << check
                    << ": " << what << "\n";
      };
      for (const cc::VerifyIssue& issue : cc::verify_program(*prog, t.cfg))
        add("verify", issue.instr, issue.what);
      const cc::LintReport lint = cc::lint_program(*prog, t.cfg);
      for (const cc::LintFinding& f : lint.findings)
        add(f.check, f.instr, f.what);

      Json pressure = Json::array();
      for (int c = 0; c < t.cfg.clusters; ++c)
        pressure.push(lint.pressure.max_gpr[static_cast<std::size_t>(c)]);
      entry.set("max_gpr_pressure", std::move(pressure));
    } catch (const std::exception& e) {
      ++compile_errors;
      Json f = Json::object();
      f.set("check", "compile-error");
      f.set("instr", 0);
      f.set("what", std::string(e.what()));
      findings.push(std::move(f));
      if (verbose)
        std::cout << t.program << "/" << t.variant << " compile-error: "
                  << e.what() << "\n";
    }
    entry.set("findings", std::move(findings));
    target_array.push(std::move(entry));
  }

  report.set("targets", std::move(target_array));
  report.set("programs", static_cast<std::uint64_t>(targets.size()));
  report.set("findings", static_cast<std::uint64_t>(total_findings));
  report.set("compile_errors", static_cast<std::uint64_t>(compile_errors));

  if (cli.has("json")) write_json_file(cli.get("json", ""), report);

  std::cout << "vexlint: " << targets.size() << " compiled program(s), "
            << total_findings << " finding(s), " << compile_errors
            << " compile error(s)\n";
  return total_findings == 0 && compile_errors == 0 ? 0 : 1;
}
