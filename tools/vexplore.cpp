// vexplore: design-space-exploration driver over machine/scenario
// description templates (src/mdes/dse.hpp).
//
// Loads a template declaring sampling axes ([dse]), acceptance constraints
// ([constraints]) and an axis-parameterized machine + scenario, draws N
// design points with a seeded deterministic sampler, dispatches the
// accepted points through the parallel sweep engine (with the
// content-addressed result cache when --cache is set), and writes a
// machine-readable report:
//
//   * every accepted point with its axis bindings and run statistics,
//   * the Pareto frontier of (cycles-to-halt, total issue slots) — the
//     cheapest machine at every performance level,
//   * per-axis sensitivity summaries (bucketed mean cycles / IPC), a
//     first-order view of which axis moves performance.
//
// Sampling is serial and pure in (template, --seed, index), and the report
// carries no wall-clock or scheduling artifacts, so output bytes are
// identical for any --jobs value and for cold vs warm caches. Under
// --shard i/N only the owned round-robin slice of accepted points is
// simulated and the output is a shard document (default
// VEXPLORE.shard<i>of<N>.json); tools/vexmerge folds the shards back into a
// report byte-identical to the one-process run.
//
// Flags: --template FILE (required), --sample N (default 64), --seed S
//        (default 7), --max-attempts M (default 32*N), --json FILE (default
//        VEXPLORE.json), --quick, --scale X, --budget N, --timeslice N
//        (override every sampled scenario),
//        --jobs N, --progress N, --cache[=DIR]/--no-cache, --timeout MS,
//        --retries N, --shard I/N, --cache-gc SIZE (sweep engine).
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "mdes/dse.hpp"
#include "stats/json.hpp"
#include "util/check.hpp"

namespace {

using namespace vexsim;

struct Sampled {
  std::uint64_t index = 0;  // draw index under --seed
  mdes::DsePoint point;
};

Json value_json(const mdes::Value& v) {
  switch (v.kind) {
    case mdes::Value::Kind::kInt: return Json(v.i);
    case mdes::Value::Kind::kDouble: return Json(v.d);
    case mdes::Value::Kind::kBool: return Json(v.b);
    case mdes::Value::Kind::kString: return Json(v.s);
  }
  return Json();
}

// Scenario-level overrides shared by every sampled point; mirrors the
// bench --quick/--scale/--budget/--timeslice semantics.
void apply_cli_overrides(const Cli& cli, harness::ExperimentOptions& opt) {
  if (cli.get_bool("quick", false)) {
    opt.scale = std::min(opt.scale, 0.05);
    opt.budget = std::min<std::uint64_t>(opt.budget, 20'000);
    opt.timeslice = std::min<std::uint64_t>(opt.timeslice, 10'000);
  }
  opt.scale = cli.get_double("scale", opt.scale);
  opt.budget = static_cast<std::uint64_t>(
      cli.get_int("budget", static_cast<std::int64_t>(opt.budget)));
  opt.timeslice = static_cast<std::uint64_t>(
      cli.get_int("timeslice", static_cast<std::int64_t>(opt.timeslice)));
}

// Deterministic bucket label for an axis value: choice and narrow int axes
// bucket per value, wide int and real axes into 4 equal-width bins.
std::string bucket_of(const mdes::DseAxis& axis, const mdes::Value& v) {
  switch (axis.kind) {
    case mdes::DseAxis::Kind::kChoice: return v.str();
    case mdes::DseAxis::Kind::kInt: {
      const std::int64_t span = axis.ihi - axis.ilo + 1;
      if (span <= 8) return v.str();
      const std::int64_t width = (span + 3) / 4;
      const std::int64_t bin = (v.i - axis.ilo) / width;
      const std::int64_t lo = axis.ilo + bin * width;
      return "[" + std::to_string(lo) + ".." +
             std::to_string(std::min(axis.ihi, lo + width - 1)) + "]";
    }
    case mdes::DseAxis::Kind::kReal: {
      const double width = (axis.rhi - axis.rlo) / 4.0;
      int bin = width > 0.0
                    ? static_cast<int>((v.as_double() - axis.rlo) / width)
                    : 0;
      bin = std::clamp(bin, 0, 3);
      return "[" + mdes::format_double(axis.rlo + bin * width) + ".." +
             mdes::format_double(axis.rlo + (bin + 1) * width) + ")";
    }
  }
  return v.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  VEXSIM_CHECK_MSG(cli.has("template"),
                   "vexplore needs --template FILE (see configs/)");
  const std::string template_path = cli.get("template", "");
  const std::int64_t sample_arg = cli.get_int("sample", 64);
  VEXSIM_CHECK_MSG(sample_arg >= 1, "--sample must be >= 1");
  const auto sample = static_cast<std::uint64_t>(sample_arg);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::int64_t attempts_arg =
      cli.get_int("max-attempts", 32 * sample_arg);
  VEXSIM_CHECK_MSG(attempts_arg >= sample_arg,
                   "--max-attempts must be >= --sample");
  const auto max_attempts = static_cast<std::uint64_t>(attempts_arg);

  const mdes::DseTemplate tmpl = mdes::load_template(template_path);

  // Serial sampling keeps the accepted set a pure function of
  // (template, seed): rejected draws burn their index and the next draw
  // proceeds, independent of --jobs.
  std::vector<Sampled> accepted;
  std::map<std::string, std::uint64_t> rejected;
  std::uint64_t attempts = 0;
  while (accepted.size() < sample && attempts < max_attempts) {
    const std::uint64_t index = attempts++;
    mdes::DsePoint p = mdes::sample_point(tmpl, seed, index);
    if (!p.ok) {
      ++rejected[p.reject_reason];
      continue;
    }
    accepted.push_back({index, std::move(p)});
  }
  std::uint64_t rejected_total = 0;
  for (const auto& [reason, n] : rejected) rejected_total += n;
  std::cout << "vexplore: " << accepted.size() << "/" << sample
            << " points accepted (" << attempts << " draws, "
            << rejected_total << " rejected)\n";

  std::vector<harness::SweepPoint> points;
  points.reserve(accepted.size());
  for (const Sampled& s : accepted) {
    harness::ExperimentOptions opt = s.point.scenario.opt;
    apply_cli_overrides(cli, opt);
    points.push_back({"p" + std::to_string(s.index) + "/" +
                          s.point.machine.geometry_name() + "/" +
                          std::to_string(s.point.machine.hw_threads) + "T/" +
                          s.point.machine.technique.name(),
                      s.point.machine, s.point.scenario.workload, opt});
  }
  harness::SweepOptions sweep_opts = harness::SweepOptions::from_cli(cli);
  const harness::ShardSpec shard = harness::ShardSpec::from_cli(cli);

  // Everything below is a pure function of (template, seed, flags), so every
  // shard process assembles the identical header, axis list, and per-point
  // sensitivity bucket labels — dse_report then reproduces the one-process
  // report from any complete set of shards.
  Json header = Json::object();
  header.set("experiment", "vexplore")
      .set("template", template_path)
      .set("seed", seed)
      .set("requested", sample)
      .set("attempts", attempts)
      .set("accepted", static_cast<std::uint64_t>(accepted.size()));
  Json rejects = Json::object();
  for (const auto& [reason, n] : rejected) rejects.set(reason, n);
  header.set("rejected", std::move(rejects));

  std::vector<std::string> axes;
  for (const mdes::DseAxis& axis : tmpl.axes) axes.push_back(axis.name);
  std::vector<std::vector<std::string>> buckets(accepted.size());
  for (std::size_t i = 0; i < accepted.size(); ++i)
    for (std::size_t a = 0; a < tmpl.axes.size(); ++a)
      buckets[i].push_back(
          bucket_of(tmpl.axes[a], accepted[i].point.bindings[a].second));

  const auto make_point_doc = [&](std::size_t i, const RunResult& r) {
    const Sampled& s = accepted[i];
    Json bindings = Json::object();
    for (const auto& [name, value] : s.point.bindings)
      bindings.set(name, value_json(value));
    Json pj = Json::object();
    pj.set("label", points[i].label)
        .set("bindings", std::move(bindings))
        .set("geometry", s.point.machine.geometry_name())
        .set("clusters", s.point.machine.clusters)
        .set("threads", s.point.machine.hw_threads)
        .set("technique", s.point.machine.technique.name())
        .set("total_issue", s.point.machine.total_issue_width())
        .set("workload", points[i].workload);
    if (r.failed) {
      pj.set("failed", true).set("error", r.error);
    } else {
      pj.set("cycles", r.sim.cycles)
          .set("instructions", r.sim.instructions_retired)
          .set("ipc", r.ipc());
    }
    return pj;
  };

  if (!shard.active) {
    const std::vector<RunResult> results =
        harness::run_sweep(points, sweep_opts);
    std::vector<Json> point_docs;
    point_docs.reserve(accepted.size());
    for (std::size_t i = 0; i < accepted.size(); ++i)
      point_docs.push_back(make_point_doc(i, results[i]));
    const Json report = harness::dse_report(header, axes, point_docs, buckets);

    const std::string out_path = cli.get("json", "VEXPLORE.json");
    write_json_file(out_path, report);
    std::cout << "vexplore: frontier " << report.at("pareto").size() << " of "
              << accepted.size() << " points; report in " << out_path << "\n";
    return 0;
  }

  // --shard i/N: simulate only the owned round-robin slice of accepted
  // points and emit a shard document for tools/vexmerge.
  const std::vector<harness::ManifestEntry> manifest =
      harness::build_manifest(points);
  std::vector<harness::SweepPoint> mine;
  std::vector<std::size_t> mine_index;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!shard.owns(i)) continue;
    mine.push_back(points[i]);
    mine_index.push_back(i);
  }
  const std::vector<RunResult> mine_results =
      harness::run_sweep(mine, sweep_opts);
  std::vector<Json> point_docs;
  std::vector<std::vector<std::string>> mine_buckets;
  point_docs.reserve(mine.size());
  mine_buckets.reserve(mine.size());
  for (std::size_t k = 0; k < mine.size(); ++k) {
    point_docs.push_back(make_point_doc(mine_index[k], mine_results[k]));
    mine_buckets.push_back(buckets[mine_index[k]]);
  }
  const Json doc =
      harness::dse_shard_json("vexplore", shard, header, axes, manifest,
                              mine_index, point_docs, mine_buckets, false);
  const std::string out_path =
      cli.get("json", "VEXPLORE.shard" + shard.tag() + ".json");
  write_json_file(out_path, doc);
  std::cout << "vexplore: shard " << shard.str() << " ran " << mine.size()
            << "/" << accepted.size()
            << " accepted points; shard document in " << out_path << "\n";
  return 0;
}
