#include "vasm/assembler.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace vexsim {

namespace {

// Minimal recursive-descent token scanner over one operation string.
class OpScanner {
 public:
  OpScanner(std::string_view text, int line) : text_(text), line_(line) {}

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(byte(pos_))) ++pos_;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  // Reads an identifier-like word ([A-Za-z_][A-Za-z0-9_]*).
  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(byte(pos_)) || text_[pos_] == '_'))
      ++pos_;
    VEXSIM_CHECK_MSG(pos_ > start, err("expected identifier"));
    return std::string(text_.substr(start, pos_ - start));
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
      pos_ += 2;
      while (pos_ < text_.size() && std::isxdigit(byte(pos_))) ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(byte(pos_))) ++pos_;
    }
    VEXSIM_CHECK_MSG(pos_ > start, err("expected integer"));
    return std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(),
                        nullptr, 0);
  }

  void expect(char c) {
    skip_ws();
    VEXSIM_CHECK_MSG(pos_ < text_.size() && text_[pos_] == c,
                     err(std::string("expected '") + c + "'"));
    ++pos_;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool accept(char c) {
    if (peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  // rN / bN / chN / integer / label distinction helpers.
  [[nodiscard]] bool peek_reg(char prefix) {
    skip_ws();
    return pos_ + 1 < text_.size() && text_[pos_] == prefix &&
           std::isdigit(byte(pos_ + 1));
  }

  int reg(char prefix) {
    skip_ws();
    VEXSIM_CHECK_MSG(peek_reg(prefix),
                     err(std::string("expected register '") + prefix + "N'"));
    ++pos_;
    return static_cast<int>(integer());
  }

  [[nodiscard]] std::string err(const std::string& what) const {
    std::ostringstream os;
    os << "line " << line_ << ": " << what << " in \"" << text_ << "\"";
    return os.str();
  }

 private:
  [[nodiscard]] unsigned char byte(std::size_t i) const {
    return static_cast<unsigned char>(text_[i]);
  }
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
};

struct PendingTarget {
  std::size_t instr_index;
  std::size_t bundle_cluster;
  std::size_t op_index;
  std::string label;
  int line;
};

// Parses one operation ("c0 add r1 = r2, r3") into op; label branch targets
// are recorded in `targets` and patched after all labels are known.
Operation parse_op(std::string_view text, int line, std::size_t instr_index,
                   std::vector<PendingTarget>& targets) {
  OpScanner s(text, line);
  // Cluster prefix.
  std::string cword = s.word();
  VEXSIM_CHECK_MSG(cword.size() >= 2 && cword[0] == 'c' &&
                       std::isdigit(static_cast<unsigned char>(cword[1])),
                   s.err("expected cluster prefix cN"));
  const int cluster = std::stoi(cword.substr(1));
  VEXSIM_CHECK_MSG(cluster >= 0 && cluster < kMaxClusters,
                   s.err("cluster out of range"));

  const std::string mnemonic = s.word();
  const Opcode opc = opcode_from_name(mnemonic);
  VEXSIM_CHECK_MSG(opc != Opcode::kCount,
                   s.err("unknown opcode '" + mnemonic + "'"));

  Operation op;
  op.opc = opc;
  op.cluster = static_cast<std::uint8_t>(cluster);

  auto parse_src2 = [&s, &op]() {
    if (s.peek_reg('r')) {
      op.src2 = static_cast<std::uint8_t>(s.reg('r'));
    } else {
      op.src2_is_imm = true;
      op.imm = static_cast<std::int32_t>(s.integer());
    }
  };

  auto parse_target = [&](std::size_t op_index_in_bundle) {
    if (s.accept('@')) {
      op.imm = static_cast<std::int32_t>(s.integer());
    } else {
      targets.push_back(PendingTarget{instr_index,
                                      static_cast<std::size_t>(cluster),
                                      op_index_in_bundle, s.word(), line});
    }
  };

  switch (op_class(opc)) {
    case OpClass::kNop:
      break;
    case OpClass::kAlu:
    case OpClass::kMul: {
      if (opc == Opcode::kSlct || opc == Opcode::kSlctf) {
        op.dst = static_cast<std::uint8_t>(s.reg('r'));
        s.expect('=');
        op.bsrc = static_cast<std::uint8_t>(s.reg('b'));
        s.expect(',');
        op.src1 = static_cast<std::uint8_t>(s.reg('r'));
        s.expect(',');
        parse_src2();
        break;
      }
      // dst: rN, or bN for comparisons.
      if (s.peek_reg('b')) {
        VEXSIM_CHECK_MSG(is_compare(opc),
                         s.err("only comparisons may target bN"));
        op.dst = static_cast<std::uint8_t>(s.reg('b'));
        op.dst_is_breg = true;
      } else {
        op.dst = static_cast<std::uint8_t>(s.reg('r'));
      }
      s.expect('=');
      if (opc == Opcode::kMovi) {
        op.imm = static_cast<std::int32_t>(s.integer());
        break;
      }
      op.src1 = static_cast<std::uint8_t>(s.reg('r'));
      if (reads_src2(opc)) {
        s.expect(',');
        parse_src2();
      }
      break;
    }
    case OpClass::kMem: {
      if (is_load(opc)) {
        op.dst = static_cast<std::uint8_t>(s.reg('r'));
        s.expect('=');
        op.imm = static_cast<std::int32_t>(s.integer());
        s.expect('[');
        op.src1 = static_cast<std::uint8_t>(s.reg('r'));
        s.expect(']');
      } else {
        op.imm = static_cast<std::int32_t>(s.integer());
        s.expect('[');
        op.src1 = static_cast<std::uint8_t>(s.reg('r'));
        s.expect(']');
        s.expect('=');
        op.src2 = static_cast<std::uint8_t>(s.reg('r'));
      }
      break;
    }
    case OpClass::kBranch: {
      if (opc == Opcode::kHalt) break;
      if (opc == Opcode::kGoto) {
        parse_target(0);
        break;
      }
      op.bsrc = static_cast<std::uint8_t>(s.reg('b'));
      s.expect(',');
      parse_target(0);
      break;
    }
    case OpClass::kComm: {
      if (opc == Opcode::kSend) {
        // send chN = rS
        std::string ch = s.word();
        VEXSIM_CHECK_MSG(ch.rfind("ch", 0) == 0, s.err("expected chN"));
        op.chan = static_cast<std::uint8_t>(std::stoi(ch.substr(2)));
        s.expect('=');
        op.src1 = static_cast<std::uint8_t>(s.reg('r'));
      } else {
        op.dst = static_cast<std::uint8_t>(s.reg('r'));
        s.expect('=');
        std::string ch = s.word();
        VEXSIM_CHECK_MSG(ch.rfind("ch", 0) == 0, s.err("expected chN"));
        op.chan = static_cast<std::uint8_t>(std::stoi(ch.substr(2)));
      }
      break;
    }
  }
  VEXSIM_CHECK_MSG(s.at_end(), s.err("trailing characters"));
  return op;
}

std::string strip(std::string_view v) {
  std::size_t b = 0, e = v.size();
  while (b < e && std::isspace(static_cast<unsigned char>(v[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(v[e - 1]))) --e;
  return std::string(v.substr(b, e - b));
}

}  // namespace

Program assemble(std::string_view source, std::string name) {
  Program prog;
  prog.name = std::move(name);
  std::map<std::string, std::uint32_t> label_to_index;
  std::vector<PendingTarget> targets;

  std::istringstream in{std::string(source)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments: '#' and ';;' to end of line.
    if (const auto pos = raw.find('#'); pos != std::string::npos)
      raw.erase(pos);
    if (const auto pos = raw.find(";;"); pos != std::string::npos)
      raw.erase(pos);
    std::string line = strip(raw);
    if (line.empty()) continue;

    // Label?
    if (line.back() == ':') {
      const std::string label = strip(line.substr(0, line.size() - 1));
      VEXSIM_CHECK_MSG(!label.empty(), "line " << line_no << ": empty label");
      VEXSIM_CHECK_MSG(label_to_index.count(label) == 0,
                       "line " << line_no << ": duplicate label " << label);
      const auto idx = static_cast<std::uint32_t>(prog.code.size());
      label_to_index[label] = idx;
      prog.labels[idx] = label;
      continue;
    }

    VliwInstruction insn;
    if (line != "nop") {
      // Split on ';' (but ';;' comments already removed).
      std::size_t start = 0;
      while (start <= line.size()) {
        std::size_t sep = line.find(';', start);
        if (sep == std::string::npos) sep = line.size();
        const std::string piece = strip(
            std::string_view(line).substr(start, sep - start));
        if (!piece.empty()) {
          const std::size_t targets_before = targets.size();
          Operation op =
              parse_op(piece, line_no, prog.code.size(), targets);
          if (!op.is_nop()) {
            insn.add(op);
            // Fix up the recorded position of a label-target op now that we
            // know where it landed in its bundle.
            if (targets.size() > targets_before)
              targets.back().op_index = insn.bundles[op.cluster].size() - 1;
          }
        }
        start = sep + 1;
      }
    }
    prog.code.push_back(insn);
  }

  // Patch label targets.
  for (const PendingTarget& t : targets) {
    const auto it = label_to_index.find(t.label);
    VEXSIM_CHECK_MSG(it != label_to_index.end(),
                     "line " << t.line << ": undefined label " << t.label);
    Bundle& b = prog.code[t.instr_index].bundles[t.bundle_cluster];
    VEXSIM_CHECK_MSG(t.op_index < b.size(),
                     "line " << t.line << ": could not patch branch target");
    b[t.op_index].imm = static_cast<std::int32_t>(it->second);
  }

  prog.finalize();
  return prog;
}

}  // namespace vexsim
