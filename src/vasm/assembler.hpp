// Text assembler for vexsim programs.
//
// One line = one VLIW instruction; operations separated by ';'. Syntax
// (mirrors the disassembler output, so print → parse round-trips):
//
//   # comment to end of line
//   loop:                          # label
//     c0 add r1 = r2, r3 ; c1 ldw r4 = 8[r5]
//     c0 movi r1 = 42
//     c0 cmplt b0 = r1, 100       # compare into branch register
//     c0 slct r1 = b0, r2, r3
//     c0 stw 4[r2] = r3
//     c0 send ch0 = r5 ; c1 recv r7 = ch0
//     nop                          # empty instruction (vertical nop)
//     c0 br b0, loop               # or a numeric target: br b0, @12
//     c0 halt
#pragma once

#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace vexsim {

// Parses `source` into a finalized Program. Throws CheckError with a line
// number on syntax errors or unresolved labels.
[[nodiscard]] Program assemble(std::string_view source,
                               std::string name = "asm");

}  // namespace vexsim
