// Set-associative LRU cache timing model.
//
// Pure timing: data lives in MainMemory; the cache only decides hit/miss and
// accounts statistics. Tags carry an address-space id so the threads of a
// multiprogrammed workload interfere in the shared cache exactly as they
// would on the real SMT machine (the paper's single-level 64 KB 4-way
// configuration for both ICache and DCache, 20-cycle miss penalty, no L2).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/config.hpp"

namespace vexsim {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) /
                                 static_cast<double>(accesses());
  }
  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  // Returns true on hit. On miss the line is filled (write-allocate) with
  // LRU replacement. Perfect caches always hit. Inline fast path: the
  // per-asid line memo resolves the overwhelming majority of accesses
  // without the set scan (which lives out of line in access_scan).
  bool access(std::uint32_t asid, std::uint32_t addr) {
    if (cfg_.perfect) {
      ++stats_.hits;
      return true;
    }
    ++tick_;
    const std::uint64_t tag = tag_of(asid, addr);
    MemoEntry& lane = memo_lane(asid, addr);
    if (lane.tag == tag && ways_[lane.way].tag == tag) {
      ways_[lane.way].stamp = tick_;
      ++stats_.hits;
      return true;
    }
    return access_scan(tag, addr, lane);
  }

  // Hit/miss probe without side effects.
  [[nodiscard]] bool would_hit(std::uint32_t asid, std::uint32_t addr) const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t num_sets() const { return sets_; }
  void reset();

 private:
  struct Way {
    std::uint64_t tag = kInvalid;
    std::uint64_t stamp = 0;
  };
  // A remembered line: its tag plus the index of the way holding it. Checked
  // against the live way tag on use, so replacement (by any thread)
  // invalidates an entry for free; indices (not pointers) keep the memo
  // valid across copies. Lanes are indexed by (asid, set) so each address
  // space gets its own shard and a thread's interleaved access streams
  // (sequential fetch plus branch target, load stream plus store stream)
  // land on distinct lanes instead of evicting one another.
  struct MemoEntry {
    std::uint64_t tag = kInvalid;
    std::uint32_t way = 0;
  };
  static constexpr std::uint64_t kInvalid = ~0ull;

  [[nodiscard]] std::uint64_t tag_of(std::uint32_t asid,
                                     std::uint32_t addr) const {
    return (static_cast<std::uint64_t>(asid) << 32) | (addr >> line_shift_);
  }
  [[nodiscard]] std::uint32_t set_of(std::uint32_t addr) const {
    return (addr >> line_shift_) & (sets_ - 1);
  }
  [[nodiscard]] MemoEntry& memo_lane(std::uint32_t asid, std::uint32_t addr) {
    const std::uint32_t idx = ((asid & (kMemoAsids - 1)) << kMemoSetShift) |
                              (set_of(addr) & (kMemoSetLanes - 1));
    return memo_[idx];
  }
  // Memo-miss continuation of access(): the set walk with LRU fill.
  bool access_scan(std::uint64_t tag, std::uint32_t addr, MemoEntry& lane);

  CacheConfig cfg_;
  std::uint32_t sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::vector<Way> ways_;  // sets_ × assoc
  std::uint64_t tick_ = 0;
  // Per-(asid, set) memo lanes. ASIDs are workload instance numbers (not hw
  // slots), so the asid dimension is sized well past any realistic
  // co-scheduled set; a collision in either dimension only costs the
  // shortcut, never correctness.
  static constexpr std::uint32_t kMemoAsids = 16;     // power of two
  static constexpr std::uint32_t kMemoSetLanes = 8;   // power of two
  static constexpr std::uint32_t kMemoSetShift = 3;   // log2(kMemoSetLanes)
  std::array<MemoEntry, kMemoAsids * kMemoSetLanes> memo_{};
  CacheStats stats_;
};

}  // namespace vexsim
