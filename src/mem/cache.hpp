// Set-associative LRU cache timing model.
//
// Pure timing: data lives in MainMemory; the cache only decides hit/miss and
// accounts statistics. Tags carry an address-space id so the threads of a
// multiprogrammed workload interfere in the shared cache exactly as they
// would on the real SMT machine (the paper's single-level 64 KB 4-way
// configuration for both ICache and DCache, 20-cycle miss penalty, no L2).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/config.hpp"

namespace vexsim {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) /
                                 static_cast<double>(accesses());
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  // Returns true on hit. On miss the line is filled (write-allocate) with
  // LRU replacement. Perfect caches always hit.
  bool access(std::uint32_t asid, std::uint32_t addr);

  // Hit/miss probe without side effects.
  [[nodiscard]] bool would_hit(std::uint32_t asid, std::uint32_t addr) const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t num_sets() const { return sets_; }
  void reset();

 private:
  struct Way {
    std::uint64_t tag = kInvalid;
    std::uint64_t stamp = 0;
  };
  static constexpr std::uint64_t kInvalid = ~0ull;

  [[nodiscard]] std::uint64_t tag_of(std::uint32_t asid,
                                     std::uint32_t addr) const;
  [[nodiscard]] std::uint32_t set_of(std::uint32_t addr) const;

  CacheConfig cfg_;
  std::uint32_t sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::vector<Way> ways_;  // sets_ × assoc
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace vexsim
