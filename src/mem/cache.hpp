// Set-associative LRU cache timing model.
//
// Pure timing: data lives in MainMemory; the cache only decides hit/miss and
// accounts statistics. Tags carry an address-space id so the threads of a
// multiprogrammed workload interfere in the shared cache exactly as they
// would on the real SMT machine (the paper's single-level 64 KB 4-way
// configuration for both ICache and DCache, 20-cycle miss penalty, no L2).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/config.hpp"

namespace vexsim {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) /
                                 static_cast<double>(accesses());
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);
  // Copies must not carry the memo's raw pointers into the source's ways_.
  Cache(const Cache& other) { *this = other; }
  Cache& operator=(const Cache& other) {
    cfg_ = other.cfg_;
    sets_ = other.sets_;
    line_shift_ = other.line_shift_;
    ways_ = other.ways_;
    tick_ = other.tick_;
    stats_ = other.stats_;
    last_way_.fill(nullptr);
    last_tag_.fill(kInvalid);
    return *this;
  }
  Cache(Cache&&) = default;
  Cache& operator=(Cache&&) = default;

  // Returns true on hit. On miss the line is filled (write-allocate) with
  // LRU replacement. Perfect caches always hit.
  bool access(std::uint32_t asid, std::uint32_t addr);

  // Hit/miss probe without side effects.
  [[nodiscard]] bool would_hit(std::uint32_t asid, std::uint32_t addr) const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t num_sets() const { return sets_; }
  void reset();

 private:
  struct Way {
    std::uint64_t tag = kInvalid;
    std::uint64_t stamp = 0;
  };
  static constexpr std::uint64_t kInvalid = ~0ull;

  [[nodiscard]] std::uint64_t tag_of(std::uint32_t asid,
                                     std::uint32_t addr) const;
  [[nodiscard]] std::uint32_t set_of(std::uint32_t addr) const;

  CacheConfig cfg_;
  std::uint32_t sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::vector<Way> ways_;  // sets_ × assoc
  std::uint64_t tick_ = 0;
  // Last way hit per address space: a thread's consecutive accesses to one
  // line (sequential fetch, strided data) skip the set scan even though the
  // threads of the shared cache interleave. Validated against the live tag,
  // so replacement invalidates an entry for free. ASIDs are workload
  // instance numbers (not hw slots), so the table is sized well past any
  // realistic co-scheduled set; an asid collision only costs the shortcut.
  static constexpr std::uint32_t kMemoSlots = 32;
  std::array<Way*, kMemoSlots> last_way_{};
  std::array<std::uint64_t, kMemoSlots> last_tag_;
  CacheStats stats_;
};

}  // namespace vexsim
