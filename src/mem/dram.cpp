#include "mem/dram.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace vexsim::mem {

DramModel::DramModel(const DramConfig& cfg, std::uint32_t line_bytes)
    : cfg_(cfg) {
  VEXSIM_CHECK_MSG(std::has_single_bit(cfg.banks), "bank count not 2^n");
  VEXSIM_CHECK_MSG(std::has_single_bit(cfg.row_bytes), "row size not 2^n");
  VEXSIM_CHECK_MSG(std::has_single_bit(line_bytes), "line size not 2^n");
  VEXSIM_CHECK_MSG(cfg.row_bytes >= line_bytes,
                   "row smaller than the fill line");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
  row_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg.row_bytes));
  banks_.assign(cfg.banks, Bank{});
}

std::uint64_t DramModel::access(std::uint32_t asid, std::uint32_t addr,
                                std::uint64_t cycle) {
  // Line interleaving; the asid folds in so co-scheduled address spaces
  // spread over the banks instead of colliding on identical layouts.
  const std::uint32_t b =
      ((addr >> line_shift_) + asid) & (cfg_.banks - 1);
  // A row is per-(asid, row index): address spaces are distinct memories.
  const std::uint64_t row =
      (static_cast<std::uint64_t>(asid) << 32) | (addr >> row_shift_);
  Bank& bank = banks_[b];

  std::uint32_t latency = 0;
  if (bank.open_row == row) {
    latency = cfg_.t_row_hit;
    ++stats_.row_hits;
  } else if (bank.open_row == ~0ull) {
    latency = cfg_.t_row_closed;
    ++stats_.row_closed;
  } else {
    latency = cfg_.t_row_conflict;
    ++stats_.row_conflicts;
  }

  const std::uint64_t issue = std::max(cycle, bank.next_free);
  bank.open_row = row;
  bank.next_free = issue + cfg_.t_bank_busy;
  return issue + latency;
}

void DramModel::reset() {
  for (Bank& b : banks_) b = Bank{};
  stats_ = DramStats{};
}

}  // namespace vexsim::mem
