#include "mem/backend.hpp"

#include <algorithm>
#include <bit>

namespace vexsim::mem {

namespace {

std::uint32_t line_shift_of(const CacheConfig& c) {
  return static_cast<std::uint32_t>(std::countr_zero(c.line_bytes));
}

}  // namespace

HierarchyBackend::HierarchyBackend(const MachineConfig& cfg)
    : MemoryBackend(cfg.icache, cfg.dcache),
      imshr_(cfg.memory.l1_mshrs, line_shift_of(cfg.icache)),
      dmshr_(cfg.memory.l1_mshrs, line_shift_of(cfg.dcache)),
      l2_(cfg.memory.l2),
      dram_(cfg.memory.dram, cfg.memory.l2.line_bytes) {}

std::uint64_t HierarchyBackend::fill(std::uint32_t asid, std::uint32_t addr,
                                     std::uint64_t start) {
  // The L2 lookup costs hit_latency either way; a miss forwards to the
  // DRAM controller after it (and fills the L2 line — inclusive).
  const std::uint64_t looked_up = start + l2_.hit_latency();
  if (l2_.access(asid, addr)) return looked_up;
  return dram_.access(asid, addr, looked_up);
}

std::uint64_t HierarchyBackend::ifetch_miss(std::uint32_t asid,
                                            std::uint32_t addr,
                                            std::uint64_t cycle) {
  return imshr_.request(asid, addr, cycle,
                        [&](std::uint64_t start) {
                          return fill(asid, addr, start);
                        });
}

std::uint64_t HierarchyBackend::dmem_miss(std::uint32_t asid,
                                          std::uint32_t addr,
                                          bool /*is_store*/,
                                          std::uint64_t cycle) {
  // Store misses allocate like loads (write-allocate L1s, and the fill
  // occupies an MSHR entry either way); the ST200-style write buffer that
  // keeps the *thread* running on a store miss is the simulator's policy.
  return dmshr_.request(asid, addr, cycle,
                        [&](std::uint64_t start) {
                          return fill(asid, addr, start);
                        });
}

std::uint64_t HierarchyBackend::next_event_after(std::uint64_t cycle) const {
  return std::min(imshr_.next_completion_after(cycle),
                  dmshr_.next_completion_after(cycle));
}

MemoryStats HierarchyBackend::memory_stats() const {
  MemoryStats s;
  s.present = true;
  s.imshr = imshr_.stats();
  s.dmshr = dmshr_.stats();
  s.l2 = l2_.stats();
  s.dram = dram_.stats();
  return s;
}

std::unique_ptr<MemoryBackend> make_backend(const MachineConfig& cfg) {
  if (cfg.memory.backend == MemBackendKind::kHierarchy)
    return std::make_unique<HierarchyBackend>(cfg);
  return std::make_unique<FixedLatencyBackend>(cfg);
}

}  // namespace vexsim::mem
