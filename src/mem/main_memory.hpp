// Functional main memory: sparse, paged, little-endian, zero-initialized.
//
// Each benchmark thread owns a private address space (the evaluation runs
// multiprogrammed workloads, not shared-memory ones). Accesses below
// kGuardLimit or misaligned accesses fault — used by the precise-exception
// machinery and its tests.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace vexsim {

class MainMemory {
 public:
  static constexpr std::uint32_t kPageBits = 16;  // 64 KiB pages
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;
  static constexpr std::uint32_t kGuardLimit = 0x100;  // null-page guard

  MainMemory() = default;
  // Copies must not alias the source's page storage through the memo.
  MainMemory(const MainMemory& other) : pages_(other.pages_) {}
  MainMemory& operator=(const MainMemory& other) {
    pages_ = other.pages_;
    cached_index_ = kNoPage;
    cached_page_ = nullptr;
    return *this;
  }
  MainMemory(MainMemory&&) = default;
  MainMemory& operator=(MainMemory&&) = default;

  // size ∈ {1,2,4}. Returns false on fault (misaligned / guard page); the
  // value is sign- or zero-extended by the caller (ISA level), not here.
  [[nodiscard]] bool load(std::uint32_t addr, int size,
                          std::uint32_t& out) const;
  [[nodiscard]] bool store(std::uint32_t addr, int size, std::uint32_t value);

  // Unchecked helpers for program loading and test setup.
  void poke_bytes(std::uint32_t addr, const std::uint8_t* bytes,
                  std::size_t n);
  void poke_u32(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] std::uint32_t peek_u32(std::uint32_t addr) const;

  void clear() {
    pages_.clear();
    cached_index_ = kNoPage;
    cached_page_ = nullptr;
  }

  // Deterministic digest of all touched pages — used by equivalence tests to
  // compare final memory states across techniques.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  using Page = std::vector<std::uint8_t>;
  static constexpr std::uint32_t kNoPage = ~0u;
  [[nodiscard]] const Page* find_page(std::uint32_t addr) const;
  Page& page_for(std::uint32_t addr);

  std::unordered_map<std::uint32_t, Page> pages_;
  // One-entry page cache: kernel working sets hammer the same page, so the
  // common access skips the hash lookup. Page storage is node-based
  // (unordered_map), so cached pointers stay valid until clear().
  mutable std::uint32_t cached_index_ = kNoPage;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace vexsim
