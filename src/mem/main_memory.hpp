// Functional main memory: sparse, paged, little-endian, zero-initialized.
//
// Each benchmark thread owns a private address space (the evaluation runs
// multiprogrammed workloads, not shared-memory ones). Accesses below
// kGuardLimit or misaligned accesses fault — used by the precise-exception
// machinery and its tests.
//
// load/store are inline: they run once per executed memory operation, and
// with the page memo the whole fast path is a handful of instructions — a
// cross-TU call would cost more than the access.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace vexsim {

class MainMemory {
 public:
  static constexpr std::uint32_t kPageBits = 16;  // 64 KiB pages
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;
  static constexpr std::uint32_t kGuardLimit = 0x100;  // null-page guard

  MainMemory() = default;
  // Copies must not alias the source's page storage through the memo.
  MainMemory(const MainMemory& other) : pages_(other.pages_) {}
  MainMemory& operator=(const MainMemory& other) {
    pages_ = other.pages_;
    reset_memo();
    return *this;
  }
  MainMemory(MainMemory&&) = default;
  MainMemory& operator=(MainMemory&&) = default;

  // size ∈ {1,2,4}. Returns false on fault (misaligned / guard page); the
  // value is sign- or zero-extended by the caller (ISA level), not here.
  [[nodiscard]] bool load(std::uint32_t addr, int size,
                          std::uint32_t& out) const {
    VEXSIM_CHECK(size == 1 || size == 2 || size == 4);
    if (addr < kGuardLimit) return false;
    if ((addr & (static_cast<std::uint32_t>(size) - 1)) != 0) return false;
    const Page* p = find_page(addr);
    if (p == nullptr) {
      out = 0;  // untouched memory reads as zero
      return true;
    }
    // A whole access never crosses a page: pages are 64 KiB and aligned, and
    // the alignment check above keeps a size-n access inside an n-byte unit.
    const std::uint32_t off = addr & (kPageSize - 1);
    if constexpr (std::endian::native == std::endian::little) {
      // The simulated machine is little-endian too: aligned accesses are a
      // straight memcpy (which the compiler lowers to a single load).
      if (size == 4) {
        std::uint32_t v = 0;
        std::memcpy(&v, p->data() + off, 4);
        out = v;
        return true;
      }
      if (size == 2) {
        std::uint16_t v = 0;
        std::memcpy(&v, p->data() + off, 2);
        out = v;
        return true;
      }
    }
    std::uint32_t v = 0;
    for (int i = size - 1; i >= 0; --i)
      v = (v << 8) | (*p)[off + static_cast<std::uint32_t>(i)];
    out = v;
    return true;
  }

  [[nodiscard]] bool store(std::uint32_t addr, int size, std::uint32_t value) {
    VEXSIM_CHECK(size == 1 || size == 2 || size == 4);
    if (addr < kGuardLimit) return false;
    if ((addr & (static_cast<std::uint32_t>(size) - 1)) != 0) return false;
    Page& p = page_for(addr);
    const std::uint32_t off = addr & (kPageSize - 1);
    if constexpr (std::endian::native == std::endian::little) {
      if (size == 4) {
        std::memcpy(p.data() + off, &value, 4);
        return true;
      }
      if (size == 2) {
        const auto v = static_cast<std::uint16_t>(value);
        std::memcpy(p.data() + off, &v, 2);
        return true;
      }
    }
    for (int i = 0; i < size; ++i)
      p[off + static_cast<std::uint32_t>(i)] =
          static_cast<std::uint8_t>(value >> (8 * i));
    return true;
  }

  // Unchecked helpers for program loading and test setup.
  void poke_bytes(std::uint32_t addr, const std::uint8_t* bytes,
                  std::size_t n);
  void poke_u32(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] std::uint32_t peek_u32(std::uint32_t addr) const;

  void clear() {
    pages_.clear();
    reset_memo();
  }

  // Deterministic digest of all touched pages — used by equivalence tests to
  // compare final memory states across techniques.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  using Page = std::vector<std::uint8_t>;
  static constexpr std::uint32_t kNoPage = ~0u;

  [[nodiscard]] const Page* find_page(std::uint32_t addr) const {
    const std::uint32_t index = addr >> kPageBits;
    const std::uint32_t lane = index & (kMemoLanes - 1);
    if (index == cached_index_[lane]) return cached_page_[lane];
    const auto it = pages_.find(index);
    if (it == pages_.end()) return nullptr;  // absence is not cached: a store
                                             // may create the page later
    cached_index_[lane] = index;
    cached_page_[lane] = const_cast<Page*>(&it->second);
    return cached_page_[lane];
  }

  Page& page_for(std::uint32_t addr) {
    const std::uint32_t index = addr >> kPageBits;
    const std::uint32_t lane = index & (kMemoLanes - 1);
    if (index == cached_index_[lane]) return *cached_page_[lane];
    Page& p = pages_[index];
    if (p.empty()) p.resize(kPageSize, 0);
    cached_index_[lane] = index;
    cached_page_[lane] = &p;
    return p;
  }

  void reset_memo() {
    cached_index_.fill(kNoPage);
    cached_page_.fill(nullptr);
  }

  std::unordered_map<std::uint32_t, Page> pages_;
  // Small direct-mapped page memo (indexed by the low page-index bits):
  // kernel working sets hammer a handful of pages, so the common access
  // skips the hash lookup, and a load stream on one page no longer evicts
  // the memo for a store stream on another. Page storage is node-based
  // (unordered_map), so cached pointers stay valid until clear().
  static constexpr std::uint32_t kMemoLanes = 4;  // power of two
  mutable std::array<std::uint32_t, kMemoLanes> cached_index_{
      kNoPage, kNoPage, kNoPage, kNoPage};
  mutable std::array<Page*, kMemoLanes> cached_page_{};
};

}  // namespace vexsim
