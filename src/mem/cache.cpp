#include "mem/cache.hpp"

#include <bit>

#include "util/check.hpp"

namespace vexsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  VEXSIM_CHECK_MSG(std::has_single_bit(cfg.line_bytes), "line size not 2^n");
  VEXSIM_CHECK(cfg.assoc >= 1);
  VEXSIM_CHECK(cfg.size_bytes % (cfg.line_bytes * cfg.assoc) == 0);
  sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.assoc);
  VEXSIM_CHECK_MSG(std::has_single_bit(sets_), "set count not 2^n");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg.line_bytes));
  ways_.assign(static_cast<std::size_t>(sets_) * cfg.assoc, Way{});
}

bool Cache::access_scan(std::uint64_t tag, std::uint32_t addr,
                        MemoEntry& lane) {
  const std::size_t base = static_cast<std::size_t>(set_of(addr)) * cfg_.assoc;
  Way* set = &ways_[base];
  std::uint32_t victim = 0;
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (set[w].tag == tag) {
      set[w].stamp = tick_;
      lane = MemoEntry{tag, static_cast<std::uint32_t>(base + w)};
      ++stats_.hits;
      return true;
    }
    if (set[w].stamp < set[victim].stamp) victim = w;
  }
  set[victim].tag = tag;
  set[victim].stamp = tick_;
  lane = MemoEntry{tag, static_cast<std::uint32_t>(base + victim)};
  ++stats_.misses;
  return false;
}

bool Cache::would_hit(std::uint32_t asid, std::uint32_t addr) const {
  if (cfg_.perfect) return true;
  const std::uint64_t tag = tag_of(asid, addr);
  const Way* set = &ways_[static_cast<std::size_t>(set_of(addr)) * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
    if (set[w].tag == tag) return true;
  return false;
}

void Cache::reset() {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
  memo_.fill(MemoEntry{});
  stats_ = CacheStats{};
}

}  // namespace vexsim
