#include "mem/cache.hpp"

#include <bit>

#include "util/check.hpp"

namespace vexsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  VEXSIM_CHECK_MSG(std::has_single_bit(cfg.line_bytes), "line size not 2^n");
  VEXSIM_CHECK(cfg.assoc >= 1);
  VEXSIM_CHECK(cfg.size_bytes % (cfg.line_bytes * cfg.assoc) == 0);
  sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.assoc);
  VEXSIM_CHECK_MSG(std::has_single_bit(sets_), "set count not 2^n");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg.line_bytes));
  ways_.assign(static_cast<std::size_t>(sets_) * cfg.assoc, Way{});
  last_tag_.fill(kInvalid);
}

std::uint64_t Cache::tag_of(std::uint32_t asid, std::uint32_t addr) const {
  return (static_cast<std::uint64_t>(asid) << 32) | (addr >> line_shift_);
}

std::uint32_t Cache::set_of(std::uint32_t addr) const {
  return (addr >> line_shift_) & (sets_ - 1);
}

bool Cache::access(std::uint32_t asid, std::uint32_t addr) {
  if (cfg_.perfect) {
    ++stats_.hits;
    return true;
  }
  ++tick_;
  const std::uint64_t tag = tag_of(asid, addr);
  const std::uint32_t memo = asid % kMemoSlots;
  if (tag == last_tag_[memo] && last_way_[memo]->tag == tag) {
    last_way_[memo]->stamp = tick_;
    ++stats_.hits;
    return true;
  }
  Way* set = &ways_[static_cast<std::size_t>(set_of(addr)) * cfg_.assoc];
  Way* victim = set;
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (set[w].tag == tag) {
      set[w].stamp = tick_;
      last_way_[memo] = &set[w];
      last_tag_[memo] = tag;
      ++stats_.hits;
      return true;
    }
    if (set[w].stamp < victim->stamp) victim = &set[w];
  }
  victim->tag = tag;
  victim->stamp = tick_;
  last_way_[memo] = victim;
  last_tag_[memo] = tag;
  ++stats_.misses;
  return false;
}

bool Cache::would_hit(std::uint32_t asid, std::uint32_t addr) const {
  if (cfg_.perfect) return true;
  const std::uint64_t tag = tag_of(asid, addr);
  const Way* set = &ways_[static_cast<std::size_t>(set_of(addr)) * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
    if (set[w].tag == tag) return true;
  return false;
}

void Cache::reset() {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
  last_way_.fill(nullptr);
  last_tag_.fill(kInvalid);
  stats_ = CacheStats{};
}

}  // namespace vexsim
