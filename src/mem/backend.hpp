// Pluggable miss-handling behind the L1 caches.
//
// The simulator keeps the L1 hit path inline (Cache::access, the same
// memoized fast path as the seed); only a *miss* reaches the backend, which
// answers one question: at which absolute cycle is the line's data usable?
// The returned cycle feeds the per-thread pending-miss handles
// (fetch_ready_at / mem_block_until in arch/thread_context.hpp), so the
// whole model stays event-free — every completion is a scheduled cycle
// computed at access time, never a callback — and fast_forward's
// arithmetic idle-skip continues to work unchanged.
//
// Two implementations:
//   FixedLatencyBackend  the seed's flat CacheConfig::miss_penalty. The
//                        default; byte-identical to the pre-refactor
//                        simulator (golden suite enforced).
//   HierarchyBackend     non-blocking L1s fronted by bounded MSHRs (miss
//                        coalescing + structural stalls when full), one
//                        shared inclusive L2, and banked DRAM with
//                        row-buffer hit/closed/conflict timing and
//                        per-bank queues.
//
// fast_forward additionally consults next_event_after(): the earliest
// in-flight completion the backend still holds. The fixed backend has no
// state beyond the caches and returns kNoEvent (today's skip behaviour,
// bit-identical); the hierarchy backend clamps the skip horizon to its
// next MSHR completion so the clock never jumps a scheduled miss event.
// Stopping early is statistics-neutral — a stepped empty cycle accounts
// exactly like a skipped one (the fast_forward-vs-pure-loop equivalence
// suite pins this) — but keeps the skip honest about backend events.
#pragma once

#include <cstdint>
#include <memory>

#include "isa/config.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/l2.hpp"
#include "mem/mshr.hpp"

namespace vexsim::mem {

// Aggregated hierarchy statistics for RunResult / sweep JSON. `present` is
// false for the fixed backend, and the serializers skip the whole block
// then, so pre-hierarchy goldens stay byte-identical.
struct MemoryStats {
  bool present = false;
  MshrStats imshr;
  MshrStats dmshr;
  CacheStats l2;
  DramStats dram;

  friend bool operator==(const MemoryStats&, const MemoryStats&) = default;
};

class MemoryBackend {
 public:
  // next_event_after() result when the backend holds no future completion.
  static constexpr std::uint64_t kNoEvent = ~0ull;

  MemoryBackend(const CacheConfig& icache, const CacheConfig& dcache)
      : icache_(icache), dcache_(dcache) {}
  virtual ~MemoryBackend() = default;
  MemoryBackend(const MemoryBackend&) = delete;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  // The L1 timing caches. Owned here so a backend can model their refill
  // traffic; the simulator calls Cache::access directly for the hit path
  // and surfaces them through Simulator::icache()/dcache().
  [[nodiscard]] Cache& icache() { return icache_; }
  [[nodiscard]] Cache& dcache() { return dcache_; }

  // An instruction fetch of `addr` missed the L1 at `cycle`: the cycle the
  // fetch can complete. Always > cycle.
  virtual std::uint64_t ifetch_miss(std::uint32_t asid, std::uint32_t addr,
                                    std::uint64_t cycle) = 0;

  // A data access of `addr` missed the L1 at `cycle`: the cycle the data
  // arrives. Called for stores too (the fill occupies the same machinery);
  // whether the thread blocks on a store miss is the simulator's policy
  // (MachineConfig::stall_on_store_miss). Always > cycle.
  virtual std::uint64_t dmem_miss(std::uint32_t asid, std::uint32_t addr,
                                  bool is_store, std::uint64_t cycle) = 0;

  // Earliest in-flight completion strictly after `cycle`, or kNoEvent.
  [[nodiscard]] virtual std::uint64_t next_event_after(
      std::uint64_t cycle) const = 0;

  // Hierarchy statistics; `present` is false for the fixed backend.
  [[nodiscard]] virtual MemoryStats memory_stats() const = 0;

 protected:
  Cache icache_;
  Cache dcache_;
};

// The seed model: every miss costs the L1's flat miss_penalty.
class FixedLatencyBackend final : public MemoryBackend {
 public:
  explicit FixedLatencyBackend(const MachineConfig& cfg)
      : MemoryBackend(cfg.icache, cfg.dcache),
        imiss_penalty_(cfg.icache.miss_penalty),
        dmiss_penalty_(cfg.dcache.miss_penalty) {}

  std::uint64_t ifetch_miss(std::uint32_t /*asid*/, std::uint32_t /*addr*/,
                            std::uint64_t cycle) override {
    return cycle + imiss_penalty_;
  }
  std::uint64_t dmem_miss(std::uint32_t /*asid*/, std::uint32_t /*addr*/,
                          bool /*is_store*/, std::uint64_t cycle) override {
    return cycle + dmiss_penalty_;
  }
  [[nodiscard]] std::uint64_t next_event_after(
      std::uint64_t /*cycle*/) const override {
    return kNoEvent;
  }
  [[nodiscard]] MemoryStats memory_stats() const override { return {}; }

 private:
  std::uint32_t imiss_penalty_;
  std::uint32_t dmiss_penalty_;
};

// MSHRs + shared inclusive L2 + banked DRAM (MemoryConfig parameters).
class HierarchyBackend final : public MemoryBackend {
 public:
  explicit HierarchyBackend(const MachineConfig& cfg);

  std::uint64_t ifetch_miss(std::uint32_t asid, std::uint32_t addr,
                            std::uint64_t cycle) override;
  std::uint64_t dmem_miss(std::uint32_t asid, std::uint32_t addr,
                          bool is_store, std::uint64_t cycle) override;
  [[nodiscard]] std::uint64_t next_event_after(
      std::uint64_t cycle) const override;
  [[nodiscard]] MemoryStats memory_stats() const override;

 private:
  // L2 lookup (then DRAM on an L2 miss) for a fill issued at `start`.
  std::uint64_t fill(std::uint32_t asid, std::uint32_t addr,
                     std::uint64_t start);

  MshrFile imshr_;
  MshrFile dmshr_;
  SharedL2 l2_;
  DramModel dram_;
};

// The backend selected by cfg.memory.backend.
[[nodiscard]] std::unique_ptr<MemoryBackend> make_backend(
    const MachineConfig& cfg);

}  // namespace vexsim::mem
