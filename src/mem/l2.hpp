// Shared inclusive L2 of the hierarchy backend.
//
// Timing-only, like the L1s: one set-associative LRU Cache shared by both
// instruction and data misses of every hardware context (asid-tagged lines,
// so co-scheduled threads contend exactly as on the real chip). Fill on
// miss keeps the L2 a superset of recently-missed L1 lines — the inclusive
// discipline — without back-invalidation machinery, which a pure timing
// model cannot observe. An L2 hit costs hit_latency cycles from the L1
// miss; an L2 miss forwards to the DRAM model after the same lookup time.
#pragma once

#include <cstdint>

#include "isa/config.hpp"
#include "mem/cache.hpp"

namespace vexsim::mem {

class SharedL2 {
 public:
  explicit SharedL2(const L2Config& cfg)
      : cache_(CacheConfig{cfg.size_bytes, cfg.assoc, cfg.line_bytes,
                           /*miss_penalty=*/0, /*perfect=*/false}),
        hit_latency_(cfg.hit_latency) {}

  // True on hit; fills the line on miss (write-allocate, LRU).
  bool access(std::uint32_t asid, std::uint32_t addr) {
    return cache_.access(asid, addr);
  }

  [[nodiscard]] std::uint32_t hit_latency() const { return hit_latency_; }
  [[nodiscard]] std::uint32_t line_bytes() const {
    return cache_.config().line_bytes;
  }
  [[nodiscard]] const CacheStats& stats() const { return cache_.stats(); }
  void reset() { cache_.reset(); }

 private:
  Cache cache_;
  std::uint32_t hit_latency_;
};

}  // namespace vexsim::mem
