#include "mem/main_memory.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace vexsim {

const MainMemory::Page* MainMemory::find_page(std::uint32_t addr) const {
  const auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : &it->second;
}

MainMemory::Page& MainMemory::page_for(std::uint32_t addr) {
  Page& p = pages_[addr >> kPageBits];
  if (p.empty()) p.resize(kPageSize, 0);
  return p;
}

bool MainMemory::load(std::uint32_t addr, int size, std::uint32_t& out) const {
  VEXSIM_CHECK(size == 1 || size == 2 || size == 4);
  if (addr < kGuardLimit) return false;
  if ((addr & (static_cast<std::uint32_t>(size) - 1)) != 0) return false;
  const Page* p = find_page(addr);
  // A whole access never crosses a page: pages are 64 KiB and aligned.
  std::uint32_t v = 0;
  if (p != nullptr) {
    const std::uint32_t off = addr & (kPageSize - 1);
    for (int i = size - 1; i >= 0; --i)
      v = (v << 8) | (*p)[off + static_cast<std::uint32_t>(i)];
  }
  out = v;
  return true;
}

bool MainMemory::store(std::uint32_t addr, int size, std::uint32_t value) {
  VEXSIM_CHECK(size == 1 || size == 2 || size == 4);
  if (addr < kGuardLimit) return false;
  if ((addr & (static_cast<std::uint32_t>(size) - 1)) != 0) return false;
  Page& p = page_for(addr);
  const std::uint32_t off = addr & (kPageSize - 1);
  for (int i = 0; i < size; ++i)
    p[off + static_cast<std::uint32_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  return true;
}

void MainMemory::poke_bytes(std::uint32_t addr, const std::uint8_t* bytes,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Page& p = page_for(addr + static_cast<std::uint32_t>(i));
    p[(addr + static_cast<std::uint32_t>(i)) & (kPageSize - 1)] = bytes[i];
  }
}

void MainMemory::poke_u32(std::uint32_t addr, std::uint32_t value) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(value), static_cast<std::uint8_t>(value >> 8),
      static_cast<std::uint8_t>(value >> 16),
      static_cast<std::uint8_t>(value >> 24)};
  poke_bytes(addr, bytes, 4);
}

std::uint32_t MainMemory::peek_u32(std::uint32_t addr) const {
  std::uint32_t v = 0;
  if (load(addr, 4, v)) return v;
  return 0;
}

std::uint64_t MainMemory::fingerprint() const {
  // FNV-1a over (page index, page contents), pages visited in sorted order
  // so the digest is independent of hash-map iteration order.
  std::map<std::uint32_t, const Page*> ordered;
  for (const auto& [idx, page] : pages_) ordered.emplace(idx, &page);
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (const auto& [idx, page] : ordered) {
    bool all_zero = true;
    for (std::uint8_t b : *page)
      if (b != 0) { all_zero = false; break; }
    if (all_zero) continue;  // untouched-but-allocated pages don't count
    mix(static_cast<std::uint8_t>(idx));
    mix(static_cast<std::uint8_t>(idx >> 8));
    mix(static_cast<std::uint8_t>(idx >> 16));
    mix(static_cast<std::uint8_t>(idx >> 24));
    for (std::uint8_t b : *page) mix(b);
  }
  return h;
}

}  // namespace vexsim
