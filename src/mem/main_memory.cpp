#include "mem/main_memory.hpp"

#include <algorithm>
#include <map>

namespace vexsim {

void MainMemory::poke_bytes(std::uint32_t addr, const std::uint8_t* bytes,
                            std::size_t n) {
  // Copy page-sized runs so loading a data segment costs one page lookup
  // per 64 KiB instead of one per byte (respawns reload all segments).
  std::size_t i = 0;
  while (i < n) {
    const std::uint32_t a = addr + static_cast<std::uint32_t>(i);
    Page& p = page_for(a);
    const std::uint32_t off = a & (kPageSize - 1);
    const std::size_t run =
        std::min(n - i, static_cast<std::size_t>(kPageSize - off));
    std::copy(bytes + i, bytes + i + run, p.begin() + off);
    i += run;
  }
}

void MainMemory::poke_u32(std::uint32_t addr, std::uint32_t value) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(value), static_cast<std::uint8_t>(value >> 8),
      static_cast<std::uint8_t>(value >> 16),
      static_cast<std::uint8_t>(value >> 24)};
  poke_bytes(addr, bytes, 4);
}

std::uint32_t MainMemory::peek_u32(std::uint32_t addr) const {
  std::uint32_t v = 0;
  if (load(addr, 4, v)) return v;
  return 0;
}

std::uint64_t MainMemory::fingerprint() const {
  // FNV-1a over (page index, page contents), pages visited in sorted order
  // so the digest is independent of hash-map iteration order.
  std::map<std::uint32_t, const Page*> ordered;
  for (const auto& [idx, page] : pages_) ordered.emplace(idx, &page);
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (const auto& [idx, page] : ordered) {
    bool all_zero = true;
    for (std::uint8_t b : *page)
      if (b != 0) { all_zero = false; break; }
    if (all_zero) continue;  // untouched-but-allocated pages don't count
    mix(static_cast<std::uint8_t>(idx));
    mix(static_cast<std::uint8_t>(idx >> 8));
    mix(static_cast<std::uint8_t>(idx >> 16));
    mix(static_cast<std::uint8_t>(idx >> 24));
    for (std::uint8_t b : *page) mix(b);
  }
  return h;
}

}  // namespace vexsim
