// Miss-status holding registers: the bounded book-keeping that makes an L1
// non-blocking.
//
// Each entry tracks one in-flight line fill (line key + the cycle its data
// arrives). A second miss to an in-flight line coalesces onto the existing
// entry instead of issuing downstream again; a miss arriving with every
// entry occupied stalls structurally until the earliest outstanding fill
// retires. Entries are reclaimed lazily — an entry whose ready_at has
// passed is dead and is pruned on the next request — which keeps the model
// event-free: all state changes happen at access time, so the simulator's
// fast_forward arithmetic needs no callbacks (the same discipline as the
// absolute-cycle thread gates in arch/thread_context.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace vexsim::mem {

struct MshrStats {
  std::uint64_t allocations = 0;    // misses that issued downstream
  std::uint64_t merges = 0;         // misses coalesced onto in-flight lines
  std::uint64_t full_stalls = 0;    // misses that waited for a free entry
  std::uint64_t peak_occupancy = 0; // high-water mark of live entries

  friend bool operator==(const MshrStats&, const MshrStats&) = default;
};

class MshrFile {
 public:
  // `entries` bounds the outstanding misses; `line_shift` is log2 of the
  // coalescing granularity (the L1 line size).
  MshrFile(std::uint32_t entries, std::uint32_t line_shift)
      : capacity_(entries), line_shift_(line_shift) {
    VEXSIM_CHECK_MSG(entries >= 1 && entries <= kMaxEntries,
                     "MSHR entry count " << entries << " out of range [1, "
                                         << kMaxEntries << "]");
    live_.reserve(entries);
  }

  // Resolves a miss to `addr` observed at `cycle`: the cycle the line's
  // data is available. Coalesces onto an in-flight fill of the same line;
  // otherwise allocates an entry (waiting for the earliest outstanding fill
  // first when all entries are live — a real structural stall, folded into
  // the returned completion time). `fill(start)` is invoked exactly once
  // per allocation to obtain the downstream completion time for a request
  // issued at `start`; it must return a cycle > start.
  template <typename Fill>
  std::uint64_t request(std::uint32_t asid, std::uint32_t addr,
                        std::uint64_t cycle, Fill fill) {
    prune(cycle);
    const std::uint64_t line =
        (static_cast<std::uint64_t>(asid) << 32) | (addr >> line_shift_);
    for (const Entry& e : live_) {
      if (e.line == line) {
        ++stats_.merges;
        return e.ready_at;
      }
    }
    std::uint64_t start = cycle;
    if (live_.size() >= capacity_) {
      // Structural stall: the request waits for the earliest outstanding
      // fill to retire and reuses its entry.
      std::size_t victim = 0;
      for (std::size_t i = 1; i < live_.size(); ++i)
        if (live_[i].ready_at < live_[victim].ready_at) victim = i;
      start = live_[victim].ready_at;
      live_[victim] = live_.back();
      live_.pop_back();
      ++stats_.full_stalls;
    }
    const std::uint64_t ready = fill(start);
    live_.push_back(Entry{line, ready});
    ++stats_.allocations;
    stats_.peak_occupancy =
        std::max<std::uint64_t>(stats_.peak_occupancy, live_.size());
    return ready;
  }

  // Earliest in-flight completion strictly after `cycle`; ~0ull when none.
  [[nodiscard]] std::uint64_t next_completion_after(std::uint64_t cycle) const {
    std::uint64_t best = ~0ull;
    for (const Entry& e : live_)
      if (e.ready_at > cycle && e.ready_at < best) best = e.ready_at;
    return best;
  }

  [[nodiscard]] const MshrStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_entries() const { return live_.size(); }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }

  void reset() {
    live_.clear();
    stats_ = MshrStats{};
  }

 private:
  static constexpr std::uint32_t kMaxEntries = 64;

  struct Entry {
    std::uint64_t line = 0;      // (asid << 32) | line index
    std::uint64_t ready_at = 0;  // first cycle the fill's data is usable
  };

  // Drop entries whose fill completed at or before `cycle`.
  void prune(std::uint64_t cycle) {
    for (std::size_t i = 0; i < live_.size();) {
      if (live_[i].ready_at <= cycle) {
        live_[i] = live_.back();
        live_.pop_back();
      } else {
        ++i;
      }
    }
  }

  std::uint32_t capacity_;
  std::uint32_t line_shift_;
  std::vector<Entry> live_;
  MshrStats stats_;
};

}  // namespace vexsim::mem
