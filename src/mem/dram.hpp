// Banked DRAM timing model with per-bank row buffers and queues.
//
// Pure analytic timing, no events: each bank remembers its open row and the
// cycle it next becomes free. A request finds one of three row-buffer
// states — hit (row already open), closed (bank idle, row must activate),
// or conflict (another row open: precharge + activate) — and pays the
// corresponding latency from the cycle the bank could accept it. Requests
// to one bank serialize through the bank's queue (t_bank_busy of occupancy
// each); requests to different banks proceed independently. Banks are
// line-interleaved so streaming fills spread across the chip while a row's
// worth of lines shares one open row.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/config.hpp"

namespace vexsim::mem {

struct DramStats {
  std::uint64_t row_hits = 0;       // open-row accesses
  std::uint64_t row_closed = 0;     // bank-idle activations
  std::uint64_t row_conflicts = 0;  // precharge + activate accesses

  [[nodiscard]] std::uint64_t accesses() const {
    return row_hits + row_closed + row_conflicts;
  }
  [[nodiscard]] double row_hit_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(row_hits) /
                                 static_cast<double>(accesses());
  }
  friend bool operator==(const DramStats&, const DramStats&) = default;
};

class DramModel {
 public:
  // `line_bytes` is the fill granularity (the L2 line): it sets the
  // bank-interleaving stride.
  DramModel(const DramConfig& cfg, std::uint32_t line_bytes);

  // Cycle the line holding (asid, addr) is delivered for a request that
  // reaches the DRAM controller at `cycle`. Updates the addressed bank's
  // open row and queue; always returns a cycle > `cycle`.
  std::uint64_t access(std::uint32_t asid, std::uint32_t addr,
                       std::uint64_t cycle);

  [[nodiscard]] const DramStats& stats() const { return stats_; }
  [[nodiscard]] const DramConfig& config() const { return cfg_; }
  void reset();

 private:
  struct Bank {
    std::uint64_t open_row = ~0ull;  // ~0 = closed (no row activated yet)
    std::uint64_t next_free = 0;     // first cycle a new request can start
  };

  DramConfig cfg_;
  std::uint32_t line_shift_ = 0;
  std::uint32_t row_shift_ = 0;
  std::vector<Bank> banks_;
  DramStats stats_;
};

}  // namespace vexsim::mem
