// Experiment orchestration shared by the bench/ binaries.
//
// Scaling: the paper runs 200 M VLIW instructions per workload with 5 M-cycle
// timeslices. Every experiment here accepts a scaled budget (default ≈ 1/800
// of paper scale, minutes for the full suite) and `--paper` to restore the
// original parameters. Workload mixes reach steady state well within the
// scaled budgets thanks to the respawning scheme.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cc/options.hpp"
#include "isa/config.hpp"
#include "sim/driver.hpp"
#include "util/cli.hpp"

namespace vexsim::harness {

struct ExperimentOptions {
  double scale = 0.1;                 // kernel outer-loop scaling
  std::uint64_t budget = 250'000;     // VLIW instructions ending the run
  std::uint64_t timeslice = 100'000;  // cycles between context switches
  std::uint64_t max_cycles = 80'000'000;
  std::uint64_t seed = 42;
  // Idle-cycle batching (bit-identical stats either way); micro_sim_speed
  // turns it off to time the pure cycle-by-cycle path.
  bool fast_forward = true;
  // Fused select+execute engine (bit-identical stats either way); the
  // equivalence suite and micro_sim_speed's base leg turn it off to run the
  // reference packet engine.
  bool fused = true;
  // Per-phase wall-clock breakdown (Simulator::set_profile). Timing only —
  // excluded from the result-cache fingerprint, and profiled runs bypass the
  // cache (their point is the wall-clock, not the stats).
  bool profile = false;
  // Compiler pass-pipeline variant the workload compiles with (--cc NAME;
  // per-component "synth:...-cc..." fields override it). Part of the
  // result-cache fingerprint and the workload memo key.
  cc::CompilerOptions compiler;

  // Memory-backend override (--mem fixed|hierarchy), layered onto the base
  // machine by machine()/machine_single(). Unset keeps whatever the base
  // machine (default or --config) selects — fixed out of the box, so every
  // bench reproduces its goldens unless asked otherwise.
  std::optional<MemBackendKind> mem_backend;

  // Base machine the experiment's configs start from (nullptr = the
  // default-constructed MachineConfig, which IS the paper machine).
  // --config FILE loads one from a description file (mdes/machine.hpp);
  // benches then layer their swept axes (threads, technique) on top via
  // machine(). configs/paper4x4.conf deserializes to exactly the default,
  // so runs through it are byte-identical to the hard-coded machine.
  std::shared_ptr<const MachineConfig> base_machine;

  // The base machine with `threads` hardware contexts under `technique`
  // (validated); replaces direct MachineConfig::paper() calls in benches so
  // --config composes with every sweep axis.
  [[nodiscard]] MachineConfig machine(int threads, Technique technique) const;
  // The base machine single-threaded with merging off (paper_single form).
  [[nodiscard]] MachineConfig machine_single() const;

  // Applies --budget/--timeslice/--seed/--scale/--paper/--quick/--cc,
  // --cc-verify (run the static checkers between compiler passes),
  // --config FILE (base machine from a description file), and
  // --mem fixed|hierarchy (memory-backend override).
  static ExperimentOptions from_cli(const Cli& cli);

  // Value equality; the base machines compare by value (both absent, or
  // both present and equal), not by pointer.
  friend bool operator==(const ExperimentOptions& a,
                         const ExperimentOptions& b);
};

// Runs one Figure-13(b) workload mix on the paper machine with `threads`
// hardware contexts under `technique`.
[[nodiscard]] RunResult run_workload(const std::string& workload_name,
                                     int threads, Technique technique,
                                     const ExperimentOptions& opt);

// Runs one benchmark alone on the single-threaded paper machine, with real
// or perfect memory (Figure 13(a) IPCr / IPCp).
[[nodiscard]] RunResult run_single(const std::string& benchmark,
                                   bool perfect_memory,
                                   const ExperimentOptions& opt);

// As run_workload but with an arbitrary machine config (ablations).
[[nodiscard]] RunResult run_workload_on(const MachineConfig& cfg,
                                        const std::string& workload_name,
                                        const ExperimentOptions& opt);

}  // namespace vexsim::harness
