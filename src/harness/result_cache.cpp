#include "harness/result_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "stats/json.hpp"
#include "util/check.hpp"
#include "wl_synth/spec.hpp"
#include "workloads/workloads.hpp"

namespace vexsim::harness {

namespace {

// Incremental FNV-1a over labelled fields, finished through the splitmix64
// mixer so single-bit config changes flip half the key bits. Every value is
// length- or tag-delimited, so field sequences never alias.
class Fingerprint {
 public:
  Fingerprint& u64(std::uint64_t v) {
    bytes(&v, sizeof v);
    return *this;
  }
  Fingerprint& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Fingerprint& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }
  Fingerprint& flag(bool v) { return u64(v ? 1 : 0); }
  Fingerprint& str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
    return *this;
  }

  [[nodiscard]] std::uint64_t finish() const {
    std::uint64_t z = h_ + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i)
      h_ = (h_ ^ p[i]) * 0x100000001B3ull;
  }

  std::uint64_t h_ = 0xCBF29CE484222325ull;  // FNV-1a 64-bit offset basis
};

void hash_cluster(Fingerprint& fp, const ClusterResourceConfig& c) {
  fp.i64(c.issue_slots).i64(c.alus).i64(c.muls).i64(c.mem_units)
      .i64(c.branch_units);
}

void hash_cache_config(Fingerprint& fp, const CacheConfig& c) {
  fp.u64(c.size_bytes).u64(c.assoc).u64(c.line_bytes).u64(c.miss_penalty)
      .flag(c.perfect);
}

void hash_machine(Fingerprint& fp, const MachineConfig& cfg) {
  fp.i64(cfg.clusters);
  hash_cluster(fp, cfg.cluster);
  fp.u64(cfg.cluster_overrides.size());
  for (const ClusterResourceConfig& c : cfg.cluster_overrides)
    hash_cluster(fp, c);
  fp.flag(cfg.branch_on_cluster0_only);
  fp.i64(cfg.lat.alu).i64(cfg.lat.mul).i64(cfg.lat.mem).i64(cfg.lat.comm)
      .i64(cfg.lat.cmp_to_branch).i64(cfg.lat.taken_branch_penalty);
  hash_cache_config(fp, cfg.icache);
  hash_cache_config(fp, cfg.dcache);
  fp.i64(cfg.hw_threads);
  fp.u64(static_cast<std::uint64_t>(cfg.technique.merge))
      .u64(static_cast<std::uint64_t>(cfg.technique.split))
      .u64(static_cast<std::uint64_t>(cfg.technique.comm));
  fp.flag(cfg.cluster_renaming);
  fp.u64(static_cast<std::uint64_t>(cfg.rf_org));
  fp.flag(cfg.stall_on_store_miss);
  // Memory backend: every parameter that can change a hierarchy trajectory.
  // Hashed unconditionally (fixed runs too) — the kind field alone keeps
  // fixed and hierarchy points from ever aliasing, and hashing the rest
  // costs nothing while guaranteeing a retuned L2/DRAM never serves stale
  // cached results.
  fp.u64(static_cast<std::uint64_t>(cfg.memory.backend));
  fp.u64(cfg.memory.l1_mshrs);
  fp.u64(cfg.memory.l2.size_bytes)
      .u64(cfg.memory.l2.assoc)
      .u64(cfg.memory.l2.line_bytes)
      .u64(cfg.memory.l2.hit_latency);
  fp.u64(cfg.memory.dram.banks)
      .u64(cfg.memory.dram.row_bytes)
      .u64(cfg.memory.dram.t_row_hit)
      .u64(cfg.memory.dram.t_row_closed)
      .u64(cfg.memory.dram.t_row_conflict)
      .u64(cfg.memory.dram.t_bank_busy);
}

// Resolved, order-canonical form of a workload name: a paper mix label
// expands to its component list, and every synthetic component is rewritten
// to its full canonical mangling, so equivalent spellings share one entry.
std::string canonical_workload(const std::string& name) {
  const wl::WorkloadSpec spec = wl::workload(name);
  std::ostringstream os;
  for (std::size_t i = 0; i < spec.benchmarks.size(); ++i) {
    const std::string& component = spec.benchmarks[i];
    if (i > 0) os << '+';
    if (wl_synth::is_synth_name(component))
      os << wl_synth::parse_spec(component).name();
    else
      os << component;
  }
  return os.str();
}

// First line of the index file; anything else means "rebuild".
constexpr std::string_view kIndexHeader = "vexsim-cache-index v1";

bool is_hex16(std::string_view s) {
  if (s.size() != 16) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

std::uint64_t parse_hex16(std::string_view s) {
  std::uint64_t v = 0;
  for (const char c : s)
    v = (v << 4) | static_cast<std::uint64_t>(
                       c <= '9' ? c - '0' : c - 'a' + 10);
  return v;
}

Json counters_json(const ThreadCounters& c) {
  Json j = Json::object();
  j.set("instructions", c.instructions)
      .set("ops", c.ops)
      .set("taken_branches", c.taken_branches)
      .set("split_instructions", c.split_instructions)
      .set("dmiss_block_cycles", c.dmiss_block_cycles)
      .set("imiss_block_cycles", c.imiss_block_cycles);
  return j;
}

ThreadCounters counters_from_json(const Json& j) {
  ThreadCounters c;
  c.instructions = j.at("instructions").as_uint64();
  c.ops = j.at("ops").as_uint64();
  c.taken_branches = j.at("taken_branches").as_uint64();
  c.split_instructions = j.at("split_instructions").as_uint64();
  c.dmiss_block_cycles = j.at("dmiss_block_cycles").as_uint64();
  c.imiss_block_cycles = j.at("imiss_block_cycles").as_uint64();
  return c;
}

Json result_json(const RunResult& r) {
  Json sim = Json::object();
  sim.set("cycles", r.sim.cycles)
      .set("ops_issued", r.sim.ops_issued)
      .set("instructions_retired", r.sim.instructions_retired)
      .set("split_instructions", r.sim.split_instructions)
      .set("vertical_waste_cycles", r.sim.vertical_waste_cycles)
      .set("multi_thread_cycles", r.sim.multi_thread_cycles)
      .set("memport_stall_cycles", r.sim.memport_stall_cycles)
      .set("drain_cycles", r.sim.drain_cycles)
      .set("taken_branches", r.sim.taken_branches)
      .set("faults", r.sim.faults);

  Json icache = Json::object();
  icache.set("hits", r.icache.hits).set("misses", r.icache.misses);
  Json dcache = Json::object();
  dcache.set("hits", r.dcache.hits).set("misses", r.dcache.misses);

  Json memory = Json::object();
  if (r.memory.present) {
    const auto mshr_json = [](const mem::MshrStats& m) {
      Json j = Json::object();
      j.set("allocations", m.allocations)
          .set("merges", m.merges)
          .set("full_stalls", m.full_stalls)
          .set("peak_occupancy", m.peak_occupancy);
      return j;
    };
    Json l2 = Json::object();
    l2.set("hits", r.memory.l2.hits).set("misses", r.memory.l2.misses);
    Json dram = Json::object();
    dram.set("row_hits", r.memory.dram.row_hits)
        .set("row_closed", r.memory.dram.row_closed)
        .set("row_conflicts", r.memory.dram.row_conflicts);
    memory.set("imshr", mshr_json(r.memory.imshr))
        .set("dmshr", mshr_json(r.memory.dmshr))
        .set("l2", std::move(l2))
        .set("dram", std::move(dram));
  }

  Json merge = Json::object();
  merge.set("full_selections", r.merge.full_selections)
      .set("partial_selections", r.merge.partial_selections)
      .set("blocked_selections", r.merge.blocked_selections)
      .set("comm_nosplit_forced", r.merge.comm_nosplit_forced);

  Json instances = Json::array();
  for (const InstanceResult& inst : r.instances) {
    Json ij = Json::object();
    ij.set("name", inst.name)
        .set("instructions", inst.instructions)
        .set("respawns", inst.respawns)
        .set("arch_fingerprint", inst.arch_fingerprint)
        .set("faulted", inst.faulted)
        .set("counters", counters_json(inst.counters));
    instances.push(std::move(ij));
  }

  Json compile = Json::object();
  compile.set("instructions", r.compile.instructions)
      .set("operations", r.compile.operations)
      .set("copies_inserted", r.compile.copies_inserted)
      .set("swp_loops", r.compile.swp_loops)
      .set("present", r.compile.present);

  Json out = Json::object();
  out.set("issue_width", r.issue_width)
      .set("attempts", r.attempts)
      .set("sim", std::move(sim))
      .set("icache", std::move(icache))
      .set("dcache", std::move(dcache));
  // Hierarchy-only: fixed-backend records keep the pre-hierarchy shape so a
  // warm cache replays byte-identical JSON for pre-existing sweeps.
  if (r.memory.present) out.set("memory", std::move(memory));
  out.set("merge", std::move(merge))
      .set("compile", std::move(compile))
      .set("instances", std::move(instances));
  return out;
}

RunResult result_from_json(const Json& j) {
  RunResult r;
  r.issue_width = static_cast<int>(j.at("issue_width").as_int64());
  r.attempts = static_cast<int>(j.at("attempts").as_int64());

  const Json& sim = j.at("sim");
  r.sim.cycles = sim.at("cycles").as_uint64();
  r.sim.ops_issued = sim.at("ops_issued").as_uint64();
  r.sim.instructions_retired = sim.at("instructions_retired").as_uint64();
  r.sim.split_instructions = sim.at("split_instructions").as_uint64();
  r.sim.vertical_waste_cycles = sim.at("vertical_waste_cycles").as_uint64();
  r.sim.multi_thread_cycles = sim.at("multi_thread_cycles").as_uint64();
  r.sim.memport_stall_cycles = sim.at("memport_stall_cycles").as_uint64();
  r.sim.drain_cycles = sim.at("drain_cycles").as_uint64();
  r.sim.taken_branches = sim.at("taken_branches").as_uint64();
  r.sim.faults = sim.at("faults").as_uint64();

  r.icache.hits = j.at("icache").at("hits").as_uint64();
  r.icache.misses = j.at("icache").at("misses").as_uint64();
  r.dcache.hits = j.at("dcache").at("hits").as_uint64();
  r.dcache.misses = j.at("dcache").at("misses").as_uint64();

  if (const Json* memory = j.find("memory")) {
    const auto mshr_from = [](const Json& mj) {
      mem::MshrStats m;
      m.allocations = mj.at("allocations").as_uint64();
      m.merges = mj.at("merges").as_uint64();
      m.full_stalls = mj.at("full_stalls").as_uint64();
      m.peak_occupancy = mj.at("peak_occupancy").as_uint64();
      return m;
    };
    r.memory.present = true;
    r.memory.imshr = mshr_from(memory->at("imshr"));
    r.memory.dmshr = mshr_from(memory->at("dmshr"));
    r.memory.l2.hits = memory->at("l2").at("hits").as_uint64();
    r.memory.l2.misses = memory->at("l2").at("misses").as_uint64();
    const Json& dram = memory->at("dram");
    r.memory.dram.row_hits = dram.at("row_hits").as_uint64();
    r.memory.dram.row_closed = dram.at("row_closed").as_uint64();
    r.memory.dram.row_conflicts = dram.at("row_conflicts").as_uint64();
  }

  const Json& merge = j.at("merge");
  r.merge.full_selections = merge.at("full_selections").as_uint64();
  r.merge.partial_selections = merge.at("partial_selections").as_uint64();
  r.merge.blocked_selections = merge.at("blocked_selections").as_uint64();
  r.merge.comm_nosplit_forced = merge.at("comm_nosplit_forced").as_uint64();

  const Json& compile = j.at("compile");
  r.compile.instructions = compile.at("instructions").as_uint64();
  r.compile.operations = compile.at("operations").as_uint64();
  r.compile.copies_inserted = compile.at("copies_inserted").as_uint64();
  r.compile.swp_loops = compile.at("swp_loops").as_uint64();
  r.compile.present = compile.at("present").as_bool();

  const Json& instances = j.at("instances");
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Json& ij = instances.at(i);
    InstanceResult inst;
    inst.name = ij.at("name").as_string();
    inst.instructions = ij.at("instructions").as_uint64();
    inst.respawns = ij.at("respawns").as_uint64();
    inst.arch_fingerprint = ij.at("arch_fingerprint").as_uint64();
    inst.faulted = ij.at("faulted").as_bool();
    inst.counters = counters_from_json(ij.at("counters"));
    r.instances.push_back(std::move(inst));
  }
  return r;
}

}  // namespace

std::uint64_t point_fingerprint(const MachineConfig& cfg,
                                const std::string& workload,
                                const ExperimentOptions& opt) {
  Fingerprint fp;
  fp.str(kSimVersionTag);
  hash_machine(fp, cfg);
  fp.str(canonical_workload(workload));
  fp.f64(opt.scale)
      .u64(opt.budget)
      .u64(opt.timeslice)
      .u64(opt.max_cycles)
      .u64(opt.seed)
      .flag(opt.fast_forward)
      .flag(opt.fused);
  // Compiler pass-pipeline options: every knob the compiled code depends
  // on, so points simulated under different compiler settings can never
  // alias one cache record. verify_each_pass is deliberately excluded —
  // it is diagnostic-only and never changes the emitted code, so cached
  // trajectories stay valid (and byte-identical) under --cc-verify.
  fp.u64(static_cast<std::uint64_t>(opt.compiler.assign))
      .flag(opt.compiler.modulo_schedule)
      .i64(opt.compiler.max_ii)
      .i64(opt.compiler.max_stages);
  return fp.finish();
}

std::string fingerprint_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::uint64_t parse_size_bytes(const std::string& spec) {
  constexpr const char* kForm =
      "expected a byte count like 1048576, 512K, 64M or 2G";
  VEXSIM_CHECK_MSG(!spec.empty() && spec != "true",
                   "empty size spec; " << kForm);
  std::uint64_t mult = 1;
  std::string digits = spec;
  switch (std::tolower(static_cast<unsigned char>(spec.back()))) {
    case 'k': mult = 1024ull; break;
    case 'm': mult = 1024ull * 1024; break;
    case 'g': mult = 1024ull * 1024 * 1024; break;
    default: break;
  }
  if (mult != 1) digits.pop_back();
  const bool numeric =
      !digits.empty() && digits.size() <= 15 &&
      std::all_of(digits.begin(), digits.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      });
  VEXSIM_CHECK_MSG(numeric, "bad size spec '" << spec << "'; " << kForm);
  return std::stoull(digits) * mult;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  VEXSIM_CHECK_MSG(!dir_.empty(), "result cache directory must be non-empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  VEXSIM_CHECK_MSG(!ec, "cannot create result cache directory " << dir_ << ": "
                                                                << ec.message());
  if (!read_index()) rebuild_index();
}

std::string ResultCache::entry_path(std::uint64_t key) const {
  return dir_ + "/" + fingerprint_hex(key) + ".json";
}

std::string ResultCache::index_path() const { return dir_ + "/cache.index"; }

bool ResultCache::probe(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.find(key) != index_.end();
}

std::size_t ResultCache::index_size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

bool ResultCache::read_index() {
  std::ifstream is(index_path(), std::ios::binary);
  if (!is.good()) return false;
  std::string line;
  if (!std::getline(is, line) || line != kIndexHeader) return false;
  std::map<std::uint64_t, std::string> loaded;
  while (std::getline(is, line)) {
    if (line.empty()) continue;  // a torn append leaves at most a blank tail
    if (line.size() < 18 || line[16] != ' ') return false;
    const std::string_view hex = std::string_view(line).substr(0, 16);
    if (!is_hex16(hex)) return false;
    std::string file = line.substr(17);
    if (file.find('/') != std::string::npos) return false;
    loaded[parse_hex16(hex)] = std::move(file);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  index_ = std::move(loaded);
  return true;
}

void ResultCache::write_index_locked() const {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream tmp_name;
  tmp_name << index_path() << ".tmp." << ::getpid() << "."
           << counter.fetch_add(1, std::memory_order_relaxed);
  {
    std::ofstream os(tmp_name.str(), std::ios::binary | std::ios::trunc);
    VEXSIM_CHECK_MSG(os.good(), "cannot write " << tmp_name.str());
    os << kIndexHeader << "\n";
    for (const auto& [key, file] : index_)
      os << fingerprint_hex(key) << " " << file << "\n";
    os.flush();
    VEXSIM_CHECK_MSG(os.good(), "failed writing " << tmp_name.str());
  }
  VEXSIM_CHECK_MSG(
      std::rename(tmp_name.str().c_str(), index_path().c_str()) == 0,
      "failed to move " << tmp_name.str() << " over " << index_path());
}

void ResultCache::rebuild_index() const {
  const std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // Record files only: exactly "<16 lowercase hex>.json".
    if (name.size() != 21 || name.substr(16) != ".json") continue;
    const std::string_view hex = std::string_view(name).substr(0, 16);
    if (!is_hex16(hex)) continue;
    index_[parse_hex16(hex)] = name;
  }
  VEXSIM_CHECK_MSG(!ec, "cannot scan result cache directory " << dir_ << ": "
                                                              << ec.message());
  write_index_locked();
}

std::optional<RunResult> ResultCache::read_record(const std::string& path,
                                                  std::uint64_t key) const {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return std::nullopt;  // plain miss
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  try {
    const Json doc = Json::parse(text);
    // A record from another simulator version (or another key that landed
    // on this path through tampering) is a miss, not an error.
    if (doc.at("version").as_string() != kSimVersionTag) return std::nullopt;
    if (doc.at("key").as_string() != fingerprint_hex(key)) return std::nullopt;
    RunResult r = result_from_json(doc.at("result"));
    r.cached = true;
    r.cache_hit = true;
    return r;
  } catch (const CheckError&) {
    return std::nullopt;  // corrupt or truncated record: treat as a miss
  }
}

std::optional<RunResult> ResultCache::load(std::uint64_t key) const {
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;  // O(1), no I/O
    path = dir_ + "/" + it->second;
  }
  std::optional<RunResult> r = read_record(path, key);
  if (!r) {
    // Indexed but unreadable (deleted or corrupt on disk): drop the entry so
    // the next probe is an O(1) miss again.
    const std::lock_guard<std::mutex> lock(mu_);
    index_.erase(key);
  }
  return r;
}

std::optional<RunResult> ResultCache::load_unindexed(std::uint64_t key) const {
  return read_record(entry_path(key), key);
}

void ResultCache::append_index_line(std::uint64_t key) const {
  const std::string line = fingerprint_hex(key) + " " + fingerprint_hex(key) +
                           ".json\n";
  // One O_APPEND write per record: concurrent writers (threads or separate
  // shard processes) interleave whole lines. O_CREAT only matters when the
  // index vanished mid-run; the header-less file then fails validation on
  // the next load and is rebuilt from the records, which all survive.
  const int fd = ::open(index_path().c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  VEXSIM_CHECK_MSG(fd >= 0, "cannot open " << index_path() << " for append");
  const ssize_t n = ::write(fd, line.data(), line.size());
  ::close(fd);
  VEXSIM_CHECK_MSG(n == static_cast<ssize_t>(line.size()),
                   "short write appending to " << index_path());
}

void ResultCache::store(std::uint64_t key, const std::string& workload,
                        const RunResult& r) const {
  VEXSIM_CHECK_MSG(!r.failed,
                   "refusing to cache a failed point (" << r.error << ")");
  Json doc = Json::object();
  doc.set("version", std::string(kSimVersionTag))
      .set("key", fingerprint_hex(key))
      .set("workload", workload)
      .set("result", result_json(r));

  // Unique temp name per (process, store call): concurrent sweeps sharing a
  // cache directory may race on the same key, and rename() then makes one
  // of the two identical records win atomically.
  static std::atomic<std::uint64_t> counter{0};
  const std::string path = entry_path(key);
  std::ostringstream tmp;
  tmp << path << ".tmp." << ::getpid() << "."
      << counter.fetch_add(1, std::memory_order_relaxed);
  write_json_file(tmp.str(), doc);
  VEXSIM_CHECK_MSG(std::rename(tmp.str().c_str(), path.c_str()) == 0,
                   "failed to move " << tmp.str() << " over " << path);

  bool fresh = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fresh = index_.emplace(key, fingerprint_hex(key) + ".json").second;
  }
  // Only the first store of a key appends — a re-store (cache shared with a
  // racing process) would otherwise grow the index without bound.
  if (fresh) append_index_line(key);
}

CacheGcStats ResultCache::gc(std::uint64_t max_bytes) const {
  const std::lock_guard<std::mutex> lock(mu_);
  struct Entry {
    std::filesystem::file_time_type mtime;
    std::uint64_t bytes;
    std::uint64_t key;
  };
  CacheGcStats stats;
  std::vector<Entry> entries;
  entries.reserve(index_.size());
  std::vector<std::uint64_t> gone;
  for (const auto& [key, file] : index_) {
    const std::filesystem::path p = dir_ + "/" + file;
    std::error_code ec;
    const std::uint64_t bytes = std::filesystem::file_size(p, ec);
    const auto mtime = std::filesystem::last_write_time(p, ec);
    if (ec) {
      gone.push_back(key);  // indexed but vanished: drop the entry
      continue;
    }
    entries.push_back({mtime, bytes, key});
    stats.bytes_before += bytes;
  }
  for (const std::uint64_t key : gone) index_.erase(key);
  stats.records_before = entries.size();

  // LRU by mtime (key as deterministic tie-break): evict oldest first until
  // the survivors fit the budget.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.key < b.key;
  });
  std::uint64_t bytes_left = stats.bytes_before;
  std::size_t evict = 0;
  while (evict < entries.size() && bytes_left > max_bytes)
    bytes_left -= entries[evict++].bytes;
  for (std::size_t i = 0; i < evict; ++i) {
    const auto it = index_.find(entries[i].key);
    std::error_code ec;
    std::filesystem::remove(dir_ + "/" + it->second, ec);
    index_.erase(it);
  }
  stats.evicted = evict;
  stats.records_after = entries.size() - evict;
  stats.bytes_after = bytes_left;
  write_index_locked();
  return stats;
}

}  // namespace vexsim::harness
