// Sharding layer for the experiment-sweep engine: the work-unit protocol
// that lets N independent OS processes (or hosts) split one sweep and a
// merge step fold their outputs back into a single trajectory byte-identical
// to the one-process run.
//
// The protocol has three parts:
//  * A sweep **manifest**: the fully-enumerated point list, in point order,
//    with each point's content fingerprint (harness/result_cache.hpp). Every
//    shard process enumerates the identical manifest — enumeration is a pure
//    function of the bench flags — so the manifest doubles as the contract
//    that two shard files came from the same sweep.
//  * A **shard document** (`--shard i/N`): the manifest plus the rendered
//    JSON records of the points this shard owns (round-robin: shard i of N
//    owns points with index % N == i-1, so every slice mixes cheap and
//    expensive points). Shards share the content-addressed result cache
//    directory; nothing else couples them.
//  * `merge_shards` / tools/vexmerge: validates that all shard files carry
//    the same manifest (conflicting fingerprints are a hard error naming the
//    point), dedupes overlapping identical records, re-emits the per-point
//    JSON subtrees in manifest order — byte-identical to the single-process
//    document because Json::parse/dump round-trips exactly — and, when
//    points are missing, writes a resume manifest listing each gap and the
//    shard that owns it.
//
// vexplore shards the same way; its shard documents additionally carry the
// report header and the per-point sensitivity bucket labels so the merged
// report's Pareto frontier and per-axis aggregates are recomputed from the
// same values, in the same order, as a one-process run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "stats/json.hpp"

namespace vexsim::harness {

// A `--shard i/N` assignment. Inactive (the default) means "run everything
// and emit the plain trajectory"; an explicit --shard — including 1/1 —
// switches the bench to shard-document output for vexmerge.
struct ShardSpec {
  int index = 1;  // 1-based
  int count = 1;
  bool active = false;

  // Parses "i/N". CheckError on anything else — 0/4, 5/4, i/0, non-numeric,
  // missing slash — with a message naming the valid form.
  [[nodiscard]] static ShardSpec parse(const std::string& spec);
  // Reads --shard; absent flag yields an inactive spec.
  [[nodiscard]] static ShardSpec from_cli(const Cli& cli);

  // Round-robin ownership of manifest index `i` (0-based).
  [[nodiscard]] bool owns(std::size_t i) const {
    return static_cast<int>(i % static_cast<std::size_t>(count)) == index - 1;
  }
  [[nodiscard]] std::string str() const {  // "2/4"
    return std::to_string(index) + "/" + std::to_string(count);
  }
  [[nodiscard]] std::string tag() const {  // "2of4", for file names
    return std::to_string(index) + "of" + std::to_string(count);
  }
};

// One manifest row: the point's label and, when the point is cacheable, its
// content fingerprint. An unresolvable workload has no fingerprint (the
// shard that owns it surfaces the real error); it serializes as null.
struct ManifestEntry {
  std::string label;
  bool cacheable = false;
  std::uint64_t fingerprint = 0;
};

[[nodiscard]] std::vector<ManifestEntry> build_manifest(
    const std::vector<SweepPoint>& points);

// Shard document for a bench sweep. `indices`/`point_docs` are parallel:
// the owned manifest indices and their rendered sweep_point_json subtrees.
// `partial` marks a mid-run flush checkpoint; vexmerge refuses those.
[[nodiscard]] Json sweep_shard_json(const std::string& experiment,
                                    const ShardSpec& shard,
                                    const std::vector<ManifestEntry>& manifest,
                                    const std::vector<std::size_t>& indices,
                                    const std::vector<Json>& point_docs,
                                    bool partial);

// Shard document for a vexplore DSE run: adds the report header (identical
// across shards — sampling is serial and deterministic), the axis-name list,
// and per-point sensitivity bucket labels (one per axis, precomputed at
// enumeration so the merger needs no template file).
[[nodiscard]] Json dse_shard_json(
    const std::string& experiment, const ShardSpec& shard, const Json& header,
    const std::vector<std::string>& axes,
    const std::vector<ManifestEntry>& manifest,
    const std::vector<std::size_t>& indices,
    const std::vector<Json>& point_docs,
    const std::vector<std::vector<std::string>>& buckets, bool partial);

// Assembles the final vexplore report from per-point documents and bucket
// labels: header fields, then points, the Pareto frontier of (cycles, total
// issue slots), and per-axis sensitivity aggregates. Shared by vexplore
// itself and by merge_shards, so a merged report is byte-identical to a
// one-process run by construction (same values, same accumulation order).
[[nodiscard]] Json dse_report(
    const Json& header, const std::vector<std::string>& axes,
    const std::vector<Json>& point_docs,
    const std::vector<std::vector<std::string>>& buckets);

struct MergeOutcome {
  bool complete = false;
  Json merged;  // when complete: the single-process-identical document
  Json resume;  // when incomplete: resume manifest listing missing points
  std::size_t present = 0;
  std::size_t total = 0;
};

// Folds shard documents into one trajectory. `names` are the per-document
// origin labels (file paths) used in error messages, parallel to `docs`.
// CheckError on: partial checkpoints, mixed experiments/kinds/shard counts,
// manifest mismatches, and conflicting records for one point (same
// fingerprint, byte-differing result) — each error names the point.
// Overlapping byte-identical records are deduped silently.
[[nodiscard]] MergeOutcome merge_shards(const std::vector<Json>& docs,
                                        const std::vector<std::string>& names);

}  // namespace vexsim::harness
