// Content-addressed result cache for the experiment-sweep engine.
//
// A sweep point is fully described by (MachineConfig, workload name,
// ExperimentOptions); reproducing the paper's figures re-runs the same
// points thousands of times across fig13–fig16 and the ablations, so
// already-simulated points should cost a file read, not a simulation.
// point_fingerprint() hashes a canonical serialization of every
// behaviour-affecting field (FNV-1a mixed through a splitmix finalizer)
// together with kSimVersionTag; the workload name is resolved first, so
// "synth:m0.3-i0.8" and "synth:i0.8-m0.3" share one entry while any dial
// change gets its own. ResultCache stores one JSON record per point under
// <dir>/<16-hex-key>.json, written atomically (temp file + rename); a
// missing, unparseable, stale-version, or key-mismatched record is simply a
// miss, never an error — the worst a corrupt cache can do is cost one
// re-simulation. Cached results are bit-identical to fresh runs: every
// RunResult field the trajectory JSON or a bench table can observe is
// round-tripped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "harness/experiments.hpp"

namespace vexsim::harness {

// Simulator-semantics version tag, part of every fingerprint and record.
// Bump whenever a change alters cycle-level statistics (the golden suite
// failing is the usual signal): stale records then miss instead of serving
// numbers from the previous simulator.
inline constexpr std::string_view kSimVersionTag = "vexsim-sim-pr9";

// Stable content hash of a sweep point. Throws CheckError when the
// workload name does not resolve (the simulation itself would throw the
// same error); callers treat that as "uncacheable" and let the worker
// surface the real failure.
[[nodiscard]] std::uint64_t point_fingerprint(const MachineConfig& cfg,
                                              const std::string& workload,
                                              const ExperimentOptions& opt);

class ResultCache {
 public:
  // Creates `dir` (and parents) when missing.
  explicit ResultCache(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  // Path of the record for `key`: <dir>/<16 hex digits>.json.
  [[nodiscard]] std::string entry_path(std::uint64_t key) const;

  // The cached result for `key`, with `cached` and `cache_hit` set; or
  // nullopt on miss — including corrupt, stale-version, truncated, or
  // key-mismatched records.
  [[nodiscard]] std::optional<RunResult> load(std::uint64_t key) const;

  // Atomically persists a successful result (CheckError if `r.failed`:
  // failures are environment-dependent and must re-run). Throws CheckError
  // on I/O failure; run_sweep degrades to uncached operation in that case.
  void store(std::uint64_t key, const std::string& workload,
             const RunResult& r) const;

 private:
  std::string dir_;
};

}  // namespace vexsim::harness
