// Content-addressed result cache for the experiment-sweep engine.
//
// A sweep point is fully described by (MachineConfig, workload name,
// ExperimentOptions); reproducing the paper's figures re-runs the same
// points thousands of times across fig13–fig16 and the ablations, so
// already-simulated points should cost a file read, not a simulation.
// point_fingerprint() hashes a canonical serialization of every
// behaviour-affecting field (FNV-1a mixed through a splitmix finalizer)
// together with kSimVersionTag; the workload name is resolved first, so
// "synth:m0.3-i0.8" and "synth:i0.8-m0.3" share one entry while any dial
// change gets its own. ResultCache stores one JSON record per point under
// <dir>/<16-hex-key>.json, written atomically (temp file + rename); a
// missing, unparseable, stale-version, or key-mismatched record is simply a
// miss, never an error — the worst a corrupt cache can do is cost one
// re-simulation. Cached results are bit-identical to fresh runs: every
// RunResult field the trajectory JSON or a bench table can observe is
// round-tripped.
//
// Probing is O(1) in the record count via an **index file**
// (<dir>/cache.index): one header line and one "<16-hex-key> <record file>"
// line per record, loaded into an in-memory map at construction. The index
// is maintained with the same crash-safe discipline as the records:
//  * store() appends one line with a single O_APPEND write, so any number
//    of concurrent shard processes (or sweep worker threads) sharing the
//    directory interleave whole lines, never torn ones;
//  * a missing, truncated, or otherwise corrupt index is rebuilt
//    transparently by scanning the directory for record files — hit results
//    are identical either way, the rebuild only restores O(1) probing;
//  * gc() and rebuild_index() rewrite the index via temp file + rename, so
//    readers never observe a half-written index.
// The one benign race: an index rewrite can drop a line appended by a
// concurrent writer. The record file itself survives, so the entry misses
// once, re-simulates (or re-loads on rebuild), and is re-appended —
// convergent, never corrupt.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "harness/experiments.hpp"

namespace vexsim::harness {

// Simulator-semantics version tag, part of every fingerprint and record.
// Bump whenever a change alters cycle-level statistics (the golden suite
// failing is the usual signal): stale records then miss instead of serving
// numbers from the previous simulator.
inline constexpr std::string_view kSimVersionTag = "vexsim-sim-pr9";

// Stable content hash of a sweep point. Throws CheckError when the
// workload name does not resolve (the simulation itself would throw the
// same error); callers treat that as "uncacheable" and let the worker
// surface the real failure.
[[nodiscard]] std::uint64_t point_fingerprint(const MachineConfig& cfg,
                                              const std::string& workload,
                                              const ExperimentOptions& opt);

// Canonical 16-hex-digit spelling of a fingerprint (record file stem, index
// lines, shard manifests).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t key);

// Byte count from a human-friendly size spec: plain digits, or digits with
// a K/M/G suffix (powers of 1024, case-insensitive). CheckError otherwise.
[[nodiscard]] std::uint64_t parse_size_bytes(const std::string& spec);

// gc() eviction summary.
struct CacheGcStats {
  std::uint64_t records_before = 0;
  std::uint64_t records_after = 0;
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  std::uint64_t evicted = 0;
};

class ResultCache {
 public:
  // Creates `dir` (and parents) when missing, then loads the index —
  // rebuilding it from a directory scan when it is missing or corrupt.
  explicit ResultCache(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  // Path of the record for `key`: <dir>/<16 hex digits>.json.
  [[nodiscard]] std::string entry_path(std::uint64_t key) const;
  [[nodiscard]] std::string index_path() const;

  // O(1), no I/O: whether `key` is in the index. The authoritative answer
  // comes from load() — a probed record can still be corrupt on disk.
  [[nodiscard]] bool probe(std::uint64_t key) const;

  // Number of indexed records.
  [[nodiscard]] std::size_t index_size() const;

  // The cached result for `key`, with `cached` and `cache_hit` set; or
  // nullopt on miss — including corrupt, stale-version, truncated, or
  // key-mismatched records (which are also dropped from the index). An
  // unindexed key costs no syscall at all.
  [[nodiscard]] std::optional<RunResult> load(std::uint64_t key) const;

  // Pre-index probe path: opens <dir>/<key>.json directly, bypassing the
  // index. Same hit results as load(); kept as the baseline the
  // micro_sim_speed cache-probe benchmark compares the index against.
  [[nodiscard]] std::optional<RunResult> load_unindexed(
      std::uint64_t key) const;

  // Atomically persists a successful result (CheckError if `r.failed`:
  // failures are environment-dependent and must re-run), then appends the
  // key to the index. Throws CheckError on I/O failure; run_sweep degrades
  // to uncached operation in that case.
  void store(std::uint64_t key, const std::string& workload,
             const RunResult& r) const;

  // Rescans the directory for record files and atomically rewrites the
  // index. Load/store keep working against the rebuilt map.
  void rebuild_index() const;

  // LRU size-budget eviction: deletes oldest-mtime records until the
  // indexed records total <= max_bytes, then atomically rewrites the index.
  CacheGcStats gc(std::uint64_t max_bytes) const;

 private:
  [[nodiscard]] bool read_index();
  void append_index_line(std::uint64_t key) const;
  // Writes index_ to disk (temp file + rename). Caller holds mu_.
  void write_index_locked() const;
  [[nodiscard]] std::optional<RunResult> read_record(const std::string& path,
                                                     std::uint64_t key) const;

  std::string dir_;
  // fingerprint -> record file name (relative to dir_). Ordered so index
  // rewrites are deterministic. Guarded by mu_: sweep workers store() and
  // load() concurrently.
  mutable std::mutex mu_;
  mutable std::map<std::uint64_t, std::string> index_;
};

}  // namespace vexsim::harness
