#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <thread>

#include "harness/result_cache.hpp"
#include "harness/shard.hpp"
#include "util/check.hpp"

namespace vexsim::harness {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

SweepOptions SweepOptions::from_cli(const Cli& cli) {
  SweepOptions opts;
  opts.jobs = cli.jobs();
  opts.progress_every =
      static_cast<int>(cli.get_int("progress", opts.progress_every));
  VEXSIM_CHECK_MSG(opts.progress_every >= 0,
                   "--progress must be >= 0, got " << opts.progress_every);
  opts.flush_every = static_cast<int>(cli.get_int("flush", opts.flush_every));
  VEXSIM_CHECK_MSG(opts.flush_every >= 0,
                   "--flush must be >= 0, got " << opts.flush_every);
  if (cli.has("cache") && !cli.get_bool("no-cache", false)) {
    const std::string dir = cli.get("cache", "");
    // Bare `--cache` parses as the boolean value "true"; map it to the
    // default directory.
    opts.cache_dir = (dir.empty() || dir == "true") ? "sweep-cache" : dir;
  }
  if (cli.has("cache-gc")) {
    VEXSIM_CHECK_MSG(!opts.cache_dir.empty(),
                     "--cache-gc needs an active result cache; add "
                     "--cache[=DIR] (or drop --no-cache)");
    const std::uint64_t budget = parse_size_bytes(cli.get("cache-gc", ""));
    VEXSIM_CHECK_MSG(budget <= static_cast<std::uint64_t>(INT64_MAX),
                     "--cache-gc budget too large");
    opts.cache_gc_bytes = static_cast<std::int64_t>(budget);
  }
  opts.point_timeout_ms =
      static_cast<int>(cli.get_int("timeout", opts.point_timeout_ms));
  VEXSIM_CHECK_MSG(opts.point_timeout_ms >= 0,
                   "--timeout must be >= 0 ms, got " << opts.point_timeout_ms);
  opts.max_retries =
      static_cast<int>(cli.get_int("retries", opts.max_retries));
  VEXSIM_CHECK_MSG(opts.max_retries >= 0,
                   "--retries must be >= 0, got " << opts.max_retries);
  return opts;
}

namespace {

// One simulation attempt under a wall-clock budget. The attempt runs on its
// own thread; on timeout that thread is detached and keeps simulating into
// state only it owns (shared_ptr), which is discarded when it finishes —
// abandoning a hung attempt must never corrupt the sweep's results.
struct AttemptState {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  bool threw = false;
  std::string error;
  RunResult result;
};

bool attempt_with_timeout(const SweepPoint& point, int timeout_ms,
                          RunResult& out, std::string& error) {
  auto state = std::make_shared<AttemptState>();
  std::thread runner([state, point] {  // `point` copied: may outlive caller
    RunResult r;
    bool threw = false;
    std::string what;
    try {
      r = run_workload_on(point.cfg, point.workload, point.opt);
    } catch (const std::exception& e) {
      threw = true;
      what = e.what();
    } catch (...) {
      threw = true;
      what = "unknown exception";
    }
    {
      const std::lock_guard<std::mutex> lock(state->m);
      state->result = std::move(r);
      state->threw = threw;
      state->error = std::move(what);
      state->done = true;
    }
    state->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(state->m);
  const bool finished =
      state->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                         [&state] { return state->done; });
  if (!finished) {
    lock.unlock();
    runner.detach();
    error = "timed out after " + std::to_string(timeout_ms) + " ms";
    return false;
  }
  lock.unlock();
  runner.join();
  if (state->threw) {
    error = std::move(state->error);
    return false;
  }
  out = std::move(state->result);
  return true;
}

bool attempt_inline(const SweepPoint& point, RunResult& out,
                    std::string& error) {
  try {
    out = run_workload_on(point.cfg, point.workload, point.opt);
    return true;
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  } catch (...) {
    error = "unknown exception";
    return false;
  }
}

}  // namespace

std::vector<RunResult> run_sweep(const std::vector<SweepPoint>& points,
                                 const SweepOptions& opts) {
  const int jobs = opts.jobs;
  VEXSIM_CHECK_MSG(jobs >= 1, "sweep needs at least one job, got " << jobs);
  VEXSIM_CHECK_MSG(opts.progress_every >= 0, "progress_every must be >= 0");
  VEXSIM_CHECK_MSG(opts.point_timeout_ms >= 0, "point_timeout_ms must be >= 0");
  VEXSIM_CHECK_MSG(opts.max_retries >= 0, "max_retries must be >= 0");
  std::vector<RunResult> results(points.size());
  // Per-point error text in the non-tolerant configuration; aggregated into
  // one exception after the workers drain.
  std::vector<std::string> fatal_errors(points.size());
  std::vector<char> fatal(points.size(), 0);
  std::ostream* progress_to =
      opts.progress_stream != nullptr ? opts.progress_stream : &std::cerr;

  // Cache pre-pass: hits are served in point order before the thread pool
  // starts; only misses become worker items. A point whose fingerprint
  // cannot be computed (unknown workload name) is uncacheable — the worker
  // then surfaces the real resolution error.
  std::unique_ptr<ResultCache> cache;
  std::vector<std::uint64_t> keys(points.size(), 0);
  std::vector<char> cacheable(points.size(), 0);
  std::vector<std::size_t> todo;
  todo.reserve(points.size());
  std::size_t cache_hits = 0;
  if (!opts.cache_dir.empty()) {
    cache = std::make_unique<ResultCache>(opts.cache_dir);
    for (std::size_t i = 0; i < points.size(); ++i) {
      try {
        keys[i] = point_fingerprint(points[i].cfg, points[i].workload,
                                    points[i].opt);
        cacheable[i] = 1;
      } catch (const CheckError&) {
      }
      if (cacheable[i] != 0) {
        if (std::optional<RunResult> hit = cache->load(keys[i])) {
          results[i] = std::move(*hit);
          ++cache_hits;
          continue;
        }
      }
      todo.push_back(i);
    }
  } else {
    todo.resize(points.size());
    std::iota(todo.begin(), todo.end(), std::size_t{0});
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{cache_hits};
  std::mutex progress_mutex;
  // Incremental-flush bookkeeping, guarded by progress_mutex: which points
  // have finished and how far the fully-complete prefix reaches. Cache hits
  // are complete before any worker starts.
  std::vector<char> done(points.size(), 0);
  std::size_t prefix = 0;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (results[i].cache_hit) done[i] = 1;
  while (prefix < points.size() && done[prefix] != 0) ++prefix;
  const bool flushing = opts.flush_every > 0 && opts.flush_fn != nullptr;
  std::atomic<bool> flush_failed{false};
  std::atomic<bool> store_failed{false};
  const int max_attempts = 1 + opts.max_retries;
  auto worker = [&] {
    for (;;) {
      const std::size_t t = next.fetch_add(1);
      if (t >= todo.size()) return;
      const std::size_t i = todo[t];
      const SweepPoint& p = points[i];

      RunResult r;
      std::string error;
      int used_attempts = 0;
      bool ok = false;
      // Retries re-run the point unchanged (same options, hence the same
      // derived seed): wall-clock timeouts come from machine load, not from
      // the simulation, so a retry of a timed-out point usually succeeds —
      // bit-identically to a first-try success.
      while (!ok && used_attempts < max_attempts) {
        ++used_attempts;
        ok = opts.point_timeout_ms > 0
                 ? attempt_with_timeout(p, opts.point_timeout_ms, r, error)
                 : attempt_inline(p, r, error);
      }

      if (ok) {
        r.attempts = used_attempts;
        if (cache != nullptr && cacheable[i] != 0 &&
            !store_failed.load(std::memory_order_relaxed)) {
          try {
            r.cached = true;
            cache->store(keys[i], p.workload, r);
          } catch (...) {
            // An unwritable cache (full disk, permissions) degrades to
            // uncached operation; the sweep's results outrank persistence.
            r.cached = false;
            store_failed.store(true, std::memory_order_relaxed);
            const std::lock_guard<std::mutex> lock(progress_mutex);
            *progress_to << "sweep: result-cache store failed; caching "
                            "disabled for this run" << std::endl;
          }
        }
        results[i] = std::move(r);
      } else if (opts.failure_tolerant()) {
        // Structured per-point failure: the sweep completes and the JSON
        // records what went wrong where, instead of one bad point poisoning
        // hours of finished work.
        RunResult failure;
        failure.failed = true;
        failure.error = error;
        failure.attempts = max_attempts;
        results[i] = std::move(failure);
      } else {
        fatal_errors[i] = error;
        fatal[i] = 1;
      }

      const std::size_t done_count = completed.fetch_add(1) + 1;
      if (opts.progress_every > 0 &&
          (done_count % static_cast<std::size_t>(opts.progress_every) == 0 ||
           done_count == points.size())) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        *progress_to << "sweep: " << done_count << "/" << points.size()
                     << " points" << std::endl;
      }
      if (flushing && !flush_failed.load(std::memory_order_relaxed)) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        // A fatally-errored point never counts as done: the complete prefix
        // stops before it, so a salvaged partial file holds only real
        // results. (A tolerated failure *is* a result.)
        done[i] = fatal[i] != 0 ? 0 : 1;
        while (prefix < points.size() && done[prefix] != 0) ++prefix;
        // The final complete document is written by the caller; only
        // genuinely partial states flush.
        if (done_count % static_cast<std::size_t>(opts.flush_every) == 0 &&
            done_count < points.size()) {
          try {
            opts.flush_fn(results, prefix);
          } catch (...) {
            // A failing flush (full disk, unwritable path) must not abort
            // the sweep: the in-memory results outrank the checkpoint.
            flush_failed.store(true, std::memory_order_relaxed);
            *progress_to << "sweep: incremental flush failed; flushing "
                            "disabled for this run" << std::endl;
          }
        }
      }
    }
  };

  const std::size_t n_workers =
      std::min(static_cast<std::size_t>(jobs), todo.size());
  if (n_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (cache != nullptr)
    *progress_to << "sweep: served " << cache_hits << "/" << points.size()
                 << " points from result cache" << std::endl;

  // Aggregate every fatal error into one exception: the first failure alone
  // hides how widespread the breakage is (and which configs it touched).
  std::size_t n_failed = 0;
  for (const char f : fatal) n_failed += static_cast<std::size_t>(f);
  if (n_failed > 0) {
    constexpr std::size_t kMaxReported = 3;
    std::ostringstream msg;
    msg << "sweep: " << n_failed << "/" << points.size()
        << " points failed; first " << std::min(n_failed, kMaxReported)
        << ":";
    std::size_t reported = 0;
    for (std::size_t i = 0; i < points.size() && reported < kMaxReported; ++i) {
      if (fatal[i] == 0) continue;
      msg << (reported == 0 ? " " : "; ") << "'" << points[i].label
          << "': " << fatal_errors[i];
      ++reported;
    }
    if (n_failed > kMaxReported) msg << "; ...";
    throw CheckError(msg.str());
  }

  // Post-sweep cache maintenance: evict down to the byte budget so a
  // long-lived shared cache directory stays bounded. Runs after the sweep so
  // this run's own records are the newest and survive preferentially.
  if (cache != nullptr && opts.cache_gc_bytes >= 0) {
    const CacheGcStats gc =
        cache->gc(static_cast<std::uint64_t>(opts.cache_gc_bytes));
    *progress_to << "sweep: cache-gc evicted " << gc.evicted << "/"
                 << gc.records_before << " records (" << gc.bytes_before
                 << " -> " << gc.bytes_after << " bytes, budget "
                 << opts.cache_gc_bytes << ")" << std::endl;
  }
  return results;
}

std::vector<RunResult> run_sweep(const std::vector<SweepPoint>& points,
                                 int jobs) {
  SweepOptions opts;
  opts.jobs = jobs;
  return run_sweep(points, opts);
}

namespace {

Json point_json(const SweepPoint& p, const RunResult& r) {
  Json cfg = Json::object();
  cfg.set("threads", p.cfg.hw_threads)
      .set("technique", p.cfg.technique.name())
      .set("clusters", p.cfg.clusters)
      .set("issue_width", p.cfg.total_issue_width())
      .set("geometry", p.cfg.geometry_name())
      .set("cluster_renaming", p.cfg.cluster_renaming)
      .set("seed", p.opt.seed)
      .set("scale", p.opt.scale)
      .set("budget", p.opt.budget)
      .set("timeslice", p.opt.timeslice)
      .set("cc", p.opt.compiler.name());

  Json sim = Json::object();
  sim.set("ipc", r.ipc())
      .set("cycles", r.sim.cycles)
      .set("ops_issued", r.sim.ops_issued)
      .set("instructions_retired", r.sim.instructions_retired)
      .set("split_instructions", r.sim.split_instructions)
      .set("vertical_waste_cycles", r.sim.vertical_waste_cycles)
      .set("multi_thread_cycles", r.sim.multi_thread_cycles)
      .set("memport_stall_cycles", r.sim.memport_stall_cycles)
      .set("drain_cycles", r.sim.drain_cycles)
      .set("taken_branches", r.sim.taken_branches)
      .set("faults", r.sim.faults);

  Json caches = Json::object();
  caches.set("icache_hits", r.icache.hits)
      .set("icache_misses", r.icache.misses)
      .set("dcache_hits", r.dcache.hits)
      .set("dcache_misses", r.dcache.misses);

  // Hierarchy-backend statistics; absent under the fixed backend so every
  // pre-hierarchy golden trajectory stays byte-identical.
  Json memory = Json::object();
  if (r.memory.present) {
    const auto mshr_json = [](const mem::MshrStats& m) {
      Json j = Json::object();
      j.set("allocations", m.allocations)
          .set("merges", m.merges)
          .set("full_stalls", m.full_stalls)
          .set("peak_occupancy", m.peak_occupancy);
      return j;
    };
    Json dram = Json::object();
    dram.set("row_hits", r.memory.dram.row_hits)
        .set("row_closed", r.memory.dram.row_closed)
        .set("row_conflicts", r.memory.dram.row_conflicts)
        .set("row_hit_rate", r.memory.dram.row_hit_rate());
    memory.set("imshr", mshr_json(r.memory.imshr))
        .set("dmshr", mshr_json(r.memory.dmshr))
        .set("l2_hits", r.memory.l2.hits)
        .set("l2_misses", r.memory.l2.misses)
        .set("dram", std::move(dram));
  }

  Json merge = Json::object();
  merge.set("full_selections", r.merge.full_selections)
      .set("partial_selections", r.merge.partial_selections)
      .set("blocked_selections", r.merge.blocked_selections)
      .set("comm_nosplit_forced", r.merge.comm_nosplit_forced);

  Json instances = Json::array();
  for (const InstanceResult& inst : r.instances) {
    Json ij = Json::object();
    ij.set("name", inst.name)
        .set("instructions", inst.instructions)
        .set("respawns", inst.respawns)
        .set("arch_fingerprint", inst.arch_fingerprint)
        .set("faulted", inst.faulted);
    instances.push(std::move(ij));
  }

  // Compile quality of the workload's static code (per-component stats
  // summed by build_workload), so BENCH trajectories track the compiler
  // alongside the machine.
  Json compile = Json::object();
  compile.set("ops_per_instruction", r.compile.ops_per_instruction())
      .set("instructions", r.compile.instructions)
      .set("operations", r.compile.operations)
      .set("copies_inserted", r.compile.copies_inserted)
      .set("swp_loops", r.compile.swp_loops);

  Json point = Json::object();
  point.set("label", p.label)
      .set("workload", p.workload)
      .set("config", std::move(cfg))
      .set("sim", std::move(sim))
      .set("caches", std::move(caches));
  if (r.memory.present) point.set("memory", std::move(memory));
  point.set("merge", std::move(merge))
      .set("compile", std::move(compile))
      .set("instances", std::move(instances));
  // Harness provenance. `cached` is cache membership (stored or served), so
  // cold- and warm-cache sweeps serialize identically; per-run hit counts go
  // to the progress stream instead. `attempts` replays from the cache record
  // and is equally stable.
  point.set("cached", r.cached)
      .set("attempts", r.attempts)
      .set("failed", r.failed);
  if (r.failed) point.set("error", r.error);
  return point;
}

}  // namespace

Json sweep_point_json(const SweepPoint& p, const RunResult& r) {
  return point_json(p, r);
}

Json sweep_json(const std::string& experiment,
                const std::vector<SweepPoint>& points,
                const std::vector<RunResult>& results) {
  VEXSIM_CHECK(points.size() == results.size());
  Json doc = Json::object();
  doc.set("experiment", experiment);
  Json arr = Json::array();
  for (std::size_t i = 0; i < points.size(); ++i)
    arr.push(point_json(points[i], results[i]));
  doc.set("points", std::move(arr));
  return doc;
}

Json sweep_json_partial(const std::string& experiment,
                        const std::vector<SweepPoint>& points,
                        const std::vector<RunResult>& results,
                        std::size_t count) {
  VEXSIM_CHECK(points.size() == results.size());
  VEXSIM_CHECK(count <= points.size());
  Json doc = Json::object();
  doc.set("experiment", experiment);
  doc.set("partial", true);
  doc.set("points_total", static_cast<std::uint64_t>(points.size()));
  Json arr = Json::array();
  for (std::size_t i = 0; i < count; ++i)
    arr.push(point_json(points[i], results[i]));
  doc.set("points", std::move(arr));
  return doc;
}

const RunResult& result_for(const std::vector<SweepPoint>& points,
                            const std::vector<RunResult>& results,
                            const std::string& label) {
  VEXSIM_CHECK(points.size() == results.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    if (points[i].label == label) return results[i];
  VEXSIM_CHECK_MSG(false, "no sweep point labelled '" << label << "'");
  std::abort();  // unreachable: the check above throws
}

std::vector<RunResult> run_sweep_and_dump(
    const Cli& cli, const std::string& experiment,
    const std::vector<SweepPoint>& points) {
  const ShardSpec shard = ShardSpec::from_cli(cli);
  const std::string path = cli.get(
      "json", shard.active
                  ? "BENCH_" + experiment + ".shard" + shard.tag() + ".json"
                  : "BENCH_" + experiment + ".json");
  SweepOptions opts = SweepOptions::from_cli(cli);
  // Write-then-rename: a reader (or a crash) mid-write never sees a
  // truncated document at the target path — in particular, a failing final
  // write must not destroy the last flushed checkpoint.
  const auto write_atomically = [&path](const Json& doc) {
    const std::string tmp = path + ".tmp";
    write_json_file(tmp, doc);
    VEXSIM_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                     "failed to move " << tmp << " over " << path);
  };

  if (!shard.active) {
    // --flush N: overwrite the target file with the completed prefix every N
    // points so a long sweep is inspectable (and partially salvageable)
    // mid-run. The completed sweep rewrites the file in its final form
    // below.
    if (opts.flush_every > 0) {
      opts.flush_fn = [&points, &experiment, &write_atomically](
                          const std::vector<RunResult>& partial,
                          std::size_t prefix) {
        write_atomically(
            sweep_json_partial(experiment, points, partial, prefix));
      };
    }
    const std::vector<RunResult> results = run_sweep(points, opts);
    write_atomically(sweep_json(experiment, points, results));
    return results;
  }

  // --shard i/N: enumerate the full manifest (identical in every shard
  // process — point lists are a pure function of the bench flags), simulate
  // only the owned round-robin slice, and emit a shard document for
  // tools/vexmerge.
  const std::vector<ManifestEntry> manifest = build_manifest(points);
  std::vector<SweepPoint> mine;
  std::vector<std::size_t> mine_index;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!shard.owns(i)) continue;
    mine.push_back(points[i]);
    mine_index.push_back(i);
  }
  const auto shard_doc = [&](const std::vector<RunResult>& rs,
                             std::size_t count, bool partial) {
    std::vector<Json> docs;
    std::vector<std::size_t> idx;
    docs.reserve(count);
    idx.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      docs.push_back(sweep_point_json(mine[k], rs[k]));
      idx.push_back(mine_index[k]);
    }
    return sweep_shard_json(experiment, shard, manifest, idx, docs, partial);
  };
  if (opts.flush_every > 0) {
    opts.flush_fn = [&shard_doc, &write_atomically](
                        const std::vector<RunResult>& partial,
                        std::size_t prefix) {
      write_atomically(shard_doc(partial, prefix, true));
    };
  }
  const std::vector<RunResult> mine_results = run_sweep(mine, opts);
  write_atomically(shard_doc(mine_results, mine_results.size(), false));
  std::ostream* progress_to =
      opts.progress_stream != nullptr ? opts.progress_stream : &std::cerr;
  *progress_to << "sweep: shard " << shard.str() << " ran " << mine.size()
               << "/" << points.size() << " points -> " << path << std::endl;

  // Full-size result vector: owned slots filled, foreign slots default.
  std::vector<RunResult> results(points.size());
  for (std::size_t k = 0; k < mine.size(); ++k)
    results[mine_index[k]] = mine_results[k];
  return results;
}

}  // namespace vexsim::harness
