#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace vexsim::harness {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

SweepOptions SweepOptions::from_cli(const Cli& cli) {
  SweepOptions opts;
  opts.jobs = cli.jobs();
  opts.progress_every =
      static_cast<int>(cli.get_int("progress", opts.progress_every));
  VEXSIM_CHECK_MSG(opts.progress_every >= 0,
                   "--progress must be >= 0, got " << opts.progress_every);
  opts.flush_every = static_cast<int>(cli.get_int("flush", opts.flush_every));
  VEXSIM_CHECK_MSG(opts.flush_every >= 0,
                   "--flush must be >= 0, got " << opts.flush_every);
  return opts;
}

std::vector<RunResult> run_sweep(const std::vector<SweepPoint>& points,
                                 const SweepOptions& opts) {
  const int jobs = opts.jobs;
  VEXSIM_CHECK_MSG(jobs >= 1, "sweep needs at least one job, got " << jobs);
  VEXSIM_CHECK_MSG(opts.progress_every >= 0, "progress_every must be >= 0");
  std::vector<RunResult> results(points.size());
  std::vector<std::exception_ptr> errors(points.size());

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;
  // Incremental-flush bookkeeping, guarded by progress_mutex: which points
  // have finished and how far the fully-complete prefix reaches.
  std::vector<char> done(points.size(), 0);
  std::size_t prefix = 0;
  const bool flushing = opts.flush_every > 0 && opts.flush_fn != nullptr;
  std::atomic<bool> flush_failed{false};
  std::ostream* progress_to =
      opts.progress_stream != nullptr ? opts.progress_stream : &std::cerr;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      try {
        const SweepPoint& p = points[i];
        results[i] = run_workload_on(p.cfg, p.workload, p.opt);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      const std::size_t done_count = completed.fetch_add(1) + 1;
      if (opts.progress_every > 0 &&
          (done_count % static_cast<std::size_t>(opts.progress_every) == 0 ||
           done_count == points.size())) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        *progress_to << "sweep: " << done_count << "/" << points.size()
                     << " points" << std::endl;
      }
      if (flushing && !flush_failed.load(std::memory_order_relaxed)) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        // An errored point never counts as done: the complete prefix stops
        // before it, so a salvaged partial file holds only real results.
        done[i] = errors[i] ? 0 : 1;
        while (prefix < points.size() && done[prefix] != 0) ++prefix;
        // The final complete document is written by the caller; only
        // genuinely partial states flush.
        if (done_count % static_cast<std::size_t>(opts.flush_every) == 0 &&
            done_count < points.size()) {
          try {
            opts.flush_fn(results, prefix);
          } catch (...) {
            // A failing flush (full disk, unwritable path) must not abort
            // the sweep: the in-memory results outrank the checkpoint.
            flush_failed.store(true, std::memory_order_relaxed);
            *progress_to << "sweep: incremental flush failed; flushing "
                            "disabled for this run" << std::endl;
          }
        }
      }
    }
  };

  const std::size_t n_workers =
      std::min(static_cast<std::size_t>(jobs), points.size());
  if (n_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

std::vector<RunResult> run_sweep(const std::vector<SweepPoint>& points,
                                 int jobs) {
  SweepOptions opts;
  opts.jobs = jobs;
  return run_sweep(points, opts);
}

namespace {

Json point_json(const SweepPoint& p, const RunResult& r) {
  Json cfg = Json::object();
  cfg.set("threads", p.cfg.hw_threads)
      .set("technique", p.cfg.technique.name())
      .set("clusters", p.cfg.clusters)
      .set("issue_width", p.cfg.total_issue_width())
      .set("geometry", p.cfg.geometry_name())
      .set("cluster_renaming", p.cfg.cluster_renaming)
      .set("seed", p.opt.seed)
      .set("scale", p.opt.scale)
      .set("budget", p.opt.budget)
      .set("timeslice", p.opt.timeslice);

  Json sim = Json::object();
  sim.set("ipc", r.ipc())
      .set("cycles", r.sim.cycles)
      .set("ops_issued", r.sim.ops_issued)
      .set("instructions_retired", r.sim.instructions_retired)
      .set("split_instructions", r.sim.split_instructions)
      .set("vertical_waste_cycles", r.sim.vertical_waste_cycles)
      .set("multi_thread_cycles", r.sim.multi_thread_cycles)
      .set("memport_stall_cycles", r.sim.memport_stall_cycles)
      .set("drain_cycles", r.sim.drain_cycles)
      .set("taken_branches", r.sim.taken_branches)
      .set("faults", r.sim.faults);

  Json caches = Json::object();
  caches.set("icache_hits", r.icache.hits)
      .set("icache_misses", r.icache.misses)
      .set("dcache_hits", r.dcache.hits)
      .set("dcache_misses", r.dcache.misses);

  Json merge = Json::object();
  merge.set("full_selections", r.merge.full_selections)
      .set("partial_selections", r.merge.partial_selections)
      .set("blocked_selections", r.merge.blocked_selections)
      .set("comm_nosplit_forced", r.merge.comm_nosplit_forced);

  Json instances = Json::array();
  for (const InstanceResult& inst : r.instances) {
    Json ij = Json::object();
    ij.set("name", inst.name)
        .set("instructions", inst.instructions)
        .set("respawns", inst.respawns)
        .set("arch_fingerprint", inst.arch_fingerprint)
        .set("faulted", inst.faulted);
    instances.push(std::move(ij));
  }

  Json point = Json::object();
  point.set("label", p.label)
      .set("workload", p.workload)
      .set("config", std::move(cfg))
      .set("sim", std::move(sim))
      .set("caches", std::move(caches))
      .set("merge", std::move(merge))
      .set("instances", std::move(instances));
  return point;
}

}  // namespace

Json sweep_json(const std::string& experiment,
                const std::vector<SweepPoint>& points,
                const std::vector<RunResult>& results) {
  VEXSIM_CHECK(points.size() == results.size());
  Json doc = Json::object();
  doc.set("experiment", experiment);
  Json arr = Json::array();
  for (std::size_t i = 0; i < points.size(); ++i)
    arr.push(point_json(points[i], results[i]));
  doc.set("points", std::move(arr));
  return doc;
}

Json sweep_json_partial(const std::string& experiment,
                        const std::vector<SweepPoint>& points,
                        const std::vector<RunResult>& results,
                        std::size_t count) {
  VEXSIM_CHECK(points.size() == results.size());
  VEXSIM_CHECK(count <= points.size());
  Json doc = Json::object();
  doc.set("experiment", experiment);
  doc.set("partial", true);
  doc.set("points_total", static_cast<std::uint64_t>(points.size()));
  Json arr = Json::array();
  for (std::size_t i = 0; i < count; ++i)
    arr.push(point_json(points[i], results[i]));
  doc.set("points", std::move(arr));
  return doc;
}

const RunResult& result_for(const std::vector<SweepPoint>& points,
                            const std::vector<RunResult>& results,
                            const std::string& label) {
  VEXSIM_CHECK(points.size() == results.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    if (points[i].label == label) return results[i];
  VEXSIM_CHECK_MSG(false, "no sweep point labelled '" << label << "'");
  std::abort();  // unreachable: the check above throws
}

std::vector<RunResult> run_sweep_and_dump(
    const Cli& cli, const std::string& experiment,
    const std::vector<SweepPoint>& points) {
  const std::string path = cli.get("json", "BENCH_" + experiment + ".json");
  SweepOptions opts = SweepOptions::from_cli(cli);
  // Write-then-rename: a reader (or a crash) mid-write never sees a
  // truncated document at the target path — in particular, a failing final
  // write must not destroy the last flushed checkpoint.
  const auto write_atomically = [&path](const Json& doc) {
    const std::string tmp = path + ".tmp";
    write_json_file(tmp, doc);
    VEXSIM_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                     "failed to move " << tmp << " over " << path);
  };
  // --flush N: overwrite the target file with the completed prefix every N
  // points so a long sweep is inspectable (and partially salvageable)
  // mid-run. The completed sweep rewrites the file in its final form below.
  if (opts.flush_every > 0) {
    opts.flush_fn = [&points, &experiment, &write_atomically](
                        const std::vector<RunResult>& partial,
                        std::size_t prefix) {
      write_atomically(sweep_json_partial(experiment, points, partial, prefix));
    };
  }
  const std::vector<RunResult> results = run_sweep(points, opts);
  write_atomically(sweep_json(experiment, points, results));
  return results;
}

}  // namespace vexsim::harness
