// Parallel experiment-sweep engine.
//
// A sweep is a flat list of independent simulation points, each fully
// described by (MachineConfig, workload, ExperimentOptions). Points run on a
// small thread pool; every point owns a private deterministic Rng stream
// (seeded from its ExperimentOptions), so results are bit-identical to a
// serial run regardless of --jobs and of worker interleaving. Bench binaries
// build their point lists up front, run the sweep, then render tables and a
// machine-readable JSON trajectory from the in-order results.
//
// Scale-out features, all off by default:
//  * Result caching (`cache_dir` / --cache): points whose content hash is
//    already in the cache are served before the thread pool starts; misses
//    run as usual and are persisted. Cached results are bit-identical to
//    fresh ones (the golden suite is the referee), and a cold-cache run
//    emits byte-identical JSON to a warm one.
//  * Per-point timeout/retry (`point_timeout_ms` / `max_retries`): a
//    timed-out or thrown point is re-attempted with its original derived
//    seed. When either knob is set the sweep is failure-tolerant — a point
//    that exhausts its attempts becomes a structured per-point failure
//    (RunResult::failed + error, "failed": true in the JSON) instead of
//    aborting the whole sweep. With both knobs at their defaults, failures
//    aggregate into a single exception reporting every failed label.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiments.hpp"
#include "stats/json.hpp"

namespace vexsim::harness {

struct SweepPoint {
  std::string label;      // unique within a sweep; keys the JSON entry
  MachineConfig cfg;
  std::string workload;   // any wl::workload()-resolvable name
  ExperimentOptions opt;
};

struct SweepOptions {
  int jobs = 1;  // worker threads; >= 1 (checked)
  // When > 0, a progress line ("sweep: K/N points") goes to
  // *progress_stream after every `progress_every` completed points —
  // long paper-scale sweeps stay observable without touching the results.
  int progress_every = 0;
  std::ostream* progress_stream = nullptr;  // nullptr = std::cerr
  // When > 0 and `flush_fn` is set, `flush_fn(results, n)` fires after every
  // `flush_every` completed points with the in-progress result vector and
  // the longest fully-complete prefix length n — run_sweep_and_dump uses it
  // to write a partial BENCH_*.json so long paper-scale sweeps are
  // inspectable mid-run. Called under the sweep's bookkeeping lock;
  // results[0..n) are safe to read.
  int flush_every = 0;
  std::function<void(const std::vector<RunResult>&, std::size_t)> flush_fn;

  // Content-addressed result cache directory (harness/result_cache.hpp);
  // empty disables caching. Hits are served without touching the thread
  // pool; misses are simulated and persisted. Served/total counts go to
  // *progress_stream ("sweep: served K/N points from result cache").
  std::string cache_dir;

  // When >= 0 (--cache-gc SIZE), the cache directory is garbage-collected
  // after the sweep completes: oldest-mtime records are evicted until the
  // indexed bytes fit the budget, and the index is rewritten consistently.
  // Requires cache_dir; a summary line goes to *progress_stream.
  std::int64_t cache_gc_bytes = -1;

  // Wall-clock budget per simulation attempt; 0 = unlimited. A timed-out
  // attempt is abandoned (its worker thread is detached and its state
  // discarded) and the point is retried. Caveat: wall-clock timeouts are
  // inherently nondeterministic — when one actually fires, the affected
  // point's "attempts" count (and, if retries are exhausted, its "failed"
  // record) reflects this machine's load, so byte-level trajectory
  // identity across runs is only guaranteed while no attempt times out.
  // Simulated statistics stay bit-identical regardless: a retried success
  // re-runs with identical options and seed.
  int point_timeout_ms = 0;
  // Extra attempts after the first for a timed-out or thrown point. Each
  // retry re-runs the point unchanged — same ExperimentOptions, same
  // derived seed — so a success on any attempt is bit-identical to a
  // first-try success.
  int max_retries = 0;

  // Failure tolerance is implied by configuring either retry knob: the
  // operator asked for per-point fault handling, so an exhausted point is
  // recorded as a structured failure instead of poisoning the sweep.
  [[nodiscard]] bool failure_tolerant() const {
    return point_timeout_ms > 0 || max_retries > 0;
  }

  // Applies --jobs/--progress/--flush/--cache[=DIR]/--no-cache/
  // --timeout MS/--retries N/--cache-gc SIZE. Bare `--cache` uses
  // ./sweep-cache; --no-cache wins over --cache (so a wrapper script's
  // cache can be disabled without editing it). --cache-gc accepts K/M/G
  // suffixes and is an error without an active --cache.
  static SweepOptions from_cli(const Cli& cli);
};

// Decorrelated per-point seed stream: splitmix64 over (base, index). Points
// built from a single --seed get independent Rng streams that never depend
// on scheduling order.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t index);

// Runs every point and returns results in point order. jobs == 1
// degenerates to the serial loop; results are bit-identical for any job
// count. In the default (non-tolerant) configuration, point errors are
// aggregated after all workers drain into one CheckError reporting the
// failed-point count and the first few failing labels; with
// failure_tolerant() options, failed points come back as structured
// RunResult failures instead.
[[nodiscard]] std::vector<RunResult> run_sweep(
    const std::vector<SweepPoint>& points, const SweepOptions& opts);
[[nodiscard]] std::vector<RunResult> run_sweep(
    const std::vector<SweepPoint>& points, int jobs);

// Builds the BENCH_*.json trajectory document: one entry per point carrying
// the configuration axes and the full per-run statistics.
[[nodiscard]] Json sweep_json(const std::string& experiment,
                              const std::vector<SweepPoint>& points,
                              const std::vector<RunResult>& results);

// Partial-flush variant: the first `count` points only, marked with
// "partial": true and the total point count so a mid-run file is never
// mistaken for a finished trajectory. The final document written when the
// sweep completes is the plain sweep_json() form.
[[nodiscard]] Json sweep_json_partial(const std::string& experiment,
                                      const std::vector<SweepPoint>& points,
                                      const std::vector<RunResult>& results,
                                      std::size_t count);

// One rendered trajectory entry (the per-point subtree of sweep_json).
// Exposed for the shard layer, which embeds these subtrees in shard
// documents so vexmerge can re-emit them byte-identically.
[[nodiscard]] Json sweep_point_json(const SweepPoint& p, const RunResult& r);

// Bench-binary entry point: runs the sweep with --jobs workers (progress
// via --progress N) and writes the trajectory to --json (default
// BENCH_<experiment>.json), returning the in-order results for table
// rendering.
//
// Under --shard i/N only the owned round-robin slice is simulated and the
// output becomes a shard document (default name
// BENCH_<experiment>.shard<i>of<N>.json) for tools/vexmerge; the returned
// vector still has one entry per point, with foreign points left
// default-constructed — sharded benches should skip table rendering.
[[nodiscard]] std::vector<RunResult> run_sweep_and_dump(
    const Cli& cli, const std::string& experiment,
    const std::vector<SweepPoint>& points);

// Result of the point carrying `label`; CheckError when absent. Keys table
// rendering on labels instead of fragile parallel index arithmetic.
[[nodiscard]] const RunResult& result_for(
    const std::vector<SweepPoint>& points,
    const std::vector<RunResult>& results, const std::string& label);

}  // namespace vexsim::harness
