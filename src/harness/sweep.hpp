// Parallel experiment-sweep engine.
//
// A sweep is a flat list of independent simulation points, each fully
// described by (MachineConfig, workload, ExperimentOptions). Points run on a
// small thread pool; every point owns a private deterministic Rng stream
// (seeded from its ExperimentOptions), so results are bit-identical to a
// serial run regardless of --jobs and of worker interleaving. Bench binaries
// build their point lists up front, run the sweep, then render tables and a
// machine-readable JSON trajectory from the in-order results.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiments.hpp"
#include "stats/json.hpp"

namespace vexsim::harness {

struct SweepPoint {
  std::string label;      // unique within a sweep; keys the JSON entry
  MachineConfig cfg;
  std::string workload;   // any wl::workload()-resolvable name
  ExperimentOptions opt;
};

struct SweepOptions {
  int jobs = 1;  // worker threads; >= 1 (checked)
  // When > 0, a progress line ("sweep: K/N points") goes to
  // *progress_stream after every `progress_every` completed points —
  // long paper-scale sweeps stay observable without touching the results.
  int progress_every = 0;
  std::ostream* progress_stream = nullptr;  // nullptr = std::cerr
  // When > 0 and `flush_fn` is set, `flush_fn(results, n)` fires after every
  // `flush_every` completed points with the in-progress result vector and
  // the longest fully-complete prefix length n — run_sweep_and_dump uses it
  // to write a partial BENCH_*.json so long paper-scale sweeps are
  // inspectable mid-run. Called under the sweep's bookkeeping lock;
  // results[0..n) are safe to read.
  int flush_every = 0;
  std::function<void(const std::vector<RunResult>&, std::size_t)> flush_fn;

  // Applies --jobs/--progress/--flush.
  static SweepOptions from_cli(const Cli& cli);
};

// Decorrelated per-point seed stream: splitmix64 over (base, index). Points
// built from a single --seed get independent Rng streams that never depend
// on scheduling order.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t index);

// Runs every point and returns results in point order. jobs == 1
// degenerates to the serial loop; results are bit-identical for any job
// count. If any point throws, the first failure in point order is rethrown
// after all workers drain.
[[nodiscard]] std::vector<RunResult> run_sweep(
    const std::vector<SweepPoint>& points, const SweepOptions& opts);
[[nodiscard]] std::vector<RunResult> run_sweep(
    const std::vector<SweepPoint>& points, int jobs);

// Builds the BENCH_*.json trajectory document: one entry per point carrying
// the configuration axes and the full per-run statistics.
[[nodiscard]] Json sweep_json(const std::string& experiment,
                              const std::vector<SweepPoint>& points,
                              const std::vector<RunResult>& results);

// Partial-flush variant: the first `count` points only, marked with
// "partial": true and the total point count so a mid-run file is never
// mistaken for a finished trajectory. The final document written when the
// sweep completes is the plain sweep_json() form.
[[nodiscard]] Json sweep_json_partial(const std::string& experiment,
                                      const std::vector<SweepPoint>& points,
                                      const std::vector<RunResult>& results,
                                      std::size_t count);

// Bench-binary entry point: runs the sweep with --jobs workers (progress
// via --progress N) and writes the trajectory to --json (default
// BENCH_<experiment>.json), returning the in-order results for table
// rendering.
[[nodiscard]] std::vector<RunResult> run_sweep_and_dump(
    const Cli& cli, const std::string& experiment,
    const std::vector<SweepPoint>& points);

// Result of the point carrying `label`; CheckError when absent. Keys table
// rendering on labels instead of fragile parallel index arithmetic.
[[nodiscard]] const RunResult& result_for(
    const std::vector<SweepPoint>& points,
    const std::vector<RunResult>& results, const std::string& label);

}  // namespace vexsim::harness
