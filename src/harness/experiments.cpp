#include "harness/experiments.hpp"

#include "mdes/machine.hpp"
#include "workloads/registry.hpp"
#include "workloads/workloads.hpp"

namespace vexsim::harness {

MachineConfig ExperimentOptions::machine(int threads,
                                         Technique technique) const {
  MachineConfig cfg = base_machine ? *base_machine : MachineConfig{};
  cfg.hw_threads = threads;
  cfg.technique = technique;
  if (mem_backend) cfg.memory.backend = *mem_backend;
  cfg.validate();
  return cfg;
}

MachineConfig ExperimentOptions::machine_single() const {
  MachineConfig cfg = base_machine ? *base_machine : MachineConfig{};
  cfg.hw_threads = 1;
  cfg.technique = Technique::smt();
  if (mem_backend) cfg.memory.backend = *mem_backend;
  cfg.validate();
  return cfg;
}

bool operator==(const ExperimentOptions& a, const ExperimentOptions& b) {
  const bool machines_equal =
      (a.base_machine == nullptr) == (b.base_machine == nullptr) &&
      (a.base_machine == nullptr || *a.base_machine == *b.base_machine);
  return machines_equal && a.scale == b.scale && a.budget == b.budget &&
         a.timeslice == b.timeslice && a.max_cycles == b.max_cycles &&
         a.seed == b.seed && a.fast_forward == b.fast_forward &&
         a.fused == b.fused && a.compiler == b.compiler &&
         a.mem_backend == b.mem_backend;
}

ExperimentOptions ExperimentOptions::from_cli(const Cli& cli) {
  ExperimentOptions opt;
  if (cli.get_bool("paper", false)) {
    opt.scale = 1.0;
    opt.budget = 200'000'000;
    opt.timeslice = 5'000'000;
    opt.max_cycles = ~0ull;
  }
  if (cli.get_bool("quick", false)) {
    opt.scale = 0.05;
    opt.budget = 80'000;
    opt.timeslice = 40'000;
  }
  opt.scale = cli.get_double("scale", opt.scale);
  opt.budget = static_cast<std::uint64_t>(cli.get_int(
      "budget", static_cast<std::int64_t>(opt.budget)));
  opt.timeslice = static_cast<std::uint64_t>(cli.get_int(
      "timeslice", static_cast<std::int64_t>(opt.timeslice)));
  opt.seed = static_cast<std::uint64_t>(cli.get_int(
      "seed", static_cast<std::int64_t>(opt.seed)));
  if (cli.has("cc"))
    opt.compiler = cc::CompilerOptions::parse(cli.get("cc", ""));
  opt.compiler.verify_each_pass =
      cli.get_bool("cc-verify", opt.compiler.verify_each_pass);
  if (cli.has("config"))
    opt.base_machine = std::make_shared<const MachineConfig>(
        mdes::load_machine(cli.get("config", "")));
  if (cli.has("mem"))
    opt.mem_backend = mem_backend_from(cli.get("mem", ""));
  return opt;
}

RunResult run_workload_on(const MachineConfig& cfg,
                          const std::string& workload_name,
                          const ExperimentOptions& opt) {
  const wl::WorkloadSpec spec = wl::workload(workload_name);
  CompileSummary compile;
  auto programs =
      wl::build_workload(spec, cfg, opt.scale, opt.compiler, &compile);
  DriverParams params;
  params.timeslice = opt.timeslice;
  params.budget = opt.budget;
  params.max_cycles = opt.max_cycles;
  params.seed = opt.seed;
  params.respawn = true;
  params.fast_forward = opt.fast_forward;
  params.fused = opt.fused;
  params.profile = opt.profile;
  MultiprogramDriver driver(cfg, std::move(programs), params);
  RunResult result = driver.run();
  result.compile = compile;
  return result;
}

RunResult run_workload(const std::string& workload_name, int threads,
                       Technique technique, const ExperimentOptions& opt) {
  return run_workload_on(opt.machine(threads, technique), workload_name, opt);
}

RunResult run_single(const std::string& benchmark, bool perfect_memory,
                     const ExperimentOptions& opt) {
  MachineConfig cfg = opt.machine_single();
  cfg.icache.perfect = perfect_memory;
  cfg.dcache.perfect = perfect_memory;
  cc::CompileStats stats;
  auto program =
      wl::make_benchmark(benchmark, cfg, opt.scale, opt.compiler, &stats);
  DriverParams params;
  params.timeslice = ~0ull;  // single program: no switching
  params.budget = opt.budget;
  params.max_cycles = opt.max_cycles;
  params.seed = opt.seed;
  params.respawn = true;
  params.fused = opt.fused;
  params.profile = opt.profile;
  MultiprogramDriver driver(cfg, {std::move(program)}, params);
  RunResult result = driver.run();
  result.compile.instructions = static_cast<std::uint64_t>(stats.instructions);
  result.compile.operations = static_cast<std::uint64_t>(stats.operations);
  result.compile.copies_inserted =
      static_cast<std::uint64_t>(stats.copies_inserted);
  result.compile.swp_loops = static_cast<std::uint64_t>(stats.swp_loops);
  result.compile.present = true;
  return result;
}

}  // namespace vexsim::harness
