#include "harness/shard.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <tuple>

#include "harness/result_cache.hpp"
#include "util/check.hpp"

namespace vexsim::harness {

namespace {

constexpr const char* kShardForm =
    "--shard expects I/N with integers 1 <= I <= N (for example 2/4)";

bool parse_small_uint(const std::string& s, int& out) {
  if (s.empty() || s.size() > 6) return false;
  for (const char c : s)
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  out = std::stoi(s);
  return true;
}

// Manifest fingerprint as JSON: 16-hex string, or null for an uncacheable
// point (unresolvable workload — the owning shard reports the real error).
Json fingerprint_json(const ManifestEntry& e) {
  return e.cacheable ? Json(fingerprint_hex(e.fingerprint)) : Json();
}

Json manifest_json(const std::vector<ManifestEntry>& manifest) {
  Json arr = Json::array();
  for (const ManifestEntry& e : manifest) {
    Json row = Json::object();
    row.set("label", e.label).set("fingerprint", fingerprint_json(e));
    arr.push(std::move(row));
  }
  return arr;
}

// Common prefix of both shard-document kinds; kind-specific fields are
// inserted by the callers before manifest/points.
Json shard_doc_prefix(const std::string& experiment, const std::string& kind,
                      const ShardSpec& shard, std::size_t points_total,
                      bool partial) {
  Json sh = Json::object();
  sh.set("index", shard.index)
      .set("count", shard.count)
      .set("points_total", static_cast<std::uint64_t>(points_total));
  Json doc = Json::object();
  doc.set("experiment", experiment).set("kind", kind).set("shard",
                                                          std::move(sh));
  if (partial) doc.set("partial", true);
  return doc;
}

std::string fingerprint_repr(const Json& v) {
  return v.is_null() ? "null" : v.as_string();
}

}  // namespace

ShardSpec ShardSpec::parse(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  int index = 0;
  int count = 0;
  const bool well_formed =
      slash != std::string::npos &&
      parse_small_uint(spec.substr(0, slash), index) &&
      parse_small_uint(spec.substr(slash + 1), count) && index >= 1 &&
      count >= 1 && index <= count;
  VEXSIM_CHECK_MSG(well_formed, kShardForm << "; got '" << spec << "'");
  return {index, count, true};
}

ShardSpec ShardSpec::from_cli(const Cli& cli) {
  if (!cli.has("shard")) return {};
  const std::string spec = cli.get("shard", "");
  // Bare `--shard` parses as the boolean value "true"; reject it with the
  // same message as any other malformed spec.
  VEXSIM_CHECK_MSG(spec != "true", kShardForm << "; got ''");
  return parse(spec);
}

std::vector<ManifestEntry> build_manifest(
    const std::vector<SweepPoint>& points) {
  std::vector<ManifestEntry> manifest;
  manifest.reserve(points.size());
  for (const SweepPoint& p : points) {
    ManifestEntry e;
    e.label = p.label;
    try {
      e.fingerprint = point_fingerprint(p.cfg, p.workload, p.opt);
      e.cacheable = true;
    } catch (const CheckError&) {
    }
    manifest.push_back(std::move(e));
  }
  return manifest;
}

Json sweep_shard_json(const std::string& experiment, const ShardSpec& shard,
                      const std::vector<ManifestEntry>& manifest,
                      const std::vector<std::size_t>& indices,
                      const std::vector<Json>& point_docs, bool partial) {
  VEXSIM_CHECK(indices.size() == point_docs.size());
  Json doc =
      shard_doc_prefix(experiment, "sweep", shard, manifest.size(), partial);
  doc.set("manifest", manifest_json(manifest));
  Json pts = Json::array();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    Json entry = Json::object();
    entry.set("index", static_cast<std::uint64_t>(indices[k]))
        .set("fingerprint", fingerprint_json(manifest[indices[k]]))
        .set("point", point_docs[k]);
    pts.push(std::move(entry));
  }
  doc.set("points", std::move(pts));
  return doc;
}

Json dse_shard_json(const std::string& experiment, const ShardSpec& shard,
                    const Json& header, const std::vector<std::string>& axes,
                    const std::vector<ManifestEntry>& manifest,
                    const std::vector<std::size_t>& indices,
                    const std::vector<Json>& point_docs,
                    const std::vector<std::vector<std::string>>& buckets,
                    bool partial) {
  VEXSIM_CHECK(indices.size() == point_docs.size());
  VEXSIM_CHECK(indices.size() == buckets.size());
  Json doc =
      shard_doc_prefix(experiment, "dse", shard, manifest.size(), partial);
  doc.set("header", header);
  Json axes_json = Json::array();
  for (const std::string& a : axes) axes_json.push(a);
  doc.set("axes", std::move(axes_json));
  doc.set("manifest", manifest_json(manifest));
  Json pts = Json::array();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    Json bj = Json::array();
    for (const std::string& b : buckets[k]) bj.push(b);
    Json entry = Json::object();
    entry.set("index", static_cast<std::uint64_t>(indices[k]))
        .set("fingerprint", fingerprint_json(manifest[indices[k]]))
        .set("point", point_docs[k])
        .set("buckets", std::move(bj));
    pts.push(std::move(entry));
  }
  doc.set("points", std::move(pts));
  return doc;
}

Json dse_report(const Json& header, const std::vector<std::string>& axes,
                const std::vector<Json>& point_docs,
                const std::vector<std::vector<std::string>>& buckets) {
  VEXSIM_CHECK(point_docs.size() == buckets.size());
  Json report = header;
  Json pts = Json::array();
  for (const Json& d : point_docs) pts.push(d);
  report.set("points", std::move(pts));

  // Pareto frontier of (cycles-to-halt, total issue slots): sort by (issue
  // asc, cycles asc, label) and keep strictly-improving cycles.
  struct Cand {
    int issue;
    std::uint64_t cycles;
    std::string label;
  };
  std::vector<Cand> cands;
  for (const Json& d : point_docs) {
    if (d.find("failed") != nullptr) continue;
    cands.push_back({static_cast<int>(d.at("total_issue").as_int64()),
                     d.at("cycles").as_uint64(), d.at("label").as_string()});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.issue != b.issue) return a.issue < b.issue;
    if (a.cycles != b.cycles) return a.cycles < b.cycles;
    return a.label < b.label;
  });
  Json pareto = Json::array();
  std::uint64_t best = ~0ull;
  for (const Cand& c : cands) {
    if (c.cycles < best) {
      pareto.push(c.label);
      best = c.cycles;
    }
  }
  report.set("pareto", std::move(pareto));

  // Per-axis sensitivity: bucket -> (count, cycles sum, IPC sum), summed in
  // point order so double accumulation is bit-reproducible; std::map keys
  // keep the emission order independent of sample order.
  Json sensitivity = Json::object();
  for (std::size_t a = 0; a < axes.size(); ++a) {
    std::map<std::string, std::tuple<std::uint64_t, double, double>> agg;
    for (std::size_t i = 0; i < point_docs.size(); ++i) {
      const Json& d = point_docs[i];
      if (d.find("failed") != nullptr) continue;
      VEXSIM_CHECK_MSG(a < buckets[i].size(),
                       "dse point '" << d.at("label").as_string()
                                     << "' carries no bucket for axis "
                                     << axes[a]);
      auto& [n, cycles, ipc] = agg[buckets[i][a]];
      ++n;
      cycles += static_cast<double>(d.at("cycles").as_uint64());
      ipc += d.at("ipc").as_double();
    }
    Json rows = Json::array();
    for (const auto& [bucket, sums] : agg) {
      const auto& [n, cycles, ipc] = sums;
      Json row = Json::object();
      row.set("bucket", bucket)
          .set("points", n)
          .set("mean_cycles", cycles / static_cast<double>(n))
          .set("mean_ipc", ipc / static_cast<double>(n));
      rows.push(std::move(row));
    }
    sensitivity.set(axes[a], std::move(rows));
  }
  report.set("sensitivity", std::move(sensitivity));
  return report;
}

MergeOutcome merge_shards(const std::vector<Json>& docs,
                          const std::vector<std::string>& names) {
  VEXSIM_CHECK_MSG(!docs.empty(), "vexmerge needs at least one shard file");
  VEXSIM_CHECK(docs.size() == names.size());
  const auto doc_name = [&](std::size_t d) { return names[d]; };

  // Shape and cross-document consistency checks against the first document.
  const Json& first = docs[0];
  const std::string experiment = first.at("experiment").as_string();
  const std::string kind = first.at("kind").as_string();
  VEXSIM_CHECK_MSG(kind == "sweep" || kind == "dse",
                   doc_name(0) << ": unknown shard document kind '" << kind
                               << "'");
  const std::uint64_t shard_count = first.at("shard").at("count").as_uint64();
  const Json& manifest = first.at("manifest");
  const std::size_t total = manifest.size();
  VEXSIM_CHECK_MSG(first.at("shard").at("points_total").as_uint64() == total,
                   doc_name(0) << ": manifest length disagrees with "
                                  "shard.points_total");

  for (std::size_t d = 0; d < docs.size(); ++d) {
    const Json& doc = docs[d];
    VEXSIM_CHECK_MSG(doc.find("partial") == nullptr,
                     doc_name(d) << " is a partial mid-run checkpoint; re-run "
                                    "that shard to completion before merging");
    VEXSIM_CHECK_MSG(doc.at("experiment").as_string() == experiment,
                     doc_name(d) << " is from experiment '"
                                 << doc.at("experiment").as_string()
                                 << "', expected '" << experiment << "'");
    VEXSIM_CHECK_MSG(doc.at("kind").as_string() == kind,
                     doc_name(d) << " has kind '" << doc.at("kind").as_string()
                                 << "', expected '" << kind << "'");
    const Json& sh = doc.at("shard");
    VEXSIM_CHECK_MSG(sh.at("count").as_uint64() == shard_count,
                     doc_name(d) << " was sharded " << sh.at("count").as_uint64()
                                 << " ways, expected " << shard_count);
    const std::uint64_t index = sh.at("index").as_uint64();
    VEXSIM_CHECK_MSG(index >= 1 && index <= shard_count,
                     doc_name(d) << ": shard index " << index
                                 << " out of range 1.." << shard_count);
    const Json& m = doc.at("manifest");
    VEXSIM_CHECK_MSG(m.size() == total,
                     doc_name(d) << " enumerates " << m.size()
                                 << " points, expected " << total);
    for (std::size_t i = 0; i < total; ++i) {
      const Json& a = manifest.at(i);
      const Json& b = m.at(i);
      VEXSIM_CHECK_MSG(
          a.at("label").as_string() == b.at("label").as_string() &&
              fingerprint_repr(a.at("fingerprint")) ==
                  fingerprint_repr(b.at("fingerprint")),
          "manifest mismatch at point #"
              << i << " between " << doc_name(0) << " ('"
              << a.at("label").as_string() << "', fingerprint "
              << fingerprint_repr(a.at("fingerprint")) << ") and "
              << doc_name(d) << " ('" << b.at("label").as_string()
              << "', fingerprint " << fingerprint_repr(b.at("fingerprint"))
              << ") — the shard files come from different sweeps");
    }
    if (kind == "dse") {
      VEXSIM_CHECK_MSG(doc.at("header").dump() == first.at("header").dump(),
                       doc_name(d) << ": report header differs from "
                                   << doc_name(0)
                                   << " — the shard files come from different "
                                      "vexplore invocations");
      VEXSIM_CHECK_MSG(doc.at("axes").dump() == first.at("axes").dump(),
                       doc_name(d) << ": axis list differs from "
                                   << doc_name(0));
    }
  }

  // Collect entries, deduping overlaps and rejecting conflicts. The dump()
  // comparison is exact: two records for one fingerprint must be
  // byte-identical or the merge is unsafe.
  struct Got {
    std::string dump;
    const Json* entry;
  };
  std::map<std::size_t, Got> got;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const Json& pts = docs[d].at("points");
    for (std::size_t j = 0; j < pts.size(); ++j) {
      const Json& entry = pts.at(j);
      const std::uint64_t g64 = entry.at("index").as_uint64();
      VEXSIM_CHECK_MSG(g64 < total, doc_name(d) << ": point index " << g64
                                                << " out of range 0.."
                                                << (total - 1));
      const auto g = static_cast<std::size_t>(g64);
      const std::string label = manifest.at(g).at("label").as_string();
      VEXSIM_CHECK_MSG(
          fingerprint_repr(entry.at("fingerprint")) ==
              fingerprint_repr(manifest.at(g).at("fingerprint")),
          "conflicting fingerprint for point #"
              << g << " ('" << label << "') in " << doc_name(d)
              << ": manifest says "
              << fingerprint_repr(manifest.at(g).at("fingerprint"))
              << ", record says "
              << fingerprint_repr(entry.at("fingerprint")));
      VEXSIM_CHECK_MSG(entry.at("point").at("label").as_string() == label,
                       doc_name(d) << ": record at point #" << g
                                   << " is labelled '"
                                   << entry.at("point").at("label").as_string()
                                   << "', manifest says '" << label << "'");
      std::string dump = entry.dump();
      const auto it = got.find(g);
      if (it == got.end()) {
        got.emplace(g, Got{std::move(dump), &entry});
      } else {
        VEXSIM_CHECK_MSG(it->second.dump == dump,
                         "conflicting records for point #"
                             << g << " ('" << label
                             << "'): two shard files carry byte-differing "
                                "results for the same fingerprint "
                             << fingerprint_repr(entry.at("fingerprint")));
      }
    }
  }

  MergeOutcome out;
  out.present = got.size();
  out.total = total;
  if (got.size() == total) {
    out.complete = true;
    if (kind == "sweep") {
      Json merged = Json::object();
      merged.set("experiment", experiment);
      Json pts = Json::array();
      for (const auto& kv : got) pts.push(kv.second.entry->at("point"));
      merged.set("points", std::move(pts));
      out.merged = std::move(merged);
    } else {
      std::vector<std::string> axes;
      const Json& axes_json = first.at("axes");
      for (std::size_t a = 0; a < axes_json.size(); ++a)
        axes.push_back(axes_json.at(a).as_string());
      std::vector<Json> point_docs;
      std::vector<std::vector<std::string>> buckets;
      for (const auto& kv : got) {
        point_docs.push_back(kv.second.entry->at("point"));
        const Json& bj = kv.second.entry->at("buckets");
        std::vector<std::string> b;
        for (std::size_t k = 0; k < bj.size(); ++k)
          b.push_back(bj.at(k).as_string());
        buckets.push_back(std::move(b));
      }
      out.merged = dse_report(first.at("header"), axes, point_docs, buckets);
    }
    return out;
  }

  // Incomplete: a resume manifest naming each missing point and the shard
  // (under the original count) that owns it.
  Json resume = Json::object();
  resume.set("experiment", experiment)
      .set("kind", kind)
      .set("resume", true)
      .set("shard_count", shard_count)
      .set("points_total", static_cast<std::uint64_t>(total))
      .set("present", static_cast<std::uint64_t>(got.size()));
  Json missing = Json::array();
  for (std::size_t g = 0; g < total; ++g) {
    if (got.find(g) != got.end()) continue;
    Json row = Json::object();
    row.set("index", static_cast<std::uint64_t>(g))
        .set("shard",
             static_cast<std::uint64_t>(g % shard_count) + 1)
        .set("label", manifest.at(g).at("label").as_string())
        .set("fingerprint", manifest.at(g).at("fingerprint"));
    missing.push(std::move(row));
  }
  resume.set("missing", std::move(missing));
  out.resume = std::move(resume);
  return out;
}

}  // namespace vexsim::harness
