#include "arch/thread_context.hpp"

#include "util/check.hpp"

namespace vexsim {

ThreadContext::ThreadContext(int asid, std::shared_ptr<const Program> program)
    : asid_(asid), program_(std::move(program)) {
  VEXSIM_CHECK(program_ != nullptr);
  VEXSIM_CHECK_MSG(program_->finalized(),
                   "program must be finalize()d before execution");
  VEXSIM_CHECK(!program_->code.empty());
  code_ = program_->code.data();
  code_size_ = static_cast<std::uint32_t>(program_->code.size());
  decoded_insns_ = program_->decoded->data();
  instr_addr_ = program_->instr_addr.data();
  respawn();
  respawns = 0;
}

void ThreadContext::respawn() {
  pc = 0;
  state = RunState::kReady;
  seq = 0;
  mem_block_until = 0;
  fetch_ready_at = 0;
  next_issue_at = 0;
  fetch_done = false;
  redirect_target = -1;
  halt_at_completion = false;
  regs.clear();
  mem.clear();
  issue = IssueProgress{};
  pending_writes.clear();
  rf_buffer.clear();
  store_buffer.clear();
  channels.fill(ChannelState{});
  channels_dirty = false;
  fault = FaultInfo{};
  for (const DataSegment& seg : program_->data)
    mem.poke_bytes(seg.addr, seg.bytes.data(), seg.bytes.size());
  ++respawns;
}

std::uint64_t ThreadContext::arch_fingerprint(int clusters) const {
  const std::uint64_t r = regs.fingerprint(clusters);
  const std::uint64_t m = mem.fingerprint();
  // Simple 64-bit mix of the two digests.
  std::uint64_t h = r ^ (m + 0x9E3779B97F4A7C15ull + (r << 6) + (r >> 2));
  return h;
}

}  // namespace vexsim
