// Per-thread execution state: program position, registers, private memory,
// issue progress of the current VLIW instruction, NUAL pending writes, and
// the split-issue delay buffers of Section V-B.
//
// This is a data-oriented aggregate: the merge engine (src/core) and the
// pipeline (src/sim) manipulate it directly. All cluster indices stored here
// are *logical* (program view); the static cluster renaming of Section IV is
// applied only when mapping to physical machine resources.
//
// Field layout is deliberate: the members the cycle loop touches every cycle
// (pc, run state, the three issue gates, issue progress) sit together at the
// front of the object so a refill/merge probe of an idle thread stays within
// the first cache lines; the respawn-time and statistics members follow.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/pending_writes.hpp"
#include "arch/regfile.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"

namespace vexsim {

enum class RunState : std::uint8_t { kReady, kHalted, kFaulted };

// Delay-buffer entries (Figure 9): results of split-issued operations are
// held here and committed to the register file / memory when the last part
// of the instruction issues.
struct BufferedRegWrite {
  bool to_breg = false;
  std::uint8_t cluster = 0;
  std::uint8_t idx = 0;
  std::uint32_t value = 0;
};

struct BufferedStore {
  std::uint8_t cluster = 0;  // logical cluster of the store unit
  std::uint32_t addr = 0;
  std::uint8_t size = 0;
  std::uint32_t value = 0;
};

// Inter-cluster copy network state for one channel (Section V-E): either the
// send arrived first (value buffered) or the recv did (destination register
// remembered; the send then writes it directly).
struct ChannelState {
  bool has_value = false;
  std::uint32_t value = 0;
  bool recv_waiting = false;
  std::uint8_t recv_cluster = 0;
  std::uint8_t recv_dst = 0;
};

// Issue progress of the thread's current VLIW instruction. pending_ops[c] is
// a bitmask over bundle positions still to issue on logical cluster c. `dec`
// caches the instruction's decode-cache entry for the merge engine and the
// operand fetch (set at refill, cleared with the rest of the progress).
struct IssueProgress {
  bool active = false;
  bool was_split = false;  // issued over more than one cycle
  int pending_count = 0;
  std::array<std::uint8_t, kMaxClusters> pending_ops{};
  // Clusters with a non-zero pending mask (kept in sync by the refill and
  // the merge engine's take): the select loops walk set bits only.
  std::uint32_t pending_clusters = 0;
  const DecodedInstruction* dec = nullptr;
  std::uint64_t seq = 0;
  std::uint64_t started_at = 0;

  // Derived variant for tests/tools that fill pending_ops by hand.
  [[nodiscard]] std::uint32_t pending_cluster_mask() const {
    std::uint32_t m = 0;
    for (int c = 0; c < kMaxClusters; ++c)
      if (pending_ops[static_cast<std::size_t>(c)] != 0) m |= 1u << c;
    return m;
  }
};

struct FaultInfo {
  bool pending = false;
  std::uint32_t pc = 0;        // instruction index that faulted
  std::uint32_t addr = 0;      // faulting data address
};

struct ThreadCounters {
  std::uint64_t instructions = 0;  // VLIW instructions retired this run
  std::uint64_t ops = 0;           // operations retired this run
  std::uint64_t taken_branches = 0;
  std::uint64_t split_instructions = 0;
  std::uint64_t dmiss_block_cycles = 0;
  std::uint64_t imiss_block_cycles = 0;
};

class ThreadContext {
 public:
  ThreadContext(int asid, std::shared_ptr<const Program> program);

  // Restart the program from scratch (respawn): reloads data segments,
  // clears registers/buffers, keeps `total_instructions` accumulating.
  void respawn();

  [[nodiscard]] const Program& program() const { return *program_; }
  [[nodiscard]] std::shared_ptr<const Program> program_ptr() const {
    return program_;
  }
  [[nodiscard]] int asid() const { return asid_; }

  [[nodiscard]] const VliwInstruction& current_instruction() const {
    return code_[pc];
  }
  // The decode-cache entry of the instruction at `pc`.
  [[nodiscard]] const DecodedInstruction& current_decoded() const {
    return decoded_insns_[pc];
  }
  // Byte address of the instruction at `at` (ICache model).
  [[nodiscard]] std::uint32_t instr_addr(std::uint32_t at) const {
    return instr_addr_[at];
  }
  [[nodiscard]] bool at_end() const { return pc >= code_size_; }
  // Instruction count, cached so the retire path doesn't chase the
  // shared_ptr and vector header of the (cold) Program object.
  [[nodiscard]] std::uint32_t code_size() const { return code_size_; }

  // Architectural fingerprint (registers + memory): the quantity that must
  // be identical across all multithreading techniques.
  [[nodiscard]] std::uint64_t arch_fingerprint(int clusters) const;

  // --- hot state, touched every cycle by refill/merge/execute ---
  std::uint32_t pc = 0;
  RunState state = RunState::kReady;
  bool fetch_done = false;              // current pc fetched from ICache
  bool halt_at_completion = false;
  bool channels_dirty = false;          // any ChannelState written since reset
  std::int32_t redirect_target = -1;    // taken branch target, applied at completion
  // Pending-miss handles: the absolute completion cycle the memory backend
  // returned for this thread's outstanding D-miss / I-miss (the thread's
  // view of an in-flight fill; the backend may track more, e.g. MSHRs).
  std::uint64_t mem_block_until = 0;    // D-miss: next instruction gated
  std::uint64_t fetch_ready_at = 0;     // I-miss: fetch completes here
  std::uint64_t next_issue_at = 0;      // branch-penalty gate
  std::uint64_t seq = 0;                // instructions started
  IssueProgress issue;
  PendingWriteQueue pending_writes;     // probed by every operand read

  // --- architectural + buffered state ---
  RegFile regs;
  MainMemory mem;
  std::vector<BufferedRegWrite> rf_buffer;
  std::vector<BufferedStore> store_buffer;
  std::array<ChannelState, kNumChannels> channels{};
  FaultInfo fault;

  ThreadCounters counters;
  std::uint64_t total_instructions = 0;  // across respawns
  std::uint64_t respawns = 0;

 private:
  int asid_;
  std::shared_ptr<const Program> program_;
  // Raw views into program_-owned storage: the per-cycle accessors above
  // index these directly instead of chasing shared_ptr/vector headers.
  const VliwInstruction* code_ = nullptr;
  const DecodedInstruction* decoded_insns_ = nullptr;
  const std::uint32_t* instr_addr_ = nullptr;
  std::uint32_t code_size_ = 0;
};

}  // namespace vexsim
