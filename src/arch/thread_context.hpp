// Per-thread execution state: program position, registers, private memory,
// issue progress of the current VLIW instruction, NUAL pending writes, and
// the split-issue delay buffers of Section V-B.
//
// This is a data-oriented aggregate: the merge engine (src/core) and the
// pipeline (src/sim) manipulate it directly. All cluster indices stored here
// are *logical* (program view); the static cluster renaming of Section IV is
// applied only when mapping to physical machine resources.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/regfile.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"

namespace vexsim {

enum class RunState : std::uint8_t { kReady, kHalted, kFaulted };

// A register write in flight: issued, becomes visible `visible_at` (NUAL:
// value lands `latency` cycles after issue; the compiler guarantees no
// consumer reads earlier).
struct PendingWrite {
  std::uint64_t visible_at = 0;
  std::uint64_t seq = 0;  // sequence number of the producing instruction
  bool to_breg = false;
  std::uint8_t cluster = 0;
  std::uint8_t idx = 0;
  std::uint32_t value = 0;
};

// Delay-buffer entries (Figure 9): results of split-issued operations are
// held here and committed to the register file / memory when the last part
// of the instruction issues.
struct BufferedRegWrite {
  bool to_breg = false;
  std::uint8_t cluster = 0;
  std::uint8_t idx = 0;
  std::uint32_t value = 0;
};

struct BufferedStore {
  std::uint8_t cluster = 0;  // logical cluster of the store unit
  std::uint32_t addr = 0;
  std::uint8_t size = 0;
  std::uint32_t value = 0;
};

// Inter-cluster copy network state for one channel (Section V-E): either the
// send arrived first (value buffered) or the recv did (destination register
// remembered; the send then writes it directly).
struct ChannelState {
  bool has_value = false;
  std::uint32_t value = 0;
  bool recv_waiting = false;
  std::uint8_t recv_cluster = 0;
  std::uint8_t recv_dst = 0;
};

// Issue progress of the thread's current VLIW instruction. pending_ops[c] is
// a bitmask over bundle positions still to issue on logical cluster c.
struct IssueProgress {
  bool active = false;
  std::uint64_t seq = 0;
  std::uint64_t started_at = 0;
  std::array<std::uint8_t, kMaxClusters> pending_ops{};
  int pending_count = 0;
  bool was_split = false;  // issued over more than one cycle

  [[nodiscard]] std::uint32_t pending_cluster_mask() const {
    std::uint32_t m = 0;
    for (int c = 0; c < kMaxClusters; ++c)
      if (pending_ops[static_cast<std::size_t>(c)] != 0) m |= 1u << c;
    return m;
  }
};

struct FaultInfo {
  bool pending = false;
  std::uint32_t pc = 0;        // instruction index that faulted
  std::uint32_t addr = 0;      // faulting data address
};

struct ThreadCounters {
  std::uint64_t instructions = 0;  // VLIW instructions retired this run
  std::uint64_t ops = 0;           // operations retired this run
  std::uint64_t taken_branches = 0;
  std::uint64_t split_instructions = 0;
  std::uint64_t dmiss_block_cycles = 0;
  std::uint64_t imiss_block_cycles = 0;
};

class ThreadContext {
 public:
  ThreadContext(int asid, std::shared_ptr<const Program> program);

  // Restart the program from scratch (respawn): reloads data segments,
  // clears registers/buffers, keeps `total_instructions` accumulating.
  void respawn();

  [[nodiscard]] const Program& program() const { return *program_; }
  [[nodiscard]] std::shared_ptr<const Program> program_ptr() const {
    return program_;
  }
  [[nodiscard]] int asid() const { return asid_; }

  [[nodiscard]] const VliwInstruction& current_instruction() const {
    return program_->code[pc];
  }
  [[nodiscard]] bool at_end() const { return pc >= program_->code.size(); }

  // Architectural fingerprint (registers + memory): the quantity that must
  // be identical across all multithreading techniques.
  [[nodiscard]] std::uint64_t arch_fingerprint(int clusters) const;

  // --- mutable execution state, driven by the simulator ---
  std::uint32_t pc = 0;
  RunState state = RunState::kReady;
  std::uint64_t seq = 0;                // instructions started
  std::uint64_t mem_block_until = 0;    // D-miss: next instruction gated
  std::uint64_t fetch_ready_at = 0;     // I-miss gate
  std::uint64_t next_issue_at = 0;      // branch-penalty gate
  bool fetch_done = false;              // current pc fetched from ICache
  std::int32_t redirect_target = -1;    // taken branch target, applied at completion
  bool halt_at_completion = false;

  RegFile regs;
  MainMemory mem;
  IssueProgress issue;
  std::vector<PendingWrite> pending_writes;
  std::vector<BufferedRegWrite> rf_buffer;
  std::vector<BufferedStore> store_buffer;
  std::array<ChannelState, kNumChannels> channels{};
  FaultInfo fault;

  ThreadCounters counters;
  std::uint64_t total_instructions = 0;  // across respawns
  std::uint64_t respawns = 0;

 private:
  int asid_;
  std::shared_ptr<const Program> program_;
};

}  // namespace vexsim
