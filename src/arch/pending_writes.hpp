// In-flight NUAL register writes plus a per-cluster write-window index.
//
// The less-than-or-equal machine contract makes reading a register inside a
// producer's latency window a compiler bug, so the simulator asserts on
// every operand read. Scanning the pending-write list per read is the cost
// this index removes: per cluster, a 64-bit GPR bitmap and an 8-bit breg
// bitmap record which registers have *any* write in flight. The overwhelming
// majority of reads test one bit and move on; only a set bit (a genuine
// in-window register, or a stale bit awaiting compaction) pays for the scan.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/regfile.hpp"
#include "isa/operation.hpp"

namespace vexsim {

// A register write in flight: issued, becomes visible `visible_at` (NUAL:
// value lands `latency` cycles after issue; the compiler guarantees no
// consumer reads earlier).
struct PendingWrite {
  std::uint64_t visible_at = 0;
  std::uint64_t seq = 0;  // sequence number of the producing instruction
  bool to_breg = false;
  std::uint8_t cluster = 0;
  std::uint8_t idx = 0;
  std::uint32_t value = 0;
};

class PendingWriteQueue {
 public:
  using const_iterator = std::vector<PendingWrite>::const_iterator;

  void push(const PendingWrite& w) {
    writes_.push_back(w);
    if (w.visible_at < earliest_visible_) earliest_visible_ = w.visible_at;
    if (w.visible_at > latest_visible_) latest_visible_ = w.visible_at;
    mark(w);
  }

  // No write becomes visible before this cycle: commit passes earlier than
  // it are provably no-ops and skip the compaction walk entirely.
  [[nodiscard]] std::uint64_t earliest_visible_at() const {
    return earliest_visible_;
  }
  // Every write is visible by this cycle: a commit pass at or after it
  // drains the queue completely (short latencies make this the common case).
  [[nodiscard]] std::uint64_t latest_visible_at() const {
    return latest_visible_;
  }

  // Full-drain commit: calls `drain` on every write in order, then clears.
  // Only valid when the caller knows nothing stays (latest_visible_at()).
  template <typename Drain>
  void drain_all(Drain&& drain) {
    for (const PendingWrite& w : writes_) drain(w);
    clear();
  }

  // Architectural commit of every in-flight write straight to the register
  // file, then clear — the precise-state operation shared by detach, halt,
  // and fault rollback (which skips the faulting instruction's own writes
  // via `skip_seq`; kNoSeq skips nothing, seq numbers start at 1).
  static constexpr std::uint64_t kNoSeq = 0;
  void commit_all_to(RegFile& regs, std::uint64_t skip_seq = kNoSeq) {
    for (const PendingWrite& w : writes_) {
      if (w.seq == skip_seq) continue;
      if (w.to_breg)
        regs.set_breg(w.cluster, w.idx, w.value != 0);
      else
        regs.set_gpr(w.cluster, w.idx, w.value);
    }
    clear();
  }

  // Keeps exactly the writes for which `keep` returns true (callers commit or
  // re-buffer the dropped ones inside the predicate) and rebuilds the index.
  template <typename Keep>
  void compact(Keep&& keep) {
    gpr_window_.fill(0);
    breg_window_.fill(0);
    earliest_visible_ = kNever;
    latest_visible_ = 0;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < writes_.size(); ++i) {
      if (!keep(static_cast<const PendingWrite&>(writes_[i]))) continue;
      writes_[kept] = writes_[i];
      mark(writes_[kept]);
      if (writes_[kept].visible_at < earliest_visible_)
        earliest_visible_ = writes_[kept].visible_at;
      if (writes_[kept].visible_at > latest_visible_)
        latest_visible_ = writes_[kept].visible_at;
      ++kept;
    }
    writes_.resize(kept);
  }

  void clear() {
    writes_.clear();
    gpr_window_.fill(0);
    breg_window_.fill(0);
    earliest_visible_ = kNever;
    latest_visible_ = 0;
  }

  // False guarantees no write to (cluster, idx) is in flight; true means a
  // write *may* be — callers fall back to scanning the queue.
  [[nodiscard]] bool maybe_pending(bool to_breg, int cluster, int idx) const {
    const auto c = static_cast<std::size_t>(cluster);
    return to_breg ? ((breg_window_[c] >> idx) & 1u) != 0
                   : ((gpr_window_[c] >> idx) & 1u) != 0;
  }

  [[nodiscard]] bool empty() const { return writes_.empty(); }
  [[nodiscard]] std::size_t size() const { return writes_.size(); }
  [[nodiscard]] const_iterator begin() const { return writes_.begin(); }
  [[nodiscard]] const_iterator end() const { return writes_.end(); }

 private:
  void mark(const PendingWrite& w) {
    const auto c = static_cast<std::size_t>(w.cluster);
    if (w.to_breg)
      breg_window_[c] = static_cast<std::uint8_t>(breg_window_[c] |
                                                  (1u << w.idx));
    else
      gpr_window_[c] |= 1ull << w.idx;
  }

  static constexpr std::uint64_t kNever = ~0ull;

  std::vector<PendingWrite> writes_;
  std::uint64_t earliest_visible_ = kNever;
  std::uint64_t latest_visible_ = 0;
  // Registers with any write in flight, per cluster (GPR count ≤ 64,
  // breg count ≤ 8 — both static ISA bounds).
  std::array<std::uint64_t, kMaxClusters> gpr_window_{};
  std::array<std::uint8_t, kMaxClusters> breg_window_{};
};

static_assert(kNumGprs <= 64, "GPR write window is a 64-bit bitmap");
static_assert(kNumBregs <= 8, "breg write window is an 8-bit bitmap");

}  // namespace vexsim
