#include "arch/regfile.hpp"

namespace vexsim {

std::uint64_t RegFile::fingerprint(int clusters) const {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (int c = 0; c < clusters; ++c) {
    for (int r = 1; r < kNumGprs; ++r) mix(gpr(c, r));
    for (int b = 0; b < kNumBregs; ++b) mix(breg(c, b) ? 1 : 0);
  }
  return h;
}

}  // namespace vexsim
