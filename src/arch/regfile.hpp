// Per-thread clustered register state.
//
// Each cluster has its own general-purpose and branch register files (the
// defining property of a clustered VLIW: functional units only reach their
// local file; data moves across clusters via explicit send/recv). GPR 0 of
// every cluster is hardwired to zero, as in VEX.
//
// The simulator models the *partitioned* multithreaded organization of
// Section V-C: every hardware thread owns a private copy of this state, so
// simultaneous last-part commits of different threads never contend for
// write ports.
#pragma once

#include <array>
#include <cstdint>

#include "isa/operation.hpp"

namespace vexsim {

class RegFile {
 public:
  [[nodiscard]] std::uint32_t gpr(int cluster, int idx) const {
    return idx == 0 ? 0u : gpr_[index(cluster, idx, kNumGprs)];
  }
  void set_gpr(int cluster, int idx, std::uint32_t value) {
    if (idx != 0) gpr_[index(cluster, idx, kNumGprs)] = value;
  }

  [[nodiscard]] bool breg(int cluster, int idx) const {
    return breg_[index(cluster, idx, kNumBregs)];
  }
  void set_breg(int cluster, int idx, bool value) {
    breg_[index(cluster, idx, kNumBregs)] = value;
  }

  void clear() {
    gpr_.fill(0);
    breg_.fill(false);
  }

  // Deterministic digest over the first `clusters` clusters; equivalence
  // tests compare this across multithreading techniques.
  [[nodiscard]] std::uint64_t fingerprint(int clusters) const;

  friend bool operator==(const RegFile&, const RegFile&) = default;

 private:
  static std::size_t index(int cluster, int idx, int per_cluster) {
    return static_cast<std::size_t>(cluster) *
               static_cast<std::size_t>(per_cluster) +
           static_cast<std::size_t>(idx);
  }
  std::array<std::uint32_t, kMaxClusters * kNumGprs> gpr_{};
  std::array<bool, kMaxClusters * kNumBregs> breg_{};
};

}  // namespace vexsim
