// Precomputed decode cache: the per-instruction side-structure built once at
// program load so the per-cycle hot paths (merge engine, operand fetch)
// index tables instead of re-deriving facts from the instruction stream.
//
// What is cached, and why it is sufficient:
//
//  * Per cluster, the ResourceUse of the *whole* bundle plus a per-operation
//    singleton use. These are the only masks the merge hardware ever needs:
//    whole-instruction and per-bundle selection are all-or-nothing at bundle
//    granularity (the pending mask of a cluster is either full or empty), and
//    operation-level selection probes one operation at a time.
//  * Per operation, the dataflow facts execute() would otherwise re-derive
//    from opcode classification every cycle: operand-read flags, the operand-b
//    source (register vs immediate), the operation class, and the memory
//    access size.
//  * Per instruction, the op count and has_comm/has_branch summaries that
//    gate split-issue policy (CommPolicy::kNoSplit) and completion.
//
// The cache is immutable and machine-independent (no latencies, no cluster
// limits), so one DecodedProgram serves every simulator configuration the
// program runs on. Program::finalize() builds it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/resources.hpp"

namespace vexsim {

// One software-pipelined loop's instruction spans, recorded by the
// compiler's modulo-scheduling pass: [prologue_start, kernel_start) fills
// the pipeline, [kernel_start, kernel_start + ii) is the steady-state
// kernel (`stages` iterations in flight, back-branch in its last
// instruction), and [kernel_start + ii, epilogue_end) drains it. The
// verifier replays the kernel cyclically against this metadata; the decode
// cache exposes the region of each instruction.
struct SoftwarePipelinedLoop {
  std::uint32_t prologue_start = 0;
  std::uint32_t kernel_start = 0;
  std::uint32_t epilogue_end = 0;  // one past the last epilogue instruction
  std::uint16_t ii = 0;            // kernel length in instructions
  std::uint16_t stages = 0;        // overlapped iterations in steady state
};

enum class SwpRegion : std::uint8_t { kNone, kPrologue, kKernel, kEpilogue };

// Dataflow facts of one operation, resolved once at decode.
struct DecodedOp {
  // Flag bits mirror the opcode.hpp classification helpers.
  static constexpr std::uint8_t kReadsSrc1 = 1u << 0;  // reads gpr[src1]
  static constexpr std::uint8_t kSrc2Reg = 1u << 1;    // operand b = gpr[src2]
  static constexpr std::uint8_t kSrc2Imm = 1u << 2;    // operand b = imm
  static constexpr std::uint8_t kReadsBsrc = 1u << 3;  // reads breg[bsrc]
  static constexpr std::uint8_t kLoad = 1u << 4;       // memory read
  static constexpr std::uint8_t kDstBreg = 1u << 5;    // writes a breg

  OpClass cls = OpClass::kNop;
  std::uint8_t flags = 0;
  std::uint8_t mem_size = 0;  // access bytes for kMem, else 0
  ResourceUse use;            // singleton use (slots = 1)

  [[nodiscard]] bool has(std::uint8_t flag) const {
    return (flags & flag) != 0;
  }
};

// One cluster's slice of a decoded instruction.
struct DecodedBundle {
  ResourceUse whole_use;       // use of the complete bundle
  std::uint8_t full_mask = 0;  // (1 << bundle.size()) - 1
  std::array<DecodedOp, kMaxIssuePerCluster> ops{};  // [i] valid below size
};

struct DecodedInstruction {
  std::array<DecodedBundle, kMaxClusters> bundles;
  // bundles[c].full_mask, gathered contiguously: issue-progress refill is
  // one 8-byte copy instead of a per-cluster walk.
  std::array<std::uint8_t, kMaxClusters> full_masks{};
  std::uint32_t used_cluster_mask = 0;  // clusters with a non-empty bundle
  std::uint8_t op_count = 0;
  bool has_comm = false;    // subject of the NS comm policy
  bool has_branch = false;

  [[nodiscard]] const DecodedBundle& bundle(int cluster) const {
    return bundles[static_cast<std::size_t>(cluster)];
  }
};

class DecodedProgram {
 public:
  explicit DecodedProgram(const std::vector<VliwInstruction>& code,
                          const std::vector<SoftwarePipelinedLoop>& kernels =
                              {});

  [[nodiscard]] const DecodedInstruction& insn(std::size_t pc) const {
    return insns_[pc];
  }
  [[nodiscard]] const DecodedInstruction* data() const {
    return insns_.data();
  }
  [[nodiscard]] std::size_t size() const { return insns_.size(); }

  // Software-pipeline region of an instruction (prologue/epilogue-aware
  // decode: tools and the verifier ask, the cycle hot paths never do).
  [[nodiscard]] SwpRegion region_of(std::size_t pc) const {
    return regions_.empty() ? SwpRegion::kNone : regions_[pc];
  }

  // Decode of a single operation; exposed so tests can cross-check the
  // cached flags against the opcode.hpp classification functions.
  [[nodiscard]] static DecodedOp decode_op(const Operation& op);

 private:
  std::vector<DecodedInstruction> insns_;
  // Empty when the program has no pipelined loops (the common case).
  std::vector<SwpRegion> regions_;
};

}  // namespace vexsim
