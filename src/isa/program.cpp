#include "isa/program.hpp"

#include <sstream>

#include "isa/encoding.hpp"
#include "util/check.hpp"

namespace vexsim {

void Program::finalize() {
  instr_addr.clear();
  instr_addr.reserve(code.size());
  std::uint32_t addr = code_base;
  for (const VliwInstruction& insn : code) {
    instr_addr.push_back(addr);
    addr += encoded_size_bytes(insn);
  }
  code_bytes = addr - code_base;
  // Software-pipeline spans must describe a well-formed
  // prologue/kernel/epilogue region before they reach the decode cache or
  // the verifier.
  for (const SoftwarePipelinedLoop& k : kernels) {
    VEXSIM_CHECK_MSG(k.ii >= 1 && k.stages >= 2,
                     name << ": degenerate software-pipeline span (ii="
                          << k.ii << ", stages=" << k.stages << ")");
    VEXSIM_CHECK_MSG(
        k.kernel_start - k.prologue_start ==
            static_cast<std::uint32_t>(k.ii) * (k.stages - 1u),
        name << ": prologue span does not match (stages-1) * ii");
    VEXSIM_CHECK_MSG(
        k.epilogue_end >= k.kernel_start + k.ii &&
            k.epilogue_end <= code.size(),
        name << ": software-pipeline span out of range");
  }
  decoded = std::make_shared<const DecodedProgram>(code, kernels);
}

void Program::add_data(std::uint32_t addr, std::vector<std::uint8_t> bytes) {
  data.push_back(DataSegment{addr, std::move(bytes)});
}

void Program::add_data_words(std::uint32_t addr,
                             const std::vector<std::uint32_t>& words) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * 4);
  for (std::uint32_t w : words) {
    bytes.push_back(static_cast<std::uint8_t>(w));
    bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    bytes.push_back(static_cast<std::uint8_t>(w >> 16));
    bytes.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  add_data(addr, std::move(bytes));
}

void Program::validate(int num_clusters) const {
  for (std::size_t i = 0; i < code.size(); ++i) {
    code[i].for_each_op([&](const Operation& op) {
      VEXSIM_CHECK_MSG(op.cluster < num_clusters,
                       name << "[" << i << "]: cluster " << int(op.cluster)
                            << " out of range");
      if (op.writes_gpr())
        VEXSIM_CHECK_MSG(op.dst < kNumGprs, name << "[" << i << "]: bad dst");
      if (op.writes_breg())
        VEXSIM_CHECK_MSG(op.dst < kNumBregs, name << "[" << i << "]: bad breg");
      if (reads_bsrc(op.opc))
        VEXSIM_CHECK_MSG(op.bsrc < kNumBregs, name << "[" << i << "]: bad bsrc");
      if (op.opc == Opcode::kBr || op.opc == Opcode::kBrf ||
          op.opc == Opcode::kGoto) {
        VEXSIM_CHECK_MSG(op.imm >= 0 &&
                             static_cast<std::size_t>(op.imm) < code.size(),
                         name << "[" << i << "]: branch target " << op.imm
                              << " out of range");
      }
      if (op.cls() == OpClass::kComm)
        VEXSIM_CHECK_MSG(op.chan < kNumChannels,
                         name << "[" << i << "]: bad channel");
    });
  }
}

std::string to_string(const Program& prog) {
  std::ostringstream os;
  os << ";; program: " << prog.name << " (" << prog.code.size()
     << " instructions)\n";
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    const auto label = prog.labels.find(static_cast<std::uint32_t>(i));
    if (label != prog.labels.end()) os << label->second << ":\n";
    os << "  " << to_string(prog.code[i]) << "\n";
  }
  return os.str();
}

}  // namespace vexsim
