#include "isa/config.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace vexsim {

std::string to_string(MergeLevel m) {
  return m == MergeLevel::kOperation ? "operation" : "cluster";
}
std::string to_string(SplitLevel s) {
  switch (s) {
    case SplitLevel::kNone: return "none";
    case SplitLevel::kCluster: return "cluster";
    case SplitLevel::kOperation: return "operation";
  }
  return "?";
}
std::string to_string(CommPolicy c) {
  return c == CommPolicy::kNoSplit ? "NS" : "AS";
}

std::string Technique::name() const {
  if (split == SplitLevel::kNone)
    return merge == MergeLevel::kCluster ? "CSMT" : "SMT";
  std::string base;
  if (merge == MergeLevel::kCluster) {
    base = "CCSI";
  } else {
    base = split == SplitLevel::kCluster ? "COSI" : "OOSI";
  }
  return base + " " + to_string(comm);
}

const Technique Technique::kAll[8] = {
    Technique::csmt(),
    Technique::ccsi(CommPolicy::kNoSplit),
    Technique::ccsi(CommPolicy::kAlwaysSplit),
    Technique::smt(),
    Technique::cosi(CommPolicy::kNoSplit),
    Technique::cosi(CommPolicy::kAlwaysSplit),
    Technique::oosi(CommPolicy::kNoSplit),
    Technique::oosi(CommPolicy::kAlwaysSplit),
};

int LatencyConfig::for_class(OpClass cls) const {
  switch (cls) {
    case OpClass::kAlu: return alu;
    case OpClass::kMul: return mul;
    case OpClass::kMem: return mem;
    case OpClass::kComm: return comm;
    case OpClass::kBranch:
    case OpClass::kNop: return 1;
  }
  return 1;
}

ClusterResourceConfig ClusterResourceConfig::for_issue_width(int w) {
  ClusterResourceConfig c;
  c.issue_slots = w;
  c.alus = w;
  c.muls = std::max(1, w / 2);
  c.mem_units = 1;
  c.branch_units = 1;
  return c;
}

std::string MachineConfig::geometry_name() const {
  if (!asymmetric()) {
    return std::to_string(clusters) + "x" +
           std::to_string(cluster.issue_slots);
  }
  std::string name;
  for (int c = 0; c < clusters; ++c) {
    if (c > 0) name += "+";
    name += std::to_string(cluster_at(c).issue_slots);
  }
  return name;
}

void MachineConfig::validate() const {
  VEXSIM_CHECK_MSG(clusters >= 1 && clusters <= kMaxClusters,
                   "clusters out of range");
  VEXSIM_CHECK_MSG(hw_threads >= 1, "need at least one hardware thread");
  VEXSIM_CHECK_MSG(
      cluster_overrides.empty() ||
          cluster_overrides.size() == static_cast<std::size_t>(clusters),
      "cluster_overrides must be empty or hold one entry per cluster");
  for (int c = 0; c < clusters; ++c) {
    const ClusterResourceConfig& res = cluster_at(c);
    VEXSIM_CHECK_MSG(res.issue_slots >= 1 &&
                         res.issue_slots <= kMaxIssuePerCluster,
                     "issue slots out of range on cluster " << c);
    VEXSIM_CHECK_MSG(res.mem_units >= 0 && res.alus >= 0,
                     "bad FUs on cluster " << c);
  }
  // A thread's code is scheduled against per-cluster limits; rotating it
  // onto a differently-provisioned physical cluster would break resource
  // legality, so asymmetric machines run multithreaded without renaming.
  if (asymmetric() && hw_threads > 1)
    VEXSIM_CHECK_MSG(!cluster_renaming,
                     "cluster renaming requires a symmetric geometry");
  // Operation-level split-issue only makes sense with operation-level
  // merging (Figure 4 of the paper).
  if (technique.split == SplitLevel::kOperation)
    VEXSIM_CHECK_MSG(technique.merge == MergeLevel::kOperation,
                     "operation-level split requires operation-level merging");
  // A shared register file cannot supply the write ports split-issue needs
  // (Section V-C): simultaneous last-parts of several threads.
  if (technique.split != SplitLevel::kNone && hw_threads > 1)
    VEXSIM_CHECK_MSG(rf_org == RegFileOrg::kPartitioned,
                     "split-issue requires the partitioned register file");
  VEXSIM_CHECK(lat.alu >= 1 && lat.mul >= 1 && lat.mem >= 1);
}

MachineConfig MachineConfig::paper(int threads, Technique t) {
  MachineConfig cfg;
  cfg.clusters = 4;
  cfg.cluster = ClusterResourceConfig{};  // 4-issue: 4 ALU, 2 MUL, 1 LS
  cfg.hw_threads = threads;
  cfg.technique = t;
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::paper_single() {
  MachineConfig cfg = paper(1, Technique::smt());
  return cfg;
}

}  // namespace vexsim
