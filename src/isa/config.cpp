#include "isa/config.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace vexsim {

std::string to_string(MergeLevel m) {
  return m == MergeLevel::kOperation ? "operation" : "cluster";
}
std::string to_string(SplitLevel s) {
  switch (s) {
    case SplitLevel::kNone: return "none";
    case SplitLevel::kCluster: return "cluster";
    case SplitLevel::kOperation: return "operation";
  }
  return "?";
}
std::string to_string(CommPolicy c) {
  return c == CommPolicy::kNoSplit ? "NS" : "AS";
}
std::string to_string(RegFileOrg r) {
  return r == RegFileOrg::kPartitioned ? "partitioned" : "shared";
}

std::string to_string(MemBackendKind k) {
  return k == MemBackendKind::kFixed ? "fixed" : "hierarchy";
}

MemBackendKind mem_backend_from(const std::string& name) {
  if (name == "fixed") return MemBackendKind::kFixed;
  if (name == "hierarchy") return MemBackendKind::kHierarchy;
  throw CheckError("unknown memory backend '" + name +
                   "' (valid: fixed, hierarchy)");
}

RegFileOrg reg_file_org_from(const std::string& name) {
  if (name == "partitioned") return RegFileOrg::kPartitioned;
  if (name == "shared") return RegFileOrg::kShared;
  throw CheckError("unknown register-file organization '" + name +
                   "' (valid: partitioned, shared)");
}

std::string Technique::name() const {
  if (split == SplitLevel::kNone)
    return merge == MergeLevel::kCluster ? "CSMT" : "SMT";
  std::string base;
  if (merge == MergeLevel::kCluster) {
    base = "CCSI";
  } else {
    base = split == SplitLevel::kCluster ? "COSI" : "OOSI";
  }
  return base + " " + to_string(comm);
}

Technique Technique::parse(const std::string& name) {
  for (const Technique& t : kAll)
    if (t.name() == name) return t;
  std::ostringstream os;
  os << "unknown technique '" << name << "' (valid:";
  for (const Technique& t : kAll) os << " '" << t.name() << "'";
  os << ")";
  throw CheckError(os.str());
}

const Technique Technique::kAll[8] = {
    Technique::csmt(),
    Technique::ccsi(CommPolicy::kNoSplit),
    Technique::ccsi(CommPolicy::kAlwaysSplit),
    Technique::smt(),
    Technique::cosi(CommPolicy::kNoSplit),
    Technique::cosi(CommPolicy::kAlwaysSplit),
    Technique::oosi(CommPolicy::kNoSplit),
    Technique::oosi(CommPolicy::kAlwaysSplit),
};

int LatencyConfig::for_class(OpClass cls) const {
  switch (cls) {
    case OpClass::kAlu: return alu;
    case OpClass::kMul: return mul;
    case OpClass::kMem: return mem;
    case OpClass::kComm: return comm;
    case OpClass::kBranch:
    case OpClass::kNop: return 1;
  }
  return 1;
}

ClusterResourceConfig ClusterResourceConfig::for_issue_width(int w) {
  ClusterResourceConfig c;
  c.issue_slots = w;
  c.alus = w;
  c.muls = std::max(1, w / 2);
  c.mem_units = 1;
  c.branch_units = 1;
  return c;
}

std::string MachineConfig::geometry_name() const {
  if (!asymmetric()) {
    return std::to_string(clusters) + "x" +
           std::to_string(cluster.issue_slots);
  }
  std::string name;
  for (int c = 0; c < clusters; ++c) {
    if (c > 0) name += "+";
    name += std::to_string(cluster_at(c).issue_slots);
  }
  return name;
}

std::vector<std::string> MachineConfig::validate_issues() const {
  std::vector<std::string> issues;
  const auto flag = [&issues](const std::string& msg) {
    issues.push_back(msg);
  };
  if (clusters < 1 || clusters > kMaxClusters)
    flag("clusters = " + std::to_string(clusters) + " out of range [1, " +
         std::to_string(kMaxClusters) + "]");
  if (hw_threads < 1)
    flag("hw_threads = " + std::to_string(hw_threads) +
         " (need at least one hardware thread)");
  const bool overrides_ok =
      cluster_overrides.empty() ||
      cluster_overrides.size() == static_cast<std::size_t>(clusters);
  if (!overrides_ok)
    flag("cluster_overrides holds " +
         std::to_string(cluster_overrides.size()) +
         " entries but must be empty or hold one per cluster (clusters = " +
         std::to_string(clusters) + ")");
  // Per-cluster checks only when indexing is safe: a bad cluster count or a
  // mismatched override vector would send cluster_at() out of bounds.
  if (clusters >= 1 && clusters <= kMaxClusters && overrides_ok) {
    for (int c = 0; c < clusters; ++c) {
      const ClusterResourceConfig& res = cluster_at(c);
      if (res.issue_slots < 1 || res.issue_slots > kMaxIssuePerCluster)
        flag("cluster " + std::to_string(c) + ": issue_slots = " +
             std::to_string(res.issue_slots) + " out of range [1, " +
             std::to_string(kMaxIssuePerCluster) + "]");
      if (res.alus < 0)
        flag("cluster " + std::to_string(c) +
             ": alus = " + std::to_string(res.alus) + " is negative");
      if (res.muls < 0)
        flag("cluster " + std::to_string(c) +
             ": muls = " + std::to_string(res.muls) + " is negative");
      if (res.mem_units < 0)
        flag("cluster " + std::to_string(c) +
             ": mem_units = " + std::to_string(res.mem_units) + " is negative");
      if (res.branch_units < 0)
        flag("cluster " + std::to_string(c) + ": branch_units = " +
             std::to_string(res.branch_units) + " is negative");
    }
  }
  // A thread's code is scheduled against per-cluster limits; rotating it
  // onto a differently-provisioned physical cluster would break resource
  // legality, so asymmetric machines run multithreaded without renaming.
  if (asymmetric() && hw_threads > 1 && cluster_renaming)
    flag("cluster_renaming = true on an asymmetric geometry with hw_threads"
         " > 1 (renaming requires a symmetric geometry)");
  // Operation-level split-issue only makes sense with operation-level
  // merging (Figure 4 of the paper).
  if (technique.split == SplitLevel::kOperation &&
      technique.merge != MergeLevel::kOperation)
    flag("technique '" + technique.name() +
         "': operation-level split requires operation-level merging");
  // A shared register file cannot supply the write ports split-issue needs
  // (Section V-C): simultaneous last-parts of several threads.
  if (technique.split != SplitLevel::kNone && hw_threads > 1 &&
      rf_org != RegFileOrg::kPartitioned)
    flag("rf_org = shared: split-issue requires the partitioned register"
         " file");
  if (lat.alu < 1)
    flag("lat.alu = " + std::to_string(lat.alu) + " (minimum 1)");
  if (lat.mul < 1)
    flag("lat.mul = " + std::to_string(lat.mul) + " (minimum 1)");
  if (lat.mem < 1)
    flag("lat.mem = " + std::to_string(lat.mem) + " (minimum 1)");
  // Memory-hierarchy parameters are validated regardless of the selected
  // backend: a config carries one MemoryConfig, and a bad set of inert
  // hierarchy numbers would otherwise only explode when --mem flips.
  const auto pow2 = [](std::uint32_t v) {
    return v != 0 && (v & (v - 1)) == 0;
  };
  if (memory.l1_mshrs < 1 || memory.l1_mshrs > 64)
    flag("memory.l1_mshrs = " + std::to_string(memory.l1_mshrs) +
         " out of range [1, 64]");
  if (!pow2(memory.l2.line_bytes))
    flag("memory.l2.line_bytes = " + std::to_string(memory.l2.line_bytes) +
         " is not a power of two");
  if (memory.l2.assoc < 1)
    flag("memory.l2.assoc = " + std::to_string(memory.l2.assoc) +
         " (minimum 1)");
  if (memory.l2.assoc >= 1 && memory.l2.line_bytes >= 1 &&
      (memory.l2.size_bytes % (memory.l2.line_bytes * memory.l2.assoc) != 0 ||
       !pow2(memory.l2.size_bytes / (memory.l2.line_bytes * memory.l2.assoc))))
    flag("memory.l2.size_bytes = " + std::to_string(memory.l2.size_bytes) +
         " does not give a power-of-two set count for assoc " +
         std::to_string(memory.l2.assoc) + " and line_bytes " +
         std::to_string(memory.l2.line_bytes));
  if (memory.l2.hit_latency < 1)
    flag("memory.l2.hit_latency = " + std::to_string(memory.l2.hit_latency) +
         " (minimum 1)");
  if (memory.dram.banks == 0)
    flag("memory.dram.banks = 0 (a DRAM needs at least one bank)");
  else if (!pow2(memory.dram.banks))
    flag("memory.dram.banks = " + std::to_string(memory.dram.banks) +
         " is not a power of two");
  if (!pow2(memory.dram.row_bytes))
    flag("memory.dram.row_bytes = " + std::to_string(memory.dram.row_bytes) +
         " is not a power of two");
  else if (pow2(memory.l2.line_bytes) &&
           memory.dram.row_bytes < memory.l2.line_bytes)
    flag("memory.dram.row_bytes = " + std::to_string(memory.dram.row_bytes) +
         " smaller than memory.l2.line_bytes = " +
         std::to_string(memory.l2.line_bytes));
  if (memory.dram.t_row_hit < 1)
    flag("memory.dram.t_row_hit = " +
         std::to_string(memory.dram.t_row_hit) + " (minimum 1)");
  if (memory.dram.t_row_closed < 1)
    flag("memory.dram.t_row_closed = " +
         std::to_string(memory.dram.t_row_closed) + " (minimum 1)");
  if (memory.dram.t_row_conflict < 1)
    flag("memory.dram.t_row_conflict = " +
         std::to_string(memory.dram.t_row_conflict) + " (minimum 1)");
  if (memory.dram.t_bank_busy < 1)
    flag("memory.dram.t_bank_busy = " +
         std::to_string(memory.dram.t_bank_busy) + " (minimum 1)");
  return issues;
}

void MachineConfig::validate() const {
  const std::vector<std::string> issues = validate_issues();
  if (issues.empty()) return;
  std::ostringstream os;
  os << "invalid machine configuration: " << issues.size() << " problem(s):";
  for (const std::string& issue : issues) os << "\n  " << issue;
  throw CheckError(os.str());
}

MachineConfig MachineConfig::paper(int threads, Technique t) {
  MachineConfig cfg;
  cfg.clusters = 4;
  cfg.cluster = ClusterResourceConfig{};  // 4-issue: 4 ALU, 2 MUL, 1 LS
  cfg.hw_threads = threads;
  cfg.technique = t;
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::paper_single() {
  MachineConfig cfg = paper(1, Technique::smt());
  return cfg;
}

}  // namespace vexsim
