#include "isa/operation.hpp"

#include <sstream>

#include "util/check.hpp"

namespace vexsim {
namespace ops {

namespace {
Operation base(Opcode opc, int cluster) {
  VEXSIM_CHECK(cluster >= 0 && cluster < kMaxClusters);
  Operation op;
  op.opc = opc;
  op.cluster = static_cast<std::uint8_t>(cluster);
  return op;
}
}  // namespace

Operation alu(Opcode opc, int cluster, int dst, int src1, int src2) {
  Operation op = base(opc, cluster);
  op.dst = static_cast<std::uint8_t>(dst);
  op.src1 = static_cast<std::uint8_t>(src1);
  op.src2 = static_cast<std::uint8_t>(src2);
  return op;
}

Operation alui(Opcode opc, int cluster, int dst, int src1, std::int32_t imm) {
  Operation op = base(opc, cluster);
  op.dst = static_cast<std::uint8_t>(dst);
  op.src1 = static_cast<std::uint8_t>(src1);
  op.src2_is_imm = true;
  op.imm = imm;
  return op;
}

Operation movi(int cluster, int dst, std::int32_t imm) {
  Operation op = base(Opcode::kMovi, cluster);
  op.dst = static_cast<std::uint8_t>(dst);
  op.imm = imm;
  return op;
}

Operation mov(int cluster, int dst, int src) {
  Operation op = base(Opcode::kMov, cluster);
  op.dst = static_cast<std::uint8_t>(dst);
  op.src1 = static_cast<std::uint8_t>(src);
  return op;
}

Operation cmp_breg(Opcode opc, int cluster, int breg, int src1, int src2) {
  VEXSIM_CHECK(is_compare(opc));
  Operation op = alu(opc, cluster, breg, src1, src2);
  op.dst_is_breg = true;
  return op;
}

Operation cmpi_breg(Opcode opc, int cluster, int breg, int src1,
                    std::int32_t imm) {
  VEXSIM_CHECK(is_compare(opc));
  Operation op = alui(opc, cluster, breg, src1, imm);
  op.dst_is_breg = true;
  return op;
}

Operation slct(int cluster, int dst, int bsrc, int src1, int src2) {
  Operation op = alu(Opcode::kSlct, cluster, dst, src1, src2);
  op.bsrc = static_cast<std::uint8_t>(bsrc);
  return op;
}

Operation load(Opcode opc, int cluster, int dst, int base_reg,
               std::int32_t off) {
  VEXSIM_CHECK(is_load(opc));
  Operation op = base(opc, cluster);
  op.dst = static_cast<std::uint8_t>(dst);
  op.src1 = static_cast<std::uint8_t>(base_reg);
  op.imm = off;
  return op;
}

Operation store(Opcode opc, int cluster, int base_reg, std::int32_t off,
                int val) {
  VEXSIM_CHECK(is_store(opc));
  Operation op = base(opc, cluster);
  op.src1 = static_cast<std::uint8_t>(base_reg);
  op.src2 = static_cast<std::uint8_t>(val);
  op.imm = off;
  return op;
}

Operation mpyl(int cluster, int dst, int src1, int src2) {
  return alu(Opcode::kMpyl, cluster, dst, src1, src2);
}

Operation mpyli(int cluster, int dst, int src1, std::int32_t imm) {
  return alui(Opcode::kMpyl, cluster, dst, src1, imm);
}

Operation br(int cluster, int bsrc, std::int32_t target) {
  Operation op = base(Opcode::kBr, cluster);
  op.bsrc = static_cast<std::uint8_t>(bsrc);
  op.imm = target;
  return op;
}

Operation brf(int cluster, int bsrc, std::int32_t target) {
  Operation op = base(Opcode::kBrf, cluster);
  op.bsrc = static_cast<std::uint8_t>(bsrc);
  op.imm = target;
  return op;
}

Operation jump(int cluster, std::int32_t target) {
  Operation op = base(Opcode::kGoto, cluster);
  op.imm = target;
  return op;
}

Operation halt(int cluster) { return base(Opcode::kHalt, cluster); }

Operation send(int cluster, int src, int chan) {
  Operation op = base(Opcode::kSend, cluster);
  op.src1 = static_cast<std::uint8_t>(src);
  op.chan = static_cast<std::uint8_t>(chan);
  return op;
}

Operation recv(int cluster, int dst, int chan) {
  Operation op = base(Opcode::kRecv, cluster);
  op.dst = static_cast<std::uint8_t>(dst);
  op.chan = static_cast<std::uint8_t>(chan);
  return op;
}

}  // namespace ops

std::string to_string(const Operation& op) {
  std::ostringstream os;
  os << "c" << int(op.cluster) << " " << opcode_name(op.opc);
  auto src2_str = [&op]() -> std::string {
    if (op.src2_is_imm) return std::to_string(op.imm);
    return "r" + std::to_string(int(op.src2));
  };
  switch (op.cls()) {
    case OpClass::kNop:
      break;
    case OpClass::kAlu:
      if (op.opc == Opcode::kMovi) {
        os << " " << (op.dst_is_breg ? "b" : "r") << int(op.dst) << " = "
           << op.imm;
      } else if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf) {
        os << " r" << int(op.dst) << " = b" << int(op.bsrc) << ", r"
           << int(op.src1) << ", " << src2_str();
      } else if (!reads_src2(op.opc)) {
        os << " " << (op.dst_is_breg ? "b" : "r") << int(op.dst) << " = r"
           << int(op.src1);
      } else {
        os << " " << (op.dst_is_breg ? "b" : "r") << int(op.dst) << " = r"
           << int(op.src1) << ", " << src2_str();
      }
      break;
    case OpClass::kMul:
      os << " r" << int(op.dst) << " = r" << int(op.src1) << ", "
         << src2_str();
      break;
    case OpClass::kMem:
      if (is_load(op.opc)) {
        os << " r" << int(op.dst) << " = " << op.imm << "[r" << int(op.src1)
           << "]";
      } else {
        os << " " << op.imm << "[r" << int(op.src1) << "] = r"
           << int(op.src2);
      }
      break;
    case OpClass::kBranch:
      if (op.opc == Opcode::kGoto) {
        os << " @" << op.imm;
      } else if (op.opc != Opcode::kHalt) {
        os << " b" << int(op.bsrc) << ", @" << op.imm;
      }
      break;
    case OpClass::kComm:
      if (op.opc == Opcode::kSend) {
        os << " ch" << int(op.chan) << " = r" << int(op.src1);
      } else {
        os << " r" << int(op.dst) << " = ch" << int(op.chan);
      }
      break;
  }
  return os.str();
}

}  // namespace vexsim
