#include "isa/instruction.hpp"

#include <sstream>

namespace vexsim {

std::string to_string(const VliwInstruction& insn) {
  if (insn.empty()) return "nop";
  std::ostringstream os;
  bool first = true;
  insn.for_each_op([&](const Operation& op) {
    if (!first) os << " ; ";
    first = false;
    os << to_string(op);
  });
  return os.str();
}

}  // namespace vexsim
