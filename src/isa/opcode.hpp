// Opcode set of the vexsim ISA.
//
// Modeled on the VEX / HP-ST ST200 32-bit clustered integer VLIW ISA
// (Fisher/Faraboschi/Young). The subset below covers every operation class
// the paper's evaluation depends on: single-cycle ALU ops, 2-cycle multiply
// and memory ops, two-phase branches (compare sets a branch register, the
// branch reads it), and explicit inter-cluster send/recv copy pairs.
#pragma once

#include <cstdint>
#include <string_view>

namespace vexsim {

enum class Opcode : std::uint8_t {
  kNop = 0,
  // ALU, latency 1.
  kAdd, kSub, kAnd, kAndc, kOr, kXor,
  kShl, kShr, kShru,
  kMin, kMax, kMinu, kMaxu,
  kMov,   // dst = src1
  kMovi,  // dst = imm
  kSxtb, kSxth, kZxtb, kZxth,
  // Comparisons, latency 1; dst is a GPR (0/1) or a branch register.
  kCmpeq, kCmpne, kCmplt, kCmple, kCmpgt, kCmpge, kCmpltu, kCmpgeu,
  // Select via branch register: dst = bsrc ? src1 : src2  (slctf inverts).
  kSlct, kSlctf,
  // Multiply, latency 2. mpyl = low 32 bits, mpyh = high 32 bits.
  kMpyl, kMpyh,
  // Memory, latency 2. Address = gpr[src1] + imm.
  kLdw, kLdh, kLdhu, kLdb, kLdbu,
  kStw, kSth, kStb,  // value in src2 (register only)
  // Control flow. br/brf read a branch register (bsrc); imm = target index.
  kBr, kBrf, kGoto, kHalt,
  // Inter-cluster copy pair; matched by channel id within one instruction.
  kSend,  // reads gpr[src1], pushes onto channel `chan`
  kRecv,  // pops channel `chan` into gpr[dst]
  kCount
};

enum class OpClass : std::uint8_t { kNop, kAlu, kMul, kMem, kBranch, kComm };

[[nodiscard]] OpClass op_class(Opcode opc);
[[nodiscard]] std::string_view opcode_name(Opcode opc);
// Returns kCount when the name is unknown.
[[nodiscard]] Opcode opcode_from_name(std::string_view name);

[[nodiscard]] bool is_load(Opcode opc);
[[nodiscard]] bool is_store(Opcode opc);
[[nodiscard]] bool is_mem(Opcode opc);
[[nodiscard]] bool is_compare(Opcode opc);
[[nodiscard]] bool is_branch(Opcode opc);  // br, brf, goto, halt
[[nodiscard]] bool is_conditional_branch(Opcode opc);

// Dataflow shape of an opcode, used by the assembler, the disassembler, the
// DDG builder and the simulator operand fetch.
[[nodiscard]] bool has_dst(Opcode opc);       // writes a GPR or branch register
[[nodiscard]] bool reads_src1(Opcode opc);
[[nodiscard]] bool reads_src2(Opcode opc);    // src2 may be an immediate
[[nodiscard]] bool reads_bsrc(Opcode opc);    // slct/slctf/br/brf
[[nodiscard]] bool uses_imm_always(Opcode opc);  // movi, loads/stores, branches

// Access size in bytes for a memory opcode.
[[nodiscard]] int mem_access_size(Opcode opc);

}  // namespace vexsim
