// A single RISC-like operation, the atomic unit of a VLIW instruction.
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcode.hpp"

namespace vexsim {

inline constexpr int kMaxClusters = 8;
inline constexpr int kMaxIssuePerCluster = 8;
inline constexpr int kMaxHwThreads = 8;
inline constexpr int kMaxTotalIssue = kMaxClusters * kMaxIssuePerCluster;
inline constexpr int kNumGprs = 64;   // per cluster; gpr 0 is hardwired to 0
inline constexpr int kNumBregs = 8;   // per cluster
inline constexpr int kNumChannels = 8;  // inter-cluster copy channels

struct Operation {
  Opcode opc = Opcode::kNop;
  std::uint8_t cluster = 0;     // logical cluster the op is scheduled on
  std::uint8_t dst = 0;         // GPR index, or branch-register index
  bool dst_is_breg = false;     // comparisons may target a branch register
  std::uint8_t src1 = 0;        // GPR
  std::uint8_t src2 = 0;        // GPR, unless src2_is_imm
  bool src2_is_imm = false;
  std::uint8_t bsrc = 0;        // branch register read by slct/slctf/br/brf
  std::uint8_t chan = 0;        // send/recv channel id
  std::int32_t imm = 0;         // immediate / address offset / branch target

  friend bool operator==(const Operation&, const Operation&) = default;

  [[nodiscard]] OpClass cls() const { return op_class(opc); }
  [[nodiscard]] bool is_nop() const { return opc == Opcode::kNop; }
  [[nodiscard]] bool writes_gpr() const { return has_dst(opc) && !dst_is_breg; }
  [[nodiscard]] bool writes_breg() const { return has_dst(opc) && dst_is_breg; }
};

// Convenience constructors used by tests, examples and the compiler backend.
namespace ops {
Operation alu(Opcode opc, int cluster, int dst, int src1, int src2);
Operation alui(Opcode opc, int cluster, int dst, int src1, std::int32_t imm);
Operation movi(int cluster, int dst, std::int32_t imm);
Operation mov(int cluster, int dst, int src);
Operation cmp_breg(Opcode opc, int cluster, int breg, int src1, int src2);
Operation cmpi_breg(Opcode opc, int cluster, int breg, int src1,
                    std::int32_t imm);
Operation slct(int cluster, int dst, int bsrc, int src1, int src2);
Operation load(Opcode opc, int cluster, int dst, int base, std::int32_t off);
Operation store(Opcode opc, int cluster, int base, std::int32_t off, int val);
Operation mpyl(int cluster, int dst, int src1, int src2);
Operation mpyli(int cluster, int dst, int src1, std::int32_t imm);
Operation br(int cluster, int bsrc, std::int32_t target);
Operation brf(int cluster, int bsrc, std::int32_t target);
Operation jump(int cluster, std::int32_t target);
Operation halt(int cluster);
Operation send(int cluster, int src, int chan);
Operation recv(int cluster, int dst, int chan);
}  // namespace ops

// Renders an op in assembler syntax, e.g. "c0 add r3 = r1, r2".
[[nodiscard]] std::string to_string(const Operation& op);

}  // namespace vexsim
