// Binary encoding of VLIW instructions.
//
// Each operation encodes to one 64-bit word; immediates that do not fit in
// 16 bits take one 64-bit extension word. The last operation word of an
// instruction carries a stop bit (Lx/IA-64 style). An empty instruction
// (compiler-emitted vertical nop cycle) encodes as a single nop word.
//
// The encoding exists for two reasons: it fixes the byte footprint of each
// instruction (the ICache model indexes by real byte addresses) and it gives
// tests a round-trip surface for the ISA.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/program.hpp"

namespace vexsim {

// Encoded size of one instruction in bytes (multiple of 8, minimum 8).
[[nodiscard]] std::uint32_t encoded_size_bytes(const VliwInstruction& insn);

// Appends the encoding of `insn` to `out`.
void encode(const VliwInstruction& insn, std::vector<std::uint64_t>& out);

// Decodes one instruction starting at out[pos]; advances pos past it.
[[nodiscard]] VliwInstruction decode(std::span<const std::uint64_t> words,
                                     std::size_t& pos);

[[nodiscard]] std::vector<std::uint64_t> encode_program(const Program& prog);
// Decodes a full code stream (labels and data are not part of the encoding).
[[nodiscard]] std::vector<VliwInstruction> decode_program(
    std::span<const std::uint64_t> words);

}  // namespace vexsim
