// VLIW instruction = one bundle per cluster (Lx/VEX terminology).
//
// An *operation* is the basic execution unit; the operations scheduled to
// execute at a given cluster in a given cycle form a *bundle*; the set of
// bundles forms the *VLIW instruction*. Merging and split-issue act on this
// structure: CSMT/CCSI at bundle granularity, SMT/COSI/OOSI at operation
// granularity.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/operation.hpp"
#include "util/inline_vec.hpp"

namespace vexsim {

using Bundle = InlineVec<Operation, kMaxIssuePerCluster>;

struct VliwInstruction {
  std::array<Bundle, kMaxClusters> bundles;

  // Appends `op` to the bundle of its own cluster.
  void add(const Operation& op) { bundles[op.cluster].push_back(op); }

  [[nodiscard]] const Bundle& bundle(int cluster) const {
    return bundles[static_cast<std::size_t>(cluster)];
  }
  [[nodiscard]] Bundle& bundle(int cluster) {
    return bundles[static_cast<std::size_t>(cluster)];
  }

  // Bitmask of clusters with a non-empty bundle.
  [[nodiscard]] std::uint32_t used_cluster_mask() const {
    std::uint32_t mask = 0;
    for (int c = 0; c < kMaxClusters; ++c)
      if (!bundles[static_cast<std::size_t>(c)].empty()) mask |= 1u << c;
    return mask;
  }

  [[nodiscard]] int op_count() const {
    int n = 0;
    for (const Bundle& b : bundles) n += static_cast<int>(b.size());
    return n;
  }

  [[nodiscard]] bool empty() const { return op_count() == 0; }

  // True if any operation is a send or recv: such instructions are the
  // subject of the paper's NS ("no split communication") configuration.
  [[nodiscard]] bool has_comm() const {
    for (const Bundle& b : bundles)
      for (const Operation& op : b)
        if (op.cls() == OpClass::kComm) return true;
    return false;
  }

  [[nodiscard]] bool has_branch() const {
    for (const Bundle& b : bundles)
      for (const Operation& op : b)
        if (is_branch(op.opc)) return true;
    return false;
  }

  [[nodiscard]] bool has_mem() const {
    for (const Bundle& b : bundles)
      for (const Operation& op : b)
        if (is_mem(op.opc)) return true;
    return false;
  }

  template <typename Fn>
  void for_each_op(Fn&& fn) const {
    for (const Bundle& b : bundles)
      for (const Operation& op : b) fn(op);
  }

  friend bool operator==(const VliwInstruction&,
                         const VliwInstruction&) = default;
};

// Renders as one assembler line: ops joined by " ; ", "nop" when empty.
[[nodiscard]] std::string to_string(const VliwInstruction& insn);

}  // namespace vexsim
