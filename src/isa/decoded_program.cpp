#include "isa/decoded_program.hpp"

#include <algorithm>

#include "isa/opcode.hpp"
#include "util/check.hpp"

namespace vexsim {

DecodedOp DecodedProgram::decode_op(const Operation& op) {
  DecodedOp d;
  d.cls = op.cls();
  d.use.add(op);
  std::uint8_t flags = 0;
  if (reads_src1(op.opc)) flags |= DecodedOp::kReadsSrc1;
  // Operand b of the scalar evaluation: movi takes the immediate outright;
  // otherwise src2 is a register unless the encoding marked it immediate.
  if (op.opc == Opcode::kMovi) {
    flags |= DecodedOp::kSrc2Imm;
  } else if (reads_src2(op.opc)) {
    flags |= op.src2_is_imm ? DecodedOp::kSrc2Imm : DecodedOp::kSrc2Reg;
  }
  if (reads_bsrc(op.opc)) flags |= DecodedOp::kReadsBsrc;
  if (is_load(op.opc)) flags |= DecodedOp::kLoad;
  if (op.dst_is_breg) flags |= DecodedOp::kDstBreg;
  d.flags = flags;
  if (d.cls == OpClass::kMem)
    d.mem_size = static_cast<std::uint8_t>(mem_access_size(op.opc));
  return d;
}

DecodedProgram::DecodedProgram(const std::vector<VliwInstruction>& code,
                               const std::vector<SoftwarePipelinedLoop>&
                                   kernels) {
  if (!kernels.empty()) {
    regions_.assign(code.size(), SwpRegion::kNone);
    for (const SoftwarePipelinedLoop& k : kernels) {
      VEXSIM_CHECK_MSG(k.epilogue_end <= code.size(),
                       "software-pipeline span past end of code");
      for (std::uint32_t i = k.prologue_start; i < k.kernel_start; ++i)
        regions_[i] = SwpRegion::kPrologue;
      // Clamp: a malformed span (kernel_start + ii past epilogue_end) is
      // the verifier's to report; region tagging must not index past the
      // code it annotates.
      for (std::uint32_t i = k.kernel_start;
           i < std::min<std::uint64_t>(std::uint64_t{k.kernel_start} + k.ii,
                                       code.size());
           ++i)
        regions_[i] = SwpRegion::kKernel;
      for (std::uint32_t i = k.kernel_start + k.ii; i < k.epilogue_end; ++i)
        regions_[i] = SwpRegion::kEpilogue;
    }
  }
  insns_.reserve(code.size());
  for (const VliwInstruction& insn : code) {
    DecodedInstruction dec;
    int ops = 0;
    for (int c = 0; c < kMaxClusters; ++c) {
      const Bundle& bundle = insn.bundle(c);
      DecodedBundle& db = dec.bundles[static_cast<std::size_t>(c)];
      VEXSIM_CHECK(bundle.size() <= kMaxIssuePerCluster);
      db.full_mask =
          static_cast<std::uint8_t>((1u << bundle.size()) - 1u);
      for (std::size_t i = 0; i < bundle.size(); ++i) {
        db.ops[i] = decode_op(bundle[i]);
        db.whole_use.add(bundle[i]);
        if (bundle[i].cls() == OpClass::kComm) dec.has_comm = true;
        if (is_branch(bundle[i].opc)) dec.has_branch = true;
      }
      dec.full_masks[static_cast<std::size_t>(c)] = db.full_mask;
      if (db.full_mask != 0) dec.used_cluster_mask |= 1u << c;
      ops += static_cast<int>(bundle.size());
    }
    dec.op_count = static_cast<std::uint8_t>(ops);
    insns_.push_back(dec);
  }
}

}  // namespace vexsim
