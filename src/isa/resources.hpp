// Per-cluster issue resource accounting.
//
// A 4-issue cluster has 4 issue slots backed by 4 ALUs, 2 multipliers and
// 1 load/store unit (Section IV); branch operations need a branch unit.
// These counts are what the operation-level collision logic (CL of Figure 7)
// checks; the cluster-level variant only checks "is the cluster untouched".
//
// Representation: all five counters live in one uint64_t as packed 8-bit
// lanes (slots, alu, mul, mem, br at bytes 0..4), so the merge engine's two
// inner-loop primitives collapse to word arithmetic:
//
//   add       → one 64-bit add (no lane can carry: every accumulation site
//               is bounded by the issue width, see the static_asserts);
//   fits_with → one subtract against the packed capacity word with a
//               per-lane borrow guard ("SWAR" compare — lane values stay
//               below 0x80, so a clear guard bit means that lane borrowed).
//
// Capacities pack once per cluster (pack_limits) at machine-attach time;
// probing a bundle against a cluster no longer re-reads the five config
// fields per attempt.
//
// This lives in isa (not core) because the decode cache (decoded_program.hpp)
// precomputes ResourceUse tables at program-load time, one layer below the
// merge hardware that consumes them.
#pragma once

#include <cstdint>

#include "isa/config.hpp"
#include "isa/instruction.hpp"

namespace vexsim {

struct ResourceUse {
  // Byte lane per resource kind; lanes 5..7 are always zero.
  static constexpr int kSlotsLane = 0;
  static constexpr int kAluLane = 1;
  static constexpr int kMulLane = 2;
  static constexpr int kMemLane = 3;
  static constexpr int kBrLane = 4;
  // High bit of each used lane: the borrow detector for the SWAR compare.
  static constexpr std::uint64_t kGuard = 0x0000008080808080ull;

  // The SWAR borrow trick needs every lane value (use and capacity alike)
  // below 0x80, and lane adds must never carry into the neighbour lane.
  // Uses are bounded by the per-cluster issue width: a bundle has at most
  // kMaxIssuePerCluster operations and a packet accumulates at most one
  // cluster's capacity per lane, so 2 * kMaxIssuePerCluster bounds any
  // transient sum a fits probe sees. Widen the lanes to 16 bits if this
  // ever fails.
  static_assert(2 * kMaxIssuePerCluster < 0x80,
                "packed 8-bit ResourceUse lanes would overflow; widen lanes");

  std::uint64_t bits = 0;

  [[nodiscard]] static constexpr ResourceUse one_slot() {
    return ResourceUse{1u << (8 * kSlotsLane)};
  }
  [[nodiscard]] static constexpr std::uint64_t pack(int slots, int alu,
                                                    int mul, int mem, int br) {
    return (static_cast<std::uint64_t>(slots) << (8 * kSlotsLane)) |
           (static_cast<std::uint64_t>(alu) << (8 * kAluLane)) |
           (static_cast<std::uint64_t>(mul) << (8 * kMulLane)) |
           (static_cast<std::uint64_t>(mem) << (8 * kMemLane)) |
           (static_cast<std::uint64_t>(br) << (8 * kBrLane));
  }
  // Per-cluster capacity in the packed form, clamped into the lane range so
  // configs larger than the SWAR domain degrade to "never limits" instead of
  // corrupting neighbour lanes.
  [[nodiscard]] static std::uint64_t pack_limits(
      const ClusterResourceConfig& limits, int branch_units);

  [[nodiscard]] std::uint8_t lane(int i) const {
    return static_cast<std::uint8_t>(bits >> (8 * i));
  }
  [[nodiscard]] std::uint8_t slots() const { return lane(kSlotsLane); }
  [[nodiscard]] std::uint8_t alu() const { return lane(kAluLane); }
  [[nodiscard]] std::uint8_t mul() const { return lane(kMulLane); }
  [[nodiscard]] std::uint8_t mem() const { return lane(kMemLane); }
  [[nodiscard]] std::uint8_t br() const { return lane(kBrLane); }

  void add(const Operation& op);
  void add(const ResourceUse& other) { bits += other.bits; }

  [[nodiscard]] bool empty() const { return (bits & 0xFFu) == 0; }

  // Would `this + extra` still fit within the packed per-cluster capacity?
  // One subtract: a cleared guard bit marks the lane that went negative.
  [[nodiscard]] bool fits_packed(const ResourceUse& extra,
                                 std::uint64_t packed_limits) const {
    const std::uint64_t want = bits + extra.bits;
    return (((packed_limits | kGuard) - want) & kGuard) == kGuard;
  }
  // Struct-capacity convenience (compiler passes, tests); the merge engine
  // uses fits_packed against capacities packed once at attach time.
  [[nodiscard]] bool fits_with(const ResourceUse& extra,
                               const ClusterResourceConfig& limits,
                               int branch_units) const {
    return fits_packed(extra, pack_limits(limits, branch_units));
  }

  friend bool operator==(const ResourceUse&, const ResourceUse&) = default;
};

// Resource use of the subset of `bundle` selected by `mask` (bit i = op i).
[[nodiscard]] ResourceUse bundle_use(const Bundle& bundle, std::uint8_t mask);

}  // namespace vexsim
