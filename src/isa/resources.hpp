// Per-cluster issue resource accounting.
//
// A 4-issue cluster has 4 issue slots backed by 4 ALUs, 2 multipliers and
// 1 load/store unit (Section IV); branch operations need a branch unit.
// These counts are what the operation-level collision logic (CL of Figure 7)
// checks; the cluster-level variant only checks "is the cluster untouched".
//
// This lives in isa (not core) because the decode cache (decoded_program.hpp)
// precomputes ResourceUse tables at program-load time, one layer below the
// merge hardware that consumes them.
#pragma once

#include <cstdint>

#include "isa/config.hpp"
#include "isa/instruction.hpp"

namespace vexsim {

struct ResourceUse {
  std::uint8_t slots = 0;
  std::uint8_t alu = 0;
  std::uint8_t mul = 0;
  std::uint8_t mem = 0;
  std::uint8_t br = 0;

  void add(const Operation& op);
  void add(const ResourceUse& other);

  [[nodiscard]] bool empty() const { return slots == 0; }

  // Would `this + extra` still fit within the cluster limits?
  [[nodiscard]] bool fits_with(const ResourceUse& extra,
                               const ClusterResourceConfig& limits,
                               int branch_units) const;

  friend bool operator==(const ResourceUse&, const ResourceUse&) = default;
};

// Resource use of the subset of `bundle` selected by `mask` (bit i = op i).
[[nodiscard]] ResourceUse bundle_use(const Bundle& bundle, std::uint8_t mask);

}  // namespace vexsim
