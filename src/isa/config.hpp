// Machine configuration: geometry, latencies, caches, and the multithreading
// technique axes studied by the paper.
//
// A technique is a point in (merge level) × (split level) × (comm policy):
//
//                     merge=operation      merge=cluster
//   split=none        SMT                  CSMT
//   split=cluster     COSI                 CCSI
//   split=operation   OOSI                 —  (not meaningful, Fig. 4)
//
// with comm ∈ {NS: never split instructions containing send/recv,
//              AS: always allow splitting them}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/operation.hpp"

namespace vexsim {

enum class MergeLevel : std::uint8_t { kOperation, kCluster };
enum class SplitLevel : std::uint8_t { kNone, kCluster, kOperation };
enum class CommPolicy : std::uint8_t { kNoSplit, kAlwaysSplit };
enum class RegFileOrg : std::uint8_t { kPartitioned, kShared };

[[nodiscard]] std::string to_string(MergeLevel m);
[[nodiscard]] std::string to_string(SplitLevel s);
[[nodiscard]] std::string to_string(CommPolicy c);
[[nodiscard]] std::string to_string(RegFileOrg r);

// Parses "partitioned" / "shared"; throws CheckError listing the valid
// names otherwise. Counterpart of to_string for description files.
[[nodiscard]] RegFileOrg reg_file_org_from(const std::string& name);

struct Technique {
  MergeLevel merge = MergeLevel::kOperation;
  SplitLevel split = SplitLevel::kNone;
  CommPolicy comm = CommPolicy::kNoSplit;

  friend bool operator==(const Technique&, const Technique&) = default;

  [[nodiscard]] std::string name() const;

  // Parses a name() spelling ("SMT", "CSMT", "CCSI NS", ..., "OOSI AS");
  // throws CheckError listing the valid names on an unknown one.
  static Technique parse(const std::string& name);

  static Technique smt() { return {MergeLevel::kOperation, SplitLevel::kNone, CommPolicy::kNoSplit}; }
  static Technique csmt() { return {MergeLevel::kCluster, SplitLevel::kNone, CommPolicy::kNoSplit}; }
  static Technique ccsi(CommPolicy c) { return {MergeLevel::kCluster, SplitLevel::kCluster, c}; }
  static Technique cosi(CommPolicy c) { return {MergeLevel::kOperation, SplitLevel::kCluster, c}; }
  static Technique oosi(CommPolicy c) { return {MergeLevel::kOperation, SplitLevel::kOperation, c}; }

  // The eight techniques of Figure 16, in the paper's presentation order.
  static const Technique kAll[8];
};

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t assoc = 4;
  std::uint32_t line_bytes = 64;
  std::uint32_t miss_penalty = 20;
  bool perfect = false;  // all accesses hit (the paper's IPCp configuration)

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

// Which miss-handling model backs the L1 caches (mem/backend.hpp).
enum class MemBackendKind : std::uint8_t {
  kFixed,      // flat CacheConfig::miss_penalty, the paper's model (default)
  kHierarchy,  // MSHRs + shared L2 + banked DRAM with row-buffer timing
};

[[nodiscard]] std::string to_string(MemBackendKind k);

// Parses "fixed" / "hierarchy"; throws CheckError listing the valid names
// otherwise. Counterpart of to_string for description files and --mem.
[[nodiscard]] MemBackendKind mem_backend_from(const std::string& name);

// Shared inclusive L2 of the hierarchy backend (timing-only, same
// set-associative LRU model as the L1s).
struct L2Config {
  std::uint32_t size_bytes = 512 * 1024;
  std::uint32_t assoc = 8;
  std::uint32_t line_bytes = 64;
  std::uint32_t hit_latency = 12;  // L1-miss-to-data cycles on an L2 hit

  friend bool operator==(const L2Config&, const L2Config&) = default;
};

// Banked DRAM behind the L2: per-bank open-row buffers and queues. A
// request's latency depends on the row-buffer state it finds (hit / bank
// idle / conflict) and each request occupies its bank for t_bank_busy
// cycles, so same-bank bursts serialize.
struct DramConfig {
  std::uint32_t banks = 8;           // power of two (line-interleaved)
  std::uint32_t row_bytes = 2048;    // per-bank row-buffer reach, power of two
  std::uint32_t t_row_hit = 18;      // open-row access
  std::uint32_t t_row_closed = 30;   // activate + access (bank idle)
  std::uint32_t t_row_conflict = 44; // precharge + activate + access
  std::uint32_t t_bank_busy = 6;     // bank occupancy per request

  friend bool operator==(const DramConfig&, const DramConfig&) = default;
};

// Memory-backend selection plus the hierarchy parameters. The defaults keep
// `backend = kFixed`, under which every other field is inert and the machine
// is bit-identical to the seed's hard-coded miss path.
struct MemoryConfig {
  MemBackendKind backend = MemBackendKind::kFixed;
  std::uint32_t l1_mshrs = 8;  // outstanding misses per L1 (I and D each)
  L2Config l2;
  DramConfig dram;

  friend bool operator==(const MemoryConfig&, const MemoryConfig&) = default;
};

struct LatencyConfig {
  int alu = 1;
  int mul = 2;
  int mem = 2;
  int comm = 1;                 // recv write becomes visible next cycle
  int cmp_to_branch = 2;        // ISA contract enforced by the compiler
  int taken_branch_penalty = 1; // squashed fall-through fetch

  [[nodiscard]] int for_class(OpClass cls) const;

  friend bool operator==(const LatencyConfig&, const LatencyConfig&) = default;
};

// Per-cluster resources. The paper's 4-issue cluster: 4 ALUs, 2 multipliers,
// 1 load/store unit; branches execute on cluster 0's branch unit.
struct ClusterResourceConfig {
  int issue_slots = 4;
  int alus = 4;
  int muls = 2;
  int mem_units = 1;  // also the number of data-memory ports per cluster
  int branch_units = 1;

  // Paper-proportioned cluster for a given issue width: `w` ALUs, w/2
  // multipliers, one load/store port, one branch unit.
  static ClusterResourceConfig for_issue_width(int w);

  friend bool operator==(const ClusterResourceConfig&,
                         const ClusterResourceConfig&) = default;
};

struct MachineConfig {
  int clusters = 4;
  ClusterResourceConfig cluster;
  // Asymmetric geometries: when non-empty, cluster_overrides[c] replaces
  // `cluster` for cluster c (size must equal `clusters`). The compiler
  // schedules against per-cluster limits, so a program compiled for an
  // asymmetric machine is only legal on the cluster it was compiled for —
  // validate() therefore rejects cluster renaming on asymmetric
  // multithreaded machines (rotation would land wide bundles on narrow
  // clusters).
  std::vector<ClusterResourceConfig> cluster_overrides;
  // The compiler places control flow on *logical* cluster 0 (ST200
  // convention), but cluster renaming rotates each thread's logical clusters
  // across the machine, so every physical cluster carries a branch unit by
  // default. Set this for single-thread / no-renaming studies.
  bool branch_on_cluster0_only = false;
  LatencyConfig lat;
  CacheConfig icache;
  CacheConfig dcache;
  // Miss handling behind the L1s: the fixed-penalty seed model or the
  // MSHR/L2/DRAM hierarchy (mem/backend.hpp picks the implementation).
  MemoryConfig memory;
  int hw_threads = 1;
  Technique technique;        // ignored when hw_threads == 1
  bool cluster_renaming = true;
  RegFileOrg rf_org = RegFileOrg::kPartitioned;
  bool stall_on_store_miss = false;  // ST200-style write buffer by default

  [[nodiscard]] bool asymmetric() const { return !cluster_overrides.empty(); }
  [[nodiscard]] const ClusterResourceConfig& cluster_at(int c) const {
    return cluster_overrides.empty()
               ? cluster
               : cluster_overrides[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] int total_issue_width() const {
    int width = 0;
    for (int c = 0; c < clusters; ++c) width += cluster_at(c).issue_slots;
    return width;
  }
  // "4x4" for symmetric machines, "4+4+2+2" (per-cluster issue widths) for
  // asymmetric ones; keys benchmark caches and labels sweep points.
  [[nodiscard]] std::string geometry_name() const;
  [[nodiscard]] int branch_units_at(int c) const {
    return (branch_on_cluster0_only && c != 0) ? 0 : cluster_at(c).branch_units;
  }
  // Static cluster-renaming rotation for hardware thread `tid`. Section IV:
  // "Thread 0 is rotated by 0, Thread 1 by 1, Thread 2 by 2, and Thread 3
  // by 3" — i.e. thread i rotates by i. Note this leaves 2-thread machines
  // with *partially* overlapping footprints (rotations 0 and 1), which is
  // precisely the contention cluster-level split-issue arbitrates.
  [[nodiscard]] int renaming_rotation(int tid) const {
    if (!cluster_renaming || hw_threads <= 1) return 0;
    return tid % clusters;
  }

  // Every inconsistency in the configuration, one message per violated
  // constraint with the offending field named — empty when valid. Config
  // file authors (and the DSE sampler's rejection log) get the complete
  // list in one pass instead of fixing violations one throw at a time.
  [[nodiscard]] std::vector<std::string> validate_issues() const;

  // Throws one CheckError aggregating every validate_issues() entry (the
  // verify_or_throw / run_sweep aggregation style); no-op when valid.
  void validate() const;

  friend bool operator==(const MachineConfig&, const MachineConfig&) = default;

  // The paper's evaluation machine: 4 clusters × 4-issue, 64 KB 4-way I/D
  // caches with a 20-cycle miss penalty, mem/mul latency 2.
  static MachineConfig paper(int threads, Technique t);
  static MachineConfig paper_single();  // 1 thread, no merging
};

}  // namespace vexsim
