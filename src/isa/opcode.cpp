#include "isa/opcode.hpp"

#include <array>

#include "util/check.hpp"

namespace vexsim {

namespace {
struct OpcodeInfo {
  std::string_view name;
  OpClass cls;
};

constexpr auto kInfo = [] {
  std::array<OpcodeInfo, static_cast<std::size_t>(Opcode::kCount)> t{};
  auto set = [&t](Opcode o, std::string_view n, OpClass c) {
    t[static_cast<std::size_t>(o)] = {n, c};
  };
  set(Opcode::kNop, "nop", OpClass::kNop);
  set(Opcode::kAdd, "add", OpClass::kAlu);
  set(Opcode::kSub, "sub", OpClass::kAlu);
  set(Opcode::kAnd, "and", OpClass::kAlu);
  set(Opcode::kAndc, "andc", OpClass::kAlu);
  set(Opcode::kOr, "or", OpClass::kAlu);
  set(Opcode::kXor, "xor", OpClass::kAlu);
  set(Opcode::kShl, "shl", OpClass::kAlu);
  set(Opcode::kShr, "shr", OpClass::kAlu);
  set(Opcode::kShru, "shru", OpClass::kAlu);
  set(Opcode::kMin, "min", OpClass::kAlu);
  set(Opcode::kMax, "max", OpClass::kAlu);
  set(Opcode::kMinu, "minu", OpClass::kAlu);
  set(Opcode::kMaxu, "maxu", OpClass::kAlu);
  set(Opcode::kMov, "mov", OpClass::kAlu);
  set(Opcode::kMovi, "movi", OpClass::kAlu);
  set(Opcode::kSxtb, "sxtb", OpClass::kAlu);
  set(Opcode::kSxth, "sxth", OpClass::kAlu);
  set(Opcode::kZxtb, "zxtb", OpClass::kAlu);
  set(Opcode::kZxth, "zxth", OpClass::kAlu);
  set(Opcode::kCmpeq, "cmpeq", OpClass::kAlu);
  set(Opcode::kCmpne, "cmpne", OpClass::kAlu);
  set(Opcode::kCmplt, "cmplt", OpClass::kAlu);
  set(Opcode::kCmple, "cmple", OpClass::kAlu);
  set(Opcode::kCmpgt, "cmpgt", OpClass::kAlu);
  set(Opcode::kCmpge, "cmpge", OpClass::kAlu);
  set(Opcode::kCmpltu, "cmpltu", OpClass::kAlu);
  set(Opcode::kCmpgeu, "cmpgeu", OpClass::kAlu);
  set(Opcode::kSlct, "slct", OpClass::kAlu);
  set(Opcode::kSlctf, "slctf", OpClass::kAlu);
  set(Opcode::kMpyl, "mpyl", OpClass::kMul);
  set(Opcode::kMpyh, "mpyh", OpClass::kMul);
  set(Opcode::kLdw, "ldw", OpClass::kMem);
  set(Opcode::kLdh, "ldh", OpClass::kMem);
  set(Opcode::kLdhu, "ldhu", OpClass::kMem);
  set(Opcode::kLdb, "ldb", OpClass::kMem);
  set(Opcode::kLdbu, "ldbu", OpClass::kMem);
  set(Opcode::kStw, "stw", OpClass::kMem);
  set(Opcode::kSth, "sth", OpClass::kMem);
  set(Opcode::kStb, "stb", OpClass::kMem);
  set(Opcode::kBr, "br", OpClass::kBranch);
  set(Opcode::kBrf, "brf", OpClass::kBranch);
  set(Opcode::kGoto, "goto", OpClass::kBranch);
  set(Opcode::kHalt, "halt", OpClass::kBranch);
  set(Opcode::kSend, "send", OpClass::kComm);
  set(Opcode::kRecv, "recv", OpClass::kComm);
  return t;
}();
}  // namespace

OpClass op_class(Opcode opc) {
  VEXSIM_CHECK(opc < Opcode::kCount);
  return kInfo[static_cast<std::size_t>(opc)].cls;
}

std::string_view opcode_name(Opcode opc) {
  VEXSIM_CHECK(opc < Opcode::kCount);
  return kInfo[static_cast<std::size_t>(opc)].name;
}

Opcode opcode_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kInfo.size(); ++i)
    if (kInfo[i].name == name) return static_cast<Opcode>(i);
  return Opcode::kCount;
}

bool is_load(Opcode opc) {
  return opc == Opcode::kLdw || opc == Opcode::kLdh || opc == Opcode::kLdhu ||
         opc == Opcode::kLdb || opc == Opcode::kLdbu;
}

bool is_store(Opcode opc) {
  return opc == Opcode::kStw || opc == Opcode::kSth || opc == Opcode::kStb;
}

bool is_mem(Opcode opc) { return op_class(opc) == OpClass::kMem; }

bool is_compare(Opcode opc) {
  return opc >= Opcode::kCmpeq && opc <= Opcode::kCmpgeu;
}

bool is_branch(Opcode opc) { return op_class(opc) == OpClass::kBranch; }

bool is_conditional_branch(Opcode opc) {
  return opc == Opcode::kBr || opc == Opcode::kBrf;
}

bool has_dst(Opcode opc) {
  if (opc == Opcode::kNop || is_store(opc) || is_branch(opc) ||
      opc == Opcode::kSend)
    return false;
  return true;
}

bool reads_src1(Opcode opc) {
  switch (opc) {
    case Opcode::kNop:
    case Opcode::kMovi:
    case Opcode::kBr:
    case Opcode::kBrf:
    case Opcode::kGoto:
    case Opcode::kHalt:
    case Opcode::kRecv:
      return false;
    default:
      return true;
  }
}

bool reads_src2(Opcode opc) {
  switch (opc) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd:
    case Opcode::kAndc: case Opcode::kOr: case Opcode::kXor:
    case Opcode::kShl: case Opcode::kShr: case Opcode::kShru:
    case Opcode::kMin: case Opcode::kMax: case Opcode::kMinu:
    case Opcode::kMaxu: case Opcode::kCmpeq: case Opcode::kCmpne:
    case Opcode::kCmplt: case Opcode::kCmple: case Opcode::kCmpgt:
    case Opcode::kCmpge: case Opcode::kCmpltu: case Opcode::kCmpgeu:
    case Opcode::kSlct: case Opcode::kSlctf:
    case Opcode::kMpyl: case Opcode::kMpyh:
      return true;
    default:
      // Stores carry their value in src2 but it is never an immediate.
      return is_store(opc);
  }
}

bool reads_bsrc(Opcode opc) {
  return opc == Opcode::kSlct || opc == Opcode::kSlctf ||
         opc == Opcode::kBr || opc == Opcode::kBrf;
}

bool uses_imm_always(Opcode opc) {
  return opc == Opcode::kMovi || is_mem(opc) || opc == Opcode::kBr ||
         opc == Opcode::kBrf || opc == Opcode::kGoto;
}
int mem_access_size(Opcode opc) {
  switch (opc) {
    case Opcode::kLdw:
    case Opcode::kStw: return 4;
    case Opcode::kLdh:
    case Opcode::kLdhu:
    case Opcode::kSth: return 2;
    case Opcode::kLdb:
    case Opcode::kLdbu:
    case Opcode::kStb: return 1;
    default:
      VEXSIM_CHECK_MSG(false, "not a memory opcode");
  }
  return 0;
}

}  // namespace vexsim
