#include "isa/resources.hpp"

namespace vexsim {

void ResourceUse::add(const Operation& op) {
  ++slots;
  switch (op.cls()) {
    case OpClass::kAlu: ++alu; break;
    case OpClass::kMul: ++mul; break;
    case OpClass::kMem: ++mem; break;
    case OpClass::kBranch: ++br; break;
    case OpClass::kComm:   // network ports are not a merge-limited resource
    case OpClass::kNop:
      break;
  }
}

void ResourceUse::add(const ResourceUse& other) {
  slots = static_cast<std::uint8_t>(slots + other.slots);
  alu = static_cast<std::uint8_t>(alu + other.alu);
  mul = static_cast<std::uint8_t>(mul + other.mul);
  mem = static_cast<std::uint8_t>(mem + other.mem);
  br = static_cast<std::uint8_t>(br + other.br);
}

bool ResourceUse::fits_with(const ResourceUse& extra,
                            const ClusterResourceConfig& limits,
                            int branch_units) const {
  return slots + extra.slots <= limits.issue_slots &&
         alu + extra.alu <= limits.alus && mul + extra.mul <= limits.muls &&
         mem + extra.mem <= limits.mem_units &&
         br + extra.br <= branch_units;
}

ResourceUse bundle_use(const Bundle& bundle, std::uint8_t mask) {
  ResourceUse use;
  for (std::size_t i = 0; i < bundle.size(); ++i)
    if (mask & (1u << i)) use.add(bundle[i]);
  return use;
}

}  // namespace vexsim
