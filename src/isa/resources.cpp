#include "isa/resources.hpp"

#include <algorithm>

namespace vexsim {

namespace {

// Packed lane increment per operation class: every op takes an issue slot;
// comm and nop take nothing else (network ports are not a merge-limited
// resource).
constexpr std::uint64_t kClassUse[] = {
    ResourceUse::pack(1, 0, 0, 0, 0),  // kNop
    ResourceUse::pack(1, 1, 0, 0, 0),  // kAlu
    ResourceUse::pack(1, 0, 1, 0, 0),  // kMul
    ResourceUse::pack(1, 0, 0, 1, 0),  // kMem
    ResourceUse::pack(1, 0, 0, 0, 1),  // kBranch
    ResourceUse::pack(1, 0, 0, 0, 0),  // kComm
};

// Keep a capacity lane inside the SWAR domain: the borrow guard bit is the
// lane's own 0x80, so a capacity >= 0x80 must clamp to 0x7F ("effectively
// unlimited" — no use lane can reach it, see the header static_assert).
constexpr std::uint64_t clamp_lane(int v) {
  return static_cast<std::uint64_t>(std::clamp(v, 0, 0x7F));
}

}  // namespace

void ResourceUse::add(const Operation& op) {
  bits += kClassUse[static_cast<std::size_t>(op.cls())];
}

std::uint64_t ResourceUse::pack_limits(const ClusterResourceConfig& limits,
                                       int branch_units) {
  return (clamp_lane(limits.issue_slots) << (8 * kSlotsLane)) |
         (clamp_lane(limits.alus) << (8 * kAluLane)) |
         (clamp_lane(limits.muls) << (8 * kMulLane)) |
         (clamp_lane(limits.mem_units) << (8 * kMemLane)) |
         (clamp_lane(branch_units) << (8 * kBrLane));
}

ResourceUse bundle_use(const Bundle& bundle, std::uint8_t mask) {
  ResourceUse use;
  for (std::size_t i = 0; i < bundle.size(); ++i)
    if (mask & (1u << i)) use.add(bundle[i]);
  return use;
}

}  // namespace vexsim
