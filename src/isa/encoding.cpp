#include "isa/encoding.hpp"

#include "util/check.hpp"

namespace vexsim {

namespace {
// Field layout within a 64-bit operation word.
//   [7:0]   opcode        [11:8]  cluster      [12]    dst_is_breg
//   [20:13] dst           [28:21] src1         [29]    src2_is_imm
//   [37:30] src2          [41:38] bsrc         [45:42] chan
//   [46]    imm extension word follows         [47]    stop bit
//   [63:48] inline signed 16-bit immediate
constexpr int kOpcodeShift = 0;
constexpr int kClusterShift = 8;
constexpr int kDstBregShift = 12;
constexpr int kDstShift = 13;
constexpr int kSrc1Shift = 21;
constexpr int kSrc2ImmShift = 29;
constexpr int kSrc2Shift = 30;
constexpr int kBsrcShift = 38;
constexpr int kChanShift = 42;
constexpr int kExtShift = 46;
constexpr int kStopShift = 47;
constexpr int kImm16Shift = 48;

bool imm_fits16(std::int32_t v) { return v >= -32768 && v <= 32767; }

std::uint64_t encode_op(const Operation& op, bool stop, bool* needs_ext) {
  std::uint64_t w = 0;
  w |= static_cast<std::uint64_t>(op.opc) << kOpcodeShift;
  w |= static_cast<std::uint64_t>(op.cluster) << kClusterShift;
  w |= static_cast<std::uint64_t>(op.dst_is_breg) << kDstBregShift;
  w |= static_cast<std::uint64_t>(op.dst) << kDstShift;
  w |= static_cast<std::uint64_t>(op.src1) << kSrc1Shift;
  w |= static_cast<std::uint64_t>(op.src2_is_imm) << kSrc2ImmShift;
  w |= static_cast<std::uint64_t>(op.src2) << kSrc2Shift;
  w |= static_cast<std::uint64_t>(op.bsrc) << kBsrcShift;
  w |= static_cast<std::uint64_t>(op.chan) << kChanShift;
  *needs_ext = !imm_fits16(op.imm);
  if (*needs_ext) {
    w |= 1ull << kExtShift;
  } else {
    w |= (static_cast<std::uint64_t>(op.imm) & 0xFFFFull) << kImm16Shift;
  }
  if (stop) w |= 1ull << kStopShift;
  return w;
}

Operation decode_op(std::uint64_t w, bool* stop, bool* has_ext) {
  Operation op;
  op.opc = static_cast<Opcode>((w >> kOpcodeShift) & 0xFF);
  VEXSIM_CHECK(op.opc < Opcode::kCount);
  op.cluster = static_cast<std::uint8_t>((w >> kClusterShift) & 0xF);
  op.dst_is_breg = ((w >> kDstBregShift) & 1) != 0;
  op.dst = static_cast<std::uint8_t>((w >> kDstShift) & 0xFF);
  op.src1 = static_cast<std::uint8_t>((w >> kSrc1Shift) & 0xFF);
  op.src2_is_imm = ((w >> kSrc2ImmShift) & 1) != 0;
  op.src2 = static_cast<std::uint8_t>((w >> kSrc2Shift) & 0xFF);
  op.bsrc = static_cast<std::uint8_t>((w >> kBsrcShift) & 0xF);
  op.chan = static_cast<std::uint8_t>((w >> kChanShift) & 0xF);
  *has_ext = ((w >> kExtShift) & 1) != 0;
  *stop = ((w >> kStopShift) & 1) != 0;
  if (!*has_ext) {
    const auto imm16 = static_cast<std::uint16_t>((w >> kImm16Shift) & 0xFFFF);
    op.imm = static_cast<std::int16_t>(imm16);
  }
  return op;
}
}  // namespace

std::uint32_t encoded_size_bytes(const VliwInstruction& insn) {
  std::uint32_t words = 0;
  insn.for_each_op([&words](const Operation& op) {
    words += imm_fits16(op.imm) ? 1u : 2u;
  });
  if (words == 0) words = 1;  // explicit vertical nop
  return words * 8;
}

void encode(const VliwInstruction& insn, std::vector<std::uint64_t>& out) {
  const int total = insn.op_count();
  if (total == 0) {
    bool ext = false;
    out.push_back(encode_op(Operation{}, /*stop=*/true, &ext));
    return;
  }
  int emitted = 0;
  insn.for_each_op([&](const Operation& op) {
    ++emitted;
    bool needs_ext = false;
    out.push_back(encode_op(op, /*stop=*/emitted == total, &needs_ext));
    if (needs_ext)
      out.push_back(static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(op.imm)));
  });
}

VliwInstruction decode(std::span<const std::uint64_t> words,
                       std::size_t& pos) {
  VliwInstruction insn;
  bool stop = false;
  while (!stop) {
    VEXSIM_CHECK_MSG(pos < words.size(), "truncated instruction stream");
    bool has_ext = false;
    Operation op = decode_op(words[pos++], &stop, &has_ext);
    if (has_ext) {
      VEXSIM_CHECK_MSG(pos < words.size(), "missing immediate extension");
      op.imm = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(words[pos++] & 0xFFFFFFFFull));
    }
    if (!op.is_nop()) insn.add(op);
  }
  return insn;
}

std::vector<std::uint64_t> encode_program(const Program& prog) {
  std::vector<std::uint64_t> out;
  for (const VliwInstruction& insn : prog.code) encode(insn, out);
  return out;
}

std::vector<VliwInstruction> decode_program(
    std::span<const std::uint64_t> words) {
  std::vector<VliwInstruction> code;
  std::size_t pos = 0;
  while (pos < words.size()) code.push_back(decode(words, pos));
  return code;
}

}  // namespace vexsim
