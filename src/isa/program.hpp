// A program: finalized VLIW code plus initial data segments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/decoded_program.hpp"
#include "isa/instruction.hpp"

namespace vexsim {

struct DataSegment {
  std::uint32_t addr = 0;
  std::vector<std::uint8_t> bytes;
};

struct Program {
  std::string name;
  std::vector<VliwInstruction> code;
  std::vector<DataSegment> data;
  std::uint32_t code_base = 0x0000'1000;  // byte address of instruction 0
  std::map<std::uint32_t, std::string> labels;  // instr index -> label
  // Software-pipelined loop spans recorded by the compiler's modulo
  // scheduler (empty for unpipelined programs). finalize() validates the
  // spans and threads them into the decode cache; the verifier replays
  // each kernel cyclically against them.
  std::vector<SoftwarePipelinedLoop> kernels;

  // Derived by finalize(): byte address of each instruction (for the ICache
  // model) computed from the binary encoding sizes, plus the decode cache
  // the simulator hot paths index instead of re-deriving per cycle.
  std::vector<std::uint32_t> instr_addr;
  std::uint32_t code_bytes = 0;
  std::shared_ptr<const DecodedProgram> decoded;

  void finalize();
  [[nodiscard]] bool finalized() const {
    return instr_addr.size() == code.size() && decoded != nullptr &&
           decoded->size() == code.size();
  }

  [[nodiscard]] std::size_t size() const { return code.size(); }

  // Data-segment builders.
  void add_data(std::uint32_t addr, std::vector<std::uint8_t> bytes);
  void add_data_words(std::uint32_t addr,
                      const std::vector<std::uint32_t>& words);

  // Sanity checks: branch targets in range, cluster indices within the given
  // cluster count, register indices in range. Throws CheckError on violation.
  void validate(int num_clusters) const;
};

// Multi-line disassembly with labels and instruction indices.
[[nodiscard]] std::string to_string(const Program& prog);

}  // namespace vexsim
