// Deterministic synthetic-program generator.
//
// Emits an IR function from a SynthSpec and lowers it through the regular
// `cc` compiler pipeline, so every generated program is scheduled,
// register-allocated, and legal for the exact machine it will run on
// (including asymmetric cluster geometries) — the verifier accepts it by
// construction.
//
// Program shape: one outer work loop whose body is a generated dataflow DAG
// of `spec.ops` operations spread over W independent dependence chains,
// where W follows the ILP dial (W = 1 at ilp 0; ≈1.5× the machine's issue
// width at ilp 1, enough to saturate multi-cycle FUs). Each chain carries an
// accumulator across iterations, so sustained ILP ≈ min(W, machine
// throughput). Memory intensity converts chain steps into data-dependent
// pool loads (mcf-style address chasing) and chain-private stores; branch
// density inserts data-dependent taken branches (bzip2-style penalty
// pressure); comm density pins ops to rotating clusters, forcing the
// compiler to materialize send/recv copy pairs.
#pragma once

#include "cc/compiler.hpp"
#include "isa/config.hpp"
#include "isa/program.hpp"
#include "wl_synth/spec.hpp"

namespace vexsim::wl_synth {

// Number of independent dependence chains the ILP dial requests on this
// machine (exposed for tests and diagnostics).
[[nodiscard]] int chain_count(const SynthSpec& spec, const MachineConfig& cfg);

// Generates and compiles the program. Bit-identical output for identical
// (spec, cfg, scale, compiler) — generation draws only on Rng(spec.seed).
// `scale` multiplies the outer trip count like KernelScale does for the
// Figure-13 kernels; `compiler` selects the pass-pipeline variant (a
// spec-level "cc" field overrides it). Throws CheckError if the spec
// cannot compile on `cfg`.
[[nodiscard]] Program generate(const SynthSpec& spec, const MachineConfig& cfg,
                               double scale = 1.0,
                               const cc::CompilerOptions& compiler = {},
                               cc::CompileStats* stats = nullptr);

}  // namespace vexsim::wl_synth
