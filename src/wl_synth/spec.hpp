// Synthetic workload specs.
//
// A SynthSpec is a compact, name-mangled description of a generated program
// ("synth:i0.8-m0.3-s42"): a point on a continuous ILP gradient plus memory,
// branch and inter-cluster-communication dials. Specs parse from the CLI and
// compose into workload mixes anywhere a benchmark name is accepted, which
// is what lets experiments walk scenario spaces the fixed Figure-13 suite
// cannot reach (variable context counts, asymmetric geometries).
//
// Grammar (after the "synth:" prefix, '-'-separated fields, any subset, any
// order; omitted fields take the defaults below):
//   i<float>  target ILP dial in [0,1]: 0 = one serial dependence chain,
//             1 = enough independent chains to saturate the machine
//   m<float>  memory intensity in [0,1]: fraction of body work that is
//             data-dependent loads/stores
//   b<float>  branch density in [0,1]: data-dependent taken branches per
//             body operation
//   c<float>  inter-cluster communication density in [0,1]: fraction of ops
//             pinned to a random cluster (forces send/recv copies)
//   p<float>  pipeline-parallel fraction in [0,1]: fraction of body steps
//             that compute induction-derived work independent of the
//             loop-carried accumulators (folded in with a single ALU op),
//             which leaves the recurrence short and gives the modulo
//             scheduler II headroom; 0 (default) keeps every step on the
//             accumulator chain
//   n<int>    dataflow operations per loop iteration, in [8, 4096]
//   s<int>    generator seed (decimal, unsigned 64-bit)
//   f<int>    data footprint in KiB: the size of the read-only pool the
//             memory ops touch. Power of two in [4, 1024]; the default 64
//             mostly hits in the paper's 64 KB D-cache, larger footprints
//             turn the m-dial into real miss pressure (cache-hostile)
//   st<int>   load stride in bytes, multiple of 4 in [0, 65536]: 0 (the
//             default) keeps the data-dependent pointer chase; a positive
//             stride replaces it with a strided pool walk (bank/row
//             locality in the DRAM model is then dialable)
//   cc<name>  compiler pass-pipeline variant for this component (greedy,
//             cost, cost_swp, greedy_swp, or a pipe0..pipe3 alias);
//             omitted = the experiment-wide compiler options apply
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "cc/options.hpp"

namespace vexsim::wl_synth {

inline constexpr std::string_view kSynthPrefix = "synth:";

struct SynthSpec {
  double ilp = 0.5;             // i
  double mem_intensity = 0.1;   // m
  double branch_density = 0.0;  // b
  double comm_density = 0.0;    // c
  double parallel_fraction = 0.0;  // p (omitted from the name when 0)
  int ops = 64;                 // n
  std::uint64_t seed = 1;       // s
  int footprint_kib = 64;       // f (omitted from the name when 64)
  int stride = 0;               // st (omitted from the name when 0)
  // Per-component compiler override ("cc" field). When absent the
  // component compiles with the experiment-wide CompilerOptions, so a
  // spec's canonical name only pins the compiler when the spec does.
  bool has_compiler = false;    // cc
  cc::CompilerOptions compiler;

  // Canonical full mangling ("synth:i0.5-m0.1-b0-c0-n64-s1", plus
  // "-cc<variant>" when the compiler override is set), dials in their
  // shortest exactly-round-tripping decimal form. parse(name())
  // reproduces the spec bit-for-bit; keys benchmark caches and sweep
  // labels, so distinct specs never alias.
  [[nodiscard]] std::string name() const;

  friend bool operator==(const SynthSpec&, const SynthSpec&) = default;
};

// True when `name` carries the "synth:" prefix (it may still fail to parse).
[[nodiscard]] bool is_synth_name(const std::string& name);

// Parses a mangled spec. Throws CheckError (quoting the grammar) on an
// unknown field, a malformed number, or an out-of-range value.
[[nodiscard]] SynthSpec parse_spec(const std::string& name);

}  // namespace vexsim::wl_synth
