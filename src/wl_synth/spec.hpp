// Synthetic workload specs.
//
// A SynthSpec is a compact, name-mangled description of a generated program
// ("synth:i0.8-m0.3-s42"): a point on a continuous ILP gradient plus memory,
// branch and inter-cluster-communication dials. Specs parse from the CLI and
// compose into workload mixes anywhere a benchmark name is accepted, which
// is what lets experiments walk scenario spaces the fixed Figure-13 suite
// cannot reach (variable context counts, asymmetric geometries).
//
// Grammar (after the "synth:" prefix, '-'-separated fields, any subset, any
// order; omitted fields take the defaults below):
//   i<float>  target ILP dial in [0,1]: 0 = one serial dependence chain,
//             1 = enough independent chains to saturate the machine
//   m<float>  memory intensity in [0,1]: fraction of body work that is
//             data-dependent loads/stores
//   b<float>  branch density in [0,1]: data-dependent taken branches per
//             body operation
//   c<float>  inter-cluster communication density in [0,1]: fraction of ops
//             pinned to a random cluster (forces send/recv copies)
//   n<int>    dataflow operations per loop iteration, in [8, 4096]
//   s<int>    generator seed (decimal, unsigned 64-bit)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace vexsim::wl_synth {

inline constexpr std::string_view kSynthPrefix = "synth:";

struct SynthSpec {
  double ilp = 0.5;             // i
  double mem_intensity = 0.1;   // m
  double branch_density = 0.0;  // b
  double comm_density = 0.0;    // c
  int ops = 64;                 // n
  std::uint64_t seed = 1;       // s

  // Canonical full mangling ("synth:i0.5-m0.1-b0-c0-n64-s1"), dials in
  // their shortest exactly-round-tripping decimal form. parse(name())
  // reproduces the spec bit-for-bit; keys benchmark caches and sweep
  // labels, so distinct specs never alias.
  [[nodiscard]] std::string name() const;

  friend bool operator==(const SynthSpec&, const SynthSpec&) = default;
};

// True when `name` carries the "synth:" prefix (it may still fail to parse).
[[nodiscard]] bool is_synth_name(const std::string& name);

// Parses a mangled spec. Throws CheckError (quoting the grammar) on an
// unknown field, a malformed number, or an out-of-range value.
[[nodiscard]] SynthSpec parse_spec(const std::string& name);

}  // namespace vexsim::wl_synth
