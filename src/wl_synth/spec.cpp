#include "wl_synth/spec.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace vexsim::wl_synth {

namespace {

constexpr int kMinOps = 8;
constexpr int kMaxOps = 4096;

[[noreturn]] void bad_spec(const std::string& name, const std::string& why) {
  VEXSIM_CHECK_MSG(false, "bad synthetic spec '"
                              << name << "': " << why
                              << " (grammar: synth:i<ilp>-m<mem>-b<branch>-"
                                 "c<comm>-p<parallel>-n<ops>-s<seed>-"
                                 "f<kib>-st<stride>-cc<compiler>, fields "
                                 "optional, i/m/b/c/p in [0,1], n in ["
                              << kMinOps << "," << kMaxOps
                              << "], f a power of two in [4,1024], st a "
                                 "multiple of 4 in [0,65536])");
  std::abort();  // unreachable: the check above throws
}

// Shortest decimal form that parses back to exactly `v`: canonical names
// must round-trip (a lossy mangling would alias distinct specs onto one
// cache entry), yet stay readable for the common short-decimal dials.
std::string format_dial(double v) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    if (std::strtod(os.str().c_str(), nullptr) == v) return os.str();
  }
  return std::to_string(v);  // unreachable: 17 digits round-trip any double
}

double parse_fraction(const std::string& name, char key,
                      const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + text.size() || text.empty())
    bad_spec(name, std::string("malformed value for '") + key + "'");
  if (!(v >= 0.0 && v <= 1.0))
    bad_spec(name, std::string("'") + key + "' out of [0,1]");
  return v;
}

std::uint64_t parse_uint(const std::string& name, const std::string& key,
                         const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(begin, &end, 10);
  if (end != begin + text.size() || text.empty())
    bad_spec(name, "malformed value for '" + key + "'");
  return v;
}

}  // namespace

std::string SynthSpec::name() const {
  std::ostringstream os;
  os << kSynthPrefix << "i" << format_dial(ilp) << "-m"
     << format_dial(mem_intensity) << "-b" << format_dial(branch_density)
     << "-c" << format_dial(comm_density);
  // Later dials stay out of the canonical name at their defaults so names
  // minted before the dial existed keep their cache identity.
  if (parallel_fraction != 0.0) os << "-p" << format_dial(parallel_fraction);
  os << "-n" << ops << "-s" << seed;
  if (footprint_kib != 64) os << "-f" << footprint_kib;
  if (stride != 0) os << "-st" << stride;
  if (has_compiler) os << "-cc" << compiler.name();
  return os.str();
}

bool is_synth_name(const std::string& name) {
  return name.rfind(kSynthPrefix, 0) == 0;
}

SynthSpec parse_spec(const std::string& name) {
  if (!is_synth_name(name)) bad_spec(name, "missing 'synth:' prefix");
  const std::string body = name.substr(kSynthPrefix.size());
  if (body.empty()) bad_spec(name, "empty spec");

  SynthSpec spec;
  std::string seen_keys;  // every key may appear at most once
  std::size_t pos = 0;
  int field_index = 0;
  while (pos <= body.size()) {
    const std::size_t dash = body.find('-', pos);
    const std::string field =
        body.substr(pos, dash == std::string::npos ? dash : dash - pos);
    pos = dash == std::string::npos ? body.size() + 1 : dash + 1;
    ++field_index;
    // A zero-length field means a consecutive or trailing '-'; a one-char
    // field is a key with no value. Name the spot so "i0.8--m0.3" and
    // "i0.8-" are diagnosable at a glance.
    if (field.empty())
      bad_spec(name, "empty field #" + std::to_string(field_index) +
                         " (consecutive or trailing '-')");
    if (field.size() < 2)
      bad_spec(name, "missing value for field '" + field + "'");
    // Two-character "cc" key (compiler variant) before the single-char
    // dials; 'C' marks it in the duplicate-key tracker.
    if (field.size() >= 2 && field[0] == 'c' && field[1] == 'c') {
      if (seen_keys.find('C') != std::string::npos)
        bad_spec(name, "duplicate field 'cc' (earlier value would be "
                       "silently overridden)");
      seen_keys += 'C';
      if (field.size() == 2) bad_spec(name, "missing value for field 'cc'");
      try {
        spec.compiler = cc::CompilerOptions::parse(field.substr(2));
      } catch (const CheckError&) {
        bad_spec(name, "unknown compiler variant '" + field.substr(2) +
                           "' for field 'cc' (valid: " +
                           cc::compiler_variant_names() + ")");
      }
      spec.has_compiler = true;
      continue;
    }
    // Two-character "st" key (load stride) likewise precedes the single-char
    // dials — "st256" must not parse as seed "t256"; 'S' marks it.
    if (field.size() >= 2 && field[0] == 's' && field[1] == 't') {
      if (seen_keys.find('S') != std::string::npos)
        bad_spec(name, "duplicate field 'st' (earlier value would be "
                       "silently overridden)");
      seen_keys += 'S';
      if (field.size() == 2) bad_spec(name, "missing value for field 'st'");
      const std::uint64_t v = parse_uint(name, "st", field.substr(2));
      if (v > 65536 || v % 4 != 0)
        bad_spec(name, "'st' must be a multiple of 4 in [0,65536]");
      spec.stride = static_cast<int>(v);
      continue;
    }
    const char key = field[0];
    if (seen_keys.find(key) != std::string::npos)
      bad_spec(name, std::string("duplicate field '") + key +
                         "' (earlier value would be silently overridden)");
    seen_keys += key;
    const std::string value = field.substr(1);
    switch (key) {
      case 'i': spec.ilp = parse_fraction(name, key, value); break;
      case 'm': spec.mem_intensity = parse_fraction(name, key, value); break;
      case 'b': spec.branch_density = parse_fraction(name, key, value); break;
      case 'c': spec.comm_density = parse_fraction(name, key, value); break;
      case 'p':
        spec.parallel_fraction = parse_fraction(name, key, value);
        break;
      case 'n': {
        const std::uint64_t v = parse_uint(name, std::string(1, key), value);
        if (v < static_cast<std::uint64_t>(kMinOps) ||
            v > static_cast<std::uint64_t>(kMaxOps))
          bad_spec(name, "'n' out of range");
        spec.ops = static_cast<int>(v);
        break;
      }
      case 's': spec.seed = parse_uint(name, std::string(1, key), value); break;
      case 'f': {
        const std::uint64_t v = parse_uint(name, std::string(1, key), value);
        if (v < 4 || v > 1024 || (v & (v - 1)) != 0)
          bad_spec(name, "'f' must be a power of two in [4,1024]");
        spec.footprint_kib = static_cast<int>(v);
        break;
      }
      default:
        bad_spec(name, std::string("unknown field '") + key + "'");
    }
  }
  return spec;
}

}  // namespace vexsim::wl_synth
