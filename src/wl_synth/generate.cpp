#include "wl_synth/generate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cc/compiler.hpp"
#include "cc/verifier.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace vexsim::wl_synth {

namespace {

// Read-only pool the memory ops touch. The default 64 KiB (f-dial) gives
// address entropy while mostly hitting in the paper's 64 KB D-cache (memory
// intensity then dials latency exposure, not miss rate); larger footprints
// (up to the 1 MiB gap below kOutBase) make the m-dial cache-hostile.
constexpr std::uint32_t kPoolBase = 0x0060'0000;
constexpr std::uint32_t kOutBase = 0x0070'0000;
constexpr int kOutBytesPerChain = 256;

std::vector<std::uint32_t> pool_words(std::uint64_t seed,
                                      std::uint32_t pool_bytes) {
  Rng rng(seed ^ 0xA5A5'5A5A'D1CE'BEEFull);
  std::vector<std::uint32_t> words(pool_bytes / 4);
  for (auto& w : words) w = rng.next_u32();
  return words;
}

}  // namespace

int chain_count(const SynthSpec& spec, const MachineConfig& cfg) {
  const int width = cfg.total_issue_width();
  // 1.5× width at the top of the dial: the 2-cycle mul/mem latencies mean a
  // single chain sustains < 1 op/cycle, so saturation needs spare chains.
  const int peak = std::max(1, static_cast<int>(std::lround(1.5 * width)));
  int chains = 1 + static_cast<int>(std::lround(spec.ilp * (peak - 1)));
  // Every chain should receive work each iteration, and the per-chain
  // accumulators (globals) must not exhaust the register files.
  chains = std::min(chains, spec.ops);
  chains = std::min(chains, cfg.clusters * (kNumGprs / 4));
  return std::max(1, chains);
}

Program generate(const SynthSpec& spec, const MachineConfig& cfg,
                 double scale, const cc::CompilerOptions& compiler,
                 cc::CompileStats* stats) {
  // A spec-level "cc" field pins this component's compiler regardless of
  // the experiment-wide options.
  const cc::CompilerOptions copt =
      spec.has_compiler ? spec.compiler : compiler;
  using cc::Builder;
  using cc::VReg;

  const int chains = chain_count(spec, cfg);
  const int n_ops = spec.ops;
  // f-dial: pool size in bytes; the mask form relies on the power-of-two
  // constraint parse_spec enforces. f64 (the default) reproduces the
  // pre-dial pool bit for bit.
  const auto pool_bytes = static_cast<std::uint32_t>(spec.footprint_kib) * 1024;
  const auto pool_mask = static_cast<std::int32_t>(pool_bytes - 4);
  Rng rng(spec.seed);

  Builder b(spec.name());

  // Loop invariants (single definition, cross-block uses are fine).
  const VReg pool = b.movi(static_cast<std::int32_t>(kPoolBase));
  const VReg out = b.movi(static_cast<std::int32_t>(kOutBase));
  std::vector<VReg> invariants;
  for (int i = 0; i < 4; ++i)
    invariants.push_back(b.movi(static_cast<std::int32_t>(rng.next_u32())));

  // Per-chain accumulators, carried across iterations.
  std::vector<VReg> acc;
  acc.reserve(static_cast<std::size_t>(chains));
  for (int k = 0; k < chains; ++k) {
    const VReg a = b.fresh_global();
    b.assign_i(a, static_cast<std::int32_t>(rng.next_u32()));
    acc.push_back(a);
  }
  // st-dial: per-chain walk pointers (pool offsets), loop-carried like the
  // accumulators. Created only under a positive stride so st=0 specs keep
  // the exact pre-dial VReg and Rng streams (and therefore their programs).
  std::vector<VReg> sptr;
  if (spec.stride > 0) {
    sptr.reserve(static_cast<std::size_t>(chains));
    for (int k = 0; k < chains; ++k) {
      const VReg p = b.fresh_global();
      // Chains start one stride apart so they stream through disjoint lines.
      b.assign_i(p, static_cast<std::int32_t>(
                        (static_cast<std::uint32_t>(k) *
                         static_cast<std::uint32_t>(spec.stride)) &
                        static_cast<std::uint32_t>(pool_mask)));
      sptr.push_back(p);
    }
  }
  const VReg outer = b.fresh_global();
  const int trips =
      std::max(1, static_cast<int>(std::lround(600.0 * scale)));
  b.assign_i(outer, trips);

  const int head = b.new_block();
  b.jump(head);
  b.switch_to(head);

  // Body: walk the chains round-robin until the op budget is consumed.
  std::vector<VReg> cur = acc;
  std::vector<VReg> pcur = sptr;
  const int branch_sites =
      static_cast<int>(std::lround(spec.branch_density * n_ops));
  const int branch_spacing =
      branch_sites > 0 ? std::max(1, n_ops / (branch_sites + 1)) : 0;
  int emitted = 0;
  int branches_done = 0;
  int step = 0;
  while (emitted < n_ops) {
    const auto k = static_cast<std::size_t>(step % chains);
    ++step;
    // Comm density: pin this step to a rotating cluster so its chain hops
    // across the machine and the compiler must insert send/recv copies.
    const int cl = rng.chance(spec.comm_density)
                       ? static_cast<int>(
                             rng.below(static_cast<std::uint32_t>(cfg.clusters)))
                       : -1;
    if (spec.parallel_fraction > 0.0 && rng.chance(spec.parallel_fraction)) {
      // Pipeline-parallel step: work seeded by the loop counter (an
      // induction value, replicated across clusters), independent of the
      // accumulator until a single fold at the end. The recurrence stays
      // one ALU op per fold while the multiply/load chain hangs off it —
      // the shape that gives modulo scheduling its II headroom. The
      // chance() guard is short-circuited so p=0 specs keep the exact
      // pre-dial Rng stream (and therefore their programs).
      const VReg seeded = b.mpyi(
          outer, static_cast<std::int32_t>(rng.below(61) * 2 + 3), cl);
      const VReg mixed =
          b.alu(Opcode::kXor, seeded,
                invariants[rng.below(
                    static_cast<std::uint32_t>(invariants.size()))],
                cl);
      VReg val = mixed;
      if (rng.chance(spec.mem_intensity)) {
        const VReg masked = b.alui(Opcode::kAnd, mixed, pool_mask, cl);
        const VReg addr = b.alu(Opcode::kAdd, pool, masked, cl);
        val = b.load(Opcode::kLdw, addr, 0, cc::kMemSpaceReadOnly, cl);
        emitted += 3;
      }
      cur[k] = b.alu(Opcode::kXor, cur[k], val, cl);
      emitted += 3;
    } else if (rng.chance(spec.mem_intensity)) {
      if (rng.chance(0.25)) {
        // Chain-private output stream: disjoint address range and mem space
        // per chain, so stores of different chains neither alias nor carry
        // ordering edges between them.
        const std::int32_t off = static_cast<std::int32_t>(
            static_cast<int>(k) * kOutBytesPerChain +
            static_cast<int>(rng.below(kOutBytesPerChain / 4)) * 4);
        b.store(Opcode::kStw, out, off, cur[k],
                1 + static_cast<int>(k), cl);
        emitted += 1;
      } else if (spec.stride > 0) {
        // Strided pool walk (st-dial): advance the chain's pointer by the
        // stride, wrap into the pool, load, fold in. The address sequence is
        // regular — consecutive visits march through the pool — so DRAM
        // bank/row locality follows the stride instead of the chase's
        // effectively random pattern.
        const VReg stepped = b.alui(Opcode::kAdd, pcur[k],
                                    static_cast<std::int32_t>(spec.stride),
                                    cl);
        const VReg wrapped = b.alui(Opcode::kAnd, stepped, pool_mask, cl);
        const VReg addr = b.alu(Opcode::kAdd, pool, wrapped, cl);
        const VReg val =
            b.load(Opcode::kLdw, addr, 0, cc::kMemSpaceReadOnly, cl);
        cur[k] = b.alu(Opcode::kXor, cur[k], val, cl);
        pcur[k] = wrapped;
        emitted += 5;
      } else {
        // Data-dependent address chase: mask the accumulator into the pool,
        // load, fold the value back in (the load sits on the chain's
        // critical path, like mcf's arc scans).
        const VReg masked = b.alui(Opcode::kAnd, cur[k], pool_mask, cl);
        const VReg addr = b.alu(Opcode::kAdd, pool, masked, cl);
        const VReg val =
            b.load(Opcode::kLdw, addr, 0, cc::kMemSpaceReadOnly, cl);
        cur[k] = b.alu(Opcode::kXor, cur[k], val, cl);
        emitted += 4;
      }
    } else if (rng.chance(0.18)) {
      cur[k] = rng.chance(0.5)
                   ? b.mpy(cur[k],
                           invariants[rng.below(static_cast<std::uint32_t>(
                               invariants.size()))],
                           cl)
                   : b.mpyi(cur[k],
                            static_cast<std::int32_t>(rng.below(61) * 2 + 3),
                            cl);
      emitted += 1;
    } else {
      static constexpr Opcode kAluOps[] = {Opcode::kAdd, Opcode::kSub,
                                           Opcode::kXor, Opcode::kOr};
      const Opcode opc = kAluOps[rng.below(4)];
      cur[k] = rng.chance(0.7)
                   ? b.alui(opc, cur[k],
                            static_cast<std::int32_t>(rng.next_u32() & 0xFFFF),
                            cl)
                   : b.alu(opc, cur[k],
                           invariants[rng.below(static_cast<std::uint32_t>(
                               invariants.size()))],
                           cl);
      emitted += 1;
    }
    // Branch density: a data-dependent branch whose taken and fall-through
    // paths are the same next block — pure (unpredictable) taken-branch
    // penalty pressure, no divergent state.
    if (branches_done < branch_sites &&
        emitted >= (branches_done + 1) * branch_spacing) {
      const VReg bit = b.alui(Opcode::kAnd, cur[k], 1);
      const VReg cond = b.cmpi_b(Opcode::kCmpeq, bit, 1);
      const int next = b.new_block();
      b.branch(cond, next);
      b.switch_to(next);
      ++branches_done;
    }
  }

  // Loop-carried updates and back edge.
  for (std::size_t k = 0; k < acc.size(); ++k)
    if (cur[k] != acc[k]) b.assign(acc[k], cur[k]);
  for (std::size_t k = 0; k < sptr.size(); ++k)
    if (pcur[k] != sptr[k]) b.assign(sptr[k], pcur[k]);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, head);

  // Epilogue: reduce the accumulators and publish the result.
  const int fin = b.new_block();
  b.switch_to(fin);
  VReg sum = acc[0];
  for (std::size_t k = 1; k < acc.size(); ++k)
    sum = b.alu(Opcode::kAdd, sum, acc[k]);
  b.store(Opcode::kStw, out, 0, sum);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, copt, stats);
  prog.add_data_words(kPoolBase, pool_words(spec.seed, pool_bytes));
  prog.finalize();
  // Belt and braces: generation happens once per (spec, cfg, scale) thanks
  // to the registry memo, so static verification is effectively free.
  cc::verify_or_throw(prog, cfg);
  return prog;
}

}  // namespace vexsim::wl_synth
