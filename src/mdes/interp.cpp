#include "mdes/interp.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace vexsim::mdes {

Value Value::integer(std::int64_t v) {
  Value out;
  out.kind = Kind::kInt;
  out.i = v;
  return out;
}
Value Value::real(double v) {
  Value out;
  out.kind = Kind::kDouble;
  out.d = v;
  return out;
}
Value Value::boolean(bool v) {
  Value out;
  out.kind = Kind::kBool;
  out.b = v;
  return out;
}
Value Value::string(std::string v) {
  Value out;
  out.kind = Kind::kString;
  out.s = std::move(v);
  return out;
}

double Value::as_double() const {
  return kind == Kind::kInt ? static_cast<double>(i) : d;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "nan";
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string Value::str() const {
  switch (kind) {
    case Kind::kInt: return std::to_string(i);
    case Kind::kDouble: return format_double(d);
    case Kind::kBool: return b ? "true" : "false";
    case Kind::kString: return s;
  }
  return "";
}

const char* Value::kind_name() const {
  switch (kind) {
    case Kind::kInt: return "int";
    case Kind::kDouble: return "double";
    case Kind::kBool: return "bool";
    case Kind::kString: return "string";
  }
  return "?";
}

void Interp::bind(const std::string& name, Value v) {
  for (auto& [existing, value] : bindings_) {
    if (existing == name) {
      value = std::move(v);
      return;
    }
  }
  bindings_.emplace_back(name, std::move(v));
}

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

// Recursive-descent evaluator over one raw value text. Evaluation errors
// throw EvalError internally (caught at the eval() boundary and converted
// into a diagnostic at the entry's location) so deep recursion unwinds
// cleanly; $(var) resolution tracks the in-progress name stack to turn
// reference cycles into errors instead of infinite recursion.
class Evaluator {
 public:
  struct EvalError {
    std::string message;
  };

  Evaluator(const Interp& interp, std::vector<std::string>& visiting)
      : interp_(interp), visiting_(visiting) {}

  Value eval_full(const std::string& text) {
    text_ = &text;
    pos_ = 0;
    skip_ws();
    const Value v = parse_expr();
    skip_ws();
    if (pos_ != text.size())
      throw EvalError{"trailing characters '" + text.substr(pos_) + "' in '" +
                      text + "'"};
    return v;
  }

 private:
  Value parse_expr() {
    Value lhs = parse_term();
    for (;;) {
      skip_ws();
      if (peek() == '+' || peek() == '-') {
        const char op = take();
        const Value rhs = parse_term();
        lhs = arith(lhs, rhs, op);
      } else {
        return lhs;
      }
    }
  }

  Value parse_term() {
    Value lhs = parse_factor();
    for (;;) {
      skip_ws();
      if (peek() == '*' || peek() == '/') {
        const char op = take();
        const Value rhs = parse_factor();
        lhs = arith(lhs, rhs, op);
      } else {
        return lhs;
      }
    }
  }

  Value parse_factor() {
    skip_ws();
    if (pos_ >= text_->size())
      throw EvalError{"expression ends where a value was expected"};
    const char c = peek();
    if (c == '(') {
      take();
      const Value v = parse_expr();
      skip_ws();
      expect(')');
      return v;
    }
    if (c == '-') {
      take();
      const Value v = parse_factor();
      require_number(v, "unary '-'");
      return v.kind == Value::Kind::kInt ? Value::integer(-v.i)
                                         : Value::real(-v.d);
    }
    if (c == '$') return parse_var();
    if (c == '\'' || c == '"') return parse_string();
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.')
      return parse_number();
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_')
      return parse_word();
    throw EvalError{std::string("unexpected character '") + c + "'"};
  }

  Value parse_var() {
    expect('$');
    expect('(');
    std::string name;
    while (pos_ < text_->size() && is_ident_char((*text_)[pos_]))
      name += take();
    expect(')');
    if (name.empty()) throw EvalError{"empty $() variable reference"};
    return resolve(name);
  }

  Value resolve(const std::string& name) {
    for (const auto& [bound, value] : interp_.bindings_)
      if (bound == name) return value;
    const Entry* entry = interp_.file_->global().find(name);
    if (entry == nullptr)
      throw EvalError{"unknown variable $(" + name + ")"};
    for (const std::string& open : visiting_) {
      if (open == name) {
        std::string chain;
        for (const std::string& v : visiting_) chain += "$(" + v + ") -> ";
        throw EvalError{"cyclic variable reference " + chain + "$(" + name +
                        ")"};
      }
    }
    visiting_.push_back(name);
    Evaluator nested(interp_, visiting_);
    const Value v = nested.eval_full(entry->value);
    visiting_.pop_back();
    return v;
  }

  Value parse_string() {
    const char quote = take();
    std::string out;
    for (;;) {
      if (pos_ >= text_->size())
        throw EvalError{"unterminated string literal"};
      const char c = take();
      if (c == quote) break;
      if (c == '$' && peek() == '(') {
        --pos_;  // re-read the '$(' as a variable reference
        const Value v = parse_var();
        out += v.str();  // textual splice, like SESC's $(var) in values
      } else {
        out += c;
      }
    }
    return Value::string(std::move(out));
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    while (pos_ < text_->size()) {
      const char c = (*text_)[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.') {
        is_double = true;
        ++pos_;
      } else if (c == 'e' || c == 'E') {
        is_double = true;
        ++pos_;
        if (pos_ < text_->size() &&
            ((*text_)[pos_] == '+' || (*text_)[pos_] == '-'))
          ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_->substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE)
        throw EvalError{"integer '" + token + "' overflows"};
      if (end == nullptr || *end != '\0')
        throw EvalError{"malformed number '" + token + "'"};
      return Value::integer(v);
    }
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v))
      throw EvalError{"malformed number '" + token + "'"};
    return Value::real(v);
  }

  Value parse_word() {
    std::string word;
    while (pos_ < text_->size() && is_ident_char((*text_)[pos_]))
      word += take();
    if (word == "true") return Value::boolean(true);
    if (word == "false") return Value::boolean(false);
    if (word == "repeat") return parse_repeat();
    throw EvalError{"unknown word '" + word +
                    "' (expected true, false, repeat(...), a number, a "
                    "'string', or $(var))"};
  }

  // repeat('component-s@', n): n copies joined with '+', '@' replaced by
  // the 1-based copy index — per-context synthetic workload mixes.
  Value parse_repeat() {
    skip_ws();
    expect('(');
    const Value body = parse_expr();
    if (body.kind != Value::Kind::kString)
      throw EvalError{"repeat() needs a string first argument"};
    skip_ws();
    expect(',');
    const Value count = parse_expr();
    if (count.kind != Value::Kind::kInt || count.i < 1 || count.i > 1024)
      throw EvalError{"repeat() count must be an int in [1, 1024]"};
    skip_ws();
    expect(')');
    std::string out;
    for (std::int64_t k = 1; k <= count.i; ++k) {
      if (k > 1) out += '+';
      for (const char c : body.s) {
        if (c == '@')
          out += std::to_string(k);
        else
          out += c;
      }
    }
    return Value::string(std::move(out));
  }

  Value arith(const Value& lhs, const Value& rhs, char op) {
    require_number(lhs, std::string("'") + op + "'");
    require_number(rhs, std::string("'") + op + "'");
    const bool ints =
        lhs.kind == Value::Kind::kInt && rhs.kind == Value::Kind::kInt;
    switch (op) {
      case '+':
        return ints ? Value::integer(lhs.i + rhs.i)
                    : Value::real(lhs.as_double() + rhs.as_double());
      case '-':
        return ints ? Value::integer(lhs.i - rhs.i)
                    : Value::real(lhs.as_double() - rhs.as_double());
      case '*':
        return ints ? Value::integer(lhs.i * rhs.i)
                    : Value::real(lhs.as_double() * rhs.as_double());
      case '/':
        if (ints) {
          if (rhs.i == 0) throw EvalError{"division by zero"};
          // Exact quotients stay int (64*1024/16); inexact ones promote so
          // $(issue)/2 never silently truncates.
          if (lhs.i % rhs.i == 0) return Value::integer(lhs.i / rhs.i);
          return Value::real(static_cast<double>(lhs.i) /
                             static_cast<double>(rhs.i));
        }
        if (rhs.as_double() == 0.0) throw EvalError{"division by zero"};
        return Value::real(lhs.as_double() / rhs.as_double());
      default: throw EvalError{"bad operator"};
    }
  }

  static void require_number(const Value& v, const std::string& where) {
    if (!v.is_number())
      throw EvalError{std::string(v.kind_name()) + " value '" + v.str() +
                      "' used in arithmetic (" + where + ")"};
  }

  char peek() const { return pos_ < text_->size() ? (*text_)[pos_] : '\0'; }
  char take() { return (*text_)[pos_++]; }
  void expect(char c) {
    if (peek() != c)
      throw EvalError{std::string("expected '") + c + "'" +
                      (pos_ < text_->size()
                           ? std::string(", found '") + peek() + "'"
                           : std::string(" at end of value"))};
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_->size() &&
           std::isspace(static_cast<unsigned char>((*text_)[pos_])) != 0)
      ++pos_;
  }

  const Interp& interp_;
  std::vector<std::string>& visiting_;
  const std::string* text_ = nullptr;
  std::size_t pos_ = 0;
};

std::optional<Value> Interp::eval(const std::string& raw,
                                  const SourceLoc& loc,
                                  Diagnostics& diags) const {
  std::vector<std::string> visiting;
  Evaluator ev(*this, visiting);
  try {
    return ev.eval_full(raw);
  } catch (const Evaluator::EvalError& e) {
    diags.add(loc, e.message);
    return std::nullopt;
  }
}

std::optional<std::int64_t> Interp::eval_int(const std::string& raw,
                                             const SourceLoc& loc,
                                             Diagnostics& diags) const {
  const auto v = eval(raw, loc, diags);
  if (!v) return std::nullopt;
  if (v->kind != Value::Kind::kInt) {
    diags.add(loc, std::string("expected an int, got ") + v->kind_name() +
                       " '" + v->str() + "'");
    return std::nullopt;
  }
  return v->i;
}

std::optional<double> Interp::eval_double(const std::string& raw,
                                          const SourceLoc& loc,
                                          Diagnostics& diags) const {
  const auto v = eval(raw, loc, diags);
  if (!v) return std::nullopt;
  if (!v->is_number()) {
    diags.add(loc, std::string("expected a number, got ") + v->kind_name() +
                       " '" + v->str() + "'");
    return std::nullopt;
  }
  return v->as_double();
}

std::optional<bool> Interp::eval_bool(const std::string& raw,
                                      const SourceLoc& loc,
                                      Diagnostics& diags) const {
  const auto v = eval(raw, loc, diags);
  if (!v) return std::nullopt;
  if (v->kind != Value::Kind::kBool) {
    diags.add(loc, std::string("expected true/false, got ") + v->kind_name() +
                       " '" + v->str() + "'");
    return std::nullopt;
  }
  return v->b;
}

std::optional<std::string> Interp::eval_string(const std::string& raw,
                                               const SourceLoc& loc,
                                               Diagnostics& diags) const {
  const auto v = eval(raw, loc, diags);
  if (!v) return std::nullopt;
  if (v->kind != Value::Kind::kString) {
    diags.add(loc, std::string("expected a 'string', got ") + v->kind_name() +
                       " '" + v->str() + "'");
    return std::nullopt;
  }
  return v->s;
}

SectionReader::SectionReader(const Interp& interp, const Section& section,
                             Diagnostics& diags)
    : interp_(&interp),
      section_(&section),
      diags_(&diags),
      consumed_(section.entries.size(), false) {}

const Entry* SectionReader::take(const std::string& key) {
  for (std::size_t i = 0; i < section_->entries.size(); ++i) {
    const Entry& e = section_->entries[i];
    if (e.index.empty() && e.key == key) {
      consumed_[i] = true;
      return &e;
    }
  }
  return nullptr;
}

std::int64_t SectionReader::get_int(const std::string& key, std::int64_t def) {
  const Entry* e = take(key);
  if (e == nullptr) return def;
  return interp_->eval_int(e->value, e->loc, *diags_).value_or(def);
}

double SectionReader::get_double(const std::string& key, double def) {
  const Entry* e = take(key);
  if (e == nullptr) return def;
  return interp_->eval_double(e->value, e->loc, *diags_).value_or(def);
}

bool SectionReader::get_bool(const std::string& key, bool def) {
  const Entry* e = take(key);
  if (e == nullptr) return def;
  return interp_->eval_bool(e->value, e->loc, *diags_).value_or(def);
}

std::string SectionReader::get_string(const std::string& key,
                                      std::string def) {
  const Entry* e = take(key);
  if (e == nullptr) return def;
  return interp_->eval_string(e->value, e->loc, *diags_).value_or(def);
}

std::optional<std::string> SectionReader::get_string_opt(
    const std::string& key) {
  const Entry* e = take(key);
  if (e == nullptr) return std::nullopt;
  return interp_->eval_string(e->value, e->loc, *diags_);
}

std::optional<std::int64_t> SectionReader::get_int_opt(
    const std::string& key) {
  const Entry* e = take(key);
  if (e == nullptr) return std::nullopt;
  return interp_->eval_int(e->value, e->loc, *diags_);
}

int SectionReader::get_int_in(const std::string& key, int def, int lo,
                              int hi) {
  const Entry* e = take(key);
  if (e == nullptr) return def;
  const auto v = interp_->eval_int(e->value, e->loc, *diags_);
  if (!v) return def;
  if (*v < lo || *v > hi) {
    std::ostringstream os;
    os << key << " = " << *v << " out of range [" << lo << ", " << hi << "]";
    diags_->add(e->loc, os.str());
    return def;
  }
  return static_cast<int>(*v);
}

bool SectionReader::has_indexed(const std::string& key) const {
  for (const Entry& e : section_->entries)
    if (!e.index.empty() && e.key == key) return true;
  return false;
}

std::vector<std::optional<std::string>> SectionReader::indexed_strings(
    const std::string& key, int count) {
  std::vector<std::optional<std::string>> out(
      static_cast<std::size_t>(count < 0 ? 0 : count));
  std::vector<const Entry*> covered_by(out.size(), nullptr);
  for (std::size_t n = 0; n < section_->entries.size(); ++n) {
    const Entry& e = section_->entries[n];
    if (e.index.empty() || e.key != key) continue;
    consumed_[n] = true;
    // `lo` or `lo:hi`; the ':' never appears in index arithmetic, so a
    // plain split is unambiguous.
    const std::size_t colon = e.index.find(':');
    const std::string lo_text =
        colon == std::string::npos ? e.index : e.index.substr(0, colon);
    const std::string hi_text =
        colon == std::string::npos ? lo_text : e.index.substr(colon + 1);
    const auto lo = interp_->eval_int(lo_text, e.loc, *diags_);
    const auto hi = interp_->eval_int(hi_text, e.loc, *diags_);
    if (!lo || !hi) continue;
    if (*lo > *hi) {
      std::ostringstream os;
      os << key << "[" << e.index << "]: empty range (" << *lo << " > " << *hi
         << ")";
      diags_->add(e.loc, os.str());
      continue;
    }
    if (*lo < 0 || *hi >= count) {
      std::ostringstream os;
      os << key << "[" << e.index << "]: index range " << *lo << ":" << *hi
         << " outside [0, " << count - 1 << "]";
      diags_->add(e.loc, os.str());
      continue;
    }
    const auto value = interp_->eval_string(e.value, e.loc, *diags_);
    if (!value) continue;
    for (std::int64_t idx = *lo; idx <= *hi; ++idx) {
      auto& slot = out[static_cast<std::size_t>(idx)];
      const Entry*& owner = covered_by[static_cast<std::size_t>(idx)];
      if (owner != nullptr) {
        std::ostringstream os;
        os << key << "[" << e.index << "]: index " << idx
           << " already covered by " << key << "[" << owner->index << "] at "
           << owner->loc.str();
        diags_->add(e.loc, os.str());
        break;
      }
      owner = &e;
      slot = *value;
    }
  }
  return out;
}

void SectionReader::check_unknown(const std::string& what) {
  for (std::size_t i = 0; i < section_->entries.size(); ++i) {
    if (consumed_[i]) continue;
    const Entry& e = section_->entries[i];
    const std::string shown =
        e.index.empty() ? e.key : e.key + "[" + e.index + "]";
    diags_->add(e.loc, "unknown key '" + shown + "' in " + what);
  }
}

}  // namespace vexsim::mdes
