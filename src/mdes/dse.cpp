#include "mdes/dse.hpp"

#include <cctype>
#include <sstream>

#include "harness/sweep.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace vexsim::mdes {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

// Splits "a, 'b,c', (d,e)" at top-level commas (quotes and parentheses
// protect nested ones).
std::vector<std::string> split_args(const std::string& text) {
  std::vector<std::string> args;
  std::string current;
  int depth = 0;
  bool in_quote = false;
  char quote = '\0';
  for (const char c : text) {
    if (in_quote) {
      if (c == quote) in_quote = false;
      current += c;
      continue;
    }
    if (c == '\'' || c == '"') {
      in_quote = true;
      quote = c;
    } else if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    } else if (c == ',' && depth == 0) {
      args.push_back(trim(current));
      current.clear();
      continue;
    }
    current += c;
  }
  args.push_back(trim(current));
  return args;
}

// Parses one `name = choice(...)/int(lo,hi)/real(lo,hi)` axis declaration.
// Argument expressions evaluate through the (unbound) interp, so axis
// bounds may use $(var) arithmetic over global entries.
void parse_axis(const Entry& e, const Interp& interp, Diagnostics& diags,
                std::vector<DseAxis>& axes) {
  const std::string spec = trim(e.value);
  const std::size_t open = spec.find('(');
  if (open == std::string::npos || spec.back() != ')') {
    diags.add(e.loc, "axis '" + e.key +
                         "': expected choice(...), int(lo, hi), or "
                         "real(lo, hi), got '" +
                         spec + "'");
    return;
  }
  const std::string fn = trim(spec.substr(0, open));
  const std::vector<std::string> args =
      split_args(spec.substr(open + 1, spec.size() - open - 2));
  DseAxis axis;
  axis.name = e.key;
  if (fn == "choice") {
    axis.kind = DseAxis::Kind::kChoice;
    for (const std::string& arg : args) {
      const auto v = interp.eval(arg, e.loc, diags);
      if (v) axis.choices.push_back(*v);
    }
    if (axis.choices.empty()) {
      diags.add(e.loc, "axis '" + e.key + "': choice() needs at least one"
                       " value");
      return;
    }
  } else if (fn == "int") {
    axis.kind = DseAxis::Kind::kInt;
    if (args.size() != 2) {
      diags.add(e.loc, "axis '" + e.key + "': int() takes (lo, hi)");
      return;
    }
    const auto lo = interp.eval_int(args[0], e.loc, diags);
    const auto hi = interp.eval_int(args[1], e.loc, diags);
    if (!lo || !hi) return;
    if (*lo > *hi || *hi - *lo >= (std::int64_t{1} << 31)) {
      diags.add(e.loc, "axis '" + e.key + "': bad int range [" +
                           std::to_string(*lo) + ", " + std::to_string(*hi) +
                           "]");
      return;
    }
    axis.ilo = *lo;
    axis.ihi = *hi;
  } else if (fn == "real") {
    axis.kind = DseAxis::Kind::kReal;
    if (args.size() != 2) {
      diags.add(e.loc, "axis '" + e.key + "': real() takes (lo, hi)");
      return;
    }
    const auto lo = interp.eval_double(args[0], e.loc, diags);
    const auto hi = interp.eval_double(args[1], e.loc, diags);
    if (!lo || !hi) return;
    if (*lo > *hi) {
      diags.add(e.loc, "axis '" + e.key + "': bad real range [" +
                           format_double(*lo) + ", " + format_double(*hi) +
                           "]");
      return;
    }
    axis.rlo = *lo;
    axis.rhi = *hi;
  } else {
    diags.add(e.loc, "axis '" + e.key + "': unknown distribution '" + fn +
                         "' (valid: choice, int, real)");
    return;
  }
  axes.push_back(std::move(axis));
}

Value draw(const DseAxis& axis, Rng& rng) {
  switch (axis.kind) {
    case DseAxis::Kind::kChoice:
      return axis.choices[rng.below(
          static_cast<std::uint32_t>(axis.choices.size()))];
    case DseAxis::Kind::kInt:
      return Value::integer(
          axis.ilo +
          rng.below(static_cast<std::uint32_t>(axis.ihi - axis.ilo + 1)));
    case DseAxis::Kind::kReal: {
      // 53 uniform mantissa bits in [0, 1).
      const double u =
          static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
      return Value::real(axis.rlo + (axis.rhi - axis.rlo) * u);
    }
  }
  return Value::integer(0);
}

}  // namespace

DseTemplate load_template(const std::string& path) {
  DseTemplate tmpl;
  tmpl.path = path;
  tmpl.file = ConfigFile::parse_file(path);
  Diagnostics diags;
  const Interp interp(tmpl.file);
  const Section* dse = tmpl.file.section("dse");
  if (dse == nullptr) {
    diags.add({path, 0}, "missing [dse] section (axis declarations)");
  } else {
    for (const Entry& e : dse->entries) {
      if (!e.index.empty()) {
        diags.add(e.loc, "axis '" + e.key + "[" + e.index +
                             "]': axes cannot be indexed");
        continue;
      }
      parse_axis(e, interp, diags, tmpl.axes);
    }
    if (dse->entries.empty())
      diags.add(dse->loc, "[dse] declares no axes");
  }
  if (const Section* cons = tmpl.file.section("constraints");
      cons != nullptr) {
    SectionReader r(interp, *cons, diags);
    tmpl.max_total_issue = r.get_int("max_total_issue", 0);
    tmpl.min_total_issue = r.get_int("min_total_issue", 0);
    r.check_unknown("[constraints]");
  }
  if (tmpl.file.section("machine") == nullptr)
    diags.add({path, 0}, "missing [machine] section");
  if (tmpl.file.section("scenario") == nullptr)
    diags.add({path, 0}, "missing [scenario] section");
  diags.throw_if_any("dse template " + path);
  return tmpl;
}

DsePoint sample_point(const DseTemplate& tmpl, std::uint64_t seed,
                      std::uint64_t index) {
  DsePoint p;
  Rng rng(harness::derive_seed(seed, index));
  Interp interp(tmpl.file);
  for (const DseAxis& axis : tmpl.axes) {
    Value v = draw(axis, rng);
    interp.bind(axis.name, v);
    p.bindings.emplace_back(axis.name, std::move(v));
  }
  Diagnostics diags;
  p.machine = machine_from(tmpl.file, interp, diags);
  p.scenario = scenario_from(tmpl.file, interp, diags);
  p.machine = apply(p.scenario, p.machine);
  // Any evaluation problem under bound axes is a bug in the template, not
  // a property of this sample — surface it instead of silently rejecting.
  diags.throw_if_any("dse template " + tmpl.path);
  const std::vector<std::string> issues = p.machine.validate_issues();
  if (!issues.empty()) {
    std::ostringstream os;
    os << "invalid machine: " << issues[0];
    if (issues.size() > 1) os << " (+" << issues.size() - 1 << " more)";
    p.reject_reason = os.str();
    return p;
  }
  const int total = p.machine.total_issue_width();
  if (tmpl.max_total_issue > 0 && total > tmpl.max_total_issue) {
    p.reject_reason = "total issue width " + std::to_string(total) +
                      " exceeds max_total_issue " +
                      std::to_string(tmpl.max_total_issue);
    return p;
  }
  if (tmpl.min_total_issue > 0 && total < tmpl.min_total_issue) {
    p.reject_reason = "total issue width " + std::to_string(total) +
                      " below min_total_issue " +
                      std::to_string(tmpl.min_total_issue);
    return p;
  }
  p.ok = true;
  return p;
}

}  // namespace vexsim::mdes
