#include "mdes/config_file.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace vexsim::mdes {

std::string SourceLoc::str() const {
  return file + ":" + std::to_string(line);
}

void Diagnostics::add(SourceLoc loc, std::string message) {
  diags_.push_back({std::move(loc), std::move(message)});
}

void Diagnostics::throw_if_any(const std::string& context) const {
  if (diags_.empty()) return;
  std::ostringstream os;
  os << context << ": " << diags_.size() << " problem(s):";
  for (const Diag& d : diags_) os << "\n  " << d.loc.str() << ": " << d.message;
  throw CheckError(os.str());
}

const Entry* Section::find(const std::string& key) const {
  for (const Entry& e : entries)
    if (e.index.empty() && e.key == key) return &e;
  return nullptr;
}

const Section* ConfigFile::section(const std::string& name) const {
  for (const Section& s : sections_)
    if (!s.name.empty() && s.name == name) return &s;
  return nullptr;
}

namespace {

constexpr int kMaxIncludeDepth = 16;

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

// Strips a trailing '#' comment, honouring quoted strings so a '#' inside
// 'quotes' stays part of the value.
std::string strip_comment(const std::string& line) {
  bool in_quote = false;
  char quote = '\0';
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quote) {
      if (c == quote) in_quote = false;
    } else if (c == '\'' || c == '"') {
      in_quote = true;
      quote = c;
    } else if (c == '#') {
      return line.substr(0, i);
    }
  }
  return line;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

// Line-oriented recursive-descent parser with include support. All state
// (section list, duplicate bookkeeping, include stack) lives here; errors
// go to the shared Diagnostics and parsing continues, so one pass reports
// every problem in the file set.
class Parser {
 public:
  explicit Parser(ConfigFile& out) : out_(out) {
    out_.sections_.push_back(Section{"", {"", 0}, {}});
  }

  Diagnostics diags;

  void parse_file(const std::string& path, const SourceLoc& from, int depth) {
    std::error_code ec;
    const std::filesystem::path canonical =
        std::filesystem::weakly_canonical(path, ec);
    const std::string key = ec ? path : canonical.string();
    for (const std::string& open : include_stack_) {
      if (open == key) {
        diags.add(from, "cyclic include of '" + path + "'");
        return;
      }
    }
    if (depth > kMaxIncludeDepth) {
      diags.add(from, "include depth exceeds " +
                          std::to_string(kMaxIncludeDepth) + " at '" + path +
                          "'");
      return;
    }
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
      diags.add(from.line > 0 ? from : SourceLoc{path, 0},
                "cannot open '" + path + "'");
      return;
    }
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    include_stack_.push_back(key);
    parse_text(text, path,
               std::filesystem::path(path).parent_path().string(), depth);
    include_stack_.pop_back();
  }

  void parse_text(const std::string& text, const std::string& name,
                  const std::string& dir, int depth) {
    std::istringstream is(text);
    std::string raw_line;
    int lineno = 0;
    while (std::getline(is, raw_line)) {
      ++lineno;
      if (!raw_line.empty() && raw_line.back() == '\r') raw_line.pop_back();
      const SourceLoc loc{name, lineno};
      const std::string line = trim(strip_comment(raw_line));
      if (line.empty()) continue;
      if (line.front() == '[') {
        parse_section_header(line, loc);
        continue;
      }
      if (line.rfind("include", 0) == 0 &&
          (line.size() == 7 || !is_ident_char(line[7]))) {
        parse_include(trim(line.substr(7)), loc, dir, depth);
        continue;
      }
      parse_entry(line, loc);
    }
  }

 private:
  void parse_section_header(const std::string& line, const SourceLoc& loc) {
    if (line.back() != ']' || line.size() < 3) {
      diags.add(loc, "malformed section header '" + line + "'");
      return;
    }
    const std::string name = trim(line.substr(1, line.size() - 2));
    if (name.empty() || !is_ident_start(name.front())) {
      diags.add(loc, "bad section name '" + name + "'");
      return;
    }
    for (const Section& s : out_.sections_) {
      if (s.name == name) {
        diags.add(loc, "duplicate section [" + name + "] (first defined at " +
                           s.loc.str() + ")");
        // Keep parsing the duplicate's entries into the original section so
        // overlapping keys still get duplicate diagnostics.
        current_ = index_of(name);
        return;
      }
    }
    out_.sections_.push_back(Section{name, loc, {}});
    current_ = out_.sections_.size() - 1;
  }

  void parse_include(const std::string& operand, const SourceLoc& loc,
                     const std::string& dir, int depth) {
    if (current_ != 0) {
      diags.add(loc, "include is only allowed before the first [section]"
                     " or between sections at global scope");
      return;
    }
    std::string path = operand;
    if (path.size() >= 2 &&
        ((path.front() == '\'' && path.back() == '\'') ||
         (path.front() == '"' && path.back() == '"')))
      path = path.substr(1, path.size() - 2);
    if (path.empty()) {
      diags.add(loc, "include needs a file name");
      return;
    }
    if (!dir.empty() && !std::filesystem::path(path).is_absolute())
      path = (std::filesystem::path(dir) / path).string();
    parse_file(path, loc, depth + 1);
    // The included file may end inside one of its [section]s; the includer's
    // following entries are still global-scope (where the directive sat).
    current_ = 0;
  }

  void parse_entry(const std::string& line, const SourceLoc& loc) {
    const std::size_t eq = find_assign(line);
    if (eq == std::string::npos) {
      diags.add(loc, "cannot parse line '" + line +
                         "' (expected key = value, [section], or include)");
      return;
    }
    const std::string lhs = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    Entry e;
    e.value = value;
    e.loc = loc;
    if (!split_key(lhs, e)) {
      diags.add(loc, "bad key '" + lhs + "'");
      return;
    }
    if (value.empty()) {
      diags.add(loc, "key '" + lhs + "' has no value");
      return;
    }
    Section& sec = out_.sections_[current_];
    for (const Entry& prev : sec.entries) {
      if (prev.key == e.key && prev.index == e.index) {
        diags.add(loc, "duplicate key '" + lhs + "' in " +
                           (sec.name.empty() ? std::string("global section")
                                             : "[" + sec.name + "]") +
                           " (first defined at " + prev.loc.str() + ")");
        return;
      }
    }
    sec.entries.push_back(std::move(e));
  }

  // Position of the assignment '=' — the first '=' outside quotes.
  static std::size_t find_assign(const std::string& line) {
    bool in_quote = false;
    char quote = '\0';
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_quote) {
        if (c == quote) in_quote = false;
      } else if (c == '\'' || c == '"') {
        in_quote = true;
        quote = c;
      } else if (c == '=') {
        return i;
      }
    }
    return std::string::npos;
  }

  // Splits "key" or "key[index]" into Entry::key / Entry::index.
  static bool split_key(const std::string& lhs, Entry& e) {
    if (lhs.empty() || !is_ident_start(lhs.front())) return false;
    std::size_t i = 0;
    while (i < lhs.size() && is_ident_char(lhs[i])) ++i;
    e.key = lhs.substr(0, i);
    if (i == lhs.size()) return true;  // plain key
    if (lhs[i] != '[' || lhs.back() != ']' || i + 2 > lhs.size() - 1)
      return false;
    e.index = trim(lhs.substr(i + 1, lhs.size() - i - 2));
    return !e.index.empty();
  }

  std::size_t index_of(const std::string& name) const {
    for (std::size_t i = 0; i < out_.sections_.size(); ++i)
      if (out_.sections_[i].name == name) return i;
    return 0;
  }

  ConfigFile& out_;
  std::size_t current_ = 0;  // index into out_.sections_
  std::vector<std::string> include_stack_;
};

ConfigFile ConfigFile::parse_file(const std::string& path) {
  ConfigFile file;
  file.origin_ = path;
  Parser parser(file);
  parser.parse_file(path, SourceLoc{path, 0}, 0);
  parser.diags.throw_if_any("config file " + path);
  return file;
}

ConfigFile ConfigFile::parse_text(const std::string& text,
                                  const std::string& name) {
  ConfigFile file;
  file.origin_ = name;
  Parser parser(file);
  parser.parse_text(text, name, "", 0);
  parser.diags.throw_if_any("config " + name);
  return file;
}

}  // namespace vexsim::mdes
