// MachineConfig <-> description file (mdes/config_file.hpp).
//
// The [machine] section names the scalar axes directly and references other
// sections for the composite pieces, SESC-style:
//
//   [machine]
//   clusters        = 4
//   hw_threads      = 4
//   technique       = 'CCSI NS'        # Technique::parse spelling
//   cluster_renaming = true
//   rf_org          = 'partitioned'
//   cluster         = 'paperCluster'   # base resources, every cluster
//   cluster[2:3]    = 'narrow'         # per-cluster overrides (asymmetric)
//   latency         = 'lat'
//   icache          = 'l1i'
//   dcache          = 'l1d'
//   memory          = 'mem'            # miss-handling backend (optional)
//
//   [paperCluster]
//   issue_width = 4       # paper-proportioned FUs for the width...
//   mem_units   = 1       # ...then explicit per-unit overrides
//
//   [mem]
//   backend  = 'hierarchy'  # or 'fixed' (the default: flat miss penalty)
//   l1_mshrs = 8            # outstanding L1 misses per cache
//   l2       = 'l2'         # L2Config section (size/assoc/line/hit_latency)
//   dram     = 'dram'       # DramConfig section (banks/row/timing)
//
// Every key is optional and defaults to the corresponding MachineConfig
// default, so `[machine]` alone is the paper machine. Deserialization is
// strict and aggregating: unknown keys, type errors, bad ranges, dangling
// section references and MachineConfig::validate_issues() violations are all
// collected and thrown as one CheckError by load_machine().
#pragma once

#include <string>

#include "isa/config.hpp"
#include "mdes/interp.hpp"

namespace vexsim::mdes {

// Deserializes the [machine] section (and the sections it references) into
// a MachineConfig, best-effort: problems become diagnostics and the
// affected field keeps its default, so one pass reports everything. Does
// NOT run validate_issues() — samplers reject invalid machines instead of
// erroring (dse.hpp), so cross-field validation is the caller's move.
[[nodiscard]] MachineConfig machine_from(const ConfigFile& file,
                                         const Interp& interp,
                                         Diagnostics& diags);

// Parses `path` and deserializes + validates the machine; throws CheckError
// aggregating every parse, deserialization, and validation problem.
[[nodiscard]] MachineConfig load_machine(const std::string& path);

// Serializes `cfg` as description-file text such that
// machine_from(parse(to_config(cfg))) == cfg exactly.
[[nodiscard]] std::string to_config(const MachineConfig& cfg);

}  // namespace vexsim::mdes
