// Scenario descriptions: what to run on a machine, from the same `.conf`
// grammar as the machine itself (mdes/machine.hpp).
//
//   [scenario]
//   workload  = 'llhh'                          # wl::workload()-resolvable
//   contexts  = 4                               # hardware contexts to run
//   technique = 'CCSI NS'                       # merge/split technique
//   scale     = 0.1                             # kernel outer-loop scaling
//   budget    = 250000                          # VLIW instructions to halt
//   timeslice = 100000                          # cycles between switches
//   seed      = 42
//   compiler  = 'cost_swp'                      # pass-pipeline variant
//
// workload composes with the interpolation layer — scenario templates fill
// an n-context machine with per-context synthetic seeds via
//   workload = repeat('synth:i$(ilp)-s@', $(n))
//
// contexts and technique are optional overlays: when present they replace
// the machine's hw_threads / technique (apply()); when absent the machine
// file's values stand. Every other key defaults to the ExperimentOptions
// default. Deserialization is strict and aggregating, like the machine's.
#pragma once

#include <string>

#include "harness/experiments.hpp"
#include "mdes/machine.hpp"

namespace vexsim::mdes {

struct Scenario {
  std::string workload;        // required; any wl::workload() name
  int contexts = 0;            // 0 = keep the machine's hw_threads
  bool has_technique = false;  // technique below overrides the machine's
  Technique technique;
  harness::ExperimentOptions opt;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

// Deserializes the [scenario] section, best-effort (problems become
// diagnostics, fields keep their defaults). A missing section or missing
// `workload` key is a diagnostic.
[[nodiscard]] Scenario scenario_from(const ConfigFile& file,
                                     const Interp& interp, Diagnostics& diags);

// The machine `base` with the scenario's contexts/technique overlays
// applied (not validated — samplers reject invalid combinations).
[[nodiscard]] MachineConfig apply(const Scenario& s, MachineConfig base);

struct MachineScenario {
  MachineConfig machine;  // overlays already applied, validated
  Scenario scenario;
};

// Parses `path` holding both [machine] and [scenario]; throws CheckError
// aggregating every parse, deserialization, and validation problem.
[[nodiscard]] MachineScenario load_machine_scenario(const std::string& path);

// Serializes `s` as a [scenario] section such that
// scenario_from(parse(to_config(s))) == s exactly.
[[nodiscard]] std::string to_config(const Scenario& s);

}  // namespace vexsim::mdes
