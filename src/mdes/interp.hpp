// Typed values, $(var) interpolation, and arithmetic over description-file
// entries (mdes/config_file.hpp).
//
// Raw entry text evaluates to one of four kinds:
//   int     123, 64*1024, 2*$(issue)+1         (64-bit signed)
//   double  0.25, 1e9, ($(issue)+0.1)/16
//   bool    true / false
//   string  'paperCluster', 'synth:i$(ilp)-s1'  ($(var) splices textually)
//
// $(var) resolves against explicit bindings first (the DSE driver binds
// sampled axis values), then against the file's global section, recursively
// — with cycle detection, so `a = $(a)` and mutual references produce a
// diagnostic instead of a hang. Arithmetic is + - * / with parentheses and
// unary minus; int op int stays int (an inexact division promotes to
// double), anything touching a double is double, and division by zero is a
// diagnostic. The one string function is
//   repeat('component-s@', n)   n copies joined with '+', '@' replaced by
//                               the 1-based copy index
// which is how scenario templates fill an n-context machine with distinct
// per-context synthetic seeds.
//
// SectionReader layers strict typed access on top: every key a deserializer
// reads is marked consumed, and check_unknown() reports the full list of
// never-consumed keys — config authors see each typo, not just the first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mdes/config_file.hpp"

namespace vexsim::mdes {

struct Value {
  enum class Kind : std::uint8_t { kInt, kDouble, kBool, kString };

  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::string s;

  static Value integer(std::int64_t v);
  static Value real(double v);
  static Value boolean(bool v);
  static Value string(std::string v);

  [[nodiscard]] bool is_number() const {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }
  // Numeric access; int promotes to double.
  [[nodiscard]] double as_double() const;
  // Literal text: canonical decimal for numbers (shortest exactly
  // round-tripping form for doubles), true/false, the raw characters for
  // strings. Used for string splicing and by the to_config serializers.
  [[nodiscard]] std::string str() const;
  [[nodiscard]] const char* kind_name() const;

  friend bool operator==(const Value&, const Value&) = default;
};

// Shortest decimal form that parses back to exactly `v` (same contract as
// the stats/json and wl_synth formatters: serialized machines and spliced
// synth dials must round-trip bit-for-bit).
[[nodiscard]] std::string format_double(double v);

class Interp {
 public:
  explicit Interp(const ConfigFile& file) : file_(&file) {}

  // Binds `name` for $(name) lookup, shadowing any global entry. The DSE
  // driver binds each sampled axis value before evaluating the machine and
  // scenario sections.
  void bind(const std::string& name, Value v);
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& bindings()
      const {
    return bindings_;
  }

  // Evaluates raw entry text. On any problem (syntax, unknown or cyclic
  // $(var), division by zero, strings in arithmetic) adds a diagnostic at
  // `loc` and returns nullopt.
  [[nodiscard]] std::optional<Value> eval(const std::string& raw,
                                          const SourceLoc& loc,
                                          Diagnostics& diags) const;

  // As eval, but requiring a specific kind (int accepts only int; double
  // accepts int or double; bool/string exact).
  [[nodiscard]] std::optional<std::int64_t> eval_int(const std::string& raw,
                                                     const SourceLoc& loc,
                                                     Diagnostics& diags) const;
  [[nodiscard]] std::optional<double> eval_double(const std::string& raw,
                                                  const SourceLoc& loc,
                                                  Diagnostics& diags) const;
  [[nodiscard]] std::optional<bool> eval_bool(const std::string& raw,
                                              const SourceLoc& loc,
                                              Diagnostics& diags) const;
  [[nodiscard]] std::optional<std::string> eval_string(
      const std::string& raw, const SourceLoc& loc, Diagnostics& diags) const;

 private:
  friend class Evaluator;
  const ConfigFile* file_;
  std::vector<std::pair<std::string, Value>> bindings_;
};

// Strict typed reader over one section. Getters return the default when the
// key is absent; type mismatches and evaluation failures become diagnostics
// (and the default is returned so one pass can keep collecting problems).
class SectionReader {
 public:
  SectionReader(const Interp& interp, const Section& section,
                Diagnostics& diags);

  [[nodiscard]] const Section& section() const { return *section_; }

  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def);
  [[nodiscard]] double get_double(const std::string& key, double def);
  [[nodiscard]] bool get_bool(const std::string& key, bool def);
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string def);
  [[nodiscard]] std::optional<std::string> get_string_opt(
      const std::string& key);
  [[nodiscard]] std::optional<std::int64_t> get_int_opt(const std::string& key);

  // `key` as an int constrained to [lo, hi]; out-of-range is a diagnostic.
  [[nodiscard]] int get_int_in(const std::string& key, int def, int lo,
                               int hi);

  // Expands every indexed `key[i]` / `key[lo:hi]` entry into a per-index
  // string slot over [0, count): index expressions are evaluated (they may
  // use $(var) arithmetic), out-of-range indices and overlapping ranges are
  // diagnostics. Returns one optional per index; nullopt = not covered.
  [[nodiscard]] std::vector<std::optional<std::string>> indexed_strings(
      const std::string& key, int count);

  // True when the section has an indexed entry for `key` at all.
  [[nodiscard]] bool has_indexed(const std::string& key) const;

  // Reports every never-consumed key as an unknown-key diagnostic; call
  // once after all expected keys have been read.
  void check_unknown(const std::string& what);

 private:
  [[nodiscard]] const Entry* take(const std::string& key);

  const Interp* interp_;
  const Section* section_;
  Diagnostics* diags_;
  std::vector<bool> consumed_;
};

}  // namespace vexsim::mdes
