// Design-space-exploration templates: a machine + scenario description
// whose values may reference sampled axis variables, plus the axis
// declarations and acceptance constraints the sampler draws against.
//
//   [dse]
//   issue    = choice(2, 4, 8)         # uniform over the listed values
//   clusters = int(2, 8)               # uniform integer, inclusive
//   ilp      = real(0.5, 2.0)          # uniform real in [lo, hi)
//
//   [constraints]
//   max_total_issue = 16               # reject wider machines
//
//   [machine]
//   clusters = $(clusters)
//   cluster  = 'c'
//   [c]
//   issue_width = $(issue)
//   [scenario]
//   workload = repeat('synth:i$(ilp)-s@', $(threads))
//
// Sampling is deterministic and jobs-independent: point `index` under
// `seed` draws from Rng(derive_seed(seed, index)), so a sample set is a
// pure function of (template, seed, index range). Template problems —
// parse errors, bad axis specs, evaluation failures under bound axes —
// throw; a machine that fails MachineConfig::validate_issues() or a
// declared constraint is a *rejection* (DsePoint::ok = false with the
// reason), the expected fate of part of any random design space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdes/scenario.hpp"

namespace vexsim::mdes {

struct DseAxis {
  enum class Kind : std::uint8_t { kChoice, kInt, kReal };

  std::string name;
  Kind kind = Kind::kChoice;
  std::vector<Value> choices;       // kChoice
  std::int64_t ilo = 0, ihi = 0;    // kInt, inclusive
  double rlo = 0.0, rhi = 0.0;      // kReal, [rlo, rhi)
};

struct DseTemplate {
  std::string path;  // display name of the template file
  ConfigFile file;   // machine/scenario sections, re-evaluated per sample
  std::vector<DseAxis> axes;
  // From [constraints]; 0 = unconstrained.
  std::int64_t max_total_issue = 0;
  std::int64_t min_total_issue = 0;
};

// Parses and checks a template file; throws CheckError aggregating every
// problem (bad axis spec, missing [dse]/[machine]/[scenario] section, ...).
[[nodiscard]] DseTemplate load_template(const std::string& path);

struct DsePoint {
  bool ok = false;
  std::string reject_reason;  // why !ok (validation or constraint)
  // The sampled axis values, in declaration order.
  std::vector<std::pair<std::string, Value>> bindings;
  MachineConfig machine;  // scenario overlays applied
  Scenario scenario;
};

// Draws sample `index` of the stream `seed`: binds every axis to a drawn
// value, evaluates the machine + scenario under those bindings, and applies
// the validity and constraint filters. Evaluation problems throw (template
// bugs); filter failures return ok = false.
[[nodiscard]] DsePoint sample_point(const DseTemplate& tmpl,
                                    std::uint64_t seed, std::uint64_t index);

}  // namespace vexsim::mdes
