// Machine/scenario description files — the SESC-inspired `.conf` grammar.
//
// A description file is a sequence of `key = value` entries grouped into
// `[section]` blocks (entries before the first header form the global
// section). The grammar, in the spirit of SESC's machine `.conf` files:
//
//   # comment to end of line
//   issue    = 4                      # typed values: int, double, bool,
//   scale    = 0.25                   #   or 'quoted string'
//   wide     = true
//   name     = 'paperCluster'
//   slots    = 2*$(issue)+1           # $(var) interpolation + arithmetic
//   cluster[0:$(issue)-1] = 'c4'      # ranged per-index keys
//   include 'base.conf'               # splice a shared base file
//   [paperCluster]                    # named section
//   alus     = $(issue)
//
// Parsing is strict and *aggregating*: every problem in the file — bad
// syntax, duplicate keys, duplicate sections, a missing or cyclic include —
// is collected with its file:line location and reported in one CheckError,
// so authors see the full list in a single pass. Values are kept as raw
// text here; typing, $(var) resolution and arithmetic live in
// mdes/interp.hpp so section consumers control evaluation context (the
// design-space-exploration driver rebinds variables per sampled point).
#pragma once

#include <string>
#include <vector>

namespace vexsim::mdes {

struct SourceLoc {
  std::string file;  // display name of the containing file
  int line = 0;      // 1-based

  [[nodiscard]] std::string str() const;
};

struct Diag {
  SourceLoc loc;
  std::string message;
};

// Error accumulator shared by the parser and every deserializer: mirrors
// the verify_or_throw / run_sweep aggregation style — collect everything,
// then throw once with the full indexed list.
class Diagnostics {
 public:
  void add(SourceLoc loc, std::string message);
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  [[nodiscard]] const std::vector<Diag>& all() const { return diags_; }

  // Throws CheckError("<context>: N problem(s): ...") listing every
  // diagnostic with its file:line; no-op when empty.
  void throw_if_any(const std::string& context) const;

 private:
  std::vector<Diag> diags_;
};

struct Entry {
  std::string key;    // identifier, without any [index] suffix
  std::string index;  // raw text inside [...]; empty for plain keys
  std::string value;  // raw value text (comment-stripped, trimmed)
  SourceLoc loc;
};

struct Section {
  std::string name;  // empty for the global section
  SourceLoc loc;
  std::vector<Entry> entries;

  // First plain (non-indexed) entry for `key`; nullptr when absent.
  [[nodiscard]] const Entry* find(const std::string& key) const;
};

class ConfigFile {
 public:
  // Parses `path`, following `include` directives (relative to the
  // including file, with cycle and depth detection). Throws CheckError
  // aggregating every parse problem.
  static ConfigFile parse_file(const std::string& path);

  // Parses in-memory text (tests, to_config round trips). `include` is
  // resolved relative to the current working directory.
  static ConfigFile parse_text(const std::string& text,
                               const std::string& name = "<config>");

  // sections()[0] is always the global section.
  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }
  [[nodiscard]] const Section& global() const { return sections_[0]; }
  // Named section lookup; nullptr when absent.
  [[nodiscard]] const Section* section(const std::string& name) const;

  // Display name of the root file ("<config>" for parse_text).
  [[nodiscard]] const std::string& origin() const { return origin_; }

 private:
  friend class Parser;
  std::string origin_;
  std::vector<Section> sections_;  // [0] = global
};

}  // namespace vexsim::mdes
