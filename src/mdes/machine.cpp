#include "mdes/machine.hpp"

#include <sstream>

#include "util/check.hpp"

namespace vexsim::mdes {

namespace {

// Resolves a 'sectionName' reference held by `entry` and deserializes it
// with `read`; missing sections are diagnostics and leave `out` untouched.
template <typename Fn>
void read_referenced_section(const ConfigFile& file, const Interp& interp,
                             Diagnostics& diags, const Entry& entry,
                             const std::string& name, Fn read) {
  const Section* sec = file.section(name);
  if (sec == nullptr) {
    diags.add(entry.loc, entry.key + " references unknown section [" + name +
                             "]");
    return;
  }
  SectionReader reader(interp, *sec, diags);
  read(reader);
  reader.check_unknown("[" + sec->name + "]");
}

ClusterResourceConfig cluster_resources_from(SectionReader& r) {
  ClusterResourceConfig res;
  // issue_width applies the paper's FU proportions for the width; explicit
  // per-unit keys then override individual counts.
  if (r.section().find("issue_width") != nullptr)
    res = ClusterResourceConfig::for_issue_width(r.get_int_in(
        "issue_width", res.issue_slots, 1, kMaxIssuePerCluster));
  res.issue_slots =
      r.get_int_in("issue_slots", res.issue_slots, 1, kMaxIssuePerCluster);
  res.alus = r.get_int_in("alus", res.alus, 0, 64);
  res.muls = r.get_int_in("muls", res.muls, 0, 64);
  res.mem_units = r.get_int_in("mem_units", res.mem_units, 0, 64);
  res.branch_units = r.get_int_in("branch_units", res.branch_units, 0, 64);
  return res;
}

LatencyConfig latency_from(SectionReader& r) {
  LatencyConfig lat;
  lat.alu = r.get_int_in("alu", lat.alu, 1, 1000);
  lat.mul = r.get_int_in("mul", lat.mul, 1, 1000);
  lat.mem = r.get_int_in("mem", lat.mem, 1, 1000);
  lat.comm = r.get_int_in("comm", lat.comm, 1, 1000);
  lat.cmp_to_branch = r.get_int_in("cmp_to_branch", lat.cmp_to_branch, 1, 1000);
  lat.taken_branch_penalty =
      r.get_int_in("taken_branch_penalty", lat.taken_branch_penalty, 0, 1000);
  return lat;
}

CacheConfig cache_from(SectionReader& r) {
  CacheConfig c;
  c.size_bytes = static_cast<std::uint32_t>(r.get_int_in(
      "size_bytes", static_cast<int>(c.size_bytes), 1, 1 << 30));
  c.assoc = static_cast<std::uint32_t>(
      r.get_int_in("assoc", static_cast<int>(c.assoc), 1, 1024));
  c.line_bytes = static_cast<std::uint32_t>(
      r.get_int_in("line_bytes", static_cast<int>(c.line_bytes), 1, 4096));
  c.miss_penalty = static_cast<std::uint32_t>(r.get_int_in(
      "miss_penalty", static_cast<int>(c.miss_penalty), 0, 1'000'000));
  c.perfect = r.get_bool("perfect", c.perfect);
  return c;
}

L2Config l2_from(SectionReader& r) {
  L2Config c;
  c.size_bytes = static_cast<std::uint32_t>(r.get_int_in(
      "size_bytes", static_cast<int>(c.size_bytes), 1, 1 << 30));
  c.assoc = static_cast<std::uint32_t>(
      r.get_int_in("assoc", static_cast<int>(c.assoc), 1, 1024));
  c.line_bytes = static_cast<std::uint32_t>(
      r.get_int_in("line_bytes", static_cast<int>(c.line_bytes), 1, 4096));
  c.hit_latency = static_cast<std::uint32_t>(r.get_int_in(
      "hit_latency", static_cast<int>(c.hit_latency), 1, 1'000'000));
  return c;
}

DramConfig dram_from(SectionReader& r) {
  DramConfig c;
  c.banks = static_cast<std::uint32_t>(
      r.get_int_in("banks", static_cast<int>(c.banks), 1, 65536));
  c.row_bytes = static_cast<std::uint32_t>(
      r.get_int_in("row_bytes", static_cast<int>(c.row_bytes), 1, 1 << 20));
  c.t_row_hit = static_cast<std::uint32_t>(r.get_int_in(
      "t_row_hit", static_cast<int>(c.t_row_hit), 1, 1'000'000));
  c.t_row_closed = static_cast<std::uint32_t>(r.get_int_in(
      "t_row_closed", static_cast<int>(c.t_row_closed), 1, 1'000'000));
  c.t_row_conflict = static_cast<std::uint32_t>(r.get_int_in(
      "t_row_conflict", static_cast<int>(c.t_row_conflict), 1, 1'000'000));
  c.t_bank_busy = static_cast<std::uint32_t>(r.get_int_in(
      "t_bank_busy", static_cast<int>(c.t_bank_busy), 1, 1'000'000));
  return c;
}

// Parses via a named-constant parser (Technique::parse / reg_file_org_from)
// that throws CheckError, converting the throw into a diagnostic at the
// entry's location.
template <typename T, typename ParseFn>
void parse_named(SectionReader& m, const std::string& key, ParseFn parse,
                 Diagnostics& diags, T& out) {
  const Entry* entry = m.section().find(key);
  const auto name = m.get_string_opt(key);
  if (!name) return;
  try {
    out = parse(*name);
  } catch (const CheckError& e) {
    diags.add(entry->loc, e.what());
  }
}

// [memory]: backend selection and MSHR bound inline; the L2 and DRAM
// parameter groups live in their own referenced sections, mirroring how
// [machine] references its caches.
MemoryConfig memory_from(const ConfigFile& file, const Interp& interp,
                         Diagnostics& diags, SectionReader& r) {
  MemoryConfig mem;
  parse_named(r, "backend", &mem_backend_from, diags, mem.backend);
  mem.l1_mshrs = static_cast<std::uint32_t>(
      r.get_int_in("l1_mshrs", static_cast<int>(mem.l1_mshrs), 1, 64));
  if (const Entry* l2_ref = r.section().find("l2"); l2_ref != nullptr) {
    if (const auto name = r.get_string_opt("l2"))
      read_referenced_section(
          file, interp, diags, *l2_ref, *name,
          [&mem](SectionReader& s) { mem.l2 = l2_from(s); });
  }
  if (const Entry* dram_ref = r.section().find("dram"); dram_ref != nullptr) {
    if (const auto name = r.get_string_opt("dram"))
      read_referenced_section(
          file, interp, diags, *dram_ref, *name,
          [&mem](SectionReader& s) { mem.dram = dram_from(s); });
  }
  return mem;
}

}  // namespace

MachineConfig machine_from(const ConfigFile& file, const Interp& interp,
                           Diagnostics& diags) {
  MachineConfig cfg;
  const Section* msec = file.section("machine");
  if (msec == nullptr) {
    diags.add({file.origin(), 0}, "missing [machine] section");
    return cfg;
  }
  SectionReader m(interp, *msec, diags);
  cfg.clusters = m.get_int_in("clusters", cfg.clusters, 1, kMaxClusters);
  cfg.hw_threads = m.get_int_in("hw_threads", cfg.hw_threads, 1, 64);
  parse_named(m, "technique", &Technique::parse, diags, cfg.technique);
  parse_named(m, "rf_org", &reg_file_org_from, diags, cfg.rf_org);
  cfg.cluster_renaming = m.get_bool("cluster_renaming", cfg.cluster_renaming);
  cfg.branch_on_cluster0_only =
      m.get_bool("branch_on_cluster0_only", cfg.branch_on_cluster0_only);
  cfg.stall_on_store_miss =
      m.get_bool("stall_on_store_miss", cfg.stall_on_store_miss);

  const Entry* cluster_ref = msec->find("cluster");
  if (const auto name = m.get_string_opt("cluster"))
    read_referenced_section(file, interp, diags, *cluster_ref, *name,
                            [&cfg](SectionReader& r) {
                              cfg.cluster = cluster_resources_from(r);
                            });
  if (m.has_indexed("cluster")) {
    // Any per-cluster override makes the machine explicitly asymmetric:
    // uncovered indices inherit the base cluster.
    cfg.cluster_overrides.assign(static_cast<std::size_t>(cfg.clusters),
                                 cfg.cluster);
    const auto slots = m.indexed_strings("cluster", cfg.clusters);
    for (std::size_t c = 0; c < slots.size(); ++c) {
      if (!slots[c]) continue;
      const Section* sec = file.section(*slots[c]);
      if (sec == nullptr) {
        diags.add(msec->loc, "cluster[" + std::to_string(c) +
                                 "] references unknown section [" + *slots[c] +
                                 "]");
        continue;
      }
      SectionReader r(interp, *sec, diags);
      cfg.cluster_overrides[c] = cluster_resources_from(r);
      r.check_unknown("[" + sec->name + "]");
    }
  }

  if (const Entry* lat_ref = msec->find("latency"); lat_ref != nullptr) {
    if (const auto name = m.get_string_opt("latency"))
      read_referenced_section(
          file, interp, diags, *lat_ref, *name,
          [&cfg](SectionReader& r) { cfg.lat = latency_from(r); });
  }
  if (const Entry* ic_ref = msec->find("icache"); ic_ref != nullptr) {
    if (const auto name = m.get_string_opt("icache"))
      read_referenced_section(
          file, interp, diags, *ic_ref, *name,
          [&cfg](SectionReader& r) { cfg.icache = cache_from(r); });
  }
  if (const Entry* dc_ref = msec->find("dcache"); dc_ref != nullptr) {
    if (const auto name = m.get_string_opt("dcache"))
      read_referenced_section(
          file, interp, diags, *dc_ref, *name,
          [&cfg](SectionReader& r) { cfg.dcache = cache_from(r); });
  }
  if (const Entry* mem_ref = msec->find("memory"); mem_ref != nullptr) {
    if (const auto name = m.get_string_opt("memory"))
      read_referenced_section(file, interp, diags, *mem_ref, *name,
                              [&](SectionReader& r) {
                                cfg.memory =
                                    memory_from(file, interp, diags, r);
                              });
  }
  m.check_unknown("[machine]");
  return cfg;
}

MachineConfig load_machine(const std::string& path) {
  const ConfigFile file = ConfigFile::parse_file(path);
  const Interp interp(file);
  Diagnostics diags;
  const MachineConfig cfg = machine_from(file, interp, diags);
  if (diags.empty())
    for (const std::string& issue : cfg.validate_issues())
      diags.add({path, 0}, issue);
  diags.throw_if_any("machine " + path);
  return cfg;
}

namespace {

void emit_cluster(std::ostringstream& os, const std::string& name,
                  const ClusterResourceConfig& res) {
  os << "\n[" << name << "]\n"
     << "issue_slots = " << res.issue_slots << "\n"
     << "alus = " << res.alus << "\n"
     << "muls = " << res.muls << "\n"
     << "mem_units = " << res.mem_units << "\n"
     << "branch_units = " << res.branch_units << "\n";
}

void emit_cache(std::ostringstream& os, const std::string& name,
                const CacheConfig& c) {
  os << "\n[" << name << "]\n"
     << "size_bytes = " << c.size_bytes << "\n"
     << "assoc = " << c.assoc << "\n"
     << "line_bytes = " << c.line_bytes << "\n"
     << "miss_penalty = " << c.miss_penalty << "\n"
     << "perfect = " << (c.perfect ? "true" : "false") << "\n";
}

}  // namespace

std::string to_config(const MachineConfig& cfg) {
  std::ostringstream os;
  os << "# machine description generated by mdes::to_config\n"
     << "[machine]\n"
     << "clusters = " << cfg.clusters << "\n"
     << "hw_threads = " << cfg.hw_threads << "\n"
     << "technique = '" << cfg.technique.name() << "'\n"
     << "cluster_renaming = " << (cfg.cluster_renaming ? "true" : "false")
     << "\n"
     << "rf_org = '" << to_string(cfg.rf_org) << "'\n"
     << "branch_on_cluster0_only = "
     << (cfg.branch_on_cluster0_only ? "true" : "false") << "\n"
     << "stall_on_store_miss = "
     << (cfg.stall_on_store_miss ? "true" : "false") << "\n"
     << "cluster = 'cluster_base'\n";
  for (std::size_t c = 0; c < cfg.cluster_overrides.size(); ++c)
    os << "cluster[" << c << "] = 'cluster" << c << "'\n";
  os << "latency = 'latency'\n"
     << "icache = 'icache'\n"
     << "dcache = 'dcache'\n"
     << "memory = 'memory'\n";
  emit_cluster(os, "cluster_base", cfg.cluster);
  for (std::size_t c = 0; c < cfg.cluster_overrides.size(); ++c)
    emit_cluster(os, "cluster" + std::to_string(c), cfg.cluster_overrides[c]);
  os << "\n[latency]\n"
     << "alu = " << cfg.lat.alu << "\n"
     << "mul = " << cfg.lat.mul << "\n"
     << "mem = " << cfg.lat.mem << "\n"
     << "comm = " << cfg.lat.comm << "\n"
     << "cmp_to_branch = " << cfg.lat.cmp_to_branch << "\n"
     << "taken_branch_penalty = " << cfg.lat.taken_branch_penalty << "\n";
  emit_cache(os, "icache", cfg.icache);
  emit_cache(os, "dcache", cfg.dcache);
  os << "\n[memory]\n"
     << "backend = '" << to_string(cfg.memory.backend) << "'\n"
     << "l1_mshrs = " << cfg.memory.l1_mshrs << "\n"
     << "l2 = 'l2'\n"
     << "dram = 'dram'\n";
  os << "\n[l2]\n"
     << "size_bytes = " << cfg.memory.l2.size_bytes << "\n"
     << "assoc = " << cfg.memory.l2.assoc << "\n"
     << "line_bytes = " << cfg.memory.l2.line_bytes << "\n"
     << "hit_latency = " << cfg.memory.l2.hit_latency << "\n";
  os << "\n[dram]\n"
     << "banks = " << cfg.memory.dram.banks << "\n"
     << "row_bytes = " << cfg.memory.dram.row_bytes << "\n"
     << "t_row_hit = " << cfg.memory.dram.t_row_hit << "\n"
     << "t_row_closed = " << cfg.memory.dram.t_row_closed << "\n"
     << "t_row_conflict = " << cfg.memory.dram.t_row_conflict << "\n"
     << "t_bank_busy = " << cfg.memory.dram.t_bank_busy << "\n";
  return os.str();
}

}  // namespace vexsim::mdes
