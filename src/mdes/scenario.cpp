#include "mdes/scenario.hpp"

#include <sstream>

#include "util/check.hpp"

namespace vexsim::mdes {

namespace {

std::uint64_t get_u64(SectionReader& r, const std::string& key,
                      std::uint64_t def, Diagnostics& diags) {
  const Entry* entry = r.section().find(key);
  const auto v = r.get_int_opt(key);
  if (!v) return def;
  if (*v < 0) {
    diags.add(entry->loc, key + " = " + std::to_string(*v) +
                              " must be non-negative");
    return def;
  }
  return static_cast<std::uint64_t>(*v);
}

}  // namespace

Scenario scenario_from(const ConfigFile& file, const Interp& interp,
                       Diagnostics& diags) {
  Scenario s;
  const Section* sec = file.section("scenario");
  if (sec == nullptr) {
    diags.add({file.origin(), 0}, "missing [scenario] section");
    return s;
  }
  SectionReader r(interp, *sec, diags);
  if (const auto workload = r.get_string_opt("workload"))
    s.workload = *workload;
  else if (sec->find("workload") == nullptr)
    diags.add(sec->loc, "[scenario] needs a workload key");
  s.contexts = r.get_int_in("contexts", s.contexts, 1, 64);
  if (const Entry* entry = sec->find("technique"); entry != nullptr) {
    if (const auto name = r.get_string_opt("technique")) {
      try {
        s.technique = Technique::parse(*name);
        s.has_technique = true;
      } catch (const CheckError& e) {
        diags.add(entry->loc, e.what());
      }
    }
  }
  s.opt.scale = r.get_double("scale", s.opt.scale);
  s.opt.budget = get_u64(r, "budget", s.opt.budget, diags);
  s.opt.timeslice = get_u64(r, "timeslice", s.opt.timeslice, diags);
  s.opt.max_cycles = get_u64(r, "max_cycles", s.opt.max_cycles, diags);
  s.opt.seed = get_u64(r, "seed", s.opt.seed, diags);
  s.opt.fast_forward = r.get_bool("fast_forward", s.opt.fast_forward);
  s.opt.fused = r.get_bool("fused", s.opt.fused);
  if (const Entry* entry = sec->find("compiler"); entry != nullptr) {
    if (const auto name = r.get_string_opt("compiler")) {
      try {
        s.opt.compiler = cc::CompilerOptions::parse(*name);
      } catch (const CheckError& e) {
        diags.add(entry->loc, e.what());
      }
    }
  }
  r.check_unknown("[scenario]");
  return s;
}

MachineConfig apply(const Scenario& s, MachineConfig base) {
  if (s.contexts > 0) base.hw_threads = s.contexts;
  if (s.has_technique) base.technique = s.technique;
  return base;
}

MachineScenario load_machine_scenario(const std::string& path) {
  const ConfigFile file = ConfigFile::parse_file(path);
  const Interp interp(file);
  Diagnostics diags;
  MachineScenario ms;
  ms.machine = machine_from(file, interp, diags);
  ms.scenario = scenario_from(file, interp, diags);
  ms.machine = apply(ms.scenario, ms.machine);
  if (diags.empty())
    for (const std::string& issue : ms.machine.validate_issues())
      diags.add({path, 0}, issue);
  diags.throw_if_any("scenario " + path);
  return ms;
}

std::string to_config(const Scenario& s) {
  std::ostringstream os;
  os << "[scenario]\n"
     << "workload = '" << s.workload << "'\n";
  if (s.contexts > 0) os << "contexts = " << s.contexts << "\n";
  if (s.has_technique) os << "technique = '" << s.technique.name() << "'\n";
  os << "scale = " << format_double(s.opt.scale) << "\n"
     << "budget = " << s.opt.budget << "\n"
     << "timeslice = " << s.opt.timeslice << "\n"
     << "max_cycles = " << s.opt.max_cycles << "\n"
     << "seed = " << s.opt.seed << "\n"
     << "fast_forward = " << (s.opt.fast_forward ? "true" : "false") << "\n"
     << "fused = " << (s.opt.fused ? "true" : "false") << "\n"
     << "compiler = '" << s.opt.compiler.name() << "'\n";
  return os.str();
}

}  // namespace vexsim::mdes
