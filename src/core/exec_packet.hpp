// The execution packet: the merged set of operations issued in one cycle
// (output of the merge hardware in Figure 7).
#pragma once

#include <array>
#include <cstdint>

#include "core/resources.hpp"
#include "isa/decoded_program.hpp"
#include "isa/instruction.hpp"
#include "util/inline_vec.hpp"

namespace vexsim {

struct SelectedOp {
  Operation op;
  // Decode-cache entry of `op` (operand-read flags, class, access size);
  // points into the owning program's immutable DecodedProgram.
  const DecodedOp* dec = nullptr;
  std::int8_t hw_slot = -1;          // hardware thread slot that issued it
  std::uint8_t logical_cluster = 0;  // program-view cluster (register access)
  std::uint8_t physical_cluster = 0; // after cluster renaming (resources)
};

struct ExecPacket {
  int clusters = 0;
  std::array<ResourceUse, kMaxClusters> used{};
  // For cluster-level merging: which hw thread owns each physical cluster
  // this cycle (-1 = free). Operation-level merging leaves it at -1 unless a
  // thread claimed ops there first (informational).
  std::array<std::int8_t, kMaxClusters> owner{};
  InlineVec<SelectedOp, kMaxTotalIssue> ops;

  void clear(int num_clusters) {
    clusters = num_clusters;
    used.fill(ResourceUse{});
    owner.fill(-1);
    ops.clear();
  }

  [[nodiscard]] int op_count() const { return static_cast<int>(ops.size()); }
  [[nodiscard]] bool cluster_free(int physical) const {
    return used[static_cast<std::size_t>(physical)].empty();
  }
};

}  // namespace vexsim
