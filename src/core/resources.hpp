// Collision-logic primitives (the CL boxes of Figure 7).
//
// The ResourceUse accounting itself lives one layer down in
// isa/resources.hpp (the decode cache precomputes its tables at program
// load); this header re-exports it for the merge hardware and adds the
// collision predicates used by the merge engine and its tests.
#pragma once

#include <cstdint>

#include "isa/config.hpp"
#include "isa/resources.hpp"

namespace vexsim {

// Cluster-level CL: two instructions collide if they touch a common cluster.
[[nodiscard]] inline bool cluster_collision(std::uint32_t used_mask_a,
                                            std::uint32_t used_mask_b) {
  return (used_mask_a & used_mask_b) != 0;
}

// Operation-level CL for one cluster: collision iff combined use overflows.
[[nodiscard]] inline bool operation_collision(
    const ResourceUse& a, const ResourceUse& b,
    const ClusterResourceConfig& limits, int branch_units) {
  return !a.fits_with(b, limits, branch_units);
}

}  // namespace vexsim
