#include "core/merge_engine.hpp"

#include <bit>

#include "util/check.hpp"

namespace vexsim {

bool MergeEngine::bundle_fits(const ResourceUse& use, int physical,
                              const ExecPacket& packet) const {
  const auto p = static_cast<std::size_t>(physical);
  if (cfg_->technique.merge == MergeLevel::kCluster) {
    // Cluster-level CL: the physical cluster must be completely unused.
    return packet.used[p].empty();
  }
  return packet.used[p].fits_with(use, cfg_->cluster_at(physical),
                                  cfg_->branch_units_at(physical));
}

void MergeEngine::take(ThreadContext& ctx, int cluster, std::uint8_t mask,
                       int rotation, ExecPacket& packet) {
  const Bundle& bundle = ctx.current_instruction().bundle(cluster);
  const DecodedBundle& db = ctx.issue.dec->bundle(cluster);
  const int physical = physical_cluster(cluster, rotation);
  const auto p = static_cast<std::size_t>(physical);
  const bool whole_bundle = mask == db.full_mask;
  if (whole_bundle) packet.used[p].add(db.whole_use);
  for (std::size_t i = 0; i < bundle.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    if (!whole_bundle) packet.used[p].add(db.ops[i].use);
    SelectedOp sel;
    sel.op = bundle[i];
    sel.dec = &db.ops[i];
    sel.hw_slot = static_cast<std::int8_t>(hw_slot_);
    sel.logical_cluster = static_cast<std::uint8_t>(cluster);
    sel.physical_cluster = static_cast<std::uint8_t>(physical);
    packet.ops.push_back(sel);
    --ctx.issue.pending_count;
  }
  const std::uint8_t left = static_cast<std::uint8_t>(
      ctx.issue.pending_ops[static_cast<std::size_t>(cluster)] & ~mask);
  ctx.issue.pending_ops[static_cast<std::size_t>(cluster)] = left;
  if (left == 0) ctx.issue.pending_clusters &= ~(1u << cluster);
  if (packet.owner[p] == -1) packet.owner[p] = static_cast<std::int8_t>(hw_slot_);
}

// Use of the still-pending subset of cluster `c`: the precomputed whole-bundle
// table on the (overwhelmingly common) full mask, recomputation otherwise.
const ResourceUse& MergeEngine::pending_use(const ThreadContext& ctx, int c,
                                            std::uint8_t mask,
                                            ResourceUse& scratch) const {
  const DecodedBundle& db = ctx.issue.dec->bundle(c);
  if (mask == db.full_mask) return db.whole_use;
  scratch = bundle_use(ctx.current_instruction().bundle(c), mask);
  return scratch;
}

bool MergeEngine::select_whole(ThreadContext& ctx, int rotation,
                               ExecPacket& packet) {
  // First pass: every pending bundle must fit simultaneously. Accumulate
  // hypothetical use per physical cluster so two bundles of this thread that
  // rename onto the same physical cluster are rejected coherently (cannot
  // happen with rotation renaming, but keeps the check airtight).
  const std::uint32_t clusters = ctx.issue.pending_clusters;
  for (std::uint32_t m = clusters; m != 0; m &= m - 1) {
    const int c = std::countr_zero(m);
    const std::uint8_t mask = ctx.issue.pending_ops[static_cast<std::size_t>(c)];
    ResourceUse scratch;
    const ResourceUse& use = pending_use(ctx, c, mask, scratch);
    if (!bundle_fits(use, physical_cluster(c, rotation), packet)) return false;
  }
  for (std::uint32_t m = clusters; m != 0; m &= m - 1) {
    const int c = std::countr_zero(m);
    take(ctx, c, ctx.issue.pending_ops[static_cast<std::size_t>(c)], rotation,
         packet);
  }
  return true;
}

int MergeEngine::select_bundles(ThreadContext& ctx, int rotation,
                                ExecPacket& packet) {
  int selected = 0;
  for (std::uint32_t m = ctx.issue.pending_clusters; m != 0; m &= m - 1) {
    const int c = std::countr_zero(m);
    const std::uint8_t mask = ctx.issue.pending_ops[static_cast<std::size_t>(c)];
    ResourceUse scratch;
    const ResourceUse& use = pending_use(ctx, c, mask, scratch);
    if (!bundle_fits(use, physical_cluster(c, rotation), packet)) continue;
    const int before = ctx.issue.pending_count;
    take(ctx, c, mask, rotation, packet);
    selected += before - ctx.issue.pending_count;
  }
  return selected;
}

int MergeEngine::select_operations(ThreadContext& ctx, int rotation,
                                   ExecPacket& packet) {
  const DecodedInstruction& dec = *ctx.issue.dec;
  int selected = 0;
  for (std::uint32_t cm = ctx.issue.pending_clusters; cm != 0; cm &= cm - 1) {
    const int c = std::countr_zero(cm);
    const std::uint8_t mask = ctx.issue.pending_ops[static_cast<std::size_t>(c)];
    const DecodedBundle& db = dec.bundle(c);
    const int physical = physical_cluster(c, rotation);
    // Walk the set bits of the pending mask in ascending position order.
    for (std::uint8_t m = mask; m != 0;
         m = static_cast<std::uint8_t>(m & (m - 1))) {
      const auto i = static_cast<std::size_t>(
          std::countr_zero(static_cast<unsigned>(m)));
      if (!bundle_fits(db.ops[i].use, physical, packet)) continue;
      take(ctx, c, static_cast<std::uint8_t>(1u << i), rotation, packet);
      ++selected;
    }
  }
  return selected;
}

SelectResult MergeEngine::try_select(ThreadContext& ctx, int rotation,
                                     int hw_slot, ExecPacket& packet) {
  SelectResult result;
  if (!ctx.issue.active || ctx.issue.pending_count == 0) return result;
  hw_slot_ = hw_slot;
  const DecodedInstruction& dec = *ctx.issue.dec;

  const int pending_before = ctx.issue.pending_count;
  const bool whole_instruction_pending =
      ctx.issue.pending_count == dec.op_count;

  SplitLevel split = cfg_->technique.split;
  if (split != SplitLevel::kNone &&
      cfg_->technique.comm == CommPolicy::kNoSplit && dec.has_comm) {
    split = SplitLevel::kNone;  // NS: never split communication instructions
    ++stats_.comm_nosplit_forced;
  }

  switch (split) {
    case SplitLevel::kNone:
      if (select_whole(ctx, rotation, packet))
        result.ops_selected = pending_before;
      break;
    case SplitLevel::kCluster:
      result.ops_selected = select_bundles(ctx, rotation, packet);
      break;
    case SplitLevel::kOperation:
      result.ops_selected = select_operations(ctx, rotation, packet);
      break;
  }

  result.selected_any = result.ops_selected > 0;
  result.last_part = ctx.issue.pending_count == 0;
  if (result.selected_any && !result.last_part) ctx.issue.was_split = true;
  // An instruction that completes now but issued parts in earlier cycles was
  // also split.
  if (result.last_part && !whole_instruction_pending)
    ctx.issue.was_split = true;

  if (!result.selected_any)
    ++stats_.blocked_selections;
  else if (result.last_part && whole_instruction_pending)
    ++stats_.full_selections;
  else
    ++stats_.partial_selections;
  return result;
}

}  // namespace vexsim
