// The merge engine: the paper's merging hardware (Figure 7) for every
// technique point in (merge level) × (split level) × (comm policy).
//
// Each cycle the simulator walks the hardware threads in priority order and
// calls try_select() (or the sink-templated select()) for each; the engine
// adds as much of the thread's pending work to the cycle as the technique
// permits:
//
//   split = none      → the whole remaining instruction merges or nothing
//                        does (classic SMT / CSMT);
//   split = cluster   → each pending *bundle* merges independently into its
//                        cluster (CCSI / COSI) — no intra-bundle splitting;
//   split = operation → each pending *operation* merges independently
//                        (OOSI), one FU slot at a time.
//
// Under CommPolicy::kNoSplit, instructions containing send/recv operations
// are forced back to all-or-nothing regardless of the split level.
//
// Selection is written against a Sink so the simulator can choose what
// winning means: PacketSink materializes an ExecPacket of SelectedOps (the
// reference engine, and what tracing tools inspect), while the simulator's
// fused engine executes each operation the moment it wins selection — no
// packet, no second walk. A Sink provides:
//
//   ResourceUse& used(std::size_t physical);   // the cycle's per-cluster use
//   void claim(std::size_t physical);          // cluster ownership bookkeeping
//   void emit(const Operation&, const DecodedOp&, int logical, int physical);
//
// Per-cluster capacities are packed into SWAR words once at construction
// (pack_limits), so a fits probe is one word subtract — asymmetric
// geometries no longer re-read cluster_at() inside the select loop.
//
// The engine also produces the paper's per-thread "last-part" signal: true
// when the selection completed the thread's instruction this cycle, which is
// when the delay buffers drain to the register file and memory.
#pragma once

#include <bit>

#include "arch/thread_context.hpp"
#include "core/exec_packet.hpp"
#include "isa/config.hpp"

namespace vexsim {

struct SelectResult {
  int ops_selected = 0;
  bool selected_any = false;
  bool last_part = false;   // thread's instruction fully issued this cycle
};

struct MergeEngineStats {
  std::uint64_t full_selections = 0;     // instruction issued in one piece
  std::uint64_t partial_selections = 0;  // at least one bundle/op deferred
  std::uint64_t blocked_selections = 0;  // nothing could merge this cycle
  std::uint64_t comm_nosplit_forced = 0; // NS forced all-or-nothing
  friend bool operator==(const MergeEngineStats&,
                         const MergeEngineStats&) = default;
};

// The reference sink: selection fills an ExecPacket for a later execute walk.
struct PacketSink {
  ExecPacket& packet;
  int hw_slot;

  [[nodiscard]] ResourceUse& used(std::size_t physical) {
    return packet.used[physical];
  }
  void claim(std::size_t physical) {
    if (packet.owner[physical] == -1)
      packet.owner[physical] = static_cast<std::int8_t>(hw_slot);
  }
  void emit(const Operation& op, const DecodedOp& dec, int logical,
            int physical) {
    SelectedOp sel;
    sel.op = op;
    sel.dec = &dec;
    sel.hw_slot = static_cast<std::int8_t>(hw_slot);
    sel.logical_cluster = static_cast<std::uint8_t>(logical);
    sel.physical_cluster = static_cast<std::uint8_t>(physical);
    packet.ops.push_back(sel);
  }
};

class MergeEngine {
 public:
  explicit MergeEngine(const MachineConfig& cfg) : cfg_(&cfg) {
    cluster_level_merge_ = cfg.technique.merge == MergeLevel::kCluster;
    split_ = cfg.technique.split;
    comm_no_split_ = cfg.technique.comm == CommPolicy::kNoSplit;
    clusters_ = cfg.clusters;
    for (int c = 0; c < cfg.clusters; ++c)
      packed_limits_[static_cast<std::size_t>(c)] =
          ResourceUse::pack_limits(cfg.cluster_at(c), cfg.branch_units_at(c));
  }

  // Adds pending work of the thread to `packet` according to the technique.
  // `rotation` is the thread's static cluster-renaming rotation; `hw_slot`
  // identifies the hardware thread context for the packet bookkeeping.
  SelectResult try_select(ThreadContext& ctx, int rotation, int hw_slot,
                          ExecPacket& packet) {
    PacketSink sink{packet, hw_slot};
    return select(ctx, rotation, sink);
  }

  // The sink-templated core: identical selection decisions for any sink.
  template <typename Sink>
  SelectResult select(ThreadContext& ctx, int rotation, Sink& sink) {
    SelectResult result;
    if (!ctx.issue.active || ctx.issue.pending_count == 0) return result;
    const DecodedInstruction& dec = *ctx.issue.dec;

    const int pending_before = ctx.issue.pending_count;
    const bool whole_instruction_pending =
        ctx.issue.pending_count == dec.op_count;

    SplitLevel split = split_;
    if (split != SplitLevel::kNone && comm_no_split_ && dec.has_comm) {
      split = SplitLevel::kNone;  // NS: never split communication instructions
      ++stats_.comm_nosplit_forced;
    }

    switch (split) {
      case SplitLevel::kNone:
        if (select_whole(ctx, rotation, sink))
          result.ops_selected = pending_before;
        break;
      case SplitLevel::kCluster:
        result.ops_selected = select_bundles(ctx, rotation, sink);
        break;
      case SplitLevel::kOperation:
        result.ops_selected = select_operations(ctx, rotation, sink);
        break;
    }

    result.selected_any = result.ops_selected > 0;
    result.last_part = ctx.issue.pending_count == 0;
    if (result.selected_any && !result.last_part) ctx.issue.was_split = true;
    // An instruction that completes now but issued parts in earlier cycles
    // was also split.
    if (result.last_part && !whole_instruction_pending)
      ctx.issue.was_split = true;

    if (!result.selected_any)
      ++stats_.blocked_selections;
    else if (result.last_part && whole_instruction_pending)
      ++stats_.full_selections;
    else
      ++stats_.partial_selections;
    return result;
  }

  [[nodiscard]] const MergeEngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MergeEngineStats{}; }

  // Both operands are below clusters_, so the wraparound is one conditional
  // subtract — no integer division in the select loop.
  [[nodiscard]] int physical_cluster(int logical, int rotation) const {
    const int sum = logical + rotation;
    return sum >= clusters_ ? sum - clusters_ : sum;
  }

  // Packed SWAR capacity word of a physical cluster (exposed for tests).
  [[nodiscard]] std::uint64_t packed_limits(int physical) const {
    return packed_limits_[static_cast<std::size_t>(physical)];
  }

 private:
  template <typename Sink>
  [[nodiscard]] bool bundle_fits(const ResourceUse& use, int physical,
                                 Sink& sink) const {
    const auto p = static_cast<std::size_t>(physical);
    if (cluster_level_merge_) {
      // Cluster-level CL: the physical cluster must be completely unused.
      return sink.used(p).empty();
    }
    return sink.used(p).fits_packed(use, packed_limits_[p]);
  }

  template <typename Sink>
  void take(ThreadContext& ctx, int cluster, std::uint8_t mask, int rotation,
            Sink& sink) {
    const Bundle& bundle = ctx.current_instruction().bundle(cluster);
    const DecodedBundle& db = ctx.issue.dec->bundle(cluster);
    const int physical = physical_cluster(cluster, rotation);
    const auto p = static_cast<std::size_t>(physical);
    const bool whole_bundle = mask == db.full_mask;
    if (whole_bundle) sink.used(p).add(db.whole_use);
    for (std::size_t i = 0; i < bundle.size(); ++i) {
      if ((mask & (1u << i)) == 0) continue;
      if (!whole_bundle) sink.used(p).add(db.ops[i].use);
      sink.emit(bundle[i], db.ops[i], cluster, physical);
      --ctx.issue.pending_count;
    }
    const std::uint8_t left = static_cast<std::uint8_t>(
        ctx.issue.pending_ops[static_cast<std::size_t>(cluster)] & ~mask);
    ctx.issue.pending_ops[static_cast<std::size_t>(cluster)] = left;
    if (left == 0) ctx.issue.pending_clusters &= ~(1u << cluster);
    sink.claim(p);
  }

  // All-or-nothing selection (split disabled or NS-forced).
  template <typename Sink>
  bool select_whole(ThreadContext& ctx, int rotation, Sink& sink) {
    // First pass: every pending bundle must fit simultaneously. Accumulate
    // hypothetical use per physical cluster so two bundles of this thread
    // that rename onto the same physical cluster are rejected coherently
    // (cannot happen with rotation renaming, but keeps the check airtight).
    const std::uint32_t clusters = ctx.issue.pending_clusters;
    for (std::uint32_t m = clusters; m != 0; m &= m - 1) {
      const int c = std::countr_zero(m);
      const std::uint8_t mask =
          ctx.issue.pending_ops[static_cast<std::size_t>(c)];
      ResourceUse scratch;
      const ResourceUse& use = pending_use(ctx, c, mask, scratch);
      if (!bundle_fits(use, physical_cluster(c, rotation), sink)) return false;
    }
    for (std::uint32_t m = clusters; m != 0; m &= m - 1) {
      const int c = std::countr_zero(m);
      take(ctx, c, ctx.issue.pending_ops[static_cast<std::size_t>(c)],
           rotation, sink);
    }
    return true;
  }

  // Independent per-bundle selection (cluster-level split).
  template <typename Sink>
  int select_bundles(ThreadContext& ctx, int rotation, Sink& sink) {
    int selected = 0;
    for (std::uint32_t m = ctx.issue.pending_clusters; m != 0; m &= m - 1) {
      const int c = std::countr_zero(m);
      const std::uint8_t mask =
          ctx.issue.pending_ops[static_cast<std::size_t>(c)];
      ResourceUse scratch;
      const ResourceUse& use = pending_use(ctx, c, mask, scratch);
      if (!bundle_fits(use, physical_cluster(c, rotation), sink)) continue;
      const int before = ctx.issue.pending_count;
      take(ctx, c, mask, rotation, sink);
      selected += before - ctx.issue.pending_count;
    }
    return selected;
  }

  // Independent per-operation selection (operation-level split).
  template <typename Sink>
  int select_operations(ThreadContext& ctx, int rotation, Sink& sink) {
    const DecodedInstruction& dec = *ctx.issue.dec;
    int selected = 0;
    for (std::uint32_t cm = ctx.issue.pending_clusters; cm != 0;
         cm &= cm - 1) {
      const int c = std::countr_zero(cm);
      const std::uint8_t mask =
          ctx.issue.pending_ops[static_cast<std::size_t>(c)];
      const DecodedBundle& db = dec.bundle(c);
      const int physical = physical_cluster(c, rotation);
      // Walk the set bits of the pending mask in ascending position order.
      for (std::uint8_t m = mask; m != 0;
           m = static_cast<std::uint8_t>(m & (m - 1))) {
        const auto i = static_cast<std::size_t>(
            std::countr_zero(static_cast<unsigned>(m)));
        if (!bundle_fits(db.ops[i].use, physical, sink)) continue;
        take(ctx, c, static_cast<std::uint8_t>(1u << i), rotation, sink);
        ++selected;
      }
    }
    return selected;
  }

  // Resource use of the pending subset of logical cluster `c`: returns the
  // decode cache's whole-bundle table when the mask is full (the only mask
  // whole/bundle selection ever produces), computing into `scratch`
  // otherwise. Inline: this runs once per bundle probe in the select loop.
  [[nodiscard]] const ResourceUse& pending_use(const ThreadContext& ctx,
                                               int c, std::uint8_t mask,
                                               ResourceUse& scratch) const {
    const DecodedBundle& db = ctx.issue.dec->bundle(c);
    if (mask == db.full_mask) return db.whole_use;
    scratch = bundle_use(ctx.current_instruction().bundle(c), mask);
    return scratch;
  }

  const MachineConfig* cfg_;
  // Per-physical-cluster capacities in the packed SWAR form, hoisted from
  // the config once at construction (cluster_at() indirection would
  // otherwise run per fits probe on asymmetric machines). The technique
  // fields are hoisted for the same reason: select() runs per thread per
  // cycle and must not chase the config pointer.
  std::array<std::uint64_t, kMaxClusters> packed_limits_{};
  bool cluster_level_merge_ = false;
  bool comm_no_split_ = false;
  SplitLevel split_ = SplitLevel::kNone;
  int clusters_ = 0;
  MergeEngineStats stats_;
};

}  // namespace vexsim
