// The merge engine: the paper's merging hardware (Figure 7) for every
// technique point in (merge level) × (split level) × (comm policy).
//
// Each cycle the simulator walks the hardware threads in priority order and
// calls try_select() for each; the engine adds as much of the thread's
// pending work to the execution packet as the technique permits:
//
//   split = none      → the whole remaining instruction merges or nothing
//                        does (classic SMT / CSMT);
//   split = cluster   → each pending *bundle* merges independently into its
//                        cluster (CCSI / COSI) — no intra-bundle splitting;
//   split = operation → each pending *operation* merges independently
//                        (OOSI), one FU slot at a time.
//
// Under CommPolicy::kNoSplit, instructions containing send/recv operations
// are forced back to all-or-nothing regardless of the split level.
//
// The engine also produces the paper's per-thread "last-part" signal: true
// when the selection completed the thread's instruction this cycle, which is
// when the delay buffers drain to the register file and memory.
#pragma once

#include "arch/thread_context.hpp"
#include "core/exec_packet.hpp"
#include "isa/config.hpp"

namespace vexsim {

struct SelectResult {
  int ops_selected = 0;
  bool selected_any = false;
  bool last_part = false;   // thread's instruction fully issued this cycle
};

struct MergeEngineStats {
  std::uint64_t full_selections = 0;     // instruction issued in one piece
  std::uint64_t partial_selections = 0;  // at least one bundle/op deferred
  std::uint64_t blocked_selections = 0;  // nothing could merge this cycle
  std::uint64_t comm_nosplit_forced = 0; // NS forced all-or-nothing
};

class MergeEngine {
 public:
  explicit MergeEngine(const MachineConfig& cfg) : cfg_(&cfg) {}

  // Adds pending work of the thread to `packet` according to the technique.
  // `rotation` is the thread's static cluster-renaming rotation; `hw_slot`
  // identifies the hardware thread context for the packet bookkeeping.
  SelectResult try_select(ThreadContext& ctx, int rotation, int hw_slot,
                          ExecPacket& packet);

  [[nodiscard]] const MergeEngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MergeEngineStats{}; }

  [[nodiscard]] int physical_cluster(int logical, int rotation) const {
    return (logical + rotation) % cfg_->clusters;
  }

 private:
  // All-or-nothing selection (split disabled or NS-forced).
  bool select_whole(ThreadContext& ctx, int rotation, ExecPacket& packet);
  // Independent per-bundle selection (cluster-level split).
  int select_bundles(ThreadContext& ctx, int rotation, ExecPacket& packet);
  // Independent per-operation selection (operation-level split).
  int select_operations(ThreadContext& ctx, int rotation, ExecPacket& packet);

  [[nodiscard]] bool bundle_fits(const ResourceUse& use, int physical,
                                 const ExecPacket& packet) const;

  // Resource use of the pending subset of logical cluster `c`: returns the
  // decode cache's whole-bundle table when the mask is full (the only mask
  // whole/bundle selection ever produces), computing into `scratch`
  // otherwise.
  [[nodiscard]] const ResourceUse& pending_use(const ThreadContext& ctx,
                                               int c, std::uint8_t mask,
                                               ResourceUse& scratch) const;

  void take(ThreadContext& ctx, int cluster, std::uint8_t mask, int rotation,
            ExecPacket& packet);

  int hw_slot_ = -1;  // slot of the thread currently being selected

  const MachineConfig* cfg_;
  MergeEngineStats stats_;
};

}  // namespace vexsim
