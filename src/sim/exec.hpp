// Functional semantics of individual operations, shared by the
// cycle-accurate simulator and the architectural reference interpreter.
//
// Defined inline: eval_scalar runs once per executed ALU/MUL operation
// (millions of calls per simulated second), so the evaluators must be
// inlinable into the execute loop rather than sit behind a cross-TU call.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"
#include "isa/operation.hpp"
#include "util/check.hpp"

namespace vexsim {

// Scalar result of ALU / MUL opcodes. `a` = src1 value, `b` = src2 value
// (register or immediate, resolved by the caller), `bv` = branch-register
// value for slct/slctf. Comparisons return 0/1.
[[nodiscard]] inline std::uint32_t eval_scalar(Opcode opc, std::uint32_t a,
                                               std::uint32_t b, bool bv) {
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  switch (opc) {
    case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kAnd: return a & b;
    case Opcode::kAndc: return ~a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kShl: return b >= 32 ? 0 : a << (b & 31);
    case Opcode::kShr:
      return static_cast<std::uint32_t>(b >= 32 ? (sa < 0 ? -1 : 0)
                                                : sa >> (b & 31));
    case Opcode::kShru: return b >= 32 ? 0 : a >> (b & 31);
    case Opcode::kMin: return static_cast<std::uint32_t>(sa < sb ? sa : sb);
    case Opcode::kMax: return static_cast<std::uint32_t>(sa > sb ? sa : sb);
    case Opcode::kMinu: return a < b ? a : b;
    case Opcode::kMaxu: return a > b ? a : b;
    case Opcode::kMov: return a;
    case Opcode::kMovi: return b;  // caller passes imm as b
    case Opcode::kSxtb: return static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int8_t>(a)));
    case Opcode::kSxth: return static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int16_t>(a)));
    case Opcode::kZxtb: return a & 0xFFu;
    case Opcode::kZxth: return a & 0xFFFFu;
    case Opcode::kCmpeq: return a == b;
    case Opcode::kCmpne: return a != b;
    case Opcode::kCmplt: return sa < sb;
    case Opcode::kCmple: return sa <= sb;
    case Opcode::kCmpgt: return sa > sb;
    case Opcode::kCmpge: return sa >= sb;
    case Opcode::kCmpltu: return a < b;
    case Opcode::kCmpgeu: return a >= b;
    case Opcode::kSlct: return bv ? a : b;
    case Opcode::kSlctf: return bv ? b : a;
    case Opcode::kMpyl:
      return static_cast<std::uint32_t>(
          static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(sb));
    case Opcode::kMpyh:
      return static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(sb)) >>
          32);
    default:
      VEXSIM_CHECK_MSG(false, "eval_scalar: non-scalar opcode "
                                  << opcode_name(opc));
  }
  return 0;
}

// Sign/zero extension of a raw loaded value according to the load opcode.
[[nodiscard]] inline std::uint32_t extend_loaded(Opcode opc,
                                                 std::uint32_t raw) {
  switch (opc) {
    case Opcode::kLdw: return raw;
    case Opcode::kLdh:
      return static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int16_t>(raw)));
    case Opcode::kLdhu: return raw & 0xFFFFu;
    case Opcode::kLdb:
      return static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int8_t>(raw)));
    case Opcode::kLdbu: return raw & 0xFFu;
    default:
      VEXSIM_CHECK_MSG(false, "not a load opcode");
  }
  return 0;
}

// Branch decision for br/brf/goto given the branch-register value.
[[nodiscard]] inline bool branch_taken(Opcode opc, bool bv) {
  switch (opc) {
    case Opcode::kBr: return bv;
    case Opcode::kBrf: return !bv;
    case Opcode::kGoto: return true;
    default:
      return false;
  }
}

}  // namespace vexsim
