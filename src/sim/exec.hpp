// Functional semantics of individual operations, shared by the
// cycle-accurate simulator and the architectural reference interpreter.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"
#include "isa/operation.hpp"

namespace vexsim {

// Scalar result of ALU / MUL opcodes. `a` = src1 value, `b` = src2 value
// (register or immediate, resolved by the caller), `bv` = branch-register
// value for slct/slctf. Comparisons return 0/1.
[[nodiscard]] std::uint32_t eval_scalar(Opcode opc, std::uint32_t a,
                                        std::uint32_t b, bool bv);

// Sign/zero extension of a raw loaded value according to the load opcode.
[[nodiscard]] std::uint32_t extend_loaded(Opcode opc, std::uint32_t raw);

// Branch decision for br/brf/goto given the branch-register value.
[[nodiscard]] bool branch_taken(Opcode opc, bool bv);

}  // namespace vexsim
