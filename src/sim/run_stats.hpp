// Machine-level statistics accumulated by the simulator.
#pragma once

#include <cstdint>

#include "core/merge_engine.hpp"
#include "mem/cache.hpp"

namespace vexsim {

struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t ops_issued = 0;           // operations entering execution
  std::uint64_t instructions_retired = 0; // VLIW instructions completed
  std::uint64_t split_instructions = 0;   // completed in more than one cycle
  std::uint64_t vertical_waste_cycles = 0;
  std::uint64_t multi_thread_cycles = 0;  // packets holding >1 thread's ops
  std::uint64_t memport_stall_cycles = 0; // buffered-store drain conflicts
  std::uint64_t drain_cycles = 0;         // context-switch pipeline drains
  std::uint64_t taken_branches = 0;
  std::uint64_t faults = 0;

  // Field-wise equality: the fused-engine equivalence suite asserts runs are
  // bit-identical across engine variants.
  friend bool operator==(const SimStats&, const SimStats&) = default;

  // Operations per cycle — the paper's IPC metric (an "instruction" in the
  // IPC sense is a RISC operation; 1 VLIW instruction = 1..16 operations).
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(ops_issued) /
                             static_cast<double>(cycles);
  }

  // Issue-slot waste split per the paper's Section I definitions.
  [[nodiscard]] double vertical_waste_fraction(int issue_width) const {
    if (cycles == 0) return 0.0;
    return static_cast<double>(vertical_waste_cycles) /
           static_cast<double>(cycles) * 1.0 *
           static_cast<double>(issue_width) /
           static_cast<double>(issue_width);
  }
  [[nodiscard]] double horizontal_waste_fraction(int issue_width) const {
    if (cycles == 0) return 0.0;
    const double total_slots =
        static_cast<double>(cycles) * static_cast<double>(issue_width);
    const double vertical = static_cast<double>(vertical_waste_cycles) *
                            static_cast<double>(issue_width);
    return (total_slots - vertical - static_cast<double>(ops_issued)) /
           total_slots;
  }
};

}  // namespace vexsim
