#include "sim/driver.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace vexsim {

MultiprogramDriver::MultiprogramDriver(
    const MachineConfig& cfg,
    std::vector<std::shared_ptr<const Program>> programs, DriverParams params)
    : cfg_(cfg), params_(params), sim_(cfg), rng_(params.seed) {
  VEXSIM_CHECK_MSG(!programs.empty(), "workload needs at least one program");
  sim_.set_fast_forward(params_.fast_forward);
  sim_.set_fused(params_.fused);
  if (params_.profile) sim_.set_profile(true);
  instances_.reserve(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i)
    instances_.push_back(std::make_unique<ThreadContext>(
        static_cast<int>(i), std::move(programs[i])));
  running_.assign(static_cast<std::size_t>(cfg_.hw_threads), -1);
}

void MultiprogramDriver::schedule_initial() {
  // Deterministic initial placement: instance i on slot i (mod wraparound
  // handled by the first context switch).
  int slot = 0;
  for (std::size_t i = 0; i < instances_.size() && slot < cfg_.hw_threads;
       ++i) {
    if (instances_[i]->state != RunState::kReady) continue;
    sim_.attach(slot, instances_[i].get());
    running_[static_cast<std::size_t>(slot)] = static_cast<int>(i);
    ++slot;
  }
}

bool MultiprogramDriver::budget_reached() const {
  for (const auto& inst : instances_)
    if (inst->total_instructions >= params_.budget) return true;
  return false;
}

void MultiprogramDriver::context_switch() {
  // Detach everything.
  for (int s = 0; s < cfg_.hw_threads; ++s) {
    if (running_[static_cast<std::size_t>(s)] >= 0) sim_.detach(s);
    running_[static_cast<std::size_t>(s)] = -1;
  }
  // Replacement threads are picked at random from the workload (Sec. VI-A).
  std::vector<std::size_t> order(instances_.size());
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng_.below(static_cast<std::uint32_t>(i))]);
  int slot = 0;
  for (const std::size_t idx : order) {
    if (slot >= cfg_.hw_threads) break;
    ThreadContext& inst = *instances_[idx];
    if (inst.state == RunState::kFaulted) continue;
    if (inst.state == RunState::kHalted) {
      if (!params_.respawn) continue;
      inst.respawn();
    }
    sim_.attach(slot, &inst);
    running_[static_cast<std::size_t>(slot)] = static_cast<int>(idx);
    ++slot;
  }
}

RunResult MultiprogramDriver::run() {
  schedule_initial();
  std::uint64_t next_switch = params_.timeslice;
  bool switch_pending = false;

  int last_ops = 0;
  while (sim_.cycle() < params_.max_cycles) {
    // Idle-cycle batching must never jump the clock over a driver decision
    // point: the next timeslice expiry (drain start) or the cycle budget.
    // Probing is only worthwhile after an empty cycle — a cycle that issued
    // something almost always leaves work in flight.
    if (last_ops == 0) {
      std::uint64_t ff_limit = params_.max_cycles;
      if (!switch_pending && instances_.size() > 1)
        ff_limit = std::min(ff_limit, next_switch);
      sim_.fast_forward(ff_limit);
    }
    const std::uint64_t retired_before = sim_.stats().instructions_retired;
    const std::uint64_t exits_before = sim_.thread_exit_events();
    last_ops = sim_.step();

    // Instance states only move when a thread halts or faults; the
    // respawn/refill scan and the all-done check are no-ops otherwise (most
    // retiring cycles), so they are gated on the simulator's exit-event
    // counter rather than rescanning every instance state.
    if (sim_.thread_exit_events() != exits_before) {
      // Respawn benchmarks that ran to completion within their slice.
      for (int s = 0; s < cfg_.hw_threads; ++s) {
        const int idx = running_[static_cast<std::size_t>(s)];
        if (idx < 0) continue;
        ThreadContext& inst = *instances_[static_cast<std::size_t>(idx)];
        if (inst.state == RunState::kHalted && params_.respawn &&
            inst.total_instructions < params_.budget) {
          inst.respawn();
        } else if (inst.state != RunState::kReady) {
          // Finished (no respawn) or faulted: free the slot and pull in the
          // next idle instance, if any.
          sim_.detach(s);
          running_[static_cast<std::size_t>(s)] = -1;
          for (std::size_t j = 0; j < instances_.size(); ++j) {
            const bool already_running =
                std::find(running_.begin(), running_.end(),
                          static_cast<int>(j)) != running_.end();
            if (already_running ||
                instances_[j]->state != RunState::kReady)
              continue;
            sim_.attach(s, instances_[j].get());
            running_[static_cast<std::size_t>(s)] = static_cast<int>(j);
            break;
          }
        }
      }

      // All instances done (run-to-completion mode)?
      if (std::all_of(instances_.begin(), instances_.end(), [](const auto& t) {
            return t->state != RunState::kReady;
          }))
        break;
    }

    // The budget can only be crossed by a retirement; the break must happen
    // on exactly that cycle (the cycle counts in RunStats depend on it).
    if (sim_.stats().instructions_retired != retired_before &&
        budget_reached())
      break;

    // Timeslice handling: drain, then switch.
    if (!switch_pending && sim_.cycle() >= next_switch &&
        instances_.size() > 1) {
      switch_pending = true;
      sim_.set_drain(true);
    }
    if (switch_pending && sim_.quiesced()) {
      context_switch();
      sim_.set_drain(false);
      switch_pending = false;
      next_switch = sim_.cycle() + params_.timeslice;
    }
  }

  RunResult result;
  result.sim = sim_.stats();
  result.icache = sim_.icache().stats();
  result.dcache = sim_.dcache().stats();
  result.memory = sim_.memory_backend().memory_stats();
  result.merge = sim_.merge_engine().stats();
  result.issue_width = cfg_.total_issue_width();
  result.profile = sim_.profile();
  for (const auto& inst : instances_) {
    InstanceResult ir;
    ir.name = inst->program().name;
    ir.instructions = inst->total_instructions;
    ir.respawns = inst->respawns;
    ir.arch_fingerprint = inst->arch_fingerprint(cfg_.clusters);
    ir.faulted = inst->state == RunState::kFaulted;
    ir.counters = inst->counters;
    result.instances.push_back(std::move(ir));
  }
  return result;
}

}  // namespace vexsim
