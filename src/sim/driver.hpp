// Multiprogrammed workload driver (Section VI-A).
//
// The hardware thread slots are exposed as virtual CPUs; the driver
// schedules as many benchmark instances as there are slots, with a fixed
// timeslice. At timeslice expiry the pipeline drains, a context switch
// replaces the running set with instances picked at random (seeded), and
// execution continues. Benchmarks that finish are respawned. The run ends
// when any instance has retired `budget` VLIW instructions in total.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/thread_context.hpp"
#include "isa/config.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace vexsim {

struct DriverParams {
  std::uint64_t timeslice = 5'000'000;  // cycles (paper value)
  std::uint64_t budget = 200'000'000;   // VLIW instructions (paper value)
  std::uint64_t max_cycles = ~0ull;     // safety valve
  std::uint64_t seed = 12345;
  bool respawn = true;  // restart finished benchmarks (paper behaviour)
  // Batch provably-idle cycles arithmetically (Simulator::fast_forward).
  // Statistics are bit-identical either way; off retains the pure
  // cycle-by-cycle loop for cross-checking and speed measurement.
  bool fast_forward = true;
  // Run the fused select+execute engine (Simulator::set_fused). Statistics
  // are bit-identical either way; off retains the reference packet engine.
  bool fused = true;
  // Per-phase wall-clock accounting (Simulator::set_profile); timing only.
  bool profile = false;
};

struct InstanceResult {
  std::string name;
  std::uint64_t instructions = 0;  // VLIW, cumulative over respawns
  std::uint64_t respawns = 0;
  std::uint64_t arch_fingerprint = 0;
  bool faulted = false;
  ThreadCounters counters;
};

// Static compile-quality summary of a workload's programs, aggregated over
// its components by the harness (plain counters here so the sim layer does
// not depend on the compiler's CompileStats type).
struct CompileSummary {
  std::uint64_t instructions = 0;   // static VLIW instructions
  std::uint64_t operations = 0;     // static operations
  std::uint64_t copies_inserted = 0;  // inter-cluster send/recv pairs
  std::uint64_t swp_loops = 0;        // software-pipelined loops
  bool present = false;               // filled by the harness

  [[nodiscard]] double ops_per_instruction() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(operations) /
                     static_cast<double>(instructions);
  }
};

struct RunResult {
  SimStats sim;
  CacheStats icache;
  CacheStats dcache;
  // Hierarchy-backend statistics (MSHRs, shared L2, DRAM); `present` stays
  // false under the fixed backend and the serializers then skip the block.
  mem::MemoryStats memory;
  MergeEngineStats merge;
  std::vector<InstanceResult> instances;
  CompileSummary compile;  // filled by harness::run_workload_on
  int issue_width = 0;

  // Harness provenance, filled by harness::run_sweep; a direct
  // MultiprogramDriver::run() leaves the defaults.
  int attempts = 1;    // simulation attempts behind this result (retries)
  bool failed = false; // point exhausted its retries; stats above are empty
  std::string error;   // failure description when `failed`
  // `cached`: the result is persisted in the sweep result cache — true both
  // when this run stored it and when a later run serves it, so cold- and
  // warm-cache sweeps emit byte-identical JSON. `cache_hit`: served from
  // the cache in *this* process; never serialized.
  bool cached = false;
  bool cache_hit = false;
  // Filled when DriverParams::profile was set; never serialized.
  SimProfile profile;

  [[nodiscard]] double ipc() const { return sim.ipc(); }
};

class MultiprogramDriver {
 public:
  MultiprogramDriver(const MachineConfig& cfg,
                     std::vector<std::shared_ptr<const Program>> programs,
                     DriverParams params);

  // Runs the workload to the termination condition and returns statistics.
  RunResult run();

  // Access to contexts after run() — used by equivalence tests.
  [[nodiscard]] const ThreadContext& instance(std::size_t i) const {
    return *instances_[i];
  }
  [[nodiscard]] std::size_t num_instances() const { return instances_.size(); }

 private:
  void schedule_initial();
  void context_switch();
  [[nodiscard]] bool budget_reached() const;

  MachineConfig cfg_;
  DriverParams params_;
  Simulator sim_;
  Rng rng_;
  std::vector<std::unique_ptr<ThreadContext>> instances_;
  std::vector<int> running_;  // instance index per slot, -1 = empty
};

}  // namespace vexsim
