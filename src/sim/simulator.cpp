#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>

#include "sim/exec.hpp"
#include "util/check.hpp"

namespace vexsim {

namespace {
using ProfClock = std::chrono::steady_clock;
}  // namespace

// The fused engine's selection sink: executes each operation the instant its
// bundle wins selection, instead of materializing a SelectedOp. Selection
// order equals the reference packet's execution order, and execute_op writes
// nothing selection reads (it touches pending writes, caches, channels and
// staged stores — never issue masks or packet use), so the two engines make
// identical decisions and produce identical statistics.
struct Simulator::FusedSink {
  Simulator& sim;
  ThreadContext& ctx;
  int hw_slot;
  std::uint32_t* thread_mask;
  int* ops;

  [[nodiscard]] ResourceUse& used(std::size_t physical) {
    return sim.packet_.used[physical];
  }
  void claim(std::size_t physical) {
    if (sim.packet_.owner[physical] == -1)
      sim.packet_.owner[physical] = static_cast<std::int8_t>(hw_slot);
  }
  void emit(const Operation& op, const DecodedOp& dec, int logical,
            int physical) {
    *thread_mask |= 1u << static_cast<unsigned>(hw_slot);
    ++*ops;
    sim.execute_op(op, dec, logical, physical, ctx);
  }
};

Simulator::Simulator(const MachineConfig& cfg)
    : cfg_(cfg),
      merge_(cfg_),
      backend_(mem::make_backend(cfg_)),
      icache_ptr_(&backend_->icache()),
      dcache_ptr_(&backend_->dcache()) {
  cfg_.validate();
  packet_.clear(cfg_.clusters);
  for (const OpClass cls : {OpClass::kNop, OpClass::kAlu, OpClass::kMul,
                            OpClass::kMem, OpClass::kBranch, OpClass::kComm})
    lat_by_class_[static_cast<std::size_t>(cls)] = cfg_.lat.for_class(cls);
  lat_breg_result_ = cfg_.lat.cmp_to_branch;
  for (int s = 0; s < kMaxHwThreads; ++s)
    rotation_[static_cast<std::size_t>(s)] =
        s < cfg_.hw_threads ? cfg_.renaming_rotation(s) : 0;
  for (int c = 0; c < cfg_.clusters; ++c)
    mem_units_[static_cast<std::size_t>(c)] = cfg_.cluster_at(c).mem_units;
}

void Simulator::attach(int slot, ThreadContext* ctx) {
  VEXSIM_CHECK(slot >= 0 && slot < cfg_.hw_threads);
  VEXSIM_CHECK_MSG(slots_[static_cast<std::size_t>(slot)] == nullptr,
                   "slot " << slot << " already occupied");
  slots_[static_cast<std::size_t>(slot)] = ctx;
  if (ctx != nullptr) {
    // Validation walks the whole program, and context switches re-attach the
    // same handful of programs every timeslice — remember what passed. The
    // memo holds shared_ptrs so a remembered address can never be recycled
    // by a different (unvalidated) program.
    bool seen = false;
    for (const std::shared_ptr<const Program>& p : validated_programs_)
      if (p.get() == &ctx->program()) seen = true;
    if (!seen) {
      ctx->program().validate(cfg_.clusters);
      if (validated_programs_.size() < kMaxValidatedPrograms)
        validated_programs_.push_back(ctx->program_ptr());
    }
    // A freshly (re)attached thread re-fetches its current instruction.
    ctx->fetch_done = false;
  }
}

ThreadContext* Simulator::detach(int slot) {
  VEXSIM_CHECK(slot >= 0 && slot < cfg_.hw_threads);
  ThreadContext* ctx = slots_[static_cast<std::size_t>(slot)];
  slots_[static_cast<std::size_t>(slot)] = nullptr;
  if (ctx == nullptr) return nullptr;
  VEXSIM_CHECK_MSG(!ctx->issue.active,
                   "detach requires a drained pipeline (instruction in flight)");
  VEXSIM_CHECK(ctx->rf_buffer.empty() && ctx->store_buffer.empty());
  // In-flight NUAL writes are architecturally determined; commit them now so
  // the context can be rescheduled later (the switched-out thread's state
  // must be precise).
  ctx->pending_writes.commit_all_to(ctx->regs);
  return ctx;
}

bool Simulator::quiesced() const {
  for (int s = 0; s < cfg_.hw_threads; ++s) {
    const ThreadContext* ctx = slots_[static_cast<std::size_t>(s)];
    if (ctx != nullptr && ctx->issue.active) return false;
  }
  return true;
}

void Simulator::refill_slot(ThreadContext* ctx) {
  // The caller hoists the common early-outs (null slot, not ready, already
  // active, drain mode) so idle/busy threads never pay the call.
  if (cycle_ < ctx->mem_block_until) {
    ++ctx->counters.dmiss_block_cycles;
    return;
  }
  if (cycle_ < ctx->next_issue_at) return;
  if (cycle_ < ctx->fetch_ready_at) {
    ++ctx->counters.imiss_block_cycles;
    return;
  }
  if (!ctx->fetch_done) {
    const std::uint32_t addr = ctx->instr_addr(ctx->pc);
    const std::uint32_t asid = static_cast<std::uint32_t>(ctx->asid());
    const bool hit = icache_ptr_->access(asid, addr);
    ctx->fetch_done = true;
    if (!hit) {
      ctx->fetch_ready_at = backend_->ifetch_miss(asid, addr, cycle_);
      ++ctx->counters.imiss_block_cycles;
      return;
    }
  }
  const DecodedInstruction& dec = ctx->current_decoded();
  IssueProgress& iss = ctx->issue;
  iss.active = true;
  iss.seq = ++ctx->seq;
  iss.started_at = cycle_;
  iss.was_split = false;
  iss.dec = &dec;
  iss.pending_count = dec.op_count;
  iss.pending_ops = dec.full_masks;
  iss.pending_clusters = dec.used_cluster_mask;
}

void Simulator::assert_no_pending_write(const ThreadContext& ctx, bool to_breg,
                                        int cluster, int idx) const {
  // Less-than-or-equal machine contract: reading a register while a write to
  // it is still in its latency window is a compiler scheduling bug. Writes of
  // the *same* instruction are exempt — same-cycle reads legally observe the
  // old value (Figure 3 swap semantics). Callers pre-filter with the
  // write-window bitmap, so this scan runs only when a write may be in
  // flight for the register.
  for (const PendingWrite& w : ctx.pending_writes) {
    if (w.to_breg == to_breg && w.cluster == cluster && w.idx == idx &&
        w.visible_at > cycle_ && w.seq != ctx.issue.seq) {
      VEXSIM_CHECK_MSG(false, "NUAL violation: read of "
                                  << (to_breg ? "b" : "r") << idx
                                  << " on cluster " << cluster
                                  << " during latency window (pc=" << ctx.pc
                                  << ")");
    }
  }
}

void Simulator::write_result(ThreadContext& ctx, const Operation& op,
                             std::uint32_t value, int latency) {
  PendingWrite w;
  w.visible_at = cycle_ + static_cast<std::uint64_t>(latency);
  w.seq = ctx.issue.seq;
  w.to_breg = op.dst_is_breg;
  w.cluster = op.cluster;
  w.idx = op.dst;
  w.value = value;
  ctx.pending_writes.push(w);
}

void Simulator::execute_op(const Operation& op, const DecodedOp& dec,
                           int logical_cluster, int physical_cluster,
                           ThreadContext& ctx) {
  if (ctx.fault.pending) return;  // instruction already faulted this cycle
  const int c = logical_cluster;

  auto read_gpr = [&](int idx) {
    if (ctx.pending_writes.maybe_pending(false, c, idx))
      assert_no_pending_write(ctx, false, c, idx);
    return ctx.regs.gpr(c, idx);
  };
  auto read_breg = [&](int idx) {
    if (ctx.pending_writes.maybe_pending(true, c, idx))
      assert_no_pending_write(ctx, true, c, idx);
    return ctx.regs.breg(c, idx);
  };

  switch (dec.cls) {
    case OpClass::kNop:
      break;
    case OpClass::kAlu:
    case OpClass::kMul: {
      const std::uint32_t a =
          dec.has(DecodedOp::kReadsSrc1) ? read_gpr(op.src1) : 0;
      const std::uint32_t b =
          dec.has(DecodedOp::kSrc2Reg)
              ? read_gpr(op.src2)
              : (dec.has(DecodedOp::kSrc2Imm)
                     ? static_cast<std::uint32_t>(op.imm)
                     : 0);
      const bool bv =
          dec.has(DecodedOp::kReadsBsrc) ? read_breg(op.bsrc) : false;
      const std::uint32_t result = eval_scalar(op.opc, a, b, bv);
      // Branch-register results obey the compare-to-branch delay (the ISA
      // contract the compiler schedules against); GPR results use the
      // functional-unit latency.
      const int latency =
          dec.has(DecodedOp::kDstBreg)
              ? lat_breg_result_
              : lat_by_class_[static_cast<std::size_t>(dec.cls)];
      write_result(ctx, op, result, latency);
      break;
    }
    case OpClass::kMem: {
      const std::uint32_t addr =
          read_gpr(op.src1) + static_cast<std::uint32_t>(op.imm);
      const int size = dec.mem_size;
      ++mem_port_use_[static_cast<std::size_t>(physical_cluster)];
      const std::uint32_t asid = static_cast<std::uint32_t>(ctx.asid());
      const bool hit = dcache_ptr_->access(asid, addr);
      if (dec.has(DecodedOp::kLoad)) {
        std::uint32_t raw = 0;
        if (!ctx.mem.load(addr, size, raw)) {
          ctx.fault = FaultInfo{true, ctx.pc, addr};
          return;
        }
        write_result(ctx, op, extend_loaded(op.opc, raw),
                     lat_by_class_[static_cast<std::size_t>(OpClass::kMem)]);
        if (!hit)
          ctx.mem_block_until =
              std::max(ctx.mem_block_until,
                       backend_->dmem_miss(asid, addr, /*is_store=*/false,
                                           cycle_));
      } else {
        const std::uint32_t value = read_gpr(op.src2);
        // Fault detection happens at issue; the actual write is staged and
        // applied after all reads so same-cycle loads see old memory.
        if (addr < MainMemory::kGuardLimit ||
            (addr & (static_cast<std::uint32_t>(size) - 1)) != 0) {
          ctx.fault = FaultInfo{true, ctx.pc, addr};
          return;
        }
        if (!hit) {
          // The fill happens (and occupies backend machinery) whether or not
          // the thread blocks on it; blocking is the write-buffer policy.
          const std::uint64_t ready =
              backend_->dmem_miss(asid, addr, /*is_store=*/true, cycle_);
          if (cfg_.stall_on_store_miss)
            ctx.mem_block_until = std::max(ctx.mem_block_until, ready);
        }
        staged_.push_back(StagedStore{&ctx, op.cluster,
                                      static_cast<std::uint8_t>(size), addr,
                                      value});
      }
      break;
    }
    case OpClass::kBranch: {
      if (op.opc == Opcode::kHalt) {
        ctx.halt_at_completion = true;
        break;
      }
      const bool bv =
          dec.has(DecodedOp::kReadsBsrc) ? read_breg(op.bsrc) : false;
      if (branch_taken(op.opc, bv)) ctx.redirect_target = op.imm;
      break;
    }
    case OpClass::kComm: {
      ctx.channels_dirty = true;
      ChannelState& ch = ctx.channels[op.chan];
      if (op.opc == Opcode::kSend) {
        const std::uint32_t v = read_gpr(op.src1);
        if (ch.recv_waiting) {
          // Recv issued first (Figure 12d): the buffered destination
          // register is written directly when the data arrives.
          Operation dst_op;
          dst_op.cluster = ch.recv_cluster;
          dst_op.dst = ch.recv_dst;
          write_result(ctx, dst_op, v, cfg_.lat.comm);
          ch = ChannelState{};
        } else {
          ch.has_value = true;
          ch.value = v;
        }
      } else {  // recv
        if (ch.has_value) {
          write_result(ctx, op, ch.value, cfg_.lat.comm);
          ch = ChannelState{};
        } else {
          ch.recv_waiting = true;
          ch.recv_cluster = op.cluster;
          ch.recv_dst = op.dst;
        }
      }
      break;
    }
  }
}

void Simulator::apply_staged_stores() {
  for (const StagedStore& st : staged_) {
    if (st.ctx->fault.pending) continue;
    if (st.ctx->issue.pending_count > 0) {
      // Not the last part: the store drains through the split delay buffer
      // at instruction completion. The pending count is cycle-final here
      // (execution never changes it), so both engines decide identically.
      st.ctx->store_buffer.push_back(
          BufferedStore{st.cluster, st.addr, st.size, st.value});
    } else {
      const bool ok = st.ctx->mem.store(st.addr, st.size, st.value);
      VEXSIM_CHECK(ok);  // faults were detected at issue
    }
  }
}

void Simulator::rollback_fault(ThreadContext& ctx) {
  // Split-issued parts never touched the architectural state: discarding
  // the delay buffers and the faulting instruction's in-flight writes
  // restores the boundary before the instruction (Section V-B).
  ctx.rf_buffer.clear();
  ctx.store_buffer.clear();
  // Earlier instructions' in-flight writes are architecturally committed;
  // the faulting instruction's own writes are discarded.
  ctx.pending_writes.commit_all_to(ctx.regs, ctx.issue.seq);
  if (ctx.channels_dirty) {
    ctx.channels.fill(ChannelState{});
    ctx.channels_dirty = false;
  }
  ctx.issue = IssueProgress{};
  ctx.redirect_target = -1;
  ctx.halt_at_completion = false;
  ctx.fetch_done = false;
  ctx.state = RunState::kFaulted;
  ++stats_.faults;
  ++thread_exit_events_;
}

void Simulator::complete_instruction(int slot, ThreadContext& ctx) {
  // Drain the delay buffers (last-part commit, Figure 8/9). Only a
  // split-issued instruction can have filled them: rf_buffer entries are
  // diverted commits of a still-partially-issued producer, store_buffer
  // entries are stores staged with parts still pending — both imply issue
  // over more than one cycle.
  if (ctx.issue.was_split) {
    for (const BufferedRegWrite& w : ctx.rf_buffer) {
      if (w.to_breg)
        ctx.regs.set_breg(w.cluster, w.idx, w.value != 0);
      else
        ctx.regs.set_gpr(w.cluster, w.idx, w.value);
    }
    ctx.rf_buffer.clear();
    const int rotation = rotation_[static_cast<std::size_t>(slot)];
    for (const BufferedStore& s : ctx.store_buffer) {
      // Buffered stores contend for the cluster's memory ports when they
      // finally commit (Figure 11).
      ++mem_port_use_[merge_.physical_cluster(s.cluster, rotation)];
      const bool ok = ctx.mem.store(s.addr, s.size, s.value);
      VEXSIM_CHECK(ok);  // faults were detected at issue
    }
    ctx.store_buffer.clear();
  }
  if (ctx.channels_dirty) {
    ctx.channels.fill(ChannelState{});
    ctx.channels_dirty = false;
  }

  ++ctx.counters.instructions;
  ++ctx.total_instructions;
  ctx.counters.ops += static_cast<std::uint64_t>(ctx.issue.dec->op_count);
  ++stats_.instructions_retired;
  if (ctx.issue.was_split) {
    ++stats_.split_instructions;
    ++ctx.counters.split_instructions;
  }

  std::uint32_t next = ctx.pc + 1;
  if (ctx.redirect_target >= 0) {
    next = static_cast<std::uint32_t>(ctx.redirect_target);
    ctx.next_issue_at =
        cycle_ + 1 + static_cast<std::uint64_t>(cfg_.lat.taken_branch_penalty);
    ++stats_.taken_branches;
    ++ctx.counters.taken_branches;
  }
  ctx.redirect_target = -1;
  ctx.issue.active = false;
  ctx.fetch_done = false;

  if (ctx.halt_at_completion || next >= ctx.code_size()) {
    // The final instruction's in-flight writes are architecturally
    // determined; commit them so the halted state is precise.
    ctx.pending_writes.commit_all_to(ctx.regs);
    ctx.state = RunState::kHalted;
    ++thread_exit_events_;
    return;
  }
  ctx.pc = next;
}

int Simulator::step() {
  ++cycle_;

  // Global structural stall: buffered stores draining through too few
  // memory ports ("the pipeline is stalled till all the memory operations
  // have been performed", Section V-D).
  if (cycle_ < stall_until_) {
    packet_.clear(cfg_.clusters);  // nothing issues this cycle
    ++stats_.cycles;
    ++stats_.memport_stall_cycles;
    ++stats_.vertical_waste_cycles;
    return 0;
  }

  const int n = cfg_.hw_threads;
  ProfClock::time_point t0;
  if (profile_on_) {
    ++profile_.steps;
    t0 = ProfClock::now();
    // Profiled: commit and refill in separate timed passes. They are
    // per-thread independent (a thread's refill never observes another
    // thread's commits), so the split is behaviour-identical to the fused
    // loop below.
    for (int s = 0; s < n; ++s)
      if (ThreadContext* ctx = slots_[static_cast<std::size_t>(s)])
        if (ctx->pending_writes.earliest_visible_at() <= cycle_)
          commit_pending_writes(*ctx);
    const auto t1 = ProfClock::now();
    profile_.commit_seconds += std::chrono::duration<double>(t1 - t0).count();
    if (!drain_)
      for (int s = 0; s < n; ++s)
        if (ThreadContext* ctx = slots_[static_cast<std::size_t>(s)])
          if (ctx->state == RunState::kReady && !ctx->issue.active) {
            refill_slot(ctx);
            if (ctx->issue.active && ctx->issue.pending_count == 0)
              complete_instruction(s, *ctx);  // all-nop instruction
          }
    t0 = ProfClock::now();
    profile_.refill_seconds += std::chrono::duration<double>(t0 - t1).count();
  } else {
    // Commit and refill are per-thread independent, so one pass serves both.
    // The watermark test keeps the no-writes-due case call-free, the
    // ready/not-active guard keeps busy threads out of refill_slot.
    for (int s = 0; s < n; ++s) {
      ThreadContext* ctx = slots_[static_cast<std::size_t>(s)];
      if (ctx == nullptr) continue;
      if (ctx->pending_writes.earliest_visible_at() <= cycle_)
        commit_pending_writes(*ctx);
      if (!drain_ && ctx->state == RunState::kReady && !ctx->issue.active) {
        refill_slot(ctx);
        // An all-nop instruction arms with nothing pending; retire it here —
        // the completion walk below visits only threads that issued ops.
        if (ctx->issue.active && ctx->issue.pending_count == 0)
          complete_instruction(s, *ctx);
      }
    }
  }

  // Merge: rotating thread priority (Section VI-A). The fused engine
  // executes inside the walk; the reference engine fills packet_.ops and
  // executes in a second walk below.
  packet_.clear(cfg_.clusters);
  mem_port_use_.fill(0);
  staged_.clear();
  std::uint32_t thread_mask = 0;
  int ops = 0;
  if (fused_) {
    for (int k = 0; k < n; ++k) {
      int s = priority_base_ + k;
      if (s >= n) s -= n;
      ThreadContext* ctx = slots_[static_cast<std::size_t>(s)];
      if (ctx == nullptr || ctx->state != RunState::kReady) continue;
      FusedSink sink{*this, *ctx, s, &thread_mask, &ops};
      merge_.select(*ctx, rotation_[static_cast<std::size_t>(s)], sink);
    }
  } else {
    for (int k = 0; k < n; ++k) {
      int s = priority_base_ + k;
      if (s >= n) s -= n;
      ThreadContext* ctx = slots_[static_cast<std::size_t>(s)];
      if (ctx == nullptr || ctx->state != RunState::kReady) continue;
      merge_.try_select(*ctx, rotation_[static_cast<std::size_t>(s)], s,
                        packet_);
    }
  }
  priority_base_ = priority_base_ + 1 >= n ? 0 : priority_base_ + 1;
  if (profile_on_) {
    const auto t1 = ProfClock::now();
    profile_.select_seconds += std::chrono::duration<double>(t1 - t0).count();
    t0 = t1;
  }

  // Execute (reference engine only; the fused engine already did).
  if (!fused_) {
    for (const SelectedOp& sel : packet_.ops) {
      ThreadContext& ctx = *slots_[static_cast<std::size_t>(sel.hw_slot)];
      thread_mask |= 1u << static_cast<unsigned>(sel.hw_slot);
      execute_op(sel.op, *sel.dec, sel.logical_cluster, sel.physical_cluster,
                 ctx);
    }
    ops = packet_.op_count();
    if (profile_on_) {
      const auto t1 = ProfClock::now();
      profile_.execute_seconds +=
          std::chrono::duration<double>(t1 - t0).count();
      t0 = t1;
    }
  }

  if (!staged_.empty()) apply_staged_stores();

  // Complete / fault. Only a thread that issued operations this cycle can
  // reach pending_count == 0 (completion ran last cycle otherwise) or have a
  // fault pending (faults are raised inside execute_op), so the walk covers
  // exactly the set bits of thread_mask.
  for (std::uint32_t tm = thread_mask; tm != 0; tm &= tm - 1) {
    const int s = std::countr_zero(tm);
    ThreadContext* ctx = slots_[static_cast<std::size_t>(s)];
    if (ctx->fault.pending) {
      rollback_fault(*ctx);
      continue;
    }
    if (ctx->issue.active && ctx->issue.pending_count == 0)
      complete_instruction(s, *ctx);
  }

  // Memory-port pressure beyond the per-cluster port count stalls issue for
  // the excess cycles. mem_port_use_ can only be non-zero when operations
  // issued (execute_op and the buffered-store drain both run downstream of a
  // selection), so an empty cycle skips the scan.
  if (ops != 0) {
    int excess = 0;
    for (int c = 0; c < cfg_.clusters; ++c)
      excess += std::max(0, mem_port_use_[static_cast<std::size_t>(c)] -
                                mem_units_[static_cast<std::size_t>(c)]);
    if (excess > 0)
      stall_until_ = cycle_ + 1 + static_cast<std::uint64_t>(excess);
  }

  // Accounting.
  ++stats_.cycles;
  stats_.ops_issued += static_cast<std::uint64_t>(ops);
  if (ops == 0) {
    ++stats_.vertical_waste_cycles;
    if (drain_) ++stats_.drain_cycles;
  }
  if ((thread_mask & (thread_mask - 1)) != 0) ++stats_.multi_thread_cycles;
  if (profile_on_)
    profile_.complete_seconds +=
        std::chrono::duration<double>(ProfClock::now() - t0).count();
  return ops;
}

std::uint64_t Simulator::fast_forward(std::uint64_t limit) {
  if (!fast_forward_on_) return 0;
  ProfClock::time_point t0;
  if (profile_on_) t0 = ProfClock::now();
  const auto account = [&](std::uint64_t skipped) {
    if (profile_on_)
      profile_.fast_forward_seconds +=
          std::chrono::duration<double>(ProfClock::now() - t0).count();
    return skipped;
  };
  std::uint64_t skipped = 0;

  // Phase 1: global memory-port drain stall. Stalled cycles issue nothing
  // and touch nothing but their three counters (step()'s early return), so
  // they fold into arithmetic. Stop at `limit` so the caller's next step()
  // never lands beyond its decision point.
  std::uint64_t next = cycle_ + 1;
  if (stall_until_ > next) {
    const std::uint64_t end = std::min(stall_until_, limit);
    if (end > next) {
      const std::uint64_t k = end - next;
      stats_.cycles += k;
      stats_.memport_stall_cycles += k;
      stats_.vertical_waste_cycles += k;
      cycle_ += k;
      skipped += k;
      next = cycle_ + 1;
    }
    // Still inside the stall window: the next step() must execute a stalled
    // cycle (it is `limit`).
    if (stall_until_ > next) return account(skipped);
  }

  // Phase 2: every context idle. A cycle can only act if some ready thread
  // has an instruction in flight (its remaining parts merge every cycle) or
  // can pass the refill gates. The earliest such cycle is the horizon; all
  // cycles before it are empty and account as: cycles/vertical-waste (and
  // drain under drain mode) plus the per-thread block counters refill_slot
  // would have bumped, plus the priority rotation of the merge walk.
  if (limit <= next) return account(skipped);
  std::uint64_t horizon = ~0ull;
  for (int s = 0; s < cfg_.hw_threads; ++s) {
    const ThreadContext* ctx = slots_[static_cast<std::size_t>(s)];
    if (ctx == nullptr || ctx->state != RunState::kReady) continue;
    if (ctx->issue.active) return account(skipped);  // parts merge next cycle
    if (drain_) continue;  // refill gated off: this thread generates no event
    const std::uint64_t gate =
        std::max(std::max(ctx->mem_block_until, ctx->next_issue_at),
                 ctx->fetch_ready_at);
    horizon = std::min(horizon, std::max(next, gate));
  }
  // The backend may hold in-flight completions of its own (hierarchy MSHR
  // fills); never skip past the earliest one, so the clock observes every
  // scheduled memory event. The fixed backend reports kNoEvent — this clause
  // vanishes and the skip is the seed's, bit for bit. Stopping early is
  // statistics-neutral: a stepped empty cycle accounts exactly like a
  // skipped one (fast_forward-vs-pure-loop suite).
  const std::uint64_t ev = backend_->next_event_after(cycle_);
  if (ev != mem::MemoryBackend::kNoEvent)
    horizon = std::min(horizon, std::max(next, ev));
  const std::uint64_t end = std::min(horizon, limit);
  if (end <= next) return account(skipped);
  const std::uint64_t k = end - next;

  stats_.cycles += k;
  stats_.vertical_waste_cycles += k;
  if (drain_) {
    stats_.drain_cycles += k;
  } else {
    for (int s = 0; s < cfg_.hw_threads; ++s) {
      ThreadContext* ctx = slots_[static_cast<std::size_t>(s)];
      if (ctx == nullptr || ctx->state != RunState::kReady) continue;
      // Mirror refill_slot's gate order for cycles x in [next, end):
      // x < mem_block_until counts a D-miss block; otherwise x inside
      // [max(mem_block, next_issue), fetch_ready) counts an I-miss block.
      if (ctx->mem_block_until > next)
        ctx->counters.dmiss_block_cycles +=
            std::min(end, ctx->mem_block_until) - next;
      const std::uint64_t fetch_gate =
          std::max(std::max(ctx->mem_block_until, ctx->next_issue_at), next);
      if (ctx->fetch_ready_at > fetch_gate)
        ctx->counters.imiss_block_cycles +=
            std::min(end, ctx->fetch_ready_at) - fetch_gate;
    }
  }
  const auto n_threads = static_cast<std::uint64_t>(cfg_.hw_threads);
  priority_base_ = static_cast<int>(
      (static_cast<std::uint64_t>(priority_base_) + k) % n_threads);
  cycle_ += k;
  skipped += k;
  return account(skipped);
}

bool Simulator::run_to_halt(std::uint64_t max_cycles) {
  const std::uint64_t limit = cycle_ + max_cycles;
  int last_ops = 0;
  while (cycle_ < limit) {
    bool any_live = false;
    for (int s = 0; s < cfg_.hw_threads; ++s) {
      const ThreadContext* ctx = slots_[static_cast<std::size_t>(s)];
      if (ctx != nullptr && ctx->state == RunState::kReady) any_live = true;
    }
    if (!any_live) return true;
    // A cycle that issued something almost always leaves work in flight;
    // probing the fast path is only worthwhile after an empty cycle.
    if (last_ops == 0) fast_forward(limit);
    last_ops = step();
  }
  return false;
}

}  // namespace vexsim
