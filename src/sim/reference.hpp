// Architectural reference interpreter.
//
// Executes a program one VLIW instruction at a time with *immediate* write
// visibility: all operations of an instruction read the pre-instruction
// state, then all effects apply at once. For compiler-legal programs (no
// register read inside a producer's latency window — the LEQ contract) this
// yields exactly the architectural state the cycle-accurate simulator must
// reach under every multithreading technique; the equivalence property tests
// are built on this.
#pragma once

#include <cstdint>

#include "arch/thread_context.hpp"

namespace vexsim {

struct RefResult {
  std::uint64_t instructions = 0;
  std::uint64_t ops = 0;
  bool halted = false;
  bool faulted = false;
  std::uint32_t fault_pc = 0;
};

class ReferenceInterpreter {
 public:
  explicit ReferenceInterpreter(int clusters) : clusters_(clusters) {}

  // Runs until halt, fault, or `max_instructions` VLIW instructions.
  RefResult run(ThreadContext& ctx, std::uint64_t max_instructions) const;

  // Executes exactly one instruction (the one at ctx.pc). Returns false if
  // the thread is not in a runnable state afterwards.
  bool step(ThreadContext& ctx, RefResult& result) const;

 private:
  int clusters_;
};

}  // namespace vexsim
