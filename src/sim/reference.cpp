#include "sim/reference.hpp"

#include <array>
#include <optional>

#include "sim/exec.hpp"
#include "util/check.hpp"
#include "util/inline_vec.hpp"

namespace vexsim {

namespace {
struct RegEffect {
  bool to_breg;
  std::uint8_t cluster;
  std::uint8_t idx;
  std::uint32_t value;
};
struct StoreEffect {
  std::uint32_t addr;
  std::uint8_t size;
  std::uint32_t value;
};
}  // namespace

bool ReferenceInterpreter::step(ThreadContext& ctx, RefResult& result) const {
  if (ctx.state != RunState::kReady) return false;
  if (ctx.at_end()) {
    ctx.state = RunState::kHalted;
    result.halted = true;
    return false;
  }
  const VliwInstruction& insn = ctx.program().code[ctx.pc];

  InlineVec<RegEffect, kMaxTotalIssue> reg_effects;
  InlineVec<StoreEffect, kMaxTotalIssue> store_effects;
  std::array<std::optional<std::uint32_t>, kNumChannels> channel;
  std::optional<std::uint32_t> branch_target;
  bool halt = false;
  bool fault = false;

  // Pass 1: sends publish their values (reads of pre-instruction state).
  insn.for_each_op([&](const Operation& op) {
    if (op.opc == Opcode::kSend)
      channel[op.chan] = ctx.regs.gpr(op.cluster, op.src1);
  });

  // Pass 2: evaluate everything against pre-instruction state.
  insn.for_each_op([&](const Operation& op) {
    if (fault) return;
    const int c = op.cluster;
    switch (op.cls()) {
      case OpClass::kNop:
        break;
      case OpClass::kAlu:
      case OpClass::kMul: {
        const std::uint32_t a =
            reads_src1(op.opc) ? ctx.regs.gpr(c, op.src1) : 0;
        const std::uint32_t b =
            op.opc == Opcode::kMovi
                ? static_cast<std::uint32_t>(op.imm)
                : (reads_src2(op.opc)
                       ? (op.src2_is_imm ? static_cast<std::uint32_t>(op.imm)
                                         : ctx.regs.gpr(c, op.src2))
                       : 0);
        const bool bv =
            reads_bsrc(op.opc) ? ctx.regs.breg(c, op.bsrc) : false;
        reg_effects.push_back(RegEffect{op.dst_is_breg, op.cluster, op.dst,
                                        eval_scalar(op.opc, a, b, bv)});
        break;
      }
      case OpClass::kMem: {
        const std::uint32_t addr = ctx.regs.gpr(c, op.src1) +
                                   static_cast<std::uint32_t>(op.imm);
        const int size = mem_access_size(op.opc);
        if (is_load(op.opc)) {
          std::uint32_t raw = 0;
          if (!ctx.mem.load(addr, size, raw)) {
            fault = true;
            ctx.fault = FaultInfo{true, ctx.pc, addr};
            break;
          }
          reg_effects.push_back(RegEffect{false, op.cluster, op.dst,
                                          extend_loaded(op.opc, raw)});
        } else {
          if (addr < MainMemory::kGuardLimit ||
              (addr & (static_cast<std::uint32_t>(size) - 1)) != 0) {
            fault = true;
            ctx.fault = FaultInfo{true, ctx.pc, addr};
            break;
          }
          store_effects.push_back(StoreEffect{
              addr, static_cast<std::uint8_t>(size),
              ctx.regs.gpr(c, op.src2)});
        }
        break;
      }
      case OpClass::kBranch: {
        if (op.opc == Opcode::kHalt) {
          halt = true;
          break;
        }
        const bool bv =
            reads_bsrc(op.opc) ? ctx.regs.breg(c, op.bsrc) : false;
        if (branch_taken(op.opc, bv)) {
          VEXSIM_CHECK_MSG(!branch_target.has_value(),
                           "two taken branches in one instruction");
          branch_target = static_cast<std::uint32_t>(op.imm);
        }
        break;
      }
      case OpClass::kComm: {
        if (op.opc == Opcode::kRecv) {
          VEXSIM_CHECK_MSG(channel[op.chan].has_value(),
                           "recv without matching send in instruction (pc="
                               << ctx.pc << ")");
          reg_effects.push_back(
              RegEffect{false, op.cluster, op.dst, *channel[op.chan]});
        }
        break;
      }
    }
  });

  if (fault) {
    // Precise: nothing of the faulting instruction applies.
    ctx.state = RunState::kFaulted;
    result.faulted = true;
    result.fault_pc = ctx.pc;
    return false;
  }

  for (const StoreEffect& s : store_effects) {
    const bool ok = ctx.mem.store(s.addr, s.size, s.value);
    VEXSIM_CHECK(ok);
  }
  for (const RegEffect& e : reg_effects) {
    if (e.to_breg)
      ctx.regs.set_breg(e.cluster, e.idx, e.value != 0);
    else
      ctx.regs.set_gpr(e.cluster, e.idx, e.value);
  }

  ++result.instructions;
  ++ctx.total_instructions;
  result.ops += static_cast<std::uint64_t>(insn.op_count());

  if (halt) {
    ctx.state = RunState::kHalted;
    result.halted = true;
    return false;
  }
  ctx.pc = branch_target.value_or(ctx.pc + 1);
  if (ctx.at_end()) {
    ctx.state = RunState::kHalted;
    result.halted = true;
    return false;
  }
  return true;
}

RefResult ReferenceInterpreter::run(ThreadContext& ctx,
                                    std::uint64_t max_instructions) const {
  RefResult result;
  while (result.instructions < max_instructions) {
    if (!step(ctx, result)) break;
  }
  return result;
}

}  // namespace vexsim
