// The cycle-accurate SMT clustered VLIW machine.
//
// Pipeline model per cycle:
//   1. commit NUAL pending writes that become visible this cycle;
//   2. refill hardware slots whose thread can start its next instruction
//      (gated by branch penalty, D-miss block and ICache fetch);
//   3. merge: walk slots in rotating priority order, each contributing as
//      much pending work as the configured technique allows (MergeEngine);
//   4. execute the selected operations: operand read at issue, result write
//      scheduled `latency` cycles out (into the split delay buffer while the
//      owning instruction is still partially issued), D-cache timing,
//      send/recv channel transfers, branch resolution;
//   5. complete instructions whose last part issued: flush delay buffers
//      (counting memory-port conflicts for buffered stores → global stall),
//      retire, redirect PC, handle halt/fault.
//
// Faults (e.g. a load touching the guard page) roll the thread back to the
// instruction boundary: split-issued parts only ever wrote the delay
// buffers, so rollback = discard buffers (Section V-B).
//
// Engines: phases 3 and 4 run on one of two equivalent engines. The
// reference engine materializes an ExecPacket of SelectedOps in the merge
// walk and executes it in a second walk (last_packet() exposes it to tracing
// tools and the figure tests). The fused engine (set_fused) executes each
// operation inside the merge walk, the moment its bundle wins selection —
// no packet body, no second decode walk. Selection order equals the packet's
// execution order and execution never writes state selection reads, so the
// two engines are statistics-bit-identical; the golden suite and
// micro_sim_speed's self-check enforce it. Stores are staged in both engines
// and applied after the whole merge walk (same-cycle loads must see
// pre-instruction memory, and the buffered-store decision needs the
// cycle-final pending count).
//
// Fast path: step() always simulates exactly one cycle, but when every
// hardware context is provably blocked until a known future cycle (memory
// stall drain, D-miss block, I-miss refill, branch penalty), fast_forward()
// advances the clock and every per-cycle counter arithmetically instead of
// iterating the idle cycles — with bit-identical statistics, enforced by the
// golden-stats suite. Drivers call it before each step with a limit so the
// clock never jumps over an external decision point (timeslice expiry,
// max-cycles budget).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "arch/thread_context.hpp"
#include "core/exec_packet.hpp"
#include "core/merge_engine.hpp"
#include "isa/config.hpp"
#include "mem/backend.hpp"
#include "mem/cache.hpp"
#include "sim/run_stats.hpp"
#include "util/inline_vec.hpp"

namespace vexsim {

// Opt-in wall-clock breakdown of the per-cycle phases (set_profile). Timing
// only — enabling it never changes simulated statistics.
struct SimProfile {
  double commit_seconds = 0;
  double refill_seconds = 0;
  // Merge walk. Under the fused engine this includes execution (the point of
  // the fusion is that the two are one walk); execute_seconds stays 0.
  double select_seconds = 0;
  double execute_seconds = 0;       // reference engine's packet walk
  double complete_seconds = 0;      // staged stores, completion, faults
  double fast_forward_seconds = 0;  // inside Simulator::fast_forward
  std::uint64_t steps = 0;          // step() calls measured

  [[nodiscard]] double total() const {
    return commit_seconds + refill_seconds + select_seconds +
           execute_seconds + complete_seconds + fast_forward_seconds;
  }
};

class Simulator {
 public:
  explicit Simulator(const MachineConfig& cfg);

  // Slot management (contexts are owned by the caller / driver).
  void attach(int slot, ThreadContext* ctx);
  // Detaching flushes the context's in-flight pending writes (the drained
  // pipeline state is architecturally committed at a context switch).
  ThreadContext* detach(int slot);
  [[nodiscard]] ThreadContext* slot(int i) const {
    return slots_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int num_slots() const { return cfg_.hw_threads; }

  // Advance one cycle. Returns the number of operations issued.
  int step();

  // Advance the clock over cycles that provably cannot issue anything,
  // accounting them exactly as step() would, and stop so that the next
  // step() executes the first cycle that *can* act (or cycle `limit`,
  // whichever is earlier — external controllers pass their next decision
  // cycle). Returns the number of cycles skipped; 0 when the next cycle may
  // have work, when `limit` is reached, or when the fast path is disabled.
  std::uint64_t fast_forward(std::uint64_t limit);
  // Disabling makes fast_forward() a no-op: every cycle is then iterated by
  // step(). The stats must be bit-identical either way (golden suite).
  void set_fast_forward(bool on) { fast_forward_on_ = on; }
  [[nodiscard]] bool fast_forward_enabled() const { return fast_forward_on_; }

  // Selects the fused select+execute engine. Off (default) keeps the
  // reference packet engine, whose last_packet() the tracing tests inspect;
  // the driver and harness turn fusion on. Stats are bit-identical either
  // way (fused-equivalence suite + micro_sim_speed self-check).
  void set_fused(bool on) { fused_ = on; }
  [[nodiscard]] bool fused_enabled() const { return fused_; }

  // Opt-in per-phase wall-clock accounting; resets the accumulators.
  void set_profile(bool on) {
    profile_on_ = on;
    profile_ = SimProfile{};
  }
  [[nodiscard]] const SimProfile& profile() const { return profile_; }

  // When true, no slot starts a *new* instruction (in-flight ones finish);
  // used by the driver to drain before a context switch.
  void set_drain(bool on) { drain_ = on; }
  [[nodiscard]] bool quiesced() const;

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  // Count of threads that left the ready state (halt or fault) since
  // construction. The driver polls this instead of rescanning every
  // instance's state on each retiring cycle.
  [[nodiscard]] std::uint64_t thread_exit_events() const {
    return thread_exit_events_;
  }
  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }
  [[nodiscard]] SimStats& stats() { return stats_; }
  [[nodiscard]] const MergeEngine& merge_engine() const { return merge_; }
  [[nodiscard]] Cache& icache() { return *icache_ptr_; }
  [[nodiscard]] Cache& dcache() { return *dcache_ptr_; }
  // The miss-handling backend behind the L1s (cfg.memory.backend). The
  // driver reads its memory_stats() into RunResult after a run.
  [[nodiscard]] const mem::MemoryBackend& memory_backend() const {
    return *backend_;
  }

  // Last cycle's packet, for tracing tools and the figure tests. Only the
  // reference engine fills the op list (the fused engine's point is to never
  // materialize it); cluster use/ownership is filled by both.
  [[nodiscard]] const ExecPacket& last_packet() const { return packet_; }

  // Convenience: run until all attached threads halt or `max_cycles` pass.
  // Returns true if everything halted.
  bool run_to_halt(std::uint64_t max_cycles);

 private:
  struct FusedSink;  // executes ops as they win selection (simulator.cpp)

  // Commits every pending write whose latency window closed this cycle.
  // Inline: step() calls it for every thread with writes due (about two
  // calls per cycle on the paper's 4T mixes).
  void commit_pending_writes(ThreadContext& ctx) {
    const auto commit_one = [&](const PendingWrite& w) {
      if (ctx.issue.active && ctx.issue.seq == w.seq) {
        // The producing instruction is still partially issued: the result
        // goes to the split delay buffer (Figure 8) and drains at last-part.
        ctx.rf_buffer.push_back(
            BufferedRegWrite{w.to_breg, w.cluster, w.idx, w.value});
      } else if (w.to_breg) {
        ctx.regs.set_breg(w.cluster, w.idx, w.value != 0);
      } else {
        ctx.regs.set_gpr(w.cluster, w.idx, w.value);
      }
    };
    if (ctx.pending_writes.latest_visible_at() <= cycle_) {
      // Common case with short latencies: everything commits, nothing stays.
      ctx.pending_writes.drain_all(commit_one);
      return;
    }
    ctx.pending_writes.compact([&](const PendingWrite& w) {
      if (w.visible_at > cycle_) return true;  // still in its latency window
      commit_one(w);
      return false;
    });
  }
  // Passes the thread's refill gates (D-miss / branch-penalty / I-fetch) and
  // arms a fresh IssueProgress. Callers pre-filter null/halted/active/drain.
  void refill_slot(ThreadContext* ctx);
  void execute_op(const Operation& op, const DecodedOp& dec,
                  int logical_cluster, int physical_cluster,
                  ThreadContext& ctx);
  void apply_staged_stores();
  void complete_instruction(int slot, ThreadContext& ctx);
  void rollback_fault(ThreadContext& ctx);
  void write_result(ThreadContext& ctx, const Operation& op,
                    std::uint32_t value, int latency);
  void assert_no_pending_write(const ThreadContext& ctx, bool to_breg,
                               int cluster, int idx) const;

  // A store captured during execution; applied after the whole merge walk so
  // same-cycle loads observe pre-instruction memory. Whether it goes to the
  // split delay buffer is decided at apply time from the cycle-final pending
  // count (identical in both engines by construction).
  struct StagedStore {
    ThreadContext* ctx = nullptr;
    std::uint8_t cluster = 0;
    std::uint8_t size = 0;
    std::uint32_t addr = 0;
    std::uint32_t value = 0;
  };

  MachineConfig cfg_;
  MergeEngine merge_;
  // Miss handling is pluggable (mem/backend.hpp); the backend owns the L1
  // timing caches so it can model their refill traffic. The raw pointers
  // cache the L1s out of the unique_ptr so the hit path — the overwhelmingly
  // common case — stays a direct non-virtual Cache::access call, exactly the
  // seed's code shape; only misses pay a virtual dispatch.
  std::unique_ptr<mem::MemoryBackend> backend_;
  Cache* icache_ptr_;
  Cache* dcache_ptr_;
  std::array<ThreadContext*, kMaxHwThreads> slots_{};  // ≤ hw_threads used
  ExecPacket packet_;
  std::uint64_t cycle_ = 0;
  std::uint64_t stall_until_ = 0;  // global memory-port drain stall
  std::uint64_t thread_exit_events_ = 0;  // halts + faults (driver gating)
  int priority_base_ = 0;
  bool drain_ = false;
  bool fast_forward_on_ = true;
  bool fused_ = false;
  bool profile_on_ = false;
  // Result latency per operation class, resolved once from the config so the
  // execute path indexes a table instead of switching on the class.
  std::array<int, 6> lat_by_class_{};
  int lat_breg_result_ = 0;  // compare-to-branch contract latency
  // Static cluster-renaming rotation per hardware slot (Section IV).
  std::array<int, kMaxHwThreads> rotation_{};
  // Per-cycle memory-port pressure per physical cluster.
  std::array<int, kMaxClusters> mem_port_use_{};
  // Memory ports per physical cluster, hoisted from the config so the
  // per-cycle excess check doesn't re-read cluster_at().
  std::array<int, kMaxClusters> mem_units_{};
  // Stores staged this cycle (preallocated; at most one per selected op).
  InlineVec<StagedStore, kMaxTotalIssue> staged_;
  // Programs already validated against this machine (attach() cache). Held
  // as shared_ptrs so remembered addresses cannot be recycled.
  static constexpr std::size_t kMaxValidatedPrograms = 32;
  std::vector<std::shared_ptr<const Program>> validated_programs_;
  SimStats stats_;
  SimProfile profile_;
};

}  // namespace vexsim
