// The cycle-accurate SMT clustered VLIW machine.
//
// Pipeline model per cycle:
//   1. commit NUAL pending writes that become visible this cycle;
//   2. refill hardware slots whose thread can start its next instruction
//      (gated by branch penalty, D-miss block and ICache fetch);
//   3. merge: walk slots in rotating priority order, each contributing as
//      much pending work as the configured technique allows (MergeEngine);
//   4. execute the packet: operand read at issue, result write scheduled
//      `latency` cycles out (into the split delay buffer while the owning
//      instruction is still partially issued), D-cache timing, send/recv
//      channel transfers, branch resolution;
//   5. complete instructions whose last part issued: flush delay buffers
//      (counting memory-port conflicts for buffered stores → global stall),
//      retire, redirect PC, handle halt/fault.
//
// Faults (e.g. a load touching the guard page) roll the thread back to the
// instruction boundary: split-issued parts only ever wrote the delay
// buffers, so rollback = discard buffers (Section V-B).
//
// Fast path: step() always simulates exactly one cycle, but when every
// hardware context is provably blocked until a known future cycle (memory
// stall drain, D-miss block, I-miss refill, branch penalty), fast_forward()
// advances the clock and every per-cycle counter arithmetically instead of
// iterating the idle cycles — with bit-identical statistics, enforced by the
// golden-stats suite. Drivers call it before each step with a limit so the
// clock never jumps over an external decision point (timeslice expiry,
// max-cycles budget).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "arch/thread_context.hpp"
#include "core/exec_packet.hpp"
#include "core/merge_engine.hpp"
#include "isa/config.hpp"
#include "mem/cache.hpp"
#include "sim/run_stats.hpp"
#include "util/inline_vec.hpp"

namespace vexsim {

class Simulator {
 public:
  explicit Simulator(const MachineConfig& cfg);

  // Slot management (contexts are owned by the caller / driver).
  void attach(int slot, ThreadContext* ctx);
  // Detaching flushes the context's in-flight pending writes (the drained
  // pipeline state is architecturally committed at a context switch).
  ThreadContext* detach(int slot);
  [[nodiscard]] ThreadContext* slot(int i) const {
    return slots_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int num_slots() const { return cfg_.hw_threads; }

  // Advance one cycle. Returns the number of operations issued.
  int step();

  // Advance the clock over cycles that provably cannot issue anything,
  // accounting them exactly as step() would, and stop so that the next
  // step() executes the first cycle that *can* act (or cycle `limit`,
  // whichever is earlier — external controllers pass their next decision
  // cycle). Returns the number of cycles skipped; 0 when the next cycle may
  // have work, when `limit` is reached, or when the fast path is disabled.
  std::uint64_t fast_forward(std::uint64_t limit);
  // Disabling makes fast_forward() a no-op: every cycle is then iterated by
  // step(). The stats must be bit-identical either way (golden suite).
  void set_fast_forward(bool on) { fast_forward_on_ = on; }
  [[nodiscard]] bool fast_forward_enabled() const { return fast_forward_on_; }

  // When true, no slot starts a *new* instruction (in-flight ones finish);
  // used by the driver to drain before a context switch.
  void set_drain(bool on) { drain_ = on; }
  [[nodiscard]] bool quiesced() const;

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }
  [[nodiscard]] SimStats& stats() { return stats_; }
  [[nodiscard]] const MergeEngine& merge_engine() const { return merge_; }
  [[nodiscard]] Cache& icache() { return icache_; }
  [[nodiscard]] Cache& dcache() { return dcache_; }

  // Last cycle's packet, for tracing tools and the figure tests.
  [[nodiscard]] const ExecPacket& last_packet() const { return packet_; }

  // Convenience: run until all attached threads halt or `max_cycles` pass.
  // Returns true if everything halted.
  bool run_to_halt(std::uint64_t max_cycles);

 private:
  void commit_pending_writes(ThreadContext& ctx);
  void refill_slot(int slot);
  void execute_op(const SelectedOp& sel, ThreadContext& ctx);
  void complete_instruction(int slot, ThreadContext& ctx);
  void rollback_fault(ThreadContext& ctx);
  void write_result(ThreadContext& ctx, const Operation& op,
                    std::uint32_t value, int latency);
  void assert_no_pending_write(const ThreadContext& ctx, bool to_breg,
                               int cluster, int idx) const;

  // A store captured during execute_op; applied after all reads of the cycle
  // so that same-instruction loads observe pre-instruction memory.
  struct StagedStore {
    ThreadContext* ctx = nullptr;
    std::uint8_t cluster = 0;
    std::uint32_t addr = 0;
    std::uint8_t size = 0;
    std::uint32_t value = 0;
    bool buffered = false;  // split-issued: goes to the delay buffer
  };
  struct StagedStoreData {
    bool valid = false;
    std::uint8_t cluster = 0;
    std::uint32_t addr = 0;
    std::uint8_t size = 0;
    std::uint32_t value = 0;
  };

  MachineConfig cfg_;
  MergeEngine merge_;
  Cache icache_;
  Cache dcache_;
  StagedStoreData staged_store_;
  std::array<ThreadContext*, kMaxHwThreads> slots_{};  // ≤ hw_threads used
  ExecPacket packet_;
  std::uint64_t cycle_ = 0;
  std::uint64_t stall_until_ = 0;  // global memory-port drain stall
  int priority_base_ = 0;
  bool drain_ = false;
  bool fast_forward_on_ = true;
  // Result latency per operation class, resolved once from the config so the
  // execute path indexes a table instead of switching on the class.
  std::array<int, 6> lat_by_class_{};
  int lat_breg_result_ = 0;  // compare-to-branch contract latency
  // Static cluster-renaming rotation per hardware slot (Section IV).
  std::array<int, kMaxHwThreads> rotation_{};
  // Per-cycle memory-port pressure per physical cluster.
  std::array<int, kMaxClusters> mem_port_use_{};
  // Stores staged this cycle (preallocated; at most one per selected op).
  InlineVec<StagedStore, kMaxTotalIssue> staged_;
  // Programs already validated against this machine (attach() cache). Held
  // as shared_ptrs so remembered addresses cannot be recycled.
  static constexpr std::size_t kMaxValidatedPrograms = 32;
  std::vector<std::shared_ptr<const Program>> validated_programs_;
  SimStats stats_;
};

}  // namespace vexsim
