// Medium-ILP kernels: cjpeg, djpeg, g721encode, g721decode.
//
// Moderate parallelism: short butterfly/filter sections feeding serial
// recurrences, landing near the paper's IPCp ≈ 1.7 on the 16-issue machine.
#include "workloads/kernels.hpp"

#include <vector>

#include "cc/compiler.hpp"
#include "util/rng.hpp"

namespace vexsim::wl {

using cc::Builder;
using cc::VReg;
using cc::kMemSpaceReadOnly;

namespace {
std::vector<std::uint32_t> random_words(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<std::uint32_t> w(static_cast<std::size_t>(n));
  for (auto& x : w) x = rng.next_u32();
  return w;
}
int scaled(double base, const KernelScale& s) {
  const int v = static_cast<int>(base * s.outer);
  return v < 1 ? 1 : v;
}
}  // namespace

// JPEG encoder: 1-D forward DCT on one row + quantization (serial multiply
// chain) + zigzag-ish store. The image working set (≈96 KiB) exceeds the
// 64 KiB DCache, giving the paper's IPCr (1.12) < IPCp (1.66) gap.
Program make_cjpeg(const MachineConfig& cfg, KernelScale s) {
  constexpr int kImageWords = 24 * 1024;  // 96 KiB
  constexpr std::uint32_t kIn = 0x0010'0000;
  constexpr std::uint32_t kOut = 0x0012'0000;

  Builder b("cjpeg");
  const VReg in = b.movi(static_cast<std::int32_t>(kIn));
  const VReg out = b.movi(static_cast<std::int32_t>(kOut));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(40, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg idx = b.fresh_global();
  const VReg qacc = b.fresh_global();  // running quantizer state (serial)
  b.assign_i(idx, 0);
  b.assign_i(qacc, 16);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg p = b.alu(Opcode::kAdd, in, idx);
  std::vector<VReg> x(8);
  for (int i = 0; i < 8; ++i)
    x[static_cast<std::size_t>(i)] =
        b.load(Opcode::kLdw, p, i * 4, kMemSpaceReadOnly);
  // Butterfly stage (parallel).
  const VReg s0 = b.alu(Opcode::kAdd, x[0], x[7]);
  const VReg s1 = b.alu(Opcode::kAdd, x[1], x[6]);
  const VReg s2 = b.alu(Opcode::kAdd, x[2], x[5]);
  const VReg s3 = b.alu(Opcode::kAdd, x[3], x[4]);
  const VReg d0 = b.alu(Opcode::kSub, x[0], x[7]);
  const VReg d1 = b.alu(Opcode::kSub, x[1], x[6]);
  // Coefficient stage: serial quantizer chain — each coefficient is scaled
  // by q twice ((s·q·q)>>16, the dead-zone quantizer shape) and feeds the
  // next through qacc. This is the Huffman-coder stand-in that keeps cjpeg
  // in the paper's medium class despite the parallel butterflies above.
  VReg q = qacc;
  auto quant = [&](VReg sum) {
    return b.alui(Opcode::kShr, b.mpy(b.mpy(sum, q), q), 16);
  };
  const VReg c0 = quant(b.alu(Opcode::kAdd, s0, s3));
  q = b.alui(Opcode::kAnd, b.alu(Opcode::kXor, q, c0), 0xFF);
  const VReg c1 = quant(b.alu(Opcode::kSub, s0, s3));
  q = b.alui(Opcode::kAnd, b.alu(Opcode::kXor, q, c1), 0xFF);
  const VReg c2 = quant(b.alu(Opcode::kAdd, s1, s2));
  q = b.alui(Opcode::kAnd, b.alu(Opcode::kXor, q, c2), 0xFF);
  const VReg c3 = quant(b.alu(Opcode::kAdd, d0, d1));
  q = b.alui(Opcode::kOr, b.alu(Opcode::kXor, q, c3), 1);
  b.assign(qacc, q);
  const VReg op_ = b.alu(Opcode::kAdd, out, idx);
  b.store(Opcode::kStw, op_, 0, c0, 2);
  b.store(Opcode::kStw, op_, 4, c1, 3);
  b.store(Opcode::kStw, op_, 8, c2, 4);
  b.store(Opcode::kStw, op_, 12, c3, 5);

  b.assign_alui(idx, Opcode::kAdd, idx, 32);
  const VReg more = b.cmpi_b(Opcode::kCmplt, idx, kImageWords * 4);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kIn, random_words(0x0CAFE, kImageWords));
  prog.finalize();
  return prog;
}

// JPEG decoder: dequantize + short inverse butterfly per row, small working
// set (fits the cache: IPCr ≈ IPCp ≈ 1.77).
Program make_djpeg(const MachineConfig& cfg, KernelScale s) {
  constexpr int kWords = 8 * 1024;  // 32 KiB, cache-resident
  constexpr std::uint32_t kIn = 0x0014'0000;
  constexpr std::uint32_t kOut = 0x0015'0000;

  Builder b("djpeg");
  const VReg in = b.movi(static_cast<std::int32_t>(kIn));
  const VReg out = b.movi(static_cast<std::int32_t>(kOut));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(120, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg idx = b.fresh_global();
  const VReg dc = b.fresh_global();  // DC predictor: serial across rows
  b.assign_i(idx, 0);
  b.assign_i(dc, 0);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg p = b.alu(Opcode::kAdd, in, idx);
  const VReg v0 = b.load(Opcode::kLdw, p, 0, kMemSpaceReadOnly);
  const VReg v1 = b.load(Opcode::kLdw, p, 4, kMemSpaceReadOnly);
  const VReg v2 = b.load(Opcode::kLdw, p, 8, kMemSpaceReadOnly);
  const VReg v3 = b.load(Opcode::kLdw, p, 12, kMemSpaceReadOnly);
  // DC prediction chain (serial, three multiply stages deep as in the
  // dequant + predictor path).
  const VReg dq0 = b.alu(Opcode::kAdd, b.mpyi(v0, 13), dc);
  const VReg dq1 = b.alu(Opcode::kAdd, b.mpyi(v1, 7), dq0);
  const VReg dq2 = b.alu(Opcode::kAdd, b.mpy(dq1, v2), dq0);
  const VReg dq3 =
      b.alu(Opcode::kAdd, dq2, b.alui(Opcode::kShr, b.mpy(dq2, v3), 4));
  // Short even/odd reconstruction.
  const VReg e = b.alu(Opcode::kAdd, dq3, b.mpyi(v2, 3));
  const VReg o = b.alu(Opcode::kSub, dq3, b.mpyi(v3, 5));
  const VReg r0 = b.alui(Opcode::kShr, b.alu(Opcode::kAdd, e, o), 4);
  const VReg r1 = b.alui(Opcode::kShr, b.alu(Opcode::kSub, e, o), 4);
  b.assign_alui(dc, Opcode::kAnd,
                b.alu(Opcode::kXor, dq3, b.alui(Opcode::kShr, dq3, 3)), 0x3FF);
  const VReg q_ = b.alu(Opcode::kAdd, out, idx);
  b.store(Opcode::kStw, q_, 0, r0, 2);
  b.store(Opcode::kStw, q_, 4, r1, 3);

  b.assign_alui(idx, Opcode::kAdd, idx, 16);
  const VReg more = b.cmpi_b(Opcode::kCmplt, idx, kWords * 4);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kIn, random_words(0xD1BE6, kWords));
  prog.finalize();
  return prog;
}

namespace {

// Shared ADPCM predictor core for g721 encode/decode: a 6-tap FIR (taps in
// parallel) feeding a serial step-size adaptation recurrence.
Program make_g721(const MachineConfig& cfg, KernelScale s, bool encode) {
  constexpr int kSamples = 4 * 1024;  // 16 KiB, cache-resident
  const std::uint32_t kIn = encode ? 0x0016'0000u : 0x0017'0000u;
  const std::uint32_t kOut = encode ? 0x0018'0000u : 0x0019'0000u;

  Builder b(encode ? "g721encode" : "g721decode");
  const VReg in = b.movi(static_cast<std::int32_t>(kIn));
  const VReg out = b.movi(static_cast<std::int32_t>(kOut));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(200, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg idx = b.fresh_global();
  const VReg step = b.fresh_global();   // adaptive step size (serial)
  const VReg pred = b.fresh_global();   // signal predictor (serial)
  b.assign_i(idx, 0);
  b.assign_i(step, 16);
  b.assign_i(pred, 0);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg p = b.alu(Opcode::kAdd, in, idx);
  // FIR taps (parallel section).
  const VReg x0 = b.load(Opcode::kLdw, p, 0, kMemSpaceReadOnly);
  const VReg x1 = b.load(Opcode::kLdw, p, 4, kMemSpaceReadOnly);
  const VReg x2 = b.load(Opcode::kLdw, p, 8, kMemSpaceReadOnly);
  const VReg f = b.alu(
      Opcode::kAdd, b.mpyi(x0, encode ? 3 : 5),
      b.alu(Opcode::kAdd, b.mpyi(x1, -2), b.mpyi(x2, 1)));
  // Serial adaptation: diff → quantize → requantize → update step and
  // predictor (the ADPCM feedback loop).
  const VReg diff = b.alu(Opcode::kSub, f, pred);
  const VReg mag = b.alu(Opcode::kMax, diff, b.alu(Opcode::kSub, b.movi(0), diff));
  const VReg code = b.alui(Opcode::kMin, b.alu(Opcode::kShru, mag,
                                               b.alui(Opcode::kAnd, step, 15)),
                           7);
  const VReg requant = b.alui(Opcode::kShr, b.mpy(code, step), 2);
  const VReg nstep = b.alui(
      Opcode::kAnd,
      b.alu(Opcode::kAdd, step, b.alui(Opcode::kSub, requant, 3)), 0x1F);
  const VReg npred = b.alu(Opcode::kAdd, pred,
                           b.alui(Opcode::kShr, b.alu(Opcode::kSub, diff, requant), 1));
  b.assign(step, b.alui(Opcode::kMax, nstep, 1));
  b.assign(pred, npred);
  b.store(Opcode::kStw, b.alu(Opcode::kAdd, out, idx), 0, code, 2);

  b.assign_alui(idx, Opcode::kAdd, idx, 4);
  const VReg more = b.cmpi_b(Opcode::kCmplt, idx, kSamples * 4);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kIn, random_words(encode ? 0x6721E : 0x6721D, kSamples + 4));
  prog.finalize();
  return prog;
}

}  // namespace

Program make_g721encode(const MachineConfig& cfg, KernelScale s) {
  return make_g721(cfg, s, /*encode=*/true);
}

Program make_g721decode(const MachineConfig& cfg, KernelScale s) {
  return make_g721(cfg, s, /*encode=*/false);
}

}  // namespace vexsim::wl
