// Benchmark registry: Figure 13(a) metadata plus program factories.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/kernels.hpp"

namespace vexsim::wl {

enum class IlpClass : char { kLow = 'l', kMedium = 'm', kHigh = 'h' };

struct BenchmarkInfo {
  std::string name;
  IlpClass ilp;
  double paper_ipcr;  // Figure 13(a), real memory
  double paper_ipcp;  // Figure 13(a), perfect memory
  std::string description;
  Program (*factory)(const MachineConfig&, KernelScale);
};

// The twelve benchmarks in Figure 13(a) order.
[[nodiscard]] const std::vector<BenchmarkInfo>& benchmark_registry();

// Comma-separated registry names, for error messages and CLI help.
[[nodiscard]] std::string benchmark_names();

// Figure-13 metadata for a registry benchmark. Throws CheckError listing
// the valid names on an unknown one (synthetic "synth:" specs build through
// make_benchmark but carry no paper metadata).
[[nodiscard]] const BenchmarkInfo& benchmark_info(const std::string& name);

// Builds (and memoizes per (name, geometry, latencies, scale, compiler
// options)) a benchmark program: a Figure-13 registry name or a
// name-mangled synthetic spec ("synth:i0.8-m0.3-s42", see
// wl_synth/spec.hpp). Compilation and synthesis are deterministic, so
// sharing is safe: ThreadContexts hold const Program pointers. A synthetic
// spec's own "cc" field overrides `compiler`; `stats` (optional) receives
// the memoized per-program compile statistics.
[[nodiscard]] std::shared_ptr<const Program> make_benchmark(
    const std::string& name, const MachineConfig& cfg, double scale = 1.0,
    const cc::CompilerOptions& compiler = {},
    cc::CompileStats* stats = nullptr);

}  // namespace vexsim::wl
