// Benchmark registry: Figure 13(a) metadata plus program factories.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/kernels.hpp"

namespace vexsim::wl {

enum class IlpClass : char { kLow = 'l', kMedium = 'm', kHigh = 'h' };

struct BenchmarkInfo {
  std::string name;
  IlpClass ilp;
  double paper_ipcr;  // Figure 13(a), real memory
  double paper_ipcp;  // Figure 13(a), perfect memory
  std::string description;
  Program (*factory)(const MachineConfig&, KernelScale);
};

// The twelve benchmarks in Figure 13(a) order.
[[nodiscard]] const std::vector<BenchmarkInfo>& benchmark_registry();

[[nodiscard]] const BenchmarkInfo& benchmark_info(const std::string& name);

// Builds (and memoizes per (name, clusters, issue, scale)) a benchmark
// program. Compilation is deterministic, so sharing is safe: ThreadContexts
// hold const Program pointers.
[[nodiscard]] std::shared_ptr<const Program> make_benchmark(
    const std::string& name, const MachineConfig& cfg, double scale = 1.0);

}  // namespace vexsim::wl
