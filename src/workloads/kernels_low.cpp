// Low-ILP kernels: mcf, bzip2, blowfish, gsmencode.
//
// Dominated by pointer chasing, data-dependent branches, and serial
// recurrences — the paper's l class (IPCp ≈ 0.8 – 1.5), with mcf and
// blowfish also cache-hostile (IPCr markedly below IPCp).
#include "workloads/kernels.hpp"

#include <vector>

#include "cc/compiler.hpp"
#include "util/rng.hpp"

namespace vexsim::wl {

using cc::Builder;
using cc::VReg;
using cc::kMemSpaceReadOnly;

namespace {
std::vector<std::uint32_t> random_words(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<std::uint32_t> w(static_cast<std::size_t>(n));
  for (auto& x : w) x = rng.next_u32();
  return w;
}
int scaled(double base, const KernelScale& s) {
  const int v = static_cast<int>(base * s.outer);
  return v < 1 ? 1 : v;
}
}  // namespace

// Minimum-cost-flow arc scan: pointer chase over a ~1 MiB randomized node
// pool (every hop a likely DCache miss), comparing arc costs and keeping a
// running minimum. The paper's most memory-bound benchmark (0.96 vs 1.34).
Program make_mcf(const MachineConfig& cfg, KernelScale s) {
  constexpr int kNodes = 5 * 1024;      // 16 B/node → 80 KiB pool
  constexpr int kNodeBytes = 16;
  constexpr std::uint32_t kPool = 0x0020'0000;
  constexpr std::uint32_t kOut = 0x0040'0000;

  // Node layout: [next_offset, cost, flow, pad]; next offsets form one long
  // random cycle through the pool (Sattolo permutation).
  std::vector<std::uint32_t> pool(static_cast<std::size_t>(kNodes) * 4);
  {
    Rng rng(0x3CF);
    std::vector<std::uint32_t> perm(static_cast<std::size_t>(kNodes));
    for (int i = 0; i < kNodes; ++i)
      perm[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
    for (int i = kNodes - 1; i > 0; --i) {
      const auto j = rng.below(static_cast<std::uint32_t>(i));  // Sattolo
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
    for (int i = 0; i < kNodes; ++i) {
      pool[static_cast<std::size_t>(i) * 4 + 0] =
          kPool + perm[static_cast<std::size_t>(i)] * kNodeBytes;
      pool[static_cast<std::size_t>(i) * 4 + 1] = rng.below(100000);
      pool[static_cast<std::size_t>(i) * 4 + 2] = rng.below(64);
      pool[static_cast<std::size_t>(i) * 4 + 3] = 0;
    }
  }

  Builder b("mcf");
  const VReg out = b.movi(static_cast<std::int32_t>(kOut));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(30, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg node = b.fresh_global();
  const VReg best = b.fresh_global();
  const VReg hops = b.fresh_global();
  b.assign_i(node, static_cast<std::int32_t>(kPool));
  b.assign_i(best, 0x7FFFFFFF);
  b.assign_i(hops, 4000);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  // The chase: next pointer is the critical recurrence; the cost load hangs
  // off the *next* pointer (arc inspection), deepening the serial chain the
  // way mcf's arc scans do.
  const VReg next = b.load(Opcode::kLdw, node, 0, kMemSpaceReadOnly);
  const VReg cost = b.load(Opcode::kLdw, next, 4, kMemSpaceReadOnly);
  const VReg flow = b.load(Opcode::kLdw, node, 8, kMemSpaceReadOnly);
  const VReg adj = b.alu(Opcode::kAdd, cost, b.alui(Opcode::kShl, flow, 2));
  const VReg lt = b.cmp_b(Opcode::kCmpltu, adj, best);
  b.assign(best, b.slct(lt, adj, best));
  b.assign(node, next);
  b.assign_alui(hops, Opcode::kAdd, hops, -1);
  const VReg more = b.cmpi_b(Opcode::kCmpgt, hops, 0);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.store(Opcode::kStw, out, 0, best, 2);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kPool, pool);
  prog.finalize();
  return prog;
}

// bzip2 compression front-end: byte histogram + run detection with
// data-dependent control flow (taken branches with no predictor are the
// bottleneck; IPC ≈ 0.8 with almost no cache sensitivity).
Program make_bzip2(const MachineConfig& cfg, KernelScale s) {
  constexpr int kBytes = 16 * 1024;
  constexpr std::uint32_t kIn = 0x0044'0000;
  constexpr std::uint32_t kHist = 0x0045'0000;

  Builder b("bzip2");
  const VReg in = b.movi(static_cast<std::int32_t>(kIn));
  const VReg hist = b.movi(static_cast<std::int32_t>(kHist));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(60, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg idx = b.fresh_global();
  const VReg runs = b.fresh_global();
  const VReg prev = b.fresh_global();
  b.assign_i(idx, 0);
  b.assign_i(runs, 0);
  b.assign_i(prev, -1);
  // Short branchy blocks: bzip2's front end is dominated by data-dependent
  // control flow around tiny amounts of work — every block here carries a
  // compare-to-branch delay and most transitions pay the taken penalty,
  // which is what pins IPC near 0.8 on a 16-wide machine.
  const int body = b.new_block();
  const int hist_blk = b.new_block();  // body falls through (byte differs)
  const int swap_blk = b.new_block();  // hist falls through
  const int run_blk = b.new_block();   // reached by the `same` branch
  const int join = b.new_block();
  b.jump(body);

  b.switch_to(body);
  const VReg byte = b.load(Opcode::kLdbu, b.alu(Opcode::kAdd, in, idx), 0,
                           kMemSpaceReadOnly);
  const VReg old_prev = b.mov(prev);  // pre-update value, read across blocks
  const VReg same = b.cmp_b(Opcode::kCmpeq, byte, prev);
  b.assign(prev, byte);
  b.assign_alui(idx, Opcode::kAdd, idx, 1);
  b.branch(same, run_blk);  // data-dependent taken branch on repeated bytes

  b.switch_to(hist_blk);
  // Histogram update: a serial load-modify-store through one alias space,
  // with a context-mixed bucket index (BWT-style) deepening the chain.
  const VReg bucket = b.alui(
      Opcode::kAnd, b.alu(Opcode::kAdd, byte, old_prev), 0xFF);
  const VReg slot = b.alu(Opcode::kAdd, hist, b.alui(Opcode::kShl, bucket, 2));
  const VReg count = b.load(Opcode::kLdw, slot, 0, /*space=*/1);
  const VReg bumped = b.alu(Opcode::kAdd, b.alui(Opcode::kShru, count, 24),
                            b.alui(Opcode::kAdd, count, 1));
  b.store(Opcode::kStw, slot, 0, bumped, /*space=*/1);
  // Bucket-ordering test — a second data-dependent branch, as in bzip2's
  // sorting comparisons.
  const VReg bigger = b.cmp_b(Opcode::kCmpltu, old_prev, byte);
  b.branch(bigger, join);

  b.switch_to(swap_blk);
  b.assign_alu(runs, Opcode::kXor, runs, byte);  // bookkeeping only
  b.jump(join);

  b.switch_to(run_blk);
  b.assign_alui(runs, Opcode::kAdd, runs, 1);  // falls through into join

  b.switch_to(join);
  const VReg more = b.cmpi_b(Opcode::kCmplt, idx, kBytes);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.store(Opcode::kStw, hist, 1024, runs, 2);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  // Compressible input: long-ish runs so `same` branches are taken often.
  {
    Rng rng(0xB2122);
    std::vector<std::uint32_t> words(kBytes / 4);
    std::uint32_t cur = 0;
    for (auto& w : words) {
      if (rng.chance(0.4)) cur = rng.below(256);
      w = cur | (cur << 8) | (cur << 16) | (cur << 24);
      if (rng.chance(0.5)) w ^= rng.below(256) << 8;
    }
    prog.add_data_words(kIn, words);
  }
  prog.finalize();
  return prog;
}

// Blowfish CBC encryption: four dependent S-box lookups per Feistel round,
// 4 rounds per block here, streaming over a 256 KiB buffer (stream misses
// give the IPCr 1.11 < IPCp 1.47 gap while the 4 KiB S-boxes stay resident).
Program make_blowfish(const MachineConfig& cfg, KernelScale s) {
  constexpr int kSboxWords = 4 * 256;
  constexpr int kDataWords = 64 * 1024;  // 256 KiB stream
  constexpr std::uint32_t kSbox = 0x0050'0000;
  constexpr std::uint32_t kData = 0x0052'0000;

  Builder b("blowfish");
  const VReg sbox = b.movi(static_cast<std::int32_t>(kSbox));
  const VReg data = b.movi(static_cast<std::int32_t>(kData));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(12, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg idx = b.fresh_global();
  const VReg chain = b.fresh_global();  // CBC chaining value (serial)
  b.assign_i(idx, 0);
  b.assign_i(chain, 0x12345678);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg ptr = b.alu(Opcode::kAdd, data, idx);
  const VReg lt0 = b.load(Opcode::kLdw, ptr, 0, /*space=*/1);
  VReg l = b.alu(Opcode::kXor, lt0, chain);
  VReg r = b.load(Opcode::kLdw, ptr, 4, /*space=*/1);
  for (int round = 0; round < 4; ++round) {
    // F(l): S-box lookups with the Feistel F's serial structure — the
    // second lookup of each half depends on the first one's result, which
    // is what holds blowfish near IPC 1.5 on a wide machine.
    const VReg a = b.alui(Opcode::kAnd, b.alui(Opcode::kShru, l, 24), 0xFF);
    const VReg c = b.alui(Opcode::kAnd, b.alui(Opcode::kShru, l, 8), 0xFF);
    const VReg sa = b.load(Opcode::kLdw, b.alu(Opcode::kAdd, sbox,
                                               b.alui(Opcode::kShl, a, 2)),
                           0, kMemSpaceReadOnly);
    const VReg sc = b.load(Opcode::kLdw, b.alu(Opcode::kAdd, sbox,
                                               b.alui(Opcode::kShl, c, 2)),
                           2048, kMemSpaceReadOnly);
    const VReg bidx = b.alui(Opcode::kAnd,
                             b.alu(Opcode::kAdd, b.alui(Opcode::kShru, l, 16),
                                   sa),
                             0xFF);
    const VReg sb = b.load(Opcode::kLdw, b.alu(Opcode::kAdd, sbox,
                                               b.alui(Opcode::kShl, bidx, 2)),
                           1024, kMemSpaceReadOnly);
    const VReg didx =
        b.alui(Opcode::kAnd, b.alu(Opcode::kXor, sb, sc), 0xFF);
    const VReg sd = b.load(Opcode::kLdw, b.alu(Opcode::kAdd, sbox,
                                               b.alui(Opcode::kShl, didx, 2)),
                           3072, kMemSpaceReadOnly);
    const VReg f = b.alu(Opcode::kAdd,
                         b.alu(Opcode::kXor, b.alu(Opcode::kAdd, sa, sb), sc),
                         sd);
    const VReg nl = b.alu(Opcode::kXor, r, f);
    r = l;
    l = nl;
  }
  b.store(Opcode::kStw, ptr, 0, l, /*space=*/1);
  b.store(Opcode::kStw, ptr, 4, r, /*space=*/1);
  b.assign(chain, l);
  // One cache line per block: every iteration streams fresh data, which
  // reproduces the paper's IPCr dip (1.11 vs 1.47).
  b.assign_alui(idx, Opcode::kAdd, idx, 64);
  const VReg more = b.cmpi_b(Opcode::kCmplt, idx, kDataWords * 4);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kSbox, random_words(0xB70F, kSboxWords));
  prog.add_data_words(kData, random_words(0xB70D, kDataWords));
  prog.finalize();
  return prog;
}

// GSM full-rate encoder LPC section: iterative Schur-style recursion —
// nearly pure serial dependence with multiplies in the chain (IPC ≈ 1.07,
// fully cache-resident).
Program make_gsmencode(const MachineConfig& cfg, KernelScale s) {
  constexpr int kSamples = 4 * 1024;
  constexpr std::uint32_t kIn = 0x0060'0000;

  Builder b("gsmencode");
  const VReg in = b.movi(static_cast<std::int32_t>(kIn));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(160, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg idx = b.fresh_global();
  const VReg acc = b.fresh_global();
  const VReg refl = b.fresh_global();
  b.assign_i(idx, 0);
  b.assign_i(acc, 1);
  b.assign_i(refl, 0x40);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg x = b.load(Opcode::kLdw, b.alu(Opcode::kAdd, in, idx), 0,
                        kMemSpaceReadOnly);
  // Serial Schur recursion: each step feeds the next through acc and refl,
  // with a division-like shift-subtract refinement inside every step.
  VReg a = acc;
  VReg k = refl;
  for (int step = 0; step < 3; ++step) {
    const VReg e = b.alu(Opcode::kSub, x, b.alui(Opcode::kShr, b.mpy(a, k), 7));
    const VReg e2 =
        b.alu(Opcode::kSub, e, b.alui(Opcode::kShr, b.mpy(e, k), 9));
    a = b.alu(Opcode::kAdd, a, b.alui(Opcode::kShr, e2, 2));
    k = b.alui(Opcode::kAnd,
               b.alu(Opcode::kXor, k, b.alui(Opcode::kShr, a, 3)), 0xFF);
  }
  b.assign(acc, a);
  b.assign(refl, b.alui(Opcode::kOr, k, 1));
  b.assign_alui(idx, Opcode::kAdd, idx, 4);
  const VReg more = b.cmpi_b(Opcode::kCmplt, idx, kSamples * 4);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.store(Opcode::kStw, in, kSamples * 4, acc, 2);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kIn, random_words(0x65E, kSamples + 1));
  prog.finalize();
  return prog;
}

}  // namespace vexsim::wl
