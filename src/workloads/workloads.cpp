#include "workloads/workloads.hpp"

#include "util/check.hpp"
#include "workloads/registry.hpp"

namespace vexsim::wl {

const std::vector<WorkloadSpec>& paper_workloads() {
  static const std::vector<WorkloadSpec> specs = {
      {"llll", {"mcf", "bzip2", "blowfish", "gsmencode"}},
      {"lmmh", {"bzip2", "cjpeg", "djpeg", "imgpipe"}},
      {"mmmm", {"g721encode", "g721decode", "cjpeg", "djpeg"}},
      {"llmm", {"gsmencode", "blowfish", "g721encode", "djpeg"}},
      {"llmh", {"mcf", "blowfish", "cjpeg", "x264"}},
      {"llhh", {"mcf", "blowfish", "x264", "idct"}},
      {"lmhh", {"gsmencode", "g721encode", "imgpipe", "colorspace"}},
      {"mmhh", {"djpeg", "g721decode", "idct", "colorspace"}},
      {"hhhh", {"x264", "idct", "imgpipe", "colorspace"}},
  };
  return specs;
}

const WorkloadSpec& workload(const std::string& name) {
  for (const WorkloadSpec& spec : paper_workloads())
    if (spec.name == name) return spec;
  VEXSIM_CHECK_MSG(false, "unknown workload: " << name);
  static WorkloadSpec dummy{};
  return dummy;
}

std::vector<std::shared_ptr<const Program>> build_workload(
    const WorkloadSpec& spec, const MachineConfig& cfg, double scale) {
  std::vector<std::shared_ptr<const Program>> programs;
  programs.reserve(spec.benchmarks.size());
  for (const std::string& name : spec.benchmarks)
    programs.push_back(make_benchmark(name, cfg, scale));
  return programs;
}

}  // namespace vexsim::wl
