#include "workloads/workloads.hpp"

#include "util/check.hpp"
#include "workloads/registry.hpp"
#include "wl_synth/spec.hpp"

namespace vexsim::wl {

const std::vector<WorkloadSpec>& paper_workloads() {
  static const std::vector<WorkloadSpec> specs = {
      {"llll", {"mcf", "bzip2", "blowfish", "gsmencode"}},
      {"lmmh", {"bzip2", "cjpeg", "djpeg", "imgpipe"}},
      {"mmmm", {"g721encode", "g721decode", "cjpeg", "djpeg"}},
      {"llmm", {"gsmencode", "blowfish", "g721encode", "djpeg"}},
      {"llmh", {"mcf", "blowfish", "cjpeg", "x264"}},
      {"llhh", {"mcf", "blowfish", "x264", "idct"}},
      {"lmhh", {"gsmencode", "g721encode", "imgpipe", "colorspace"}},
      {"mmhh", {"djpeg", "g721decode", "idct", "colorspace"}},
      {"hhhh", {"x264", "idct", "imgpipe", "colorspace"}},
  };
  return specs;
}

namespace {

[[nodiscard]] bool is_registry_benchmark(const std::string& name) {
  for (const auto& info : benchmark_registry())
    if (info.name == name) return true;
  return false;
}

[[nodiscard]] std::string mix_names() {
  std::string names;
  for (const WorkloadSpec& spec : paper_workloads()) {
    if (!names.empty()) names += ", ";
    names += spec.name;
  }
  return names;
}

}  // namespace

WorkloadSpec workload(const std::string& name) {
  for (const WorkloadSpec& spec : paper_workloads())
    if (spec.name == name) return spec;

  // Not a paper label: a '+'-joined list of components (possibly just one).
  WorkloadSpec spec;
  spec.name = name;
  std::size_t pos = 0;
  while (pos <= name.size()) {
    const std::size_t plus = name.find('+', pos);
    const std::string part =
        name.substr(pos, plus == std::string::npos ? plus : plus - pos);
    pos = plus == std::string::npos ? name.size() + 1 : plus + 1;
    if (wl_synth::is_synth_name(part)) {
      (void)wl_synth::parse_spec(part);  // throws on bad grammar
    } else {
      VEXSIM_CHECK_MSG(is_registry_benchmark(part),
                       "unknown workload '"
                           << name << "' (component '" << part
                           << "'): valid mixes are [" << mix_names()
                           << "], components are benchmarks ["
                           << benchmark_names()
                           << "] or 'synth:' specs, joined with '+'");
    }
    spec.benchmarks.push_back(part);
  }
  return spec;
}

std::vector<std::shared_ptr<const Program>> build_workload(
    const WorkloadSpec& spec, const MachineConfig& cfg, double scale,
    const cc::CompilerOptions& compiler, CompileSummary* summary) {
  VEXSIM_CHECK_MSG(!spec.benchmarks.empty(),
                   "workload '" << spec.name << "' has no components");
  std::vector<std::shared_ptr<const Program>> programs;
  programs.reserve(spec.benchmarks.size());
  if (summary != nullptr) *summary = CompileSummary{};
  for (const std::string& name : spec.benchmarks) {
    cc::CompileStats stats;
    programs.push_back(make_benchmark(name, cfg, scale, compiler,
                                      summary != nullptr ? &stats : nullptr));
    if (summary != nullptr) {
      summary->instructions += static_cast<std::uint64_t>(stats.instructions);
      summary->operations += static_cast<std::uint64_t>(stats.operations);
      summary->copies_inserted +=
          static_cast<std::uint64_t>(stats.copies_inserted);
      summary->swp_loops += static_cast<std::uint64_t>(stats.swp_loops);
      summary->present = true;
    }
  }
  return programs;
}

}  // namespace vexsim::wl
