// High-ILP kernels: colorspace, idct, imgpipe, x264 (SAD motion estimation).
//
// These use wide generator-side unrolling over independent lanes; each lane
// stores through its own alias space so the scheduler can overlap them.
#include "workloads/kernels.hpp"

#include <vector>

#include "cc/compiler.hpp"
#include "util/rng.hpp"

namespace vexsim::wl {

using cc::Builder;
using cc::VReg;
using cc::kMemSpaceReadOnly;

namespace {

std::vector<std::uint32_t> random_words(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<std::uint32_t> w(static_cast<std::size_t>(n));
  for (auto& x : w) x = rng.next_u32();
  return w;
}

int scaled(double base, const KernelScale& s) {
  const int v = static_cast<int>(base * s.outer);
  return v < 1 ? 1 : v;
}

}  // namespace

// Production colorspace conversion (packed RGBx word → packed YCbCr word).
// Per pixel: 1 load, byte unpack, 3 dot products with rounding, clip-free
// pack, 1 store. Pixels are fully independent — the paper's highest-ILP
// benchmark (IPCp 8.88).
Program make_colorspace(const MachineConfig& cfg, KernelScale s) {
  // 160 KiB input + 160 KiB output stream through the 64 KiB DCache — the
  // paper's colorspace converter shows the largest IPCr/IPCp gap (5.47 vs
  // 8.88) precisely because production images do not fit the cache.
  constexpr int kPixels = 40 * 1024;
  constexpr int kUnroll = 6;
  constexpr std::uint32_t kIn = 0x0002'0000;
  constexpr std::uint32_t kOut = 0x0003'0000;

  Builder b("colorspace");
  const VReg in = b.movi(static_cast<std::int32_t>(kIn));
  const VReg out = b.movi(static_cast<std::int32_t>(kOut));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(24, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg idx = b.fresh_global();  // byte offset into the pixel buffers
  b.assign_i(idx, 0);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg in_p = b.alu(Opcode::kAdd, in, idx);
  const VReg out_p = b.alu(Opcode::kAdd, out, idx);
  for (int u = 0; u < kUnroll; ++u) {
    const int space = 2 + u;  // disjoint output lanes
    const VReg px = b.load(Opcode::kLdw, in_p, u * 4, kMemSpaceReadOnly);
    // Second plane (wide-gamut extension channel) doubles the streaming
    // footprint per pixel — colorspace is the paper's most cache-starved
    // high-ILP benchmark (IPCr/IPCp = 0.62).
    const VReg px2 = b.load(Opcode::kLdw, in_p, u * 4 + kPixels * 4,
                            kMemSpaceReadOnly);
    const VReg r = b.alui(Opcode::kAnd, b.alu(Opcode::kAdd, px, px2), 0xFF);
    const VReg g = b.alui(Opcode::kAnd, b.alui(Opcode::kShru, px, 8), 0xFF);
    const VReg bl = b.alui(Opcode::kAnd, b.alui(Opcode::kShru, px, 16), 0xFF);
    // ITU-R BT.601 integer coefficients.
    const VReg y = b.alui(
        Opcode::kShru,
        b.alui(Opcode::kAdd,
               b.alu(Opcode::kAdd,
                     b.alu(Opcode::kAdd, b.mpyi(r, 66), b.mpyi(g, 129)),
                     b.mpyi(bl, 25)),
               128),
        8);
    const VReg cb = b.alui(
        Opcode::kShru,
        b.alui(Opcode::kAdd,
               b.alu(Opcode::kAdd,
                     b.alu(Opcode::kSub, b.mpyi(bl, 112), b.mpyi(r, 38)),
                     b.mpyi(g, -74)),
               128 + (128 << 8)),
        8);
    const VReg cr = b.alui(
        Opcode::kShru,
        b.alui(Opcode::kAdd,
               b.alu(Opcode::kAdd,
                     b.alu(Opcode::kSub, b.mpyi(r, 112), b.mpyi(g, 94)),
                     b.mpyi(bl, -18)),
               128 + (128 << 8)),
        8);
    const VReg packed = b.alu(
        Opcode::kOr, y,
        b.alu(Opcode::kOr, b.alui(Opcode::kShl, b.alui(Opcode::kAnd, cb, 0xFF), 8),
              b.alui(Opcode::kShl, b.alui(Opcode::kAnd, cr, 0xFF), 16)));
    b.store(Opcode::kStw, out_p, u * 4, packed, space);
  }
  b.assign_alui(idx, Opcode::kAdd, idx, kUnroll * 4);
  const VReg more = b.cmpi_b(Opcode::kCmplt, idx, kPixels * 4);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);

  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kIn, random_words(0xC01055EED, 2 * kPixels));
  prog.finalize();
  return prog;
}

// Inverse 8×8 DCT (ffmpeg-style row/column butterflies). Rows are
// independent; two row-passes then two column-gather passes per block.
Program make_idct(const MachineConfig& cfg, KernelScale s) {
  constexpr int kBlocks = 128;  // 8x8 int blocks: 32+32 KiB working set
  constexpr std::uint32_t kIn = 0x0004'0000;
  constexpr std::uint32_t kTmp = 0x0006'0000;

  Builder b("idct");
  const VReg in = b.movi(static_cast<std::int32_t>(kIn));
  const VReg tmp = b.movi(static_cast<std::int32_t>(kTmp));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(60, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg blk = b.fresh_global();
  b.assign_i(blk, 0);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg base = b.alu(Opcode::kAdd, in, blk);
  const VReg tbase = b.alu(Opcode::kAdd, tmp, blk);
  // Row pass, two rows in flight per iteration: enough ILP to sit in the
  // paper's high class, with the butterfly dependence chains (mpy → add →
  // shift) limiting IPC well below the machine width.
  for (int row = 0; row < 2; ++row) {
    const int off = row * 32;  // 8 ints per row
    const int space = 2 + row;
    std::vector<VReg> x(8);
    for (int i = 0; i < 8; ++i)
      x[static_cast<std::size_t>(i)] =
          b.load(Opcode::kLdw, base, off + i * 4, kMemSpaceReadOnly);
    // Even part.
    const VReg e0 = b.alu(Opcode::kAdd, x[0], x[4]);
    const VReg e1 = b.alu(Opcode::kSub, x[0], x[4]);
    const VReg e2 = b.alu(Opcode::kSub, b.mpyi(x[2], 1108),
                          b.mpyi(x[6], 2676));
    const VReg e3 = b.alu(Opcode::kAdd, b.mpyi(x[2], 2676),
                          b.mpyi(x[6], 1108));
    const VReg s0 = b.alu(Opcode::kAdd, e0, e3);
    const VReg s3 = b.alu(Opcode::kSub, e0, e3);
    const VReg s1 = b.alu(Opcode::kAdd, e1, e2);
    const VReg s2 = b.alu(Opcode::kSub, e1, e2);
    // Odd part.
    const VReg o0 = b.alu(Opcode::kAdd, b.mpyi(x[1], 1609),
                          b.mpyi(x[7], 275));
    const VReg o1 = b.alu(Opcode::kSub, b.mpyi(x[5], 1108), b.mpyi(x[3], 565));
    const VReg o2 = b.alu(Opcode::kAdd, b.mpyi(x[5], 565), b.mpyi(x[3], 1108));
    const VReg o3 = b.alu(Opcode::kSub, b.mpyi(x[1], 275), b.mpyi(x[7], 1609));
    const VReg t0 = b.alu(Opcode::kAdd, o0, o2);
    const VReg t1 = b.alu(Opcode::kAdd, o1, o3);
    // Outputs (shifted back down).
    const VReg y0 = b.alui(Opcode::kShr, b.alu(Opcode::kAdd, s0, t0), 11);
    const VReg y7 = b.alui(Opcode::kShr, b.alu(Opcode::kSub, s0, t0), 11);
    const VReg y1 = b.alui(Opcode::kShr, b.alu(Opcode::kAdd, s1, t1), 11);
    const VReg y6 = b.alui(Opcode::kShr, b.alu(Opcode::kSub, s1, t1), 11);
    const VReg y2 = b.alui(Opcode::kShr, b.alu(Opcode::kAdd, s2, o1), 11);
    const VReg y5 = b.alui(Opcode::kShr, b.alu(Opcode::kSub, s2, o1), 11);
    const VReg y3 = b.alui(Opcode::kShr, b.alu(Opcode::kAdd, s3, o3), 11);
    const VReg y4 = b.alui(Opcode::kShr, b.alu(Opcode::kSub, s3, o3), 11);
    const VReg ys[8] = {y0, y1, y2, y3, y4, y5, y6, y7};
    for (int i = 0; i < 8; ++i)
      b.store(Opcode::kStw, tbase, off + i * 4, ys[i], space);
  }
  b.assign_alui(blk, Opcode::kAdd, blk, 64);  // two rows per iteration
  const VReg more = b.cmpi_b(Opcode::kCmplt, blk, kBlocks * 256);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kIn, random_words(0x1DC7, kBlocks * 64));
  prog.finalize();
  return prog;
}

// Imaging pipeline used in high-performance printers: neighbour
// interpolation + tone mapping + ordered dither per pixel, unrolled lanes.
Program make_imgpipe(const MachineConfig& cfg, KernelScale s) {
  // Band-buffered pipeline: in (24 KiB incl. the neighbour row) + out
  // (16 KiB) stay cache-resident, as printer pipelines are engineered to be
  // (paper ratio IPCr/IPCp = 0.94).
  constexpr int kWidth = 2048;
  constexpr int kRows = 2;
  constexpr int kUnroll = 8;
  constexpr std::uint32_t kIn = 0x0008'0000;
  constexpr std::uint32_t kOut = 0x000A'0000;

  Builder b("imgpipe");
  const VReg in = b.movi(static_cast<std::int32_t>(kIn));
  const VReg out = b.movi(static_cast<std::int32_t>(kOut));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(200, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg idx = b.fresh_global();
  // Error diffusion carries quantization error serially across pixels —
  // the part of a printer pipeline that caps its ILP near the paper's 4.05.
  const VReg err = b.fresh_global();
  b.assign_i(idx, 0);
  b.assign_i(err, 0);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg p = b.alu(Opcode::kAdd, in, idx);
  const VReg q = b.alu(Opcode::kAdd, out, idx);
  VReg carry = err;
  for (int u = 0; u < kUnroll; ++u) {
    const int space = 2 + u;
    const VReg a = b.load(Opcode::kLdw, p, u * 4, kMemSpaceReadOnly);
    const VReg c = b.load(Opcode::kLdw, p, u * 4 + kWidth * 4,
                          kMemSpaceReadOnly);
    // Horizontal-vertical blend (weights 3:1), tone curve, error diffusion.
    const VReg blend = b.alui(
        Opcode::kShru,
        b.alu(Opcode::kAdd, b.mpyi(b.alui(Opcode::kAnd, a, 0xFFFF), 3),
              b.alui(Opcode::kAnd, c, 0xFFFF)),
        2);
    const VReg tone =
        b.alui(Opcode::kShru, b.mpy(blend, b.alui(Opcode::kAdd, blend, 7)), 9);
    const VReg dith = b.alui(Opcode::kAnd,
                             b.alu(Opcode::kAdd, tone, carry), 0xFF);
    carry = b.alui(Opcode::kShru, b.alu(Opcode::kAdd, carry, dith), 1);
    const VReg hi = b.alui(Opcode::kShru, a, 16);
    const VReg mixed =
        b.alu(Opcode::kOr, dith, b.alui(Opcode::kShl, b.alu(Opcode::kMaxu, hi, tone), 8));
    b.store(Opcode::kStw, q, u * 4, mixed, space);
  }
  b.assign(err, carry);
  b.assign_alui(idx, Opcode::kAdd, idx, kUnroll * 4);
  const VReg more = b.cmpi_b(Opcode::kCmplt, idx, kWidth * kRows * 4);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kIn, random_words(0x1316, kWidth * (kRows + 1)));
  prog.finalize();
  return prog;
}

// H.264 motion estimation inner loop: 16×16 SAD between current and
// reference blocks, byte-parallel |a−b| via max/min, row-parallel with an
// accumulation tree.
Program make_x264(const MachineConfig& cfg, KernelScale s) {
  constexpr int kSearch = 512;  // candidate positions per outer pass
  constexpr std::uint32_t kCur = 0x000C'0000;
  constexpr std::uint32_t kRef = 0x000D'0000;
  constexpr std::uint32_t kOut = 0x000E'0000;

  Builder b("x264");
  const VReg cur = b.movi(static_cast<std::int32_t>(kCur));
  const VReg ref = b.movi(static_cast<std::int32_t>(kRef));
  const VReg out = b.movi(static_cast<std::int32_t>(kOut));
  const VReg outer = b.fresh_global();
  b.assign_i(outer, scaled(150, s));
  const int outer_blk = b.new_block();
  b.jump(outer_blk);
  b.switch_to(outer_blk);

  const VReg pos = b.fresh_global();
  const VReg best = b.fresh_global();
  b.assign_i(pos, 0);
  b.assign_i(best, 0x7FFFFFFF);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);

  const VReg rp = b.alu(Opcode::kAdd, ref, pos);
  std::vector<VReg> partial;
  for (int row = 0; row < 2; ++row) {  // 2 rows × 2 words per candidate
    for (int w = 0; w < 2; ++w) {
      const VReg a = b.load(Opcode::kLdw, cur, row * 8 + w * 4,
                            kMemSpaceReadOnly);
      const VReg r = b.load(Opcode::kLdw, rp, row * 8 + w * 4,
                            kMemSpaceReadOnly);
      // Byte-wise |a-b| using per-byte max-min on unpacked pairs.
      const VReg a_lo = b.alui(Opcode::kAnd, a, 0x00FF00FF);
      const VReg r_lo = b.alui(Opcode::kAnd, r, 0x00FF00FF);
      const VReg a_hi = b.alui(Opcode::kAnd, b.alui(Opcode::kShru, a, 8),
                               0x00FF00FF);
      const VReg r_hi = b.alui(Opcode::kAnd, b.alui(Opcode::kShru, r, 8),
                               0x00FF00FF);
      const VReg d_lo = b.alu(Opcode::kSub, b.alu(Opcode::kMaxu, a_lo, r_lo),
                              b.alu(Opcode::kMinu, a_lo, r_lo));
      const VReg d_hi = b.alu(Opcode::kSub, b.alu(Opcode::kMaxu, a_hi, r_hi),
                              b.alu(Opcode::kMinu, a_hi, r_hi));
      const VReg sum2 = b.alu(Opcode::kAdd, d_lo, d_hi);
      const VReg folded = b.alu(Opcode::kAdd, b.alui(Opcode::kAnd, sum2, 0xFFFF),
                                b.alui(Opcode::kShru, sum2, 16));
      partial.push_back(folded);
    }
  }
  // Reduction tree.
  while (partial.size() > 1) {
    std::vector<VReg> next;
    for (std::size_t i = 0; i + 1 < partial.size(); i += 2)
      next.push_back(b.alu(Opcode::kAdd, partial[i], partial[i + 1]));
    if (partial.size() % 2 == 1) next.push_back(partial.back());
    partial = std::move(next);
  }
  // Best-candidate tracking: a serial min/update recurrence across search
  // positions (motion estimation's running minimum), plus a data-dependent
  // branch around the new-best bookkeeping.
  const VReg is_better = b.cmp_b(Opcode::kCmpltu, partial[0], best);
  b.assign(best, b.slct(is_better, partial[0], best));
  b.store(Opcode::kStw, b.alu(Opcode::kAdd, out, pos), 0, partial[0], 2);
  b.assign_alui(pos, Opcode::kAdd, pos, 4);
  const int update_blk = b.new_block();
  const int cont_blk = b.new_block();
  // Not better → skip the update block (brf); better → fall through.
  b.branch(is_better, cont_blk, /*if_false=*/true);
  b.switch_to(update_blk);
  b.store(Opcode::kStw, out, kSearch * 4, best, 3);  // record new best
  b.switch_to(cont_blk);
  const VReg more = b.cmpi_b(Opcode::kCmplt, pos, kSearch * 4);
  b.branch(more, body);

  const int outer_end = b.new_block();
  b.switch_to(outer_end);
  b.assign_alui(outer, Opcode::kAdd, outer, -1);
  const VReg again = b.cmpi_b(Opcode::kCmpgt, outer, 0);
  b.branch(again, outer_blk);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  Program prog = cc::compile(std::move(b).take(), cfg, s.compiler, s.stats);
  prog.add_data_words(kCur, random_words(0xC0DE, 16));
  prog.add_data_words(kRef, random_words(0xFEED, kSearch + 16));
  prog.finalize();
  return prog;
}

}  // namespace vexsim::wl
