// The twelve benchmark kernels of Figure 13(a).
//
// Each kernel is a stand-in for the corresponding MediaBench / SPECint /
// production application: it implements the application's characteristic
// inner computation and is engineered to land in the paper's ILP class
// (low ≈ 0.8-1.5 IPC, medium ≈ 1.7, high ≈ 4-9 on the 16-issue machine) and
// cache profile (the IPCr vs IPCp gap). See DESIGN.md §2 for the
// substitution rationale.
//
// All kernels follow the same shape: initialize data segments, run an outer
// work loop long enough to dominate startup, then halt (the driver respawns
// finished benchmarks). `scale` multiplies the outer trip count.
#pragma once

#include <memory>
#include <string>

#include "cc/compiler.hpp"
#include "isa/config.hpp"
#include "isa/program.hpp"

namespace vexsim::wl {

struct KernelScale {
  double outer = 1.0;  // multiplies the outer loop trip count
  cc::CompilerOptions compiler;      // pass-pipeline variant
  cc::CompileStats* stats = nullptr; // optional per-kernel compile stats
};

// High ILP (paper IPCp ≈ 4.0 – 8.9).
[[nodiscard]] Program make_colorspace(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_idct(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_imgpipe(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_x264(const MachineConfig& cfg, KernelScale s);

// Medium ILP (paper IPCp ≈ 1.7).
[[nodiscard]] Program make_cjpeg(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_djpeg(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_g721encode(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_g721decode(const MachineConfig& cfg, KernelScale s);

// Low ILP (paper IPCp ≈ 0.8 – 1.5).
[[nodiscard]] Program make_mcf(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_bzip2(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_blowfish(const MachineConfig& cfg, KernelScale s);
[[nodiscard]] Program make_gsmencode(const MachineConfig& cfg, KernelScale s);

}  // namespace vexsim::wl
