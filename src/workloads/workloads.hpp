// Multiprogrammed workload mixes.
//
// A mix is a variable-length list of benchmark components, one per intended
// hardware context: the nine Figure-13(b) paper mixes are four-wide, but a
// mix may hold any count, so workloads can fill 2-, 6- or 8-context
// machines. Components are Figure-13 registry names or synthetic
// "synth:..." specs (wl_synth/spec.hpp).
//
// Mixes resolve from names: a paper mix label ("llhh"), a single component
// ("mcf", "synth:i0.8-s42"), or a '+'-joined component list
// ("mcf+synth:i0.9-s1+idct") — all CLI-expressible, which is what lets the
// sweep engine key simulation points on workload strings alone.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/compiler.hpp"
#include "isa/config.hpp"
#include "isa/program.hpp"
#include "sim/driver.hpp"

namespace vexsim::wl {

struct WorkloadSpec {
  std::string name;  // mix label: paper label or the composed component list
  std::vector<std::string> benchmarks;  // one component per context
};

// Figure 13(b): llll, lmmh, mmmm, llmm, llmh, llhh, lmhh, mmhh, hhhh.
[[nodiscard]] const std::vector<WorkloadSpec>& paper_workloads();

// Resolves a workload name (paper label, single component, or '+'-joined
// component list). Throws CheckError listing the valid mix and benchmark
// names when the name (or any component) is unknown.
[[nodiscard]] WorkloadSpec workload(const std::string& name);

// Builds the benchmark programs of a mix (memoized underneath), one per
// component in order. `compiler` selects the pass-pipeline variant
// (per-component "synth:...-cc..." fields override it); `summary`
// (optional) receives the component compile statistics summed over the
// mix.
[[nodiscard]] std::vector<std::shared_ptr<const Program>> build_workload(
    const WorkloadSpec& spec, const MachineConfig& cfg, double scale = 1.0,
    const cc::CompilerOptions& compiler = {},
    CompileSummary* summary = nullptr);

}  // namespace vexsim::wl
