// The nine multiprogrammed workload mixes of Figure 13(b).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "isa/config.hpp"
#include "isa/program.hpp"

namespace vexsim::wl {

struct WorkloadSpec {
  std::string name;  // ILP combination label, e.g. "llhh"
  std::array<std::string, 4> benchmarks;
};

// Figure 13(b): llll, lmmh, mmmm, llmm, llmh, llhh, lmhh, mmhh, hhhh.
[[nodiscard]] const std::vector<WorkloadSpec>& paper_workloads();

[[nodiscard]] const WorkloadSpec& workload(const std::string& name);

// Builds the four benchmark programs of a mix (memoized underneath).
[[nodiscard]] std::vector<std::shared_ptr<const Program>> build_workload(
    const WorkloadSpec& spec, const MachineConfig& cfg, double scale = 1.0);

}  // namespace vexsim::wl
