#include "workloads/registry.hpp"

#include <future>
#include <map>
#include <mutex>
#include <sstream>

#include "util/check.hpp"
#include "wl_synth/generate.hpp"
#include "wl_synth/spec.hpp"

namespace vexsim::wl {

const std::vector<BenchmarkInfo>& benchmark_registry() {
  static const std::vector<BenchmarkInfo> registry = {
      {"mcf", IlpClass::kLow, 0.96, 1.34, "Minimum Cost Flow", &make_mcf},
      {"bzip2", IlpClass::kLow, 0.81, 0.83, "Bzip2 Compression", &make_bzip2},
      {"blowfish", IlpClass::kLow, 1.11, 1.47, "Encryption", &make_blowfish},
      {"gsmencode", IlpClass::kLow, 1.07, 1.07, "GSM Encoder",
       &make_gsmencode},
      {"g721encode", IlpClass::kMedium, 1.75, 1.76, "G721 Encoder",
       &make_g721encode},
      {"g721decode", IlpClass::kMedium, 1.75, 1.76, "G721 Decoder",
       &make_g721decode},
      {"cjpeg", IlpClass::kMedium, 1.12, 1.66, "Jpeg Encoder", &make_cjpeg},
      {"djpeg", IlpClass::kMedium, 1.76, 1.77, "Jpeg Decoder", &make_djpeg},
      {"imgpipe", IlpClass::kHigh, 3.81, 4.05, "Imaging pipeline",
       &make_imgpipe},
      {"x264", IlpClass::kHigh, 3.89, 4.04, "H.264 encoder", &make_x264},
      {"idct", IlpClass::kHigh, 4.79, 5.27, "Inverse DCT", &make_idct},
      {"colorspace", IlpClass::kHigh, 5.47, 8.88, "Colorspace Conversion",
       &make_colorspace},
  };
  return registry;
}

std::string benchmark_names() {
  std::string names;
  for (const BenchmarkInfo& info : benchmark_registry()) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

const BenchmarkInfo& benchmark_info(const std::string& name) {
  for (const BenchmarkInfo& info : benchmark_registry())
    if (info.name == name) return info;
  VEXSIM_CHECK_MSG(false, "unknown benchmark '"
                              << name << "': valid names are ["
                              << benchmark_names()
                              << "], or a 'synth:' spec (synthetic programs "
                                 "carry no Figure-13 metadata)");
  static BenchmarkInfo dummy{};
  return dummy;
}

std::shared_ptr<const Program> make_benchmark(const std::string& name,
                                              const MachineConfig& cfg,
                                              double scale,
                                              const cc::CompilerOptions& copt,
                                              cc::CompileStats* stats) {
  // Synthetic specs canonicalize first so spelling variants of one spec
  // ("i0.8" vs "i0.80") share a cache entry (generation is spelling-blind;
  // the canonical mangling round-trips exactly, so distinct specs never
  // alias).
  const bool synth = wl_synth::is_synth_name(name);
  const wl_synth::SynthSpec spec =
      synth ? wl_synth::parse_spec(name) : wl_synth::SynthSpec{};
  const std::string canonical = synth ? spec.name() : name;
  // A synthetic spec's own "cc" field overrides the caller's options; the
  // key uses the *effective* options so the same spec compiled two ways
  // never aliases, while a pinned spec shares one entry across callers.
  const cc::CompilerOptions effective =
      synth && spec.has_compiler ? spec.compiler : copt;
  // The key must cover every config field the compiler reads: the full
  // cluster geometry, the latency model (scheduling and regalloc depend
  // on operation latencies), and the pass-pipeline options — any compiler
  // knob outside the key would silently serve programs compiled with
  // different settings.
  std::ostringstream key;
  key << canonical << "/" << cfg.clusters << ":";
  for (int c = 0; c < cfg.clusters; ++c) {
    const ClusterResourceConfig& res = cfg.cluster_at(c);
    key << (c > 0 ? "," : "") << res.issue_slots << "a" << res.alus << "m"
        << res.muls << "p" << res.mem_units << "b" << res.branch_units;
  }
  key << (cfg.branch_on_cluster0_only ? "0" : "*") << "/L" << cfg.lat.alu
      << "." << cfg.lat.mul << "." << cfg.lat.mem << "." << cfg.lat.comm
      << "." << cfg.lat.cmp_to_branch << "." << cfg.lat.taken_branch_penalty
      << "/" << scale << "/cc=" << effective.name() << ":ii"
      << effective.max_ii << ":st" << effective.max_stages
      // verify_each_pass never changes the emitted code, but it must still
      // key the memo: a --cc-verify compile served from a plain compile's
      // entry would silently skip the between-pass checks.
      << (effective.verify_each_pass ? ":v1" : "");

  struct Compiled {
    std::shared_ptr<const Program> program;
    cc::CompileStats stats;
  };
  // Parallel sweep workers share this cache. The lock only guards the map;
  // the (deterministic) compile itself runs outside it, under a per-key
  // future, so first-touch builds of *distinct* programs proceed
  // concurrently while duplicate requests share one build.
  using ProgramFuture = std::shared_future<Compiled>;
  // Intentionally leaked: a sweep attempt abandoned by --timeout keeps
  // simulating on a detached thread and may reach this cache while (or
  // after) static destructors run at process exit — these objects must
  // outlive every such thread, so they are never destroyed.
  static std::mutex& cache_mutex = *new std::mutex;
  static auto& cache = *new std::map<std::string, ProgramFuture>;
  std::promise<Compiled> promise;
  ProgramFuture future;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex);
    if (const auto it = cache.find(key.str()); it != cache.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      cache[key.str()] = future;
      owner = true;
    }
  }
  if (owner) {
    try {
      Compiled built;
      if (synth) {
        built.program = std::make_shared<Program>(
            wl_synth::generate(spec, cfg, scale, effective, &built.stats));
      } else {
        const BenchmarkInfo& info = benchmark_info(name);
        KernelScale ks;
        ks.outer = scale;
        ks.compiler = effective;
        ks.stats = &built.stats;
        built.program = std::make_shared<Program>(info.factory(cfg, ks));
      }
      promise.set_value(std::move(built));
    } catch (...) {
      // Waiters (and later lookups) observe the same deterministic failure.
      promise.set_exception(std::current_exception());
    }
  }
  const Compiled& result = future.get();
  if (stats != nullptr) *stats = result.stats;
  return result.program;
}

}  // namespace vexsim::wl
