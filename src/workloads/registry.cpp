#include "workloads/registry.hpp"

#include <map>
#include <mutex>
#include <sstream>

#include "util/check.hpp"

namespace vexsim::wl {

const std::vector<BenchmarkInfo>& benchmark_registry() {
  static const std::vector<BenchmarkInfo> registry = {
      {"mcf", IlpClass::kLow, 0.96, 1.34, "Minimum Cost Flow", &make_mcf},
      {"bzip2", IlpClass::kLow, 0.81, 0.83, "Bzip2 Compression", &make_bzip2},
      {"blowfish", IlpClass::kLow, 1.11, 1.47, "Encryption", &make_blowfish},
      {"gsmencode", IlpClass::kLow, 1.07, 1.07, "GSM Encoder",
       &make_gsmencode},
      {"g721encode", IlpClass::kMedium, 1.75, 1.76, "G721 Encoder",
       &make_g721encode},
      {"g721decode", IlpClass::kMedium, 1.75, 1.76, "G721 Decoder",
       &make_g721decode},
      {"cjpeg", IlpClass::kMedium, 1.12, 1.66, "Jpeg Encoder", &make_cjpeg},
      {"djpeg", IlpClass::kMedium, 1.76, 1.77, "Jpeg Decoder", &make_djpeg},
      {"imgpipe", IlpClass::kHigh, 3.81, 4.05, "Imaging pipeline",
       &make_imgpipe},
      {"x264", IlpClass::kHigh, 3.89, 4.04, "H.264 encoder", &make_x264},
      {"idct", IlpClass::kHigh, 4.79, 5.27, "Inverse DCT", &make_idct},
      {"colorspace", IlpClass::kHigh, 5.47, 8.88, "Colorspace Conversion",
       &make_colorspace},
  };
  return registry;
}

const BenchmarkInfo& benchmark_info(const std::string& name) {
  for (const BenchmarkInfo& info : benchmark_registry())
    if (info.name == name) return info;
  VEXSIM_CHECK_MSG(false, "unknown benchmark: " << name);
  static BenchmarkInfo dummy{};
  return dummy;
}

std::shared_ptr<const Program> make_benchmark(const std::string& name,
                                              const MachineConfig& cfg,
                                              double scale) {
  // Parallel sweep workers share this cache; compilation is deterministic,
  // so holding the lock across a (one-time per key) compile is simpler than
  // racing duplicate builds.
  static std::mutex cache_mutex;
  static std::map<std::string, std::shared_ptr<const Program>> cache;
  const std::lock_guard<std::mutex> lock(cache_mutex);
  // The key must cover every config field the compiler reads: the full
  // cluster geometry and the latency model (scheduling and regalloc depend
  // on operation latencies), not just clusters × issue width.
  std::ostringstream key;
  key << name << "/" << cfg.clusters << "x" << cfg.cluster.issue_slots << "a"
      << cfg.cluster.alus << "m" << cfg.cluster.muls << "p"
      << cfg.cluster.mem_units << "b" << cfg.cluster.branch_units
      << (cfg.branch_on_cluster0_only ? "0" : "*") << "/L" << cfg.lat.alu
      << "." << cfg.lat.mul << "." << cfg.lat.mem << "." << cfg.lat.comm
      << "." << cfg.lat.cmp_to_branch << "." << cfg.lat.taken_branch_penalty
      << "/" << scale;
  if (const auto it = cache.find(key.str()); it != cache.end())
    return it->second;
  const BenchmarkInfo& info = benchmark_info(name);
  KernelScale ks;
  ks.outer = scale;
  auto prog = std::make_shared<Program>(info.factory(cfg, ks));
  cache[key.str()] = prog;
  return prog;
}

}  // namespace vexsim::wl
