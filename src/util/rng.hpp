// Deterministic PRNG (xoshiro128++) used everywhere randomness is needed:
// workload replacement, data-segment initialization, property-test program
// generation. Seeded streams keep every experiment bit-reproducible.
#pragma once

#include <cstdint>

namespace vexsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      word = static_cast<std::uint32_t>((x ^ (x >> 31)) >> 16) | 1u;
    }
  }

  std::uint32_t next_u32() {
    const std::uint32_t result = rotl(state_[0] + state_[3], 7) + state_[0];
    const std::uint32_t t = state_[1] << 9;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 11);
    return result;
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint32_t below(std::uint32_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  // Uniform in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  bool chance(double p) {
    return next_u32() < static_cast<std::uint32_t>(p * 4294967296.0);
  }

 private:
  static std::uint32_t rotl(std::uint32_t x, int k) {
    return (x << k) | (x >> (32 - k));
  }
  std::uint32_t state_[4];
};

}  // namespace vexsim
