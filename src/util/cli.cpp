#include "util/cli.hpp"

#include <climits>
#include <cstdlib>

#include "util/check.hpp"

namespace vexsim {

Cli::Cli(int argc, const char* const* argv) {
  // A repeated option is a hard error, not last-wins: in a sweep script a
  // second `--seed`/`--budget` is almost always a typo'd flag name, and
  // silently overwriting the first value masks it for the whole sweep.
  const auto insert = [this](std::string name, std::string value) {
    const auto it = options_.find(name);
    VEXSIM_CHECK_MSG(it == options_.end(),
                     "duplicate option --" << name << " (given '" << it->second
                                           << "' and '" << value
                                           << "'); each option may appear "
                                              "only once");
    options_.emplace(std::move(name), std::move(value));
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      insert(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      insert(std::move(arg), argv[++i]);
    } else {
      insert(std::move(arg), "true");
    }
  }
}

bool Cli::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

int Cli::jobs(int def) const {
  VEXSIM_CHECK_MSG(def >= 1, "default --jobs must be positive, got " << def);
  if (!has("jobs")) return def;
  const std::string& value = options_.at("jobs");
  char* end = nullptr;
  const long long n = std::strtoll(value.c_str(), &end, 10);
  VEXSIM_CHECK_MSG(
      end != value.c_str() && *end == '\0' && n >= 1 && n <= INT_MAX,
      "--jobs expects a positive integer, got '" << value << "'");
  return static_cast<int>(n);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace vexsim
