// Minimal command-line parsing shared by bench/example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` forms.
// Repeating an option is a hard error (CheckError from the constructor):
// last-wins semantics would let a typo'd flag silently shadow a real one in
// a sweep script.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vexsim {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  // Worker-thread count from `--jobs N`. Defaults to `def` when absent;
  // throws CheckError when the value is zero, negative, or non-numeric.
  [[nodiscard]] int jobs(int def = 1) const;

  // Positional (non --option) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace vexsim
