// Fixed-capacity inline vector.
//
// Bundles and execution packets have small, hard architectural bounds
// (issue width per cluster, total issue width), so the hot simulator paths
// use this allocation-free container instead of std::vector.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>

#include "util/check.hpp"

namespace vexsim {

template <typename T, std::size_t Capacity>
class InlineVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr InlineVec() = default;
  constexpr InlineVec(std::initializer_list<T> init) {
    VEXSIM_CHECK(init.size() <= Capacity);
    for (const T& v : init) push_back(v);
  }

  constexpr void push_back(const T& v) {
    VEXSIM_CHECK_MSG(size_ < Capacity, "InlineVec capacity " << Capacity
                                                             << " exceeded");
    items_[size_++] = v;
  }

  template <typename... Args>
  constexpr T& emplace_back(Args&&... args) {
    VEXSIM_CHECK_MSG(size_ < Capacity, "InlineVec capacity " << Capacity
                                                             << " exceeded");
    items_[size_] = T{static_cast<Args&&>(args)...};
    return items_[size_++];
  }

  constexpr void pop_back() {
    VEXSIM_CHECK(size_ > 0);
    --size_;
  }

  constexpr void clear() { size_ = 0; }
  constexpr void resize(std::size_t n) {
    VEXSIM_CHECK(n <= Capacity);
    for (std::size_t i = size_; i < n; ++i) items_[i] = T{};
    size_ = n;
  }

  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() { return Capacity; }
  [[nodiscard]] constexpr bool full() const { return size_ == Capacity; }

  constexpr T& operator[](std::size_t i) {
    VEXSIM_CHECK(i < size_);
    return items_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    VEXSIM_CHECK(i < size_);
    return items_[i];
  }

  constexpr T& front() { return (*this)[0]; }
  constexpr const T& front() const { return (*this)[0]; }
  constexpr T& back() { return (*this)[size_ - 1]; }
  constexpr const T& back() const { return (*this)[size_ - 1]; }

  constexpr iterator begin() { return items_.data(); }
  constexpr iterator end() { return items_.data() + size_; }
  constexpr const_iterator begin() const { return items_.data(); }
  constexpr const_iterator end() const { return items_.data() + size_; }

  friend constexpr bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i)
      if (!(a.items_[i] == b.items_[i])) return false;
    return true;
  }

 private:
  std::array<T, Capacity> items_{};
  std::size_t size_ = 0;
};

}  // namespace vexsim
