// Lightweight invariant checking used across vexsim.
//
// VEXSIM_CHECK is active in all build types: simulator correctness depends on
// these invariants and the cost is negligible next to the cycle loop.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vexsim {

// Thrown on invariant violation so tests can assert on failures instead of
// aborting the whole process.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

#define VEXSIM_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::vexsim::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define VEXSIM_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::vexsim::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                     os_.str());                        \
    }                                                                   \
  } while (0)

// Checked narrowing conversion (C++ Core Guidelines ES.46 flavour).
template <typename To, typename From>
constexpr To narrow(From value) {
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value)
    throw CheckError("narrowing conversion lost information");
  return result;
}

}  // namespace vexsim
