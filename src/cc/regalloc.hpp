// Register allocation over a scheduled, lowered function.
//
// Two vreg classes per cluster:
//   - global vregs (loop-carried / cross-block): a stable physical register
//     for the whole function, handed out from the top of the file (r62 down;
//     r63 is reserved scratch, r0 is the hardwired zero);
//   - local vregs (single block, single def): linear scan in schedule order
//     with reuse, from r1 up. A register frees one cycle after
//     max(last use, def + latency - 1), which keeps every reuse outside the
//     producer's latency window (NUAL-safe under split-issue delays).
// Branch registers (8 per cluster) are block-local by construction and are
// allocated with the same linear scan.
#pragma once

#include <vector>

#include "cc/schedule.hpp"

namespace vexsim::cc {

struct Allocation {
  // Physical register per vreg (-1 = not a gpr / not allocated).
  std::vector<int> gpr_of;
  std::vector<int> breg_of;
  int max_gpr_pressure = 0;  // diagnostics
};

// Throws CheckError when a cluster runs out of registers (the kernel must
// be restructured or its unroll factor reduced).
[[nodiscard]] Allocation allocate(const LFunction& fn,
                                  const FunctionSchedule& sched,
                                  const MachineConfig& cfg);

}  // namespace vexsim::cc
