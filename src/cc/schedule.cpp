#include "cc/schedule.hpp"

#include <algorithm>

#include "core/resources.hpp"
#include "util/check.hpp"

namespace vexsim::cc {

namespace {

class BlockScheduler {
 public:
  BlockScheduler(const LBlock& block, const LFunction& fn,
                 const MachineConfig& cfg)
      : block_(block), fn_(fn), cfg_(cfg), ddg_(build_ddg(block, cfg.lat)) {}

  BlockSchedule run() {
    const int n = static_cast<int>(block_.body.size());
    BlockSchedule sched;
    sched.cycle_of.assign(static_cast<std::size_t>(n), -1);
    sched.chan_of.assign(static_cast<std::size_t>(n), -1);

    std::vector<int> earliest(static_cast<std::size_t>(ddg_.num_nodes), 0);
    std::vector<int> preds_left = ddg_.pred_count;
    std::vector<int> ready;  // body nodes whose preds are all scheduled
    for (int i = 0; i < n; ++i)
      if (preds_left[static_cast<std::size_t>(i)] == 0) ready.push_back(i);

    int scheduled = 0;
    int cycle = 0;
    while (scheduled < n) {
      // Highest priority first; stable by index for determinism.
      std::sort(ready.begin(), ready.end(), [&](int a, int b) {
        const int pa = ddg_.priority[static_cast<std::size_t>(a)];
        const int pb = ddg_.priority[static_cast<std::size_t>(b)];
        return pa != pb ? pa > pb : a < b;
      });
      bool placed_any = false;
      for (std::size_t r = 0; r < ready.size();) {
        const int i = ready[r];
        if (earliest[static_cast<std::size_t>(i)] > cycle ||
            !try_place(block_.body[static_cast<std::size_t>(i)], cycle,
                       &sched.chan_of[static_cast<std::size_t>(i)])) {
          ++r;
          continue;
        }
        sched.cycle_of[static_cast<std::size_t>(i)] = cycle;
        ++scheduled;
        placed_any = true;
        for (const DdgEdge& e : ddg_.succ[static_cast<std::size_t>(i)]) {
          auto& est = earliest[static_cast<std::size_t>(e.to)];
          est = std::max(est, cycle + e.latency);
          if (--preds_left[static_cast<std::size_t>(e.to)] == 0 &&
              e.to < n)
            ready.push_back(e.to);
        }
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(r));
      }
      if (!placed_any || scheduled < n) ++cycle;
      if (placed_any && scheduled == n) break;
      VEXSIM_CHECK_MSG(cycle < 1'000'000, fn_.name << ": scheduler diverged");
    }

    finish(sched);
    return sched;
  }

 private:
  // Resource tracking per cycle; grows on demand.
  [[nodiscard]] ResourceUse& use_at(int cycle, int cluster) {
    if (static_cast<std::size_t>(cycle) >= use_.size()) {
      use_.resize(static_cast<std::size_t>(cycle) + 1);
      copies_.resize(static_cast<std::size_t>(cycle) + 1, 0);
    }
    return use_[static_cast<std::size_t>(cycle)]
               [static_cast<std::size_t>(cluster)];
  }

  bool try_place(const LOp& op, int cycle, int* chan) {
    if (op.is_copy) {
      ResourceUse& snd = use_at(cycle, op.cluster);
      ResourceUse& rcv = use_at(cycle, op.copy_dst_cluster);
      const ResourceUse one = ResourceUse::one_slot();
      if (copies_[static_cast<std::size_t>(cycle)] >= kNumChannels)
        return false;
      if (!snd.fits_with(one, cfg_.cluster_at(op.cluster),
                         cfg_.branch_units_at(op.cluster)) ||
          !rcv.fits_with(one, cfg_.cluster_at(op.copy_dst_cluster),
                         cfg_.branch_units_at(op.copy_dst_cluster)))
        return false;
      snd.add(one);
      rcv.add(one);
      *chan = copies_[static_cast<std::size_t>(cycle)]++;
      return true;
    }
    Operation probe;
    probe.opc = op.opc;
    ResourceUse need;
    need.add(probe);
    ResourceUse& u = use_at(cycle, op.cluster);
    if (!u.fits_with(need, cfg_.cluster_at(op.cluster),
                     cfg_.branch_units_at(op.cluster)))
      return false;
    u.add(need);
    return true;
  }

  // Places the terminator and computes the padded block length.
  void finish(BlockSchedule& sched) {
    const int n = static_cast<int>(block_.body.size());
    int last_body = -1;
    for (int i = 0; i < n; ++i)
      last_body = std::max(last_body, sched.cycle_of[static_cast<std::size_t>(i)]);

    // Live-out padding: global defs (and copies into globals — none, copies
    // define locals) must complete before the block ends.
    int pad = -1;
    for (int i = 0; i < n; ++i) {
      const LOp& op = block_.body[static_cast<std::size_t>(i)];
      const bool defines = op.is_copy || has_dst(op.opc);
      if (!defines) continue;
      if (!fn_.info[static_cast<std::size_t>(op.dst)].global) continue;
      pad = std::max(pad, sched.cycle_of[static_cast<std::size_t>(i)] +
                              producer_latency(op, cfg_.lat) - 1);
    }

    const bool has_term_op = block_.term == Terminator::kBranch ||
                             block_.term == Terminator::kGoto ||
                             block_.term == Terminator::kHalt;
    if (has_term_op) {
      int t = std::max({last_body, pad,
                        earliest_term_cycle(sched)});
      t = std::max(t, 0);
      // The branch needs a slot + branch unit on logical cluster 0.
      Operation probe;
      probe.opc = Opcode::kGoto;
      ResourceUse need;
      need.add(probe);
      while (!use_at(t, 0).fits_with(need, cfg_.cluster_at(0),
                                     cfg_.branch_units_at(0)))
        ++t;
      use_at(t, 0).add(need);
      sched.term_cycle = t;
      sched.length = t + 1;
    } else {
      sched.term_cycle = -1;
      sched.length = std::max(last_body, pad) + 1;
      if (sched.length <= 0) sched.length = 0;
    }
  }

  [[nodiscard]] int earliest_term_cycle(const BlockSchedule& sched) const {
    // DDG terminator node carries the cmp→branch constraint.
    int est = 0;
    const int term = ddg_.terminator_node();
    for (int i = 0; i < term; ++i) {
      for (const DdgEdge& e : ddg_.succ[static_cast<std::size_t>(i)])
        if (e.to == term)
          est = std::max(
              est, sched.cycle_of[static_cast<std::size_t>(i)] + e.latency);
    }
    return est;
  }

  const LBlock& block_;
  const LFunction& fn_;
  const MachineConfig& cfg_;
  BlockDdg ddg_;
  std::vector<std::array<ResourceUse, kMaxClusters>> use_;
  std::vector<int> copies_;
};

}  // namespace

FunctionSchedule schedule(const LFunction& fn, const MachineConfig& cfg) {
  static const std::map<std::size_t, BlockSchedule> kNoPins;
  return schedule(fn, cfg, kNoPins);
}

BlockSchedule schedule_block(const LBlock& block, const LFunction& fn,
                             const MachineConfig& cfg) {
  return BlockScheduler(block, fn, cfg).run();
}

FunctionSchedule schedule(const LFunction& fn, const MachineConfig& cfg,
                          const std::map<std::size_t, BlockSchedule>& pinned) {
  FunctionSchedule out;
  out.blocks.reserve(fn.blocks.size());
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    if (const auto it = pinned.find(b); it != pinned.end()) {
      VEXSIM_CHECK_MSG(it->second.cycle_of.size() == fn.blocks[b].body.size(),
                       fn.name << ": pinned schedule for block " << b
                               << " does not match its body");
      out.blocks.push_back(it->second);
    } else {
      out.blocks.push_back(BlockScheduler(fn.blocks[b], fn, cfg).run());
    }
  }
  return out;
}

}  // namespace vexsim::cc
