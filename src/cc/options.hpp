// Compiler pass-pipeline options.
//
// A CompilerOptions value selects which variant of each optimization pass
// the standard pipeline instantiates. The default reproduces the seed
// compiler bit-for-bit (greedy cluster assignment, straight list
// scheduling), so golden statistics stay frozen; the optimizing variants
// are opt-in per experiment, per workload component ("synth:...-ccpipe1")
// or per bench invocation (--cc=cost_swp).
//
// Variant names (parse() also accepts the pipeN aliases):
//   greedy      pipe0   BUG-style greedy assigner, list scheduler (seed)
//   cost        pipe1   cost-model cluster assigner, list scheduler
//   cost_swp    pipe2   cost-model assigner + iterative modulo scheduling
//   greedy_swp  pipe3   greedy assigner + iterative modulo scheduling
#pragma once

#include <cstdint>
#include <string>

namespace vexsim::cc {

enum class AssignStrategy : std::uint8_t { kGreedy, kCostModel };

struct CompilerOptions {
  AssignStrategy assign = AssignStrategy::kGreedy;
  // Software-pipeline innermost counted loops (iterative modulo
  // scheduling); loops where no II at most `max_ii` verifies, or whose
  // kernel would need more than `max_stages` overlapped iterations, fall
  // back to the list scheduler.
  bool modulo_schedule = false;
  int max_ii = 64;
  int max_stages = 6;

  // Run the static invariant checkers (cc/verifier, cc/lint) between
  // passes, attributing any violation to the pass that introduced it
  // (--cc-verify on the benches). Purely diagnostic: it never changes the
  // emitted code, so it is excluded from name() and from sweep result-cache
  // fingerprints — golden trajectories stay byte-identical either way.
  bool verify_each_pass = false;

  // Canonical variant name ("greedy", "cost", "cost_swp", "greedy_swp").
  // Tunables (max_ii/max_stages) are not part of the name; cache keys and
  // fingerprints hash every codegen-relevant field separately.
  [[nodiscard]] std::string name() const;

  // Parses a variant name or pipeN alias. Throws CheckError listing the
  // valid names on an unknown one.
  static CompilerOptions parse(const std::string& name);

  friend bool operator==(const CompilerOptions&,
                         const CompilerOptions&) = default;
};

// Comma-separated valid variant names, for error messages and CLI help.
[[nodiscard]] std::string compiler_variant_names();

}  // namespace vexsim::cc
