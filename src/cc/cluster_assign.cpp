#include "cc/cluster_assign.hpp"

#include <algorithm>
#include <bit>
#include <array>
#include <map>

#include "cc/cluster_cost.hpp"
#include "util/check.hpp"

namespace vexsim::cc {

bool AssignView::free_on(VReg v, int cluster) const {
  if (v < 0) return true;
  if (replicated != nullptr &&
      static_cast<std::size_t>(v) < replicated->size() &&
      ((*replicated)[static_cast<std::size_t>(v)] & (1u << cluster)) != 0)
    return true;
  if (remat_recipes != nullptr && remat_recipes->count(v) != 0) return true;
  return false;
}

std::vector<int> ir_block_heights(const IrBlock& block,
                                  const LatencyConfig& lat) {
  const int n = static_cast<int>(block.body.size());
  std::vector<int> height(static_cast<std::size_t>(n), 0);
  // Last definition index per vreg, walked backwards: an op's height is the
  // max over its consumers of (consumer height + producer latency).
  std::map<VReg, std::vector<int>> readers;
  auto note_read = [&readers](VReg v, int i) {
    if (v >= 0) readers[v].push_back(i);
  };
  for (int i = n - 1; i >= 0; --i) {
    const IrOp& op = block.body[static_cast<std::size_t>(i)];
    if (has_dst(op.opc)) {
      const int my_lat = op.dst_is_breg ? lat.cmp_to_branch
                                        : lat.for_class(op_class(op.opc));
      int h = 0;
      for (int r : readers[op.dst])
        h = std::max(h, height[static_cast<std::size_t>(r)] + my_lat);
      height[static_cast<std::size_t>(i)] = h;
      readers[op.dst].clear();
    }
    if (reads_src1(op.opc)) note_read(op.src1, i);
    if (reads_src2(op.opc) && !op.src2_is_imm) note_read(op.src2, i);
    if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
      note_read(op.bsrc, i);
  }
  return height;
}

std::vector<VRegInfo> analyze_vregs(const IrFunction& fn) {
  std::vector<VRegInfo> info(static_cast<std::size_t>(fn.next_vreg));
  std::vector<int> def_block(static_cast<std::size_t>(fn.next_vreg), -1);
  std::vector<int> use_outside(static_cast<std::size_t>(fn.next_vreg), 0);

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (const IrOp& op : fn.blocks[b].body) {
      if (has_dst(op.opc)) {
        auto& vi = info[static_cast<std::size_t>(op.dst)];
        ++vi.def_count;
        vi.is_breg = op.dst_is_breg;
        if (def_block[static_cast<std::size_t>(op.dst)] == -1)
          def_block[static_cast<std::size_t>(op.dst)] = static_cast<int>(b);
        else if (def_block[static_cast<std::size_t>(op.dst)] !=
                 static_cast<int>(b))
          vi.global = true;  // defined in several blocks
      }
    }
  }
  auto mark_use = [&](VReg v, std::size_t b) {
    if (v < 0) return;
    if (def_block[static_cast<std::size_t>(v)] != static_cast<int>(b))
      info[static_cast<std::size_t>(v)].global = true;
  };
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const IrBlock& blk = fn.blocks[b];
    for (const IrOp& op : blk.body) {
      if (reads_src1(op.opc)) mark_use(op.src1, b);
      if (reads_src2(op.opc) && !op.src2_is_imm) mark_use(op.src2, b);
      if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
        mark_use(op.bsrc, b);
    }
    if (blk.term == Terminator::kBranch) mark_use(blk.cond, b);
  }
  // Multi-def in one block also makes a vreg "global" for allocation
  // purposes (it needs a stable register across its redefinitions).
  for (auto& vi : info)
    if (vi.def_count > 1) vi.global = true;

  for (std::size_t v = 0; v < info.size(); ++v) {
    VEXSIM_CHECK_MSG(!(info[v].is_breg && info[v].global),
                     fn.name << ": breg vreg " << v
                             << " escapes its block or is multiply defined; "
                                "recompute the compare per block");
  }
  return info;
}

namespace {

class Assigner {
 public:
  Assigner(const IrFunction& fn, const MachineConfig& cfg,
           const std::vector<int>* preset_homes = nullptr,
           const ClusterPolicy* policy = nullptr)
      : fn_(fn), cfg_(cfg), policy_(policy) {
    out_.name = fn.name;
    out_.next_vreg = fn.next_vreg;
    out_.info = analyze_vregs(fn);
    def_cluster_.assign(static_cast<std::size_t>(fn.next_vreg), -1);
    load_.fill(0.0);
    if (preset_homes != nullptr) {
      for (std::size_t v = 0; v < preset_homes->size(); ++v)
        if ((*preset_homes)[v] >= 0 && out_.info[v].global)
          out_.info[v].home_cluster = (*preset_homes)[v];
    }
  }

  LFunction run() {
    // Explicit hints always win for global homes.
    for (const IrBlock& blk : fn_.blocks)
      for (const IrOp& op : blk.body)
        if (has_dst(op.opc) &&
            out_.info[static_cast<std::size_t>(op.dst)].global &&
            op.cluster_hint >= 0)
          out_.info[static_cast<std::size_t>(op.dst)].home_cluster =
              op.cluster_hint % cfg_.clusters;

    for (std::size_t b = 0; b < fn_.blocks.size(); ++b) lower_block(b);
    return std::move(out_);
  }

  // Cluster where each original vreg was first read as an operand, -1 if
  // never. Used by the two-pass homing: a loop-carried value should live
  // where its consumers compute, not where its init constant happened to
  // land.
  [[nodiscard]] const std::vector<int>& first_use_cluster() const {
    return first_use_;
  }

  // Clusters that read each original vreg (bitmask), for the replication
  // pre-pass.
  [[nodiscard]] const std::vector<std::uint32_t>& use_clusters() const {
    return use_clusters_;
  }

  // Induction-variable replication: globals whose every definition is a
  // constant (movi) or a self-increment (g = g ± imm) are replicated onto
  // every cluster that reads them — each cluster maintains its own copy with
  // a cheap local ALU op instead of receiving the value through send/recv
  // every iteration. This mirrors what clustering compilers do for loop
  // counters and base pointers, and it is what keeps the static density of
  // communication instructions low enough for the paper's NS configuration
  // to matter.
  void set_replicated(std::vector<std::uint32_t> masks) {
    replicate_mask_ = std::move(masks);
    replicate_mask_.resize(static_cast<std::size_t>(fn_.next_vreg), 0);
  }

 private:
  // Per-block alias map: (vreg, cluster) → local alias vreg.
  using AliasKey = std::pair<VReg, int>;

  // Operand identities (vreg + redefinition version) a breg-writing
  // compare consumed, recorded at its definition.
  struct BregSnapshot {
    VReg src1 = kNoVReg;
    int src1_version = 0;
    VReg src2 = kNoVReg;
    int src2_version = 0;
  };

  void lower_block(std::size_t b) {
    const IrBlock& in = fn_.blocks[b];
    out_.blocks.emplace_back();
    LBlock& out = out_.blocks.back();
    out.term = in.term;
    out.branch_if_false = in.branch_if_false;
    out.target = in.target;
    aliases_.clear();
    breg_clones_.clear();
    cur_block_ = b;
    if (policy_ != nullptr && *policy_)
      heights_ = ir_block_heights(in, cfg_.lat);

    for (std::size_t op_i = 0; op_i < in.body.size(); ++op_i) {
      const IrOp& op = in.body[op_i];
      cur_index_ = op_i;
      const int cluster = choose_cluster(op);
      LOp lop;
      lop.opc = op.opc;
      lop.dst = op.dst;
      lop.dst_is_breg = op.dst_is_breg;
      lop.src2_is_imm = op.src2_is_imm;
      lop.imm = op.imm;
      lop.mem_space = op.mem_space;
      lop.cluster = cluster;
      lop.src1 = reads_src1(op.opc)
                     ? localize(op.src1, cluster, out)
                     : kNoVReg;
      lop.src2 = (reads_src2(op.opc) && !op.src2_is_imm)
                     ? localize(op.src2, cluster, out)
                     : kNoVReg;
      if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
        lop.bsrc = localize_breg(op.bsrc, cluster, out);
      if (has_dst(op.opc)) {
        record_def(op.dst, cluster);
        // Redefinition invalidates existing remote aliases of this vreg and
        // stale rematerialization recipes that read it.
        invalidate_aliases(op.dst);
        for (auto it = remat_recipe_.begin(); it != remat_recipe_.end();) {
          if (it->second.src1 == op.dst || it->second.src2 == op.dst ||
              it->first == op.dst)
            it = remat_recipe_.erase(it);
          else
            ++it;
        }
      }
      note_class(lop);
      out.body.push_back(lop);
      // Remember which operand values a breg-writing compare consumed, so
      // a later clone can prove it would read the same values.
      if (has_dst(op.opc) && lop.dst_is_breg && !lop.is_copy) {
        BregSnapshot snap;
        snap.src1 = reads_src1(lop.opc) ? lop.src1 : kNoVReg;
        snap.src1_version = snap.src1 >= 0 ? version_of(snap.src1) : 0;
        snap.src2 = lop.src2_is_imm ? kNoVReg : lop.src2;
        snap.src2_version = snap.src2 >= 0 ? version_of(snap.src2) : 0;
        breg_snapshot_[lop.dst] = snap;
      }
      // The block's branch condition must live on cluster 0. Clone the
      // compare here, adjacent to the original, while its operands still
      // hold the values the original read — a clone materialized at the
      // terminator (the old behaviour) would re-localize operands after
      // any interleaving redefinition and silently compare fresher values
      // (x264's running-minimum update branch was decided by the *new*
      // minimum).
      if (in.term == Terminator::kBranch && has_dst(op.opc) &&
          op.dst_is_breg && op.dst == in.cond && cluster != 0 &&
          breg_clones_.find({op.dst, 0}) == breg_clones_.end()) {
        (void)localize_breg(op.dst, 0, out);
      }
      // Mirror the definition onto every replica cluster.
      if (has_dst(op.opc) &&
          static_cast<std::size_t>(op.dst) < replicate_mask_.size() &&
          replicate_mask_[static_cast<std::size_t>(op.dst)] != 0) {
        emit_replica_defs(op, lop, cluster, out);
      }
      // Register rematerialization recipes: cheap single-output ALU ops
      // whose register operands are replicated globals can be cloned onto
      // any cluster instead of copied (address computations, typically).
      if (has_dst(op.opc) && !op.dst_is_breg &&
          op_class(op.opc) == OpClass::kAlu && op.opc != Opcode::kSlct &&
          op.opc != Opcode::kSlctf &&
          !out_.info[static_cast<std::size_t>(op.dst)].global) {
        auto replicated_or_absent = [this](VReg v) {
          return v < 0 ||
                 (static_cast<std::size_t>(v) < replicate_mask_.size() &&
                  replicate_mask_[static_cast<std::size_t>(v)] != 0);
        };
        const VReg s1 = reads_src1(op.opc) ? op.src1 : kNoVReg;
        const VReg s2 = (reads_src2(op.opc) && !op.src2_is_imm) ? op.src2
                                                                : kNoVReg;
        if (replicated_or_absent(s1) && replicated_or_absent(s2))
          remat_recipe_[op.dst] = op;
      }
    }

    if (in.term == Terminator::kBranch) {
      // The branch executes on logical cluster 0; its condition must live
      // there.
      out.cond = localize_breg(in.cond, 0, out);
    } else {
      out.cond = in.cond;
    }
  }

  // Chooses the execution cluster for an op: honour hints; otherwise prefer
  // operand affinity, tie-broken by class-weighted load balance (the greedy
  // core of Bottom-Up Greedy).
  int choose_cluster(const IrOp& op) {
    if (op.cluster_hint >= 0) return op.cluster_hint % cfg_.clusters;
    if (has_dst(op.opc)) {
      const auto& vi = out_.info[static_cast<std::size_t>(op.dst)];
      if (vi.global && vi.home_cluster >= 0) return vi.home_cluster;
    }
    if (policy_ != nullptr && *policy_) {
      AssignView view;
      view.cfg = &cfg_;
      view.block = cur_block_;
      view.op_index = cur_index_;
      view.height = cur_index_ < heights_.size()
                        ? heights_[cur_index_]
                        : 0;
      view.value_cluster = &def_cluster_;
      view.replicated = &replicate_mask_;
      view.remat_recipes = &remat_recipe_;
      view.slot_count = &slot_count_;
      view.alu_count = &alu_count_;
      view.mul_count = &mul_count_;
      view.mem_count = &mem_count_;
      const int chosen = (*policy_)(op, view);
      if (chosen >= 0 && chosen < cfg_.clusters) {
        if (has_dst(op.opc)) {
          auto& vi = out_.info[static_cast<std::size_t>(op.dst)];
          if (vi.global && vi.home_cluster == -1) vi.home_cluster = chosen;
        }
        return chosen;
      }
    }
    std::array<double, kMaxClusters> score{};
    auto operand_vote = [&](VReg v) {
      if (v < 0) return;
      // Values available on every cluster (replicated induction globals and
      // rematerializable address computations) exert no pull — this is what
      // lets independent unrolled lanes spread across the machine while
      // real dataflow chains stay together.
      if (static_cast<std::size_t>(v) < replicate_mask_.size() &&
          replicate_mask_[static_cast<std::size_t>(v)] != 0)
        return;
      if (remat_recipe_.count(v) != 0) return;
      const int dc = def_cluster_[static_cast<std::size_t>(v)];
      if (dc >= 0) score[static_cast<std::size_t>(dc)] += 2.0;
    };
    if (reads_src1(op.opc)) operand_vote(op.src1);
    if (reads_src2(op.opc) && !op.src2_is_imm) operand_vote(op.src2);
    if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
      operand_vote(op.bsrc);

    // Load terms are *relative imbalances* (anchored at the least-loaded
    // cluster), so they act as graded tie-breakers: absolute counts would
    // grow without bound over the function and eventually overpower operand
    // affinity, tearing dependence chains apart. The balance weight mirrors
    // the Multiflow/BUG behaviour of spreading work across all clusters
    // when ILP allows (real VEX code touches every cluster, which is what
    // creates the cluster conflicts the paper's techniques arbitrate).
    double min_load = 1e30, min_class = 1e30;
    for (int c = 0; c < cfg_.clusters; ++c) {
      min_load = std::min(min_load, load_[static_cast<std::size_t>(c)]);
      min_class = std::min(min_class, class_pressure(op, c));
    }
    int best = 0;
    double best_score = -1e30;
    for (int c = 0; c < cfg_.clusters; ++c) {
      const double s = score[static_cast<std::size_t>(c)] -
                       (load_[static_cast<std::size_t>(c)] - min_load) * 0.05 -
                       (class_pressure(op, c) - min_class) * 0.3;
      if (s > best_score + 1e-12) {
        best_score = s;
        best = c;
      }
    }
    if (has_dst(op.opc)) {
      auto& vi = out_.info[static_cast<std::size_t>(op.dst)];
      if (vi.global && vi.home_cluster == -1) vi.home_cluster = best;
    }
    return best;
  }

  [[nodiscard]] double class_pressure(const IrOp& op, int c) const {
    const auto cc = static_cast<std::size_t>(c);
    switch (op_class(op.opc)) {
      case OpClass::kMem:
        return mem_count_[cc] /
               static_cast<double>(cfg_.cluster_at(c).mem_units);
      case OpClass::kMul:
        return mul_count_[cc] / static_cast<double>(cfg_.cluster_at(c).muls);
      default:
        return 0.0;
    }
  }

  void record_def(VReg v, int cluster) {
    def_cluster_[static_cast<std::size_t>(v)] = cluster;
    load_[static_cast<std::size_t>(cluster)] += 1.0;
    ++def_version_[v];
  }

  [[nodiscard]] int version_of(VReg v) const {
    const auto it = def_version_.find(v);
    return it == def_version_.end() ? 0 : it->second;
  }

  void note_class(const LOp& lop) {
    const auto c = static_cast<std::size_t>(lop.cluster);
    if (op_class(lop.opc) == OpClass::kMem) ++mem_count_[c];
    if (op_class(lop.opc) == OpClass::kMul) ++mul_count_[c];
    if (op_class(lop.opc) == OpClass::kAlu) ++alu_count_[c];
    ++slot_count_[c];
  }

  void invalidate_aliases(VReg v) {
    for (auto it = aliases_.begin(); it != aliases_.end();) {
      if (it->first.first == v)
        it = aliases_.erase(it);
      else
        ++it;
    }
  }

  // Returns (creating on demand) the replica vreg of induction global `v`
  // on `cluster`.
  VReg replica_of(VReg v, int cluster) {
    const auto key = std::make_pair(v, cluster);
    if (const auto it = replicas_.find(key); it != replicas_.end())
      return it->second;
    const VReg r = out_.next_vreg++;
    out_.info.push_back(VRegInfo{false, /*global=*/true, cluster,
                                 out_.info[static_cast<std::size_t>(v)]
                                     .def_count});
    def_cluster_.push_back(cluster);
    replicas_[key] = r;
    return r;
  }

  // Emits per-cluster clones of an induction-global definition (movi or
  // self-increment) so every replica stays in lock-step.
  void emit_replica_defs(const IrOp& op, const LOp& home_lop, int home_cluster,
                         LBlock& out) {
    const std::uint32_t mask =
        replicate_mask_[static_cast<std::size_t>(op.dst)];
    for (int c = 0; c < cfg_.clusters; ++c) {
      if ((mask & (1u << c)) == 0 || c == home_cluster) continue;
      LOp clone = home_lop;
      clone.cluster = c;
      clone.dst = replica_of(op.dst, c);
      if (clone.opc != Opcode::kMovi) {
        // Self-increment: g_c = g_c ± imm.
        clone.src1 = replica_of(op.dst, c);
      }
      ++def_version_[clone.dst];
      note_class(clone);
      out.body.push_back(clone);
    }
  }

  // Returns a vreg holding `v` on `cluster`, inserting a copy if needed.
  VReg localize(VReg v, int cluster, LBlock& out) {
    VEXSIM_CHECK_MSG(v >= 0, fn_.name << ": use of undefined value");
    if (static_cast<std::size_t>(v) >= first_use_.size())
      first_use_.resize(static_cast<std::size_t>(v) + 1, -1);
    if (first_use_[static_cast<std::size_t>(v)] == -1)
      first_use_[static_cast<std::size_t>(v)] = cluster;
    if (static_cast<std::size_t>(v) >= use_clusters_.size())
      use_clusters_.resize(static_cast<std::size_t>(v) + 1, 0);
    use_clusters_[static_cast<std::size_t>(v)] |= 1u << cluster;
    // Replicated induction globals resolve to the local copy.
    if (static_cast<std::size_t>(v) < replicate_mask_.size() &&
        (replicate_mask_[static_cast<std::size_t>(v)] & (1u << cluster)) !=
            0) {
      const auto& vi = out_.info[static_cast<std::size_t>(v)];
      if (vi.home_cluster == cluster || def_cluster_[static_cast<std::size_t>(v)] == cluster)
        return v;  // the home copy is the original
      return replica_of(v, cluster);
    }
    int dc = def_cluster_[static_cast<std::size_t>(v)];
    if (dc == -1) {
      // Used before any def this pass has seen: a loop-carried global whose
      // def appears later. Its home cluster decides; if none is pinned yet,
      // the first use pins it (later defs are forced onto the home cluster).
      auto& vi = out_.info[static_cast<std::size_t>(v)];
      VEXSIM_CHECK_MSG(vi.global, fn_.name << ": use before def of local v"
                                           << v);
      if (vi.home_cluster < 0) vi.home_cluster = cluster;
      dc = vi.home_cluster;
      def_cluster_[static_cast<std::size_t>(v)] = dc;
    }
    if (dc == cluster) return v;
    const AliasKey key{v, cluster};
    if (const auto it = aliases_.find(key); it != aliases_.end())
      return it->second;
    // Prefer rematerialization over communication: clone the defining ALU
    // op onto the using cluster when its operands are available there.
    if (const auto rit = remat_recipe_.find(v); rit != remat_recipe_.end()) {
      const IrOp& r = rit->second;
      auto covered = [this, cluster](VReg o) {
        return o < 0 ||
               (static_cast<std::size_t>(o) < replicate_mask_.size() &&
                (replicate_mask_[static_cast<std::size_t>(o)] &
                 (1u << cluster)) != 0);
      };
      const VReg s1 = reads_src1(r.opc) ? r.src1 : kNoVReg;
      const VReg s2 =
          (reads_src2(r.opc) && !r.src2_is_imm) ? r.src2 : kNoVReg;
      if (covered(s1) && covered(s2)) {
        LOp clone;
        clone.opc = r.opc;
        clone.src2_is_imm = r.src2_is_imm;
        clone.imm = r.imm;
        clone.cluster = cluster;
        clone.dst = out_.next_vreg++;
        out_.info.push_back(VRegInfo{});
        def_cluster_.push_back(cluster);
        clone.src1 = s1 >= 0 ? localize(s1, cluster, out) : kNoVReg;
        clone.src2 = s2 >= 0 ? localize(s2, cluster, out) : kNoVReg;
        note_class(clone);
        out.body.push_back(clone);
        aliases_[key] = clone.dst;
        ++out_.cmps_cloned;
        return clone.dst;
      }
    }
    LOp copy;
    copy.opc = Opcode::kSend;  // marker; expanded to send+recv at emission
    copy.is_copy = true;
    copy.src1 = v;
    copy.dst = out_.next_vreg++;
    copy.cluster = dc;
    copy.copy_dst_cluster = cluster;
    // A copy occupies an issue slot on both end clusters.
    ++slot_count_[static_cast<std::size_t>(dc)];
    ++slot_count_[static_cast<std::size_t>(cluster)];
    out.body.push_back(copy);
    out_.info.push_back(VRegInfo{});  // alias is a plain local gpr
    def_cluster_.push_back(cluster);
    aliases_[key] = copy.dst;
    ++out_.copies_inserted;
    return copy.dst;
  }

  // Returns a breg vreg holding the predicate on `cluster`, cloning the
  // defining compare if it lives elsewhere.
  VReg localize_breg(VReg v, int cluster, LBlock& out) {
    VEXSIM_CHECK_MSG(v >= 0, fn_.name << ": use of undefined predicate");
    const int dc = def_cluster_[static_cast<std::size_t>(v)];
    VEXSIM_CHECK_MSG(dc != -1, fn_.name << ": predicate used before def");
    if (dc == cluster) return v;
    const AliasKey key{v, cluster};
    if (const auto it = breg_clones_.find(key); it != breg_clones_.end())
      return it->second;
    // Find the defining compare in the lowered block (bregs are block-local
    // by the analyze_vregs contract).
    const LOp* def = nullptr;
    for (const LOp& lop : out.body)
      if (lop.dst == v && lop.dst_is_breg) def = &lop;
    VEXSIM_CHECK_MSG(def != nullptr,
                     fn_.name << ": predicate def not found in block");
    // Re-localizing the operands here replays the compare with *current*
    // values; that is only the same predicate if nothing redefined them
    // since the original executed (branch conditions are cloned eagerly at
    // the definition for exactly this reason — see lower_block).
    if (const auto snap = breg_snapshot_.find(v);
        snap != breg_snapshot_.end()) {
      const BregSnapshot& s = snap->second;
      VEXSIM_CHECK_MSG(
          (s.src1 < 0 || version_of(s.src1) == s.src1_version) &&
              (s.src2 < 0 || version_of(s.src2) == s.src2_version),
          fn_.name << ": cannot clone predicate v" << v << " onto cluster "
                   << cluster
                   << ": an operand was redefined since the compare");
    }
    LOp clone = *def;
    // Register the clone's id and bookkeeping entries *before* localizing
    // its operands — localize() may allocate further alias vregs and the
    // info/def_cluster tables are indexed by vreg id.
    clone.dst = out_.next_vreg++;
    out_.info.push_back(VRegInfo{/*is_breg=*/true, false, cluster, 1});
    def_cluster_.push_back(cluster);
    clone.cluster = cluster;
    clone.src1 = clone.src1 >= 0 ? localize(clone.src1, cluster, out)
                                 : clone.src1;
    if (!clone.src2_is_imm && clone.src2 >= 0)
      clone.src2 = localize(clone.src2, cluster, out);
    out.body.push_back(clone);
    breg_clones_[key] = clone.dst;
    ++out_.cmps_cloned;
    return clone.dst;
  }

  const IrFunction& fn_;
  const MachineConfig& cfg_;
  const ClusterPolicy* policy_ = nullptr;
  std::size_t cur_block_ = 0;
  std::size_t cur_index_ = 0;
  std::vector<int> heights_;
  LFunction out_;
  std::vector<int> def_cluster_;
  std::vector<int> first_use_;
  std::vector<std::uint32_t> use_clusters_;
  std::vector<std::uint32_t> replicate_mask_;
  std::map<std::pair<VReg, int>, VReg> replicas_;
  std::map<VReg, IrOp> remat_recipe_;
  std::map<AliasKey, VReg> aliases_;
  std::map<AliasKey, VReg> breg_clones_;
  std::map<VReg, int> def_version_;
  std::map<VReg, BregSnapshot> breg_snapshot_;
  std::array<double, kMaxClusters> load_{};
  std::array<int, kMaxClusters> mem_count_{};
  std::array<int, kMaxClusters> mul_count_{};
  std::array<int, kMaxClusters> alu_count_{};
  std::array<int, kMaxClusters> slot_count_{};
};

}  // namespace

LFunction assign_clusters(const IrFunction& fn, const MachineConfig& cfg) {
  return assign_clusters(fn, cfg, CompilerOptions{});
}

LFunction assign_clusters(const IrFunction& fn, const MachineConfig& cfg,
                          const CompilerOptions& opt) {
  fn.validate();
  const ClusterPolicy policy = opt.assign == AssignStrategy::kCostModel
                                   ? make_cost_policy(fn, cfg)
                                   : ClusterPolicy{};
  // Two-pass Bottom-Up-Greedy flavour: the first pass discovers where each
  // loop-carried (global) value is actually consumed; the second pass homes
  // globals there, which keeps serial recurrences on one cluster instead of
  // ping-ponging through inter-cluster copies.
  Assigner discovery(fn, cfg, nullptr, &policy);
  (void)discovery.run();
  std::vector<int> homes = discovery.first_use_cluster();
  homes.resize(static_cast<std::size_t>(fn.next_vreg), -1);

  // Induction-variable replication eligibility: globals whose every def is
  // a constant load or a self-increment by an immediate, read on more than
  // one cluster.
  const std::vector<VRegInfo> info = analyze_vregs(fn);
  std::vector<bool> eligible(static_cast<std::size_t>(fn.next_vreg), false);
  for (VReg v = 0; v < fn.next_vreg; ++v)
    eligible[static_cast<std::size_t>(v)] =
        info[static_cast<std::size_t>(v)].global &&
        !info[static_cast<std::size_t>(v)].is_breg;
  for (const IrBlock& blk : fn.blocks) {
    for (const IrOp& op : blk.body) {
      if (!has_dst(op.opc)) continue;
      const bool self_inc =
          (op.opc == Opcode::kAdd || op.opc == Opcode::kSub) &&
          op.src2_is_imm && op.src1 == op.dst;
      if (op.opc != Opcode::kMovi && !self_inc)
        eligible[static_cast<std::size_t>(op.dst)] = false;
    }
  }
  std::vector<std::uint32_t> use_masks = discovery.use_clusters();
  use_masks.resize(static_cast<std::size_t>(fn.next_vreg), 0);
  std::vector<std::uint32_t> replicate(static_cast<std::size_t>(fn.next_vreg),
                                       0);
  for (VReg v = 0; v < fn.next_vreg; ++v) {
    const std::uint32_t mask = use_masks[static_cast<std::size_t>(v)];
    if (eligible[static_cast<std::size_t>(v)] &&
        std::popcount(mask) >= 2) {
      replicate[static_cast<std::size_t>(v)] = mask;
      // Home the original on one of its use clusters.
      if (homes[static_cast<std::size_t>(v)] >= 0 &&
          (mask & (1u << homes[static_cast<std::size_t>(v)])) == 0)
        homes[static_cast<std::size_t>(v)] =
            std::countr_zero(mask);
    }
  }

  Assigner final_pass(fn, cfg, &homes, &policy);
  final_pass.set_replicated(std::move(replicate));
  return final_pass.run();
}

}  // namespace vexsim::cc
