// Static lint suite over compiled programs ("vexlint").
//
// The verifier proves per-instruction legality; these checks sit on the
// dataflow framework (cc/dataflow.hpp) and prove whole-program dataflow
// invariants every transforming pass must preserve. Violations are compiler
// bugs by construction — a clean pass is part of the pipeline contract, so
// tools/vexlint gates a zero-finding report over every registry kernel and
// a synthetic grid under all compiler variants.
//
// Checks (LintFinding::check names):
//   uninit-read     an operand read no definition dominates: on some path
//                   the value is the machine's cold zero state
//                   (def-before-use, every register class incl. bregs)
//   same-cycle-waw  two operations in one instruction write the same
//                   register — one write is lost nondeterministically
//   dead-copy       an inter-cluster send/recv pair whose received value is
//                   never read before being overwritten (orphan channel)
//   stale-clone     a compare/slct clone (same opcode+immediate shape and
//                   breg on another cluster) reads an *older version* of an
//                   operand than its twin — the PR 5 miscompile class,
//                   where branch-condition clones were re-localized after
//                   interleaving redefinitions
//   kernel-clobber  inside a software-pipelined kernel, a stage's value is
//                   overwritten before any read (stage-overlap register
//                   conflict across the modulo boundary)
//   dead-code       a side-effect-free operation outside any kernel whose
//                   result is never read
//
// The dead-write checks (kernel-clobber, dead-code) exempt the cluster
// assigner's intentional redundancy: predicate-broadcast compare clones and
// per-cluster movi constant rematerialization (see lint.cpp for rationale).
//   unreachable     a non-empty instruction no path from entry reaches
//
// All checks are conservative: silence on anything that cannot be proved
// wrong, so a finding is actionable and the registry-wide zero-finding
// gate stays meaningful.
#pragma once

#include <string>
#include <vector>

#include "cc/cluster_assign.hpp"
#include "cc/dataflow.hpp"
#include "isa/config.hpp"
#include "isa/program.hpp"

namespace vexsim::cc {

struct LintFinding {
  std::string check;      // check name from the table above
  std::size_t instr = 0;  // instruction index the finding anchors to
  std::string what;       // precise diagnostic with operand/location names
};

// "program[12] stale-clone: ..." — one line per finding.
[[nodiscard]] std::string to_string(const Program& prog,
                                    const LintFinding& finding);

struct LintReport {
  std::vector<LintFinding> findings;  // sorted by instruction index
  // Per-cluster register pressure, reported alongside (not a finding).
  PressureResult pressure;
};

// Runs every check over a finalized program. The program should already be
// verifier-clean (verify_program); lint never crashes on malformed input
// but may produce follow-on findings.
[[nodiscard]] LintReport lint_program(const Program& prog,
                                      const MachineConfig& cfg);

// Convenience mirror of verify_or_throw: throws CheckError aggregating
// every finding (with instruction indices) into one message.
void lint_or_throw(const Program& prog, const MachineConfig& cfg);

// Structural lint over the lowered mid-level IR, for between-pass checking
// before a Program exists (cluster range, copy shape, operand vreg sanity,
// block targets). Findings anchor to a flat op ordinal; `what` names the
// block and op index.
[[nodiscard]] std::vector<LintFinding> lint_lfunction(const LFunction& lfn,
                                                      const MachineConfig& cfg);

}  // namespace vexsim::cc
