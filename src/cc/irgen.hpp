// Seeded random IR generator.
//
// Produces valid IR functions with loops, stores, loads, selects and
// cross-cluster traffic. Used by the property tests (compile → run under
// every multithreading technique → identical architectural state) and by
// the compiler fuzz tests.
#pragma once

#include <cstdint>

#include "cc/ir.hpp"
#include "isa/program.hpp"

namespace vexsim::cc {

struct IrGenParams {
  int blocks = 3;            // loop bodies (each becomes a counted loop)
  int ops_per_block = 24;
  int globals = 6;           // loop-carried accumulators
  int trip_count_max = 6;
  int mem_words = 64;        // size of the scratch buffer (loads/stores)
  std::uint32_t data_base = 0x2000;
  bool use_memory = true;
  bool use_selects = true;
  bool cluster_hints = false;  // occasionally pin ops to clusters
};

// Generated program = IR plus the data segment the loads expect.
struct GeneratedIr {
  IrFunction fn;
  std::vector<std::uint32_t> init_words;  // at params.data_base
  std::uint32_t data_base = 0;
};

[[nodiscard]] GeneratedIr generate_ir(std::uint64_t seed,
                                      const IrGenParams& params = {});

}  // namespace vexsim::cc
