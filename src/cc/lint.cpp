#include "cc/lint.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>
#include <tuple>

#include "util/check.hpp"

namespace vexsim::cc {

namespace {

struct Reporter {
  std::vector<LintFinding>* findings;
  void operator()(const char* check, std::size_t pc,
                  const std::string& what) const {
    findings->push_back(LintFinding{check, pc, what});
  }
};

// ---- uninit-read ----------------------------------------------------------

void check_uninit_reads(const Program& prog, const Cfg& cfg,
                        const Assigned& assigned, const Reporter& report) {
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    if (!cfg.reachable(cfg.block_of(pc))) continue;
    const LocSet& ok = assigned.assigned_in[pc];
    prog.code[pc].for_each_op([&](const Operation& op) {
      for_each_read(op, [&](int loc) {
        if (!ok.contains(loc))
          report("uninit-read", pc,
                 std::string(opcode_name(op.opc)) + " reads " +
                     loc_name(loc) +
                     " before any definition on some path from entry");
      });
    });
  }
}

// ---- same-cycle-waw -------------------------------------------------------

void check_same_cycle_waw(const Program& prog, const Reporter& report) {
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    LocSet written;
    prog.code[pc].for_each_op([&](const Operation& op) {
      for_each_write(op, [&](int loc) {
        if (written.contains(loc))
          report("same-cycle-waw", pc,
                 "two operations write " + loc_name(loc) +
                     " in the same instruction");
        written.insert(loc);
      });
    });
  }
}

// ---- dead-copy ------------------------------------------------------------

void check_dead_copies(const Program& prog, const Liveness& live,
                       const Reporter& report) {
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    prog.code[pc].for_each_op([&](const Operation& op) {
      if (op.opc != Opcode::kRecv || op.dst == 0) return;
      const int loc = gpr_loc(op.cluster, op.dst);
      if (!live.live_out[pc].contains(loc))
        report("dead-copy", pc,
               "inter-cluster copy into " + loc_name(loc) + " (channel " +
                   std::to_string(op.chan) +
                   ") is never read before being overwritten");
    });
  }
}

// ---- dead-code / kernel-clobber ------------------------------------------

// Pure operations: recomputable, no memory/channel/control effect. Loads
// stay exempt (they perturb the cache model even when the value is dead).
bool pure_op(const Operation& op) {
  const OpClass cls = op.cls();
  return (cls == OpClass::kAlu || cls == OpClass::kMul) &&
         op.opc != Opcode::kNop;
}

// Intentional redundancy the cluster assigner emits by contract, exempt from
// the dead-write checks:
//   - predicate broadcast: branch-condition compares are cloned into every
//     cluster so each cluster owns the predicate locally (no cross-cluster
//     breg traffic); a clone being unread on some cluster is the expected
//     cost of the broadcast, not a bug. Whether a clone reads the *right
//     version* of its operands is the stale-clone check's job.
//   - constant rematerialization: movi is re-emitted per cluster instead of
//     being sent over a channel; an unread remat is a slot-filler artifact.
// Anything else pure with a dead result is an orphaned computation and a
// genuine pass bug.
bool rematerialization(const Operation& op) {
  return op.opc == Opcode::kMovi || (is_compare(op.opc) && op.writes_breg());
}

void check_dead_code(const Program& prog, const Cfg& cfg, const Liveness& live,
                     const Reporter& report) {
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    if (!cfg.reachable(cfg.block_of(pc))) continue;
    const SwpRegion region =
        prog.decoded != nullptr ? prog.decoded->region_of(pc) : SwpRegion::kNone;
    // Prologue/epilogue stages legitimately compute partial-iteration
    // results that drain unused; only straight-line code and the steady-
    // state kernel are held to strict deadness.
    if (region == SwpRegion::kPrologue || region == SwpRegion::kEpilogue)
      continue;
    prog.code[pc].for_each_op([&](const Operation& op) {
      if (!pure_op(op) || rematerialization(op)) return;
      for_each_write(op, [&](int loc) {
        if (live.live_out[pc].contains(loc)) return;
        if (region == SwpRegion::kKernel)
          report("kernel-clobber", pc,
                 "kernel stage value " + loc_name(loc) + " written by " +
                     std::string(opcode_name(op.opc)) +
                     " is overwritten before any read (stage-overlap "
                     "register conflict)");
        else
          report("dead-code", pc,
                 std::string(opcode_name(op.opc)) + " result " +
                     loc_name(loc) + " is never read");
      });
    });
  }
}

// ---- unreachable ----------------------------------------------------------

void check_unreachable(const Program& prog, const Cfg& cfg,
                       const Reporter& report) {
  for (std::size_t b = 0; b < cfg.size(); ++b) {
    if (cfg.reachable(static_cast<int>(b))) continue;
    const CfgBlock& block = cfg.blocks()[b];
    for (std::uint32_t pc = block.first; pc < block.end; ++pc)
      if (!prog.code[pc].empty())
        report("unreachable", pc,
               "instruction is unreachable from entry (" +
                   std::to_string(prog.code[pc].op_count()) + " op(s))");
  }
}

// ---- stale-clone ----------------------------------------------------------

// Block-local value tracking: every register location holds a (origin
// location, version) pair, where version counts writes to the origin within
// the block. mov and send/recv pairs propagate values unchanged; any other
// write mints a fresh version of its own location. Two clone twins must
// read the *same version* whenever their operands provably share an origin;
// reading an older version is exactly the PR 5 re-localization bug. Origins
// that differ (e.g. operands localized in an earlier block) prove nothing
// and stay silent.
void check_stale_clones(const Program& prog, const Cfg& cfg,
                        const Reporter& report) {
  struct Value {
    int origin = -1;
    int version = 0;
  };

  for (std::size_t b = 0; b < cfg.size(); ++b) {
    const CfgBlock& block = cfg.blocks()[b];
    std::array<Value, kMaxLocs> val;
    for (int loc = 0; loc < kMaxLocs; ++loc) val[loc] = Value{loc, 0};
    std::array<int, kMaxLocs> writes{};

    // Clone twins keyed by the shape the cluster assigner's cloning
    // machinery preserves: destination breg index + opcode + immediate
    // shape for compares; source breg index + opcode for selects.
    struct Twin {
      std::size_t pc = 0;
      int cluster = 0;
      Value src1, src2;
      bool has_src2 = false;
    };
    std::map<std::tuple<bool, int, Opcode, bool, std::int32_t>, Twin> twins;

    auto check_operand = [&](const char* which, const Value& before,
                             const Value& now, std::size_t prev_pc,
                             std::size_t pc, const Operation& op) {
      if (before.origin != now.origin) return;  // unprovable: stay silent
      if (before.version == now.version) return;
      std::ostringstream os;
      os << "clone of instruction " << prev_pc << "'s "
         << opcode_name(op.opc) << " on cluster " << int(op.cluster)
         << " reads " << which << " version " << now.version << " of "
         << loc_name(now.origin) << " while its twin read version "
         << before.version
         << " — operand re-localized across an interleaving redefinition";
      report("stale-clone", pc, os.str());
    };

    for (std::uint32_t pc = block.first; pc < block.end; ++pc) {
      const VliwInstruction& insn = prog.code[pc];

      // Phase 1: reads observe pre-instruction state. Snapshot channel
      // payloads and run the clone consistency checks.
      std::array<Value, kNumChannels> chan_val;
      std::array<bool, kNumChannels> chan_set{};
      insn.for_each_op([&](const Operation& op) {
        if (op.opc == Opcode::kSend && !chan_set[op.chan]) {
          chan_set[op.chan] = true;
          chan_val[op.chan] = op.src1 == 0
                                  ? Value{-1, 0}
                                  : val[gpr_loc(op.cluster, op.src1)];
        }
      });
      insn.for_each_op([&](const Operation& op) {
        const bool cmp_clone = is_compare(op.opc) && op.writes_breg();
        const bool slct_clone =
            op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf;
        if (!cmp_clone && !slct_clone) return;
        const int key_breg = cmp_clone ? op.dst : op.bsrc;
        const auto key = std::make_tuple(
            cmp_clone, key_breg, op.opc, op.src2_is_imm,
            op.src2_is_imm ? op.imm : 0);
        Twin now;
        now.pc = pc;
        now.cluster = op.cluster;
        now.src1 = op.src1 == 0 ? Value{-1, 0}
                                : val[gpr_loc(op.cluster, op.src1)];
        now.has_src2 = !op.src2_is_imm;
        if (now.has_src2)
          now.src2 = op.src2 == 0 ? Value{-1, 0}
                                  : val[gpr_loc(op.cluster, op.src2)];
        const auto it = twins.find(key);
        if (it == twins.end()) {
          twins.emplace(key, now);
        } else if (it->second.cluster == op.cluster) {
          // Same cluster re-defines the predicate: a new generation —
          // later clones pair with this one, not the stale entry.
          it->second = now;
        } else {
          const Twin& prev = it->second;
          if (now.src1.origin >= 0)
            check_operand("src1", prev.src1, now.src1, prev.pc, pc, op);
          if (now.has_src2 && now.src2.origin >= 0)
            check_operand("src2", prev.src2, now.src2, prev.pc, pc, op);
        }
      });

      // Phase 2: apply writes.
      insn.for_each_op([&](const Operation& op) {
        if (op.opc == Opcode::kRecv) {
          if (op.dst == 0) return;
          const int loc = gpr_loc(op.cluster, op.dst);
          val[loc] = chan_set[op.chan] && chan_val[op.chan].origin >= 0
                         ? chan_val[op.chan]
                         : Value{loc, ++writes[loc]};
          return;
        }
        if (op.opc == Opcode::kMov && op.src1 != 0) {
          if (op.dst == 0 || op.dst_is_breg) return;
          val[gpr_loc(op.cluster, op.dst)] =
              val[gpr_loc(op.cluster, op.src1)];
          return;
        }
        for_each_write(op, [&](int loc) {
          val[loc] = Value{loc, ++writes[loc]};
        });
      });
    }
  }
}

}  // namespace

std::string to_string(const Program& prog, const LintFinding& finding) {
  return prog.name + "[" + std::to_string(finding.instr) + "] " +
         finding.check + ": " + finding.what;
}

LintReport lint_program(const Program& prog, const MachineConfig& cfg) {
  (void)cfg;  // geometry legality is the verifier's concern
  LintReport report;
  if (prog.code.empty()) return report;

  const Cfg graph = Cfg::build(prog);
  const Liveness live = solve_liveness(prog, graph);
  const Assigned assigned = solve_definitely_assigned(prog, graph);
  report.pressure = register_pressure(prog, live);

  const Reporter reporter{&report.findings};
  check_uninit_reads(prog, graph, assigned, reporter);
  check_same_cycle_waw(prog, reporter);
  check_dead_copies(prog, live, reporter);
  check_dead_code(prog, graph, live, reporter);
  check_stale_clones(prog, graph, reporter);
  check_unreachable(prog, graph, reporter);

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     return a.instr < b.instr;
                   });
  return report;
}

void lint_or_throw(const Program& prog, const MachineConfig& cfg) {
  const LintReport report = lint_program(prog, cfg);
  if (report.findings.empty()) return;
  std::ostringstream os;
  os << prog.name << ": " << report.findings.size() << " lint finding(s):";
  for (const LintFinding& f : report.findings)
    os << "\n  [" << f.instr << "] " << f.check << ": " << f.what;
  throw CheckError(os.str());
}

std::vector<LintFinding> lint_lfunction(const LFunction& lfn,
                                        const MachineConfig& cfg) {
  std::vector<LintFinding> findings;
  std::size_t ordinal = 0;
  auto report = [&](std::size_t block, std::size_t op, const std::string& what) {
    findings.push_back(LintFinding{
        "lfunction", ordinal,
        lfn.name + " b" + std::to_string(block) + "[" + std::to_string(op) +
            "]: " + what});
  };
  auto vreg_ok = [&lfn](VReg v) { return v >= 0 && v < lfn.next_vreg; };

  for (std::size_t b = 0; b < lfn.blocks.size(); ++b) {
    const LBlock& block = lfn.blocks[b];
    for (std::size_t i = 0; i < block.body.size(); ++i, ++ordinal) {
      const LOp& op = block.body[i];
      if (op.cluster < 0 || op.cluster >= cfg.clusters)
        report(b, i, "op assigned to nonexistent cluster " +
                         std::to_string(op.cluster));
      if (op.is_copy) {
        if (op.copy_dst_cluster < 0 || op.copy_dst_cluster >= cfg.clusters)
          report(b, i, "copy to nonexistent cluster " +
                           std::to_string(op.copy_dst_cluster));
        else if (op.copy_dst_cluster == op.cluster)
          report(b, i, "self-copy: source and destination cluster " +
                           std::to_string(op.cluster));
        if (!vreg_ok(op.src1) || !vreg_ok(op.dst))
          report(b, i, "copy with out-of-range vreg");
        continue;
      }
      if (has_dst(op.opc) && !vreg_ok(op.dst))
        report(b, i, "dst vreg out of range");
      if (reads_src1(op.opc) && !vreg_ok(op.src1))
        report(b, i, "src1 vreg out of range");
      if (reads_src2(op.opc) && !op.src2_is_imm && !vreg_ok(op.src2))
        report(b, i, "src2 vreg out of range");
      if (reads_bsrc(op.opc) &&
          (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf) &&
          !vreg_ok(op.bsrc))
        report(b, i, "bsrc vreg out of range");
      if (has_dst(op.opc) && vreg_ok(op.dst) &&
          op.dst < static_cast<VReg>(lfn.info.size()) &&
          lfn.info[static_cast<std::size_t>(op.dst)].is_breg !=
              op.dst_is_breg)
        report(b, i, "dst breg/gpr class disagrees with vreg info");
    }
    if (block.term == Terminator::kBranch ||
        block.term == Terminator::kGoto) {
      if (block.target < 0 ||
          static_cast<std::size_t>(block.target) >= lfn.blocks.size())
        report(b, block.body.size(),
               "terminator targets nonexistent block " +
                   std::to_string(block.target));
    }
    if (block.term == Terminator::kBranch && !vreg_ok(block.cond))
      report(b, block.body.size(), "branch condition vreg out of range");
  }
  return findings;
}

}  // namespace vexsim::cc
