// Generic forward/backward dataflow framework over finalized programs.
//
// The verifier (cc/verifier.hpp) proves per-instruction *legality* —
// resources, pairing, latency windows. This layer proves *dataflow* facts
// the transforming passes rely on but nothing used to check statically:
// which definitions reach a use, which values are live where, and how much
// register pressure each cluster carries. The lint suite (cc/lint.hpp) sits
// on top; tools/vexlint and the pipeline's --cc-verify mode drive both.
//
// The analysis domain is the architectural storage the ISA exposes: per
// cluster, kNumGprs general registers and kNumBregs branch registers, mapped
// onto one dense location index so every analysis is a small bitset
// fixpoint. GPR 0 is hardwired to zero and excluded from the domain (reads
// are always legal, writes are no-ops).
//
// The CFG is built from the instruction stream alone: block leaders at
// branch targets and fall-throughs, successor edges from br/brf/goto/halt.
// Software-pipelined kernels need no special casing — the kernel's closing
// back-branch is an ordinary conditional branch, so the kernel back-edge
// (and with it the cyclic liveness of loop-carried values) falls out of the
// same construction; Program::kernels is only consulted by kernel-specific
// lint checks.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/config.hpp"
#include "isa/program.hpp"

namespace vexsim::cc {

// ---------------------------------------------------------------------------
// Location index: (cluster, register-class, index) -> dense int.
// ---------------------------------------------------------------------------

inline constexpr int kLocsPerCluster = kNumGprs + kNumBregs;
inline constexpr int kMaxLocs = kMaxClusters * kLocsPerCluster;

[[nodiscard]] constexpr int gpr_loc(int cluster, int reg) {
  return cluster * kLocsPerCluster + reg;
}
[[nodiscard]] constexpr int breg_loc(int cluster, int reg) {
  return cluster * kLocsPerCluster + kNumGprs + reg;
}
[[nodiscard]] constexpr bool loc_is_breg(int loc) {
  return loc % kLocsPerCluster >= kNumGprs;
}
[[nodiscard]] constexpr int loc_cluster(int loc) {
  return loc / kLocsPerCluster;
}
// Register index within its class (GPR or breg number).
[[nodiscard]] constexpr int loc_reg(int loc) {
  const int r = loc % kLocsPerCluster;
  return r < kNumGprs ? r : r - kNumGprs;
}
// "c2:r5" / "c0:b1", matching the disassembler's operand spelling.
[[nodiscard]] std::string loc_name(int loc);

// Fixed-size bitset over the location domain.
class LocSet {
 public:
  void insert(int loc) { words_[word(loc)] |= bit(loc); }
  void erase(int loc) { words_[word(loc)] &= ~bit(loc); }
  [[nodiscard]] bool contains(int loc) const {
    return (words_[word(loc)] & bit(loc)) != 0;
  }
  void clear() { words_.fill(0); }
  void fill() { words_.fill(~std::uint64_t{0}); }
  [[nodiscard]] bool empty() const {
    for (const std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }
  [[nodiscard]] int count() const;

  // Set algebra; the mutating forms return true when *this changed.
  bool insert_all(const LocSet& other);
  void intersect(const LocSet& other);
  void subtract(const LocSet& other);

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        fn(static_cast<int>(w) * 64 + b);
      }
    }
  }

  friend bool operator==(const LocSet&, const LocSet&) = default;

 private:
  static constexpr std::size_t word(int loc) {
    return static_cast<std::size_t>(loc) / 64;
  }
  static constexpr std::uint64_t bit(int loc) {
    return std::uint64_t{1} << (static_cast<std::size_t>(loc) % 64);
  }
  std::array<std::uint64_t, (kMaxLocs + 63) / 64> words_{};
};

// Operand/effect walkers shared by the analyses and the lint passes. GPR 0
// is skipped on both sides (hardwired zero). `fn(int loc)`.
template <typename Fn>
void for_each_read(const Operation& op, Fn&& fn) {
  const int c = op.cluster;
  if (reads_src1(op.opc) && op.src1 != 0) fn(gpr_loc(c, op.src1));
  if (reads_src2(op.opc) && !op.src2_is_imm && op.src2 != 0)
    fn(gpr_loc(c, op.src2));
  if (reads_bsrc(op.opc)) fn(breg_loc(c, op.bsrc));
}

template <typename Fn>
void for_each_write(const Operation& op, Fn&& fn) {
  const int c = op.cluster;
  if (op.writes_breg())
    fn(breg_loc(c, op.dst));
  else if (op.writes_gpr() && op.dst != 0)
    fn(gpr_loc(c, op.dst));
}

// ---------------------------------------------------------------------------
// Control-flow graph.
// ---------------------------------------------------------------------------

struct CfgBlock {
  std::uint32_t first = 0;  // first instruction index
  std::uint32_t end = 0;    // one past the last instruction
  std::vector<int> succs;
  std::vector<int> preds;
};

class Cfg {
 public:
  // Builds the CFG of `prog`. Out-of-range branch targets (the verifier's
  // job to report) contribute no edge, so construction never crashes on a
  // malformed program.
  static Cfg build(const Program& prog);

  [[nodiscard]] const std::vector<CfgBlock>& blocks() const { return blocks_; }
  [[nodiscard]] int block_of(std::size_t pc) const {
    return block_of_[pc];
  }
  // True when the block is reachable from instruction 0.
  [[nodiscard]] bool reachable(int block) const {
    return reachable_[static_cast<std::size_t>(block)];
  }
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

 private:
  std::vector<CfgBlock> blocks_;
  std::vector<int> block_of_;       // instruction index -> block index
  std::vector<bool> reachable_;
};

// ---------------------------------------------------------------------------
// Analyses. All results are per *instruction*, indexed by pc.
// ---------------------------------------------------------------------------

// Backward may-liveness: live_in[pc] holds the locations whose current value
// may still be read on some path from pc; live_out[pc] the same at the
// instruction's exit. Same-cycle reads observe pre-instruction state (the
// ISA's NUAL semantics), so an operation's own uses appear in live_in only.
struct Liveness {
  std::vector<LocSet> live_in;
  std::vector<LocSet> live_out;
};
[[nodiscard]] Liveness solve_liveness(const Program& prog, const Cfg& cfg);

// Forward must-analysis: assigned_in[pc] holds the locations written on
// *every* path from entry to pc. Reads outside this set may observe the
// machine's zero-initialized cold state — the def-before-use lint. Blocks
// unreachable from entry stay at top (everything assigned): they get the
// dedicated unreachable-code finding instead of spurious uninit reads.
struct Assigned {
  std::vector<LocSet> assigned_in;
};
[[nodiscard]] Assigned solve_definitely_assigned(const Program& prog,
                                                 const Cfg& cfg);

// Forward may-reaching-definitions at instruction granularity: a definition
// is one instruction's write of one location (several operations writing in
// the same cycle collapse into that instruction's def of their locations).
struct ReachingDefs {
  struct Def {
    std::uint32_t instr = 0;
    std::uint16_t loc = 0;
  };
  std::vector<Def> defs;  // def id -> site, in (instr, loc) order
  // Per instruction, the ids of definitions reaching its entry, sorted.
  std::vector<std::vector<std::uint32_t>> reaching_in;

  // The definitions of `loc` reaching `pc`, as def ids.
  [[nodiscard]] std::vector<std::uint32_t> reaching(std::size_t pc,
                                                    int loc) const;
};
[[nodiscard]] ReachingDefs solve_reaching_defs(const Program& prog,
                                               const Cfg& cfg);

// Per-cluster register pressure: the maximum number of simultaneously live
// GPRs (bregs counted separately), with the instruction where the maximum
// is first reached. Derived from liveness; vexlint reports it per program
// so assigner/scheduler changes show their pressure cost.
struct PressureResult {
  std::array<int, kMaxClusters> max_gpr{};
  std::array<int, kMaxClusters> max_breg{};
  std::array<std::uint32_t, kMaxClusters> at_instr{};
};
[[nodiscard]] PressureResult register_pressure(const Program& prog,
                                               const Liveness& live);

}  // namespace vexsim::cc
