// Cluster assignment (Bottom-Up-Greedy-inspired) and inter-cluster copy
// insertion.
//
// Output is the lowered function: every op carries a cluster, and every
// cross-cluster value use goes through an explicit copy pseudo-op that the
// backend later expands into a co-scheduled send/recv pair (VEX semantics:
// both halves issue in the same VLIW instruction).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cc/ir.hpp"
#include "cc/options.hpp"
#include "isa/config.hpp"

namespace vexsim::cc {

struct VRegInfo {
  bool is_breg = false;
  bool global = false;      // multi-def or used outside its defining block
  int home_cluster = -1;    // cluster of the (first) definition
  int def_count = 0;
};

struct LOp {
  Opcode opc = Opcode::kNop;
  VReg dst = kNoVReg;
  bool dst_is_breg = false;
  VReg src1 = kNoVReg;
  VReg src2 = kNoVReg;
  bool src2_is_imm = false;
  std::int32_t imm = 0;
  VReg bsrc = kNoVReg;
  int mem_space = kMemSpaceDefault;
  int cluster = 0;              // execution cluster (send side for copies)
  bool is_copy = false;         // expands to send(cluster) + recv(dst side)
  int copy_dst_cluster = -1;

  // Cluster whose register file holds the destination value.
  [[nodiscard]] int def_cluster() const {
    return is_copy ? copy_dst_cluster : cluster;
  }
};

struct LBlock {
  std::vector<LOp> body;
  Terminator term = Terminator::kFallthrough;
  VReg cond = kNoVReg;
  bool branch_if_false = false;
  int target = -1;
};

struct LFunction {
  std::string name;
  std::vector<LBlock> blocks;
  VReg next_vreg = 0;
  std::vector<VRegInfo> info;  // indexed by vreg
  int copies_inserted = 0;
  int cmps_cloned = 0;
};

// Classifies vregs (local vs global, breg vs gpr). Throws CheckError on
// breg vregs that escape their defining block (unsupported; recompute the
// compare per block instead).
[[nodiscard]] std::vector<VRegInfo> analyze_vregs(const IrFunction& fn);

// Per-decision view handed to a ClusterPolicy. All pointers stay valid for
// the duration of the call only.
struct AssignView {
  const MachineConfig* cfg = nullptr;
  std::size_t block = 0;
  std::size_t op_index = 0;
  // Critical-path height of the op within its block (RAW chains, latency
  // weighted): how much downstream work waits on this result.
  int height = 0;
  // Cluster currently holding each vreg's value (-1 = not yet defined).
  const std::vector<int>* value_cluster = nullptr;
  // Clusters holding a replica of each vreg (induction replication) —
  // reading a replicated value is free on any cluster in its mask.
  const std::vector<std::uint32_t>* replicated = nullptr;
  // Rematerialization recipes: values clonable onto any cluster instead of
  // copied (keyed by vreg).
  const std::map<VReg, IrOp>* remat_recipes = nullptr;
  // Per-cluster tallies of work placed so far (copies count a slot on both
  // end clusters).
  const std::array<int, kMaxClusters>* slot_count = nullptr;
  const std::array<int, kMaxClusters>* alu_count = nullptr;
  const std::array<int, kMaxClusters>* mul_count = nullptr;
  const std::array<int, kMaxClusters>* mem_count = nullptr;

  // True when reading `v` costs nothing on `cluster` (replicated there or
  // rematerializable).
  [[nodiscard]] bool free_on(VReg v, int cluster) const;
};

// Chooses the execution cluster for `op`, or -1 to defer to the greedy
// heuristic. Consulted only for ops without explicit hints or an already
// pinned global home.
using ClusterPolicy = std::function<int(const IrOp& op, const AssignView&)>;

// Critical-path heights of a block's ops (RAW chains only), used by
// cost-model policies to weigh communication on long chains.
[[nodiscard]] std::vector<int> ir_block_heights(const IrBlock& block,
                                                const LatencyConfig& lat);

[[nodiscard]] LFunction assign_clusters(const IrFunction& fn,
                                        const MachineConfig& cfg);

// Policy-selecting variant: CompilerOptions::assign == kCostModel installs
// the cost-model policy (cc/cluster_cost.hpp); kGreedy reproduces the
// two-parameter overload exactly.
[[nodiscard]] LFunction assign_clusters(const IrFunction& fn,
                                        const MachineConfig& cfg,
                                        const CompilerOptions& opt);

}  // namespace vexsim::cc
