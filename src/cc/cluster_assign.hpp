// Cluster assignment (Bottom-Up-Greedy-inspired) and inter-cluster copy
// insertion.
//
// Output is the lowered function: every op carries a cluster, and every
// cross-cluster value use goes through an explicit copy pseudo-op that the
// backend later expands into a co-scheduled send/recv pair (VEX semantics:
// both halves issue in the same VLIW instruction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/ir.hpp"
#include "isa/config.hpp"

namespace vexsim::cc {

struct VRegInfo {
  bool is_breg = false;
  bool global = false;      // multi-def or used outside its defining block
  int home_cluster = -1;    // cluster of the (first) definition
  int def_count = 0;
};

struct LOp {
  Opcode opc = Opcode::kNop;
  VReg dst = kNoVReg;
  bool dst_is_breg = false;
  VReg src1 = kNoVReg;
  VReg src2 = kNoVReg;
  bool src2_is_imm = false;
  std::int32_t imm = 0;
  VReg bsrc = kNoVReg;
  int mem_space = kMemSpaceDefault;
  int cluster = 0;              // execution cluster (send side for copies)
  bool is_copy = false;         // expands to send(cluster) + recv(dst side)
  int copy_dst_cluster = -1;

  // Cluster whose register file holds the destination value.
  [[nodiscard]] int def_cluster() const {
    return is_copy ? copy_dst_cluster : cluster;
  }
};

struct LBlock {
  std::vector<LOp> body;
  Terminator term = Terminator::kFallthrough;
  VReg cond = kNoVReg;
  bool branch_if_false = false;
  int target = -1;
};

struct LFunction {
  std::string name;
  std::vector<LBlock> blocks;
  VReg next_vreg = 0;
  std::vector<VRegInfo> info;  // indexed by vreg
  int copies_inserted = 0;
  int cmps_cloned = 0;
};

// Classifies vregs (local vs global, breg vs gpr). Throws CheckError on
// breg vregs that escape their defining block (unsupported; recompute the
// compare per block instead).
[[nodiscard]] std::vector<VRegInfo> analyze_vregs(const IrFunction& fn);

[[nodiscard]] LFunction assign_clusters(const IrFunction& fn,
                                        const MachineConfig& cfg);

}  // namespace vexsim::cc
