#include "cc/compiler.hpp"

#include "cc/pipeline.hpp"
#include "util/check.hpp"

namespace vexsim::cc {

Program compile(const IrFunction& fn, const MachineConfig& cfg,
                CompileStats* stats) {
  return compile(fn, cfg, CompilerOptions{}, stats);
}

Program compile(const IrFunction& fn, const MachineConfig& cfg,
                const CompilerOptions& opt, CompileStats* stats) {
  if (opt.modulo_schedule) {
    // Software pipelining promotes every loop-defined value to a stable
    // global register; per-loop budgets keep that in bounds, but a function
    // with many pipelined loops can still exhaust a register file only at
    // allocation time. Fall back to the plain pipeline for the whole
    // function rather than failing the compile.
    try {
      return Pipeline::standard(opt).run(fn, cfg, opt, stats);
    } catch (const CheckError&) {
      CompilerOptions plain = opt;
      plain.modulo_schedule = false;
      Program prog = Pipeline::standard(plain).run(fn, cfg, plain, stats);
      if (stats != nullptr) ++stats->swp_fallbacks;
      return prog;
    }
  }
  return Pipeline::standard(opt).run(fn, cfg, opt, stats);
}

}  // namespace vexsim::cc
