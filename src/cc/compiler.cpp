#include "cc/compiler.hpp"

#include <vector>

#include "cc/cluster_assign.hpp"
#include "cc/regalloc.hpp"
#include "cc/schedule.hpp"
#include "util/check.hpp"

namespace vexsim::cc {

namespace {

Operation lower_op(const LOp& op, const Allocation& alloc) {
  Operation out;
  out.opc = op.opc;
  out.cluster = static_cast<std::uint8_t>(op.cluster);
  out.imm = op.imm;
  out.src2_is_imm = op.src2_is_imm;
  auto gpr = [&alloc](VReg v) {
    const int r = alloc.gpr_of[static_cast<std::size_t>(v)];
    VEXSIM_CHECK_MSG(r >= 0, "unallocated gpr vreg " << v);
    return static_cast<std::uint8_t>(r);
  };
  auto breg = [&alloc](VReg v) {
    const int r = alloc.breg_of[static_cast<std::size_t>(v)];
    VEXSIM_CHECK_MSG(r >= 0, "unallocated breg vreg " << v);
    return static_cast<std::uint8_t>(r);
  };
  if (has_dst(op.opc)) {
    if (op.dst_is_breg) {
      out.dst = breg(op.dst);
      out.dst_is_breg = true;
    } else {
      out.dst = gpr(op.dst);
    }
  }
  if (reads_src1(op.opc)) out.src1 = gpr(op.src1);
  if (reads_src2(op.opc) && !op.src2_is_imm) out.src2 = gpr(op.src2);
  if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
    out.bsrc = breg(op.bsrc);
  return out;
}

}  // namespace

Program compile(const IrFunction& fn, const MachineConfig& cfg,
                CompileStats* stats) {
  const LFunction lfn = assign_clusters(fn, cfg);
  const FunctionSchedule fsched = schedule(lfn, cfg);
  const Allocation alloc = allocate(lfn, fsched, cfg);

  Program prog;
  prog.name = fn.name;

  // Block start indices for branch patching.
  std::vector<std::uint32_t> block_start(lfn.blocks.size(), 0);
  std::uint32_t index = 0;
  for (std::size_t b = 0; b < lfn.blocks.size(); ++b) {
    block_start[b] = index;
    index += static_cast<std::uint32_t>(fsched.blocks[b].length);
  }

  struct Patch {
    std::size_t instr;
    int cluster;
    std::size_t op_index;
    int target_block;
  };
  std::vector<Patch> patches;

  for (std::size_t b = 0; b < lfn.blocks.size(); ++b) {
    const LBlock& block = lfn.blocks[b];
    const BlockSchedule& bs = fsched.blocks[b];
    std::vector<VliwInstruction> insns(
        static_cast<std::size_t>(bs.length));

    for (std::size_t i = 0; i < block.body.size(); ++i) {
      const LOp& op = block.body[i];
      const auto cycle = static_cast<std::size_t>(bs.cycle_of[i]);
      if (op.is_copy) {
        const int chan = bs.chan_of[i];
        VEXSIM_CHECK(chan >= 0 && chan < kNumChannels);
        insns[cycle].add(ops::send(
            op.cluster, alloc.gpr_of[static_cast<std::size_t>(op.src1)],
            chan));
        insns[cycle].add(ops::recv(
            op.copy_dst_cluster,
            alloc.gpr_of[static_cast<std::size_t>(op.dst)], chan));
      } else {
        insns[cycle].add(lower_op(op, alloc));
      }
    }

    if (bs.term_cycle >= 0) {
      const auto tc = static_cast<std::size_t>(bs.term_cycle);
      switch (block.term) {
        case Terminator::kBranch: {
          const int breg =
              alloc.breg_of[static_cast<std::size_t>(block.cond)];
          VEXSIM_CHECK(breg >= 0);
          Operation br = block.branch_if_false ? ops::brf(0, breg, 0)
                                               : ops::br(0, breg, 0);
          insns[tc].add(br);
          patches.push_back(Patch{prog.code.size() + tc, 0,
                                  insns[tc].bundle(0).size() - 1,
                                  block.target});
          break;
        }
        case Terminator::kGoto: {
          insns[tc].add(ops::jump(0, 0));
          patches.push_back(Patch{prog.code.size() + tc, 0,
                                  insns[tc].bundle(0).size() - 1,
                                  block.target});
          break;
        }
        case Terminator::kHalt:
          insns[tc].add(ops::halt(0));
          break;
        case Terminator::kFallthrough:
          break;
      }
    }

    prog.labels[static_cast<std::uint32_t>(prog.code.size())] =
        fn.name + "_b" + std::to_string(b);
    for (VliwInstruction& insn : insns) prog.code.push_back(insn);
  }

  for (const Patch& p : patches) {
    Bundle& bundle = prog.code[p.instr].bundles[static_cast<std::size_t>(p.cluster)];
    bundle[p.op_index].imm =
        static_cast<std::int32_t>(block_start[static_cast<std::size_t>(p.target_block)]);
  }

  prog.finalize();
  prog.validate(cfg.clusters);

  if (stats != nullptr) {
    stats->instructions = static_cast<int>(prog.code.size());
    stats->copies_inserted = lfn.copies_inserted;
    stats->cmps_cloned = lfn.cmps_cloned;
    stats->max_gpr_pressure = alloc.max_gpr_pressure;
    stats->operations = 0;
    stats->empty_instructions = 0;
    for (const VliwInstruction& insn : prog.code) {
      stats->operations += insn.op_count();
      if (insn.empty()) ++stats->empty_instructions;
    }
  }
  return prog;
}

}  // namespace vexsim::cc
