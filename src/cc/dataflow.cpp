#include "cc/dataflow.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace vexsim::cc {

std::string loc_name(int loc) {
  return "c" + std::to_string(loc_cluster(loc)) +
         (loc_is_breg(loc) ? ":b" : ":r") + std::to_string(loc_reg(loc));
}

int LocSet::count() const {
  int n = 0;
  for (const std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool LocSet::insert_all(const LocSet& other) {
  bool changed = false;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t merged = words_[w] | other.words_[w];
    changed |= merged != words_[w];
    words_[w] = merged;
  }
  return changed;
}

void LocSet::intersect(const LocSet& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void LocSet::subtract(const LocSet& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
}

namespace {

// The single control-flow operation of an instruction, if any (the verifier
// rejects instructions with more than one; this takes the first).
const Operation* control_op(const VliwInstruction& insn) {
  for (const Bundle& b : insn.bundles)
    for (const Operation& op : b)
      if (is_branch(op.opc)) return &op;
  return nullptr;
}

bool target_in_range(const Program& prog, std::int32_t target) {
  return target >= 0 && static_cast<std::size_t>(target) < prog.code.size();
}

}  // namespace

Cfg Cfg::build(const Program& prog) {
  Cfg cfg;
  const std::size_t n = prog.code.size();
  cfg.block_of_.assign(n, 0);
  if (n == 0) return cfg;

  // Leaders: entry, every in-range branch target, and every instruction
  // following a control-flow operation.
  std::set<std::uint32_t> leaders;
  leaders.insert(0);
  for (std::size_t i = 0; i < n; ++i) {
    const Operation* ctl = control_op(prog.code[i]);
    if (ctl == nullptr) continue;
    if (i + 1 < n) leaders.insert(static_cast<std::uint32_t>(i + 1));
    if (ctl->opc != Opcode::kHalt && target_in_range(prog, ctl->imm))
      leaders.insert(static_cast<std::uint32_t>(ctl->imm));
  }

  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    CfgBlock block;
    block.first = *it;
    block.end = std::next(it) != leaders.end()
                    ? *std::next(it)
                    : static_cast<std::uint32_t>(n);
    const int id = static_cast<int>(cfg.blocks_.size());
    for (std::uint32_t pc = block.first; pc < block.end; ++pc)
      cfg.block_of_[pc] = id;
    cfg.blocks_.push_back(std::move(block));
  }

  auto add_edge = [&cfg](int from, int to) {
    CfgBlock& f = cfg.blocks_[static_cast<std::size_t>(from)];
    if (std::find(f.succs.begin(), f.succs.end(), to) != f.succs.end())
      return;
    f.succs.push_back(to);
    cfg.blocks_[static_cast<std::size_t>(to)].preds.push_back(from);
  };
  for (std::size_t b = 0; b < cfg.blocks_.size(); ++b) {
    const CfgBlock& block = cfg.blocks_[b];
    const Operation* ctl = control_op(prog.code[block.end - 1]);
    const bool has_next = block.end < n;
    if (ctl == nullptr) {
      if (has_next) add_edge(static_cast<int>(b), cfg.block_of_[block.end]);
      continue;
    }
    switch (ctl->opc) {
      case Opcode::kHalt:
        break;
      case Opcode::kGoto:
        if (target_in_range(prog, ctl->imm))
          add_edge(static_cast<int>(b),
                   cfg.block_of_[static_cast<std::size_t>(ctl->imm)]);
        break;
      default:  // br / brf: taken target plus fall-through
        if (target_in_range(prog, ctl->imm))
          add_edge(static_cast<int>(b),
                   cfg.block_of_[static_cast<std::size_t>(ctl->imm)]);
        if (has_next) add_edge(static_cast<int>(b), cfg.block_of_[block.end]);
        break;
    }
  }

  // Reachability from the entry block.
  cfg.reachable_.assign(cfg.blocks_.size(), false);
  std::vector<int> stack{0};
  cfg.reachable_[0] = true;
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    for (const int s : cfg.blocks_[static_cast<std::size_t>(b)].succs) {
      if (cfg.reachable_[static_cast<std::size_t>(s)]) continue;
      cfg.reachable_[static_cast<std::size_t>(s)] = true;
      stack.push_back(s);
    }
  }
  return cfg;
}

Liveness solve_liveness(const Program& prog, const Cfg& cfg) {
  const std::size_t n = prog.code.size();
  Liveness out;
  out.live_in.assign(n, LocSet{});
  out.live_out.assign(n, LocSet{});
  if (n == 0) return out;

  // Block summaries: use = read before any write in the block,
  // def = written anywhere in the block.
  const std::size_t nb = cfg.size();
  std::vector<LocSet> use(nb), def(nb), block_in(nb), block_out(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    const CfgBlock& block = cfg.blocks()[b];
    for (std::uint32_t pc = block.first; pc < block.end; ++pc) {
      prog.code[pc].for_each_op([&](const Operation& op) {
        for_each_read(op, [&](int loc) {
          if (!def[b].contains(loc)) use[b].insert(loc);
        });
      });
      prog.code[pc].for_each_op([&](const Operation& op) {
        for_each_write(op, [&](int loc) { def[b].insert(loc); });
      });
    }
  }

  // Backward fixpoint on block boundaries.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = nb; b-- > 0;) {
      LocSet live_out_b;
      for (const int s : cfg.blocks()[b].succs)
        live_out_b.insert_all(block_in[static_cast<std::size_t>(s)]);
      LocSet live_in_b = live_out_b;
      live_in_b.subtract(def[b]);
      live_in_b.insert_all(use[b]);
      block_out[b] = live_out_b;
      if (live_in_b != block_in[b]) {
        block_in[b] = live_in_b;
        changed = true;
      }
    }
  }

  // Materialize per-instruction sets with one backward pass per block.
  for (std::size_t b = 0; b < nb; ++b) {
    const CfgBlock& block = cfg.blocks()[b];
    LocSet live = block_out[b];
    for (std::uint32_t pc = block.end; pc-- > block.first;) {
      out.live_out[pc] = live;
      prog.code[pc].for_each_op([&](const Operation& op) {
        for_each_write(op, [&](int loc) { live.erase(loc); });
      });
      prog.code[pc].for_each_op([&](const Operation& op) {
        for_each_read(op, [&](int loc) { live.insert(loc); });
      });
      out.live_in[pc] = live;
    }
  }
  return out;
}

Assigned solve_definitely_assigned(const Program& prog, const Cfg& cfg) {
  const std::size_t n = prog.code.size();
  Assigned out;
  out.assigned_in.assign(n, LocSet{});
  if (n == 0) return out;

  const std::size_t nb = cfg.size();
  std::vector<LocSet> def(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    const CfgBlock& block = cfg.blocks()[b];
    for (std::uint32_t pc = block.first; pc < block.end; ++pc)
      prog.code[pc].for_each_op([&](const Operation& op) {
        for_each_write(op, [&](int loc) { def[b].insert(loc); });
      });
  }

  // Forward must-fixpoint: meet is intersection, top is the full set (so
  // unreachable blocks and not-yet-visited joins never veto). The entry
  // block starts from the empty set — cold machine state.
  std::vector<LocSet> block_in(nb), block_out(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    block_in[b].fill();
    block_out[b].fill();
  }
  block_in[0].clear();
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < nb; ++b) {
      LocSet in;
      if (b == 0) {
        // Entry keeps its cold-state in-set even with back-edges into it.
        in.clear();
      } else {
        in.fill();
        for (const int p : cfg.blocks()[b].preds)
          in.intersect(block_out[static_cast<std::size_t>(p)]);
        if (cfg.blocks()[b].preds.empty()) in.fill();  // unreachable: top
      }
      LocSet outset = in;
      outset.insert_all(def[b]);
      if (in != block_in[b] || outset != block_out[b]) {
        block_in[b] = in;
        block_out[b] = outset;
        changed = true;
      }
    }
  }

  for (std::size_t b = 0; b < nb; ++b) {
    const CfgBlock& block = cfg.blocks()[b];
    LocSet assigned = block_in[b];
    for (std::uint32_t pc = block.first; pc < block.end; ++pc) {
      out.assigned_in[pc] = assigned;
      prog.code[pc].for_each_op([&](const Operation& op) {
        for_each_write(op, [&](int loc) { assigned.insert(loc); });
      });
    }
  }
  return out;
}

namespace {

// Dynamically-sized bitset over definition ids.
class DefSet {
 public:
  explicit DefSet(std::size_t bits) : words_((bits + 63) / 64, 0) {}
  void insert(std::size_t d) { words_[d / 64] |= std::uint64_t{1} << (d % 64); }
  void erase(std::size_t d) { words_[d / 64] &= ~(std::uint64_t{1} << (d % 64)); }
  bool insert_all(const DefSet& other) {
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t merged = words_[w] | other.words_[w];
      changed |= merged != words_[w];
      words_[w] = merged;
    }
    return changed;
  }
  void subtract(const DefSet& other) {
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] &= ~other.words_[w];
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        fn(w * 64 + static_cast<std::size_t>(b));
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace

std::vector<std::uint32_t> ReachingDefs::reaching(std::size_t pc,
                                                  int loc) const {
  std::vector<std::uint32_t> ids;
  for (const std::uint32_t d : reaching_in[pc])
    if (defs[d].loc == static_cast<std::uint16_t>(loc)) ids.push_back(d);
  return ids;
}

ReachingDefs solve_reaching_defs(const Program& prog, const Cfg& cfg) {
  ReachingDefs out;
  const std::size_t n = prog.code.size();
  out.reaching_in.assign(n, {});
  if (n == 0) return out;

  // Enumerate definitions: one per (instruction, written location).
  std::vector<std::vector<std::uint32_t>> defs_at(n);  // pc -> def ids
  std::vector<std::vector<std::uint32_t>> defs_of_loc(kMaxLocs);
  for (std::size_t pc = 0; pc < n; ++pc) {
    LocSet written;
    prog.code[pc].for_each_op([&](const Operation& op) {
      for_each_write(op, [&](int loc) { written.insert(loc); });
    });
    written.for_each([&](int loc) {
      const auto id = static_cast<std::uint32_t>(out.defs.size());
      out.defs.push_back(
          {static_cast<std::uint32_t>(pc), static_cast<std::uint16_t>(loc)});
      defs_at[pc].push_back(id);
      defs_of_loc[static_cast<std::size_t>(loc)].push_back(id);
    });
  }
  const std::size_t nd = out.defs.size();

  const std::size_t nb = cfg.size();
  std::vector<DefSet> gen(nb, DefSet(nd)), kill(nb, DefSet(nd));
  for (std::size_t b = 0; b < nb; ++b) {
    const CfgBlock& block = cfg.blocks()[b];
    for (std::uint32_t pc = block.first; pc < block.end; ++pc) {
      for (const std::uint32_t d : defs_at[pc]) {
        // A later write in the same block supersedes earlier gens.
        for (const std::uint32_t other :
             defs_of_loc[out.defs[d].loc]) {
          kill[b].insert(other);
          gen[b].erase(other);
        }
        gen[b].insert(d);
      }
    }
  }

  std::vector<DefSet> block_in(nb, DefSet(nd)), block_out(nb, DefSet(nd));
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < nb; ++b) {
      DefSet in(nd);
      for (const int p : cfg.blocks()[b].preds)
        in.insert_all(block_out[static_cast<std::size_t>(p)]);
      DefSet outset = in;
      outset.subtract(kill[b]);
      outset.insert_all(gen[b]);
      if (block_out[b].insert_all(outset)) changed = true;
      block_in[b].insert_all(in);
    }
  }

  for (std::size_t b = 0; b < nb; ++b) {
    const CfgBlock& block = cfg.blocks()[b];
    DefSet reach = block_in[b];
    for (std::uint32_t pc = block.first; pc < block.end; ++pc) {
      std::vector<std::uint32_t>& ids = out.reaching_in[pc];
      reach.for_each([&ids](std::size_t d) {
        ids.push_back(static_cast<std::uint32_t>(d));
      });
      std::sort(ids.begin(), ids.end());
      for (const std::uint32_t d : defs_at[pc]) {
        for (const std::uint32_t other : defs_of_loc[out.defs[d].loc])
          reach.erase(other);
        reach.insert(d);
      }
    }
  }
  return out;
}

PressureResult register_pressure(const Program& prog, const Liveness& live) {
  PressureResult out;
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    std::array<int, kMaxClusters> gprs{};
    std::array<int, kMaxClusters> bregs{};
    live.live_in[pc].for_each([&](int loc) {
      auto& counts = loc_is_breg(loc) ? bregs : gprs;
      ++counts[static_cast<std::size_t>(loc_cluster(loc))];
    });
    for (std::size_t c = 0; c < kMaxClusters; ++c) {
      if (gprs[c] > out.max_gpr[c]) {
        out.max_gpr[c] = gprs[c];
        out.at_instr[c] = static_cast<std::uint32_t>(pc);
      }
      out.max_breg[c] = std::max(out.max_breg[c], bregs[c]);
    }
  }
  return out;
}

}  // namespace vexsim::cc
