// Iterative modulo scheduling (software pipelining) of counted self-loops.
//
// Recognizes lowered blocks of the canonical counted-loop shape the Builder
// kernels and the synthetic generator produce — a single-block do-while
// whose back-branch tests a self-incremented global counter against an
// immediate — and rewrites each into
//
//   guard      trip-count check: short trips take the original loop
//   original   the unmodified list-scheduled loop (remainder path)
//   goto       skips the pipelined code on the remainder path
//   prologue   (stages-1) * II instructions filling the pipeline
//   kernel     II instructions running `stages` iterations overlapped,
//              back-branch rewritten to exit stages-1 iterations early
//   epilogue   (stages-1) * II instructions draining in-flight iterations
//
// The II search is bounded below by the resource MII (per-cluster slots,
// FU classes, copy channels, the reserved back-branch) and above by the
// loop's list-schedule length and CompilerOptions::max_ii; recurrences are
// handled by the scheduler itself (an II that cannot satisfy the
// distance-annotated dependence edges fails and the search moves on). A
// loop with no verifying II, or one that would exceed the register or
// stage budgets, simply stays on the list-scheduler path.
//
// Register correctness without rotating registers or modulo variable
// expansion: every GPR defined in the loop is promoted to a stable global
// register, and the dependence edges constrain each value's reads to the
// window between its write landing and the next iteration's redefinition
// (the simulator's NUAL latency-window checker enforces exactly this
// dynamically). Branch registers are block-local by ISA contract, so breg
// def/use groups are constrained to one stage and renamed per emitted
// instance.
#pragma once

#include <map>
#include <vector>

#include "cc/options.hpp"
#include "cc/schedule.hpp"

namespace vexsim::cc {

// One software-pipelined loop, as block indices into the rewritten
// function.
struct SwpLoop {
  std::size_t guard_block = 0;
  std::size_t orig_block = 0;
  std::size_t prologue_block = 0;
  std::size_t kernel_block = 0;
  std::size_t epilogue_block = 0;
  int ii = 0;
  int stages = 0;
};

struct ModuloResult {
  // Precomputed schedules for the prologue/kernel/epilogue blocks; the
  // list scheduler adopts these verbatim.
  std::map<std::size_t, BlockSchedule> pinned;
  std::vector<SwpLoop> loops;
  int candidates = 0;  // counted self-loops examined
  int fallbacks = 0;   // candidates left on the list-scheduler path
};

// Rewrites `fn` in place. Deterministic; never throws on an unsuitable
// loop (it falls back instead).
[[nodiscard]] ModuloResult modulo_schedule_loops(LFunction& fn,
                                                 const MachineConfig& cfg,
                                                 const CompilerOptions& opt);

}  // namespace vexsim::cc
