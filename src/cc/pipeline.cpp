#include "cc/pipeline.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "cc/lint.hpp"
#include "cc/verifier.hpp"
#include "util/check.hpp"

namespace vexsim::cc {

namespace {

Operation lower_op(const LOp& op, const Allocation& alloc,
                   const std::string& fn_name) {
  Operation out;
  out.opc = op.opc;
  out.cluster = static_cast<std::uint8_t>(op.cluster);
  out.imm = op.imm;
  out.src2_is_imm = op.src2_is_imm;
  auto gpr = [&alloc, &fn_name](VReg v) {
    const int r = alloc.gpr_of[static_cast<std::size_t>(v)];
    VEXSIM_CHECK_MSG(r >= 0, fn_name << ": unallocated gpr vreg " << v);
    return static_cast<std::uint8_t>(r);
  };
  auto breg = [&alloc, &fn_name](VReg v) {
    const int r = alloc.breg_of[static_cast<std::size_t>(v)];
    VEXSIM_CHECK_MSG(r >= 0, fn_name << ": unallocated breg vreg " << v);
    return static_cast<std::uint8_t>(r);
  };
  if (has_dst(op.opc)) {
    if (op.dst_is_breg) {
      out.dst = breg(op.dst);
      out.dst_is_breg = true;
    } else {
      out.dst = gpr(op.dst);
    }
  }
  if (reads_src1(op.opc)) out.src1 = gpr(op.src1);
  if (reads_src2(op.opc) && !op.src2_is_imm) out.src2 = gpr(op.src2);
  if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
    out.bsrc = breg(op.bsrc);
  return out;
}

class IrVerifyPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "ir-verify"; }
  void run(PassContext& ctx) const override { ctx.fn.validate(); }
};

class ClusterAssignPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "cluster-assign";
  }
  void run(PassContext& ctx) const override {
    ctx.lfn = assign_clusters(ctx.fn, ctx.cfg, ctx.opt);
    ctx.stats.copies_inserted = ctx.lfn.copies_inserted;
    ctx.stats.cmps_cloned = ctx.lfn.cmps_cloned;
  }
};

class ModuloSchedPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "modulo-sched";
  }
  void run(PassContext& ctx) const override {
    ctx.swp = modulo_schedule_loops(ctx.lfn, ctx.cfg, ctx.opt);
    ctx.stats.swp_candidates = ctx.swp.candidates;
    ctx.stats.swp_loops = static_cast<int>(ctx.swp.loops.size());
    ctx.stats.swp_fallbacks = ctx.swp.fallbacks;
    // Guard blocks may add inter-cluster copies.
    ctx.stats.copies_inserted = ctx.lfn.copies_inserted;
  }
};

class ListSchedPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "list-sched"; }
  void run(PassContext& ctx) const override {
    ctx.sched = schedule(ctx.lfn, ctx.cfg, ctx.swp.pinned);
  }
};

class RegAllocPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "regalloc"; }
  void run(PassContext& ctx) const override {
    ctx.alloc = allocate(ctx.lfn, ctx.sched, ctx.cfg);
    ctx.stats.max_gpr_pressure = ctx.alloc.max_gpr_pressure;
  }
};

class EmitPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "emit"; }

  void run(PassContext& ctx) const override {
    const LFunction& lfn = ctx.lfn;
    const FunctionSchedule& fsched = ctx.sched;
    const Allocation& alloc = ctx.alloc;

    Program prog;
    prog.name = lfn.name;

    // Block start indices for branch patching.
    std::vector<std::uint32_t> block_start(lfn.blocks.size(), 0);
    std::uint32_t index = 0;
    for (std::size_t b = 0; b < lfn.blocks.size(); ++b) {
      block_start[b] = index;
      index += static_cast<std::uint32_t>(fsched.blocks[b].length);
    }

    struct Patch {
      std::size_t instr;
      int cluster;
      std::size_t op_index;
      int target_block;
    };
    std::vector<Patch> patches;

    for (std::size_t b = 0; b < lfn.blocks.size(); ++b) {
      const LBlock& block = lfn.blocks[b];
      const BlockSchedule& bs = fsched.blocks[b];
      std::vector<VliwInstruction> insns(static_cast<std::size_t>(bs.length));

      for (std::size_t i = 0; i < block.body.size(); ++i) {
        const LOp& op = block.body[i];
        const auto cycle = static_cast<std::size_t>(bs.cycle_of[i]);
        if (op.is_copy) {
          const int chan = bs.chan_of[i];
          VEXSIM_CHECK(chan >= 0 && chan < kNumChannels);
          insns[cycle].add(ops::send(
              op.cluster, alloc.gpr_of[static_cast<std::size_t>(op.src1)],
              chan));
          insns[cycle].add(ops::recv(
              op.copy_dst_cluster,
              alloc.gpr_of[static_cast<std::size_t>(op.dst)], chan));
        } else {
          insns[cycle].add(lower_op(op, alloc, lfn.name));
        }
      }

      if (bs.term_cycle >= 0) {
        const auto tc = static_cast<std::size_t>(bs.term_cycle);
        switch (block.term) {
          case Terminator::kBranch: {
            const int breg =
                alloc.breg_of[static_cast<std::size_t>(block.cond)];
            VEXSIM_CHECK(breg >= 0);
            Operation br = block.branch_if_false ? ops::brf(0, breg, 0)
                                                 : ops::br(0, breg, 0);
            insns[tc].add(br);
            patches.push_back(Patch{prog.code.size() + tc, 0,
                                    insns[tc].bundle(0).size() - 1,
                                    block.target});
            break;
          }
          case Terminator::kGoto: {
            insns[tc].add(ops::jump(0, 0));
            patches.push_back(Patch{prog.code.size() + tc, 0,
                                    insns[tc].bundle(0).size() - 1,
                                    block.target});
            break;
          }
          case Terminator::kHalt:
            insns[tc].add(ops::halt(0));
            break;
          case Terminator::kFallthrough:
            break;
        }
      }

      prog.labels[static_cast<std::uint32_t>(prog.code.size())] =
          lfn.name + "_b" + std::to_string(b);
      for (VliwInstruction& insn : insns) prog.code.push_back(insn);
    }

    for (const Patch& p : patches) {
      Bundle& bundle =
          prog.code[p.instr].bundles[static_cast<std::size_t>(p.cluster)];
      bundle[p.op_index].imm = static_cast<std::int32_t>(
          block_start[static_cast<std::size_t>(p.target_block)]);
    }

    // Software-pipeline metadata: instruction spans of each
    // prologue/kernel/epilogue region, for the verifier and the decode
    // cache.
    for (const SwpLoop& loop : ctx.swp.loops) {
      SoftwarePipelinedLoop info;
      info.prologue_start = block_start[loop.prologue_block];
      info.kernel_start = block_start[loop.kernel_block];
      info.epilogue_end =
          block_start[loop.epilogue_block] +
          static_cast<std::uint32_t>(
              fsched.blocks[loop.epilogue_block].length);
      info.ii = static_cast<std::uint16_t>(loop.ii);
      info.stages = static_cast<std::uint16_t>(loop.stages);
      prog.kernels.push_back(info);
    }

    prog.finalize();
    prog.validate(ctx.cfg.clusters);

    ctx.stats.instructions = static_cast<int>(prog.code.size());
    ctx.stats.operations = 0;
    ctx.stats.empty_instructions = 0;
    for (const VliwInstruction& insn : prog.code) {
      ctx.stats.operations += insn.op_count();
      if (insn.empty()) ++ctx.stats.empty_instructions;
    }
    ctx.prog = std::move(prog);
  }
};

class ProgramVerifyPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "program-verify";
  }
  void run(PassContext& ctx) const override {
    verify_or_throw(ctx.prog, ctx.cfg);
  }
};

}  // namespace

std::unique_ptr<Pass> make_ir_verify_pass() {
  return std::make_unique<IrVerifyPass>();
}
std::unique_ptr<Pass> make_cluster_assign_pass() {
  return std::make_unique<ClusterAssignPass>();
}
std::unique_ptr<Pass> make_modulo_sched_pass() {
  return std::make_unique<ModuloSchedPass>();
}
std::unique_ptr<Pass> make_list_sched_pass() {
  return std::make_unique<ListSchedPass>();
}
std::unique_ptr<Pass> make_regalloc_pass() {
  return std::make_unique<RegAllocPass>();
}
std::unique_ptr<Pass> make_emit_pass() { return std::make_unique<EmitPass>(); }
std::unique_ptr<Pass> make_program_verify_pass() {
  return std::make_unique<ProgramVerifyPass>();
}

Pipeline& Pipeline::add(std::unique_ptr<Pass> pass) {
  VEXSIM_CHECK_MSG(pass != nullptr, "null compiler pass");
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> Pipeline::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.emplace_back(pass->name());
  return names;
}

namespace {

// Between-pass invariant checking (CompilerOptions::verify_each_pass).
// Checks whichever artifact the pipeline has produced so far — the lowered
// mid-level IR after cluster assignment, the finalized program after emit —
// and rethrows any violation attributed to the pass that just ran, so a
// broken transform is caught at the pass boundary that introduced the
// damage instead of at program-verify (or worse, in the simulator).
void check_pass_invariants(PassContext& ctx, std::string_view pass) {
  try {
    if (!ctx.prog.code.empty()) {
      verify_or_throw(ctx.prog, ctx.cfg);
      lint_or_throw(ctx.prog, ctx.cfg);
    } else if (!ctx.lfn.blocks.empty()) {
      const std::vector<LintFinding> findings = lint_lfunction(ctx.lfn,
                                                               ctx.cfg);
      if (!findings.empty()) {
        std::ostringstream os;
        os << ctx.lfn.name << ": " << findings.size()
           << " IR lint finding(s):";
        for (const LintFinding& f : findings)
          os << "\n  [" << f.instr << "] " << f.check << ": " << f.what;
        throw CheckError(os.str());
      }
    }
  } catch (const CheckError& e) {
    VEXSIM_CHECK_MSG(false, "invariant violated after pass '" << pass
                            << "': " << e.what());
  }
}

}  // namespace

void Pipeline::run_passes(PassContext& ctx) const {
  for (const auto& pass : passes_) {
    pass->run(ctx);
    if (ctx.opt.verify_each_pass) check_pass_invariants(ctx, pass->name());
  }
}

Program Pipeline::run(IrFunction fn, const MachineConfig& cfg,
                      const CompilerOptions& opt, CompileStats* stats) const {
  PassContext ctx(cfg, opt, std::move(fn));
  run_passes(ctx);
  if (stats != nullptr) *stats = ctx.stats;
  return std::move(ctx.prog);
}

Pipeline Pipeline::standard(const CompilerOptions& opt) {
  Pipeline p;
  p.add(make_ir_verify_pass());
  p.add(make_cluster_assign_pass());
  if (opt.modulo_schedule) p.add(make_modulo_sched_pass());
  p.add(make_list_sched_pass());
  p.add(make_regalloc_pass());
  p.add(make_emit_pass());
  p.add(make_program_verify_pass());
  return p;
}

}  // namespace vexsim::cc
