// Cost-model cluster assignment policy.
//
// Replaces the greedy chooser's fixed affinity votes with an explicit cost
// function over the block's dependence structure and the machine's
// per-cluster capacities:
//
//   cost(c) = communication + pressure
//
//   communication: each register operand living on another cluster (and
//     neither replicated there nor rematerializable) costs a co-scheduled
//     send/recv pair — one slot on both clusters plus `lat.comm` on the
//     dependence chain. The charge scales with the op's critical-path
//     height, so copies on long chains (which stretch the whole schedule)
//     cost more than copies on short tails.
//
//   pressure: the projected schedule length each cluster needs for the
//     work already placed on it, taken as the max over its issue-slot,
//     ALU, multiplier and memory-port utilization *at that cluster's own
//     capacities*. Greedy's flat load counter treats an 8-issue and a
//     2-issue cluster alike; this term is what makes asymmetric
//     geometries (8+4+2+2) fill proportionally.
//
// The policy is deterministic (ties break toward the lowest cluster
// index) and plugs into the shared lowering machinery of
// cc/cluster_assign.hpp, so copy insertion, induction replication and
// rematerialization behave identically across assigners.
#pragma once

#include "cc/cluster_assign.hpp"

namespace vexsim::cc {

[[nodiscard]] ClusterPolicy make_cost_policy(const IrFunction& fn,
                                             const MachineConfig& cfg);

}  // namespace vexsim::cc
