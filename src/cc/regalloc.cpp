#include "cc/regalloc.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <queue>
#include <set>

#include "util/check.hpp"

namespace vexsim::cc {

namespace {

struct Lifetime {
  VReg v = kNoVReg;
  int def_cycle = 0;
  int free_cycle = 0;  // first cycle the register may be redefined
  int def_index = 0;   // body index, for deterministic tie-breaking
};

}  // namespace

Allocation allocate(const LFunction& fn, const FunctionSchedule& sched,
                    const MachineConfig& cfg) {
  Allocation alloc;
  alloc.gpr_of.assign(static_cast<std::size_t>(fn.next_vreg), -1);
  alloc.breg_of.assign(static_cast<std::size_t>(fn.next_vreg), -1);

  // --- Globals: stable registers per home cluster, r62 downward. ---
  std::array<int, kMaxClusters> next_global{};
  next_global.fill(kNumGprs - 2);  // r62
  for (VReg v = 0; v < fn.next_vreg; ++v) {
    const VRegInfo& vi = fn.info[static_cast<std::size_t>(v)];
    if (!vi.global) continue;
    VEXSIM_CHECK_MSG(!vi.is_breg, fn.name << ": global breg vreg " << v);
    const int c = vi.home_cluster >= 0 ? vi.home_cluster : 0;
    VEXSIM_CHECK_MSG(next_global[static_cast<std::size_t>(c)] >= 1,
                     fn.name << ": out of global registers on cluster " << c);
    alloc.gpr_of[static_cast<std::size_t>(v)] =
        next_global[static_cast<std::size_t>(c)]--;
  }

  // --- Locals: per block, per cluster, linear scan. ---
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const LBlock& block = fn.blocks[b];
    const BlockSchedule& bs = sched.blocks[b];
    const int n = static_cast<int>(block.body.size());

    // Gather lifetimes of locals defined in this block, keyed by def
    // cluster; record last-use cycles.
    std::map<VReg, Lifetime> life;
    auto note_use = [&](VReg v, int cycle) {
      if (v < 0) return;
      const auto it = life.find(v);
      if (it != life.end())
        it->second.free_cycle = std::max(it->second.free_cycle, cycle + 1);
    };
    for (int i = 0; i < n; ++i) {
      const LOp& op = block.body[static_cast<std::size_t>(i)];
      const int cycle = bs.cycle_of[static_cast<std::size_t>(i)];
      // Uses first (an op may read a local and define another).
      if (op.is_copy) {
        note_use(op.src1, cycle);
      } else {
        if (reads_src1(op.opc)) note_use(op.src1, cycle);
        if (reads_src2(op.opc) && !op.src2_is_imm) note_use(op.src2, cycle);
        if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
          note_use(op.bsrc, cycle);
      }
      const bool defines = op.is_copy || has_dst(op.opc);
      if (!defines) continue;
      const VRegInfo& vi = fn.info[static_cast<std::size_t>(op.dst)];
      if (vi.global) continue;  // already allocated
      Lifetime lt;
      lt.v = op.dst;
      lt.def_cycle = cycle;
      // Dead values still hold the register until their write lands.
      lt.free_cycle = cycle + producer_latency(op, cfg.lat);
      lt.def_index = i;
      life[op.dst] = lt;
    }
    if (block.term == Terminator::kBranch)
      note_use(block.cond, bs.term_cycle);

    // Partition by (cluster, breg?) and run the scans.
    struct Scan {
      std::vector<Lifetime> items;
    };
    std::map<std::pair<int, bool>, Scan> scans;
    for (const auto& [v, lt] : life) {
      const VRegInfo& vi = fn.info[static_cast<std::size_t>(v)];
      // Find def cluster: copies define on copy_dst_cluster.
      const LOp& def_op =
          block.body[static_cast<std::size_t>(lt.def_index)];
      scans[{def_op.def_cluster(), vi.is_breg}].items.push_back(lt);
    }

    for (auto& [key, scan] : scans) {
      const bool is_breg = key.second;
      std::sort(scan.items.begin(), scan.items.end(),
                [](const Lifetime& lhs, const Lifetime& rhs) {
                  return lhs.def_cycle != rhs.def_cycle
                             ? lhs.def_cycle < rhs.def_cycle
                             : lhs.def_index < rhs.def_index;
                });
      const int lo = is_breg ? 0 : 1;
      const int hi = is_breg
                         ? kNumBregs - 1
                         : next_global[static_cast<std::size_t>(key.first)];
      // Free list ordered by register index; busy set ordered by free cycle.
      std::set<int> free_regs;
      for (int r = lo; r <= hi; ++r) free_regs.insert(r);
      using Busy = std::pair<int, int>;  // (free_cycle, reg)
      std::priority_queue<Busy, std::vector<Busy>, std::greater<>> busy;
      int in_use = 0;
      for (const Lifetime& lt : scan.items) {
        while (!busy.empty() && busy.top().first <= lt.def_cycle) {
          free_regs.insert(busy.top().second);
          busy.pop();
          --in_use;
        }
        VEXSIM_CHECK_MSG(
            !free_regs.empty(),
            fn.name << ": register pressure too high on cluster " << key.first
                    << (is_breg ? " (bregs)" : " (gprs)") << " in block " << b);
        const int r = *free_regs.begin();
        free_regs.erase(free_regs.begin());
        busy.emplace(lt.free_cycle, r);
        ++in_use;
        alloc.max_gpr_pressure = std::max(alloc.max_gpr_pressure, in_use);
        if (is_breg)
          alloc.breg_of[static_cast<std::size_t>(lt.v)] = r;
        else
          alloc.gpr_of[static_cast<std::size_t>(lt.v)] = r;
      }
    }
  }

  // Breg-writing compares whose vreg is "local" were allocated above; any
  // remaining unallocated breg vregs indicate an IR bug.
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (const LOp& op : fn.blocks[b].body) {
      if (!op.is_copy && has_dst(op.opc) && op.dst_is_breg)
        VEXSIM_CHECK_MSG(
            alloc.breg_of[static_cast<std::size_t>(op.dst)] >= 0,
            fn.name << " block " << b << ": breg vreg v" << op.dst
                    << " unallocated (opc " << opcode_name(op.opc)
                    << ", is_breg info "
                    << fn.info[static_cast<std::size_t>(op.dst)].is_breg
                    << ", global "
                    << fn.info[static_cast<std::size_t>(op.dst)].global << ")");
    }
  }
  return alloc;
}

}  // namespace vexsim::cc
