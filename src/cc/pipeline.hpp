// Explicit compiler pass pipeline.
//
// The seed compiler was a hard-wired call chain (irgen → cluster_assign →
// schedule → regalloc → emit → validate); this turns it into named,
// individually-testable passes over a shared PassContext, with
// CompilerOptions selecting the variant of each optimization pass:
//
//   ir-verify            structural IR validation
//   cluster-assign[...]  greedy (BUG-style) or cost-model assignment
//   modulo-sched         software-pipelines counted self-loops (opt-in)
//   list-sched           list scheduling of the remaining blocks
//   regalloc             stable globals + linear-scan locals
//   emit                 send/recv expansion, branch patching, finalize
//   program-verify       static legality (resources, pairing, kernels)
//
// Pipeline::standard(opt) builds the production pass list; tests build
// partial pipelines and inspect the intermediate artifacts in PassContext.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cc/cluster_assign.hpp"
#include "cc/compiler.hpp"
#include "cc/modulo_sched.hpp"
#include "cc/options.hpp"
#include "cc/regalloc.hpp"
#include "cc/schedule.hpp"

namespace vexsim::cc {

// Artifacts threaded between passes. Each pass reads the fields earlier
// passes produced and fills its own; run() returns ctx.prog.
struct PassContext {
  const MachineConfig& cfg;
  CompilerOptions opt;

  IrFunction fn;        // input
  LFunction lfn;        // after cluster-assign (modulo-sched rewrites it)
  ModuloResult swp;     // after modulo-sched (empty otherwise)
  FunctionSchedule sched;  // after list-sched (adopts swp.pinned)
  Allocation alloc;     // after regalloc
  Program prog;         // after emit
  CompileStats stats;

  PassContext(const MachineConfig& machine, CompilerOptions options,
              IrFunction input)
      : cfg(machine), opt(options), fn(std::move(input)) {}
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual void run(PassContext& ctx) const = 0;
};

class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  Pipeline& add(std::unique_ptr<Pass> pass);
  [[nodiscard]] std::vector<std::string> pass_names() const;

  // Runs every pass over `ctx` in order. With opt.verify_each_pass set,
  // the static checkers (cc/verifier + cc/lint) run after every pass and a
  // violation throws CheckError naming the pass that introduced it.
  void run_passes(PassContext& ctx) const;

  // Convenience: full run over `fn`, returning the finalized program.
  [[nodiscard]] Program run(IrFunction fn, const MachineConfig& cfg,
                            const CompilerOptions& opt,
                            CompileStats* stats = nullptr) const;

  // The production pipeline for `opt`.
  [[nodiscard]] static Pipeline standard(const CompilerOptions& opt);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Individual pass factories, for partial pipelines in tests.
[[nodiscard]] std::unique_ptr<Pass> make_ir_verify_pass();
[[nodiscard]] std::unique_ptr<Pass> make_cluster_assign_pass();
[[nodiscard]] std::unique_ptr<Pass> make_modulo_sched_pass();
[[nodiscard]] std::unique_ptr<Pass> make_list_sched_pass();
[[nodiscard]] std::unique_ptr<Pass> make_regalloc_pass();
[[nodiscard]] std::unique_ptr<Pass> make_emit_pass();
[[nodiscard]] std::unique_ptr<Pass> make_program_verify_pass();

}  // namespace vexsim::cc
