#include "cc/modulo_sched.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <utility>
#include <vector>

#include "cc/ddg.hpp"
#include "core/resources.hpp"
#include "util/check.hpp"

namespace vexsim::cc {

namespace {

// A dependence edge with an iteration distance: sched(to) + dist * II must
// be at least sched(from) + lat.
struct Edge {
  int from = 0;
  int to = 0;
  int lat = 0;
  int dist = 0;
};

// The canonical counted-loop shape: a self-branching block whose condition
// is a compare of a self-incremented global counter against an immediate.
struct Shape {
  bool ok = false;
  int counter_def = -1;  // body index of the self-increment
  int compare = -1;      // body index of the condition compare
  VReg counter = kNoVReg;
  int step = 0;            // counter increment per iteration (+1 / -1)
  std::int32_t limit = 0;  // compare immediate
};

bool reads_vreg(const LOp& op, VReg v) {
  if (op.is_copy) return op.src1 == v;
  if (reads_src1(op.opc) && op.src1 == v) return true;
  if (reads_src2(op.opc) && !op.src2_is_imm && op.src2 == v) return true;
  if ((op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf) && op.bsrc == v)
    return true;
  return false;
}

bool defines(const LOp& op) { return op.is_copy || has_dst(op.opc); }

Shape recognize(const LFunction& fn, std::size_t b) {
  Shape s;
  // The loop needs a fallthrough successor for its exit path.
  if (b + 1 >= fn.blocks.size()) return s;
  const LBlock& blk = fn.blocks[b];
  if (blk.term != Terminator::kBranch || blk.branch_if_false ||
      blk.target != static_cast<int>(b) || blk.cond < 0 || blk.body.empty())
    return s;

  // Every vreg defined at most once in the block (cross-iteration edges
  // and the single-register promotion both assume one def per iteration).
  std::map<VReg, int> def_at;
  const int n = static_cast<int>(blk.body.size());
  for (int i = 0; i < n; ++i) {
    const LOp& op = blk.body[static_cast<std::size_t>(i)];
    if (!op.is_copy && is_branch(op.opc)) return s;
    if (defines(op)) {
      if (def_at.count(op.dst) != 0) return s;
      def_at[op.dst] = i;
    }
  }

  // The condition: one compare-to-breg, read by the terminator only.
  const auto cond_it = def_at.find(blk.cond);
  if (cond_it == def_at.end()) return s;
  const int ci = cond_it->second;
  const LOp& cmp = blk.body[static_cast<std::size_t>(ci)];
  if (cmp.is_copy || !cmp.dst_is_breg || !is_compare(cmp.opc) ||
      !cmp.src2_is_imm)
    return s;
  for (const LOp& op : blk.body)
    if (!op.is_copy &&
        (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf) &&
        op.bsrc == blk.cond)
      return s;

  // The counter: a global self-increment by ±1, updated before the
  // compare reads it. The compare may read the counter through a chain of
  // same-iteration inter-cluster copies (the branch lives on cluster 0,
  // the counter often elsewhere) — follow it to the root.
  VReg ctr = cmp.src1;
  int ctr_def = -1;
  {
    int consumer = ci;
    for (;;) {
      if (ctr < 0) return s;
      const auto it = def_at.find(ctr);
      // Defined before the loop (or in another block): not a counter.
      if (it == def_at.end() || it->second >= consumer) return s;
      const LOp& dop = blk.body[static_cast<std::size_t>(it->second)];
      if (dop.is_copy) {
        consumer = it->second;
        ctr = dop.src1;
        continue;
      }
      ctr_def = it->second;
      break;
    }
  }
  const LOp& inc = blk.body[static_cast<std::size_t>(ctr_def)];
  if (inc.opc != Opcode::kAdd || !inc.src2_is_imm || inc.src1 != inc.dst ||
      inc.imm == 0 || inc.imm > (1 << 20) || inc.imm < -(1 << 20))
    return s;
  if (!fn.info[static_cast<std::size_t>(ctr)].global) return s;
  // Guard/kernel immediate rewrites add step * stages; keep headroom.
  if (cmp.imm > (1 << 28) || cmp.imm < -(1 << 28)) return s;
  // Supported polarity: count down (any stride) while > limit, or count
  // up while < limit — strict monotone progress toward the bound, which
  // is what makes the trip count well defined.
  const int step = inc.imm;
  if (!((cmp.opc == Opcode::kCmpgt && step < 0) ||
        (cmp.opc == Opcode::kCmplt && step > 0)))
    return s;

  s.ok = true;
  s.counter = ctr;
  s.counter_def = ctr_def;
  s.compare = ci;
  s.step = step;
  s.limit = cmp.imm;
  return s;
}

// Dist-0 edges come from the block DDG; this adds the cross-iteration
// (distance-1) register and memory dependences. Self-edges become a lower
// bound on II instead.
std::vector<Edge> build_edges(const LBlock& blk, const LatencyConfig& lat,
                              int* min_ii) {
  const int n = static_cast<int>(blk.body.size());
  std::vector<Edge> edges;
  auto add = [&edges, min_ii](int f, int t, int l, int d) {
    if (f == t) {
      if (d > 0) *min_ii = std::max(*min_ii, (l + d - 1) / d);
      return;
    }
    edges.push_back(Edge{f, t, l, d});
  };

  const BlockDdg ddg = build_ddg(blk, lat);
  for (int i = 0; i < n; ++i)
    for (const DdgEdge& e : ddg.succ[static_cast<std::size_t>(i)])
      if (e.to < n) add(i, e.to, e.latency, 0);

  // Cross-iteration register dependences.
  for (int d = 0; d < n; ++d) {
    const LOp& def_op = blk.body[static_cast<std::size_t>(d)];
    if (!defines(def_op)) continue;
    const VReg v = def_op.dst;
    const int plat = producer_latency(def_op, lat);
    for (int u = 0; u < n; ++u) {
      if (u == d || !reads_vreg(blk.body[static_cast<std::size_t>(u)], v))
        continue;
      if (u < d) {
        // Reads the previous iteration's value: RAW at distance 1.
        add(d, u, plat, 1);
      } else {
        // Reads this iteration's value from the single architected
        // register: the next iteration's redefinition must not land
        // before the read (anti-dependence at distance 1).
        add(u, d, 0, 1);
      }
    }
    if (reads_vreg(def_op, v)) add(d, d, plat, 1);  // self-increment
  }

  // Cross-iteration memory dependences (conservative: every ordered pair
  // within an alias space, both directions across the back edge).
  for (int i = 0; i < n; ++i) {
    const LOp& a = blk.body[static_cast<std::size_t>(i)];
    if (a.is_copy || !is_mem(a.opc) || a.mem_space == kMemSpaceReadOnly)
      continue;
    for (int j = 0; j < n; ++j) {
      const LOp& bop = blk.body[static_cast<std::size_t>(j)];
      if (bop.is_copy || !is_mem(bop.opc) || bop.mem_space != a.mem_space)
        continue;
      if (is_store(a.opc))
        add(i, j, 1, 1);  // store → next-iteration load/store
      else if (is_store(bop.opc))
        add(i, j, 0, 1);  // load → next-iteration store
    }
  }
  return edges;
}

ResourceUse op_need(const LOp& op) {
  ResourceUse need;
  if (op.is_copy) return ResourceUse::one_slot();
  Operation probe;
  probe.opc = op.opc;
  need.add(probe);
  return need;
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Resource-constrained lower bound on II, including the reserved
// back-branch slot on cluster 0 and the copy-channel pool. Returns a large
// value when some class has demand but no units.
int res_mii(const LBlock& blk, const MachineConfig& cfg) {
  std::array<int, kMaxClusters> slots{}, alu{}, mul{}, mem{};
  int channels = 0;
  for (const LOp& op : blk.body) {
    if (op.is_copy) {
      ++slots[static_cast<std::size_t>(op.cluster)];
      ++slots[static_cast<std::size_t>(op.copy_dst_cluster)];
      ++channels;
      continue;
    }
    ++slots[static_cast<std::size_t>(op.cluster)];
    switch (op_class(op.opc)) {
      case OpClass::kAlu: ++alu[static_cast<std::size_t>(op.cluster)]; break;
      case OpClass::kMul: ++mul[static_cast<std::size_t>(op.cluster)]; break;
      case OpClass::kMem: ++mem[static_cast<std::size_t>(op.cluster)]; break;
      default: break;
    }
  }
  ++slots[0];  // the kernel back-branch
  constexpr int kInfeasible = 1 << 20;
  if (cfg.branch_units_at(0) <= 0) return kInfeasible;
  int mii = 1;
  for (int c = 0; c < cfg.clusters; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    const ClusterResourceConfig& res = cfg.cluster_at(c);
    auto need = [&mii](int count, int cap) {
      if (count == 0) return true;
      if (cap <= 0) return false;
      mii = std::max(mii, ceil_div(count, cap));
      return true;
    };
    if (!need(slots[cc], res.issue_slots) || !need(alu[cc], res.alus) ||
        !need(mul[cc], res.muls) || !need(mem[cc], res.mem_units))
      return kInfeasible;
  }
  if (channels > 0) mii = std::max(mii, ceil_div(channels, kNumChannels));
  return mii;
}

// Rau's HeightR priority at a given II: longest path to any sink over the
// distance-annotated edges (effective latency lat - dist*II). Iterating to
// a fixpoint doubles as the recurrence feasibility test — a circuit with
// positive effective latency (RecMII > II) never converges. Returns false
// when II is recurrence-infeasible.
bool height_r(const std::vector<Edge>& edges, int n, int II,
              std::vector<int>* height) {
  height->assign(static_cast<std::size_t>(n), 0);
  for (int pass = 0; pass <= n + 1; ++pass) {
    bool changed = false;
    for (const Edge& e : edges) {
      const int h =
          (*height)[static_cast<std::size_t>(e.to)] + e.lat - e.dist * II;
      if (h > (*height)[static_cast<std::size_t>(e.from)]) {
        (*height)[static_cast<std::size_t>(e.from)] = h;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return false;  // positive-latency circuit: II below the recurrence MII
}

// Rau-style iterative modulo scheduling at a fixed II. Returns flat
// schedule times (empty on failure). `cmp_index`'s modulo slot is
// restricted so the kernel branch can read its result in the same pass.
std::vector<int> try_ims(const LBlock& blk, const MachineConfig& cfg,
                         const std::vector<Edge>& edges, int II,
                         int cmp_index, int max_stages) {
  const int n = static_cast<int>(blk.body.size());
  const int cmp_slot_max = II - 1 - cfg.lat.cmp_to_branch;
  if (cmp_slot_max < 0) return {};
  std::vector<int> priority;
  if (!height_r(edges, n, II, &priority)) return {};
  // Schedules drifting past the stage budget cannot emit anyway; failing
  // fast turns resource-infeasible IIs into a quick move to II+1.
  const int t_cap = (max_stages + 2) * II;

  std::vector<std::vector<int>> in_of(static_cast<std::size_t>(n)),
      out_of(static_cast<std::size_t>(n));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    in_of[static_cast<std::size_t>(edges[e].to)].push_back(
        static_cast<int>(e));
    out_of[static_cast<std::size_t>(edges[e].from)].push_back(
        static_cast<int>(e));
  }

  std::vector<int> time(static_cast<std::size_t>(n), -1);
  std::vector<int> prev(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<int>> slot_ops(static_cast<std::size_t>(II));

  Operation br_probe;
  br_probe.opc = Opcode::kGoto;
  ResourceUse br_need;
  br_need.add(br_probe);

  auto fits = [&](int i, int m) {
    std::array<ResourceUse, kMaxClusters> use{};
    int channels = 0;
    auto put = [&use, &channels](const LOp& op) {
      if (op.is_copy) {
        const ResourceUse one = ResourceUse::one_slot();
        use[static_cast<std::size_t>(op.cluster)].add(one);
        use[static_cast<std::size_t>(op.copy_dst_cluster)].add(one);
        ++channels;
      } else {
        use[static_cast<std::size_t>(op.cluster)].add(op_need(op));
      }
    };
    for (int j : slot_ops[static_cast<std::size_t>(m)])
      put(blk.body[static_cast<std::size_t>(j)]);
    put(blk.body[static_cast<std::size_t>(i)]);
    if (m == II - 1) use[0].add(br_need);
    if (channels > kNumChannels) return false;
    for (int c = 0; c < cfg.clusters; ++c) {
      const ResourceUse empty;
      if (!empty.fits_with(use[static_cast<std::size_t>(c)],
                           cfg.cluster_at(c), cfg.branch_units_at(c)))
        return false;
    }
    return true;
  };

  auto unschedule = [&](int j) {
    auto& ops = slot_ops[static_cast<std::size_t>(time[
        static_cast<std::size_t>(j)] % II)];
    ops.erase(std::find(ops.begin(), ops.end(), j));
    time[static_cast<std::size_t>(j)] = -1;
  };

  int unscheduled = n;
  long budget = 200L * n + 64;
  while (unscheduled > 0) {
    if (budget-- <= 0) return {};
    // Highest priority unscheduled op; stable by index.
    int i = -1;
    for (int j = 0; j < n; ++j) {
      if (time[static_cast<std::size_t>(j)] >= 0) continue;
      if (i < 0 || priority[static_cast<std::size_t>(j)] >
                       priority[static_cast<std::size_t>(i)])
        i = j;
    }
    const bool is_cmp = i == cmp_index;

    int est = 0;
    for (int e : in_of[static_cast<std::size_t>(i)]) {
      const Edge& ed = edges[static_cast<std::size_t>(e)];
      if (time[static_cast<std::size_t>(ed.from)] < 0) continue;
      est = std::max(est, time[static_cast<std::size_t>(ed.from)] + ed.lat -
                              ed.dist * II);
    }
    if (prev[static_cast<std::size_t>(i)] >= 0)
      est = std::max(est, prev[static_cast<std::size_t>(i)] + 1);

    int placed = -1;
    for (int t = est; t < est + II; ++t) {
      if (is_cmp && t % II > cmp_slot_max) continue;
      if (fits(i, t % II)) {
        placed = t;
        break;
      }
    }
    if (placed < 0) {
      // Force placement: evict conflicting ops at the earliest legal slot,
      // lowest priority first (keeps critical recurrences intact).
      int t = est;
      while (is_cmp && t % II > cmp_slot_max) ++t;
      const int m = t % II;
      std::vector<int> present = slot_ops[static_cast<std::size_t>(m)];
      std::sort(present.begin(), present.end(), [&priority](int a, int b) {
        const int pa = priority[static_cast<std::size_t>(a)];
        const int pb = priority[static_cast<std::size_t>(b)];
        return pa != pb ? pa < pb : a < b;
      });
      const LOp& mine = blk.body[static_cast<std::size_t>(i)];
      for (int j : present) {
        if (fits(i, m)) break;
        const LOp& theirs = blk.body[static_cast<std::size_t>(j)];
        const bool contend =
            mine.is_copy || theirs.is_copy ||
            mine.cluster == theirs.cluster;
        if (!contend) continue;
        unschedule(j);
        ++unscheduled;
      }
      if (!fits(i, m)) return {};  // op cannot fit even in an empty slot
      placed = t;
    }
    if (placed > t_cap) return {};
    time[static_cast<std::size_t>(i)] = placed;
    prev[static_cast<std::size_t>(i)] = placed;
    slot_ops[static_cast<std::size_t>(placed % II)].push_back(i);
    --unscheduled;

    // Evict scheduled successors the placement now violates.
    for (int e : out_of[static_cast<std::size_t>(i)]) {
      const Edge& ed = edges[static_cast<std::size_t>(e)];
      const int to = ed.to;
      if (time[static_cast<std::size_t>(to)] < 0) continue;
      if (time[static_cast<std::size_t>(to)] < placed + ed.lat - ed.dist * II) {
        unschedule(to);
        ++unscheduled;
      }
    }
  }

  // Normalize so the earliest stage is stage 0 (modulo slots preserved).
  int t_min = time[0];
  for (int t : time) t_min = std::min(t_min, t);
  const int shift = (t_min / II) * II;
  for (int& t : time) t -= shift;
  return time;
}

// Branch registers are renamed per emitted instance, so a breg def and all
// its readers must land in one stage (one emitted block per instance).
bool breg_groups_stage_local(const LBlock& blk, const std::vector<int>& time,
                             int II, int cmp_index) {
  const int n = static_cast<int>(blk.body.size());
  for (int d = 0; d < n; ++d) {
    const LOp& def_op = blk.body[static_cast<std::size_t>(d)];
    if (d == cmp_index || def_op.is_copy || !has_dst(def_op.opc) ||
        !def_op.dst_is_breg)
      continue;
    for (int u = 0; u < n; ++u) {
      const LOp& use = blk.body[static_cast<std::size_t>(u)];
      if (use.is_copy ||
          (use.opc != Opcode::kSlct && use.opc != Opcode::kSlctf) ||
          use.bsrc != def_op.dst)
        continue;
      if (time[static_cast<std::size_t>(u)] / II !=
          time[static_cast<std::size_t>(d)] / II)
        return false;
    }
  }
  return true;
}

// Promoting the loop's values to stable global registers must leave room
// in every cluster's file (r62 downward, locals of other blocks from r1
// up). A conservative headroom check; the whole-function compile-time
// fallback catches anything it misses.
bool pressure_ok(const LFunction& fn, const LBlock& blk,
                 const MachineConfig& cfg) {
  std::array<int, kMaxClusters> globals{};
  for (VReg v = 0; v < fn.next_vreg; ++v) {
    const VRegInfo& vi = fn.info[static_cast<std::size_t>(v)];
    if (!vi.global) continue;
    const int home = vi.home_cluster >= 0 ? vi.home_cluster : 0;
    ++globals[static_cast<std::size_t>(home)];
  }
  for (const LOp& op : blk.body) {
    if (!defines(op) || op.dst_is_breg) continue;
    if (fn.info[static_cast<std::size_t>(op.dst)].global) continue;
    ++globals[static_cast<std::size_t>(op.def_cluster())];
  }
  for (int c = 0; c < cfg.clusters; ++c)
    if (globals[static_cast<std::size_t>(c)] > kNumGprs - 2 - 14) return false;
  return true;
}

// One emitted instance of a body op: at which flat cycle, for which
// iteration tag (breg renaming key).
struct Emitted {
  int cycle = 0;
  int op = 0;
  long tag = 0;
};

class PipelineEmitter {
 public:
  PipelineEmitter(LFunction& fn, std::size_t b, const Shape& shape,
                  std::vector<int> time, int ii, int stages)
      : fn_(fn), loop_(fn.blocks[b]), b_(b), shape_(shape),
        time_(std::move(time)), ii_(ii), sc_(stages) {}

  void run(ModuloResult& out, const MachineConfig& cfg) {
    promote_loop_values();

    LBlock guard = make_guard();
    LBlock skip;  // remainder path jumps over the pipelined blocks
    skip.term = Terminator::kGoto;
    skip.target = static_cast<int>(b_) + 6;

    LBlock prologue, kernel, epilogue;
    BlockSchedule ps, ks, es;
    emit_prologue(prologue, ps);
    emit_kernel(kernel, ks);
    emit_epilogue(epilogue, es, cfg);

    // Remap every target into the post-insertion index space (targets at
    // the loop head land on the guard, which keeps its old index).
    for (LBlock& blk : fn_.blocks)
      if (blk.target > static_cast<int>(b_)) blk.target += 5;

    LBlock orig = std::move(fn_.blocks[b_]);
    orig.target = static_cast<int>(b_) + 1;  // self, at its new position

    std::vector<LBlock> rebuilt;
    rebuilt.reserve(fn_.blocks.size() + 5);
    for (std::size_t i = 0; i < b_; ++i)
      rebuilt.push_back(std::move(fn_.blocks[i]));
    rebuilt.push_back(std::move(guard));
    rebuilt.push_back(std::move(orig));
    rebuilt.push_back(std::move(skip));
    rebuilt.push_back(std::move(prologue));
    rebuilt.push_back(std::move(kernel));
    rebuilt.push_back(std::move(epilogue));
    for (std::size_t i = b_ + 1; i < fn_.blocks.size(); ++i)
      rebuilt.push_back(std::move(fn_.blocks[i]));
    fn_.blocks = std::move(rebuilt);

    out.pinned[b_ + 3] = std::move(ps);
    out.pinned[b_ + 4] = std::move(ks);
    out.pinned[b_ + 5] = std::move(es);
    SwpLoop loop;
    loop.guard_block = b_;
    loop.orig_block = b_ + 1;
    loop.prologue_block = b_ + 3;
    loop.kernel_block = b_ + 4;
    loop.epilogue_block = b_ + 5;
    loop.ii = ii_;
    loop.stages = sc_;
    out.loops.push_back(loop);
  }

 private:
  // Every GPR the loop defines lives across emitted blocks (and across
  // overlapped iterations) in one stable register.
  void promote_loop_values() {
    for (const LOp& op : loop_.body) {
      if (!defines(op) || op.dst_is_breg) continue;
      VRegInfo& vi = fn_.info[static_cast<std::size_t>(op.dst)];
      if (!vi.global) {
        vi.global = true;
        vi.home_cluster = op.def_cluster();
      }
    }
  }

  VReg fresh_breg(int cluster) {
    const VReg v = fn_.next_vreg++;
    fn_.info.push_back(VRegInfo{/*is_breg=*/true, /*global=*/false,
                                cluster, 1});
    return v;
  }

  LBlock make_guard() {
    LBlock guard;
    VReg ctr = shape_.counter;
    const VRegInfo& ci = fn_.info[static_cast<std::size_t>(ctr)];
    const int home = ci.home_cluster >= 0 ? ci.home_cluster : 0;
    if (home != 0) {
      LOp cp;
      cp.opc = Opcode::kSend;
      cp.is_copy = true;
      cp.src1 = ctr;
      cp.cluster = home;
      cp.copy_dst_cluster = 0;
      cp.dst = fn_.next_vreg++;
      fn_.info.push_back(VRegInfo{});
      guard.body.push_back(cp);
      ctr = cp.dst;
      ++fn_.copies_inserted;
    }
    const LOp& cmp = loop_.body[static_cast<std::size_t>(shape_.compare)];
    LOp g;
    g.opc = cmp.opc;
    g.dst = fresh_breg(0);
    g.dst_is_breg = true;
    g.src1 = ctr;
    g.src2_is_imm = true;
    // The pipeline needs at least `stages` iterations (kernel runs
    // total - (stages-1) passes); shorter trips take the original loop.
    g.imm = shape_.limit - shape_.step * (sc_ - 1);
    g.cluster = 0;
    guard.body.push_back(g);
    guard.term = Terminator::kBranch;
    guard.cond = g.dst;
    guard.branch_if_false = false;
    guard.target = static_cast<int>(b_) + 3;
    return guard;
  }

  // Emits `entries` (sorted by cycle) into `blk`/`bs`, renaming breg
  // instances per tag and assigning copy channels per cycle.
  void emit_entries(std::vector<Emitted> entries, LBlock& blk,
                    BlockSchedule& bs, bool kernel) {
    std::sort(entries.begin(), entries.end(),
              [](const Emitted& a, const Emitted& b) {
                return a.cycle != b.cycle ? a.cycle < b.cycle : a.op < b.op;
              });
    std::map<std::pair<VReg, long>, VReg> breg_of;
    std::map<int, int> chan_at;
    for (const Emitted& e : entries) {
      LOp op = loop_.body[static_cast<std::size_t>(e.op)];
      if (!op.is_copy && has_dst(op.opc) && op.dst_is_breg) {
        const VReg renamed = fresh_breg(op.cluster);
        breg_of[{op.dst, e.tag}] = renamed;
        if (kernel && e.op == shape_.compare) {
          // Kernel exit test: the branch reads the condition computed by
          // the iteration `stage(compare)` steps ahead of the completing
          // one; shifting the immediate by step*stage makes it decide for
          // the completing iteration, stages-1 iterations early.
          op.imm = shape_.limit -
                   shape_.step * (time_[static_cast<std::size_t>(e.op)] / ii_);
          kernel_cond_ = renamed;
        }
        op.dst = renamed;
      }
      if (!op.is_copy &&
          (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)) {
        const auto it = breg_of.find({op.bsrc, e.tag});
        VEXSIM_CHECK_MSG(it != breg_of.end(),
                         fn_.name << ": breg instance missing in pipelined "
                                     "loop emission");
        op.bsrc = it->second;
      }
      int chan = -1;
      if (op.is_copy) chan = chan_at[e.cycle]++;
      blk.body.push_back(op);
      bs.cycle_of.push_back(e.cycle);
      bs.chan_of.push_back(chan);
    }
  }

  void emit_prologue(LBlock& blk, BlockSchedule& bs) {
    const int n = static_cast<int>(loop_.body.size());
    std::vector<Emitted> entries;
    for (int j = 0; j + 1 < sc_; ++j) {
      for (int i = 0; i < n; ++i) {
        const int flat = j * ii_ + time_[static_cast<std::size_t>(i)];
        if (flat < (sc_ - 1) * ii_)
          entries.push_back(Emitted{flat, i, j});
      }
    }
    emit_entries(std::move(entries), blk, bs, false);
    bs.term_cycle = -1;
    bs.length = (sc_ - 1) * ii_;
    blk.term = Terminator::kFallthrough;
  }

  void emit_kernel(LBlock& blk, BlockSchedule& bs) {
    const int n = static_cast<int>(loop_.body.size());
    std::vector<Emitted> entries;
    for (int i = 0; i < n; ++i) {
      const int t = time_[static_cast<std::size_t>(i)];
      // One instance per op; breg groups are stage-local, so the stage
      // doubles as the renaming tag.
      entries.push_back(Emitted{t % ii_, i, t / ii_});
    }
    emit_entries(std::move(entries), blk, bs, true);
    VEXSIM_CHECK_MSG(kernel_cond_ >= 0,
                     fn_.name << ": pipelined kernel lost its exit compare");
    bs.term_cycle = ii_ - 1;
    bs.length = ii_;
    blk.term = Terminator::kBranch;
    blk.cond = kernel_cond_;
    blk.branch_if_false = false;
    blk.target = static_cast<int>(b_) + 4;
  }

  void emit_epilogue(LBlock& blk, BlockSchedule& bs,
                     const MachineConfig& cfg) {
    const int n = static_cast<int>(loop_.body.size());
    std::vector<Emitted> entries;
    // In-flight iteration k (k = 1 .. stages-1 past the completing one)
    // still owes its stages >= stages-k.
    for (int k = 1; k < sc_; ++k) {
      for (int i = 0; i < n; ++i) {
        const int t = time_[static_cast<std::size_t>(i)];
        if (t / ii_ >= sc_ - k)
          entries.push_back(Emitted{t + (k - sc_) * ii_, i, k});
      }
    }
    int pad = -1;
    for (const Emitted& e : entries) {
      const LOp& op = loop_.body[static_cast<std::size_t>(e.op)];
      if (defines(op))
        pad = std::max(pad, e.cycle + producer_latency(op, cfg.lat) - 1);
    }
    emit_entries(std::move(entries), blk, bs, false);
    bs.term_cycle = -1;
    bs.length = std::max((sc_ - 1) * ii_, pad + 1);
    blk.term = Terminator::kFallthrough;
  }

  LFunction& fn_;
  LBlock loop_;  // copy of the original loop block
  std::size_t b_;
  Shape shape_;
  std::vector<int> time_;
  int ii_;
  int sc_;
  VReg kernel_cond_ = kNoVReg;
};

}  // namespace

ModuloResult modulo_schedule_loops(LFunction& fn, const MachineConfig& cfg,
                                   const CompilerOptions& opt) {
  ModuloResult out;
  if (!opt.modulo_schedule) return out;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const Shape shape = recognize(fn, b);
    if (!shape.ok) continue;
    ++out.candidates;

    const LBlock& blk = fn.blocks[b];
    const int list_len = schedule_block(blk, fn, cfg).length;
    int min_ii = res_mii(blk, cfg);
    std::vector<Edge> edges = build_edges(blk, cfg.lat, &min_ii);
    min_ii = std::max(min_ii, cfg.lat.cmp_to_branch + 1);

    // Profitability margin: the kernel must beat the list-scheduled body
    // by at least two cycles and ~12% per iteration, or the guard,
    // prologue and epilogue overhead eats the win on realistic trip
    // counts.
    const int ii_max = std::min(opt.max_ii,
                                list_len - std::max(2, (list_len + 7) / 8));
    std::vector<int> time;
    int found_ii = 0;
    for (int ii = min_ii; ii <= ii_max; ++ii) {
      std::vector<int> t =
          try_ims(blk, cfg, edges, ii, shape.compare, opt.max_stages);
      if (t.empty()) continue;
      if (!breg_groups_stage_local(blk, t, ii, shape.compare)) continue;
      int t_max = 0;
      for (int v : t) t_max = std::max(t_max, v);
      const int stages = t_max / ii + 1;
      if (stages < 2 || stages > opt.max_stages) continue;
      // Amortization check at a conservative assumed trip count: the
      // per-iteration win must recoup the prologue/epilogue (and guard)
      // overhead — deep pipelines over marginal II gains lose on the
      // moderate trip counts the kernels actually run.
      constexpr int kAssumedTrips = 32;
      if ((list_len - ii) * kAssumedTrips <
          2 * (stages - 1) * ii + 16)
        continue;
      time = std::move(t);
      found_ii = ii;
      break;
    }
    if (time.empty() || !pressure_ok(fn, blk, cfg)) {
      ++out.fallbacks;
      continue;
    }

    int t_max = 0;
    for (int v : time) t_max = std::max(t_max, v);
    const int stages = t_max / found_ii + 1;
    PipelineEmitter emitter(fn, b, shape, std::move(time), found_ii, stages);
    emitter.run(out, cfg);
    b += 5;  // skip the blocks just inserted (incl. the self-looping kernel)
  }
  return out;
}

}  // namespace vexsim::cc
