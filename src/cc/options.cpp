#include "cc/options.hpp"

#include <array>
#include <string_view>

#include "util/check.hpp"

namespace vexsim::cc {

namespace {

struct VariantEntry {
  std::string_view name;
  std::string_view alias;  // pipeN
  AssignStrategy assign;
  bool swp;
};

constexpr std::array<VariantEntry, 4> kVariants = {{
    {"greedy", "pipe0", AssignStrategy::kGreedy, false},
    {"cost", "pipe1", AssignStrategy::kCostModel, false},
    {"cost_swp", "pipe2", AssignStrategy::kCostModel, true},
    {"greedy_swp", "pipe3", AssignStrategy::kGreedy, true},
}};

}  // namespace

std::string CompilerOptions::name() const {
  for (const VariantEntry& v : kVariants)
    if (v.assign == assign && v.swp == modulo_schedule)
      return std::string(v.name);
  return "greedy";  // unreachable: the variant table is exhaustive
}

CompilerOptions CompilerOptions::parse(const std::string& name) {
  for (const VariantEntry& v : kVariants) {
    if (name == v.name || name == v.alias) {
      CompilerOptions opt;
      opt.assign = v.assign;
      opt.modulo_schedule = v.swp;
      return opt;
    }
  }
  VEXSIM_CHECK_MSG(false, "unknown compiler variant '"
                              << name << "': valid names are ["
                              << compiler_variant_names()
                              << "] (pipe0..pipe3 aliases accepted)");
  return {};
}

std::string compiler_variant_names() {
  std::string names;
  for (const VariantEntry& v : kVariants) {
    if (!names.empty()) names += ", ";
    names += std::string(v.name);
  }
  return names;
}

}  // namespace vexsim::cc
