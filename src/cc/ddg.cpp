#include "cc/ddg.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace vexsim::cc {

int producer_latency(const LOp& op, const LatencyConfig& lat) {
  if (op.is_copy) return lat.comm;
  if (op.dst_is_breg) return lat.cmp_to_branch;
  return lat.for_class(op_class(op.opc));
}

BlockDdg build_ddg(const LBlock& block, const LatencyConfig& lat) {
  const int n = static_cast<int>(block.body.size());
  BlockDdg g;
  g.num_nodes = n + 1;
  g.succ.assign(static_cast<std::size_t>(g.num_nodes), {});
  g.pred_count.assign(static_cast<std::size_t>(g.num_nodes), 0);

  auto add_edge = [&g](int from, int to, int latency) {
    if (from == to) return;
    // Keep only the strongest edge between a pair (cheap linear check: DDG
    // fan-outs are small).
    for (DdgEdge& e : g.succ[static_cast<std::size_t>(from)]) {
      if (e.to == to) {
        e.latency = std::max(e.latency, latency);
        return;
      }
    }
    g.succ[static_cast<std::size_t>(from)].push_back(DdgEdge{to, latency});
    ++g.pred_count[static_cast<std::size_t>(to)];
  };

  // Last def / uses-since-last-def per vreg (bregs tracked separately by the
  // vreg id space being shared — dst_is_breg only matters for latency).
  std::map<VReg, int> last_def;
  std::map<VReg, std::vector<int>> uses_since_def;
  // Memory ordering state per alias space.
  std::map<int, int> last_store;
  std::map<int, std::vector<int>> loads_since_store;

  auto raw_use = [&](VReg v, int node) {
    if (v < 0) return;
    if (const auto it = last_def.find(v); it != last_def.end())
      add_edge(it->second, node,
               producer_latency(block.body[static_cast<std::size_t>(it->second)],
                                lat));
    uses_since_def[v].push_back(node);
  };

  for (int i = 0; i < n; ++i) {
    const LOp& op = block.body[i];
    // RAW on register operands.
    if (op.is_copy) {
      raw_use(op.src1, i);
    } else {
      if (reads_src1(op.opc)) raw_use(op.src1, i);
      if (reads_src2(op.opc) && !op.src2_is_imm) raw_use(op.src2, i);
      if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
        raw_use(op.bsrc, i);
    }
    // Memory ordering.
    if (!op.is_copy && is_mem(op.opc) && op.mem_space != kMemSpaceReadOnly) {
      if (is_store(op.opc)) {
        if (const auto it = last_store.find(op.mem_space);
            it != last_store.end())
          add_edge(it->second, i, 1);  // store→store
        for (int ld : loads_since_store[op.mem_space])
          add_edge(ld, i, 0);  // load→store (WAR)
        last_store[op.mem_space] = i;
        loads_since_store[op.mem_space].clear();
      } else {
        if (const auto it = last_store.find(op.mem_space);
            it != last_store.end())
          add_edge(it->second, i, 1);  // store→load (RAW through memory)
        loads_since_store[op.mem_space].push_back(i);
      }
    }
    // Register output dependences.
    const bool defines = op.is_copy || has_dst(op.opc);
    if (defines) {
      const VReg d = op.dst;
      if (const auto it = last_def.find(d); it != last_def.end()) {
        const int prev_lat = producer_latency(
            block.body[static_cast<std::size_t>(it->second)], lat);
        const int my_lat = producer_latency(op, lat);
        add_edge(it->second, i, std::max(1, prev_lat - my_lat + 1));  // WAW
      }
      for (int use : uses_since_def[d]) add_edge(use, i, 0);  // WAR
      last_def[d] = i;
      uses_since_def[d].clear();
    }
  }

  // Terminator reads its condition (compare-to-branch contract).
  if (block.term == Terminator::kBranch) raw_use(block.cond, n);

  // Priorities: longest path to any sink (critical-path list scheduling).
  g.priority.assign(static_cast<std::size_t>(g.num_nodes), 0);
  for (int i = g.num_nodes - 1; i >= 0; --i) {
    int h = 0;
    for (const DdgEdge& e : g.succ[static_cast<std::size_t>(i)])
      h = std::max(h, e.latency + g.priority[static_cast<std::size_t>(e.to)]);
    g.priority[static_cast<std::size_t>(i)] = h;
  }
  return g;
}

}  // namespace vexsim::cc
