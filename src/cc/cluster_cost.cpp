#include "cc/cluster_cost.hpp"

#include <algorithm>
#include <array>

namespace vexsim::cc {

namespace {

// Projected schedule-length contribution of cluster `c` given the work
// tallies in `view`, with one op of `cls` added when `add` is set. The max
// over the class utilizations is a lower bound on the cycles the cluster
// needs — the quantity list scheduling will actually pay.
double projected_cycles(const AssignView& view, int c, OpClass cls,
                        bool add) {
  const auto cc = static_cast<std::size_t>(c);
  const ClusterResourceConfig& res = view.cfg->cluster_at(c);
  double slots = (*view.slot_count)[cc] + (add ? 1.0 : 0.0);
  double alu = (*view.alu_count)[cc] + (add && cls == OpClass::kAlu ? 1 : 0);
  double mul = (*view.mul_count)[cc] + (add && cls == OpClass::kMul ? 1 : 0);
  double mem = (*view.mem_count)[cc] + (add && cls == OpClass::kMem ? 1 : 0);
  double cycles = slots / res.issue_slots;
  cycles = std::max(cycles, alu / res.alus);
  if (res.muls > 0) cycles = std::max(cycles, mul / res.muls);
  if (res.mem_units > 0) cycles = std::max(cycles, mem / res.mem_units);
  return cycles;
}

}  // namespace

ClusterPolicy make_cost_policy(const IrFunction& fn, const MachineConfig& cfg) {
  (void)fn;  // heights are delivered per decision through the view
  const double comm_latency = 1.0 + cfg.lat.comm;
  // Weights fitted against the registry + synthetic gradient on both the
  // symmetric and the 8+4+2+2 machines: pressure charges only beyond one
  // cycle of slack (graded overload aversion, not eager spreading), and
  // chain height scales the copy charge.
  constexpr double kPressureWeight = 2.0;
  constexpr double kHeightWeight = 0.25;
  constexpr double kPressureSlack = 1.0;
  return [comm_latency](const IrOp& op, const AssignView& view) -> int {
    const int clusters = view.cfg->clusters;
    const OpClass cls = op_class(op.opc);

    // Operands that pull toward their defining cluster.
    std::array<VReg, 3> operands = {kNoVReg, kNoVReg, kNoVReg};
    int n_ops = 0;
    if (reads_src1(op.opc)) operands[n_ops++] = op.src1;
    if (reads_src2(op.opc) && !op.src2_is_imm) operands[n_ops++] = op.src2;
    if (op.opc == Opcode::kSlct || op.opc == Opcode::kSlctf)
      operands[n_ops++] = op.bsrc;

    // Anchor pressure at the least-loaded cluster so it stays a graded
    // tie-breaker (absolute projections would grow without bound over the
    // function and overpower the communication term).
    double min_cycles = 1e30;
    for (int c = 0; c < clusters; ++c)
      min_cycles = std::min(min_cycles, projected_cycles(view, c, cls, true));

    // Copies on critical chains delay everything scheduled after them;
    // weigh communication by how much downstream work waits on this op.
    const double chain_weight =
        1.0 + kHeightWeight * static_cast<double>(view.height);

    int best = 0;
    double best_cost = 1e30;
    for (int c = 0; c < clusters; ++c) {
      double comm = 0.0;
      for (int k = 0; k < n_ops; ++k) {
        const VReg v = operands[k];
        if (v < 0 || view.free_on(v, c)) continue;
        const int dc = (*view.value_cluster)[static_cast<std::size_t>(v)];
        if (dc >= 0 && dc != c) comm += 1.0;
      }
      const double cost =
          comm * comm_latency * chain_weight +
          kPressureWeight *
              std::max(0.0, projected_cycles(view, c, cls, true) -
                                min_cycles - kPressureSlack);
      if (cost < best_cost - 1e-12) {
        best_cost = cost;
        best = c;
      }
    }
    return best;
  };
}

}  // namespace vexsim::cc
