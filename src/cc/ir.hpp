// Compiler intermediate representation.
//
// Stands in for the VEX C compiler front-end: benchmark kernels are written
// against the Builder API below, then lowered by the backend passes
// (cluster assignment → inter-cluster copy insertion → list scheduling →
// register allocation → emission).
//
// Virtual registers are function-scoped and unbounded; the DDG and the
// allocator distinguish *local* vregs (single block, single definition —
// the common case for generator-unrolled loop bodies) from *global* vregs
// (loop-carried or cross-block), which receive a stable physical register.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hpp"

namespace vexsim::cc {

using VReg = std::int32_t;
inline constexpr VReg kNoVReg = -1;

// Memory alias spaces: ops in different spaces never alias; kReadOnly loads
// may reorder freely with everything.
inline constexpr int kMemSpaceDefault = 0;
inline constexpr int kMemSpaceReadOnly = -1;

struct IrOp {
  Opcode opc = Opcode::kNop;
  VReg dst = kNoVReg;
  bool dst_is_breg = false;
  VReg src1 = kNoVReg;
  VReg src2 = kNoVReg;
  bool src2_is_imm = false;
  std::int32_t imm = 0;
  VReg bsrc = kNoVReg;  // breg operand of slct/slctf
  int mem_space = kMemSpaceDefault;
  int cluster_hint = -1;  // fixed cluster when >= 0 (kernel placement hints)
};

enum class Terminator : std::uint8_t { kFallthrough, kBranch, kGoto, kHalt };

struct IrBlock {
  std::vector<IrOp> body;
  Terminator term = Terminator::kFallthrough;
  VReg cond = kNoVReg;        // breg vreg for kBranch
  bool branch_if_false = false;
  int target = -1;            // taken-path block index for kBranch / kGoto
};

struct IrFunction {
  std::string name;
  std::vector<IrBlock> blocks;
  VReg next_vreg = 0;

  [[nodiscard]] VReg fresh() { return next_vreg++; }
  // Structural sanity: operands defined, targets in range, breg/gpr uses
  // consistent. Throws CheckError.
  void validate() const;
};

// Convenience construction layer used by the benchmark kernels and tests.
class Builder {
 public:
  explicit Builder(std::string name);

  [[nodiscard]] IrFunction take() &&;
  [[nodiscard]] IrFunction& fn() { return fn_; }

  // Blocks.
  int new_block();                // returns block index; does not switch
  void switch_to(int block);
  [[nodiscard]] int current() const { return cur_; }

  // Values.
  VReg movi(std::int32_t value, int cluster = -1);
  VReg alu(Opcode opc, VReg a, VReg b, int cluster = -1);
  VReg alui(Opcode opc, VReg a, std::int32_t imm, int cluster = -1);
  VReg mov(VReg a, int cluster = -1);
  VReg mpy(VReg a, VReg b, int cluster = -1);
  VReg mpyi(VReg a, std::int32_t imm, int cluster = -1);
  VReg load(Opcode opc, VReg base, std::int32_t off,
            int space = kMemSpaceDefault, int cluster = -1);
  void store(Opcode opc, VReg base, std::int32_t off, VReg value,
             int space = kMemSpaceDefault, int cluster = -1);
  VReg cmp(Opcode opc, VReg a, VReg b, int cluster = -1);      // GPR 0/1
  VReg cmpi(Opcode opc, VReg a, std::int32_t imm, int cluster = -1);
  VReg cmp_b(Opcode opc, VReg a, VReg b, int cluster = -1);    // breg result
  VReg cmpi_b(Opcode opc, VReg a, std::int32_t imm, int cluster = -1);
  VReg slct(VReg b, VReg t, VReg f, int cluster = -1);

  // Explicit multi-definition (loop-carried) assignment: dst must come from
  // fresh_global(); generates a mov.
  VReg fresh_global() { return fn_.fresh(); }
  void assign(VReg dst, VReg src, int cluster = -1);
  void assign_i(VReg dst, std::int32_t value, int cluster = -1);
  void assign_alu(VReg dst, Opcode opc, VReg a, VReg b, int cluster = -1);
  void assign_alui(VReg dst, Opcode opc, VReg a, std::int32_t imm,
                   int cluster = -1);

  // Terminators.
  void branch(VReg cond_breg, int target_block, bool if_false = false);
  void jump(int target_block);
  void halt();

 private:
  IrOp& emit(IrOp op);
  IrFunction fn_;
  int cur_ = 0;
};

}  // namespace vexsim::cc
