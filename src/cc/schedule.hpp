// Resource- and latency-exact list scheduling of a lowered function.
//
// Each block is scheduled independently (region scheduling; the kernels
// provide ILP through generator-side unrolling, standing in for Trace
// Scheduling's role in the VEX toolchain). Guarantees:
//   - all DDG latencies respected within the block;
//   - per-cycle, per-cluster resources respected (issue slots, ALUs, MULs,
//     memory units, branch units); copies occupy a slot on both clusters of
//     the pair in the same cycle and get a channel id (≤ kNumChannels per
//     cycle);
//   - conditional/unconditional branches are placed in the block's last
//     instruction, at least cmp_to_branch cycles after their compare;
//   - values live-out of the block (global vregs) are fully written before
//     the block ends (the block is padded so def_cycle + latency - 1 ≤ end),
//     which makes cross-block NUAL timing safe under any issue delay.
#pragma once

#include <map>
#include <vector>

#include "cc/cluster_assign.hpp"
#include "cc/ddg.hpp"

namespace vexsim::cc {

struct BlockSchedule {
  std::vector<int> cycle_of;  // per body op
  std::vector<int> chan_of;   // per body op; -1 unless a copy
  int term_cycle = -1;        // cycle of the branch/goto/halt (if any)
  int length = 0;             // instructions emitted for this block
};

struct FunctionSchedule {
  std::vector<BlockSchedule> blocks;
};

[[nodiscard]] FunctionSchedule schedule(const LFunction& fn,
                                        const MachineConfig& cfg);

// Schedules one block in isolation (the modulo scheduler uses this to
// bound its II search by the list-schedule length).
[[nodiscard]] BlockSchedule schedule_block(const LBlock& block,
                                           const LFunction& fn,
                                           const MachineConfig& cfg);

// Pinned variant: blocks whose index appears in `pinned` adopt the given
// schedule verbatim (modulo-scheduled prologue/kernel/epilogue blocks);
// the rest are list-scheduled as usual.
[[nodiscard]] FunctionSchedule schedule(
    const LFunction& fn, const MachineConfig& cfg,
    const std::map<std::size_t, BlockSchedule>& pinned);

}  // namespace vexsim::cc
