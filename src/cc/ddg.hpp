// Data-dependence graph over one lowered block.
//
// Nodes are the block's ops plus one terminator node (index = body.size()).
// Edge latencies encode the ISA contract the scheduler must honour:
//   RAW gpr:   producer class latency (mem/mul = 2, alu = 1, copy = 1)
//   RAW breg:  compare-to-branch delay (2) — applies to branches and slct
//   WAR:       0 (same-cycle def is legal: reads observe old values)
//   WAW:       max(1, lat(first) - lat(second) + 1) so writes land in order
//   memory:    store→load / store→store = 1; load→store = 0; only within
//              the same alias space (read-only space has no edges)
#pragma once

#include <vector>

#include "cc/cluster_assign.hpp"

namespace vexsim::cc {

struct DdgEdge {
  int to = 0;
  int latency = 0;
};

struct BlockDdg {
  int num_nodes = 0;  // body.size() + 1 (terminator node last)
  std::vector<std::vector<DdgEdge>> succ;
  std::vector<int> pred_count;
  std::vector<int> priority;  // critical-path height (for list scheduling)

  [[nodiscard]] int terminator_node() const { return num_nodes - 1; }
};

[[nodiscard]] BlockDdg build_ddg(const LBlock& block, const LatencyConfig& lat);

// Latency of the value produced by `op` as seen by a consumer.
[[nodiscard]] int producer_latency(const LOp& op, const LatencyConfig& lat);

}  // namespace vexsim::cc
