// Compiler driver: IR → clustered, scheduled, register-allocated VLIW code.
//
// Pipeline (stand-in for the VEX / Multiflow toolchain of Section IV):
//   1. analyze + assign_clusters  (BUG-style affinity + copy insertion)
//   2. build_ddg + schedule       (latency/resource-exact list scheduling)
//   3. allocate                   (stable globals + linear-scan locals)
//   4. emit                       (send/recv expansion, branch patching,
//                                  vertical-nop materialization, finalize)
#pragma once

#include "cc/ir.hpp"
#include "cc/options.hpp"
#include "isa/config.hpp"
#include "isa/program.hpp"

namespace vexsim::cc {

struct CompileStats {
  int instructions = 0;
  int empty_instructions = 0;  // vertical nops
  int operations = 0;
  int copies_inserted = 0;
  int cmps_cloned = 0;
  int max_gpr_pressure = 0;
  // Software pipelining: counted loops examined, loops actually pipelined,
  // and candidates that stayed on the list-scheduler path (no feasible II,
  // register/stage budget, or a whole-function regalloc fallback).
  int swp_candidates = 0;
  int swp_loops = 0;
  int swp_fallbacks = 0;

  [[nodiscard]] double ops_per_instruction() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(operations) / instructions;
  }
};

// Compiles `fn` for the machine in `cfg` with the default (seed) pipeline.
// The returned program is finalized and validated. Throws CheckError on IR
// errors or register exhaustion.
[[nodiscard]] Program compile(const IrFunction& fn, const MachineConfig& cfg,
                              CompileStats* stats = nullptr);

// Pipeline-variant compile. When modulo scheduling makes register
// allocation infeasible for the whole function, recompiles once with it
// disabled (stats then report the fallback).
[[nodiscard]] Program compile(const IrFunction& fn, const MachineConfig& cfg,
                              const CompilerOptions& opt,
                              CompileStats* stats = nullptr);

}  // namespace vexsim::cc
