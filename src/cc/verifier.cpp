#include "cc/verifier.hpp"

#include <array>
#include <functional>
#include <map>
#include <sstream>
#include <tuple>

#include "core/resources.hpp"
#include "util/check.hpp"

namespace vexsim::cc {

namespace {

// Cyclic steady-state replay of one software-pipelined kernel: every
// operand read must observe a value outside any other instruction's
// latency window, with writes wrapping around the kernel's modulo
// boundary. Latencies mirror the simulator's (LatencyConfig by class;
// breg writes use the compare-to-branch delay; send/recv land a comm
// latency after issue).
void verify_kernel_windows(
    const Program& prog, const SoftwarePipelinedLoop& k,
    const MachineConfig& cfg,
    const std::function<void(std::size_t, const std::string&)>& report) {
  struct Write {
    long issue = 0;
    long visible = 0;
  };
  // (breg?, cluster, index) -> latest write.
  std::map<std::tuple<bool, int, int>, Write> last;
  const int ii = k.ii;
  const int passes = 2 * k.stages + 2;  // windows settle within `stages`
  for (int pass = 0; pass < passes; ++pass) {
    for (int m = 0; m < ii; ++m) {
      const long t = static_cast<long>(pass) * ii + m;
      const std::size_t pc = k.kernel_start + static_cast<std::size_t>(m);
      const VliwInstruction& insn = prog.code[pc];
      auto check_read = [&](bool breg, int cluster, int idx) {
        const auto it = last.find({breg, cluster, idx});
        if (it == last.end()) return;
        // Reads at the write's own issue cycle are the same instruction
        // (one VLIW instruction per cycle per thread): legal same-cycle
        // old-value semantics. Anything strictly inside the window is the
        // bug the simulator would assert on.
        if (t > it->second.issue && t < it->second.visible)
          report(pc, "kernel steady-state read of " +
                         std::string(breg ? "b" : "r") + std::to_string(idx) +
                         " on cluster " + std::to_string(cluster) +
                         " inside a latency window (modulo wrap)");
      };
      // Reads first (same-cycle reads observe pre-instruction state).
      for (int c = 0; c < cfg.clusters; ++c) {
        for (const Operation& op : insn.bundle(c)) {
          if (reads_src1(op.opc) || op.opc == Opcode::kSend)
            check_read(false, c, op.src1);
          if (reads_src2(op.opc) && !op.src2_is_imm)
            check_read(false, c, op.src2);
          if (reads_bsrc(op.opc)) check_read(true, c, op.bsrc);
        }
      }
      for (int c = 0; c < cfg.clusters; ++c) {
        for (const Operation& op : insn.bundle(c)) {
          if (op.opc == Opcode::kRecv) {
            last[{false, c, op.dst}] = Write{t, t + cfg.lat.comm};
          } else if (op.writes_breg()) {
            last[{true, c, op.dst}] = Write{t, t + cfg.lat.cmp_to_branch};
          } else if (op.writes_gpr()) {
            last[{false, c, op.dst}] =
                Write{t, t + cfg.lat.for_class(op_class(op.opc))};
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<VerifyIssue> verify_program(const Program& prog,
                                        const MachineConfig& cfg) {
  std::vector<VerifyIssue> issues;
  auto report = [&issues](std::size_t i, const std::string& what) {
    issues.push_back(VerifyIssue{i, what});
  };

  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    const VliwInstruction& insn = prog.code[i];
    int branches = 0;
    std::array<int, kNumChannels> sends{};
    std::array<int, kNumChannels> recvs{};

    for (int c = 0; c < cfg.clusters; ++c) {
      const Bundle& bundle = insn.bundle(c);
      if (bundle.empty()) continue;
      ResourceUse use;
      for (const Operation& op : bundle) {
        use.add(op);
        if (static_cast<int>(op.cluster) != c)
          report(i, "operation filed under wrong bundle");
        if (is_branch(op.opc)) ++branches;
        if (op.opc == Opcode::kSend) ++sends[op.chan];
        if (op.opc == Opcode::kRecv) ++recvs[op.chan];
        if (op.writes_gpr() && op.dst >= kNumGprs)
          report(i, "gpr index out of range");
        if (op.writes_breg() && op.dst >= kNumBregs)
          report(i, "breg index out of range");
        if (reads_bsrc(op.opc) && op.bsrc >= kNumBregs)
          report(i, "bsrc index out of range");
        if ((op.opc == Opcode::kBr || op.opc == Opcode::kBrf ||
             op.opc == Opcode::kGoto) &&
            (op.imm < 0 ||
             static_cast<std::size_t>(op.imm) >= prog.code.size()))
          report(i, "branch target out of range");
      }
      ResourceUse empty;
      if (!empty.fits_with(use, cfg.cluster_at(c), cfg.branch_units_at(c))) {
        std::ostringstream os;
        os << "cluster " << c << " overcommitted: slots=" << int(use.slots())
           << " alu=" << int(use.alu()) << " mul=" << int(use.mul())
           << " mem=" << int(use.mem()) << " br=" << int(use.br());
        report(i, os.str());
      }
    }
    // A bundle on a cluster beyond the machine's cluster count is illegal.
    for (int c = cfg.clusters; c < kMaxClusters; ++c)
      if (!insn.bundle(c).empty())
        report(i, "bundle on nonexistent cluster");

    if (branches > 1) report(i, "multiple control-flow ops in instruction");
    for (int ch = 0; ch < kNumChannels; ++ch) {
      if (sends[ch] != recvs[ch])
        report(i, "unpaired send/recv on channel " + std::to_string(ch));
      if (sends[ch] > 1) report(i, "channel reused within instruction");
    }
  }

  // Software-pipelined kernels: span sanity, the closing back-branch, and
  // the cyclic latency-window replay.
  for (const SoftwarePipelinedLoop& k : prog.kernels) {
    if (k.epilogue_end > prog.code.size() || k.ii < 1 || k.stages < 2 ||
        k.prologue_start > k.kernel_start ||
        k.kernel_start + k.ii > k.epilogue_end) {
      report(k.kernel_start, "malformed software-pipeline span");
      continue;
    }
    const std::size_t last = k.kernel_start + k.ii - 1;
    bool closes = false;
    for (int c = 0; c < cfg.clusters; ++c)
      for (const Operation& op : prog.code[last].bundle(c))
        if ((op.opc == Opcode::kBr || op.opc == Opcode::kBrf) &&
            static_cast<std::uint32_t>(op.imm) == k.kernel_start)
          closes = true;
    if (!closes)
      report(last, "software-pipelined kernel does not close with a "
                   "back-branch to its first instruction");
    verify_kernel_windows(prog, k, cfg, report);
  }
  return issues;
}

void verify_or_throw(const Program& prog, const MachineConfig& cfg) {
  const auto issues = verify_program(prog, cfg);
  if (issues.empty()) return;
  // Aggregate every issue (with its instruction index) into one error, the
  // same shape run_sweep uses for point failures: a miscompile usually
  // trips several checks at once and the full list is what localizes it.
  std::ostringstream os;
  os << prog.name << ": " << issues.size() << " verifier issue(s):";
  for (const VerifyIssue& issue : issues)
    os << "\n  [" << issue.instr << "] " << issue.what;
  VEXSIM_CHECK_MSG(false, os.str());
}

}  // namespace vexsim::cc
