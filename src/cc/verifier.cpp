#include "cc/verifier.hpp"

#include <array>
#include <sstream>

#include "core/resources.hpp"
#include "util/check.hpp"

namespace vexsim::cc {

std::vector<VerifyIssue> verify_program(const Program& prog,
                                        const MachineConfig& cfg) {
  std::vector<VerifyIssue> issues;
  auto report = [&issues](std::size_t i, const std::string& what) {
    issues.push_back(VerifyIssue{i, what});
  };

  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    const VliwInstruction& insn = prog.code[i];
    int branches = 0;
    std::array<int, kNumChannels> sends{};
    std::array<int, kNumChannels> recvs{};

    for (int c = 0; c < cfg.clusters; ++c) {
      const Bundle& bundle = insn.bundle(c);
      if (bundle.empty()) continue;
      ResourceUse use;
      for (const Operation& op : bundle) {
        use.add(op);
        if (static_cast<int>(op.cluster) != c)
          report(i, "operation filed under wrong bundle");
        if (is_branch(op.opc)) ++branches;
        if (op.opc == Opcode::kSend) ++sends[op.chan];
        if (op.opc == Opcode::kRecv) ++recvs[op.chan];
        if (op.writes_gpr() && op.dst >= kNumGprs)
          report(i, "gpr index out of range");
        if (op.writes_breg() && op.dst >= kNumBregs)
          report(i, "breg index out of range");
        if (reads_bsrc(op.opc) && op.bsrc >= kNumBregs)
          report(i, "bsrc index out of range");
        if ((op.opc == Opcode::kBr || op.opc == Opcode::kBrf ||
             op.opc == Opcode::kGoto) &&
            (op.imm < 0 ||
             static_cast<std::size_t>(op.imm) >= prog.code.size()))
          report(i, "branch target out of range");
      }
      ResourceUse empty;
      if (!empty.fits_with(use, cfg.cluster_at(c), cfg.branch_units_at(c))) {
        std::ostringstream os;
        os << "cluster " << c << " overcommitted: slots=" << int(use.slots)
           << " alu=" << int(use.alu) << " mul=" << int(use.mul)
           << " mem=" << int(use.mem) << " br=" << int(use.br);
        report(i, os.str());
      }
    }
    // A bundle on a cluster beyond the machine's cluster count is illegal.
    for (int c = cfg.clusters; c < kMaxClusters; ++c)
      if (!insn.bundle(c).empty())
        report(i, "bundle on nonexistent cluster");

    if (branches > 1) report(i, "multiple control-flow ops in instruction");
    for (int ch = 0; ch < kNumChannels; ++ch) {
      if (sends[ch] != recvs[ch])
        report(i, "unpaired send/recv on channel " + std::to_string(ch));
      if (sends[ch] > 1) report(i, "channel reused within instruction");
    }
  }
  return issues;
}

void verify_or_throw(const Program& prog, const MachineConfig& cfg) {
  const auto issues = verify_program(prog, cfg);
  if (issues.empty()) return;
  VEXSIM_CHECK_MSG(false, prog.name << "[" << issues.front().instr
                                    << "]: " << issues.front().what << " ("
                                    << issues.size() << " issue(s) total)");
}

}  // namespace vexsim::cc
