// Static legality verifier for compiled programs.
//
// Checks the properties the merging/split-issue hardware and the simulator
// rely on:
//   - per-instruction, per-cluster resource legality (slots and FU
//     classes, honouring asymmetric cluster_overrides geometries);
//   - at most one control-flow operation per instruction;
//   - send/recv pairing: every channel used by a send has exactly one recv
//     in the same instruction and vice versa;
//   - branch targets inside the program;
//   - register indices in range;
//   - software-pipelined kernels (Program::kernels): the back-branch
//     closes the kernel span, and a cyclic replay of the steady state
//     proves no operand read falls inside another instruction's
//     latency window — the static mirror of the simulator's dynamic
//     NUAL checker, wrapped around the kernel's modulo boundary.
// (For straight-line code, latency/NUAL legality is enforced dynamically
// by the simulator's latency-window checker.)
#pragma once

#include <string>
#include <vector>

#include "isa/config.hpp"
#include "isa/program.hpp"

namespace vexsim::cc {

struct VerifyIssue {
  std::size_t instr = 0;
  std::string what;
};

// Returns all violations (empty = legal).
[[nodiscard]] std::vector<VerifyIssue> verify_program(const Program& prog,
                                                      const MachineConfig& cfg);

// Convenience: throws CheckError aggregating every violation, one indexed
// line per issue (mirrors run_sweep's failure aggregation).
void verify_or_throw(const Program& prog, const MachineConfig& cfg);

}  // namespace vexsim::cc
