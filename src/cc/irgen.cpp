#include "cc/irgen.hpp"

#include <vector>

#include "util/rng.hpp"

namespace vexsim::cc {

GeneratedIr generate_ir(std::uint64_t seed, const IrGenParams& params) {
  Rng rng(seed);
  GeneratedIr out;
  out.data_base = params.data_base;

  Builder b("irgen_" + std::to_string(seed));

  // Scratch buffer contents (read-only half + read-write half).
  out.init_words.resize(static_cast<std::size_t>(params.mem_words));
  for (auto& w : out.init_words) w = rng.next_u32();

  // Prologue: base pointer + loop-carried globals.
  const VReg base = b.movi(static_cast<std::int32_t>(params.data_base));
  std::vector<VReg> globals;
  for (int g = 0; g < params.globals; ++g) {
    const VReg v = b.fresh_global();
    b.assign_i(v, static_cast<std::int32_t>(rng.below(1000)) - 500,
               params.cluster_hints ? g % 4 : -1);
    globals.push_back(v);
  }
  // Base must be visible everywhere; it is global by multi-block use.

  const Opcode alu_ops[] = {Opcode::kAdd, Opcode::kSub,  Opcode::kAnd,
                            Opcode::kOr,  Opcode::kXor,  Opcode::kMin,
                            Opcode::kMax, Opcode::kShl,  Opcode::kShru,
                            Opcode::kMpyl};
  const Opcode cmp_ops[] = {Opcode::kCmpeq, Opcode::kCmpne, Opcode::kCmplt,
                            Opcode::kCmpge, Opcode::kCmpltu};

  for (int blk = 0; blk < params.blocks; ++blk) {
    // Counted loop: counter counts down to zero.
    const VReg counter = b.fresh_global();
    const int trips = 1 + static_cast<int>(rng.below(
                              static_cast<std::uint32_t>(params.trip_count_max)));
    b.assign_i(counter, trips);
    const int body = b.new_block();
    b.jump(body);
    b.switch_to(body);

    // Pool of values usable as operands in this block.
    std::vector<VReg> pool = globals;
    pool.push_back(counter);

    for (int i = 0; i < params.ops_per_block; ++i) {
      const int hint =
          params.cluster_hints && rng.chance(0.3)
              ? static_cast<int>(rng.below(4))
              : -1;
      const double dice = rng.below(100) / 100.0;
      if (params.use_memory && dice < 0.15) {
        // Load from anywhere in the buffer.
        const std::int32_t off = static_cast<std::int32_t>(
            rng.below(static_cast<std::uint32_t>(params.mem_words))) * 4;
        pool.push_back(b.load(Opcode::kLdw, base, off, kMemSpaceDefault,
                              hint));
      } else if (params.use_memory && dice < 0.25) {
        // Store into the upper half of the buffer.
        const std::int32_t off = static_cast<std::int32_t>(
            params.mem_words / 2 +
            static_cast<int>(rng.below(
                static_cast<std::uint32_t>(params.mem_words / 2)))) * 4;
        const VReg v = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
        b.store(Opcode::kStw, base, off, v, kMemSpaceDefault, hint);
      } else if (params.use_selects && dice < 0.35) {
        const VReg x = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
        const VReg y = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
        const VReg p = b.cmpi_b(cmp_ops[rng.below(5)], x,
                                static_cast<std::int32_t>(rng.below(64)),
                                hint);
        pool.push_back(b.slct(p, x, y, hint));
      } else if (dice < 0.5) {
        const VReg x = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
        pool.push_back(b.alui(alu_ops[rng.below(10)], x,
                              static_cast<std::int32_t>(rng.below(256)) - 128,
                              hint));
      } else {
        const VReg x = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
        const VReg y = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
        pool.push_back(b.alu(alu_ops[rng.below(10)], x, y, hint));
      }
    }
    // Fold a few values back into the accumulators.
    for (std::size_t g = 0; g < globals.size(); ++g) {
      if (!rng.chance(0.7)) continue;
      const VReg x = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
      b.assign_alu(globals[g], Opcode::kAdd, globals[g], x);
    }
    // Decrement and loop.
    b.assign_alui(counter, Opcode::kAdd, counter, -1);
    const VReg done = b.cmpi_b(Opcode::kCmpgt, counter, 0);
    b.branch(done, body);

    const int next = b.new_block();
    b.switch_to(next);
  }

  // Epilogue: spill the accumulators so the memory fingerprint captures
  // the whole computation, then halt.
  for (std::size_t g = 0; g < globals.size(); ++g)
    b.store(Opcode::kStw, base, static_cast<std::int32_t>(g) * 4, globals[g]);
  b.halt();

  out.fn = std::move(b).take();
  return out;
}

}  // namespace vexsim::cc
