#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace vexsim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  VEXSIM_CHECK_MSG(cells.size() == headers_.size(),
                   "row width " << cells.size() << " != header width "
                                << headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    width[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << "  ";
      if (i == 0)
        os << std::left << std::setw(static_cast<int>(width[i])) << cells[i];
      else
        os << std::right << std::setw(static_cast<int>(width[i])) << cells[i];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ",";
      os << cells[i];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double speedup(double ipc, double base) {
  VEXSIM_CHECK(base > 0.0);
  return ipc / base - 1.0;
}

}  // namespace vexsim
