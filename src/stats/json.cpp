#include "stats/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/check.hpp"

namespace vexsim {

namespace {

// Shortest representation that round-trips a double exactly; plain printf
// so the output is independent of stream locale/precision state.
std::string format_double(double v) {
  VEXSIM_CHECK_MSG(std::isfinite(v), "JSON cannot represent " << v);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  VEXSIM_CHECK_MSG(is_object(), "set() on non-object JSON value");
  for (auto& [k, v] : children_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  children_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  VEXSIM_CHECK_MSG(is_array(), "push() on non-array JSON value");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string child_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  char buf[32];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      std::snprintf(buf, sizeof buf, "%" PRId64, int_);
      out += buf;
      break;
    case Kind::kUint:
      std::snprintf(buf, sizeof buf, "%" PRIu64, uint_);
      out += buf;
      break;
    case Kind::kDouble:
      out += format_double(double_);
      break;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kObject:
    case Kind::kArray: {
      const bool obj = kind_ == Kind::kObject;
      if (children_.empty()) {
        out += obj ? "{}" : "[]";
        break;
      }
      out += obj ? "{\n" : "[\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        out += child_pad;
        if (obj) {
          out += '"';
          out += escape(children_[i].first);
          out += "\": ";
        }
        children_[i].second.dump_to(out, indent + 1);
        if (i + 1 < children_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += obj ? '}' : ']';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

void write_json_file(const std::string& path, const Json& json) {
  std::ofstream os(path, std::ios::binary);
  VEXSIM_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  os << json.dump();
  os.flush();
  VEXSIM_CHECK_MSG(os.good(), "write to " << path << " failed");
}

}  // namespace vexsim
