#include "stats/json.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/check.hpp"

namespace vexsim {

namespace {

// Shortest representation that round-trips a double exactly; plain printf
// so the output is independent of stream locale/precision state. JSON has
// no nan/inf literal, so non-finite values emit `null` — a bare `nan` token
// would make the whole document unparseable for downstream consumers.
std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Strict recursive-descent parser over the subset dump() emits. Every
// deviation — bad escape, overflowing number, duplicate key, trailing
// input — is a CheckError naming the byte offset, so a truncated or
// hand-mangled cache record is reported (and treated by callers) as
// corruption rather than silently misread.
class Parser {
 public:
  explicit Parser(const std::string& text)
      : begin_(text.c_str()), p_(begin_), end_(begin_ + text.size()) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    VEXSIM_CHECK_MSG(p_ == end_, "JSON parse error at offset "
                                     << offset()
                                     << ": trailing characters after value");
    return v;
  }

 private:
  [[nodiscard]] std::size_t offset() const {
    return static_cast<std::size_t>(p_ - begin_);
  }

  [[noreturn]] void fail(const std::string& why) const {
    VEXSIM_CHECK_MSG(false,
                     "JSON parse error at offset " << offset() << ": " << why);
    std::abort();  // unreachable: the check above throws
  }

  void skip_ws() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }

  char peek() const {
    if (p_ >= end_) fail("unexpected end of input");
    return *p_;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++p_;
  }

  bool try_literal(const char* token) {
    const std::size_t len = std::strlen(token);
    if (static_cast<std::size_t>(end_ - p_) < len ||
        std::memcmp(p_, token, len) != 0)
      return false;
    p_ += len;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (try_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (try_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (try_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++p_;
      return obj;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate key \"" + key + "\"");
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++p_;
      return arr;
    }
    for (;;) {
      skip_ws();
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (p_ >= end_) fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ >= end_) fail("unterminated escape");
      const char esc = *p_++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (end_ - p_ < 4) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = *p_++;
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    // The writer only emits \u00xx for control characters; surrogate pairs
    // are outside the supported subset.
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    const char* start = p_;
    bool floating = false;
    while (p_ < end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) != 0 || *p_ == '-' ||
            *p_ == '+' || *p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      floating |= (*p_ == '.' || *p_ == 'e' || *p_ == 'E');
      ++p_;
    }
    const std::string token(start, p_);
    if (token.empty()) fail("expected a value");
    char* parse_end = nullptr;
    errno = 0;
    if (floating) {
      const double v = std::strtod(token.c_str(), &parse_end);
      if (parse_end != token.c_str() + token.size())
        fail("malformed number '" + token + "'");
      // strtod sets ERANGE for overflow (±HUGE_VAL) *and* underflow
      // (subnormal or zero result). Only overflow is malformed: dump()
      // legitimately emits subnormals like 5e-324, which must round-trip.
      if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
        fail("out-of-range number '" + token + "'");
      return Json(v);
    }
    if (token[0] == '-') {
      const long long v = std::strtoll(token.c_str(), &parse_end, 10);
      if (parse_end != token.c_str() + token.size() || errno == ERANGE)
        fail("malformed or out-of-range integer '" + token + "'");
      return Json(static_cast<std::int64_t>(v));
    }
    const unsigned long long v = std::strtoull(token.c_str(), &parse_end, 10);
    if (parse_end != token.c_str() + token.size() || errno == ERANGE)
      fail("malformed or out-of-range integer '" + token + "'");
    return Json(static_cast<std::uint64_t>(v));
  }

  const char* begin_;
  const char* p_;
  const char* end_;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  VEXSIM_CHECK_MSG(kind_ == Kind::kBool, "as_bool() on non-bool JSON value");
  return bool_;
}

std::int64_t Json::as_int64() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kUint) {
    VEXSIM_CHECK_MSG(uint_ <= static_cast<std::uint64_t>(INT64_MAX),
                     "as_int64() overflow on " << uint_);
    return static_cast<std::int64_t>(uint_);
  }
  VEXSIM_CHECK_MSG(false, "as_int64() on non-integer JSON value");
  std::abort();  // unreachable: the check above throws
}

std::uint64_t Json::as_uint64() const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ == Kind::kInt) {
    VEXSIM_CHECK_MSG(int_ >= 0, "as_uint64() on negative value " << int_);
    return static_cast<std::uint64_t>(int_);
  }
  VEXSIM_CHECK_MSG(false, "as_uint64() on non-integer JSON value");
  std::abort();  // unreachable: the check above throws
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::kDouble: return double_;
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    default: break;
  }
  VEXSIM_CHECK_MSG(false, "as_double() on non-numeric JSON value");
  std::abort();  // unreachable: the check above throws
}

const std::string& Json::as_string() const {
  VEXSIM_CHECK_MSG(kind_ == Kind::kString,
                   "as_string() on non-string JSON value");
  return string_;
}

const Json* Json::find(const std::string& key) const {
  VEXSIM_CHECK_MSG(is_object(), "find() on non-object JSON value");
  for (const auto& [k, v] : children_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  VEXSIM_CHECK_MSG(v != nullptr, "missing JSON key \"" << key << "\"");
  return *v;
}

const Json& Json::at(std::size_t i) const {
  VEXSIM_CHECK_MSG(is_array(), "at(index) on non-array JSON value");
  VEXSIM_CHECK_MSG(i < children_.size(),
                   "JSON array index " << i << " out of range (size "
                                       << children_.size() << ")");
  return children_[i].second;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  VEXSIM_CHECK_MSG(is_object(), "set() on non-object JSON value");
  for (auto& [k, v] : children_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  children_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  VEXSIM_CHECK_MSG(is_array(), "push() on non-array JSON value");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string child_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  char buf[32];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      std::snprintf(buf, sizeof buf, "%" PRId64, int_);
      out += buf;
      break;
    case Kind::kUint:
      std::snprintf(buf, sizeof buf, "%" PRIu64, uint_);
      out += buf;
      break;
    case Kind::kDouble:
      out += format_double(double_);
      break;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kObject:
    case Kind::kArray: {
      const bool obj = kind_ == Kind::kObject;
      if (children_.empty()) {
        out += obj ? "{}" : "[]";
        break;
      }
      out += obj ? "{\n" : "[\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        out += child_pad;
        if (obj) {
          out += '"';
          out += escape(children_[i].first);
          out += "\": ";
        }
        children_[i].second.dump_to(out, indent + 1);
        if (i + 1 < children_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += obj ? '}' : ']';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

void write_json_file(const std::string& path, const Json& json) {
  std::ofstream os(path, std::ios::binary);
  VEXSIM_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  os << json.dump();
  os.flush();
  VEXSIM_CHECK_MSG(os.good(), "write to " << path << " failed");
}

}  // namespace vexsim
