// Minimal deterministic JSON emission for machine-readable bench output.
//
// Only what the sweep trajectory files need: objects, arrays, strings,
// integers, doubles, and booleans. Emission order is insertion order and
// number formatting is locale-independent and round-trip exact, so two
// structurally equal documents serialize to byte-identical text — the
// property the parallel-vs-serial sweep determinism checks rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vexsim {

class Json {
 public:
  // Scalars.
  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}                // NOLINT
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}          // NOLINT
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}       // NOLINT
  Json(int v) : kind_(Kind::kInt), int_(v) {}                   // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}          // NOLINT
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
  Json(const char* v) : kind_(Kind::kString), string_(v) {}     // NOLINT

  static Json object();
  static Json array();

  // Object member access; `set` overwrites an existing key in place so the
  // original insertion order is preserved.
  Json& set(const std::string& key, Json value);

  // Array append.
  Json& push(Json value);

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  // Serializes with 2-space indentation and a trailing newline at top level.
  [[nodiscard]] std::string dump() const;

  // Escapes `s` for use inside a JSON string literal (no surrounding quotes).
  static std::string escape(const std::string& s);

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kObject, kArray,
  };

  void dump_to(std::string& out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  // Object members (key used) or array elements (key empty, unused).
  std::vector<std::pair<std::string, Json>> children_;
};

// Writes `json.dump()` to `path`, throwing CheckError on I/O failure.
void write_json_file(const std::string& path, const Json& json);

}  // namespace vexsim
