// Minimal deterministic JSON emission and strict parsing for
// machine-readable bench output and the sweep result cache.
//
// Only what the trajectory files and cache records need: objects, arrays,
// strings, integers, doubles, and booleans. Emission order is insertion
// order and number formatting is locale-independent and round-trip exact,
// so two structurally equal documents serialize to byte-identical text —
// the property the parallel-vs-serial sweep determinism checks rely on.
// Non-finite doubles serialize as `null` (JSON has no nan/inf); consumers
// treat a null metric as "undefined". The parser is deliberately strict
// (no duplicate keys, no trailing input): cache records are produced by the
// writer below, so anything the parser rejects is corruption.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vexsim {

class Json {
 public:
  // Scalars.
  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}                // NOLINT
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}          // NOLINT
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}       // NOLINT
  Json(int v) : kind_(Kind::kInt), int_(v) {}                   // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}          // NOLINT
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
  Json(const char* v) : kind_(Kind::kString), string_(v) {}     // NOLINT

  static Json object();
  static Json array();

  // Strict parser for documents produced by dump(): throws CheckError on
  // malformed input, duplicate object keys, numeric overflow, or trailing
  // characters. Non-negative integers parse as unsigned, negative ones as
  // signed; either re-serializes to the original text.
  static Json parse(const std::string& text);

  // Object member access; `set` overwrites an existing key in place so the
  // original insertion order is preserved.
  Json& set(const std::string& key, Json value);

  // Array append.
  Json& push(Json value);

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  // Checked scalar access; throws CheckError on a kind mismatch (and on
  // signedness that cannot represent the stored value).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  // Object member lookup: `find` returns nullptr when absent, `at` throws.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  // Array element access, bounds-checked.
  [[nodiscard]] const Json& at(std::size_t i) const;

  // Serializes with 2-space indentation and a trailing newline at top level.
  [[nodiscard]] std::string dump() const;

  // Escapes `s` for use inside a JSON string literal (no surrounding quotes).
  static std::string escape(const std::string& s);

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kObject, kArray,
  };

  void dump_to(std::string& out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  // Object members (key used) or array elements (key empty, unused).
  std::vector<std::pair<std::string, Json>> children_;
};

// Writes `json.dump()` to `path`, throwing CheckError on I/O failure.
void write_json_file(const std::string& path, const Json& json);

}  // namespace vexsim
