// Aligned text tables and CSV emission for the benchmark harness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vexsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Formatting helpers for numeric cells.
  static std::string fmt(double v, int decimals = 2);
  static std::string pct(double fraction, int decimals = 1);  // 0.061 → "6.1%"

  // Render with aligned columns (first column left-aligned, rest right).
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Arithmetic-mean helper used for the paper's "avg" columns.
[[nodiscard]] double mean(const std::vector<double>& values);

// Speedup of `ipc` over `base` as a fraction (0.061 = +6.1%).
[[nodiscard]] double speedup(double ipc, double base);

}  // namespace vexsim
