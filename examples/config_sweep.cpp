// Machine/scenario description files end-to-end.
//
// Loads a machine + scenario from a `.conf` description (default:
// configs/paper4x4.conf), prints what was described, then sweeps the
// scenario's workload across a few techniques on the described machine
// through the parallel engine — the config-file twin of synth_sweep.
//
//   $ ./example_config_sweep [--file configs/asym8422.conf] [--jobs N]
#include <iostream>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "mdes/scenario.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const std::string path = cli.get("file", "configs/paper4x4.conf");

  // One call parses the file (includes, $(var) arithmetic, strict unknown
  // -key checks), deserializes both sections, applies the scenario's
  // contexts/technique overlays and validates the result.
  const mdes::MachineScenario ms = mdes::load_machine_scenario(path);

  std::cout << "machine from " << path << ": " << ms.machine.geometry_name()
            << ", " << ms.machine.hw_threads << " contexts, "
            << ms.machine.technique.name() << ", workload '"
            << ms.scenario.workload << "'\n\n";

  // The described technique plus the two bracketing baselines.
  std::vector<Technique> techniques = {Technique::smt(), Technique::csmt()};
  if (ms.machine.hw_threads > 1 &&
      !(ms.machine.technique == Technique::smt()) &&
      !(ms.machine.technique == Technique::csmt()))
    techniques.push_back(ms.machine.technique);

  std::vector<harness::SweepPoint> points;
  for (const Technique& t : techniques) {
    MachineConfig cfg = ms.machine;
    cfg.technique = t;
    cfg.validate();
    points.push_back({t.name(), cfg, ms.scenario.workload, ms.scenario.opt});
  }
  const auto results =
      harness::run_sweep(points, harness::SweepOptions::from_cli(cli));

  Table table({"technique", "IPC", "cycles"});
  for (std::size_t i = 0; i < points.size(); ++i)
    table.add_row({points[i].label, Table::fmt(results[i].ipc()),
                   std::to_string(results[i].sim.cycles)});
  table.print(std::cout);

  // Round-trip: the serialized machine re-parses to an equal value.
  const MachineConfig reparsed = [] (const std::string& text) {
    const mdes::ConfigFile file = mdes::ConfigFile::parse_text(text);
    const mdes::Interp interp(file);
    mdes::Diagnostics diags;
    const MachineConfig cfg = machine_from(file, interp, diags);
    diags.throw_if_any("round trip");
    return cfg;
  }(mdes::to_config(ms.machine));
  std::cout << "\nround trip: "
            << (reparsed == ms.machine ? "machine == parse(to_config(machine))"
                                       : "MISMATCH")
            << "\n";
  return reparsed == ms.machine ? 0 : 1;
}
