// Quickstart: assemble a small VLIW program, run it on the cycle-accurate
// machine, and read back registers and statistics.
//
//   $ ./quickstart
#include <iostream>
#include <memory>

#include "arch/thread_context.hpp"
#include "isa/config.hpp"
#include "sim/simulator.hpp"
#include "vasm/assembler.hpp"

int main() {
  using namespace vexsim;

  // 1. Write a program. One line = one VLIW instruction; ';' separates the
  //    operations; each op names its cluster.
  Program program = assemble(R"(
      # sum of 1..10 on cluster 0, a couple of parallel ops on cluster 1
      c0 movi r1 = 10 ; c1 movi r10 = 1000
      c0 movi r2 = 0
    top:
      c0 add r2 = r2, r1 ; c1 add r10 = r10, 2
      c0 add r1 = r1, -1
      c0 cmpgt b0 = r1, 0
      nop                      # compare-to-branch delay is 2 cycles
      c0 br b0, top
      c0 stw 0x200[r0] = r2    # spill the result
      c0 halt
  )",
                             "quickstart");
  auto shared = std::make_shared<const Program>(std::move(program));

  // 2. Configure the paper's machine: 4 clusters x 4-issue, 64 KB caches.
  MachineConfig cfg = MachineConfig::paper_single();

  // 3. Run it.
  Simulator sim(cfg);
  ThreadContext thread(/*asid=*/0, shared);
  sim.attach(0, &thread);
  if (!sim.run_to_halt(/*max_cycles=*/100'000)) {
    std::cerr << "did not halt\n";
    return 1;
  }

  // 4. Inspect the results.
  std::cout << "sum(1..10)        = " << thread.regs.gpr(0, 2) << "\n";
  std::cout << "memory[0x200]     = " << thread.mem.peek_u32(0x200) << "\n";
  std::cout << "cluster-1 counter = " << thread.regs.gpr(1, 10) << "\n";
  std::cout << "cycles            = " << sim.stats().cycles << "\n";
  std::cout << "VLIW instructions = " << sim.stats().instructions_retired
            << "\n";
  std::cout << "operations        = " << sim.stats().ops_issued << "\n";
  std::cout << "IPC               = " << sim.stats().ipc() << "\n";
  std::cout << "taken branches    = " << sim.stats().taken_branches << "\n";
  std::cout << "\nDisassembly:\n" << to_string(*shared);
  return 0;
}
