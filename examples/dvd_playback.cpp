// The paper's motivating scenario (Section VI-A): "playing a dvd requires
// multiple threads for decryption (low ILP), video decoding (high ILP),
// audio decoding (medium ILP) etc. along with the operating system threads
// (low ILP)."
//
// This example builds that mix from the benchmark kernels — blowfish
// (decryption), idct (video), g721decode (audio), bzip2 (OS-ish background
// work) — and compares all eight multithreading techniques on it.
//
//   $ ./dvd_playback [--budget N] [--threads 2|4]
#include <iostream>

#include "sim/driver.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto budget =
      static_cast<std::uint64_t>(cli.get_int("budget", 120'000));
  const int threads = static_cast<int>(cli.get_int("threads", 4));

  const char* roles[][2] = {{"blowfish", "decryption"},
                            {"idct", "video decode"},
                            {"g721decode", "audio decode"},
                            {"bzip2", "background/OS"}};

  std::cout << "DVD-playback mix on the " << threads
            << "-thread machine:\n";
  for (const auto& r : roles)
    std::cout << "  " << r[0] << " (" << r[1] << ")\n";
  std::cout << "\n";

  Table table({"technique", "IPC", "vs CSMT", "split instr", "multi-thread "
               "cycles"});
  double csmt_ipc = 0.0;
  for (const Technique& t : Technique::kAll) {
    const MachineConfig cfg = MachineConfig::paper(threads, t);
    std::vector<std::shared_ptr<const Program>> programs;
    for (const auto& r : roles)
      programs.push_back(wl::make_benchmark(r[0], cfg, 0.1));
    DriverParams params;
    params.budget = budget;
    params.timeslice = 50'000;
    params.max_cycles = 200'000'000;
    MultiprogramDriver driver(cfg, std::move(programs), params);
    const RunResult res = driver.run();
    if (t == Technique::csmt()) csmt_ipc = res.ipc();
    table.add_row(
        {t.name(), Table::fmt(res.ipc()),
         csmt_ipc > 0 ? Table::pct(speedup(res.ipc(), csmt_ipc)) : "-",
         std::to_string(res.sim.split_instructions),
         Table::pct(static_cast<double>(res.sim.multi_thread_cycles) /
                    static_cast<double>(res.sim.cycles))});
  }
  std::cout << table.to_text();
  std::cout << "\nCluster-level split-issue (CCSI AS) buys most of "
               "operation-level split-issue's gain at a fraction of the "
               "hardware cost — the paper's punchline.\n";
  return 0;
}
