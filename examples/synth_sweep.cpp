// Synthetic-workload sweep on an asymmetric machine.
//
// Demonstrates the wl_synth subsystem end-to-end: an asymmetric 8+4+2+2
// cluster geometry, a 6-context machine filled with a '+'-composed mix of
// generated programs walking the ILP dial, and a small technique sweep run
// through the parallel engine.
//
//   $ ./example_synth_sweep [--jobs N]
#include <iostream>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);

  // An asymmetric machine: one wide cluster and a tail of narrow ones,
  // total issue width 16 like the paper's 4x4. Cluster renaming must stay
  // off (a rotated thread would land wide bundles on narrow clusters).
  auto make_cfg = [](Technique t) {
    MachineConfig cfg = MachineConfig::paper(6, t);
    cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                             ClusterResourceConfig::for_issue_width(4),
                             ClusterResourceConfig::for_issue_width(2),
                             ClusterResourceConfig::for_issue_width(2)};
    cfg.cluster_renaming = false;
    cfg.validate();
    return cfg;
  };

  // Six contexts, six generated programs: a gradient from serial chains
  // (i0.1) to machine-saturating parallelism (i0.9), moderate memory
  // pressure, a dash of inter-cluster communication.
  const std::string mix =
      "synth:i0.10-m0.30-c0.10-s1+synth:i0.25-m0.30-c0.10-s2+"
      "synth:i0.40-m0.30-c0.10-s3+synth:i0.60-m0.30-c0.10-s4+"
      "synth:i0.75-m0.30-c0.10-s5+synth:i0.90-m0.30-c0.10-s6";

  harness::ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 40'000;
  opt.timeslice = 20'000;

  std::vector<harness::SweepPoint> points;
  for (const Technique t :
       {Technique::csmt(), Technique::ccsi(CommPolicy::kAlwaysSplit),
        Technique::smt(), Technique::oosi(CommPolicy::kAlwaysSplit)})
    points.push_back({t.name(), make_cfg(t), mix, opt});
  const auto results =
      harness::run_sweep(points, harness::SweepOptions::from_cli(cli));

  std::cout << "6 synthetic contexts on the asymmetric "
            << points[0].cfg.geometry_name() << " machine:\n\n";
  Table table({"technique", "IPC", "split instructions"});
  for (std::size_t i = 0; i < points.size(); ++i)
    table.add_row({points[i].label, Table::fmt(results[i].ipc()),
                   std::to_string(results[i].sim.split_instructions)});
  std::cout << table.to_text();
  std::cout << "\nSplit-issue (CCSI/OOSI) recovers issue slots the merge "
               "conflicts on the narrow clusters would otherwise waste.\n";
  return 0;
}
