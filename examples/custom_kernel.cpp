// Writing a kernel against the compiler IR: build a saturating 5-tap FIR
// filter, compile it with the full backend (BUG cluster assignment, list
// scheduling, register allocation), and run it single-threaded and as part
// of an SMT pair.
//
//   $ ./custom_kernel
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cc/compiler.hpp"
#include "sim/driver.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace vexsim;
using cc::Builder;
using cc::VReg;

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

Program build_fir(const MachineConfig& cfg) {
  constexpr int kN = 512;
  constexpr std::uint32_t kIn = 0x2000;
  constexpr std::uint32_t kOut = 0x6000;

  Builder b("fir5");
  const VReg in = b.movi(kIn);
  const VReg out = b.movi(kOut);
  const VReg i = b.fresh_global();
  b.assign_i(i, 0);

  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);
  const VReg p = b.alu(Opcode::kAdd, in, i);
  // 5 taps, constants 1-4-6-4-1 (binomial smoothing).
  const VReg x0 = b.load(Opcode::kLdw, p, 0, cc::kMemSpaceReadOnly);
  const VReg x1 = b.load(Opcode::kLdw, p, 4, cc::kMemSpaceReadOnly);
  const VReg x2 = b.load(Opcode::kLdw, p, 8, cc::kMemSpaceReadOnly);
  const VReg x3 = b.load(Opcode::kLdw, p, 12, cc::kMemSpaceReadOnly);
  const VReg x4 = b.load(Opcode::kLdw, p, 16, cc::kMemSpaceReadOnly);
  const VReg acc = b.alu(
      Opcode::kAdd,
      b.alu(Opcode::kAdd, x0, x4),
      b.alu(Opcode::kAdd, b.mpyi(b.alu(Opcode::kAdd, x1, x3), 4),
            b.mpyi(x2, 6)));
  // Saturate to 16 bits with min/max, then store.
  const VReg sat = b.alui(Opcode::kMin, b.alui(Opcode::kMax, acc, -32768),
                          32767);
  b.store(Opcode::kStw, b.alu(Opcode::kAdd, out, i), 0, sat);
  b.assign_alui(i, Opcode::kAdd, i, 4);
  const VReg more = b.cmpi_b(Opcode::kCmplt, i, kN * 4);
  b.branch(more, body);

  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();

  cc::CompileStats stats;
  Program prog = cc::compile(std::move(b).take(), cfg, &stats);
  std::cout << "compiled " << stats.instructions << " VLIW instructions ("
            << stats.operations << " ops, " << stats.copies_inserted
            << " inter-cluster copies, " << fmt2(stats.ops_per_instruction())
            << " ops/instr)\n";

  // Input: a noisy ramp.
  std::vector<std::uint32_t> words;
  for (int k = 0; k < kN + 8; ++k)
    words.push_back(static_cast<std::uint32_t>(k * 3 + ((k * 37) % 11)));
  prog.add_data_words(kIn, words);
  prog.finalize();
  return prog;
}

}  // namespace

int main() {
  const MachineConfig cfg = MachineConfig::paper_single();
  auto prog = std::make_shared<const Program>(build_fir(cfg));

  // Solo run.
  {
    DriverParams params;
    params.budget = 1'000'000;
    params.respawn = false;
    params.max_cycles = 10'000'000;
    MultiprogramDriver driver(cfg, {prog}, params);
    const RunResult r = driver.run();
    std::cout << "solo: " << r.sim.cycles << " cycles, IPC " << fmt2(r.ipc())
              << "\n";
    // Spot-check the filter output: out[0] = x0 + 4*x1 + 6*x2 + 4*x3 + x4.
    const auto& inst = driver.instance(0);
    std::cout << "out[0] = " << static_cast<std::int32_t>(
                     inst.mem.peek_u32(0x6000))
              << "\n";
  }

  // Paired with a low-ILP thread under CCSI AS: the FIR's leftover slots
  // absorb the second thread almost for free.
  {
    const MachineConfig smt_cfg =
        MachineConfig::paper(2, Technique::ccsi(CommPolicy::kAlwaysSplit));
    DriverParams params;
    params.budget = 60'000;
    params.timeslice = 50'000;
    params.max_cycles = 10'000'000;
    auto gsm = wl::make_benchmark("gsmencode", smt_cfg, 0.05);
    MultiprogramDriver driver(smt_cfg, {prog, gsm}, params);
    const RunResult r = driver.run();
    std::cout << "paired with gsmencode (CCSI AS): IPC " << fmt2(r.ipc())
              << ", split instructions " << r.sim.split_instructions << "\n";
  }
  return 0;
}
