// Split-issue walkthrough: replays the paper's Figure 6 scenario (CSMT vs
// CCSI) cycle by cycle, printing each execution packet so the merge
// decisions are visible.
//
//   $ ./split_issue_demo
#include <iostream>
#include <memory>

#include "arch/thread_context.hpp"
#include "sim/simulator.hpp"
#include "vasm/assembler.hpp"

namespace {

using namespace vexsim;

// Figure 6's structure: T0's first instruction uses only cluster 0; T1's
// uses both clusters; without split-issue nothing merges (4 cycles), with
// cluster-level split-issue the bundles interleave (3 cycles).
const char* kT0 =
    "c0 add r1 = r2, r3 ; c0 ldw r4 = 0x200[r0]\n"
    "c0 shl r5 = r6, 1 ; c0 sub r7 = r8, r9 ; "
    "c1 mpyl r1 = r2, r3 ; c1 xor r4 = r5, r6\n";

const char* kT1 =
    "c0 mpyl r1 = r2, r3 ; c0 shl r4 = r5, 2 ; "
    "c1 sub r6 = r7, r8 ; c1 stw 0x200[r0] = r1\n"
    "c1 mov r2 = r3 ; c1 add r4 = r5, r6\n";

MachineConfig demo_machine(Technique t) {
  MachineConfig cfg;
  cfg.clusters = 2;
  cfg.cluster.issue_slots = 3;
  cfg.cluster.alus = 3;
  cfg.cluster.muls = 3;
  cfg.cluster.mem_units = 3;
  cfg.hw_threads = 2;
  cfg.technique = t;
  cfg.cluster_renaming = false;  // identity placement, as in the figure
  cfg.icache.perfect = true;
  cfg.dcache.perfect = true;
  cfg.validate();
  return cfg;
}

void run(Technique t) {
  std::cout << "=== " << t.name() << " ===\n";
  Simulator sim(demo_machine(t));
  auto p0 = std::make_shared<const Program>(assemble(kT0, "t0"));
  auto p1 = std::make_shared<const Program>(assemble(kT1, "t1"));
  ThreadContext t0(0, p0), t1(1, p1);
  sim.attach(0, &t0);
  sim.attach(1, &t1);

  while (t0.state == RunState::kReady || t1.state == RunState::kReady) {
    sim.step();
    std::cout << "cycle " << sim.cycle() << ":\n";
    if (sim.last_packet().op_count() == 0) std::cout << "    (idle)\n";
    for (const SelectedOp& sel : sim.last_packet().ops)
      std::cout << "    T" << int(sel.hw_slot) << "  "
                << to_string(sel.op) << "\n";
    if (sim.cycle() > 20) break;
  }
  std::cout << "total cycles: " << sim.cycle()
            << ", split instructions: " << sim.stats().split_instructions
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Figure 6 walkthrough: two threads on a 2-cluster, "
               "3-issue-per-cluster machine.\n"
            << "Thread 0:\n"
            << to_string(assemble(kT0, "t0")) << "Thread 1:\n"
            << to_string(assemble(kT1, "t1")) << "\n";
  run(Technique::csmt());                           // 4 cycles
  run(Technique::ccsi(CommPolicy::kAlwaysSplit));   // 3 cycles
  std::cout << "CCSI reaches the same architectural state one cycle "
               "earlier by splitting instructions at cluster boundaries.\n";
  return 0;
}
