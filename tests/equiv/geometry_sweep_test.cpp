// Equivalence across machine geometries: the correctness property must hold
// for any cluster count / issue width, not just the paper machine.
#include <gtest/gtest.h>

#include "cc/compiler.hpp"
#include "cc/irgen.hpp"
#include "sim/driver.hpp"
#include "sim/reference.hpp"
#include "support/test_util.hpp"

namespace vexsim {
namespace {

struct Geometry {
  int clusters;
  int issue;
};

class GeometryEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(GeometryEquivalence, StateMatchesReference) {
  const auto [clusters, issue, seed] = GetParam();
  MachineConfig cfg;
  cfg.clusters = clusters;
  cfg.cluster.issue_slots = issue;
  cfg.cluster.alus = issue;
  cfg.cluster.muls = std::max(1, issue / 2);
  cfg.cluster.mem_units = 1;
  cfg.hw_threads = 2;
  cfg.icache.perfect = false;
  cfg.dcache.perfect = false;
  cfg.validate();

  const cc::GeneratedIr gen = cc::generate_ir(seed);
  Program compiled = cc::compile(gen.fn, cfg);
  compiled.add_data_words(gen.data_base, gen.init_words);
  compiled.finalize();
  auto prog = std::make_shared<const Program>(std::move(compiled));

  ThreadContext ref_ctx(0, prog);
  ReferenceInterpreter ref(cfg.clusters);
  const RefResult rr = ref.run(ref_ctx, 50'000'000);
  ASSERT_TRUE(rr.halted);
  const std::uint64_t expected = ref_ctx.arch_fingerprint(cfg.clusters);

  for (const Technique t :
       {Technique::csmt(), Technique::ccsi(CommPolicy::kAlwaysSplit),
        Technique::smt(), Technique::oosi(CommPolicy::kAlwaysSplit)}) {
    MachineConfig run_cfg = cfg;
    run_cfg.technique = t;
    run_cfg.validate();
    DriverParams params;
    params.respawn = false;
    params.budget = ~0ull;
    params.timeslice = 700;
    params.max_cycles = 50'000'000;
    MultiprogramDriver driver(run_cfg, {prog, prog}, params);
    const RunResult result = driver.run();
    for (const InstanceResult& inst : result.instances) {
      EXPECT_FALSE(inst.faulted) << t.name();
      EXPECT_EQ(inst.arch_fingerprint, expected)
          << t.name() << " on " << clusters << "x" << issue << " seed "
          << seed;
      EXPECT_EQ(inst.instructions, rr.instructions) << t.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryEquivalence,
    ::testing::Values(std::tuple{2, 2, 11ull}, std::tuple{2, 4, 12ull},
                      std::tuple{4, 2, 13ull}, std::tuple{4, 4, 14ull},
                      std::tuple{3, 3, 15ull}, std::tuple{8, 2, 16ull}));

}  // namespace
}  // namespace vexsim
