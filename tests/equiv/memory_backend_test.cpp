// Hierarchy-backend equivalence and determinism.
//
// The fixed backend's bit-identity to the seed simulator is pinned by the
// golden suites (tests/harness/golden_stats_test.cpp and the fig14 golden
// gate). This suite pins the *hierarchy* backend's internal consistency: the
// backend is only touched from execute_op/refill_slot, which run in the same
// order under the fused and reference engines, and only at access cycles,
// which fast_forward never changes — so its trajectories must be
// bit-identical across all engine toggles, for every technique and both
// symmetric and asymmetric geometries. Memory stats must be present (and
// equal) under the hierarchy backend and absent under fixed.
#include <gtest/gtest.h>

#include <string>

#include "harness/experiments.hpp"

namespace vexsim {
namespace {

harness::ExperimentOptions base_options() {
  harness::ExperimentOptions opt;
  opt.budget = 2'000;
  opt.timeslice = 1'500;
  opt.scale = 0.05;
  opt.mem_backend = MemBackendKind::kHierarchy;
  return opt;
}

// Memory-heavy mixes: a large-footprint chase (f-dial past the L1) plus a
// strided streamer, so MSHRs, the L2, and the DRAM banks all see traffic.
const char* kMixes[] = {
    "synth:i0.8-m0.4-s1-f512+synth:i0.8-m0.4-s2-f512+synth:i0.8-m0.4-s3",
    "synth:i0.3-m0.5-s4-f256-st256+synth:i0.3-m0.5-s5-f256-st64+"
    "synth:i0.3-m0.5-s6",
};

MachineConfig make_machine(bool asymmetric, int threads, Technique t,
                           const harness::ExperimentOptions& opt) {
  MachineConfig cfg = opt.machine(threads, t);
  if (asymmetric) {
    cfg.cluster_renaming = false;
    cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                             ClusterResourceConfig::for_issue_width(4),
                             ClusterResourceConfig::for_issue_width(2),
                             ClusterResourceConfig::for_issue_width(2)};
    cfg.validate();
  }
  return cfg;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.sim, b.sim) << label;
  EXPECT_EQ(a.icache, b.icache) << label;
  EXPECT_EQ(a.dcache, b.dcache) << label;
  EXPECT_EQ(a.memory, b.memory) << label;
  EXPECT_EQ(a.merge, b.merge) << label;
  ASSERT_EQ(a.instances.size(), b.instances.size()) << label;
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].arch_fingerprint,
              b.instances[i].arch_fingerprint)
        << label << " instance " << i;
    EXPECT_EQ(a.instances[i].instructions, b.instances[i].instructions)
        << label << " instance " << i;
  }
}

TEST(MemoryBackendEquivalence, FusedVsBaseAllTechniques) {
  for (const bool asymmetric : {false, true}) {
    for (const Technique& t : Technique::kAll) {
      harness::ExperimentOptions opt = base_options();
      const MachineConfig cfg = make_machine(asymmetric, 2, t, opt);
      opt.fused = false;
      const RunResult base = harness::run_workload_on(cfg, kMixes[0], opt);
      opt.fused = true;
      const RunResult fused = harness::run_workload_on(cfg, kMixes[0], opt);
      ASSERT_TRUE(base.memory.present);
      expect_identical(base, fused,
                       std::string(t.name()) + " " + cfg.geometry_name());
    }
  }
}

TEST(MemoryBackendEquivalence, FastForwardVsPureLoop) {
  // The fast_forward horizon is clamped by the backend's next in-flight
  // completion; skipping or stepping those idle cycles must not move a
  // single counter. Both mixes, both geometries.
  for (const bool asymmetric : {false, true}) {
    for (const char* mix : kMixes) {
      harness::ExperimentOptions opt = base_options();
      const MachineConfig cfg = make_machine(
          asymmetric, 4, Technique::ccsi(CommPolicy::kAlwaysSplit), opt);
      opt.fast_forward = true;
      const RunResult skipping = harness::run_workload_on(cfg, mix, opt);
      opt.fast_forward = false;
      const RunResult stepping = harness::run_workload_on(cfg, mix, opt);
      ASSERT_TRUE(skipping.memory.present);
      expect_identical(skipping, stepping,
                       std::string("ff-vs-loop ") + cfg.geometry_name() +
                           " " + mix);
    }
  }
}

TEST(MemoryBackendEquivalence, HierarchySeesTrafficFixedStaysSilent) {
  harness::ExperimentOptions opt = base_options();
  const MachineConfig hier =
      make_machine(false, 2, Technique::smt(), opt);
  const RunResult h = harness::run_workload_on(hier, kMixes[0], opt);
  ASSERT_TRUE(h.memory.present);
  // The f512 components overflow the 64 KB L1, so real misses reach the
  // MSHRs and DRAM.
  EXPECT_GT(h.memory.dmshr.allocations, 0u);
  EXPECT_GT(h.memory.dram.accesses(), 0u);
  EXPECT_GT(h.memory.dmshr.peak_occupancy, 0u);

  opt.mem_backend = MemBackendKind::kFixed;
  const MachineConfig fixed =
      make_machine(false, 2, Technique::smt(), opt);
  const RunResult f = harness::run_workload_on(fixed, kMixes[0], opt);
  EXPECT_FALSE(f.memory.present);
  EXPECT_GT(f.sim.cycles, 0u);
}

}  // namespace
}  // namespace vexsim
