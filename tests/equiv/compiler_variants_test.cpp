// End-to-end compiler-pipeline equivalence: every registered workload
// component (the twelve Figure-13 kernels plus synthetic specs), compiled
// with every pipeline variant, must produce architecturally identical
// results on the cycle-accurate simulator and the reference interpreter —
// and identical final memory across variants (register files legitimately
// differ between assignments; the stored results must not).
#include <gtest/gtest.h>

#include "cc/verifier.hpp"
#include "sim/reference.hpp"
#include "support/test_util.hpp"
#include "workloads/registry.hpp"
#include "workloads/workloads.hpp"

namespace vexsim {
namespace {

constexpr const char* kVariants[] = {"greedy", "cost", "greedy_swp",
                                     "cost_swp"};

MachineConfig equiv_cfg() {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.branch_on_cluster0_only = false;
  cfg.icache.perfect = true;
  cfg.dcache.perfect = true;
  return cfg;
}

// Runs one compiled program on both engines; returns the final memory
// fingerprint (checks sim-vs-reference architectural identity inside).
std::uint64_t run_both(const std::shared_ptr<const Program>& prog,
                       const MachineConfig& cfg, const std::string& what) {
  Simulator sim(cfg);
  ThreadContext sim_ctx(0, prog);
  sim.attach(0, &sim_ctx);
  EXPECT_TRUE(sim.run_to_halt(400'000'000ull)) << what;
  EXPECT_EQ(sim_ctx.state, RunState::kHalted) << what;

  ReferenceInterpreter ref(cfg.clusters);
  ThreadContext ref_ctx(0, prog);
  const RefResult rr = ref.run(ref_ctx, 2'000'000'000ull);
  EXPECT_TRUE(rr.halted) << what;
  EXPECT_EQ(sim_ctx.arch_fingerprint(cfg.clusters),
            ref_ctx.arch_fingerprint(cfg.clusters))
      << what;
  return sim_ctx.mem.fingerprint();
}

void check_component(const std::string& name, const MachineConfig& cfg) {
  std::uint64_t mem_fp = 0;
  bool first = true;
  for (const char* variant : kVariants) {
    const cc::CompilerOptions opt = cc::CompilerOptions::parse(variant);
    const auto prog = wl::make_benchmark(name, cfg, 0.02, opt);
    cc::verify_or_throw(*prog, cfg);
    const std::uint64_t fp =
        run_both(prog, cfg, name + "/" + variant);
    if (first) {
      mem_fp = fp;
      first = false;
    } else {
      EXPECT_EQ(fp, mem_fp) << name << " compiled with " << variant
                            << " stored different results";
    }
  }
}

TEST(CompilerVariants, AllRegistryKernelsAgree) {
  const MachineConfig cfg = equiv_cfg();
  for (const auto& info : wl::benchmark_registry())
    check_component(info.name, cfg);
}

TEST(CompilerVariants, PaperMixComponentsResolve) {
  // Every component of every Figure-13(b) mix is a registry kernel, so
  // AllRegistryKernelsAgree covers the full paper-mix space; this guards
  // the mapping itself.
  for (const wl::WorkloadSpec& spec : wl::paper_workloads())
    for (const std::string& component : spec.benchmarks)
      EXPECT_NO_THROW((void)wl::workload(component)) << spec.name;
}

TEST(CompilerVariants, SyntheticSpecsAgree) {
  const MachineConfig cfg = equiv_cfg();
  for (const char* spec :
       {"synth:i0.2-m0.3-b0.05-s3", "synth:i0.8-m0.2-s1",
        "synth:i0.5-m0.2-p0.7-s2", "synth:i0.9-m0.1-c0.2-s4"}) {
    check_component(spec, cfg);
  }
}

TEST(CompilerVariants, AsymmetricGeometryAgrees) {
  MachineConfig cfg = equiv_cfg();
  cfg.cluster_renaming = false;
  cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                           ClusterResourceConfig::for_issue_width(4),
                           ClusterResourceConfig::for_issue_width(2),
                           ClusterResourceConfig::for_issue_width(2)};
  cfg.validate();
  for (const char* name : {"idct", "synth:i0.6-m0.2-p0.6-s5"})
    check_component(name, cfg);
}

}  // namespace
}  // namespace vexsim
