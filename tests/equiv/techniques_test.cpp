// The paper's central correctness claim, machine-checked: split-issue (at
// either granularity, with either communication policy) never changes
// execution semantics. Every technique must drive every thread to exactly
// the architectural state the reference interpreter computes.
#include <gtest/gtest.h>

#include "cc/compiler.hpp"
#include "cc/irgen.hpp"
#include "sim/driver.hpp"
#include "sim/reference.hpp"
#include "support/test_util.hpp"

namespace vexsim {
namespace {

using cc::GeneratedIr;
using cc::generate_ir;

std::shared_ptr<const Program> build_program(std::uint64_t seed,
                                             const MachineConfig& cfg) {
  const GeneratedIr gen = generate_ir(seed);
  Program prog = cc::compile(gen.fn, cfg);
  prog.add_data_words(gen.data_base, gen.init_words);
  prog.finalize();
  return std::make_shared<const Program>(std::move(prog));
}

std::uint64_t reference_fingerprint(std::shared_ptr<const Program> prog,
                                    int clusters) {
  ThreadContext ctx(0, std::move(prog));
  ReferenceInterpreter ref(clusters);
  const RefResult r = ref.run(ctx, 50'000'000);
  EXPECT_TRUE(r.halted);
  return ctx.arch_fingerprint(clusters);
}

class TechniqueEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TechniqueEquivalence, AllTechniquesReachReferenceState) {
  const std::uint64_t seed = GetParam();
  // Four different programs sharing the machine.
  MachineConfig base = MachineConfig::paper(4, Technique::smt());
  base.branch_on_cluster0_only = false;
  std::vector<std::shared_ptr<const Program>> programs;
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 4; ++i) {
    programs.push_back(build_program(seed * 10 + static_cast<std::uint64_t>(i),
                                     base));
    expected.push_back(reference_fingerprint(programs.back(), base.clusters));
  }

  for (const Technique& t : Technique::kAll) {
    for (int threads : {2, 4}) {
      MachineConfig cfg = MachineConfig::paper(threads, t);
      cfg.branch_on_cluster0_only = false;
      DriverParams params;
      params.respawn = false;  // run each program exactly once
      params.budget = ~0ull;
      params.timeslice = 400;  // force context switches mid-run
      params.max_cycles = 50'000'000;
      params.seed = seed;
      MultiprogramDriver driver(cfg, programs, params);
      const RunResult result = driver.run();
      ASSERT_EQ(result.instances.size(), 4u);
      for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_FALSE(result.instances[i].faulted)
            << t.name() << " " << threads << "T seed " << seed;
        EXPECT_EQ(result.instances[i].arch_fingerprint, expected[i])
            << t.name() << " " << threads << "T program " << i << " seed "
            << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TechniqueEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(TechniqueEquivalenceExtra, RealCachesDoNotChangeResults) {
  // Timing features (cache misses, stalls) must never alter semantics.
  const std::uint64_t seed = 77;
  MachineConfig cfg =
      MachineConfig::paper(2, Technique::ccsi(CommPolicy::kAlwaysSplit));
  cfg.branch_on_cluster0_only = false;
  cfg.icache.perfect = false;
  cfg.dcache.perfect = false;
  std::vector<std::shared_ptr<const Program>> programs = {
      build_program(seed, cfg), build_program(seed + 1, cfg)};
  std::vector<std::uint64_t> expected = {
      reference_fingerprint(programs[0], cfg.clusters),
      reference_fingerprint(programs[1], cfg.clusters)};
  DriverParams params;
  params.respawn = false;
  params.budget = ~0ull;
  params.max_cycles = 50'000'000;
  MultiprogramDriver driver(cfg, programs, params);
  const RunResult result = driver.run();
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(result.instances[i].arch_fingerprint, expected[i]);
}

TEST(TechniqueEquivalenceExtra, RetiredInstructionCountsMatchReference) {
  const std::uint64_t seed = 31;
  MachineConfig cfg = MachineConfig::paper(2, Technique::oosi(CommPolicy::kAlwaysSplit));
  cfg.branch_on_cluster0_only = false;
  auto prog = build_program(seed, cfg);
  ThreadContext ref_ctx(0, prog);
  ReferenceInterpreter ref(cfg.clusters);
  const RefResult rr = ref.run(ref_ctx, 50'000'000);

  DriverParams params;
  params.respawn = false;
  params.budget = ~0ull;
  params.max_cycles = 50'000'000;
  MultiprogramDriver driver(cfg, {prog, prog}, params);
  const RunResult result = driver.run();
  for (const InstanceResult& inst : result.instances)
    EXPECT_EQ(inst.instructions, rr.instructions);
}

}  // namespace
}  // namespace vexsim
