// Fused-vs-base engine equivalence: the fused select+execute engine
// (set_fused, operations execute the moment their bundle wins selection)
// must be observationally indistinguishable from the reference packet
// engine (select fills an ExecPacket, a second walk executes it).
//
// Sweep: all eight techniques × {symmetric 4x4, asymmetric 8+4+2+2,
// configs/asym8422.conf} geometry × two synth: mixes, asserting bit-identical
// RunStats, cache-model hit/miss counters, merge-engine counters, retired
// work and architectural fingerprints between set_fused(true) and
// set_fused(false) runs of the same workload.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/experiments.hpp"
#include "mdes/machine.hpp"

namespace vexsim {
namespace {

// Small budgets: the full sweep is 8 techniques x 3 geometries x 2 mixes,
// each simulated twice. The short timeslice forces drains and context
// switches inside the budget, so the equivalence also covers those paths.
harness::ExperimentOptions base_options() {
  harness::ExperimentOptions opt;
  opt.budget = 2'000;
  opt.timeslice = 1'500;
  opt.scale = 0.05;
  return opt;
}

// Two mixes with different ILP/memory character; three contexts so 2T and
// 4T machines both multiplex more programs than hardware slots.
const char* kMixes[] = {
    "synth:i0.80-m0.20-b0.05-s1+synth:i0.80-m0.20-b0.05-s2+"
    "synth:i0.80-m0.20-b0.05-s3",
    "synth:i0.30-m0.40-b0.10-s4+synth:i0.30-m0.40-b0.10-s5+"
    "synth:i0.30-m0.40-b0.10-s6",
};

enum class Geometry { kSymmetric, kAsymmetric, kConfigFile };

MachineConfig make_machine(Geometry geom, int threads, Technique t) {
  if (geom == Geometry::kConfigFile) {
    harness::ExperimentOptions opt;
    opt.base_machine = std::make_shared<const MachineConfig>(
        mdes::load_machine(std::string(VEXSIM_SOURCE_DIR) +
                           "/configs/asym8422.conf"));
    return opt.machine(threads, t);
  }
  MachineConfig cfg = MachineConfig::paper(threads, t);
  if (geom == Geometry::kAsymmetric) {
    // Renaming is illegal on asymmetric machines (a bundle scheduled for the
    // wide cluster cannot run on a narrow one).
    cfg.cluster_renaming = false;
    cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                             ClusterResourceConfig::for_issue_width(4),
                             ClusterResourceConfig::for_issue_width(2),
                             ClusterResourceConfig::for_issue_width(2)};
  }
  cfg.validate();
  return cfg;
}

void expect_identical(const RunResult& base, const RunResult& fused,
                      const std::string& label) {
  EXPECT_EQ(base.sim, fused.sim) << label;
  EXPECT_EQ(base.icache, fused.icache) << label;
  EXPECT_EQ(base.dcache, fused.dcache) << label;
  EXPECT_EQ(base.merge, fused.merge) << label;
  ASSERT_EQ(base.instances.size(), fused.instances.size()) << label;
  for (std::size_t i = 0; i < base.instances.size(); ++i) {
    EXPECT_EQ(base.instances[i].arch_fingerprint,
              fused.instances[i].arch_fingerprint)
        << label << " instance " << i;
    EXPECT_EQ(base.instances[i].instructions, fused.instances[i].instructions)
        << label << " instance " << i;
    EXPECT_EQ(base.instances[i].faulted, fused.instances[i].faulted)
        << label << " instance " << i;
  }
}

class FusedEngineEquivalence : public ::testing::TestWithParam<Geometry> {};

TEST_P(FusedEngineEquivalence, AllTechniquesBitIdentical) {
  const Geometry geom = GetParam();
  for (const Technique& t : Technique::kAll) {
    const MachineConfig cfg = make_machine(geom, 2, t);
    for (const char* mix : kMixes) {
      harness::ExperimentOptions opt = base_options();
      opt.fused = false;
      const RunResult base = harness::run_workload_on(cfg, mix, opt);
      opt.fused = true;
      const RunResult fused = harness::run_workload_on(cfg, mix, opt);
      expect_identical(base, fused,
                       std::string(t.name()) + " " + cfg.geometry_name() +
                           " " + mix);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, FusedEngineEquivalence,
                         ::testing::Values(Geometry::kSymmetric,
                                           Geometry::kAsymmetric,
                                           Geometry::kConfigFile),
                         [](const auto& param) {
                           switch (param.param) {
                             case Geometry::kSymmetric: return "sym4x4";
                             case Geometry::kAsymmetric: return "asym8422";
                             default: return "configFile";
                           }
                         });

// Fast-forward off on both sides: the equivalence must hold for the pure
// cycle-by-cycle loop too (fusion and idle-cycle batching are independent
// toggles), covered on one technique per geometry to bound runtime.
TEST(FusedEngineEquivalenceExtra, PureLoopAlsoIdentical) {
  for (const Geometry geom :
       {Geometry::kSymmetric, Geometry::kAsymmetric}) {
    const MachineConfig cfg =
        make_machine(geom, 4, Technique::ccsi(CommPolicy::kAlwaysSplit));
    harness::ExperimentOptions opt = base_options();
    opt.fast_forward = false;
    opt.fused = false;
    const RunResult base = harness::run_workload_on(cfg, kMixes[0], opt);
    opt.fused = true;
    const RunResult fused = harness::run_workload_on(cfg, kMixes[0], opt);
    expect_identical(base, fused, "pure-loop " + cfg.geometry_name());
  }
}

// 4T on the config-file machine with the paper workload mix: the exact
// shape micro_sim_speed gates on, pinned here at test scale.
TEST(FusedEngineEquivalenceExtra, PaperMixFourThreads) {
  const MachineConfig cfg = make_machine(
      Geometry::kConfigFile, 4, Technique::oosi(CommPolicy::kNoSplit));
  harness::ExperimentOptions opt = base_options();
  opt.fused = false;
  const RunResult base = harness::run_workload_on(cfg, kMixes[1], opt);
  opt.fused = true;
  const RunResult fused = harness::run_workload_on(cfg, kMixes[1], opt);
  expect_identical(base, fused, "4T config-file");
}

}  // namespace
}  // namespace vexsim
