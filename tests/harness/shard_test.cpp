#include "harness/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/result_cache.hpp"
#include "harness/sweep.hpp"
#include "stats/json.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace vexsim::harness {
namespace {

// Runs `fn`, expecting a CheckError whose message contains every substring.
template <typename Fn>
void expect_check_error(Fn fn, const std::vector<std::string>& substrings) {
  try {
    fn();
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    for (const std::string& s : substrings)
      EXPECT_NE(msg.find(s), std::string::npos)
          << "message '" << msg << "' lacks '" << s << "'";
  }
}

ExperimentOptions tiny_options(std::uint64_t seed) {
  ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 2'000;
  opt.timeslice = 500;
  opt.seed = seed;
  return opt;
}

// A deterministic sweep: real configs and workloads (so fingerprints
// resolve) with synthetic results (no simulation needed to test the merge
// algebra).
std::vector<SweepPoint> test_points(std::size_t n) {
  std::vector<SweepPoint> points;
  for (std::size_t i = 0; i < n; ++i)
    points.push_back({"p" + std::to_string(i),
                      MachineConfig::paper(2, Technique::csmt()), "llmm",
                      tiny_options(100 + i)});
  return points;
}

std::vector<RunResult> test_results(std::size_t n) {
  std::vector<RunResult> results(n);
  for (std::size_t i = 0; i < n; ++i) {
    results[i].issue_width = 16;
    results[i].sim.cycles = 1'000 + i;
    results[i].sim.instructions_retired = 500 + i;
    results[i].sim.ops_issued = 900 + i;
  }
  return results;
}

// The shard document a `--shard i/N` bench run would emit for `indices`
// (defaulting to the round-robin owned slice).
Json make_shard_doc(const std::vector<SweepPoint>& points,
                    const std::vector<RunResult>& results,
                    const ShardSpec& shard,
                    const std::vector<std::size_t>* explicit_indices = nullptr,
                    bool partial = false) {
  const std::vector<ManifestEntry> manifest = build_manifest(points);
  std::vector<std::size_t> indices;
  if (explicit_indices != nullptr) {
    indices = *explicit_indices;
  } else {
    for (std::size_t i = 0; i < points.size(); ++i)
      if (shard.owns(i)) indices.push_back(i);
  }
  std::vector<Json> docs;
  for (const std::size_t i : indices)
    docs.push_back(sweep_point_json(points[i], results[i]));
  return sweep_shard_json("shard_test", shard, manifest, indices, docs,
                          partial);
}

TEST(ShardSpec, ParsesValidForms) {
  const ShardSpec one = ShardSpec::parse("1/1");
  EXPECT_EQ(one.index, 1);
  EXPECT_EQ(one.count, 1);
  EXPECT_TRUE(one.active);

  const ShardSpec mid = ShardSpec::parse("2/4");
  EXPECT_EQ(mid.index, 2);
  EXPECT_EQ(mid.count, 4);
  EXPECT_EQ(mid.str(), "2/4");
  EXPECT_EQ(mid.tag(), "2of4");

  const ShardSpec last = ShardSpec::parse("8/8");
  EXPECT_EQ(last.index, 8);
  EXPECT_EQ(last.count, 8);
}

TEST(ShardSpec, RejectsMalformedSpecs) {
  // Every malformed spelling must name the valid form and echo the input.
  for (const std::string& bad :
       {std::string("0/4"), std::string("5/4"), std::string("i/0"),
        std::string("1/0"), std::string("0/0"), std::string("abc"),
        std::string("2-4"), std::string(""), std::string("3/x"),
        std::string("-1/4"), std::string("1/2/3"), std::string("1.5/4")}) {
    expect_check_error([&] { (void)ShardSpec::parse(bad); },
                       {"--shard expects I/N", "1 <= I <= N", bad});
  }
}

TEST(ShardSpec, FromCliReadsAndValidatesTheFlag) {
  {
    const char* argv[] = {"bench"};
    const ShardSpec s = ShardSpec::from_cli(Cli(1, argv));
    EXPECT_FALSE(s.active);
    EXPECT_EQ(s.index, 1);
    EXPECT_EQ(s.count, 1);
  }
  {
    const char* argv[] = {"bench", "--shard", "3/4"};
    const ShardSpec s = ShardSpec::from_cli(Cli(3, argv));
    EXPECT_TRUE(s.active);
    EXPECT_EQ(s.index, 3);
    EXPECT_EQ(s.count, 4);
  }
  {
    const char* argv[] = {"bench", "--shard=1/1"};
    const ShardSpec s = ShardSpec::from_cli(Cli(2, argv));
    EXPECT_TRUE(s.active);  // explicit 1/1 still selects shard output
  }
  {
    // Bare `--shard` (no value) is malformed, not "shard everything".
    const char* argv[] = {"bench", "--shard"};
    expect_check_error([&] { (void)ShardSpec::from_cli(Cli(2, argv)); },
                       {"--shard expects I/N"});
  }
  {
    const char* argv[] = {"bench", "--shard", "9/4"};
    expect_check_error([&] { (void)ShardSpec::from_cli(Cli(3, argv)); },
                       {"--shard expects I/N", "9/4"});
  }
}

TEST(ShardSpec, OwnershipIsDisjointAndComplete) {
  for (int count = 1; count <= 5; ++count) {
    for (std::size_t i = 0; i < 23; ++i) {
      int owners = 0;
      for (int index = 1; index <= count; ++index)
        owners += ShardSpec{index, count, true}.owns(i) ? 1 : 0;
      EXPECT_EQ(owners, 1) << "index " << i << " under /" << count;
    }
    // Round-robin: shard 1 owns 0, N, 2N, ...
    EXPECT_TRUE((ShardSpec{1, count, true}.owns(0)));
    EXPECT_TRUE(
        (ShardSpec{1, count, true}.owns(static_cast<std::size_t>(count))));
  }
}

TEST(Manifest, CarriesFingerprintsAndNullsForUnresolvablePoints) {
  std::vector<SweepPoint> points = test_points(2);
  points.push_back({"broken", MachineConfig::paper(2, Technique::csmt()),
                    "no-such-mix", tiny_options(7)});
  const std::vector<ManifestEntry> manifest = build_manifest(points);
  ASSERT_EQ(manifest.size(), 3u);
  EXPECT_TRUE(manifest[0].cacheable);
  EXPECT_TRUE(manifest[1].cacheable);
  EXPECT_NE(manifest[0].fingerprint, manifest[1].fingerprint);
  EXPECT_FALSE(manifest[2].cacheable);

  // The shard document spells an uncacheable fingerprint as null, and the
  // merge still works (null == null across shards).
  const std::vector<RunResult> results = test_results(points.size());
  const Json a =
      make_shard_doc(points, results, ShardSpec{1, 2, true});
  const Json b =
      make_shard_doc(points, results, ShardSpec{2, 2, true});
  EXPECT_TRUE(
      a.at("manifest").at(2).at("fingerprint").is_null());
  const MergeOutcome merged = merge_shards({a, b}, {"a.json", "b.json"});
  EXPECT_TRUE(merged.complete);
}

TEST(MergeShards, DisjointShardsMergeByteIdenticalToSweepJson) {
  const std::vector<SweepPoint> points = test_points(5);
  const std::vector<RunResult> results = test_results(5);
  const std::string expected = sweep_json("shard_test", points, results).dump();

  for (int count : {1, 2, 4, 8}) {
    std::vector<Json> docs;
    std::vector<std::string> names;
    for (int i = 1; i <= count; ++i) {
      docs.push_back(
          make_shard_doc(points, results, ShardSpec{i, count, true}));
      names.push_back("shard" + std::to_string(i) + ".json");
    }
    const MergeOutcome out = merge_shards(docs, names);
    ASSERT_TRUE(out.complete) << count << " shards";
    EXPECT_EQ(out.total, 5u);
    EXPECT_EQ(out.merged.dump(), expected) << count << " shards";

    // Merge order must not matter.
    std::vector<Json> reversed(docs.rbegin(), docs.rend());
    std::vector<std::string> rnames(names.rbegin(), names.rend());
    const MergeOutcome rout = merge_shards(reversed, rnames);
    ASSERT_TRUE(rout.complete);
    EXPECT_EQ(rout.merged.dump(), expected);
  }
}

TEST(MergeShards, DedupesOverlappingIdenticalRecords) {
  const std::vector<SweepPoint> points = test_points(4);
  const std::vector<RunResult> results = test_results(4);
  // Shard 1 re-submits point 1 (owned by shard 2) with identical bytes.
  const std::vector<std::size_t> wide = {0, 1, 2};
  const Json a =
      make_shard_doc(points, results, ShardSpec{1, 2, true}, &wide);
  const Json b = make_shard_doc(points, results, ShardSpec{2, 2, true});
  const MergeOutcome out = merge_shards({a, b}, {"a.json", "b.json"});
  ASSERT_TRUE(out.complete);
  EXPECT_EQ(out.merged.dump(),
            sweep_json("shard_test", points, results).dump());
}

TEST(MergeShards, ConflictingRecordsAreAHardErrorNamingThePoint) {
  const std::vector<SweepPoint> points = test_points(3);
  const std::vector<RunResult> results = test_results(3);
  std::vector<RunResult> tampered = results;
  tampered[0].sim.cycles += 1;  // same fingerprint, different result bytes

  const std::vector<std::size_t> zero = {0};
  const Json a = make_shard_doc(points, results, ShardSpec{1, 2, true});
  const Json b =
      make_shard_doc(points, tampered, ShardSpec{2, 2, true}, &zero);
  expect_check_error(
      [&] { (void)merge_shards({a, b}, {"a.json", "b.json"}); },
      {"conflicting records for point #0", "'p0'", "byte-differing"});
}

TEST(MergeShards, MismatchedManifestsAreAHardError) {
  const std::vector<SweepPoint> points = test_points(3);
  std::vector<SweepPoint> other = points;
  other[1].opt.seed = 999;  // different sweep: fingerprint moves
  const std::vector<RunResult> results = test_results(3);

  const Json a = make_shard_doc(points, results, ShardSpec{1, 2, true});
  const Json b = make_shard_doc(other, results, ShardSpec{2, 2, true});
  expect_check_error(
      [&] { (void)merge_shards({a, b}, {"a.json", "b.json"}); },
      {"manifest mismatch at point #1", "different sweeps", "b.json"});
}

TEST(MergeShards, RefusesPartialCheckpointsAndMixedCounts) {
  const std::vector<SweepPoint> points = test_points(4);
  const std::vector<RunResult> results = test_results(4);

  const Json partial = make_shard_doc(points, results, ShardSpec{1, 2, true},
                                      nullptr, /*partial=*/true);
  const Json full2 = make_shard_doc(points, results, ShardSpec{2, 2, true});
  expect_check_error(
      [&] { (void)merge_shards({partial, full2}, {"a.json", "b.json"}); },
      {"a.json", "partial mid-run checkpoint"});

  const Json full1of2 = make_shard_doc(points, results, ShardSpec{1, 2, true});
  const Json full1of3 = make_shard_doc(points, results, ShardSpec{1, 3, true});
  expect_check_error(
      [&] { (void)merge_shards({full1of2, full1of3}, {"a.json", "b.json"}); },
      {"b.json", "sharded 3 ways, expected 2"});
}

TEST(MergeShards, MissingShardsYieldAResumeManifest) {
  const std::vector<SweepPoint> points = test_points(5);
  const std::vector<RunResult> results = test_results(5);
  // Only shard 2/2 present: points 1 and 3 covered, 0/2/4 missing.
  const Json b = make_shard_doc(points, results, ShardSpec{2, 2, true});
  const MergeOutcome out = merge_shards({b}, {"b.json"});
  EXPECT_FALSE(out.complete);
  EXPECT_EQ(out.present, 2u);
  EXPECT_EQ(out.total, 5u);

  const Json& resume = out.resume;
  EXPECT_TRUE(resume.at("resume").as_bool());
  EXPECT_EQ(resume.at("shard_count").as_uint64(), 2u);
  EXPECT_EQ(resume.at("present").as_uint64(), 2u);
  const Json& missing = resume.at("missing");
  ASSERT_EQ(missing.size(), 3u);
  const std::vector<ManifestEntry> manifest = build_manifest(points);
  const std::size_t expected_index[] = {0, 2, 4};
  for (std::size_t k = 0; k < 3; ++k) {
    const Json& row = missing.at(k);
    EXPECT_EQ(row.at("index").as_uint64(), expected_index[k]);
    EXPECT_EQ(row.at("shard").as_uint64(), 1u);  // all gaps owned by shard 1
    EXPECT_EQ(row.at("label").as_string(),
              "p" + std::to_string(expected_index[k]));
    EXPECT_EQ(row.at("fingerprint").as_string(),
              fingerprint_hex(manifest[expected_index[k]].fingerprint));
  }
}

TEST(MergeShards, DseShardsMergeByteIdenticalToDseReport) {
  // Minimal hand-built DSE shard pair: the merged report must equal the
  // dse_report() a one-process vexplore run would emit from the same
  // per-point documents and bucket labels.
  Json header = Json::object();
  header.set("experiment", "vexplore")
      .set("seed", std::uint64_t{7})
      .set("accepted", std::uint64_t{3});
  const std::vector<std::string> axes = {"clusters"};

  std::vector<Json> point_docs;
  std::vector<std::vector<std::string>> buckets;
  for (std::uint64_t i = 0; i < 3; ++i) {
    Json d = Json::object();
    d.set("label", "p" + std::to_string(i))  // matches the manifest labels
        .set("total_issue", 16u + i)
        .set("cycles", 5'000 - 100 * i)
        .set("instructions", std::uint64_t{2'000})
        .set("ipc", 0.5 + 0.125 * static_cast<double>(i));
    point_docs.push_back(std::move(d));
    buckets.push_back({i < 2 ? "2" : "4"});
  }
  const std::string expected =
      dse_report(header, axes, point_docs, buckets).dump();

  const std::vector<SweepPoint> points = test_points(3);
  const std::vector<ManifestEntry> manifest = build_manifest(points);
  const auto dse_doc = [&](const ShardSpec& shard) {
    std::vector<std::size_t> indices;
    std::vector<Json> mine;
    std::vector<std::vector<std::string>> mine_buckets;
    for (std::size_t i = 0; i < 3; ++i) {
      if (!shard.owns(i)) continue;
      indices.push_back(i);
      mine.push_back(point_docs[i]);
      mine_buckets.push_back(buckets[i]);
    }
    return dse_shard_json("vexplore", shard, header, axes, manifest, indices,
                          mine, mine_buckets, false);
  };
  const MergeOutcome out =
      merge_shards({dse_doc(ShardSpec{1, 2, true}),
                    dse_doc(ShardSpec{2, 2, true})},
                   {"a.json", "b.json"});
  ASSERT_TRUE(out.complete);
  EXPECT_EQ(out.merged.dump(), expected);
}

}  // namespace
}  // namespace vexsim::harness
