// Golden-stats regression suite: the exact statistics and architectural
// fingerprints of small multiprogrammed runs, frozen from the pre-refactor
// (seed) simulator. Any hot-path change — decode cache, fast path, merge
// rewrite — must reproduce these numbers bit-for-bit; a diff here means the
// "optimization" changed machine behaviour, not just wall-clock time.
//
// The hhhh row was regenerated in the pass-pipeline PR: the cluster
// assigner's branch-condition clone used to be materialized at the block
// end and re-read operands *after* interleaving redefinitions, which made
// x264's new-best branch compare against the already-updated minimum (the
// running-best record was never written). Cloning at the defining compare
// fixes the predicate and changes x264's code, so every x264-carrying
// workload shifted; the other rows are untouched.
//
// Regenerating: only when a PR *intentionally* changes cycle-level
// semantics. Print the new values with harness::run_workload at the options
// below and update the table together with the checked-in
// tests/golden/*.golden.json files and an explanation in the PR.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "harness/experiments.hpp"

namespace vexsim {
namespace {

harness::ExperimentOptions golden_options() {
  harness::ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 3'000;
  opt.timeslice = 1'000;
  opt.seed = 42;
  return opt;
}

struct GoldenPoint {
  const char* workload;
  int threads;
  Technique technique;
  std::uint64_t cycles;
  std::uint64_t ops_issued;
  std::uint64_t instructions_retired;
  std::uint64_t split_instructions;
  std::uint64_t vertical_waste_cycles;
  std::array<std::uint64_t, 4> fingerprints;
};

// Values produced by the seed simulator (PR 2 tree) at golden_options().
const GoldenPoint kGolden[] = {
    {"llmm", 2, Technique::csmt(), 4009ull, 7311ull, 4501ull, 0ull, 485ull,
     {0x37395bef7e741f3full, 0xc9ac55fe60db08ffull, 0xf667c22bfbc6ae3dull,
      0x4e540a076aabab32ull}},
    {"llmm", 4, Technique::ccsi(CommPolicy::kAlwaysSplit), 5703ull, 19780ull,
     10346ull, 2026ull, 142ull,
     {0xb2a2c73068d953baull, 0xbbd33edc5dddf249ull, 0xdfca74e77637cf5bull,
      0x2d036bf686561058ull}},
    {"lmhh", 4, Technique::ccsi(CommPolicy::kNoSplit), 6462ull, 33474ull,
     9070ull, 763ull, 184ull,
     {0x37395bef7e741f3full, 0x28d49fc09892671aull, 0x36225787ba1a5b1full,
      0xa7e8bc176adf1f56ull}},
    {"hhhh", 4, Technique::oosi(CommPolicy::kAlwaysSplit), 6142ull, 61340ull,
     9789ull, 4148ull, 546ull,
     {0x357178492c3bffc9ull, 0x84da2e676ff145ccull, 0x7eeb60a2907bed19ull,
      0x2929793fda9ccf3eull}},
    {"mmmm", 4, Technique::smt(), 3789ull, 23987ull, 11046ull, 0ull, 212ull,
     {0xdfca74e77637cf5bull, 0x81cc298f9a0cfe34ull, 0x937bcdc09e09cd20ull,
      0x2d036bf686561058ull}},
};

TEST(GoldenStats, SeedTrajectoriesReproduceBitExactly) {
  for (const GoldenPoint& g : kGolden) {
    const std::string what =
        std::string(g.workload) + "/" + g.technique.name() + "/" +
        std::to_string(g.threads) + "T";
    const RunResult r =
        harness::run_workload(g.workload, g.threads, g.technique,
                              golden_options());
    EXPECT_EQ(r.sim.cycles, g.cycles) << what;
    EXPECT_EQ(r.sim.ops_issued, g.ops_issued) << what;
    EXPECT_EQ(r.sim.instructions_retired, g.instructions_retired) << what;
    EXPECT_EQ(r.sim.split_instructions, g.split_instructions) << what;
    EXPECT_EQ(r.sim.vertical_waste_cycles, g.vertical_waste_cycles) << what;
    ASSERT_EQ(r.instances.size(), g.fingerprints.size()) << what;
    for (std::size_t i = 0; i < g.fingerprints.size(); ++i)
      EXPECT_EQ(r.instances[i].arch_fingerprint, g.fingerprints[i])
          << what << "/" << i;
  }
}

TEST(GoldenStats, FastForwardOffMatchesTheSameGolden) {
  // The golden table holds with the fast path disabled too — the two cycle
  // engines are the same machine.
  for (const GoldenPoint& g : kGolden) {
    harness::ExperimentOptions opt = golden_options();
    opt.fast_forward = false;
    const RunResult r =
        harness::run_workload(g.workload, g.threads, g.technique, opt);
    EXPECT_EQ(r.sim.cycles, g.cycles) << g.workload;
    EXPECT_EQ(r.sim.ops_issued, g.ops_issued) << g.workload;
  }
}

}  // namespace
}  // namespace vexsim
