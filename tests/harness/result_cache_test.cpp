#include "harness/result_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "stats/json.hpp"
#include "util/check.hpp"

namespace vexsim::harness {
namespace {

ExperimentOptions tiny_options() {
  ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 2'000;
  opt.timeslice = 500;
  opt.seed = 7;
  return opt;
}

// Fresh per-test cache directory under the gtest scratch area.
std::string fresh_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/vexsim_result_cache_" + tag;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  os << text;
}

TEST(PointFingerprint, StableAndSensitiveToEveryAxis) {
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const ExperimentOptions opt = tiny_options();
  const std::uint64_t base = point_fingerprint(cfg, "llmm", opt);
  EXPECT_EQ(base, point_fingerprint(cfg, "llmm", opt));

  // Any behaviour-affecting change must move the key.
  ExperimentOptions seed = opt;
  seed.seed = 8;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", seed));
  ExperimentOptions scale = opt;
  scale.scale = 0.1;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", scale));
  ExperimentOptions budget = opt;
  budget.budget += 1;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", budget));

  EXPECT_NE(base, point_fingerprint(cfg, "llhh", opt));
  EXPECT_NE(base,
            point_fingerprint(MachineConfig::paper(4, Technique::csmt()),
                              "llmm", opt));
  EXPECT_NE(base,
            point_fingerprint(
                MachineConfig::paper(2, Technique::ccsi(CommPolicy::kNoSplit)),
                "llmm", opt));
  MachineConfig renamed = cfg;
  renamed.cluster_renaming = false;
  EXPECT_NE(base, point_fingerprint(renamed, "llmm", opt));
  MachineConfig asym = cfg;
  asym.cluster_overrides.assign(static_cast<std::size_t>(asym.clusters),
                                asym.cluster);
  asym.cluster_overrides[0].issue_slots = 8;
  asym.cluster_overrides[0].alus = 8;
  EXPECT_NE(base, point_fingerprint(asym, "llmm", opt));
}

TEST(PointFingerprint, CanonicalizesSynthSpecSpelling) {
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const ExperimentOptions opt = tiny_options();
  // Field order and defaulted fields don't change the resolved program.
  EXPECT_EQ(point_fingerprint(cfg, "synth:i0.8-m0.3", opt),
            point_fingerprint(cfg, "synth:m0.3-i0.8", opt));
  EXPECT_EQ(point_fingerprint(cfg, "synth:i0.5-m0.1-b0-c0-n64-s1", opt),
            point_fingerprint(cfg, "synth:i0.5", opt));
  // A changed dial does.
  EXPECT_NE(point_fingerprint(cfg, "synth:i0.8-m0.3", opt),
            point_fingerprint(cfg, "synth:i0.8-m0.4", opt));
}

TEST(PointFingerprint, UnknownWorkloadThrows) {
  EXPECT_THROW((void)point_fingerprint(
                   MachineConfig::paper(2, Technique::csmt()), "no-such-mix",
                   tiny_options()),
               CheckError);
}

TEST(ResultCache, StoreLoadRoundTripsEveryField) {
  const ResultCache cache(fresh_dir("roundtrip"));
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const ExperimentOptions opt = tiny_options();
  RunResult fresh = run_workload_on(cfg, "llmm", opt);
  fresh.attempts = 2;  // provenance must round-trip too
  const std::uint64_t key = point_fingerprint(cfg, "llmm", opt);

  EXPECT_FALSE(cache.load(key).has_value());  // cold cache: miss
  cache.store(key, "llmm", fresh);
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->cached);
  EXPECT_TRUE(loaded->cache_hit);
  EXPECT_EQ(loaded->attempts, 2);
  EXPECT_FALSE(loaded->failed);

  EXPECT_EQ(loaded->issue_width, fresh.issue_width);
  EXPECT_EQ(loaded->sim.cycles, fresh.sim.cycles);
  EXPECT_EQ(loaded->sim.ops_issued, fresh.sim.ops_issued);
  EXPECT_EQ(loaded->sim.instructions_retired, fresh.sim.instructions_retired);
  EXPECT_EQ(loaded->sim.split_instructions, fresh.sim.split_instructions);
  EXPECT_EQ(loaded->sim.vertical_waste_cycles, fresh.sim.vertical_waste_cycles);
  EXPECT_EQ(loaded->sim.multi_thread_cycles, fresh.sim.multi_thread_cycles);
  EXPECT_EQ(loaded->sim.memport_stall_cycles, fresh.sim.memport_stall_cycles);
  EXPECT_EQ(loaded->sim.drain_cycles, fresh.sim.drain_cycles);
  EXPECT_EQ(loaded->sim.taken_branches, fresh.sim.taken_branches);
  EXPECT_EQ(loaded->sim.faults, fresh.sim.faults);
  EXPECT_EQ(loaded->icache.hits, fresh.icache.hits);
  EXPECT_EQ(loaded->icache.misses, fresh.icache.misses);
  EXPECT_EQ(loaded->dcache.hits, fresh.dcache.hits);
  EXPECT_EQ(loaded->dcache.misses, fresh.dcache.misses);
  EXPECT_EQ(loaded->merge.full_selections, fresh.merge.full_selections);
  EXPECT_EQ(loaded->merge.partial_selections, fresh.merge.partial_selections);
  EXPECT_EQ(loaded->merge.blocked_selections, fresh.merge.blocked_selections);
  EXPECT_EQ(loaded->merge.comm_nosplit_forced, fresh.merge.comm_nosplit_forced);
  ASSERT_EQ(loaded->instances.size(), fresh.instances.size());
  for (std::size_t i = 0; i < fresh.instances.size(); ++i) {
    const InstanceResult& a = fresh.instances[i];
    const InstanceResult& b = loaded->instances[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.instructions, a.instructions);
    EXPECT_EQ(b.respawns, a.respawns);
    EXPECT_EQ(b.arch_fingerprint, a.arch_fingerprint);
    EXPECT_EQ(b.faulted, a.faulted);
    EXPECT_EQ(b.counters.instructions, a.counters.instructions);
    EXPECT_EQ(b.counters.ops, a.counters.ops);
    EXPECT_EQ(b.counters.taken_branches, a.counters.taken_branches);
    EXPECT_EQ(b.counters.split_instructions, a.counters.split_instructions);
    EXPECT_EQ(b.counters.dmiss_block_cycles, a.counters.dmiss_block_cycles);
    EXPECT_EQ(b.counters.imiss_block_cycles, a.counters.imiss_block_cycles);
  }
}

TEST(ResultCache, CorruptAndStaleRecordsAreMisses) {
  const ResultCache cache(fresh_dir("corrupt"));
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const ExperimentOptions opt = tiny_options();
  const RunResult fresh = run_workload_on(cfg, "llmm", opt);
  const std::uint64_t key = point_fingerprint(cfg, "llmm", opt);
  cache.store(key, "llmm", fresh);
  const std::string path = cache.entry_path(key);
  const std::string good = read_file(path);

  // Truncated record.
  write_file(path, good.substr(0, good.size() / 2));
  EXPECT_FALSE(cache.load(key).has_value());

  // Arbitrary garbage.
  write_file(path, "not json at all {{{");
  EXPECT_FALSE(cache.load(key).has_value());

  // Valid JSON with a missing field.
  write_file(path, "{\n  \"version\": \"" + std::string(kSimVersionTag) +
                       "\"\n}\n");
  EXPECT_FALSE(cache.load(key).has_value());

  // Stale simulator version: parseable, complete, but from another engine.
  Json stale = Json::parse(good);
  stale.set("version", "vexsim-sim-pr2");
  write_file(path, stale.dump());
  EXPECT_FALSE(cache.load(key).has_value());

  // Key mismatch (record copied onto the wrong path).
  Json moved = Json::parse(good);
  moved.set("key", "0000000000000000");
  write_file(path, moved.dump());
  EXPECT_FALSE(cache.load(key).has_value());

  // The corrupt loads dropped the key from this instance's index; restoring
  // the record file restores the hit for a fresh instance (which re-reads
  // the on-disk index, where the append survives).
  write_file(path, good);
  EXPECT_FALSE(cache.probe(key));
  EXPECT_TRUE(ResultCache(cache.dir()).load(key).has_value());
}

TEST(ResultCache, RefusesToStoreFailedResults) {
  const ResultCache cache(fresh_dir("failed"));
  RunResult failed;
  failed.failed = true;
  failed.error = "timed out";
  EXPECT_THROW(cache.store(1, "llmm", failed), CheckError);
}

TEST(ResultCache, CreatesNestedDirectory) {
  const std::string dir = fresh_dir("nested") + "/a/b";
  const ResultCache cache(dir);
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  EXPECT_EQ(cache.dir(), dir);
}


TEST(PointFingerprint, CompilerOptionsNeverAlias) {
  // Satellite regression: a sweep point simulated under one compiler
  // variant must never serve a record produced under another — every
  // CompilerOptions field is part of the key.
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  ExperimentOptions opt = tiny_options();
  const std::uint64_t base = point_fingerprint(cfg, "llmm", opt);

  ExperimentOptions cost = opt;
  cost.compiler = cc::CompilerOptions::parse("cost");
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", cost));

  ExperimentOptions swp = opt;
  swp.compiler = cc::CompilerOptions::parse("greedy_swp");
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", swp));
  EXPECT_NE(point_fingerprint(cfg, "llmm", cost),
            point_fingerprint(cfg, "llmm", swp));

  ExperimentOptions tuned = opt;
  tuned.compiler.max_ii = 32;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", tuned));
  ExperimentOptions staged = opt;
  staged.compiler.max_stages = 4;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", staged));

  // Identical options reproduce the key.
  ExperimentOptions same = opt;
  same.compiler = cc::CompilerOptions::parse("greedy");
  EXPECT_EQ(base, point_fingerprint(cfg, "llmm", same));
}

TEST(PointFingerprint, SynthCompilerFieldMovesTheKey) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  const ExperimentOptions opt = tiny_options();
  EXPECT_NE(point_fingerprint(cfg, "synth:i0.8-s1", opt),
            point_fingerprint(cfg, "synth:i0.8-s1-cccost", opt));
}

TEST(ResultCache, RoundTripsCompileSummary) {
  ResultCache cache(fresh_dir("compile_summary"));
  RunResult r;
  r.issue_width = 16;
  r.compile.instructions = 120;
  r.compile.operations = 480;
  r.compile.copies_inserted = 17;
  r.compile.swp_loops = 2;
  r.compile.present = true;
  cache.store(1234, "llmm", r);
  const auto loaded = cache.load(1234);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->compile.instructions, 120u);
  EXPECT_EQ(loaded->compile.operations, 480u);
  EXPECT_EQ(loaded->compile.copies_inserted, 17u);
  EXPECT_EQ(loaded->compile.swp_loops, 2u);
  EXPECT_TRUE(loaded->compile.present);
}

// A small valid (non-failed) result to populate caches with in the index
// tests; contents don't matter, only that store() accepts it and load()
// round-trips it.
RunResult synthetic_result(std::uint64_t cycles) {
  RunResult r;
  r.issue_width = 16;
  r.sim.cycles = cycles;
  r.sim.instructions_retired = cycles / 2;
  return r;
}

TEST(CacheIndex, FingerprintHexIsCanonical) {
  EXPECT_EQ(fingerprint_hex(0), "0000000000000000");
  EXPECT_EQ(fingerprint_hex(0xdeadbeefcafef00dull), "deadbeefcafef00d");
  EXPECT_EQ(fingerprint_hex(~0ull), "ffffffffffffffff");
}

TEST(CacheIndex, ParseSizeBytes) {
  EXPECT_EQ(parse_size_bytes("0"), 0u);
  EXPECT_EQ(parse_size_bytes("123"), 123u);
  EXPECT_EQ(parse_size_bytes("4K"), 4096u);
  EXPECT_EQ(parse_size_bytes("4k"), 4096u);
  EXPECT_EQ(parse_size_bytes("2M"), 2u * 1024 * 1024);
  EXPECT_EQ(parse_size_bytes("1G"), 1024u * 1024 * 1024);
  EXPECT_THROW((void)parse_size_bytes(""), CheckError);
  EXPECT_THROW((void)parse_size_bytes("true"), CheckError);  // bare flag
  EXPECT_THROW((void)parse_size_bytes("K"), CheckError);
  EXPECT_THROW((void)parse_size_bytes("12Q"), CheckError);
  EXPECT_THROW((void)parse_size_bytes("1.5M"), CheckError);
  EXPECT_THROW((void)parse_size_bytes("-1"), CheckError);
}

TEST(CacheIndex, ProbeAndIndexSizeTrackStores) {
  const ResultCache cache(fresh_dir("index_probe"));
  EXPECT_EQ(cache.index_size(), 0u);
  EXPECT_FALSE(cache.probe(42));
  cache.store(42, "llmm", synthetic_result(100));
  cache.store(43, "llmm", synthetic_result(200));
  EXPECT_TRUE(cache.probe(42));
  EXPECT_TRUE(cache.probe(43));
  EXPECT_FALSE(cache.probe(44));
  EXPECT_EQ(cache.index_size(), 2u);
  // Re-storing an existing key must not grow the index (or the file).
  cache.store(42, "llmm", synthetic_result(100));
  EXPECT_EQ(cache.index_size(), 2u);
}

TEST(CacheIndex, NewInstancePicksUpExistingIndex) {
  const std::string dir = fresh_dir("index_reload");
  {
    const ResultCache writer(dir);
    writer.store(7, "llmm", synthetic_result(700));
    writer.store(8, "llmm", synthetic_result(800));
  }
  const ResultCache reader(dir);
  EXPECT_EQ(reader.index_size(), 2u);
  const auto loaded = reader.load(7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sim.cycles, 700u);
}

TEST(CacheIndex, DeletedIndexIsRebuiltWithIdenticalHits) {
  const std::string dir = fresh_dir("index_rebuild");
  {
    const ResultCache writer(dir);
    for (std::uint64_t k = 1; k <= 20; ++k)
      writer.store(k, "llmm", synthetic_result(k * 10));
  }
  std::filesystem::remove(ResultCache(dir).index_path());
  ASSERT_FALSE(std::filesystem::exists(dir + "/cache.index"));

  const ResultCache rebuilt(dir);  // ctor rebuilds from the directory scan
  EXPECT_EQ(rebuilt.index_size(), 20u);
  EXPECT_TRUE(std::filesystem::exists(rebuilt.index_path()));
  for (std::uint64_t k = 1; k <= 20; ++k) {
    const auto loaded = rebuilt.load(k);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->sim.cycles, k * 10);
  }
}

TEST(CacheIndex, CorruptIndexIsRebuiltTransparently) {
  const std::string dir = fresh_dir("index_corrupt");
  {
    const ResultCache writer(dir);
    writer.store(5, "llmm", synthetic_result(500));
    writer.store(6, "llmm", synthetic_result(600));
  }
  const std::string index_path = dir + "/cache.index";

  // Garbage header.
  write_file(index_path, "not an index\n");
  EXPECT_EQ(ResultCache(dir).index_size(), 2u);

  // Torn trailing line (simulated crash mid-append).
  write_file(index_path,
             "vexsim-cache-index v1\n" + fingerprint_hex(5) +
                 " 0000000000000005.json\n" + fingerprint_hex(6).substr(0, 9));
  const ResultCache rebuilt(dir);
  EXPECT_EQ(rebuilt.index_size(), 2u);
  const auto loaded = rebuilt.load(6);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sim.cycles, 600u);

  // Stray non-record files must not be indexed by the rebuild.
  write_file(dir + "/notes.txt", "hello");
  write_file(dir + "/zzzz.json", "{}");
  std::filesystem::remove(index_path);
  EXPECT_EQ(ResultCache(dir).index_size(), 2u);
}

TEST(CacheIndex, CorruptRecordIsDroppedFromIndexOnLoad) {
  const ResultCache cache(fresh_dir("index_drop"));
  cache.store(9, "llmm", synthetic_result(900));
  EXPECT_TRUE(cache.probe(9));
  write_file(cache.entry_path(9), "garbage");
  EXPECT_FALSE(cache.load(9).has_value());
  EXPECT_FALSE(cache.probe(9));  // the bad entry is forgotten
}

TEST(CacheIndex, ConcurrentWritersLoseNoRecords) {
  // Two ResultCache instances (as two shard processes would have) store
  // disjoint key ranges into one directory concurrently. Every record and
  // every index line must survive: O_APPEND single-write appends interleave
  // whole lines. Runs under the TSan preset via the suite filter.
  const std::string dir = fresh_dir("index_concurrent");
  constexpr std::uint64_t kPerWriter = 200;
  const auto writer = [&dir](std::uint64_t base) {
    const ResultCache cache(dir);
    for (std::uint64_t i = 0; i < kPerWriter; ++i)
      cache.store(base + i, "llmm", synthetic_result(base + i));
  };
  std::thread a(writer, 1'000);
  std::thread b(writer, 2'000);
  a.join();
  b.join();

  const ResultCache reader(dir);
  EXPECT_EQ(reader.index_size(), 2 * kPerWriter);
  for (std::uint64_t base : {1'000ull, 2'000ull})
    for (std::uint64_t i = 0; i < kPerWriter; ++i) {
      const auto loaded = reader.load(base + i);
      ASSERT_TRUE(loaded.has_value());
      EXPECT_EQ(loaded->sim.cycles, base + i);
    }

  // The index file itself must be exactly one header plus one whole,
  // well-formed line per record — no torn interleavings.
  std::ifstream is(reader.index_path());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "vexsim-cache-index v1");
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ASSERT_EQ(line.size(), 16u + 1 + 21);
    EXPECT_EQ(line[16], ' ');
    ++lines;
  }
  EXPECT_EQ(lines, 2 * kPerWriter);
}

TEST(CacheGc, EvictsOldestUntilBudgetAndRewritesIndex) {
  const std::string dir = fresh_dir("gc_lru");
  const ResultCache cache(dir);
  for (std::uint64_t k = 1; k <= 4; ++k)
    cache.store(k, "llmm", synthetic_result(k));
  // Explicit mtimes make LRU order deterministic: keys 1 and 2 are oldest.
  namespace fs = std::filesystem;
  const auto now = fs::file_time_type::clock::now();
  using std::chrono::hours;
  fs::last_write_time(cache.entry_path(1), now - hours(4));
  fs::last_write_time(cache.entry_path(2), now - hours(3));
  fs::last_write_time(cache.entry_path(3), now - hours(2));
  fs::last_write_time(cache.entry_path(4), now - hours(1));

  const std::uint64_t per_record =
      static_cast<std::uint64_t>(fs::file_size(cache.entry_path(1)));
  const CacheGcStats stats = cache.gc(2 * per_record + per_record / 2);
  EXPECT_EQ(stats.records_before, 4u);
  EXPECT_EQ(stats.evicted, 2u);
  EXPECT_EQ(stats.records_after, 2u);
  EXPECT_LE(stats.bytes_after, 2 * per_record + per_record / 2);

  EXPECT_FALSE(cache.probe(1));
  EXPECT_FALSE(cache.probe(2));
  EXPECT_TRUE(cache.load(3).has_value());
  EXPECT_TRUE(cache.load(4).has_value());
  EXPECT_FALSE(fs::exists(cache.entry_path(1)));
  EXPECT_FALSE(fs::exists(cache.entry_path(2)));

  // A fresh instance reads a consistent rewritten index.
  const ResultCache reader(dir);
  EXPECT_EQ(reader.index_size(), 2u);
  EXPECT_TRUE(reader.load(4).has_value());
}

TEST(CacheGc, ZeroBudgetEmptiesTheCache) {
  const ResultCache cache(fresh_dir("gc_zero"));
  cache.store(1, "llmm", synthetic_result(1));
  cache.store(2, "llmm", synthetic_result(2));
  const CacheGcStats stats = cache.gc(0);
  EXPECT_EQ(stats.records_after, 0u);
  EXPECT_EQ(stats.bytes_after, 0u);
  EXPECT_EQ(cache.index_size(), 0u);
  // The directory and index stay usable.
  cache.store(3, "llmm", synthetic_result(3));
  EXPECT_TRUE(cache.load(3).has_value());
}

TEST(CacheGc, LargeBudgetEvictsNothing) {
  const ResultCache cache(fresh_dir("gc_noop"));
  cache.store(1, "llmm", synthetic_result(1));
  const CacheGcStats stats = cache.gc(1ull << 40);
  EXPECT_EQ(stats.evicted, 0u);
  EXPECT_EQ(stats.records_after, 1u);
  EXPECT_TRUE(cache.load(1).has_value());
}

TEST(CacheIndex, LoadUnindexedMatchesIndexedLoad) {
  const ResultCache cache(fresh_dir("index_bypass"));
  cache.store(11, "llmm", synthetic_result(1100));
  const auto indexed = cache.load(11);
  const auto direct = cache.load_unindexed(11);
  ASSERT_TRUE(indexed.has_value());
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(indexed->sim.cycles, direct->sim.cycles);
  EXPECT_EQ(indexed->sim.instructions_retired,
            direct->sim.instructions_retired);
  EXPECT_FALSE(cache.load_unindexed(12).has_value());
}

}  // namespace
}  // namespace vexsim::harness
