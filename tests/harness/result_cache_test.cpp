#include "harness/result_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "stats/json.hpp"
#include "util/check.hpp"

namespace vexsim::harness {
namespace {

ExperimentOptions tiny_options() {
  ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 2'000;
  opt.timeslice = 500;
  opt.seed = 7;
  return opt;
}

// Fresh per-test cache directory under the gtest scratch area.
std::string fresh_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/vexsim_result_cache_" + tag;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  os << text;
}

TEST(PointFingerprint, StableAndSensitiveToEveryAxis) {
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const ExperimentOptions opt = tiny_options();
  const std::uint64_t base = point_fingerprint(cfg, "llmm", opt);
  EXPECT_EQ(base, point_fingerprint(cfg, "llmm", opt));

  // Any behaviour-affecting change must move the key.
  ExperimentOptions seed = opt;
  seed.seed = 8;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", seed));
  ExperimentOptions scale = opt;
  scale.scale = 0.1;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", scale));
  ExperimentOptions budget = opt;
  budget.budget += 1;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", budget));

  EXPECT_NE(base, point_fingerprint(cfg, "llhh", opt));
  EXPECT_NE(base,
            point_fingerprint(MachineConfig::paper(4, Technique::csmt()),
                              "llmm", opt));
  EXPECT_NE(base,
            point_fingerprint(
                MachineConfig::paper(2, Technique::ccsi(CommPolicy::kNoSplit)),
                "llmm", opt));
  MachineConfig renamed = cfg;
  renamed.cluster_renaming = false;
  EXPECT_NE(base, point_fingerprint(renamed, "llmm", opt));
  MachineConfig asym = cfg;
  asym.cluster_overrides.assign(static_cast<std::size_t>(asym.clusters),
                                asym.cluster);
  asym.cluster_overrides[0].issue_slots = 8;
  asym.cluster_overrides[0].alus = 8;
  EXPECT_NE(base, point_fingerprint(asym, "llmm", opt));
}

TEST(PointFingerprint, CanonicalizesSynthSpecSpelling) {
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const ExperimentOptions opt = tiny_options();
  // Field order and defaulted fields don't change the resolved program.
  EXPECT_EQ(point_fingerprint(cfg, "synth:i0.8-m0.3", opt),
            point_fingerprint(cfg, "synth:m0.3-i0.8", opt));
  EXPECT_EQ(point_fingerprint(cfg, "synth:i0.5-m0.1-b0-c0-n64-s1", opt),
            point_fingerprint(cfg, "synth:i0.5", opt));
  // A changed dial does.
  EXPECT_NE(point_fingerprint(cfg, "synth:i0.8-m0.3", opt),
            point_fingerprint(cfg, "synth:i0.8-m0.4", opt));
}

TEST(PointFingerprint, UnknownWorkloadThrows) {
  EXPECT_THROW((void)point_fingerprint(
                   MachineConfig::paper(2, Technique::csmt()), "no-such-mix",
                   tiny_options()),
               CheckError);
}

TEST(ResultCache, StoreLoadRoundTripsEveryField) {
  const ResultCache cache(fresh_dir("roundtrip"));
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const ExperimentOptions opt = tiny_options();
  RunResult fresh = run_workload_on(cfg, "llmm", opt);
  fresh.attempts = 2;  // provenance must round-trip too
  const std::uint64_t key = point_fingerprint(cfg, "llmm", opt);

  EXPECT_FALSE(cache.load(key).has_value());  // cold cache: miss
  cache.store(key, "llmm", fresh);
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->cached);
  EXPECT_TRUE(loaded->cache_hit);
  EXPECT_EQ(loaded->attempts, 2);
  EXPECT_FALSE(loaded->failed);

  EXPECT_EQ(loaded->issue_width, fresh.issue_width);
  EXPECT_EQ(loaded->sim.cycles, fresh.sim.cycles);
  EXPECT_EQ(loaded->sim.ops_issued, fresh.sim.ops_issued);
  EXPECT_EQ(loaded->sim.instructions_retired, fresh.sim.instructions_retired);
  EXPECT_EQ(loaded->sim.split_instructions, fresh.sim.split_instructions);
  EXPECT_EQ(loaded->sim.vertical_waste_cycles, fresh.sim.vertical_waste_cycles);
  EXPECT_EQ(loaded->sim.multi_thread_cycles, fresh.sim.multi_thread_cycles);
  EXPECT_EQ(loaded->sim.memport_stall_cycles, fresh.sim.memport_stall_cycles);
  EXPECT_EQ(loaded->sim.drain_cycles, fresh.sim.drain_cycles);
  EXPECT_EQ(loaded->sim.taken_branches, fresh.sim.taken_branches);
  EXPECT_EQ(loaded->sim.faults, fresh.sim.faults);
  EXPECT_EQ(loaded->icache.hits, fresh.icache.hits);
  EXPECT_EQ(loaded->icache.misses, fresh.icache.misses);
  EXPECT_EQ(loaded->dcache.hits, fresh.dcache.hits);
  EXPECT_EQ(loaded->dcache.misses, fresh.dcache.misses);
  EXPECT_EQ(loaded->merge.full_selections, fresh.merge.full_selections);
  EXPECT_EQ(loaded->merge.partial_selections, fresh.merge.partial_selections);
  EXPECT_EQ(loaded->merge.blocked_selections, fresh.merge.blocked_selections);
  EXPECT_EQ(loaded->merge.comm_nosplit_forced, fresh.merge.comm_nosplit_forced);
  ASSERT_EQ(loaded->instances.size(), fresh.instances.size());
  for (std::size_t i = 0; i < fresh.instances.size(); ++i) {
    const InstanceResult& a = fresh.instances[i];
    const InstanceResult& b = loaded->instances[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.instructions, a.instructions);
    EXPECT_EQ(b.respawns, a.respawns);
    EXPECT_EQ(b.arch_fingerprint, a.arch_fingerprint);
    EXPECT_EQ(b.faulted, a.faulted);
    EXPECT_EQ(b.counters.instructions, a.counters.instructions);
    EXPECT_EQ(b.counters.ops, a.counters.ops);
    EXPECT_EQ(b.counters.taken_branches, a.counters.taken_branches);
    EXPECT_EQ(b.counters.split_instructions, a.counters.split_instructions);
    EXPECT_EQ(b.counters.dmiss_block_cycles, a.counters.dmiss_block_cycles);
    EXPECT_EQ(b.counters.imiss_block_cycles, a.counters.imiss_block_cycles);
  }
}

TEST(ResultCache, CorruptAndStaleRecordsAreMisses) {
  const ResultCache cache(fresh_dir("corrupt"));
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const ExperimentOptions opt = tiny_options();
  const RunResult fresh = run_workload_on(cfg, "llmm", opt);
  const std::uint64_t key = point_fingerprint(cfg, "llmm", opt);
  cache.store(key, "llmm", fresh);
  const std::string path = cache.entry_path(key);
  const std::string good = read_file(path);

  // Truncated record.
  write_file(path, good.substr(0, good.size() / 2));
  EXPECT_FALSE(cache.load(key).has_value());

  // Arbitrary garbage.
  write_file(path, "not json at all {{{");
  EXPECT_FALSE(cache.load(key).has_value());

  // Valid JSON with a missing field.
  write_file(path, "{\n  \"version\": \"" + std::string(kSimVersionTag) +
                       "\"\n}\n");
  EXPECT_FALSE(cache.load(key).has_value());

  // Stale simulator version: parseable, complete, but from another engine.
  Json stale = Json::parse(good);
  stale.set("version", "vexsim-sim-pr2");
  write_file(path, stale.dump());
  EXPECT_FALSE(cache.load(key).has_value());

  // Key mismatch (record copied onto the wrong path).
  Json moved = Json::parse(good);
  moved.set("key", "0000000000000000");
  write_file(path, moved.dump());
  EXPECT_FALSE(cache.load(key).has_value());

  // Restoring the original record restores the hit.
  write_file(path, good);
  EXPECT_TRUE(cache.load(key).has_value());
}

TEST(ResultCache, RefusesToStoreFailedResults) {
  const ResultCache cache(fresh_dir("failed"));
  RunResult failed;
  failed.failed = true;
  failed.error = "timed out";
  EXPECT_THROW(cache.store(1, "llmm", failed), CheckError);
}

TEST(ResultCache, CreatesNestedDirectory) {
  const std::string dir = fresh_dir("nested") + "/a/b";
  const ResultCache cache(dir);
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  EXPECT_EQ(cache.dir(), dir);
}


TEST(PointFingerprint, CompilerOptionsNeverAlias) {
  // Satellite regression: a sweep point simulated under one compiler
  // variant must never serve a record produced under another — every
  // CompilerOptions field is part of the key.
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  ExperimentOptions opt = tiny_options();
  const std::uint64_t base = point_fingerprint(cfg, "llmm", opt);

  ExperimentOptions cost = opt;
  cost.compiler = cc::CompilerOptions::parse("cost");
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", cost));

  ExperimentOptions swp = opt;
  swp.compiler = cc::CompilerOptions::parse("greedy_swp");
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", swp));
  EXPECT_NE(point_fingerprint(cfg, "llmm", cost),
            point_fingerprint(cfg, "llmm", swp));

  ExperimentOptions tuned = opt;
  tuned.compiler.max_ii = 32;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", tuned));
  ExperimentOptions staged = opt;
  staged.compiler.max_stages = 4;
  EXPECT_NE(base, point_fingerprint(cfg, "llmm", staged));

  // Identical options reproduce the key.
  ExperimentOptions same = opt;
  same.compiler = cc::CompilerOptions::parse("greedy");
  EXPECT_EQ(base, point_fingerprint(cfg, "llmm", same));
}

TEST(PointFingerprint, SynthCompilerFieldMovesTheKey) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  const ExperimentOptions opt = tiny_options();
  EXPECT_NE(point_fingerprint(cfg, "synth:i0.8-s1", opt),
            point_fingerprint(cfg, "synth:i0.8-s1-cccost", opt));
}

TEST(ResultCache, RoundTripsCompileSummary) {
  ResultCache cache(fresh_dir("compile_summary"));
  RunResult r;
  r.issue_width = 16;
  r.compile.instructions = 120;
  r.compile.operations = 480;
  r.compile.copies_inserted = 17;
  r.compile.swp_loops = 2;
  r.compile.present = true;
  cache.store(1234, "llmm", r);
  const auto loaded = cache.load(1234);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->compile.instructions, 120u);
  EXPECT_EQ(loaded->compile.operations, 480u);
  EXPECT_EQ(loaded->compile.copies_inserted, 17u);
  EXPECT_EQ(loaded->compile.swp_loops, 2u);
  EXPECT_TRUE(loaded->compile.present);
}

}  // namespace
}  // namespace vexsim::harness
