#include "harness/experiments.hpp"

#include <gtest/gtest.h>

namespace vexsim::harness {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Experiments, OptionsFromCliDefaults) {
  const auto opt = ExperimentOptions::from_cli(make_cli({}));
  EXPECT_EQ(opt.budget, 250'000u);
  EXPECT_EQ(opt.timeslice, 100'000u);
  EXPECT_EQ(opt.seed, 42u);
}

TEST(Experiments, PaperFlagRestoresPaperScale) {
  const auto opt = ExperimentOptions::from_cli(make_cli({"--paper"}));
  EXPECT_EQ(opt.budget, 200'000'000u);
  EXPECT_EQ(opt.timeslice, 5'000'000u);
  EXPECT_DOUBLE_EQ(opt.scale, 1.0);
}

TEST(Experiments, ExplicitFlagsOverride) {
  const auto opt = ExperimentOptions::from_cli(
      make_cli({"--quick", "--budget", "12345", "--seed=9"}));
  EXPECT_EQ(opt.budget, 12345u);
  EXPECT_EQ(opt.seed, 9u);
}

ExperimentOptions tiny() {
  ExperimentOptions opt;
  opt.scale = 0.02;
  opt.budget = 15'000;
  opt.timeslice = 8'000;
  opt.max_cycles = 20'000'000;
  return opt;
}

TEST(Experiments, RunSingleProducesSaneStats) {
  const RunResult r = run_single("djpeg", /*perfect=*/true, tiny());
  EXPECT_GT(r.ipc(), 0.5);
  EXPECT_EQ(r.issue_width, 16);
  EXPECT_EQ(r.instances.size(), 1u);
  EXPECT_GE(r.instances[0].instructions, tiny().budget);
}

TEST(Experiments, RunWorkloadUsesFourInstances) {
  const RunResult r = run_workload("mmmm", 2, Technique::csmt(), tiny());
  EXPECT_EQ(r.instances.size(), 4u);
  EXPECT_GT(r.sim.multi_thread_cycles, 0u);
}

TEST(Experiments, SplitIssueNeverLosesMuch) {
  // Split-issue may reorder contention but must not regress meaningfully:
  // a standing sanity check on the whole pipeline.
  const ExperimentOptions opt = tiny();
  for (const char* w : {"llmm", "mmhh"}) {
    const double csmt = run_workload(w, 4, Technique::csmt(), opt).ipc();
    const double ccsi =
        run_workload(w, 4, Technique::ccsi(CommPolicy::kAlwaysSplit), opt)
            .ipc();
    EXPECT_GT(ccsi, csmt * 0.98) << w;
    const double smt = run_workload(w, 4, Technique::smt(), opt).ipc();
    const double oosi =
        run_workload(w, 4, Technique::oosi(CommPolicy::kAlwaysSplit), opt)
            .ipc();
    EXPECT_GT(oosi, smt * 0.98) << w;
  }
}

TEST(Experiments, OperationMergingBeatsClusterMerging) {
  // SMT ≥ CSMT (operation-level merging is strictly more permissive).
  const ExperimentOptions opt = tiny();
  const double csmt = run_workload("llmm", 4, Technique::csmt(), opt).ipc();
  const double smt = run_workload("llmm", 4, Technique::smt(), opt).ipc();
  EXPECT_GE(smt, csmt * 0.99);
}

}  // namespace
}  // namespace vexsim::harness
