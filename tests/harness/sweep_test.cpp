#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace vexsim::harness {
namespace {

// Tiny budgets: the determinism property does not depend on run length.
ExperimentOptions tiny_options(std::uint64_t seed) {
  ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 2'000;
  opt.timeslice = 500;
  opt.seed = seed;
  return opt;
}

// Two workloads by three techniques, each point on its own derived stream.
std::vector<SweepPoint> sample_points(std::uint64_t base_seed) {
  std::vector<SweepPoint> points;
  std::uint64_t i = 0;
  for (const char* w : {"llll", "mmhh"}) {
    for (const Technique t : {Technique::csmt(), Technique::smt(),
                              Technique::ccsi(CommPolicy::kAlwaysSplit)}) {
      points.push_back({std::string(w) + "/" + t.name(),
                        MachineConfig::paper(2, t), w,
                        tiny_options(derive_seed(base_seed, i))});
      ++i;
    }
  }
  return points;
}

TEST(Sweep, ParallelBitIdenticalToSerialAcrossSeeds) {
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7},
                                   std::uint64_t{20100419}}) {
    const auto points = sample_points(seed);
    const auto serial = run_sweep(points, 1);
    const auto parallel = run_sweep(points, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].sim.cycles, parallel[i].sim.cycles) << i;
      EXPECT_EQ(serial[i].sim.ops_issued, parallel[i].sim.ops_issued) << i;
      EXPECT_EQ(serial[i].sim.instructions_retired,
                parallel[i].sim.instructions_retired)
          << i;
      ASSERT_EQ(serial[i].instances.size(), parallel[i].instances.size());
      for (std::size_t k = 0; k < serial[i].instances.size(); ++k)
        EXPECT_EQ(serial[i].instances[k].arch_fingerprint,
                  parallel[i].instances[k].arch_fingerprint)
            << i << "/" << k;
    }
    // The emitted trajectory document must be byte-identical too — this is
    // what the bench-level --jobs 1 vs --jobs 8 JSON comparison relies on.
    EXPECT_EQ(sweep_json("sweep_test", points, serial).dump(),
              sweep_json("sweep_test", points, parallel).dump());
  }
}

TEST(Sweep, SeedChangesResults) {
  const auto a = run_sweep(sample_points(1), 2);
  const auto b = run_sweep(sample_points(2), 2);
  // Different driver seeds reshuffle context switches; cycle counts of the
  // multithreaded runs should not all coincide.
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_differ |= a[i].sim.cycles != b[i].sim.cycles;
  EXPECT_TRUE(any_differ);
}

TEST(Sweep, DeriveSeedIsDeterministicAndDecorrelated) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(derive_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Sweep, ProgressReportingEveryNPoints) {
  const auto points = sample_points(5);  // six points
  std::ostringstream progress;
  SweepOptions opts;
  opts.jobs = 3;
  opts.progress_every = 2;
  opts.progress_stream = &progress;
  const auto results = run_sweep(points, opts);
  EXPECT_EQ(results.size(), points.size());
  const std::string text = progress.str();
  EXPECT_NE(text.find("sweep: 2/6 points"), std::string::npos) << text;
  EXPECT_NE(text.find("sweep: 4/6 points"), std::string::npos) << text;
  EXPECT_NE(text.find("sweep: 6/6 points"), std::string::npos) << text;
  // Every line is a counter multiple: nothing else is reported.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);

  // Progress reporting must not perturb the results.
  const auto quiet = run_sweep(points, 1);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].sim.cycles, quiet[i].sim.cycles) << i;

  // Disabled by default: nothing is written.
  std::ostringstream silent;
  SweepOptions off;
  off.jobs = 2;
  off.progress_stream = &silent;
  (void)run_sweep(points, off);
  EXPECT_TRUE(silent.str().empty());
}

TEST(Sweep, IncrementalFlushDeliversCompletePrefixes) {
  const auto points = sample_points(9);  // six points
  std::vector<std::size_t> prefixes;
  std::vector<std::string> partial_docs;
  SweepOptions opts;
  opts.jobs = 3;
  opts.flush_every = 2;
  opts.flush_fn = [&](const std::vector<RunResult>& partial,
                      std::size_t prefix) {
    prefixes.push_back(prefix);
    partial_docs.push_back(
        sweep_json_partial("flush_test", points, partial, prefix).dump());
  };
  const auto results = run_sweep(points, opts);
  ASSERT_EQ(results.size(), points.size());

  // Flushes fire at 2 and 4 completed points (6/6 is the caller's final
  // write, not a partial flush); prefixes never shrink.
  ASSERT_EQ(prefixes.size(), 2u);
  for (std::size_t i = 1; i < prefixes.size(); ++i)
    EXPECT_LE(prefixes[i - 1], prefixes[i]);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    EXPECT_LE(prefixes[i], points.size());
    EXPECT_NE(partial_docs[i].find("\"partial\": true"), std::string::npos);
    EXPECT_NE(partial_docs[i].find("\"points_total\": 6"), std::string::npos);
  }

  // A flushed prefix carries exactly the results the finished sweep reports.
  const std::string full =
      sweep_json_partial("flush_test", points, results, prefixes.back())
          .dump();
  EXPECT_EQ(partial_docs.back(), full);

  // Flushing must not perturb the results themselves.
  const auto quiet = run_sweep(points, 1);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].sim.cycles, quiet[i].sim.cycles) << i;
}

TEST(Sweep, FlushDisabledByDefault) {
  const auto points = sample_points(2);
  int calls = 0;
  SweepOptions opts;
  opts.jobs = 2;
  // flush_fn set but flush_every == 0: never called.
  opts.flush_fn = [&](const std::vector<RunResult>&, std::size_t) { ++calls; };
  (void)run_sweep(points, opts);
  EXPECT_EQ(calls, 0);
}

TEST(Sweep, JsonDefaultNameAndGeometryAxis) {
  const auto points = sample_points(4);
  const auto results = run_sweep(points, 2);
  const std::string text = sweep_json("t", points, results).dump();
  EXPECT_NE(text.find("\"geometry\": \"4x4\""), std::string::npos);
}

TEST(Sweep, RejectsNonPositiveJobs) {
  EXPECT_THROW((void)run_sweep({}, 0), CheckError);
  EXPECT_THROW((void)run_sweep({}, -3), CheckError);
  EXPECT_TRUE(run_sweep({}, 4).empty());
}

TEST(Sweep, WorkerExceptionsPropagate) {
  std::vector<SweepPoint> points = sample_points(1);
  points[1].workload = "no-such-mix";
  EXPECT_THROW((void)run_sweep(points, 4), CheckError);
  EXPECT_THROW((void)run_sweep(points, 1), CheckError);
}

TEST(Sweep, ResultForLooksUpByLabel) {
  const auto points = sample_points(1);
  const auto results = run_sweep(points, 2);
  EXPECT_EQ(&result_for(points, results, points[3].label), &results[3]);
  EXPECT_THROW((void)result_for(points, results, "no-such-label"), CheckError);
}

TEST(Sweep, JsonCarriesConfigurationAxes) {
  const auto points = sample_points(3);
  const auto results = run_sweep(points, 2);
  const Json doc = sweep_json("sweep_test", points, results);
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\"experiment\": \"sweep_test\""), std::string::npos);
  EXPECT_NE(text.find("\"workload\": \"llll\""), std::string::npos);
  EXPECT_NE(text.find("\"technique\": \"CCSI AS\""), std::string::npos);
  EXPECT_NE(text.find("\"ipc\":"), std::string::npos);
  EXPECT_NE(text.find("\"arch_fingerprint\":"), std::string::npos);
}

}  // namespace
}  // namespace vexsim::harness
