#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace vexsim::harness {
namespace {

// Tiny budgets: the determinism property does not depend on run length.
ExperimentOptions tiny_options(std::uint64_t seed) {
  ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 2'000;
  opt.timeslice = 500;
  opt.seed = seed;
  return opt;
}

// Two workloads by three techniques, each point on its own derived stream.
std::vector<SweepPoint> sample_points(std::uint64_t base_seed) {
  std::vector<SweepPoint> points;
  std::uint64_t i = 0;
  for (const char* w : {"llll", "mmhh"}) {
    for (const Technique t : {Technique::csmt(), Technique::smt(),
                              Technique::ccsi(CommPolicy::kAlwaysSplit)}) {
      points.push_back({std::string(w) + "/" + t.name(),
                        MachineConfig::paper(2, t), w,
                        tiny_options(derive_seed(base_seed, i))});
      ++i;
    }
  }
  return points;
}

TEST(Sweep, ParallelBitIdenticalToSerialAcrossSeeds) {
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7},
                                   std::uint64_t{20100419}}) {
    const auto points = sample_points(seed);
    const auto serial = run_sweep(points, 1);
    const auto parallel = run_sweep(points, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].sim.cycles, parallel[i].sim.cycles) << i;
      EXPECT_EQ(serial[i].sim.ops_issued, parallel[i].sim.ops_issued) << i;
      EXPECT_EQ(serial[i].sim.instructions_retired,
                parallel[i].sim.instructions_retired)
          << i;
      ASSERT_EQ(serial[i].instances.size(), parallel[i].instances.size());
      for (std::size_t k = 0; k < serial[i].instances.size(); ++k)
        EXPECT_EQ(serial[i].instances[k].arch_fingerprint,
                  parallel[i].instances[k].arch_fingerprint)
            << i << "/" << k;
    }
    // The emitted trajectory document must be byte-identical too — this is
    // what the bench-level --jobs 1 vs --jobs 8 JSON comparison relies on.
    EXPECT_EQ(sweep_json("sweep_test", points, serial).dump(),
              sweep_json("sweep_test", points, parallel).dump());
  }
}

TEST(Sweep, SeedChangesResults) {
  const auto a = run_sweep(sample_points(1), 2);
  const auto b = run_sweep(sample_points(2), 2);
  // Different driver seeds reshuffle context switches; cycle counts of the
  // multithreaded runs should not all coincide.
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_differ |= a[i].sim.cycles != b[i].sim.cycles;
  EXPECT_TRUE(any_differ);
}

TEST(Sweep, DeriveSeedIsDeterministicAndDecorrelated) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(derive_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Sweep, ProgressReportingEveryNPoints) {
  const auto points = sample_points(5);  // six points
  std::ostringstream progress;
  SweepOptions opts;
  opts.jobs = 3;
  opts.progress_every = 2;
  opts.progress_stream = &progress;
  const auto results = run_sweep(points, opts);
  EXPECT_EQ(results.size(), points.size());
  const std::string text = progress.str();
  EXPECT_NE(text.find("sweep: 2/6 points"), std::string::npos) << text;
  EXPECT_NE(text.find("sweep: 4/6 points"), std::string::npos) << text;
  EXPECT_NE(text.find("sweep: 6/6 points"), std::string::npos) << text;
  // Every line is a counter multiple: nothing else is reported.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);

  // Progress reporting must not perturb the results.
  const auto quiet = run_sweep(points, 1);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].sim.cycles, quiet[i].sim.cycles) << i;

  // Disabled by default: nothing is written.
  std::ostringstream silent;
  SweepOptions off;
  off.jobs = 2;
  off.progress_stream = &silent;
  (void)run_sweep(points, off);
  EXPECT_TRUE(silent.str().empty());
}

TEST(Sweep, IncrementalFlushDeliversCompletePrefixes) {
  const auto points = sample_points(9);  // six points
  std::vector<std::size_t> prefixes;
  std::vector<std::string> partial_docs;
  SweepOptions opts;
  opts.jobs = 3;
  opts.flush_every = 2;
  opts.flush_fn = [&](const std::vector<RunResult>& partial,
                      std::size_t prefix) {
    prefixes.push_back(prefix);
    partial_docs.push_back(
        sweep_json_partial("flush_test", points, partial, prefix).dump());
  };
  const auto results = run_sweep(points, opts);
  ASSERT_EQ(results.size(), points.size());

  // Flushes fire at 2 and 4 completed points (6/6 is the caller's final
  // write, not a partial flush); prefixes never shrink.
  ASSERT_EQ(prefixes.size(), 2u);
  for (std::size_t i = 1; i < prefixes.size(); ++i)
    EXPECT_LE(prefixes[i - 1], prefixes[i]);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    EXPECT_LE(prefixes[i], points.size());
    EXPECT_NE(partial_docs[i].find("\"partial\": true"), std::string::npos);
    EXPECT_NE(partial_docs[i].find("\"points_total\": 6"), std::string::npos);
  }

  // A flushed prefix carries exactly the results the finished sweep reports.
  const std::string full =
      sweep_json_partial("flush_test", points, results, prefixes.back())
          .dump();
  EXPECT_EQ(partial_docs.back(), full);

  // Flushing must not perturb the results themselves.
  const auto quiet = run_sweep(points, 1);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].sim.cycles, quiet[i].sim.cycles) << i;
}

TEST(Sweep, FlushDisabledByDefault) {
  const auto points = sample_points(2);
  int calls = 0;
  SweepOptions opts;
  opts.jobs = 2;
  // flush_fn set but flush_every == 0: never called.
  opts.flush_fn = [&](const std::vector<RunResult>&, std::size_t) { ++calls; };
  (void)run_sweep(points, opts);
  EXPECT_EQ(calls, 0);
}

TEST(Sweep, JsonDefaultNameAndGeometryAxis) {
  const auto points = sample_points(4);
  const auto results = run_sweep(points, 2);
  const std::string text = sweep_json("t", points, results).dump();
  EXPECT_NE(text.find("\"geometry\": \"4x4\""), std::string::npos);
}

TEST(Sweep, RejectsNonPositiveJobs) {
  EXPECT_THROW((void)run_sweep({}, 0), CheckError);
  EXPECT_THROW((void)run_sweep({}, -3), CheckError);
  EXPECT_TRUE(run_sweep({}, 4).empty());
}

TEST(Sweep, WorkerExceptionsPropagate) {
  std::vector<SweepPoint> points = sample_points(1);
  points[1].workload = "no-such-mix";
  EXPECT_THROW((void)run_sweep(points, 4), CheckError);
  EXPECT_THROW((void)run_sweep(points, 1), CheckError);
}

std::string fresh_cache_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/vexsim_sweep_cache_" + tag;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

// Replaces every occurrence of `from` with `to`; asserts at least one match.
std::string replace_all_in(std::string text, const std::string& from,
                           const std::string& to) {
  std::size_t pos = 0;
  std::size_t n = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
    ++n;
  }
  EXPECT_GT(n, 0u);
  return text;
}

TEST(Sweep, CacheServesBitIdenticalResults) {
  const auto points = sample_points(11);
  SweepOptions opts;
  opts.jobs = 3;
  opts.cache_dir = fresh_cache_dir("bitident");

  const auto cold = run_sweep(points, opts);
  const auto warm = run_sweep(points, opts);
  ASSERT_EQ(cold.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_FALSE(cold[i].cache_hit) << i;   // fresh simulation...
    EXPECT_TRUE(cold[i].cached) << i;       // ...persisted on the way out
    EXPECT_TRUE(warm[i].cache_hit) << i;    // served without simulating
    EXPECT_TRUE(warm[i].cached) << i;
  }

  // The acceptance property: a cold-cache sweep and a warm-cache sweep
  // serialize to byte-identical trajectories.
  const std::string cold_json = sweep_json("cache_test", points, cold).dump();
  const std::string warm_json = sweep_json("cache_test", points, warm).dump();
  EXPECT_EQ(cold_json, warm_json);

  // Against an uncached run, every simulated statistic is bit-identical;
  // the only JSON difference is the documented `cached` provenance flag.
  const auto uncached = run_sweep(points, 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(warm[i].sim.cycles, uncached[i].sim.cycles) << i;
    EXPECT_EQ(warm[i].sim.ops_issued, uncached[i].sim.ops_issued) << i;
    ASSERT_EQ(warm[i].instances.size(), uncached[i].instances.size());
    for (std::size_t k = 0; k < warm[i].instances.size(); ++k)
      EXPECT_EQ(warm[i].instances[k].arch_fingerprint,
                uncached[i].instances[k].arch_fingerprint)
          << i << "/" << k;
  }
  const std::string uncached_json =
      sweep_json("cache_test", points, uncached).dump();
  EXPECT_EQ(replace_all_in(uncached_json, "\"cached\": false",
                           "\"cached\": true"),
            warm_json);
}

TEST(Sweep, CacheSummaryLineReportsHitCounts) {
  const auto points = sample_points(12);
  SweepOptions opts;
  opts.jobs = 2;
  opts.cache_dir = fresh_cache_dir("summary");
  std::ostringstream cold_log;
  opts.progress_stream = &cold_log;
  (void)run_sweep(points, opts);
  EXPECT_NE(cold_log.str().find("served 0/6 points from result cache"),
            std::string::npos)
      << cold_log.str();
  std::ostringstream warm_log;
  opts.progress_stream = &warm_log;
  (void)run_sweep(points, opts);
  EXPECT_NE(warm_log.str().find("served 6/6 points from result cache"),
            std::string::npos)
      << warm_log.str();

  // Without a cache directory the summary line never appears (the silent
  // default-progress contract of ProgressReportingEveryNPoints).
  std::ostringstream quiet;
  SweepOptions off;
  off.jobs = 2;
  off.progress_stream = &quiet;
  (void)run_sweep(points, off);
  EXPECT_TRUE(quiet.str().empty());
}

TEST(Sweep, CacheHitsSkipTheWorkerPoolButKeepOrder) {
  // Warm every point, then corrupt one entry: only that point re-simulates
  // and the sweep still returns results in point order.
  const auto points = sample_points(13);
  SweepOptions opts;
  opts.jobs = 4;
  opts.cache_dir = fresh_cache_dir("partial");
  const auto cold = run_sweep(points, opts);
  // Clearing the whole directory but one record leaves 1 hit + 5 misses.
  std::size_t kept = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(opts.cache_dir)) {
    if (kept++ > 0) std::filesystem::remove(entry.path());
  }
  std::ostringstream log;
  opts.progress_stream = &log;
  const auto mixed = run_sweep(points, opts);
  EXPECT_NE(log.str().find("served 1/6 points from result cache"),
            std::string::npos)
      << log.str();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    hits += mixed[i].cache_hit ? 1u : 0u;
    EXPECT_EQ(mixed[i].sim.cycles, cold[i].sim.cycles) << i;
  }
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(sweep_json("t", points, mixed).dump(),
            sweep_json("t", points, cold).dump());
}

TEST(Sweep, AggregatedErrorReportsCountAndLabels) {
  std::vector<SweepPoint> points = sample_points(1);
  points[1].workload = "no-such-mix";
  points[4].workload = "also-missing";
  try {
    (void)run_sweep(points, 4);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2/6 points failed"), std::string::npos) << what;
    EXPECT_NE(what.find(points[1].label), std::string::npos) << what;
    EXPECT_NE(what.find(points[4].label), std::string::npos) << what;
    EXPECT_NE(what.find("no-such-mix"), std::string::npos) << what;
  }
}

TEST(Sweep, RetriesExhaustedBecomeStructuredFailures) {
  std::vector<SweepPoint> points = sample_points(3);
  points[2].workload = "no-such-mix";
  SweepOptions opts;
  opts.jobs = 4;
  opts.max_retries = 2;  // implies failure tolerance

  const auto results = run_sweep(points, opts);  // must not throw
  ASSERT_EQ(results.size(), points.size());
  EXPECT_TRUE(results[2].failed);
  EXPECT_EQ(results[2].attempts, 3);  // 1 try + 2 retries
  EXPECT_NE(results[2].error.find("no-such-mix"), std::string::npos)
      << results[2].error;
  EXPECT_EQ(results[2].sim.cycles, 0u);

  // Healthy points are untouched by the failure machinery...
  const auto plain = run_sweep(sample_points(3), 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i == 2) continue;
    EXPECT_FALSE(results[i].failed) << i;
    EXPECT_EQ(results[i].attempts, 1) << i;
    EXPECT_EQ(results[i].sim.cycles, plain[i].sim.cycles) << i;
  }
  // ...and the whole tolerant sweep is deterministic across --jobs.
  const auto serial = run_sweep(points, [] {
    SweepOptions o;
    o.jobs = 1;
    o.max_retries = 2;
    return o;
  }());
  EXPECT_EQ(sweep_json("t", points, results).dump(),
            sweep_json("t", points, serial).dump());
  // The failed point is visible in the trajectory.
  const std::string text = sweep_json("t", points, results).dump();
  EXPECT_NE(text.find("\"failed\": true"), std::string::npos);
  EXPECT_NE(text.find("\"error\": "), std::string::npos);
}

TEST(Sweep, GenerousTimeoutIsBitIdenticalAcrossJobs) {
  // A timeout that never fires must not perturb anything: same stats, one
  // attempt per point, identical JSON for any worker count.
  const auto points = sample_points(6);
  SweepOptions opts;
  opts.jobs = 4;
  opts.point_timeout_ms = 600'000;
  const auto timed = run_sweep(points, opts);
  opts.jobs = 1;
  const auto timed_serial = run_sweep(points, opts);
  const auto plain = run_sweep(points, 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(timed[i].attempts, 1) << i;
    EXPECT_FALSE(timed[i].failed) << i;
    EXPECT_EQ(timed[i].sim.cycles, plain[i].sim.cycles) << i;
  }
  EXPECT_EQ(sweep_json("t", points, timed).dump(),
            sweep_json("t", points, timed_serial).dump());
  EXPECT_EQ(sweep_json("t", points, timed).dump(),
            sweep_json("t", points, plain).dump());
}

TEST(Sweep, ExpiredTimeoutIsRecordedAsFailure) {
  // A single deliberately heavy point (a ~second of simulation even on an
  // idle machine) under a 25 ms budget: both attempts time out and the
  // failure is structured. Only the heavy point runs under the tight
  // timeout — external load slows the simulation down, which can only
  // widen the margin, so this is stable under a parallel test suite.
  std::vector<SweepPoint> points = {sample_points(7)[0]};
  points[0].opt.budget = 1'000'000;
  points[0].opt.timeslice = 100'000;
  SweepOptions opts;
  opts.jobs = 2;
  opts.point_timeout_ms = 25;
  opts.max_retries = 1;
  const auto results = run_sweep(points, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].failed);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_NE(results[0].error.find("timed out after 25 ms"), std::string::npos)
      << results[0].error;
  EXPECT_EQ(results[0].sim.cycles, 0u);
  // The failure shows up in the trajectory rather than as an exception.
  const std::string text = sweep_json("t", points, results).dump();
  EXPECT_NE(text.find("\"failed\": true"), std::string::npos);
  EXPECT_NE(text.find("timed out after 25 ms"), std::string::npos);
}

TEST(Sweep, FailedPointsAreNeverCached) {
  std::vector<SweepPoint> points = sample_points(8);
  points[1].workload = "no-such-mix";
  SweepOptions opts;
  opts.jobs = 2;
  opts.max_retries = 1;
  opts.cache_dir = fresh_cache_dir("failures");
  const auto first = run_sweep(points, opts);
  EXPECT_TRUE(first[1].failed);
  EXPECT_FALSE(first[1].cached);
  // The second run hits for the five good points and re-fails the bad one
  // fresh — a transient failure must never be replayed from disk.
  std::ostringstream log;
  opts.progress_stream = &log;
  const auto second = run_sweep(points, opts);
  EXPECT_NE(log.str().find("served 5/6 points from result cache"),
            std::string::npos)
      << log.str();
  EXPECT_TRUE(second[1].failed);
  EXPECT_FALSE(second[1].cache_hit);
  EXPECT_EQ(sweep_json("t", points, first).dump(),
            sweep_json("t", points, second).dump());
}

TEST(Sweep, FromCliParsesCacheTimeoutRetries) {
  const auto opts_for = [](std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    const Cli cli(static_cast<int>(argv.size()), argv.data());
    return SweepOptions::from_cli(cli);
  };
  EXPECT_EQ(opts_for({}).cache_dir, "");
  EXPECT_FALSE(opts_for({}).failure_tolerant());
  EXPECT_EQ(opts_for({"--cache"}).cache_dir, "sweep-cache");
  EXPECT_EQ(opts_for({"--cache", "my-dir"}).cache_dir, "my-dir");
  EXPECT_EQ(opts_for({"--cache=my-dir"}).cache_dir, "my-dir");
  // --no-cache wins so wrapper-script caches can be disabled per run.
  EXPECT_EQ(opts_for({"--cache", "my-dir", "--no-cache"}).cache_dir, "");
  EXPECT_EQ(opts_for({"--no-cache"}).cache_dir, "");
  const SweepOptions t = opts_for({"--timeout", "250", "--retries", "2"});
  EXPECT_EQ(t.point_timeout_ms, 250);
  EXPECT_EQ(t.max_retries, 2);
  EXPECT_TRUE(t.failure_tolerant());
  EXPECT_THROW((void)opts_for({"--timeout", "-1"}), CheckError);
  EXPECT_THROW((void)opts_for({"--retries", "-2"}), CheckError);
}

TEST(Sweep, ResultForLooksUpByLabel) {
  const auto points = sample_points(1);
  const auto results = run_sweep(points, 2);
  EXPECT_EQ(&result_for(points, results, points[3].label), &results[3]);
  EXPECT_THROW((void)result_for(points, results, "no-such-label"), CheckError);
}

TEST(Sweep, JsonCarriesConfigurationAxes) {
  const auto points = sample_points(3);
  const auto results = run_sweep(points, 2);
  const Json doc = sweep_json("sweep_test", points, results);
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\"experiment\": \"sweep_test\""), std::string::npos);
  EXPECT_NE(text.find("\"workload\": \"llll\""), std::string::npos);
  EXPECT_NE(text.find("\"technique\": \"CCSI AS\""), std::string::npos);
  EXPECT_NE(text.find("\"ipc\":"), std::string::npos);
  EXPECT_NE(text.find("\"arch_fingerprint\":"), std::string::npos);
}

}  // namespace
}  // namespace vexsim::harness
