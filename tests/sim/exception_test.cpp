// Precise exceptions under split-issue (Section V-B): split-issued parts
// write delay buffers, so a faulting part rolls back to the instruction
// boundary by discarding the buffers.
#include <gtest/gtest.h>

#include "sim/reference.hpp"
#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

TEST(Exception, LoadFaultHaltsPrecisely) {
  // Single thread: the faulting instruction contributes nothing; earlier
  // instructions are fully committed.
  MachineConfig cfg = test::example_machine(4, 4, 1, Technique::smt());
  Simulator sim(cfg);
  const char* prog =
      "c0 movi r1 = 5\n"
      "c0 ldw r2 = 0x10[r0]\n"  // guard page → fault
      "c0 movi r3 = 7\n"        // never executes
      "c0 halt\n";
  ThreadContext ctx(0, test::finalize(assemble(prog, "p")));
  sim.attach(0, &ctx);
  sim.run_to_halt(100);
  EXPECT_EQ(ctx.state, RunState::kFaulted);
  EXPECT_EQ(ctx.fault.pc, 1u);
  EXPECT_EQ(ctx.pc, 1u);  // rolled back to the faulting instruction
  EXPECT_EQ(ctx.regs.gpr(0, 1), 5u);   // earlier write committed
  EXPECT_EQ(ctx.regs.gpr(0, 3), 0u);   // later write suppressed
  EXPECT_EQ(sim.stats().faults, 1u);
}

TEST(Exception, MisalignedStoreFaults) {
  MachineConfig cfg = test::example_machine(4, 4, 1, Technique::smt());
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 0x201\n"
                           "c0 stw 0[r1] = r1\n"
                           "c0 halt\n",
                           "p")));
  sim.attach(0, &ctx);
  sim.run_to_halt(100);
  EXPECT_EQ(ctx.state, RunState::kFaulted);
  EXPECT_EQ(ctx.fault.addr, 0x201u);
}

TEST(Exception, SameInstructionEffectsSuppressed) {
  // A store and a faulting load in one instruction: nothing of the
  // instruction may commit (detection precedes writeback).
  MachineConfig cfg = test::example_machine(2, 3, 1, Technique::smt());
  Simulator sim(cfg);
  const char* prog =
      "c0 movi r1 = 0x200 ; c1 movi r9 = 3\n"
      "c0 stw 0[r1] = r1 ; c1 ldw r2 = 0x10[r0]\n"
      "c0 halt\n";
  ThreadContext ctx(0, test::finalize(assemble(prog, "p")));
  sim.attach(0, &ctx);
  sim.run_to_halt(100);
  EXPECT_EQ(ctx.state, RunState::kFaulted);
  EXPECT_EQ(ctx.mem.peek_u32(0x200), 0u);  // store suppressed
}

TEST(Exception, SplitPartRollbackDiscardsBuffers) {
  // CCSI, 2 threads: T1's instruction split-issues its store on cluster 0
  // in cycle 1 (buffered — T0 owns cluster 1); the cluster-1 part faults in
  // cycle 2. The buffered store must be discarded: memory intact.
  MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::ccsi(CommPolicy::kNoSplit));
  Simulator sim(cfg);
  const char* t0_src =
      "c1 add r1 = r2, r3 ; c1 or r4 = r5, r6\n"
      "c0 halt\n";
  const char* t1_src =
      "c0 stw 0x200[r0] = r2 ; c1 ldw r5 = 0x10[r0]\n"  // c1 load faults
      "c0 halt\n";
  ThreadContext t0(0, test::finalize(assemble(t0_src, "t0")));
  ThreadContext t1(1, test::finalize(assemble(t1_src, "t1")));
  t1.regs.set_gpr(0, 2, 55);
  sim.attach(0, &t0);
  sim.attach(1, &t1);
  sim.run_to_halt(100);
  EXPECT_EQ(t1.state, RunState::kFaulted);
  EXPECT_EQ(t1.fault.pc, 0u);
  EXPECT_EQ(t1.mem.peek_u32(0x200), 0u);  // buffered store discarded
  EXPECT_TRUE(t1.store_buffer.empty());
  EXPECT_TRUE(t1.rf_buffer.empty());
  // T0 is unaffected.
  EXPECT_EQ(t0.state, RunState::kHalted);
}

TEST(Exception, SplitRegisterWritesRolledBack) {
  // T1's cluster-0 part computes into a register (buffered); the cluster-1
  // part faults later. The register keeps its pre-instruction value.
  MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::ccsi(CommPolicy::kNoSplit));
  Simulator sim(cfg);
  const char* t0_src =
      "c1 add r1 = r2, r3 ; c1 or r4 = r5, r6\n"
      "c1 xor r7 = r8, r9 ; c1 and r2 = r3, r4\n"
      "c0 halt\n";
  const char* t1_src =
      "c0 add r7 = r2, r2 ; c1 ldw r5 = 0x10[r0]\n"
      "c0 halt\n";
  ThreadContext t0(0, test::finalize(assemble(t0_src, "t0")));
  ThreadContext t1(1, test::finalize(assemble(t1_src, "t1")));
  t1.regs.set_gpr(0, 2, 21);
  t1.regs.set_gpr(0, 7, 1);
  sim.attach(0, &t0);
  sim.attach(1, &t1);
  sim.run_to_halt(100);
  EXPECT_EQ(t1.state, RunState::kFaulted);
  EXPECT_EQ(t1.regs.gpr(0, 7), 1u);  // 42 never committed
}

TEST(Exception, ReferenceInterpreterAgreesOnFault) {
  const char* prog =
      "c0 movi r1 = 5\n"
      "c0 ldw r2 = 0x10[r0]\n"
      "c0 halt\n";
  MachineConfig cfg = test::example_machine(4, 4, 1, Technique::smt());
  Simulator sim(cfg);
  ThreadContext sim_ctx(0, test::finalize(assemble(prog, "p")));
  sim.attach(0, &sim_ctx);
  sim.run_to_halt(100);

  ReferenceInterpreter ref(cfg.clusters);
  ThreadContext ref_ctx(0, test::finalize(assemble(prog, "p")));
  RefResult rr = ref.run(ref_ctx, 1000);
  EXPECT_TRUE(rr.faulted);
  EXPECT_EQ(rr.fault_pc, sim_ctx.fault.pc);
  EXPECT_EQ(ref_ctx.arch_fingerprint(cfg.clusters),
            sim_ctx.arch_fingerprint(cfg.clusters));
}

}  // namespace
}  // namespace vexsim
