#include "sim/reference.hpp"

#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

ThreadContext make_ctx(const char* source) {
  return ThreadContext(0, test::finalize(assemble(source, "ref")));
}

TEST(Reference, StraightLineArithmetic) {
  ThreadContext ctx = make_ctx(
      "c0 movi r1 = 6\n"
      "c0 mpyl r2 = r1, 7\n"
      "c0 add r3 = r2, 1\n"
      "c0 halt\n");
  ReferenceInterpreter ref(4);
  const RefResult r = ref.run(ctx, 100);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.instructions, 4u);
  EXPECT_EQ(ctx.regs.gpr(0, 3), 43u);
}

TEST(Reference, ImmediateVisibilityWithinLatencyWindow) {
  // The reference interpreter is the earliest-legal LEQ execution: results
  // are visible immediately, even inside the exposed latency window.
  ThreadContext ctx = make_ctx(
      "c0 mpyl r2 = r1, 7\n"
      "c0 add r3 = r2, 1\n"  // one cycle after the multiply
      "c0 halt\n");
  ctx.regs.set_gpr(0, 1, 6);
  ReferenceInterpreter ref(4);
  ref.run(ctx, 100);
  EXPECT_EQ(ctx.regs.gpr(0, 3), 43u);
}

TEST(Reference, SwapSemantics) {
  ThreadContext ctx = make_ctx(
      "c0 mov r3 = r5 ; c0 mov r5 = r3\n"
      "c0 halt\n");
  ctx.regs.set_gpr(0, 3, 1);
  ctx.regs.set_gpr(0, 5, 2);
  ReferenceInterpreter ref(4);
  ref.run(ctx, 100);
  EXPECT_EQ(ctx.regs.gpr(0, 3), 2u);
  EXPECT_EQ(ctx.regs.gpr(0, 5), 1u);
}

TEST(Reference, BranchesAndLoops) {
  ThreadContext ctx = make_ctx(
      "c0 movi r1 = 4\n"
      "top:\n"
      "c0 add r2 = r2, 2\n"
      "c0 add r1 = r1, -1\n"
      "c0 cmpgt b0 = r1, 0\n"
      "c0 br b0, top\n"
      "c0 halt\n");
  ReferenceInterpreter ref(4);
  const RefResult r = ref.run(ctx, 1000);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(ctx.regs.gpr(0, 2), 8u);
}

TEST(Reference, MemoryRoundTrip) {
  ThreadContext ctx = make_ctx(
      "c0 movi r1 = 0x300\n"
      "c0 movi r2 = -2\n"
      "c0 sth 0[r1] = r2\n"
      "c0 ldh r3 = 0[r1]\n"
      "c0 ldhu r4 = 0[r1]\n"
      "c0 halt\n");
  ReferenceInterpreter ref(4);
  ref.run(ctx, 100);
  EXPECT_EQ(ctx.regs.gpr(0, 3), 0xFFFFFFFEu);
  EXPECT_EQ(ctx.regs.gpr(0, 4), 0xFFFEu);
}

TEST(Reference, SameInstructionStoreLoadReadsOld) {
  ThreadContext ctx = make_ctx(
      "c0 movi r1 = 0x400 ; c1 movi r9 = 0x400\n"
      "c0 stw 0[r1] = r1 ; c1 ldw r4 = 0[r9]\n"
      "c0 halt\n");
  ReferenceInterpreter ref(4);
  ref.run(ctx, 100);
  EXPECT_EQ(ctx.regs.gpr(1, 4), 0u);           // pre-instruction memory
  EXPECT_EQ(ctx.mem.peek_u32(0x400), 0x400u);  // store applied
}

TEST(Reference, SendRecvWithinInstruction) {
  ThreadContext ctx = make_ctx(
      "c0 send ch0 = r3 ; c1 recv r5 = ch0\n"
      "c0 halt\n");
  ctx.regs.set_gpr(0, 3, 99);
  ReferenceInterpreter ref(4);
  ref.run(ctx, 100);
  EXPECT_EQ(ctx.regs.gpr(1, 5), 99u);
}

TEST(Reference, FaultIsPrecise) {
  ThreadContext ctx = make_ctx(
      "c0 movi r1 = 1\n"
      "c0 movi r2 = 2 ; c1 ldb r3 = 0[r0]\n"  // guard page fault
      "c0 halt\n");
  ReferenceInterpreter ref(4);
  const RefResult r = ref.run(ctx, 100);
  EXPECT_TRUE(r.faulted);
  EXPECT_EQ(r.fault_pc, 1u);
  EXPECT_EQ(ctx.regs.gpr(0, 1), 1u);
  EXPECT_EQ(ctx.regs.gpr(0, 2), 0u);  // faulting instruction fully suppressed
  EXPECT_EQ(ctx.state, RunState::kFaulted);
}

TEST(Reference, InstructionBudgetStopsLoops) {
  ThreadContext ctx = make_ctx(
      "top:\n"
      "c0 add r1 = r1, 1\n"
      "c0 goto top\n");
  ReferenceInterpreter ref(4);
  const RefResult r = ref.run(ctx, 50);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.instructions, 50u);
  EXPECT_EQ(ctx.state, RunState::kReady);
}

TEST(Reference, CountsOps) {
  ThreadContext ctx = make_ctx(
      "c0 movi r1 = 1 ; c1 movi r2 = 2\n"
      "c0 halt\n");
  ReferenceInterpreter ref(4);
  const RefResult r = ref.run(ctx, 10);
  EXPECT_EQ(r.instructions, 2u);
  EXPECT_EQ(r.ops, 3u);
}

}  // namespace
}  // namespace vexsim
