// Precise-state guarantees at the two context boundaries the refactor must
// not disturb: detach() (a drained thread's in-flight NUAL writes are
// architecturally committed so the context can be rescheduled) and
// rollback_fault() (split-issued parts only ever wrote the delay buffers, so
// a fault restores the pre-instruction boundary).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "support/test_util.hpp"
#include "util/check.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

TEST(PreciseState, DetachCommitsPendingNualWrites) {
  // mpyl has latency 2: the instruction completes at issue+1 while its
  // result is still in flight. Draining right after leaves a pending write
  // that detach() must commit for the switched-out state to be precise.
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 6\n"
                           "c0 mpyl r2 = r1, r1\n"
                           "c0 add r3 = r1, r1\n"
                           "c0 halt\n",
                           "p")));
  sim.attach(0, &ctx);
  sim.step();  // movi issues
  sim.step();  // mpyl issues (result visible 2 cycles later)
  sim.set_drain(true);
  sim.step();  // mpyl completes; drain blocks the next refill
  ASSERT_TRUE(sim.quiesced());
  EXPECT_FALSE(ctx.pending_writes.empty());  // r2 still in its window
  EXPECT_EQ(ctx.regs.gpr(0, 2), 0u);

  ThreadContext* out = sim.detach(0);
  ASSERT_EQ(out, &ctx);
  EXPECT_TRUE(ctx.pending_writes.empty());
  EXPECT_EQ(ctx.regs.gpr(0, 2), 36u);  // committed by detach
  EXPECT_EQ(ctx.state, RunState::kReady);

  // The context reattaches and runs to completion as if never interrupted.
  sim.set_drain(false);
  sim.attach(0, &ctx);
  EXPECT_TRUE(sim.run_to_halt(100));
  EXPECT_EQ(ctx.state, RunState::kHalted);
  EXPECT_EQ(ctx.regs.gpr(0, 3), 12u);
}

TEST(PreciseState, DetachRefusesInFlightInstruction) {
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 1\n"
                           "c0 halt\n",
                           "p")));
  sim.attach(0, &ctx);
  sim.step();  // movi fully issues but let's force an active issue state
  ctx.issue.active = true;  // simulate a partially issued instruction
  EXPECT_THROW((void)sim.detach(0), CheckError);
  // The failed detach already freed the slot; a drained context detaches.
  ctx.issue.active = false;
  sim.attach(0, &ctx);
  EXPECT_EQ(sim.detach(0), &ctx);
}

TEST(PreciseState, DetachedContextFingerprintMatchesUninterruptedRun) {
  // Drive the same program (a) straight to halt and (b) with a drain +
  // detach + reattach in the middle; the final architectural fingerprint
  // must be identical.
  const char* src =
      "c0 movi r1 = 5\n"
      "c0 mpyl r2 = r1, r1\n"
      "c0 stw 0x300[r0] = r1\n"
      "c0 add r3 = r2, r1\n"
      "c0 halt\n";
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());

  Simulator a(cfg);
  ThreadContext plain(0, test::finalize(assemble(src, "p")));
  a.attach(0, &plain);
  ASSERT_TRUE(a.run_to_halt(100));

  Simulator b(cfg);
  ThreadContext interrupted(0, test::finalize(assemble(src, "p")));
  b.attach(0, &interrupted);
  b.step();
  b.step();
  b.set_drain(true);
  b.step();
  ASSERT_TRUE(b.quiesced());
  b.detach(0);
  b.set_drain(false);
  b.attach(0, &interrupted);
  ASSERT_TRUE(b.run_to_halt(100));

  EXPECT_EQ(plain.arch_fingerprint(cfg.clusters),
            interrupted.arch_fingerprint(cfg.clusters));
}

TEST(PreciseState, RollbackDiscardsDelayBuffersAndFaultingWrites) {
  // CCSI, 2 threads: T1 split-issues — the cluster-0 ALU result and store
  // land in the delay buffers — then the cluster-1 part faults. Everything
  // of the instruction must vanish; earlier instructions stay committed.
  MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::ccsi(CommPolicy::kNoSplit));
  Simulator sim(cfg);
  const char* t0_src =
      "c1 add r1 = r2, r3 ; c1 or r4 = r5, r6\n"
      "c1 xor r7 = r8, r9 ; c1 and r2 = r3, r4\n"
      "c0 halt\n";
  const char* t1_src =
      "c0 add r7 = r2, r2 ; c0 stw 0x400[r0] = r2 ; c1 ldw r5 = 0x10[r0]\n"
      "c0 halt\n";
  ThreadContext t0(0, test::finalize(assemble(t0_src, "t0")));
  ThreadContext t1(1, test::finalize(assemble(t1_src, "t1")));
  t1.regs.set_gpr(0, 2, 11);
  sim.attach(0, &t0);
  sim.attach(1, &t1);
  sim.run_to_halt(100);

  EXPECT_EQ(t1.state, RunState::kFaulted);
  EXPECT_EQ(t1.fault.pc, 0u);
  EXPECT_EQ(t1.pc, 0u);
  EXPECT_EQ(t1.regs.gpr(0, 2), 11u);      // pre-instruction value intact
  EXPECT_EQ(t1.regs.gpr(0, 7), 0u);       // split add result discarded
  EXPECT_EQ(t1.mem.peek_u32(0x400), 0u);  // buffered store discarded
  EXPECT_TRUE(t1.rf_buffer.empty());
  EXPECT_TRUE(t1.store_buffer.empty());
  EXPECT_TRUE(t1.pending_writes.empty());
  EXPECT_FALSE(t1.issue.active);
}

TEST(PreciseState, RollbackCommitsEarlierInFlightWrites) {
  // The instruction before the faulting one produced a latency-2 result
  // that is still in flight at the fault: rollback must commit it (it is
  // architecturally determined) while discarding the faulter's own writes.
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 7\n"
                           "c0 mpyl r2 = r1, r1\n"
                           "c0 ldw r3 = 0x10[r0]\n"  // guard page → fault
                           "c0 halt\n",
                           "p")));
  sim.attach(0, &ctx);
  sim.run_to_halt(100);
  EXPECT_EQ(ctx.state, RunState::kFaulted);
  EXPECT_EQ(ctx.regs.gpr(0, 2), 49u);  // in-flight mpyl result committed
  EXPECT_EQ(ctx.regs.gpr(0, 3), 0u);   // faulting load suppressed
  EXPECT_TRUE(ctx.pending_writes.empty());
}

TEST(PreciseState, FaultedContextCanRespawn) {
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 3\n"
                           "c0 halt\n",
                           "p")));
  ctx.state = RunState::kFaulted;  // as left by a rollback
  ctx.respawn();
  EXPECT_EQ(ctx.state, RunState::kReady);
  sim.attach(0, &ctx);
  EXPECT_TRUE(sim.run_to_halt(50));
  EXPECT_EQ(ctx.regs.gpr(0, 1), 3u);
}

}  // namespace
}  // namespace vexsim
