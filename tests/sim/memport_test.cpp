// Memory-port contention from delayed (buffered) stores — Figure 11.
//
// Scenario (2 clusters, 1 memory port each, CCSI):
//   T1 Ins0 = c0:{stw}, c1:{add}. At cycle 1 T0 owns cluster 1, so T1
//   split-issues the store (into the buffer). At cycle 2 T1's last part
//   (the add) issues and the buffered store drains — in the same cycle T0's
//   next instruction issues a load on cluster 0. Two memory operations, one
//   port: the pipeline stalls one cycle.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

const char* kT0 =
    "c1 add r1 = r2, r3 ; c1 or r4 = r5, r6 ; c1 xor r7 = r8, r9\n"  // owns c1
    "c0 ldw r1 = 0x300[r0]\n"
    "c0 add r2 = r0, 1\n"
    "c0 halt\n";

// The stored value (r2 = 55) is preset directly in the register file by the
// tests below.
const char* kT1 =
    "c0 stw 0x200[r0] = r2 ; c1 add r3 = r4, r5\n"
    "c0 halt\n";

MachineConfig machine(Technique t) {
  MachineConfig cfg = test::example_machine(2, 3, 2, t);
  cfg.cluster.mem_units = 1;  // one memory port per cluster (Figure 11)
  return cfg;
}

struct Rig {
  Simulator sim;
  ThreadContext t0;
  ThreadContext t1;
  explicit Rig(const MachineConfig& cfg)
      : sim(cfg),
        t0(0, test::finalize(assemble(kT0, "t0"))),
        t1(1, test::finalize(assemble(kT1, "t1"))) {
    t1.regs.set_gpr(0, 2, 55);
    sim.attach(0, &t0);
    sim.attach(1, &t1);
  }
};

TEST(MemPort, BufferedStoreDrainConflictStalls) {
  Rig rig(machine(Technique::ccsi(CommPolicy::kNoSplit)));
  ASSERT_TRUE(rig.sim.run_to_halt(100));
  EXPECT_EQ(rig.sim.stats().memport_stall_cycles, 1u);
  // The buffered store committed despite the contention.
  EXPECT_EQ(rig.t1.mem.peek_u32(0x200), 55u);
  EXPECT_EQ(rig.t1.counters.split_instructions, 1u);
}

TEST(MemPort, NoSplitNoDrainStall) {
  // Under plain CSMT the store issues with its whole instruction and writes
  // straight to memory: no buffered drain, no structural stall.
  Rig rig(machine(Technique::csmt()));
  ASSERT_TRUE(rig.sim.run_to_halt(100));
  EXPECT_EQ(rig.sim.stats().memport_stall_cycles, 0u);
  EXPECT_EQ(rig.t1.mem.peek_u32(0x200), 55u);
  EXPECT_EQ(rig.t1.counters.split_instructions, 0u);
}

TEST(MemPort, SplitIssueStillFasterDespiteStall) {
  Rig ccsi(machine(Technique::ccsi(CommPolicy::kNoSplit)));
  ASSERT_TRUE(ccsi.sim.run_to_halt(100));
  Rig csmt(machine(Technique::csmt()));
  ASSERT_TRUE(csmt.sim.run_to_halt(100));
  EXPECT_LE(ccsi.sim.stats().cycles, csmt.sim.stats().cycles);
}

TEST(MemPort, StallCycleIsFullyIdle) {
  Rig rig(machine(Technique::ccsi(CommPolicy::kNoSplit)));
  std::vector<int> ops_per_cycle;
  for (int i = 0; i < 100 && !rig.sim.run_to_halt(1); ++i)
    ops_per_cycle.push_back(rig.sim.last_packet().op_count());
  bool saw_stall = false;
  for (std::size_t i = 1; i + 1 < ops_per_cycle.size(); ++i)
    if (ops_per_cycle[i] == 0) saw_stall = true;
  EXPECT_TRUE(saw_stall);
}

TEST(MemPort, ExtraPortsRemoveTheStall) {
  MachineConfig cfg = machine(Technique::ccsi(CommPolicy::kNoSplit));
  cfg.cluster.mem_units = 2;  // Section V-D's alternative: more ports
  Rig rig(cfg);
  ASSERT_TRUE(rig.sim.run_to_halt(100));
  EXPECT_EQ(rig.sim.stats().memport_stall_cycles, 0u);
}

TEST(MemPort, RenamingSeparatesThePorts) {
  // On a 4-cluster machine with renaming (T1 rotates by 1), T1's store
  // becomes the *last* part of its instruction instead of a buffered early
  // part, so it writes memory directly and no drain conflict arises.
  MachineConfig cfg = machine(Technique::ccsi(CommPolicy::kNoSplit));
  cfg.clusters = 4;
  cfg.cluster_renaming = true;
  Rig rig(cfg);
  ASSERT_TRUE(rig.sim.run_to_halt(100));
  EXPECT_EQ(rig.sim.stats().memport_stall_cycles, 0u);
  EXPECT_EQ(rig.t1.mem.peek_u32(0x200), 55u);
}

}  // namespace
}  // namespace vexsim
