// Cache timing: load misses block the thread (less-than-or-equal machine
// stall), instruction fetch misses delay issue, and SMT fills the resulting
// vertical waste with other threads.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

MachineConfig machine(bool perfect_d, bool perfect_i, int threads = 1) {
  MachineConfig cfg = MachineConfig::paper(
      threads, threads > 1 ? Technique::smt() : Technique::smt());
  cfg.dcache.perfect = perfect_d;
  cfg.icache.perfect = perfect_i;
  return cfg;
}

std::uint64_t run_cycles(const MachineConfig& cfg, const char* source) {
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(source, "prog")));
  sim.attach(0, &ctx);
  EXPECT_TRUE(sim.run_to_halt(1'000'000));
  return sim.stats().cycles;
}

const char* kLoadProgram =
    "c0 movi r1 = 0x4000\n"
    "c0 ldw r2 = 0[r1]\n"
    "c0 add r3 = r0, 1\n"  // gated by the miss
    "c0 halt\n";

TEST(CacheStall, LoadMissBlocksNextInstruction) {
  const std::uint64_t perfect = run_cycles(machine(true, true), kLoadProgram);
  const std::uint64_t real = run_cycles(machine(false, true), kLoadProgram);
  EXPECT_EQ(perfect, 4u);
  // Cold miss: the next instruction issues miss_penalty cycles after the
  // load instead of 1 cycle after it — 19 extra cycles.
  EXPECT_EQ(real, perfect + 19);
}

TEST(CacheStall, SecondAccessToSameLineHits) {
  const char* two_loads =
      "c0 movi r1 = 0x4000\n"
      "c0 ldw r2 = 0[r1]\n"
      "c0 ldw r3 = 4[r1]\n"  // same 64B line → hit
      "c0 halt\n";
  const std::uint64_t real = run_cycles(machine(false, true), two_loads);
  const std::uint64_t perfect = run_cycles(machine(true, true), two_loads);
  EXPECT_EQ(real, perfect + 19);  // only the first load misses
}

TEST(CacheStall, StoreMissDoesNotBlockByDefault) {
  const char* store_prog =
      "c0 movi r1 = 0x4000\n"
      "c0 stw 0[r1] = r1\n"
      "c0 add r3 = r0, 1\n"
      "c0 halt\n";
  const std::uint64_t real = run_cycles(machine(false, true), store_prog);
  EXPECT_EQ(real, 4u);  // ST200-style write buffer
  MachineConfig cfg = machine(false, true);
  cfg.stall_on_store_miss = true;
  EXPECT_EQ(run_cycles(cfg, store_prog), 23u);
}

TEST(CacheStall, InstructionFetchMissDelaysStartup) {
  const char* trivial = "c0 halt\n";
  const std::uint64_t perfect = run_cycles(machine(true, true), trivial);
  const std::uint64_t real = run_cycles(machine(true, false), trivial);
  EXPECT_EQ(perfect, 1u);
  EXPECT_EQ(real, perfect + 20);  // cold ICache miss on the first fetch
}

TEST(CacheStall, DMissBlockCyclesCounted) {
  MachineConfig cfg = machine(false, true);
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(kLoadProgram, "p")));
  sim.attach(0, &ctx);
  ASSERT_TRUE(sim.run_to_halt(1'000));
  EXPECT_GE(ctx.counters.dmiss_block_cycles, 19u);
  EXPECT_EQ(sim.dcache().stats().misses, 1u);
}

TEST(CacheStall, SmtFillsMissStallWithOtherThread) {
  // T0 takes a 20-cycle D-miss; T1 is a pure ALU loop. On the 2-thread SMT
  // machine T1 keeps issuing during T0's stall, so total cycles are far
  // below the sum of solo runs.
  const char* miss_prog =
      "c0 movi r1 = 0x4000\n"
      "c0 ldw r2 = 0[r1]\n"
      "c0 add r3 = r2, 1\n"
      "c0 ldw r2 = 256[r1]\n"
      "c0 add r3 = r2, 1\n"
      "c0 halt\n";
  const char* alu_prog =
      "c0 movi r1 = 40\n"
      "top:\n"
      "c0 add r2 = r2, 1\n"
      "c0 add r1 = r1, -1\n"
      "c0 cmpgt b0 = r1, 0\n"
      "nop\n"
      "c0 br b0, top\n"
      "c0 halt\n";
  MachineConfig cfg = machine(false, true, 2);
  Simulator sim(cfg);
  ThreadContext t0(0, test::finalize(assemble(miss_prog, "t0")));
  ThreadContext t1(1, test::finalize(assemble(alu_prog, "t1")));
  sim.attach(0, &t0);
  sim.attach(1, &t1);
  ASSERT_TRUE(sim.run_to_halt(10'000));
  const std::uint64_t together = sim.stats().cycles;

  const std::uint64_t solo0 = run_cycles(machine(false, true), miss_prog);
  const std::uint64_t solo1 = run_cycles(machine(false, true), alu_prog);
  EXPECT_LT(together, solo0 + solo1);
  // T1's loop (≈ 240 cycles) covers T0's two misses entirely.
  EXPECT_LE(together, std::max(solo0, solo1) + 10);
}

TEST(CacheStall, CapacityMissesOnBigWorkingSet) {
  // Stream over 2048 distinct 64 B lines (128 KiB): every access is a cold
  // miss; a 64 KiB cache retains none of an earlier pass either.
  MachineConfig cfg = machine(false, true);
  Simulator sim(cfg);
  const char* stream =
      "c0 movi r1 = 0x10000\n"
      "c0 movi r2 = 2048\n"
      "top:\n"
      "c0 ldw r3 = 0[r1]\n"
      "c0 add r1 = r1, 64\n"
      "c0 add r2 = r2, -1\n"
      "c0 cmpgt b0 = r2, 0\n"
      "nop\n"
      "c0 br b0, top\n"
      "c0 halt\n";
  ThreadContext ctx(0, test::finalize(assemble(stream, "p")));
  sim.attach(0, &ctx);
  ASSERT_TRUE(sim.run_to_halt(200'000));
  EXPECT_EQ(sim.dcache().stats().misses, 2048u);
}

}  // namespace
}  // namespace vexsim
