// Two-phase branch timing: compare-to-branch delay and taken-branch penalty.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

struct SingleRun {
  std::unique_ptr<ThreadContext> ctx;
  SimStats stats;
  bool halted = false;
};

SingleRun run_single(const char* source, std::uint64_t max_cycles = 10'000) {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.icache.perfect = true;
  cfg.dcache.perfect = true;
  Simulator sim(cfg);
  SingleRun r;
  r.ctx = std::make_unique<ThreadContext>(
      0, test::finalize(assemble(source, "prog")));
  sim.attach(0, r.ctx.get());
  r.halted = sim.run_to_halt(max_cycles);
  r.stats = sim.stats();
  return r;
}

TEST(Branch, NotTakenFallsThroughWithoutPenalty) {
  const auto r = run_single(
      "c0 movi r1 = 5\n"
      "c0 cmpgt b0 = r1, 100\n"  // false
      "nop\n"
      "c0 br b0, @0\n"
      "c0 movi r2 = 1\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 2), 1u);
  EXPECT_EQ(r.stats.taken_branches, 0u);
  EXPECT_EQ(r.stats.cycles, 6u);  // one cycle per instruction, no bubbles
}

TEST(Branch, TakenBranchCostsOnePenaltyCycle) {
  const auto taken = run_single(
      "c0 movi r1 = 5\n"
      "c0 cmpgt b0 = r1, 0\n"  // true
      "nop\n"
      "c0 br b0, skip\n"
      "c0 movi r2 = 99\n"      // skipped
      "skip:\n"
      "c0 movi r3 = 1\n"
      "c0 halt\n");
  EXPECT_EQ(taken.ctx->regs.gpr(0, 2), 0u);
  EXPECT_EQ(taken.ctx->regs.gpr(0, 3), 1u);
  EXPECT_EQ(taken.stats.taken_branches, 1u);
  // 6 instructions execute (one skipped) + 1 taken penalty.
  EXPECT_EQ(taken.stats.cycles, 7u);
}

TEST(Branch, BrfInvertsCondition) {
  const auto r = run_single(
      "c0 movi r1 = 5\n"
      "c0 cmpgt b0 = r1, 100\n"  // false → brf taken
      "nop\n"
      "c0 brf b0, skip\n"
      "c0 movi r2 = 99\n"
      "skip:\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 2), 0u);
  EXPECT_EQ(r.stats.taken_branches, 1u);
}

TEST(Branch, GotoAlwaysTaken) {
  const auto r = run_single(
      "c0 goto skip\n"
      "c0 movi r1 = 99\n"
      "skip:\n"
      "c0 movi r2 = 7\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 1), 0u);
  EXPECT_EQ(r.ctx->regs.gpr(0, 2), 7u);
  EXPECT_EQ(r.stats.taken_branches, 1u);
  // goto, movi, halt + 1 penalty.
  EXPECT_EQ(r.stats.cycles, 4u);
}

TEST(Branch, LoopCycleCountExact) {
  // 3 iterations: the first two take the backedge (penalty each), the last
  // falls through. 2 setup + 3×5 body + 2 penalties + 1 halt = 20 cycles.
  const auto r = run_single(
      "c0 movi r1 = 3\n"
      "c0 movi r2 = 0\n"
      "top:\n"
      "c0 add r2 = r2, 1\n"
      "c0 add r1 = r1, -1\n"
      "c0 cmpgt b0 = r1, 0\n"
      "nop\n"
      "c0 br b0, top\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 2), 3u);
  EXPECT_EQ(r.stats.taken_branches, 2u);
  EXPECT_EQ(r.stats.cycles, 20u);
}

TEST(Branch, CompareToBranchContractEnforced) {
  // A branch reading its breg the cycle after the compare violates the
  // 2-cycle compare-to-branch delay and must trip the latency checker.
  EXPECT_THROW(run_single("c0 movi r1 = 1\n"
                          "c0 cmpgt b0 = r1, 0\n"
                          "c0 br b0, @0\n"
                          "c0 halt\n"),
               CheckError);
}

TEST(Branch, SlctObeysBregLatency) {
  const auto r = run_single(
      "c0 movi r1 = 5 ; c0 movi r2 = 10 ; c0 movi r3 = 20\n"
      "c0 cmpgt b1 = r1, 0\n"
      "nop\n"
      "c0 slct r4 = b1, r2, r3\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 4), 10u);
}

TEST(Branch, BackwardLoopToInstructionZero) {
  const auto r = run_single(
      "top:\n"
      "c0 add r1 = r1, 1\n"
      "c0 cmpge b0 = r1, 3\n"
      "nop\n"
      "c0 brf b0, top\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 1), 3u);
  EXPECT_TRUE(r.halted);
}

}  // namespace
}  // namespace vexsim
