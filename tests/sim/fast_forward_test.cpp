// The fast-path cycle engine (Simulator::fast_forward) must be a pure
// wall-clock optimization: every statistic — machine-level, per-thread,
// cache, merge — and every architectural fingerprint must be bit-identical
// to the plain cycle-by-cycle loop. This is the core of the golden-stats
// contract the decode-cache/fast-path refactor is held to.
#include <gtest/gtest.h>

#include "harness/experiments.hpp"
#include "sim/simulator.hpp"
#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.sim.cycles, b.sim.cycles) << what;
  EXPECT_EQ(a.sim.ops_issued, b.sim.ops_issued) << what;
  EXPECT_EQ(a.sim.instructions_retired, b.sim.instructions_retired) << what;
  EXPECT_EQ(a.sim.split_instructions, b.sim.split_instructions) << what;
  EXPECT_EQ(a.sim.vertical_waste_cycles, b.sim.vertical_waste_cycles) << what;
  EXPECT_EQ(a.sim.multi_thread_cycles, b.sim.multi_thread_cycles) << what;
  EXPECT_EQ(a.sim.memport_stall_cycles, b.sim.memport_stall_cycles) << what;
  EXPECT_EQ(a.sim.drain_cycles, b.sim.drain_cycles) << what;
  EXPECT_EQ(a.sim.taken_branches, b.sim.taken_branches) << what;
  EXPECT_EQ(a.sim.faults, b.sim.faults) << what;
  EXPECT_EQ(a.icache.hits, b.icache.hits) << what;
  EXPECT_EQ(a.icache.misses, b.icache.misses) << what;
  EXPECT_EQ(a.dcache.hits, b.dcache.hits) << what;
  EXPECT_EQ(a.dcache.misses, b.dcache.misses) << what;
  EXPECT_EQ(a.merge.full_selections, b.merge.full_selections) << what;
  EXPECT_EQ(a.merge.partial_selections, b.merge.partial_selections) << what;
  EXPECT_EQ(a.merge.blocked_selections, b.merge.blocked_selections) << what;
  EXPECT_EQ(a.merge.comm_nosplit_forced, b.merge.comm_nosplit_forced) << what;
  ASSERT_EQ(a.instances.size(), b.instances.size()) << what;
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].instructions, b.instances[i].instructions)
        << what << "/" << i;
    EXPECT_EQ(a.instances[i].respawns, b.instances[i].respawns)
        << what << "/" << i;
    EXPECT_EQ(a.instances[i].arch_fingerprint,
              b.instances[i].arch_fingerprint)
        << what << "/" << i;
    EXPECT_EQ(a.instances[i].counters.dmiss_block_cycles,
              b.instances[i].counters.dmiss_block_cycles)
        << what << "/" << i;
    EXPECT_EQ(a.instances[i].counters.imiss_block_cycles,
              b.instances[i].counters.imiss_block_cycles)
        << what << "/" << i;
    EXPECT_EQ(a.instances[i].counters.taken_branches,
              b.instances[i].counters.taken_branches)
        << what << "/" << i;
    EXPECT_EQ(a.instances[i].counters.split_instructions,
              b.instances[i].counters.split_instructions)
        << what << "/" << i;
  }
}

TEST(FastForward, DriverStatsBitIdenticalAcrossTechniquesAndWorkloads) {
  // Small multiprogrammed runs across the technique space, including cache
  // misses, timeslice drains and respawns: stats must match exactly.
  harness::ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 3'000;
  opt.timeslice = 700;  // frequent drains exercise the limit clamping
  for (const char* workload : {"llmm", "hhhh"}) {
    for (const Technique t :
         {Technique::smt(), Technique::csmt(),
          Technique::ccsi(CommPolicy::kNoSplit),
          Technique::oosi(CommPolicy::kAlwaysSplit)}) {
      opt.fast_forward = false;
      const RunResult base = harness::run_workload(workload, 4, t, opt);
      opt.fast_forward = true;
      const RunResult fast = harness::run_workload(workload, 4, t, opt);
      expect_identical(base, fast, std::string(workload) + "/" + t.name());
    }
  }
}

TEST(FastForward, SingleThreadMissHeavyRun) {
  // A single-thread run has the most skippable cycles (every D-miss block
  // and branch penalty idles the whole machine): the per-thread block
  // counters accrued arithmetically must equal the iterated ones.
  harness::ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 2'000;
  opt.timeslice = ~0ull;
  for (const char* bench : {"mcf", "bzip2"}) {
    opt.fast_forward = false;
    const RunResult base = harness::run_single(bench, false, opt);
    opt.fast_forward = true;
    const RunResult fast = harness::run_single(bench, false, opt);
    expect_identical(base, fast, bench);
  }
}

TEST(FastForward, SkipsIdleCyclesInOneCall) {
  // An I-miss leaves the only thread provably blocked for the miss penalty:
  // fast_forward must jump straight to the refill cycle and account every
  // skipped cycle as the iterated loop would.
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());
  cfg.icache.perfect = false;  // cold ICache: first fetch misses
  cfg.validate();
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 1\n"
                           "c0 halt\n",
                           "p")));
  sim.attach(0, &ctx);
  sim.step();  // fetch misses; fetch_ready_at = 1 + miss_penalty
  EXPECT_EQ(ctx.counters.imiss_block_cycles, 1u);
  const std::uint64_t skipped = sim.fast_forward(~0ull);
  EXPECT_EQ(skipped, cfg.icache.miss_penalty - 1);
  EXPECT_EQ(sim.cycle(), 1u + skipped);
  EXPECT_EQ(sim.stats().vertical_waste_cycles, 1u + skipped);
  // Every skipped cycle would have counted an I-miss block in refill_slot.
  EXPECT_EQ(ctx.counters.imiss_block_cycles, 1u + skipped);
  sim.step();  // the fetch-ready cycle: instruction issues
  EXPECT_EQ(sim.stats().ops_issued, 1u);
}

TEST(FastForward, RespectsTheLimit) {
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());
  cfg.icache.perfect = false;
  cfg.validate();
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 1\n"
                           "c0 halt\n",
                           "p")));
  sim.attach(0, &ctx);
  sim.step();  // miss at cycle 1; thread blocked until 1 + penalty
  const std::uint64_t limit = 5;
  EXPECT_EQ(sim.fast_forward(limit), limit - 2);  // skips cycles 2..limit-1
  EXPECT_EQ(sim.cycle(), limit - 1);
  EXPECT_EQ(sim.fast_forward(limit), 0u);  // already at the limit
}

TEST(FastForward, DisabledIsANoOp) {
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());
  cfg.icache.perfect = false;
  cfg.validate();
  Simulator sim(cfg);
  sim.set_fast_forward(false);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 1\n"
                           "c0 halt\n",
                           "p")));
  sim.attach(0, &ctx);
  sim.step();
  EXPECT_EQ(sim.fast_forward(~0ull), 0u);
  EXPECT_EQ(sim.cycle(), 1u);
}

TEST(FastForward, NeverSkipsWithWorkInFlight) {
  // A thread holding a partially issued instruction pins the clock: its
  // remaining parts merge every cycle, so nothing may be skipped.
  MachineConfig cfg = test::example_machine(2, 4, 1, Technique::smt());
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(
                           "c0 movi r1 = 1\n"
                           "c0 halt\n",
                           "p")));
  sim.attach(0, &ctx);
  ctx.issue.active = true;  // synthetic in-flight instruction
  EXPECT_EQ(sim.fast_forward(~0ull), 0u);
  ctx.issue.active = false;
}

}  // namespace
}  // namespace vexsim
