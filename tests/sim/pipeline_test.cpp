// Core single-thread pipeline semantics: NUAL latencies, same-cycle reads
// (the Figure 3 register swap), vertical nops, and basic accounting.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

// Runs a single-thread program on the 4×4 paper machine with perfect caches
// and returns the halted context.
struct SingleRun {
  std::unique_ptr<ThreadContext> ctx;
  SimStats stats;
};

SingleRun run_single(const char* source) {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.icache.perfect = true;
  cfg.dcache.perfect = true;
  cfg.branch_on_cluster0_only = false;
  Simulator sim(cfg);
  SingleRun r;
  r.ctx = std::make_unique<ThreadContext>(
      0, test::finalize(assemble(source, "prog")));
  sim.attach(0, r.ctx.get());
  EXPECT_TRUE(sim.run_to_halt(10'000));
  r.stats = sim.stats();
  return r;
}

TEST(Pipeline, Figure3_SwapReadsOldValues) {
  // "The instruction does a single cycle swap of the registers R3 and R5
  // without using extra registers and it is a legal VLIW instruction."
  const auto r = run_single(
      "c0 movi r3 = 1\n"
      "c0 movi r5 = 2\n"
      "c0 mov r3 = r5 ; c0 mov r5 = r3\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 3), 2u);
  EXPECT_EQ(r.ctx->regs.gpr(0, 5), 1u);
}

TEST(Pipeline, UnitLatencyVisibleNextCycle) {
  const auto r = run_single(
      "c0 movi r1 = 10\n"
      "c0 add r2 = r1, 5\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 2), 15u);
}

TEST(Pipeline, MulLatencyHonoredWhenScheduledApart) {
  const auto r = run_single(
      "c0 movi r1 = 6\n"
      "c0 mpyl r2 = r1, 7\n"
      "nop\n"
      "c0 add r3 = r2, 0\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 3), 42u);
}

TEST(Pipeline, NualViolationDetected) {
  // Reading a multiply result one cycle after issue violates the exposed
  // 2-cycle latency; the simulator's latency-window checker must trip.
  EXPECT_THROW(run_single("c0 movi r1 = 6\n"
                          "c0 mpyl r2 = r1, 7\n"
                          "c0 add r3 = r2, 0\n"
                          "c0 halt\n"),
               CheckError);
}

TEST(Pipeline, LoadLatencyRoundTrip) {
  const auto r = run_single(
      "c0 movi r1 = 0x200\n"
      "c0 stw 0[r1] = r1\n"
      "nop\n"
      "c0 ldw r2 = 0[r1]\n"
      "nop\n"
      "c0 add r3 = r2, 1\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 2), 0x200u);
  EXPECT_EQ(r.ctx->regs.gpr(0, 3), 0x201u);
}

TEST(Pipeline, SameCycleStoreLoadReadsOldMemory) {
  // A load and a store to the same address in one instruction (on different
  // clusters — one LS unit each): the load observes pre-instruction memory
  // (simultaneous-execution semantics).
  const auto r = run_single(
      "c0 movi r1 = 0x200 ; c1 movi r9 = 0x200\n"
      "c0 movi r2 = 77\n"
      "c0 stw 0[r1] = r2\n"
      "nop\n"
      "c0 stw 0[r1] = r1 ; c1 ldw r4 = 0[r9]\n"
      "nop\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(1, 4), 77u);          // old value
  EXPECT_EQ(r.ctx->mem.peek_u32(0x200), 0x200u);  // store applied
}

TEST(Pipeline, EmptyInstructionTakesOneCycle) {
  const auto with_nop = run_single(
      "c0 movi r1 = 1\nnop\nc0 add r2 = r1, 1\nc0 halt\n");
  const auto without = run_single(
      "c0 movi r1 = 1\nc0 add r2 = r1, 1\nc0 halt\n");
  EXPECT_EQ(with_nop.stats.cycles, without.stats.cycles + 1);
  EXPECT_EQ(with_nop.stats.instructions_retired, 4u);
}

TEST(Pipeline, OpsAndInstructionCounting) {
  const auto r = run_single(
      "c0 movi r1 = 1 ; c1 movi r2 = 2 ; c2 movi r3 = 3\n"
      "c0 halt\n");
  EXPECT_EQ(r.stats.instructions_retired, 2u);
  EXPECT_EQ(r.stats.ops_issued, 4u);
  EXPECT_EQ(r.ctx->counters.ops, 4u);
}

TEST(Pipeline, VerticalWasteCountsEmptyCycles) {
  const auto r = run_single("c0 movi r1 = 1\nnop\nnop\nc0 halt\n");
  EXPECT_EQ(r.stats.vertical_waste_cycles, 2u);
}

TEST(Pipeline, ZeroRegisterStaysZero) {
  const auto r = run_single(
      "c0 movi r0 = 55\n"
      "c0 add r1 = r0, 7\n"
      "c0 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 0), 0u);
  EXPECT_EQ(r.ctx->regs.gpr(0, 1), 7u);
}

TEST(Pipeline, FallingOffEndHalts) {
  const auto r = run_single("c0 movi r1 = 3\n");  // no explicit halt
  EXPECT_EQ(r.ctx->state, RunState::kHalted);
  EXPECT_EQ(r.ctx->regs.gpr(0, 1), 3u);
}

TEST(Pipeline, HaltAppliesOwnInstructionEffects) {
  const auto r = run_single("c0 movi r1 = 9 ; c1 halt\n");
  EXPECT_EQ(r.ctx->regs.gpr(0, 1), 9u);
  EXPECT_EQ(r.ctx->state, RunState::kHalted);
}

}  // namespace
}  // namespace vexsim
