#include "sim/exec.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim {
namespace {

TEST(Exec, Arithmetic) {
  EXPECT_EQ(eval_scalar(Opcode::kAdd, 3, 4, false), 7u);
  EXPECT_EQ(eval_scalar(Opcode::kSub, 3, 4, false), 0xFFFFFFFFu);
  EXPECT_EQ(eval_scalar(Opcode::kMpyl, 0x10000, 0x10000, false), 0u);
  EXPECT_EQ(eval_scalar(Opcode::kMpyh, 0x10000, 0x10000, false), 1u);
  // Signed high multiply: (-1) * (-1) = 1 → high word 0.
  EXPECT_EQ(eval_scalar(Opcode::kMpyh, 0xFFFFFFFF, 0xFFFFFFFF, false), 0u);
  EXPECT_EQ(eval_scalar(Opcode::kMpyl, 0xFFFFFFFF, 5, false),
            static_cast<std::uint32_t>(-5));
}

TEST(Exec, Logic) {
  EXPECT_EQ(eval_scalar(Opcode::kAnd, 0b1100, 0b1010, false), 0b1000u);
  EXPECT_EQ(eval_scalar(Opcode::kAndc, 0b1100, 0b1010, false), 0b0010u);
  EXPECT_EQ(eval_scalar(Opcode::kOr, 0b1100, 0b1010, false), 0b1110u);
  EXPECT_EQ(eval_scalar(Opcode::kXor, 0b1100, 0b1010, false), 0b0110u);
}

TEST(Exec, Shifts) {
  EXPECT_EQ(eval_scalar(Opcode::kShl, 1, 4, false), 16u);
  EXPECT_EQ(eval_scalar(Opcode::kShl, 1, 32, false), 0u);
  EXPECT_EQ(eval_scalar(Opcode::kShru, 0x80000000, 31, false), 1u);
  EXPECT_EQ(eval_scalar(Opcode::kShru, 0x80000000, 32, false), 0u);
  // Arithmetic right shift keeps the sign.
  EXPECT_EQ(eval_scalar(Opcode::kShr, 0x80000000, 31, false), 0xFFFFFFFFu);
  EXPECT_EQ(eval_scalar(Opcode::kShr, 0x80000000, 40, false), 0xFFFFFFFFu);
  EXPECT_EQ(eval_scalar(Opcode::kShr, 0x40000000, 40, false), 0u);
}

TEST(Exec, MinMax) {
  EXPECT_EQ(eval_scalar(Opcode::kMin, static_cast<std::uint32_t>(-5), 3,
                        false),
            static_cast<std::uint32_t>(-5));
  EXPECT_EQ(eval_scalar(Opcode::kMax, static_cast<std::uint32_t>(-5), 3,
                        false),
            3u);
  EXPECT_EQ(eval_scalar(Opcode::kMinu, static_cast<std::uint32_t>(-5), 3,
                        false),
            3u);  // unsigned: 0xFFFFFFFB > 3
  EXPECT_EQ(eval_scalar(Opcode::kMaxu, static_cast<std::uint32_t>(-5), 3,
                        false),
            static_cast<std::uint32_t>(-5));
}

TEST(Exec, Extensions) {
  EXPECT_EQ(eval_scalar(Opcode::kSxtb, 0x80, 0, false), 0xFFFFFF80u);
  EXPECT_EQ(eval_scalar(Opcode::kSxth, 0x8000, 0, false), 0xFFFF8000u);
  EXPECT_EQ(eval_scalar(Opcode::kZxtb, 0x1FF, 0, false), 0xFFu);
  EXPECT_EQ(eval_scalar(Opcode::kZxth, 0x12345678, 0, false), 0x5678u);
}

TEST(Exec, Compares) {
  EXPECT_EQ(eval_scalar(Opcode::kCmpeq, 5, 5, false), 1u);
  EXPECT_EQ(eval_scalar(Opcode::kCmpne, 5, 5, false), 0u);
  EXPECT_EQ(eval_scalar(Opcode::kCmplt, static_cast<std::uint32_t>(-1), 0,
                        false),
            1u);  // signed
  EXPECT_EQ(eval_scalar(Opcode::kCmpltu, static_cast<std::uint32_t>(-1), 0,
                        false),
            0u);  // unsigned
  EXPECT_EQ(eval_scalar(Opcode::kCmpge, 3, 3, false), 1u);
  EXPECT_EQ(eval_scalar(Opcode::kCmpgeu, 0, 1, false), 0u);
  EXPECT_EQ(eval_scalar(Opcode::kCmple, static_cast<std::uint32_t>(-7),
                        static_cast<std::uint32_t>(-7), false),
            1u);
  EXPECT_EQ(eval_scalar(Opcode::kCmpgt, 4, 3, false), 1u);
}

TEST(Exec, Selects) {
  EXPECT_EQ(eval_scalar(Opcode::kSlct, 10, 20, true), 10u);
  EXPECT_EQ(eval_scalar(Opcode::kSlct, 10, 20, false), 20u);
  EXPECT_EQ(eval_scalar(Opcode::kSlctf, 10, 20, true), 20u);
  EXPECT_EQ(eval_scalar(Opcode::kSlctf, 10, 20, false), 10u);
}

TEST(Exec, Moves) {
  EXPECT_EQ(eval_scalar(Opcode::kMov, 42, 0, false), 42u);
  EXPECT_EQ(eval_scalar(Opcode::kMovi, 0, 42, false), 42u);
}

TEST(Exec, MemAccessSizes) {
  EXPECT_EQ(mem_access_size(Opcode::kLdw), 4);
  EXPECT_EQ(mem_access_size(Opcode::kStw), 4);
  EXPECT_EQ(mem_access_size(Opcode::kLdh), 2);
  EXPECT_EQ(mem_access_size(Opcode::kLdhu), 2);
  EXPECT_EQ(mem_access_size(Opcode::kStb), 1);
  EXPECT_THROW((void)mem_access_size(Opcode::kAdd), CheckError);
}

TEST(Exec, LoadExtension) {
  EXPECT_EQ(extend_loaded(Opcode::kLdw, 0xCAFEBABE), 0xCAFEBABEu);
  EXPECT_EQ(extend_loaded(Opcode::kLdh, 0x8001), 0xFFFF8001u);
  EXPECT_EQ(extend_loaded(Opcode::kLdhu, 0x8001), 0x8001u);
  EXPECT_EQ(extend_loaded(Opcode::kLdb, 0xFF), 0xFFFFFFFFu);
  EXPECT_EQ(extend_loaded(Opcode::kLdbu, 0xFF), 0xFFu);
}

TEST(Exec, BranchDecision) {
  EXPECT_TRUE(branch_taken(Opcode::kBr, true));
  EXPECT_FALSE(branch_taken(Opcode::kBr, false));
  EXPECT_FALSE(branch_taken(Opcode::kBrf, true));
  EXPECT_TRUE(branch_taken(Opcode::kBrf, false));
  EXPECT_TRUE(branch_taken(Opcode::kGoto, false));
  EXPECT_FALSE(branch_taken(Opcode::kHalt, true));
}

TEST(Exec, NonScalarOpcodeRejected) {
  EXPECT_THROW((void)eval_scalar(Opcode::kLdw, 0, 0, false), CheckError);
  EXPECT_THROW((void)eval_scalar(Opcode::kBr, 0, 0, false), CheckError);
}

}  // namespace
}  // namespace vexsim
