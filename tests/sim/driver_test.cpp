// Multiprogrammed driver: timeslicing, random replacement, respawn, budget
// termination (Section VI-A).
#include "sim/driver.hpp"

#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

// A short counted loop: 10 iterations, ~43 VLIW instructions per completion.
std::shared_ptr<const Program> loop_program(const std::string& name) {
  return test::finalize(assemble(
      "c0 movi r1 = 10\n"
      "top:\n"
      "c0 add r2 = r2, 1\n"
      "c0 add r1 = r1, -1\n"
      "c0 cmpgt b0 = r1, 0\n"
      "nop\n"
      "c0 br b0, top\n"
      "c0 halt\n",
      name));
}

MachineConfig machine(int threads) {
  return test::example_machine(4, 4, threads, Technique::smt());
}

TEST(Driver, SingleProgramRunsToBudget) {
  DriverParams params;
  params.budget = 500;
  params.timeslice = 1'000'000;
  params.max_cycles = 1'000'000;
  MultiprogramDriver driver(machine(1), {loop_program("a")}, params);
  const RunResult r = driver.run();
  ASSERT_EQ(r.instances.size(), 1u);
  EXPECT_GE(r.instances[0].instructions, 500u);
  EXPECT_GT(r.instances[0].respawns, 1u);  // 43 instructions per pass
  EXPECT_GT(r.ipc(), 0.0);
}

TEST(Driver, RespawnDisabledRunsOnce) {
  DriverParams params;
  params.budget = 1'000'000;
  params.respawn = false;
  params.max_cycles = 100'000;
  MultiprogramDriver driver(machine(1), {loop_program("a")}, params);
  const RunResult r = driver.run();
  EXPECT_EQ(r.instances[0].respawns, 0u);
  EXPECT_LT(r.instances[0].instructions, 100u);
}

TEST(Driver, AllInstancesProgressUnderTimeslicing) {
  // 4 programs on a 2-thread machine: the rotating schedule must give every
  // instance cycles.
  DriverParams params;
  params.budget = 400;
  params.timeslice = 60;
  params.max_cycles = 1'000'000;
  params.seed = 7;
  std::vector<std::shared_ptr<const Program>> programs;
  for (int i = 0; i < 4; ++i)
    programs.push_back(loop_program("p" + std::to_string(i)));
  MultiprogramDriver driver(machine(2), programs, params);
  const RunResult r = driver.run();
  for (const InstanceResult& inst : r.instances)
    EXPECT_GT(inst.instructions, 0u) << inst.name;
}

TEST(Driver, BudgetStopsTheRun) {
  DriverParams params;
  params.budget = 100;
  params.max_cycles = 1'000'000;
  MultiprogramDriver driver(machine(1), {loop_program("a")}, params);
  const RunResult r = driver.run();
  // Stops promptly once an instance crosses the budget.
  EXPECT_LT(r.instances[0].instructions, 100u + 50u);
}

TEST(Driver, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    DriverParams params;
    params.budget = 300;
    params.timeslice = 50;
    params.max_cycles = 1'000'000;
    params.seed = seed;
    std::vector<std::shared_ptr<const Program>> programs;
    for (int i = 0; i < 4; ++i)
      programs.push_back(loop_program("p" + std::to_string(i)));
    MultiprogramDriver driver(machine(2), programs, params);
    return driver.run();
  };
  const RunResult a = run_once(5);
  const RunResult b = run_once(5);
  EXPECT_EQ(a.sim.cycles, b.sim.cycles);
  EXPECT_EQ(a.sim.ops_issued, b.sim.ops_issued);
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].instructions, b.instances[i].instructions);
    EXPECT_EQ(a.instances[i].arch_fingerprint,
              b.instances[i].arch_fingerprint);
  }
}

TEST(Driver, TwoThreadsImproveThroughput) {
  auto ipc_for = [](int threads) {
    DriverParams params;
    params.budget = 400;
    params.timeslice = 1'000;
    params.max_cycles = 1'000'000;
    std::vector<std::shared_ptr<const Program>> programs = {
        loop_program("a"), loop_program("b")};
    MultiprogramDriver driver(machine(threads), programs, params);
    return driver.run().ipc();
  };
  // The loop is serial (IPC ≈ 1 alone); two threads merge nearly perfectly
  // at operation level, so machine throughput almost doubles.
  EXPECT_GT(ipc_for(2), ipc_for(1) * 1.5);
}

TEST(Driver, RunToCompletionMode) {
  DriverParams params;
  params.budget = 1'000'000;
  params.respawn = false;
  params.max_cycles = 100'000;
  std::vector<std::shared_ptr<const Program>> programs = {
      loop_program("a"), loop_program("b"), loop_program("c")};
  MultiprogramDriver driver(machine(2), programs, params);
  const RunResult r = driver.run();
  // All three ran to completion (the third was picked up when a slot freed).
  for (const InstanceResult& inst : r.instances) {
    EXPECT_GT(inst.instructions, 40u);
    EXPECT_FALSE(inst.faulted);
  }
}

TEST(Driver, WasteAccountingIdentity) {
  DriverParams params;
  params.budget = 300;
  params.max_cycles = 1'000'000;
  MultiprogramDriver driver(machine(1), {loop_program("a")}, params);
  const RunResult r = driver.run();
  // issued ops + wasted slots = cycles × width.
  const double total_slots =
      static_cast<double>(r.sim.cycles) * r.issue_width;
  const double vertical = static_cast<double>(r.sim.vertical_waste_cycles) *
                          r.issue_width;
  const double horizontal =
      r.sim.horizontal_waste_fraction(r.issue_width) * total_slots;
  EXPECT_NEAR(static_cast<double>(r.sim.ops_issued) + vertical + horizontal,
              total_slots, 1.0);
}

}  // namespace
}  // namespace vexsim
