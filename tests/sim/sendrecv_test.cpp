// Inter-cluster communication under split-issue — Figure 12.
//
// VEX semantics pair send and recv in one instruction. Split-issue may tear
// them apart: send-before-recv buffers the value (Fig. 12c); recv-before-
// send records the destination register and the send writes it directly
// (Fig. 12d). Under CommPolicy::kNoSplit such instructions never split.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

// T1 copies r3 (cluster 0) into r5 (cluster 1). r3 is preset to 77.
const char* kCopy =
    "c0 send ch0 = r3 ; c1 recv r5 = ch0\n"
    "c0 halt\n";

// T0 variants that block one side of T1's copy in cycle 1 (CCSI: cluster
// granularity; T0 has priority in cycle 1).
const char* kBlockC1 = "c1 add r1 = r2, r3 ; c1 or r4 = r5, r6\n";
const char* kBlockC0 = "c0 add r1 = r2, r3 ; c0 or r4 = r5, r6\n";

struct Rig {
  Simulator sim;
  ThreadContext t0;
  ThreadContext t1;
  Rig(const MachineConfig& cfg, const char* t0_src)
      : sim(cfg),
        t0(0, test::finalize(assemble(t0_src, "t0"))),
        t1(1, test::finalize(assemble(kCopy, "t1"))) {
    t1.regs.set_gpr(0, 3, 77);
    sim.attach(0, &t0);
    sim.attach(1, &t1);
  }
};

TEST(SendRecv, SameCycleTransfer) {
  // Single thread: the pair always issues together (Figure 12b).
  MachineConfig cfg =
      test::example_machine(2, 3, 1, Technique::smt());
  Simulator sim(cfg);
  ThreadContext ctx(0, test::finalize(assemble(kCopy, "t")));
  ctx.regs.set_gpr(0, 3, 77);
  sim.attach(0, &ctx);
  ASSERT_TRUE(sim.run_to_halt(50));
  EXPECT_EQ(ctx.regs.gpr(1, 5), 77u);
}

TEST(SendRecv, SendAheadOfRecvBuffersData) {
  // T0 blocks cluster 1 → T1's send issues first (Figure 12c).
  Rig rig(test::example_machine(2, 3, 2,
                                Technique::ccsi(CommPolicy::kAlwaysSplit)),
          kBlockC1);
  ASSERT_TRUE(rig.sim.run_to_halt(50));
  EXPECT_EQ(rig.t1.regs.gpr(1, 5), 77u);
  EXPECT_EQ(rig.t1.counters.split_instructions, 1u);
}

TEST(SendRecv, RecvAheadOfSendWritesOnArrival) {
  // T0 blocks cluster 0 → T1's recv issues first (Figure 12d): the
  // destination register is remembered and written when the data arrives.
  Rig rig(test::example_machine(2, 3, 2,
                                Technique::ccsi(CommPolicy::kAlwaysSplit)),
          kBlockC0);
  ASSERT_TRUE(rig.sim.run_to_halt(50));
  EXPECT_EQ(rig.t1.regs.gpr(1, 5), 77u);
  EXPECT_EQ(rig.t1.counters.split_instructions, 1u);
}

TEST(SendRecv, NoSplitPolicyKeepsPairTogether) {
  // Under NS the copy instruction merges only in its entirety: it waits for
  // both clusters and never splits.
  Rig rig(test::example_machine(2, 3, 2,
                                Technique::ccsi(CommPolicy::kNoSplit)),
          kBlockC1);
  ASSERT_TRUE(rig.sim.run_to_halt(50));
  EXPECT_EQ(rig.t1.regs.gpr(1, 5), 77u);
  EXPECT_EQ(rig.t1.counters.split_instructions, 0u);
}

TEST(SendRecv, AlwaysSplitFinishesNoLaterThanNoSplit) {
  Rig as(test::example_machine(2, 3, 2,
                               Technique::ccsi(CommPolicy::kAlwaysSplit)),
         kBlockC1);
  ASSERT_TRUE(as.sim.run_to_halt(50));
  Rig ns(test::example_machine(2, 3, 2,
                               Technique::ccsi(CommPolicy::kNoSplit)),
         kBlockC1);
  ASSERT_TRUE(ns.sim.run_to_halt(50));
  EXPECT_LE(as.sim.stats().cycles, ns.sim.stats().cycles);
}

TEST(SendRecv, MultipleChannelsInOneInstruction) {
  MachineConfig cfg = test::example_machine(2, 3, 1, Technique::smt());
  Simulator sim(cfg);
  const char* two_copies =
      "c0 send ch0 = r3 ; c1 recv r5 = ch0 ; "
      "c1 send ch1 = r6 ; c0 recv r7 = ch1\n"
      "c0 halt\n";
  ThreadContext ctx(0, test::finalize(assemble(two_copies, "t")));
  ctx.regs.set_gpr(0, 3, 111);
  ctx.regs.set_gpr(1, 6, 222);
  sim.attach(0, &ctx);
  ASSERT_TRUE(sim.run_to_halt(50));
  EXPECT_EQ(ctx.regs.gpr(1, 5), 111u);
  EXPECT_EQ(ctx.regs.gpr(0, 7), 222u);
}

TEST(SendRecv, ValueReadAtSendIssueCycle) {
  // The transferred value is the source register at the send's issue cycle;
  // a later redefinition (next instruction) must not leak into the copy.
  MachineConfig cfg = test::example_machine(2, 3, 1, Technique::smt());
  Simulator sim(cfg);
  const char* prog =
      "c0 send ch0 = r3 ; c1 recv r5 = ch0\n"
      "c0 movi r3 = 999\n"
      "c0 halt\n";
  ThreadContext ctx(0, test::finalize(assemble(prog, "t")));
  ctx.regs.set_gpr(0, 3, 42);
  sim.attach(0, &ctx);
  ASSERT_TRUE(sim.run_to_halt(50));
  EXPECT_EQ(ctx.regs.gpr(1, 5), 42u);
  EXPECT_EQ(ctx.regs.gpr(0, 3), 999u);
}

}  // namespace
}  // namespace vexsim
