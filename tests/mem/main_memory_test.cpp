#include "mem/main_memory.hpp"

#include <gtest/gtest.h>

namespace vexsim {
namespace {

TEST(MainMemory, ZeroInitialized) {
  const MainMemory mem;
  std::uint32_t v = 1;
  ASSERT_TRUE(mem.load(0x1000, 4, v));
  EXPECT_EQ(v, 0u);
}

TEST(MainMemory, StoreLoadWord) {
  MainMemory mem;
  ASSERT_TRUE(mem.store(0x2000, 4, 0xDEADBEEF));
  std::uint32_t v = 0;
  ASSERT_TRUE(mem.load(0x2000, 4, v));
  EXPECT_EQ(v, 0xDEADBEEFu);
}

TEST(MainMemory, LittleEndianBytes) {
  MainMemory mem;
  ASSERT_TRUE(mem.store(0x2000, 4, 0x11223344));
  std::uint32_t b = 0;
  ASSERT_TRUE(mem.load(0x2000, 1, b));
  EXPECT_EQ(b, 0x44u);
  ASSERT_TRUE(mem.load(0x2003, 1, b));
  EXPECT_EQ(b, 0x11u);
  ASSERT_TRUE(mem.load(0x2002, 2, b));
  EXPECT_EQ(b, 0x1122u);
}

TEST(MainMemory, MisalignedFaults) {
  MainMemory mem;
  std::uint32_t v = 0;
  EXPECT_FALSE(mem.load(0x2001, 4, v));
  EXPECT_FALSE(mem.load(0x2001, 2, v));
  EXPECT_TRUE(mem.load(0x2001, 1, v));
  EXPECT_FALSE(mem.store(0x2002, 4, 1));
  EXPECT_TRUE(mem.store(0x2002, 2, 1));
}

TEST(MainMemory, GuardPageFaults) {
  MainMemory mem;
  std::uint32_t v = 0;
  EXPECT_FALSE(mem.load(0x0, 4, v));
  EXPECT_FALSE(mem.load(0xFC, 4, v));
  EXPECT_FALSE(mem.store(0x10, 4, 1));
  EXPECT_TRUE(mem.load(0x100, 4, v));
}

TEST(MainMemory, SparsePagesIndependent) {
  MainMemory mem;
  ASSERT_TRUE(mem.store(0x0001'0000, 4, 1));
  ASSERT_TRUE(mem.store(0x7000'0000, 4, 2));
  std::uint32_t v = 0;
  ASSERT_TRUE(mem.load(0x0001'0000, 4, v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(mem.load(0x7000'0000, 4, v));
  EXPECT_EQ(v, 2u);
}

TEST(MainMemory, PokeBytesAcrossPages) {
  MainMemory mem;
  const std::uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t addr = MainMemory::kPageSize - 4;
  mem.poke_bytes(addr, data, 8);
  std::uint32_t v = 0;
  ASSERT_TRUE(mem.load(addr, 4, v));
  EXPECT_EQ(v, 0x04030201u);
  ASSERT_TRUE(mem.load(addr + 4, 4, v));
  EXPECT_EQ(v, 0x08070605u);
}

TEST(MainMemory, FingerprintDetectsChanges) {
  MainMemory a, b;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ASSERT_TRUE(a.store(0x3000, 4, 7));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  ASSERT_TRUE(b.store(0x3000, 4, 7));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(MainMemory, FingerprintIgnoresZeroWrites) {
  // Writing zeros allocates pages but leaves content equal to untouched
  // memory; the digest must not distinguish them.
  MainMemory a, b;
  ASSERT_TRUE(a.store(0x5000, 4, 0));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(MainMemory, ClearResets) {
  MainMemory mem;
  ASSERT_TRUE(mem.store(0x4000, 4, 9));
  mem.clear();
  std::uint32_t v = 1;
  ASSERT_TRUE(mem.load(0x4000, 4, v));
  EXPECT_EQ(v, 0u);
}

}  // namespace
}  // namespace vexsim
