// Memory-backend unit tests: MSHR coalescing/capacity, DRAM row-buffer and
// bank-queue timing, the shared L2, and the two MemoryBackend
// implementations' contracts (fixed = seed's flat penalty + kNoEvent;
// hierarchy = MSHR -> L2 -> DRAM composition).
#include <gtest/gtest.h>

#include "mem/backend.hpp"
#include "util/check.hpp"

namespace vexsim::mem {
namespace {

constexpr std::uint32_t kLineShift = 6;  // 64-byte lines

// --- MshrFile -------------------------------------------------------------

TEST(MshrFile, AllocatesAndPrunesByCompletionCycle) {
  MshrFile mshr(4, kLineShift);
  const std::uint64_t ready =
      mshr.request(0, 0x1000, 10, [](std::uint64_t start) {
        return start + 25;
      });
  EXPECT_EQ(ready, 35u);
  EXPECT_EQ(mshr.live_entries(), 1u);
  EXPECT_EQ(mshr.stats().allocations, 1u);

  // A request at a cycle past the fill prunes the entry and allocates anew.
  mshr.request(0, 0x2000, 40, [](std::uint64_t s) { return s + 25; });
  EXPECT_EQ(mshr.live_entries(), 1u);
  EXPECT_EQ(mshr.stats().allocations, 2u);
}

TEST(MshrFile, CoalescesSameLineIntoOneFill) {
  MshrFile mshr(4, kLineShift);
  int fills = 0;
  const auto fill = [&](std::uint64_t start) {
    ++fills;
    return start + 25;
  };
  const std::uint64_t first = mshr.request(7, 0x1000, 10, fill);
  // Same line (0x1000 and 0x1020 share a 64-byte line), same asid: merged.
  const std::uint64_t second = mshr.request(7, 0x1020, 12, fill);
  EXPECT_EQ(first, second);
  EXPECT_EQ(fills, 1);
  EXPECT_EQ(mshr.stats().merges, 1u);
  // Same line, different asid: distinct miss (asid tags the line key).
  mshr.request(8, 0x1000, 12, fill);
  EXPECT_EQ(fills, 2);
  EXPECT_EQ(mshr.stats().allocations, 2u);
}

TEST(MshrFile, FullFileStallsUntilEarliestCompletion) {
  MshrFile mshr(2, kLineShift);
  mshr.request(0, 0x0000, 10, [](std::uint64_t s) { return s + 20; });  // 30
  mshr.request(0, 0x1000, 10, [](std::uint64_t s) { return s + 40; });  // 50
  // File full at cycle 11: the new miss waits for the earliest entry (30)
  // before its own fill can even start — the structural stall the bounded
  // file models.
  std::uint64_t start_seen = 0;
  const std::uint64_t ready =
      mshr.request(0, 0x2000, 11, [&](std::uint64_t start) {
        start_seen = start;
        return start + 20;
      });
  EXPECT_EQ(start_seen, 30u);
  EXPECT_EQ(ready, 50u);
  EXPECT_EQ(mshr.stats().full_stalls, 1u);
  EXPECT_EQ(mshr.live_entries(), 2u);  // victim evicted, new entry in
  EXPECT_EQ(mshr.stats().peak_occupancy, 2u);
}

TEST(MshrFile, NextCompletionAfterReportsEarliestInFlight) {
  MshrFile mshr(4, kLineShift);
  EXPECT_EQ(mshr.next_completion_after(0), ~0ull);
  mshr.request(0, 0x0000, 10, [](std::uint64_t s) { return s + 20; });  // 30
  mshr.request(0, 0x1000, 10, [](std::uint64_t s) { return s + 5; });   // 15
  EXPECT_EQ(mshr.next_completion_after(10), 15u);
  EXPECT_EQ(mshr.next_completion_after(15), 30u);  // strictly after
  EXPECT_EQ(mshr.next_completion_after(30), ~0ull);
}

TEST(MshrFile, RejectsZeroAndOversizedCapacity) {
  EXPECT_THROW(MshrFile(0, kLineShift), CheckError);
  EXPECT_THROW(MshrFile(65, kLineShift), CheckError);
}

// --- DramModel ------------------------------------------------------------

DramConfig dram_cfg() {
  DramConfig cfg;
  cfg.banks = 4;
  cfg.row_bytes = 1024;
  cfg.t_row_hit = 10;
  cfg.t_row_closed = 20;
  cfg.t_row_conflict = 35;
  cfg.t_bank_busy = 6;
  return cfg;
}

TEST(DramModel, RowBufferStatesPayDistinctLatencies) {
  DramModel dram(dram_cfg(), 64);
  // First touch: bank closed -> activate.
  EXPECT_EQ(dram.access(0, 0x0000, 100), 120u);
  EXPECT_EQ(dram.stats().row_closed, 1u);
  // Same bank (4 lines on), same row, bank free again: open-row hit.
  EXPECT_EQ(dram.access(0, 0x0100, 200), 210u);
  EXPECT_EQ(dram.stats().row_hits, 1u);
  // Different row on the same bank (row stride 1024, bank stride 64 with 4
  // banks -> +1024 keeps the bank, changes the row): conflict.
  EXPECT_EQ(dram.access(0, 0x0000 + 1024, 300), 335u);
  EXPECT_EQ(dram.stats().row_conflicts, 1u);
  EXPECT_NEAR(dram.stats().row_hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST(DramModel, BankQueueSerializesBackToBackRequests) {
  DramModel dram(dram_cfg(), 64);
  // Two same-cycle requests to the same bank and row: the second waits
  // t_bank_busy behind the first (issue = next_free), then row-hits.
  EXPECT_EQ(dram.access(0, 0x0000, 100), 120u);   // closed: 100 + 20
  EXPECT_EQ(dram.access(0, 0x0000, 100), 116u);   // issue 106, hit: + 10
  // A different bank is independent: no queueing.
  EXPECT_EQ(dram.access(0, 0x0040, 100), 120u);
}

TEST(DramModel, AsidsMapToDistinctRowsAndBanks) {
  DramModel dram(dram_cfg(), 64);
  dram.access(0, 0x0000, 100);
  // Same address, different asid: different row key — never an open-row hit
  // (and the +asid bank swizzle sends it to another bank here).
  dram.access(1, 0x0000, 100);
  EXPECT_EQ(dram.stats().row_hits, 0u);
  EXPECT_EQ(dram.stats().row_closed, 2u);
}

TEST(DramModel, RejectsNonPowerOfTwoGeometry) {
  DramConfig bad = dram_cfg();
  bad.banks = 3;
  EXPECT_THROW(DramModel(bad, 64), CheckError);
  bad = dram_cfg();
  bad.row_bytes = 1000;
  EXPECT_THROW(DramModel(bad, 64), CheckError);
  // Row smaller than the fill line is meaningless.
  bad = dram_cfg();
  bad.row_bytes = 32;
  EXPECT_THROW(DramModel(bad, 64), CheckError);
}

// --- SharedL2 -------------------------------------------------------------

TEST(SharedL2, SecondTouchOfALineHits) {
  L2Config cfg;
  cfg.size_bytes = 4096;
  cfg.assoc = 2;
  cfg.line_bytes = 64;
  cfg.hit_latency = 9;
  SharedL2 l2(cfg);
  EXPECT_FALSE(l2.access(0, 0x1000));
  EXPECT_TRUE(l2.access(0, 0x1030));  // same line
  EXPECT_FALSE(l2.access(1, 0x1000));  // other asid: distinct line
  EXPECT_EQ(l2.hit_latency(), 9u);
  EXPECT_EQ(l2.stats().hits, 1u);
  EXPECT_EQ(l2.stats().misses, 2u);
}

// --- Backends -------------------------------------------------------------

TEST(FixedLatencyBackend, FlatPenaltyAndNoEvents) {
  MachineConfig cfg = MachineConfig::paper(2, Technique::smt());
  FixedLatencyBackend be(cfg);
  EXPECT_EQ(be.ifetch_miss(0, 0x100, 50), 50 + cfg.icache.miss_penalty);
  EXPECT_EQ(be.dmem_miss(0, 0x100, false, 50), 50 + cfg.dcache.miss_penalty);
  EXPECT_EQ(be.dmem_miss(0, 0x100, true, 50), 50 + cfg.dcache.miss_penalty);
  EXPECT_EQ(be.next_event_after(0), MemoryBackend::kNoEvent);
  EXPECT_FALSE(be.memory_stats().present);
}

TEST(HierarchyBackend, MissFillsThroughL2ThenDram) {
  MachineConfig cfg = MachineConfig::paper(2, Technique::smt());
  cfg.memory.backend = MemBackendKind::kHierarchy;
  HierarchyBackend be(cfg);
  const std::uint32_t lat_l2 = cfg.memory.l2.hit_latency;

  // Cold miss: L2 misses too, so the fill goes to DRAM (closed row) behind
  // the L2 lookup.
  const std::uint64_t cold = be.dmem_miss(0, 0x4000, false, 100);
  EXPECT_EQ(cold, 100 + lat_l2 + cfg.memory.dram.t_row_closed);
  const MemoryStats after_cold = be.memory_stats();
  EXPECT_TRUE(after_cold.present);
  EXPECT_EQ(after_cold.dmshr.allocations, 1u);
  EXPECT_EQ(after_cold.l2.misses, 1u);
  EXPECT_EQ(after_cold.dram.row_closed, 1u);

  // Same line while in flight: coalesced, same completion, no new fill.
  EXPECT_EQ(be.dmem_miss(0, 0x4010, false, 101), cold);
  EXPECT_EQ(be.memory_stats().dmshr.merges, 1u);

  // Re-miss of the line after the fill completed (e.g. L1 evicted it): the
  // L2 kept it — inclusive — so the fill stops at the L2 hit latency.
  const std::uint64_t warm = be.dmem_miss(0, 0x4000, false, cold + 10);
  EXPECT_EQ(warm, cold + 10 + lat_l2);
  EXPECT_EQ(be.memory_stats().l2.hits, 1u);

  // next_event_after tracks the in-flight fill and empties once it lands.
  const std::uint64_t inflight = be.ifetch_miss(0, 0x8000, warm + 1);
  EXPECT_EQ(be.next_event_after(warm + 1), inflight);
  EXPECT_EQ(be.next_event_after(inflight), MemoryBackend::kNoEvent);
}

TEST(MakeBackend, SelectsByConfigKind) {
  MachineConfig cfg = MachineConfig::paper(2, Technique::smt());
  EXPECT_FALSE(make_backend(cfg)->memory_stats().present);
  cfg.memory.backend = MemBackendKind::kHierarchy;
  EXPECT_TRUE(make_backend(cfg)->memory_stats().present);
}

}  // namespace
}  // namespace vexsim::mem
