#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim {
namespace {

CacheConfig small_cache() {
  CacheConfig cfg;
  cfg.size_bytes = 1024;  // 4 sets × 4 ways × 64B
  cfg.assoc = 4;
  cfg.line_bytes = 64;
  cfg.miss_penalty = 20;
  return cfg;
}

TEST(Cache, GeometryDerivation) {
  Cache c(small_cache());
  EXPECT_EQ(c.num_sets(), 4u);
  const Cache paper((CacheConfig()));
  EXPECT_EQ(paper.num_sets(), 64u * 1024 / (4 * 64));
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0, 0x1000));
  EXPECT_TRUE(c.access(0, 0x1000));
  EXPECT_TRUE(c.access(0, 0x103F));  // same line
  EXPECT_FALSE(c.access(0, 0x1040)); // next line
  EXPECT_EQ(c.stats().misses, 2u);
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(Cache, LruEviction) {
  Cache c(small_cache());
  // 4-way set: fill one set with 4 distinct tags (stride = sets*line).
  const std::uint32_t stride = 4 * 64;
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_FALSE(c.access(0, i * stride));
  // Touch line 0 so line 1 becomes LRU.
  EXPECT_TRUE(c.access(0, 0));
  // A 5th line evicts line 1 (the LRU).
  EXPECT_FALSE(c.access(0, 4 * stride));
  EXPECT_TRUE(c.access(0, 0));          // still resident
  EXPECT_FALSE(c.access(0, 1 * stride)); // evicted
}

TEST(Cache, AsidsDoNotAlias) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0, 0x2000));
  // Same address, different address space: distinct line (SMT threads of a
  // multiprogrammed workload interfere but never falsely hit).
  EXPECT_FALSE(c.access(1, 0x2000));
  EXPECT_TRUE(c.access(0, 0x2000));
  EXPECT_TRUE(c.access(1, 0x2000));
}

TEST(Cache, ThreadsInterfereInSharedCache) {
  Cache c(small_cache());
  const std::uint32_t stride = 4 * 64;
  for (std::uint32_t i = 0; i < 4; ++i) c.access(0, i * stride);
  // Thread 1 streams through the same set and evicts thread 0's lines.
  for (std::uint32_t i = 0; i < 4; ++i) c.access(1, i * stride);
  EXPECT_FALSE(c.access(0, 0));
}

TEST(Cache, PerfectCacheAlwaysHits) {
  CacheConfig cfg = small_cache();
  cfg.perfect = true;
  Cache c(cfg);
  EXPECT_TRUE(c.access(0, 0x9999 & ~3u));
  EXPECT_TRUE(c.access(3, 0x1234 & ~3u));
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, WouldHitHasNoSideEffects) {
  Cache c(small_cache());
  EXPECT_FALSE(c.would_hit(0, 0x3000));
  EXPECT_EQ(c.stats().accesses(), 0u);
  c.access(0, 0x3000);
  EXPECT_TRUE(c.would_hit(0, 0x3000));
}

TEST(Cache, ResetClears) {
  Cache c(small_cache());
  c.access(0, 0x1000);
  c.reset();
  EXPECT_FALSE(c.would_hit(0, 0x1000));
  EXPECT_EQ(c.stats().accesses(), 0u);
}

TEST(Cache, MissRate) {
  Cache c(small_cache());
  c.access(0, 0);
  c.access(0, 0);
  c.access(0, 0);
  c.access(0, 0);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.25);
}

TEST(Cache, BadGeometryRejected) {
  CacheConfig cfg = small_cache();
  cfg.line_bytes = 48;  // not a power of two
  EXPECT_THROW(Cache{cfg}, CheckError);
}

}  // namespace
}  // namespace vexsim
