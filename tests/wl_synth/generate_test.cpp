#include "wl_synth/generate.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cc/verifier.hpp"
#include "harness/experiments.hpp"
#include "util/check.hpp"
#include "workloads/registry.hpp"

namespace vexsim::wl_synth {
namespace {

// Full structural fingerprint: disassembly plus initial data bytes. Two
// programs with equal fingerprints are bit-identical as far as the
// simulator is concerned.
std::string fingerprint(const Program& prog) {
  std::string fp = to_string(prog);
  for (const DataSegment& seg : prog.data) {
    fp += "@" + std::to_string(seg.addr) + ":";
    fp.append(reinterpret_cast<const char*>(seg.bytes.data()),
              seg.bytes.size());
  }
  return fp;
}

MachineConfig asymmetric_cfg() {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                           ClusterResourceConfig::for_issue_width(4),
                           ClusterResourceConfig::for_issue_width(2),
                           ClusterResourceConfig::for_issue_width(2)};
  cfg.cluster_renaming = false;
  cfg.validate();
  return cfg;
}

TEST(SynthGenerate, BitIdenticalAcrossRepeatedCalls) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  const SynthSpec spec = parse_spec("synth:i0.7-m0.3-b0.1-c0.2-s42");
  const Program a = generate(spec, cfg, 0.1);
  const Program b = generate(spec, cfg, 0.1);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  // Spelling variants of the same spec generate the same program too.
  const Program c = generate(parse_spec("synth:c0.20-b0.10-m0.30-i0.70-s42"),
                             cfg, 0.1);
  EXPECT_EQ(fingerprint(a), fingerprint(c));
}

TEST(SynthGenerate, SeedAndDialsChangeTheProgram) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  const Program base = generate(parse_spec("synth:i0.5-s1"), cfg, 0.1);
  EXPECT_NE(fingerprint(base),
            fingerprint(generate(parse_spec("synth:i0.5-s2"), cfg, 0.1)));
  EXPECT_NE(fingerprint(base),
            fingerprint(generate(parse_spec("synth:i0.9-s1"), cfg, 0.1)));
}

TEST(SynthGenerate, VerifierAcceptsSeedSweep) {
  const std::vector<MachineConfig> cfgs = {
      MachineConfig::paper(1, Technique::smt()),
      asymmetric_cfg(),
  };
  for (const MachineConfig& cfg : cfgs) {
    for (const double ilp : {0.0, 0.33, 0.66, 1.0}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        SynthSpec spec;
        spec.ilp = ilp;
        spec.mem_intensity = 0.3;
        spec.branch_density = 0.1;
        spec.comm_density = 0.15;
        spec.seed = seed;
        const Program prog = generate(spec, cfg, 0.05);
        EXPECT_NO_THROW(cc::verify_or_throw(prog, cfg))
            << cfg.geometry_name() << " ilp " << ilp << " seed " << seed;
        EXPECT_NO_THROW(prog.validate(cfg.clusters));
        EXPECT_TRUE(prog.finalized());
      }
    }
  }
}

TEST(SynthGenerate, ChainCountFollowsIlpDial) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  SynthSpec lo, mid, hi;
  lo.ilp = 0.0;
  mid.ilp = 0.5;
  hi.ilp = 1.0;
  EXPECT_EQ(chain_count(lo, cfg), 1);
  EXPECT_GT(chain_count(mid, cfg), chain_count(lo, cfg));
  EXPECT_GT(chain_count(hi, cfg), chain_count(mid, cfg));
  // Top of the dial oversubscribes the 16-wide machine to cover FU latency.
  EXPECT_GE(chain_count(hi, cfg), cfg.total_issue_width());
}

TEST(SynthGenerate, IlpDialMovesScheduleDensity) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  auto density = [&](const char* name) {
    const Program prog = generate(parse_spec(name), cfg, 0.1);
    std::uint64_t ops = 0;
    for (const VliwInstruction& insn : prog.code)
      ops += static_cast<std::uint64_t>(insn.op_count());
    return static_cast<double>(ops) / static_cast<double>(prog.code.size());
  };
  // The static schedule of the high-ILP program packs markedly denser
  // instructions than the serial-chain program (deterministic property of
  // the generator + scheduler, no simulation involved).
  EXPECT_GT(density("synth:i0.95-m0.00-n96-s3"),
            2.0 * density("synth:i0.05-m0.00-n96-s3"));
}

TEST(SynthGenerate, RegistryBuildsAndMemoizesSynthSpecs) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  const auto a = wl::make_benchmark("synth:i0.8-m0.3-s42", cfg, 0.05);
  const auto b = wl::make_benchmark("synth:i0.80-m0.30-s42", cfg, 0.05);
  EXPECT_EQ(a.get(), b.get());  // canonicalized cache key
  EXPECT_EQ(a->name, "synth:i0.8-m0.3-b0-c0-n64-s42");
  // Nearby dial values stay distinct programs (no precision aliasing).
  const auto c = wl::make_benchmark("synth:i0.8-m0.304-s42", cfg, 0.05);
  EXPECT_NE(a.get(), c.get());
  EXPECT_THROW((void)wl::make_benchmark("synth:zz", cfg, 0.05), CheckError);
}

TEST(SynthGenerate, RunsOnAsymmetricMachineEndToEnd) {
  MachineConfig cfg = asymmetric_cfg();
  harness::ExperimentOptions opt;
  opt.scale = 0.02;
  opt.budget = 5'000;
  opt.timeslice = 2'000;
  opt.max_cycles = 10'000'000;
  const RunResult r =
      harness::run_workload_on(cfg, "synth:i0.9-m0.2-s5", opt);
  EXPECT_GT(r.ipc(), 0.0);
  ASSERT_EQ(r.instances.size(), 1u);
  EXPECT_FALSE(r.instances[0].faulted);
}

}  // namespace
}  // namespace vexsim::wl_synth
