#include "wl_synth/spec.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim::wl_synth {
namespace {

TEST(SynthSpec, DefaultsAndCanonicalName) {
  const SynthSpec spec;
  EXPECT_DOUBLE_EQ(spec.ilp, 0.5);
  EXPECT_DOUBLE_EQ(spec.mem_intensity, 0.1);
  EXPECT_DOUBLE_EQ(spec.branch_density, 0.0);
  EXPECT_DOUBLE_EQ(spec.comm_density, 0.0);
  EXPECT_EQ(spec.ops, 64);
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.name(), "synth:i0.5-m0.1-b0-c0-n64-s1");
}

TEST(SynthSpec, ParseSubsetKeepsDefaults) {
  const SynthSpec spec = parse_spec("synth:i0.8-m0.3-s42");
  EXPECT_DOUBLE_EQ(spec.ilp, 0.8);
  EXPECT_DOUBLE_EQ(spec.mem_intensity, 0.3);
  EXPECT_DOUBLE_EQ(spec.branch_density, 0.0);
  EXPECT_EQ(spec.ops, 64);
  EXPECT_EQ(spec.seed, 42u);
}

TEST(SynthSpec, ParseAllFieldsAnyOrder) {
  const SynthSpec spec = parse_spec("synth:s7-n128-c0.25-b0.1-m0.9-i1");
  EXPECT_DOUBLE_EQ(spec.ilp, 1.0);
  EXPECT_DOUBLE_EQ(spec.mem_intensity, 0.9);
  EXPECT_DOUBLE_EQ(spec.branch_density, 0.1);
  EXPECT_DOUBLE_EQ(spec.comm_density, 0.25);
  EXPECT_EQ(spec.ops, 128);
  EXPECT_EQ(spec.seed, 7u);
}

TEST(SynthSpec, NameParseRoundTrips) {
  SynthSpec spec;
  spec.ilp = 0.85;
  spec.mem_intensity = 0.4;
  spec.branch_density = 0.05;
  spec.comm_density = 0.3;
  spec.ops = 256;
  spec.seed = 123456789u;
  EXPECT_EQ(parse_spec(spec.name()), spec);

  // Dials beyond two decimals round-trip exactly too: the canonical name
  // must never alias distinct specs (it keys the program cache).
  SynthSpec fine = spec;
  fine.mem_intensity = 0.846;
  fine.ilp = 1.0 / 3.0;
  EXPECT_EQ(parse_spec(fine.name()), fine);
  EXPECT_NE(fine.name(), spec.name());
}

TEST(SynthSpec, IsSynthName) {
  EXPECT_TRUE(is_synth_name("synth:i0.5"));
  EXPECT_FALSE(is_synth_name("mcf"));
  EXPECT_FALSE(is_synth_name("syn:i0.5"));
}

TEST(SynthSpec, RejectsBadSpecs) {
  EXPECT_THROW((void)parse_spec("mcf"), CheckError);           // no prefix
  EXPECT_THROW((void)parse_spec("synth:"), CheckError);        // empty
  EXPECT_THROW((void)parse_spec("synth:q1"), CheckError);      // unknown key
  EXPECT_THROW((void)parse_spec("synth:ixx"), CheckError);     // malformed
  EXPECT_THROW((void)parse_spec("synth:i1.5"), CheckError);    // out of [0,1]
  EXPECT_THROW((void)parse_spec("synth:n4"), CheckError);      // ops too low
  EXPECT_THROW((void)parse_spec("synth:n99999"), CheckError);  // ops too high
  EXPECT_THROW((void)parse_spec("synth:i0.5-"), CheckError);   // empty field
  EXPECT_THROW((void)parse_spec("synth:i"), CheckError);       // no value
}

TEST(SynthSpec, RejectsDuplicateFields) {
  // Last-wins would silently drop the earlier dial — and alias two distinct
  // spec strings onto one cache entry.
  EXPECT_THROW((void)parse_spec("synth:i0.5-i0.6"), CheckError);
  EXPECT_THROW((void)parse_spec("synth:s1-m0.2-s2"), CheckError);
  try {
    (void)parse_spec("synth:i0.5-m0.1-i0.5");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate field 'i'"),
              std::string::npos)
        << e.what();
  }
}

TEST(SynthSpec, EmptyFieldErrorsNameTheSpot) {
  try {
    (void)parse_spec("synth:i0.8--m0.3");  // consecutive '-'
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("empty field #2"), std::string::npos)
        << e.what();
  }
  try {
    (void)parse_spec("synth:i0.8-m0.3-");  // trailing '-'
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("empty field #3"), std::string::npos)
        << e.what();
  }
  try {
    (void)parse_spec("synth:i0.8-m");  // key with no value
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("missing value for field 'm'"),
              std::string::npos)
        << e.what();
  }
}

TEST(SynthSpec, ErrorMessageQuotesGrammar) {
  try {
    (void)parse_spec("synth:z9");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("synth:i<ilp>"), std::string::npos);
  }
}


TEST(SynthSpec, CompilerFieldParsesAndRoundTrips) {
  const SynthSpec spec = parse_spec("synth:i0.8-m0.3-ccpipe1");
  EXPECT_TRUE(spec.has_compiler);
  EXPECT_EQ(spec.compiler.name(), "cost");
  // Canonical mangling pins the compiler and round-trips exactly.
  EXPECT_EQ(spec.name(), "synth:i0.8-m0.3-b0-c0-n64-s1-cccost");
  EXPECT_EQ(parse_spec(spec.name()), spec);
}

TEST(SynthSpec, CompilerFieldDefaultsToUnpinned) {
  const SynthSpec spec = parse_spec("synth:i0.8");
  EXPECT_FALSE(spec.has_compiler);
  EXPECT_EQ(spec.name().find("cc"), std::string::npos);
}

TEST(SynthSpec, CompilerFieldRejectsUnknownVariantAndDuplicates) {
  try {
    (void)parse_spec("synth:i0.8-ccturbo");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown compiler variant"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)parse_spec("synth:ccgreedy-cccost"), CheckError);
  EXPECT_THROW((void)parse_spec("synth:i0.8-cc"), CheckError);
}

TEST(SynthSpec, ParallelFractionParsesAndStaysOutOfDefaultNames) {
  const SynthSpec spec = parse_spec("synth:i0.5-p0.7");
  EXPECT_DOUBLE_EQ(spec.parallel_fraction, 0.7);
  EXPECT_EQ(spec.name(), "synth:i0.5-m0.1-b0-c0-p0.7-n64-s1");
  EXPECT_EQ(parse_spec(spec.name()), spec);
  // p omitted at its default, so pre-dial canonical names are unchanged.
  EXPECT_EQ(parse_spec("synth:i0.5").name(), "synth:i0.5-m0.1-b0-c0-n64-s1");
  EXPECT_THROW((void)parse_spec("synth:p1.5"), CheckError);
}

}  // namespace
}  // namespace vexsim::wl_synth
