#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace vexsim {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make({"--budget", "1000"});
  EXPECT_EQ(cli.get_int("budget", 0), 1000);
}

TEST(Cli, EqualsValue) {
  const Cli cli = make({"--scale=0.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
}

TEST(Cli, BooleanFlag) {
  const Cli cli = make({"--paper"});
  EXPECT_TRUE(cli.get_bool("paper", false));
  EXPECT_TRUE(cli.has("paper"));
  EXPECT_FALSE(cli.has("quick"));
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("budget", 42), 42);
  EXPECT_EQ(cli.get("name", "x"), "x");
  EXPECT_FALSE(cli.get_bool("flag", false));
}

TEST(Cli, Positional) {
  const Cli cli = make({"llhh", "--seed", "7", "mmhh"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "llhh");
  EXPECT_EQ(cli.positional()[1], "mmhh");
  EXPECT_EQ(cli.get_int("seed", 0), 7);
}

TEST(Cli, HexIntegers) {
  const Cli cli = make({"--base=0x1000"});
  EXPECT_EQ(cli.get_int("base", 0), 0x1000);
}

}  // namespace
}  // namespace vexsim
