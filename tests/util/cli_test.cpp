#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make({"--budget", "1000"});
  EXPECT_EQ(cli.get_int("budget", 0), 1000);
}

TEST(Cli, EqualsValue) {
  const Cli cli = make({"--scale=0.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
}

TEST(Cli, BooleanFlag) {
  const Cli cli = make({"--paper"});
  EXPECT_TRUE(cli.get_bool("paper", false));
  EXPECT_TRUE(cli.has("paper"));
  EXPECT_FALSE(cli.has("quick"));
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("budget", 42), 42);
  EXPECT_EQ(cli.get("name", "x"), "x");
  EXPECT_FALSE(cli.get_bool("flag", false));
}

TEST(Cli, Positional) {
  const Cli cli = make({"llhh", "--seed", "7", "mmhh"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "llhh");
  EXPECT_EQ(cli.positional()[1], "mmhh");
  EXPECT_EQ(cli.get_int("seed", 0), 7);
}

TEST(Cli, HexIntegers) {
  const Cli cli = make({"--base=0x1000"});
  EXPECT_EQ(cli.get_int("base", 0), 0x1000);
}

TEST(Cli, JobsParsesPositiveValues) {
  EXPECT_EQ(make({"--jobs", "8"}).jobs(), 8);
  EXPECT_EQ(make({"--jobs=2"}).jobs(), 2);
}

TEST(Cli, JobsDefaultsWhenAbsent) {
  EXPECT_EQ(make({}).jobs(), 1);
  EXPECT_EQ(make({}).jobs(4), 4);
}

TEST(Cli, JobsRejectsZeroAndNegative) {
  EXPECT_THROW((void)make({"--jobs", "0"}).jobs(), CheckError);
  EXPECT_THROW((void)make({"--jobs", "-3"}).jobs(), CheckError);
}

TEST(Cli, JobsRejectsGarbage) {
  EXPECT_THROW((void)make({"--jobs", "many"}).jobs(), CheckError);
  EXPECT_THROW((void)make({"--jobs", "4x"}).jobs(), CheckError);
  EXPECT_THROW((void)make({"--jobs"}).jobs(), CheckError);  // bare flag -> "true"
}

TEST(Cli, DuplicateOptionIsHardError) {
  // Last-wins would let `--seed 1 --seed 2` (or a typo'd flag that lands on
  // an already-used name) silently mask a sweep misconfiguration.
  EXPECT_THROW(make({"--seed", "1", "--seed", "2"}), CheckError);
  EXPECT_THROW(make({"--flag=a", "--flag=b"}), CheckError);
  EXPECT_THROW(make({"--quick", "--quick"}), CheckError);
  EXPECT_THROW(make({"--jobs=4", "--jobs", "8"}), CheckError);
  try {
    make({"--seed=1", "--seed=2"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate option --seed"), std::string::npos) << what;
    EXPECT_NE(what.find("'1'"), std::string::npos) << what;
    EXPECT_NE(what.find("'2'"), std::string::npos) << what;
  }
  // Distinct options are unaffected.
  const Cli ok = make({"--seed", "1", "--budget", "2"});
  EXPECT_EQ(ok.get_int("seed", 0), 1);
  EXPECT_EQ(ok.get_int("budget", 0), 2);
}

TEST(Cli, JobsRejectsOverflow) {
  EXPECT_THROW((void)make({"--jobs", "2147483648"}).jobs(), CheckError);
  EXPECT_THROW((void)make({"--jobs", "4294967297"}).jobs(), CheckError);
  EXPECT_EQ(make({"--jobs", "2147483647"}).jobs(), 2147483647);
}

}  // namespace
}  // namespace vexsim
