#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vexsim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(99);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
  }
  int hits = 0;
  for (int i = 0; i < 1000; ++i) hits += rng.chance(0.5) ? 1 : 0;
  EXPECT_GT(hits, 400);
  EXPECT_LT(hits, 600);
}

TEST(Rng, NextU64CombinesWords) {
  Rng a(42), b(42);
  const std::uint64_t x = a.next_u64();
  const std::uint32_t hi = b.next_u32();
  const std::uint32_t lo = b.next_u32();
  EXPECT_EQ(x, (static_cast<std::uint64_t>(hi) << 32) | lo);
}

}  // namespace
}  // namespace vexsim
