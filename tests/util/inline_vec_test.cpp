#include "util/inline_vec.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim {
namespace {

TEST(InlineVec, StartsEmpty) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(InlineVec, PushBackGrows) {
  InlineVec<int, 4> v;
  v.push_back(10);
  v.push_back(20);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v.front(), 10);
  EXPECT_EQ(v.back(), 20);
}

TEST(InlineVec, InitializerList) {
  InlineVec<int, 4> v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3);
}

TEST(InlineVec, OverflowThrows) {
  InlineVec<int, 2> v{1, 2};
  EXPECT_TRUE(v.full());
  EXPECT_THROW(v.push_back(3), CheckError);
}

TEST(InlineVec, OutOfRangeIndexThrows) {
  InlineVec<int, 4> v{1};
  EXPECT_THROW(v[1], CheckError);
}

TEST(InlineVec, PopBack) {
  InlineVec<int, 4> v{1, 2};
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_THROW(([] {
                 InlineVec<int, 4> e;
                 e.pop_back();
               })(),
               CheckError);
}

TEST(InlineVec, ClearAndResize) {
  InlineVec<int, 4> v{1, 2, 3};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 0);  // value-initialized
}

TEST(InlineVec, Iteration) {
  InlineVec<int, 8> v{1, 2, 3, 4};
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 10);
}

TEST(InlineVec, Equality) {
  InlineVec<int, 4> a{1, 2};
  InlineVec<int, 4> b{1, 2};
  InlineVec<int, 4> c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(InlineVec, EmplaceBack) {
  struct P {
    int x = 0, y = 0;
    bool operator==(const P&) const = default;
  };
  InlineVec<P, 2> v;
  v.emplace_back(1, 2);
  EXPECT_EQ(v[0].x, 1);
  EXPECT_EQ(v[0].y, 2);
}

}  // namespace
}  // namespace vexsim
