#include "cc/verifier.hpp"

#include <gtest/gtest.h>

#include "isa/config.hpp"
#include "vasm/assembler.hpp"

namespace vexsim::cc {
namespace {

MachineConfig cfg() { return MachineConfig::paper(1, Technique::smt()); }

TEST(Verifier, AcceptsLegalProgram) {
  const Program p = assemble(
      "c0 add r1 = r2, r3 ; c1 mpyl r4 = r5, r6 ; c2 ldw r7 = 0x200[r0]\n"
      "c0 send ch0 = r1 ; c1 recv r2 = ch0\n"
      "c0 halt\n");
  EXPECT_TRUE(verify_program(p, cfg()).empty());
  EXPECT_NO_THROW(verify_or_throw(p, cfg()));
}

TEST(Verifier, RejectsOvercommittedSlots) {
  // 5 ALU ops on a 4-slot cluster.
  const Program p = assemble(
      "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6 ; c0 or r7 = r8, r9 ; "
      "c0 xor r10 = r11, r12 ; c0 and r13 = r14, r15\n");
  const auto issues = verify_program(p, cfg());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].what.find("overcommitted"), std::string::npos);
  EXPECT_THROW(verify_or_throw(p, cfg()), CheckError);
}

TEST(Verifier, RejectsTooManyMultipliers) {
  const Program p = assemble(
      "c0 mpyl r1 = r2, r3 ; c0 mpyl r4 = r5, r6 ; c0 mpyh r7 = r8, r9\n");
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsTwoMemOpsOneUnit) {
  const Program p = assemble(
      "c0 ldw r1 = 0x200[r0] ; c0 stw 0x300[r0] = r2\n");
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsUnpairedSend) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::send(0, 1, 2));  // no matching recv
  p.code.push_back(insn);
  p.finalize();
  const auto issues = verify_program(p, cfg());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].what.find("unpaired"), std::string::npos);
}

TEST(Verifier, RejectsChannelReuse) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::send(0, 1, 0));
  insn.add(ops::send(1, 2, 0));  // same channel twice
  insn.add(ops::recv(2, 3, 0));
  insn.add(ops::recv(3, 4, 0));
  p.code.push_back(insn);
  p.finalize();
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsMultipleBranches) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::jump(0, 0));
  insn.add(ops::br(1, 0, 0));
  p.code.push_back(insn);
  p.finalize();
  const auto issues = verify_program(p, cfg());
  ASSERT_FALSE(issues.empty());
}

TEST(Verifier, RejectsBranchTargetOutOfRange) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::jump(0, 5));
  p.code.push_back(insn);
  p.finalize();
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsBundleOnMissingCluster) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::mov(5, 1, 2));  // cluster 5 on a 4-cluster machine
  p.code.push_back(insn);
  p.finalize();
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, ReportsAllIssuesNotJustFirst) {
  Program p;
  p.name = "bad";
  VliwInstruction a;
  a.add(ops::jump(0, 9));
  VliwInstruction b;
  b.add(ops::send(0, 1, 1));
  p.code.push_back(a);
  p.code.push_back(b);
  p.finalize();
  EXPECT_GE(verify_program(p, cfg()).size(), 2u);
  // verify_or_throw aggregates every issue into one error, each line
  // prefixed with its instruction index.
  try {
    verify_or_throw(p, cfg());
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[0] branch target out of range"),
              std::string::npos) << what;
    EXPECT_NE(what.find("[1] unpaired send/recv"), std::string::npos)
        << what;
  }
}

// --- Asymmetric cluster_overrides geometries -------------------------------

MachineConfig asym() {
  MachineConfig c = MachineConfig::paper(1, Technique::smt());
  c.cluster_renaming = false;
  c.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                         ClusterResourceConfig::for_issue_width(4),
                         ClusterResourceConfig::for_issue_width(2),
                         ClusterResourceConfig::for_issue_width(2)};
  c.validate();
  return c;
}

TEST(Verifier, AsymmetricAcceptsWidePackOnWideCluster) {
  // 6 ALU ops fit the 8-issue cluster 0 but would overcommit a paper
  // 4-issue cluster.
  const Program p = assemble(
      "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6 ; c0 or r7 = r8, r9 ; "
      "c0 xor r10 = r11, r12 ; c0 and r13 = r14, r15 ; c0 add r16 = r2, r3\n");
  EXPECT_FALSE(verify_program(p, cfg()).empty());
  EXPECT_TRUE(verify_program(p, asym()).empty());
}

TEST(Verifier, AsymmetricRejectsWidePackOnNarrowCluster) {
  // The same width on the 2-issue cluster 3 must be rejected there even
  // though the symmetric machine accepts it.
  const Program p = assemble(
      "c3 add r1 = r2, r3 ; c3 sub r4 = r5, r6 ; c3 or r7 = r8, r9\n");
  EXPECT_TRUE(verify_program(p, cfg()).empty());
  const auto issues = verify_program(p, asym());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].what.find("cluster 3 overcommitted"),
            std::string::npos);
}

TEST(Verifier, AsymmetricRejectsSecondMulOnNarrowCluster) {
  // for_issue_width(2) carries a single multiplier.
  const Program p = assemble("c2 mpyl r1 = r2, r3 ; c2 mpyh r4 = r5, r6\n");
  EXPECT_TRUE(verify_program(p, cfg()).empty());
  EXPECT_FALSE(verify_program(p, asym()).empty());
}

// --- Software-pipelined kernel metadata ------------------------------------

// A hand-built 2-stage kernel: a mul issued in the kernel's first
// instruction is read two cycles later (legal), with the back-branch in
// the last instruction.
Program swp_program(bool break_window, bool break_branch) {
  Program p = assemble(
      "c0 mpyl r1 = r2, r3\n"            // prologue (stage 0 of iter 0)
      "c0 add r4 = r5, r6\n"
      "c0 cmpgt b0 = r7, 0\n"
      "c0 mpyl r1 = r2, r3\n"            // kernel start (index 3)
      "c0 add r4 = r5, r6\n"
      "c0 cmpgt b0 = r7, 0 ; c0 br b0, @3\n"
      "c0 add r8 = r1, r4\n"             // epilogue
      "c0 add r9 = r1, r4\n"
      "c0 halt\n");
  SoftwarePipelinedLoop k;
  k.prologue_start = 0;
  k.kernel_start = 3;
  k.epilogue_end = 8;
  k.ii = 3;
  k.stages = 2;
  p.kernels.push_back(k);
  if (break_window) {
    // Read r1 one cycle after its mul issues: inside the latency window
    // once the kernel wraps.
    Operation bad = ops::alu(Opcode::kAdd, 0, 10, 1, 1);
    p.code[4].add(bad);
  }
  if (break_branch) {
    // Retarget the back-branch outside the kernel span.
    for (Operation& op : p.code[5].bundles[0])
      if (op.opc == Opcode::kBr) op.imm = 0;
  }
  p.finalize();
  return p;
}

TEST(Verifier, AcceptsWellFormedKernel) {
  const Program p = swp_program(false, false);
  EXPECT_TRUE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsKernelLatencyWindowViolation) {
  const Program p = swp_program(true, false);
  const auto issues = verify_program(p, cfg());
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const VerifyIssue& issue : issues)
    if (issue.what.find("latency window") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Verifier, RejectsKernelWithoutClosingBranch) {
  const Program p = swp_program(false, true);
  const auto issues = verify_program(p, cfg());
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const VerifyIssue& issue : issues)
    if (issue.what.find("back-branch") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace vexsim::cc
