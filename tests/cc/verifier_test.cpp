#include "cc/verifier.hpp"

#include <gtest/gtest.h>

#include "isa/config.hpp"
#include "vasm/assembler.hpp"

namespace vexsim::cc {
namespace {

MachineConfig cfg() { return MachineConfig::paper(1, Technique::smt()); }

TEST(Verifier, AcceptsLegalProgram) {
  const Program p = assemble(
      "c0 add r1 = r2, r3 ; c1 mpyl r4 = r5, r6 ; c2 ldw r7 = 0x200[r0]\n"
      "c0 send ch0 = r1 ; c1 recv r2 = ch0\n"
      "c0 halt\n");
  EXPECT_TRUE(verify_program(p, cfg()).empty());
  EXPECT_NO_THROW(verify_or_throw(p, cfg()));
}

TEST(Verifier, RejectsOvercommittedSlots) {
  // 5 ALU ops on a 4-slot cluster.
  const Program p = assemble(
      "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6 ; c0 or r7 = r8, r9 ; "
      "c0 xor r10 = r11, r12 ; c0 and r13 = r14, r15\n");
  const auto issues = verify_program(p, cfg());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].what.find("overcommitted"), std::string::npos);
  EXPECT_THROW(verify_or_throw(p, cfg()), CheckError);
}

TEST(Verifier, RejectsTooManyMultipliers) {
  const Program p = assemble(
      "c0 mpyl r1 = r2, r3 ; c0 mpyl r4 = r5, r6 ; c0 mpyh r7 = r8, r9\n");
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsTwoMemOpsOneUnit) {
  const Program p = assemble(
      "c0 ldw r1 = 0x200[r0] ; c0 stw 0x300[r0] = r2\n");
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsUnpairedSend) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::send(0, 1, 2));  // no matching recv
  p.code.push_back(insn);
  p.finalize();
  const auto issues = verify_program(p, cfg());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].what.find("unpaired"), std::string::npos);
}

TEST(Verifier, RejectsChannelReuse) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::send(0, 1, 0));
  insn.add(ops::send(1, 2, 0));  // same channel twice
  insn.add(ops::recv(2, 3, 0));
  insn.add(ops::recv(3, 4, 0));
  p.code.push_back(insn);
  p.finalize();
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsMultipleBranches) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::jump(0, 0));
  insn.add(ops::br(1, 0, 0));
  p.code.push_back(insn);
  p.finalize();
  const auto issues = verify_program(p, cfg());
  ASSERT_FALSE(issues.empty());
}

TEST(Verifier, RejectsBranchTargetOutOfRange) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::jump(0, 5));
  p.code.push_back(insn);
  p.finalize();
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, RejectsBundleOnMissingCluster) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::mov(5, 1, 2));  // cluster 5 on a 4-cluster machine
  p.code.push_back(insn);
  p.finalize();
  EXPECT_FALSE(verify_program(p, cfg()).empty());
}

TEST(Verifier, ReportsAllIssuesNotJustFirst) {
  Program p;
  p.name = "bad";
  VliwInstruction a;
  a.add(ops::jump(0, 9));
  VliwInstruction b;
  b.add(ops::send(0, 1, 1));
  p.code.push_back(a);
  p.code.push_back(b);
  p.finalize();
  EXPECT_GE(verify_program(p, cfg()).size(), 2u);
}

}  // namespace
}  // namespace vexsim::cc
