#include "cc/regalloc.hpp"

#include <gtest/gtest.h>

#include "cc/compiler.hpp"
#include "cc/irgen.hpp"
#include "util/check.hpp"

namespace vexsim::cc {
namespace {

MachineConfig paper_cfg() {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.branch_on_cluster0_only = false;
  return cfg;
}

TEST(RegAlloc, GlobalsGetStableHighRegisters) {
  Builder b("f");
  const VReg g0 = b.fresh_global();
  const VReg g1 = b.fresh_global();
  b.assign_i(g0, 1, /*cluster=*/0);
  b.assign_i(g1, 2, /*cluster=*/0);
  const int second = b.new_block();
  b.jump(second);
  b.switch_to(second);
  b.store(Opcode::kStw, b.movi(0x200, 0), 0, g0, kMemSpaceDefault, 0);
  b.store(Opcode::kStw, b.movi(0x200, 0), 4, g1, kMemSpaceDefault, 0);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const MachineConfig cfg = paper_cfg();
  const LFunction lfn = assign_clusters(fn, cfg);
  const FunctionSchedule sched = schedule(lfn, cfg);
  const Allocation alloc = allocate(lfn, sched, cfg);
  EXPECT_EQ(alloc.gpr_of[static_cast<std::size_t>(g0)], kNumGprs - 2);
  EXPECT_EQ(alloc.gpr_of[static_cast<std::size_t>(g1)], kNumGprs - 3);
}

TEST(RegAlloc, LocalsReuseRegisters) {
  // A long chain of single-use temporaries on one cluster must recycle a
  // small set of registers instead of consuming one each.
  Builder b("f");
  VReg v = b.movi(1, 0);
  for (int i = 0; i < 40; ++i) v = b.alui(Opcode::kAdd, v, 1, 0);
  b.store(Opcode::kStw, b.movi(0x200, 0), 0, v, kMemSpaceDefault, 0);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const MachineConfig cfg = paper_cfg();
  const LFunction lfn = assign_clusters(fn, cfg);
  const FunctionSchedule sched = schedule(lfn, cfg);
  const Allocation alloc = allocate(lfn, sched, cfg);
  int max_reg = 0;
  for (int r : alloc.gpr_of) max_reg = std::max(max_reg, r);
  EXPECT_LT(max_reg, 8);  // serial chain: a couple of registers suffice
}

TEST(RegAlloc, ReuseRespectsProducerLatency) {
  // Registers free only after def + latency: two overlapping multiplies
  // cannot share a register even if uses are disjoint.
  Builder b("f");
  const VReg a = b.movi(3, 0);
  const VReg m1 = b.mpyi(a, 5, 0);
  const VReg m2 = b.mpyi(a, 7, 0);
  const VReg s = b.alu(Opcode::kAdd, m1, m2, 0);
  b.store(Opcode::kStw, b.movi(0x200, 0), 0, s, kMemSpaceDefault, 0);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const MachineConfig cfg = paper_cfg();
  const LFunction lfn = assign_clusters(fn, cfg);
  const FunctionSchedule sched = schedule(lfn, cfg);
  const Allocation alloc = allocate(lfn, sched, cfg);
  EXPECT_NE(alloc.gpr_of[static_cast<std::size_t>(m1)],
            alloc.gpr_of[static_cast<std::size_t>(m2)]);
}

TEST(RegAlloc, BregsAllocatedPerCluster) {
  Builder b("f");
  const VReg x = b.movi(5, 0);
  const VReg p = b.cmpi_b(Opcode::kCmpgt, x, 0, 0);
  const VReg y = b.slct(p, x, x, 0);
  b.store(Opcode::kStw, b.movi(0x200, 0), 0, y, kMemSpaceDefault, 0);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const MachineConfig cfg = paper_cfg();
  const LFunction lfn = assign_clusters(fn, cfg);
  const FunctionSchedule sched = schedule(lfn, cfg);
  const Allocation alloc = allocate(lfn, sched, cfg);
  EXPECT_GE(alloc.breg_of[static_cast<std::size_t>(p)], 0);
  EXPECT_LT(alloc.breg_of[static_cast<std::size_t>(p)], kNumBregs);
}

TEST(RegAlloc, PressureExhaustionThrows) {
  // More function-lifetime (global) values homed on one cluster than the
  // register file holds: allocation must fail loudly, not wrap.
  Builder b("f");
  std::vector<VReg> globals;
  for (int i = 0; i < 70; ++i) {
    const VReg g = b.fresh_global();
    b.assign_i(g, i, /*cluster=*/0);
    globals.push_back(g);
  }
  const int second = b.new_block();
  b.jump(second);
  b.switch_to(second);
  VReg acc = globals[0];
  for (std::size_t i = 1; i < globals.size(); ++i)
    acc = b.alu(Opcode::kAdd, acc, globals[i], 0);
  b.store(Opcode::kStw, b.movi(0x200, 0), 0, acc, kMemSpaceDefault, 0);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const MachineConfig cfg = paper_cfg();
  EXPECT_THROW(compile(fn, cfg), CheckError);
}

TEST(RegAlloc, RandomProgramsAllocateCleanly) {
  const MachineConfig cfg = paper_cfg();
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    const GeneratedIr gen = generate_ir(seed);
    EXPECT_NO_THROW(compile(gen.fn, cfg)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vexsim::cc
