// Negative lint coverage: every registry kernel under every compiler
// pass-pipeline variant must produce a zero-finding lint report — the same
// invariant tools/vexlint gates in CI over the full grid, kept here at
// reduced scale so the fast suite exercises it on every run.
#include <gtest/gtest.h>

#include "cc/ir.hpp"
#include "cc/lint.hpp"
#include "cc/options.hpp"
#include "cc/pipeline.hpp"
#include "isa/config.hpp"
#include "workloads/registry.hpp"

namespace vexsim::cc {
namespace {

constexpr double kScale = 0.05;

class LintRegistryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LintRegistryTest, EveryKernelIsFindingFree) {
  const MachineConfig cfg = MachineConfig::paper_single();
  const CompilerOptions opt = CompilerOptions::parse(GetParam());
  for (const wl::BenchmarkInfo& info : wl::benchmark_registry()) {
    const auto prog = wl::make_benchmark(info.name, cfg, kScale, opt);
    const LintReport report = lint_program(*prog, cfg);
    EXPECT_TRUE(report.findings.empty())
        << info.name << "/" << GetParam() << ": "
        << to_string(*prog, report.findings.front());
  }
}

TEST_P(LintRegistryTest, SynthSpecsAreFindingFree) {
  const MachineConfig cfg = MachineConfig::paper_single();
  const CompilerOptions opt = CompilerOptions::parse(GetParam());
  for (const char* spec :
       {"synth:i0.5-m0.2-p0.5-s1", "synth:i0.9-m0.1-b0.3-s2"}) {
    const auto prog = wl::make_benchmark(spec, cfg, kScale, opt);
    const LintReport report = lint_program(*prog, cfg);
    EXPECT_TRUE(report.findings.empty())
        << spec << "/" << GetParam() << ": "
        << to_string(*prog, report.findings.front());
  }
}

// With verify_each_pass, the static checkers run at every pass boundary —
// a clean compile must stay clean (and produce the identical program, since
// checking is diagnostic-only).
TEST_P(LintRegistryTest, VerifyEachPassIsCleanAndCodegenNeutral) {
  const MachineConfig cfg = MachineConfig::paper_single();
  CompilerOptions opt = CompilerOptions::parse(GetParam());
  const auto plain = wl::make_benchmark("idct", cfg, kScale, opt);
  opt.verify_each_pass = true;
  const auto checked = wl::make_benchmark("idct", cfg, kScale, opt);
  ASSERT_EQ(plain->code.size(), checked->code.size());
  for (std::size_t pc = 0; pc < plain->code.size(); ++pc)
    EXPECT_TRUE(plain->code[pc] == checked->code[pc]) << "pc " << pc;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, LintRegistryTest,
                         ::testing::Values("greedy", "cost", "cost_swp",
                                           "greedy_swp"));

IrFunction tiny_fn() {
  Builder b("tiny");
  const VReg base = b.movi(0x2000);
  const VReg x = b.load(Opcode::kLdw, base, 0, kMemSpaceReadOnly);
  const VReg y = b.mpyi(x, 5);
  b.store(Opcode::kStw, base, 64, y);
  b.halt();
  return std::move(b).take();
}

// A pass that corrupts the lowered IR must be caught at its own boundary,
// attributed by name — not at program-verify three passes later.
class ClobberPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "clobber"; }
  void run(PassContext& ctx) const override {
    ctx.lfn.blocks.at(0).body.at(0).cluster = 7;  // nonexistent cluster
  }
};

TEST(PipelineVerifyEachPass, AttributesViolationToTheGuiltyPass) {
  const MachineConfig cfg = MachineConfig::paper_single();
  CompilerOptions opt;
  opt.verify_each_pass = true;
  Pipeline pipeline;
  pipeline.add(make_ir_verify_pass())
      .add(make_cluster_assign_pass())
      .add(std::make_unique<ClobberPass>());
  PassContext ctx(cfg, opt, tiny_fn());
  try {
    pipeline.run_passes(ctx);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("after pass 'clobber'"), std::string::npos) << what;
    EXPECT_NE(what.find("nonexistent cluster 7"), std::string::npos) << what;
  }
}

TEST(PipelineVerifyEachPass, CleanPipelinePassesEveryBoundary) {
  const MachineConfig cfg = MachineConfig::paper_single();
  CompilerOptions opt = CompilerOptions::parse("cost_swp");
  opt.verify_each_pass = true;
  EXPECT_NO_THROW(
      (void)Pipeline::standard(opt).run(tiny_fn(), cfg, opt));
}

}  // namespace
}  // namespace vexsim::cc
